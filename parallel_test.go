package frfc_test

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"frfc"
)

// TestSweepParallelMatchesSweep: the public parallel sweep must be
// bit-identical to the serial one at any worker count, and a re-run over the
// same ResultPath must be served entirely from cache.
func TestSweepParallelMatchesSweep(t *testing.T) {
	s := frfc.FR6(frfc.FastControl, 5).WithMeshRadix(4).WithSampling(150, 300)
	loads := []float64{0.2, 0.4}
	serial := frfc.Sweep(s, loads)

	for _, workers := range []int{1, 4} {
		got, err := frfc.SweepParallel(context.Background(), s, loads, frfc.ParallelOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d parallel sweep diverged from serial", workers)
		}
	}

	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	jobs := make([]frfc.Job, len(loads))
	for i, l := range loads {
		jobs[i] = frfc.Job{Spec: s, Load: l}
	}
	first, err := frfc.RunJobs(context.Background(), jobs, frfc.ParallelOptions{Workers: 2, ResultPath: path})
	if err != nil {
		t.Fatal(err)
	}
	second, err := frfc.RunJobs(context.Background(), jobs, frfc.ParallelOptions{Workers: 2, ResultPath: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := range second {
		if !second[i].Cached {
			t.Errorf("job %d re-simulated despite the result store", i)
		}
		if !reflect.DeepEqual(second[i].Result, first[i].Result) {
			t.Errorf("job %d cached result differs", i)
		}
	}
}

// TestPublicSaturationSearch: the adaptive search agrees with the serial
// bisection exposed as SaturationThroughput.
func TestPublicSaturationSearch(t *testing.T) {
	s := frfc.FR6(frfc.FastControl, 5).WithMeshRadix(4).WithSampling(150, 300)
	want := frfc.SaturationThroughput(s, 0.05)
	pts, err := frfc.SaturationSearch(context.Background(), []frfc.Spec{s}, 0.05, frfc.ParallelOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Err != "" {
		t.Fatalf("search failed: %s", pts[0].Err)
	}
	if pts[0].Saturation != want {
		t.Errorf("SaturationSearch found %.4f, SaturationThroughput %.4f", pts[0].Saturation, want)
	}
}

// TestFaultSweepWorkers: the fault sweep produces identical points serial and
// parallel.
func TestFaultSweepWorkers(t *testing.T) {
	base := frfc.FaultSweepOptions{Packets: 60, Rates: []float64{0, 0.05}, RetryLimit: 4}
	serialOpts := base
	serialOpts.Workers = 1
	parallelOpts := base
	parallelOpts.Workers = 4
	serial := frfc.FaultSweep(serialOpts)
	parallel := frfc.FaultSweep(parallelOpts)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("fault sweep diverged across worker counts:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
