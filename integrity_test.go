package frfc_test

import (
	"reflect"
	"testing"

	"frfc"
)

// TestPublicIntegritySweep: the public wrapper delivers the acceptance
// criterion — 100% delivery with the end-to-end check on at BER 1e-3 and
// above — and is bit-identical at any worker count.
func TestPublicIntegritySweep(t *testing.T) {
	o := frfc.IntegritySweepOptions{Packets: 120, BERs: []float64{1e-3, 5e-3}, Check: true}
	ref, err := frfc.IntegritySweep(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ref {
		if p.Wedged {
			t.Fatalf("ber=%g e2e=%v wedged", p.BER, p.E2ECheck)
		}
		if p.E2ECheck && (p.Delivered != p.Offered || p.Abandoned != 0) {
			t.Fatalf("ber=%g with e2e check delivered %d of %d", p.BER, p.Delivered, p.Offered)
		}
		if p.Corrupted == 0 {
			t.Fatalf("ber=%g corrupted nothing", p.BER)
		}
	}
	o.Workers = 4
	got, err := frfc.IntegritySweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("workers=4 diverged from serial:\nserial:   %+v\nparallel: %+v", ref, got)
	}
}

// TestPublicChaosSweep: a moderate-intensity campaign (no router kills)
// delivers at least 99% — in practice 100% — and the sweep is bit-identical
// at any worker count.
func TestPublicChaosSweep(t *testing.T) {
	o := frfc.ChaosSweepOptions{Packets: 200, Intensities: []float64{0.5}, Check: true}
	ref, err := frfc.ChaosSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	p := ref[0]
	if p.Wedged {
		t.Fatal("moderate chaos wedged")
	}
	if p.DeliveredFraction() < 0.99 {
		t.Fatalf("moderate chaos delivered only %.2f%%", p.DeliveredFraction()*100)
	}
	if p.Events == 0 || p.DroppedFlits == 0 || p.Corrupted == 0 {
		t.Fatalf("campaign exercised nothing: %+v", p)
	}
	o.Workers = 4
	got, err := frfc.ChaosSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("workers=4 diverged from serial:\nserial:   %+v\nparallel: %+v", ref, got)
	}
}

// TestSpecBitErrorRun: the builder chain threads the corruption knobs through
// a measured run for both network families — the FR run reports the full
// corruption ledger, the VC baseline reports detection counters only.
func TestSpecBitErrorRun(t *testing.T) {
	fr := frfc.FR6(frfc.FastControl, 5).
		WithSampling(200, 300).
		WithBER(5e-3).WithCRC(4).WithE2ECheck(true).
		WithRetry(8)
	r := frfc.Run(fr, 0.3)
	if r.SampledDelivered != r.SampleSize {
		t.Fatalf("FR run under BER lost sampled packets: %d of %d", r.SampledDelivered, r.SampleSize)
	}
	if r.CorruptedFlits == 0 || r.CrcDetected == 0 {
		t.Fatalf("FR corruption ledger empty: %+v", r)
	}

	vc := frfc.VC8(frfc.FastControl, 5).WithSampling(200, 300).WithBER(5e-3)
	rv := frfc.Run(vc, 0.3)
	if rv.SampledDelivered != rv.SampleSize {
		t.Fatalf("VC run under BER lost sampled packets: %d of %d", rv.SampledDelivered, rv.SampleSize)
	}
	if rv.CorruptedFlits == 0 || rv.CrcDetected == 0 {
		t.Fatalf("VC corruption ledger empty: %+v", rv)
	}
}

// TestSpecChaosRun: WithChaos expands deterministically — two runs of the
// same spec agree exactly, and the campaign actually injects faults.
func TestSpecChaosRun(t *testing.T) {
	s := frfc.FR6(frfc.FastControl, 5).WithSampling(150, 300).WithChaos(0.4, 11)
	a := frfc.Run(s, 0.3)
	b := frfc.Run(s, 0.3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("chaos runs diverged:\nfirst:  %+v\nsecond: %+v", a, b)
	}
	if a.DroppedFlits == 0 && a.CorruptedFlits == 0 {
		t.Fatalf("chaos campaign injected nothing: %+v", a)
	}
}
