package frfc

import (
	"context"
	"fmt"

	"frfc/internal/experiment"
	"frfc/internal/harness"
	"frfc/internal/stats"
)

// IntegrityPoint is one row of an IntegritySweep: a flit-reservation network
// run under a given link bit-error rate, with or without the end-to-end
// payload check, until every offered packet's fate is resolved.
type IntegrityPoint struct {
	BER      float64
	CrcBits  int
	E2ECheck bool

	Offered   int64
	Delivered int64
	// Abandoned counts packets given up on after exhausting the retry
	// budget; it should stay zero — corruption either recovers through the
	// hop CRC's loss path or the end-to-end retry.
	Abandoned int64

	// The corruption ledger: flits delivered corrupted, corrupted flits the
	// hop CRC caught, corrupted payload that escaped every hop CRC to its
	// destination, phantom reservations installed by escaped-corrupt
	// control flits, and orphaned parked flits the reclamation timeout
	// freed.
	Corrupted           int64
	CrcDetected         int64
	CorruptEscapes      int64
	PhantomReservations int64
	ReclaimedSlots      int64

	Retried             int64
	DeliveredAfterRetry int64

	// AvgLatency is the mean creation-to-delivery latency over every
	// delivered packet; Cycles is how long the row took to resolve them.
	AvgLatency float64
	Cycles     int64
	// Wedged is set if the no-progress watchdog fired — it never should.
	Wedged bool
}

// DeliveredFraction is the end-to-end delivery probability of the row.
func (p IntegrityPoint) DeliveredFraction() float64 {
	if p.Offered == 0 {
		return 0
	}
	return float64(p.Delivered) / float64(p.Offered)
}

// EscapeRate is corrupted-payload escapes per offered packet — the silent-
// corruption exposure. With the end-to-end check on, an escape is caught and
// retried, so exposure does not imply wrong data was accepted; with it off,
// every escape is accepted as-is.
func (p IntegrityPoint) EscapeRate() float64 {
	if p.Offered == 0 {
		return 0
	}
	return float64(p.CorruptEscapes) / float64(p.Offered)
}

// EscapeRateCI is the 95% Wilson interval around EscapeRate. Escape counts
// are single digits out of a few hundred offered packets, so the interval —
// not the point estimate — is the honest statement of exposure; at zero
// observed escapes it still has positive width (the rule of three).
func (p IntegrityPoint) EscapeRateCI() (lo, hi float64) {
	return stats.WilsonCI95(p.CorruptEscapes, p.Offered)
}

// String renders the point as one sweep row.
func (p IntegrityPoint) String() string {
	e2e := "off"
	if p.E2ECheck {
		e2e = "on"
	}
	return fmt.Sprintf("ber=%-7.0e e2e=%-3s delivered=%6.2f%%  corrupted=%5d  crc=%5d  escapes=%4d  retried=%4d",
		p.BER, e2e, p.DeliveredFraction()*100, p.Corrupted, p.CrcDetected, p.CorruptEscapes, p.Retried)
}

// IntegritySweepOptions parameterizes an IntegritySweep. Zero fields take
// defaults: a 4×4 mesh, 400 packets of 5 flits per row, retry budget 8, a
// deliberately weak 4-bit hop CRC (so escapes actually occur), and bit-error
// rates {0, 1e-4, 1e-3, 5e-3, 1e-2}.
type IntegritySweepOptions struct {
	Radix      int
	Packets    int
	PacketLen  int
	RetryLimit int
	// CrcBits is the modeled hop CRC width (negative disables hop
	// detection entirely).
	CrcBits int
	// BERs are the bit-error rates swept; each runs once with the
	// end-to-end check on and once with it off.
	BERs []float64
	// Check runs every row under the per-cycle invariant checker.
	Check bool
	Seed  uint64
	// Workers sizes the pool the sweep's cells fan out over; 0 means
	// runtime.NumCPU(). Each cell owns its own network and RNG, so any
	// worker count produces identical points in identical order.
	Workers int
}

// IntegritySweep measures silent-corruption tolerance: for each bit-error
// rate it runs the flit-reservation network twice — end-to-end check on and
// off — until every offered packet resolves, and reports delivered fraction
// alongside the corruption ledger. With the check on, every escaped
// corruption is caught and retried, so delivery stays total even at bit-error
// rates far above realistic links; with it off, EscapeRate is exactly the
// silently accepted corruption. The cells execute concurrently on the
// harness worker pool; the points are identical to a serial sweep.
func IntegritySweep(o IntegritySweepOptions) ([]IntegrityPoint, error) {
	io := experiment.IntegritySweepOptions{
		Radix: o.Radix, Packets: o.Packets, PacketLen: o.PacketLen,
		RetryLimit: o.RetryLimit, CrcBits: o.CrcBits, BERs: o.BERs,
		Check: o.Check, Seed: o.Seed,
	}
	pts, err := harness.IntegritySweep(context.Background(), io, harness.Options{Workers: o.Workers})
	if err != nil {
		return nil, err
	}
	out := make([]IntegrityPoint, len(pts))
	for i, p := range pts {
		out[i] = IntegrityPoint{
			BER: p.BER, CrcBits: p.CrcBits, E2ECheck: p.E2ECheck,
			Offered: p.Offered, Delivered: p.Delivered, Abandoned: p.Abandoned,
			Corrupted: p.Corrupted, CrcDetected: p.CrcDetected,
			CorruptEscapes:      p.CorruptEscapes,
			PhantomReservations: p.PhantomReservations,
			ReclaimedSlots:      p.ReclaimedSlots,
			Retried:             p.Retried, DeliveredAfterRetry: p.DeliveredAfterRetry,
			AvgLatency: p.AvgLatency, Cycles: int64(p.Cycles), Wedged: p.Wedged,
		}
	}
	return out, nil
}
