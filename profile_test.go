package frfc

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestProfiledRunObserved covers the public self-profiling surface: enabling
// ObserverOptions.Profile populates the Result's Prof* summary, the exports
// render, and the hot-router ranking is ordered.
func TestProfiledRunObserved(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"FR6", FR6(FastControl, 5)},
		{"VC8", VC8(FastControl, 5)},
		{"WH", WormholeSpec(FastControl, 8, 5)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := smallSpec(t, tc.spec)
			obs := NewObserver(ObserverOptions{Profile: true, MetricsEpoch: 16})
			r := RunObserved(spec, 0.3, obs)
			if r.ProfTicks == 0 || r.ProfActiveTicks == 0 {
				t.Fatalf("no profile activity: ticks=%d active=%d", r.ProfTicks, r.ProfActiveTicks)
			}
			if r.ProfIdleFraction <= 0 || r.ProfIdleFraction >= 1 {
				t.Fatalf("idle fraction %v out of (0,1) at light load", r.ProfIdleFraction)
			}
			// Phase attribution lives inside the flit-reservation router;
			// the VC-lineage fabrics report component activity only.
			if tc.name == "FR6" && (r.ProfSchedWork == 0 || r.ProfArbWork == 0 ||
				r.ProfSwitchWork == 0 || r.ProfCreditWork == 0) {
				t.Fatalf("phase attribution empty: sched=%d arb=%d switch=%d credit=%d",
					r.ProfSchedWork, r.ProfArbWork, r.ProfSwitchWork, r.ProfCreditWork)
			}

			// Profiling is observation-only: the shared fields must match
			// an unobserved Run bit-for-bit.
			plain := Run(spec, 0.3)
			stripped := r
			stripped.ProfTicks, stripped.ProfActiveTicks = 0, 0
			stripped.ProfIdleFraction = 0
			stripped.ProfSchedWork, stripped.ProfArbWork = 0, 0
			stripped.ProfSwitchWork, stripped.ProfCreditWork = 0, 0
			if !reflect.DeepEqual(stripped, plain) {
				t.Errorf("profiled result diverged from plain Run:\nprofiled: %+v\nplain:    %+v", stripped, plain)
			}

			var pj bytes.Buffer
			if err := obs.WriteProfileJSON(&pj); err != nil {
				t.Fatalf("WriteProfileJSON: %v", err)
			}
			var prof struct {
				Radix int `json:"radix"`
				Nodes []struct {
					Ticks  []int64 `json:"ticks"`
					Active []int64 `json:"active"`
				} `json:"nodes"`
				Mem struct {
					Epochs int64 `json:"epochs"`
				} `json:"mem"`
			}
			if err := json.Unmarshal(pj.Bytes(), &prof); err != nil {
				t.Fatalf("profile JSON invalid: %v", err)
			}
			if prof.Radix != 4 || len(prof.Nodes) != 16 {
				t.Fatalf("profile header wrong: radix=%d nodes=%d", prof.Radix, len(prof.Nodes))
			}
			if prof.Mem.Epochs == 0 {
				t.Fatalf("no memory epochs sampled")
			}

			var csv bytes.Buffer
			if err := obs.WriteIdleCSV(&csv); err != nil {
				t.Fatalf("WriteIdleCSV: %v", err)
			}
			lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
			if len(lines) != 5 || !strings.HasPrefix(lines[0], "#") {
				t.Fatalf("idle CSV is not # + 4 rows:\n%s", csv.String())
			}

			hot := obs.HottestRouters(3)
			if len(hot) != 3 {
				t.Fatalf("HottestRouters(3) returned %d entries", len(hot))
			}
			for i := 1; i < len(hot); i++ {
				if hot[i].ActiveFraction > hot[i-1].ActiveFraction {
					t.Fatalf("hot ranking out of order: %+v", hot)
				}
			}
			if s := obs.ProfileSummary(); !strings.Contains(s, "idle") {
				t.Fatalf("ProfileSummary = %q", s)
			}
		})
	}
}

// TestProfileErrorsWhenNotProfiling: the profile exports must fail loudly —
// not silently emit nothing — on an observer without profiling armed.
func TestProfileErrorsWhenNotProfiling(t *testing.T) {
	obs := NewObserver(ObserverOptions{Metrics: true})
	var buf bytes.Buffer
	if err := obs.WriteProfileJSON(&buf); err == nil || !strings.Contains(err.Error(), "Profile") {
		t.Errorf("WriteProfileJSON err = %v", err)
	}
	if err := obs.WriteIdleCSV(&buf); err == nil || !strings.Contains(err.Error(), "Profile") {
		t.Errorf("WriteIdleCSV err = %v", err)
	}
	if hot := obs.HottestRouters(3); hot != nil {
		t.Errorf("HottestRouters on unprofiled observer = %v", hot)
	}
	if s := obs.ProfileSummary(); s != "" {
		t.Errorf("ProfileSummary on unprofiled observer = %q", s)
	}
	var nilObs *Observer
	if err := nilObs.WriteProfileJSON(&buf); err == nil {
		t.Errorf("nil observer WriteProfileJSON succeeded")
	}
}

// TestProfiledCampaignBitIdentical: ParallelOptions.Profile must not disturb
// the worker-count determinism contract.
func TestProfiledCampaignBitIdentical(t *testing.T) {
	spec := smallSpec(t, FR6(FastControl, 5))
	jobs := []Job{
		{Spec: spec, Load: 0.2},
		{Spec: spec, Load: 0.4},
		{Spec: smallSpec(t, VC8(FastControl, 5)), Load: 0.3},
	}
	serial, err := RunJobs(context.Background(), jobs, ParallelOptions{Workers: 1, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunJobs(context.Background(), jobs, ParallelOptions{Workers: 4, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if serial[i].Err != "" || parallel[i].Err != "" {
			t.Fatalf("job %d failed: serial=%q parallel=%q", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Result.ProfTicks == 0 {
			t.Errorf("job %d: no profile summary in campaign result", i)
		}
		if !reflect.DeepEqual(serial[i].Result, parallel[i].Result) {
			t.Errorf("job %d diverged between 1 and 4 workers:\n1w: %+v\n4w: %+v",
				i, serial[i].Result, parallel[i].Result)
		}
	}
}
