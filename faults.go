package frfc

import (
	"context"
	"fmt"

	"frfc/internal/experiment"
	"frfc/internal/harness"
)

// FaultPoint is one row of a FaultSweep: a flit-reservation network run at
// one data-flit loss rate under one retry policy until every offered packet's
// fate was resolved.
type FaultPoint struct {
	// DataFaultRate is the per-flit per-link loss probability of the row.
	DataFaultRate float64
	// RetryLimit is the retry budget the row ran with; 0 is the
	// detection-only arm, where a lost packet stays lost.
	RetryLimit int

	Offered   int64
	Delivered int64
	// Abandoned counts packets given up on after exhausting the budget.
	Abandoned int64
	// LostDetected counts loss events at destinations — per transmission
	// attempt under retry, per packet without.
	LostDetected int64
	DroppedFlits int64

	// Retried counts end-to-end retransmissions issued;
	// DeliveredAfterRetry counts packets whose delivering attempt was a
	// retry.
	Retried             int64
	DeliveredAfterRetry int64

	// AvgLatency is the mean creation-to-delivery latency of the packets
	// that made it, in cycles; retries inflate it.
	AvgLatency float64
	// Cycles is how long the row took to resolve everything.
	Cycles int64
	// Wedged is set if the no-progress watchdog fired — it never should.
	Wedged bool
}

// DeliveredFraction is the end-to-end delivery probability of the row.
func (p FaultPoint) DeliveredFraction() float64 {
	if p.Offered == 0 {
		return 0
	}
	return float64(p.Delivered) / float64(p.Offered)
}

// String renders the point as one sweep row.
func (p FaultPoint) String() string {
	policy := "detect-only"
	if p.RetryLimit > 0 {
		policy = fmt.Sprintf("retry<=%d", p.RetryLimit)
	}
	return fmt.Sprintf("loss=%5.1f%%  %-11s delivered=%5.1f%%  retried=%4d  abandoned=%3d  latency=%8.2f",
		p.DataFaultRate*100, policy, p.DeliveredFraction()*100, p.Retried, p.Abandoned, p.AvgLatency)
}

// FaultSweepOptions parameterizes a FaultSweep. Zero fields take defaults:
// a 4×4 mesh, 400 packets of 5 flits per row, retry budget 8, and loss rates
// 0–20%.
type FaultSweepOptions struct {
	Radix      int
	Packets    int
	PacketLen  int
	RetryLimit int
	Rates      []float64
	Seed       uint64
	// Workers sizes the pool the sweep's cells fan out over; 0 means
	// runtime.NumCPU(). Each cell owns its own network and RNG, so any
	// worker count produces identical points in identical order.
	Workers int
}

// FaultSweep measures end-to-end delivery under data-flit loss: each loss
// rate is run twice — detection only, and with the end-to-end retry layer —
// resolving every offered packet. With retries the delivered fraction stays
// at 100% through percent-level loss rates, at a latency cost the AvgLatency
// column exposes. The cells execute concurrently on the harness worker pool
// (Options.Workers); the points are identical to a serial sweep.
func FaultSweep(o FaultSweepOptions) []FaultPoint {
	pts, _ := harness.FaultSweep(context.Background(), experiment.FaultSweepOptions{
		Radix: o.Radix, Packets: o.Packets, PacketLen: o.PacketLen,
		RetryLimit: o.RetryLimit, Rates: o.Rates, Seed: o.Seed,
	}, harness.Options{Workers: o.Workers})
	out := make([]FaultPoint, len(pts))
	for i, p := range pts {
		out[i] = FaultPoint{
			DataFaultRate: p.DataFaultRate, RetryLimit: p.RetryLimit,
			Offered: p.Offered, Delivered: p.Delivered, Abandoned: p.Abandoned,
			LostDetected: p.LostDetected, DroppedFlits: p.DroppedFlits,
			Retried: p.Retried, DeliveredAfterRetry: p.DeliveredAfterRetry,
			AvgLatency: p.AvgLatency, Cycles: int64(p.Cycles), Wedged: p.Wedged,
		}
	}
	return out
}
