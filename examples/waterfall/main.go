// Latency provenance: where does each packet's latency actually come from?
//
// Mean latency is a single number; the waterfall splits it into the seven
// lifecycle stages every packet passes through — source queueing, reservation
// handshake, arbitration, backpressure stalls, scheduled-slot residence, wire
// traversal, and destination drain — and the stages sum *exactly* to the
// measured latency, cycle for cycle. This example arms
// ObserverOptions.Waterfall on flit-reservation (FR6) and virtual-channel
// (VC8) runs at 20/40/60% offered load and prints the per-stage means side
// by side: FR's latency lives in the reservation handshake and the scheduled
// slots it buys (contention moves into Sched as load rises, not into
// arbitration), while VC's congestion shows up as Arb plus Stall —
// backpressure the reservation protocol was designed to pre-pay.
//
// The waterfall is observation-only: the run's Result is bit-identical with
// it on or off, and the decomposition is exported on the Result's Waterfall*
// fields, as JSON/CSV artifacts (frsim -waterfall, sweep -waterfall), and as
// Prometheus metrics when a sweep runs with -status-addr.
package main

import (
	"fmt"

	"frfc"
)

var stages = []string{"queue", "reserve", "arb", "stall", "sched", "link", "drain"}

// perStage returns the seven per-packet stage means in waterfall order.
func perStage(r frfc.Result) []float64 {
	n := float64(r.WaterfallPackets)
	out := []float64{
		float64(r.WaterfallQueue) / n, float64(r.WaterfallReserve) / n,
		float64(r.WaterfallArb) / n, float64(r.WaterfallStall) / n,
		float64(r.WaterfallSched) / n, float64(r.WaterfallLink) / n,
		float64(r.WaterfallDrain) / n,
	}
	return out
}

func main() {
	specs := []frfc.Spec{
		frfc.FR6(frfc.FastControl, 5),
		frfc.VC8(frfc.FastControl, 5),
	}
	loads := []float64{0.20, 0.40, 0.60}

	fmt.Println("mean cycles per packet by lifecycle stage (stages sum exactly to the mean):")
	fmt.Printf("%-6s %5s  %7s %7s %7s %7s %7s %7s %7s  %8s\n",
		"config", "load", stages[0], stages[1], stages[2], stages[3],
		stages[4], stages[5], stages[6], "total")
	for _, spec := range specs {
		for _, load := range loads {
			obs := frfc.NewObserver(frfc.ObserverOptions{Waterfall: true})
			r := frfc.RunObserved(spec.WithCheck(true), load, obs)
			if r.WaterfallPackets == 0 {
				fmt.Printf("%-6s %4.0f%%  no decomposed packets (saturated)\n",
					spec.Name(), load*100)
				continue
			}
			fmt.Printf("%-6s %4.0f%% ", spec.Name(), load*100)
			total := 0.0
			for _, v := range perStage(r) {
				fmt.Printf(" %7.2f", v)
				total += v
			}
			fmt.Printf("  %8.2f\n", total)
		}
	}

	// The one-line summary names the dominant stage — the headline a
	// dashboard would show next to the latency number.
	for _, spec := range specs {
		obs := frfc.NewObserver(frfc.ObserverOptions{Waterfall: true})
		frfc.RunObserved(spec.WithCheck(true), 0.40, obs)
		fmt.Printf("\n%s at 40%%: %s\n", spec.Name(), obs.WaterfallSummary())
	}
}
