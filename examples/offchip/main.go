// Off-chip multiprocessor study: flit reservation without fast wires. In a
// multiprocessor interconnect every wire runs at the same speed, but control
// flits can still lead data flits in *time*: for a DRAM read reply, the
// header is known while the array access is still in flight, so the control
// flits can be injected one or more cycles early (Section 4.4's "leading
// control").
//
// This example reproduces the two findings of Figures 8 and 9:
//
//   - throughput is essentially independent of the lead (1, 2 or 4 cycles),
//     because once the data network congests, control flits pull ahead on
//     their lightly loaded network regardless of the initial lead;
//   - against virtual channels on the same 1-cycle wires, flit reservation
//     matches the base latency and wins under load.
package main

import (
	"fmt"

	"frfc"
)

func main() {
	fmt.Println("off-chip mesh, all wires 1 cycle, 5-flit packets")
	fmt.Println()

	// Finding 1: the lead barely matters.
	fmt.Println("FR6 with control injected N cycles ahead of data:")
	fmt.Printf("%-10s %14s %14s\n", "lead", "saturation", "lat@50%")
	for _, lead := range []int{1, 2, 4} {
		s := frfc.FRLead(lead, 5).WithSampling(3000, 2000)
		sat := frfc.SaturationThroughput(s, 0.02)
		r := frfc.Run(s, 0.50)
		fmt.Printf("%-10d %13.0f%% %11.1f cy\n", lead, sat*100, r.AvgLatency)
	}
	fmt.Println()

	// Finding 2: versus virtual channels on identical wires.
	fmt.Println("1-cycle lead vs virtual channels:")
	fmt.Printf("%-10s %12s %12s %14s\n", "config", "base lat.", "lat@50%", "saturation")
	for _, s := range []frfc.Spec{
		frfc.FRLead(1, 5),
		frfc.VC8(frfc.LeadingControl, 5),
		frfc.VC16(frfc.LeadingControl, 5),
	} {
		s = s.WithSampling(3000, 2000)
		r := frfc.Run(s, 0.50)
		fmt.Printf("%-10s %9.1f cy %9.1f cy %13.0f%%\n",
			s.Name(), frfc.BaseLatency(s), r.AvgLatency, frfc.SaturationThroughput(s, 0.02)*100)
	}
	fmt.Println()
	fmt.Println("The 1-cycle data deferral substitutes for VC's 1-cycle per-hop")
	fmt.Println("routing/arbitration, so base latencies match; under load, control")
	fmt.Println("flits forge ahead of the congested data network and reservations")
	fmt.Println("recycle buffers immediately, extending throughput.")
}
