// Fault tolerance study: Section 5 of the paper argues that when control
// information or data flits are corrupted, a flit-reservation network can
// simply drop the affected data flits — the next hop sees an idle pattern
// where its reservation table expected data, and "the collective state of
// the scheduling tables will return to a consistent state with no lost
// buffers or stalled links".
//
// This example injects data-flit loss at increasing rates and shows exactly
// that behavior: the network keeps running at full throughput for the
// surviving traffic, every intact packet is delivered, and every affected
// packet is detected as lost at its destination's reassembly schedule (where
// an end-to-end protocol would trigger retransmission).
//
// The second half runs that end-to-end protocol: the destination's loss
// detection drives a NACK back to the source, which retries with exponential
// backoff under a bounded budget. Delivery returns to 100% through
// percent-level loss rates — the retries simply cost latency. Corrupted
// control flits never need any of this; link-level retransmission recovers
// them below the flow-control layer, at the price of arriving late.
package main

import (
	"fmt"

	"frfc"
)

func main() {
	fmt.Println("FR6, 8x8 mesh, 5-flit packets, 50% offered load, fast control")
	fmt.Printf("%-12s %14s %12s %12s %14s\n", "fault rate", "flits dropped", "pkts lost", "latency", "accepted")
	for _, rate := range []float64{0, 0.0001, 0.001, 0.01} {
		spec, err := frfc.Custom(fmt.Sprintf("FR6-loss%.4f", rate), frfc.Options{
			FlitReservation: true,
			DataBuffers:     6,
			CtrlVCs:         2,
			Wiring:          frfc.FastControl,
			DataFaultRate:   rate,
		})
		if err != nil {
			panic(err)
		}
		r := frfc.Run(spec.WithSampling(4000, 2500), 0.50)
		fmt.Printf("%-12.4f %14d %12d %9.1f cy %13.1f%%\n",
			rate, r.DroppedFlits, r.LostPackets, r.AvgLatency, r.AcceptedLoad*100)
	}
	fmt.Println()
	fmt.Println("Latency for delivered packets barely moves and the network never")
	fmt.Println("wedges: a dropped flit costs exactly one wasted channel slot per")
	fmt.Println("remaining hop and nothing else. Loss detection is end-to-end, via")
	fmt.Println("the hole it leaves in the destination's reassembly schedule.")

	fmt.Println()
	fmt.Println("Recovery layer: same loss detection, now driving NACKs and source")
	fmt.Println("retries (budget 8, exponential backoff). Control links additionally")
	fmt.Println("corrupt 1% of control flits, recovered by link-level retransmission.")
	fmt.Println()
	fmt.Printf("%-12s %12s %12s %12s %14s\n", "fault rate", "retried", "abandoned", "ctrl corrupt", "retry latency")
	for _, rate := range []float64{0.001, 0.01, 0.05} {
		spec, err := frfc.Custom(fmt.Sprintf("FR6-retry%.3f", rate), frfc.Options{
			FlitReservation: true,
			DataBuffers:     6,
			CtrlVCs:         2,
			Wiring:          frfc.FastControl,
			DataFaultRate:   rate,
			CtrlFaultRate:   0.01,
			RetryLimit:      8,
			WatchdogCycles:  100000,
		})
		if err != nil {
			panic(err)
		}
		r := frfc.Run(spec.WithSampling(4000, 2500), 0.50)
		fmt.Printf("%-12.3f %12d %12d %12d %11.1f cy\n",
			rate, r.RetriedPackets, r.AbandonedPackets, r.CtrlCorrupted, r.AvgRetryLatency)
	}

	fmt.Println()
	fmt.Println("The reliability claim, measured to full resolution per row:")
	fmt.Println()
	for _, p := range frfc.FaultSweep(frfc.FaultSweepOptions{Packets: 200}) {
		fmt.Println(p)
	}
}
