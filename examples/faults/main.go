// Fault tolerance study: Section 5 of the paper argues that when control
// information or data flits are corrupted, a flit-reservation network can
// simply drop the affected data flits — the next hop sees an idle pattern
// where its reservation table expected data, and "the collective state of
// the scheduling tables will return to a consistent state with no lost
// buffers or stalled links".
//
// This example injects data-flit loss at increasing rates and shows exactly
// that behavior: the network keeps running at full throughput for the
// surviving traffic, every intact packet is delivered, and every affected
// packet is detected as lost at its destination's reassembly schedule (where
// an end-to-end protocol would trigger retransmission).
package main

import (
	"fmt"

	"frfc"
)

func main() {
	fmt.Println("FR6, 8x8 mesh, 5-flit packets, 50% offered load, fast control")
	fmt.Printf("%-12s %14s %12s %12s %14s\n", "fault rate", "flits dropped", "pkts lost", "latency", "accepted")
	for _, rate := range []float64{0, 0.0001, 0.001, 0.01} {
		spec, err := frfc.Custom(fmt.Sprintf("FR6-loss%.4f", rate), frfc.Options{
			FlitReservation: true,
			DataBuffers:     6,
			CtrlVCs:         2,
			Wiring:          frfc.FastControl,
			DataFaultRate:   rate,
		})
		if err != nil {
			panic(err)
		}
		r := frfc.Run(spec.WithSampling(4000, 2500), 0.50)
		fmt.Printf("%-12.4f %14d %12d %9.1f cy %13.1f%%\n",
			rate, r.DroppedFlits, r.LostPackets, r.AvgLatency, r.AcceptedLoad*100)
	}
	fmt.Println()
	fmt.Println("Latency for delivered packets barely moves and the network never")
	fmt.Println("wedges: a dropped flit costs exactly one wasted channel slot per")
	fmt.Println("remaining hop and nothing else. Loss detection is end-to-end, via")
	fmt.Println("the hole it leaves in the destination's reassembly schedule.")
}
