// Horizon tuning study: how far ahead should a flit-reservation router be
// able to reserve? The scheduling horizon s sets the output and input
// reservation tables' size (storage grows linearly in s, Table 1) and the
// width of the arrival-time stamps (bandwidth grows as log2 s, Table 2), so
// shorter is cheaper — and Figure 7 shows throughput is remarkably
// insensitive above s=32. This example reproduces that sweep on a custom
// configuration and prints the storage cost alongside, the trade a designer
// actually faces.
package main

import (
	"fmt"

	"frfc"
)

func main() {
	fmt.Println("FR6, fast control, 5-flit packets: scheduling-horizon sweep")
	fmt.Println()
	fmt.Printf("%-10s %14s %12s %14s\n", "horizon", "saturation", "lat@50%", "stamp bits")
	for _, s := range []int{16, 32, 64, 128} {
		spec, err := frfc.Custom(fmt.Sprintf("FR6-s%d", s), frfc.Options{
			FlitReservation: true,
			DataBuffers:     6,
			CtrlVCs:         2,
			Horizon:         s,
			Wiring:          frfc.FastControl,
		})
		if err != nil {
			panic(err)
		}
		spec = spec.WithSampling(3000, 2000)
		sat := frfc.SaturationThroughput(spec, 0.02)
		r := frfc.Run(spec, 0.50)
		fmt.Printf("%-10d %13.0f%% %9.1f cy %14d\n", s, sat*100, r.AvgLatency, bits(s))
	}
	fmt.Println()
	fmt.Println("A 16-cycle horizon already lands within ~10% of the best throughput;")
	fmt.Println("beyond 32 cycles the extra reach goes unused unless control flits")
	fmt.Println("lead their data by much more than the horizon. Spend the bits on")
	fmt.Println("buffers instead.")
}

// bits is the arrival-time stamp width, ceil(log2 s).
func bits(s int) int {
	b := 0
	for v := s - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}
