// Silent-corruption study: the failure mode Section 5 of the paper does not
// model is the flit that arrives on time with the wrong bits. Flit
// reservation is uniquely exposed to it — control flits race ahead of data
// programming per-cycle reservation tables, so a corrupted-but-delivered
// control flit can silently diverge a table from reality.
//
// The first half sweeps link bit-error rates with a deliberately weak 4-bit
// hop CRC and shows the layered defense: detected-corrupt data converts into
// the ordinary loss path that end-to-end retry recovers, escapes are caught
// by the destination's payload check and retried, and phantom reservations
// installed by escaped control corruption are reclaimed by the table timeout.
// Delivery stays total through bit-error rates two orders of magnitude
// beyond realistic links; the residual exposure is reported as a Wilson
// interval because escape counts are single digits out of hundreds offered.
//
// The second half turns one intensity knob into a deterministic chaos
// campaign — composed loss, corruption, link flaps, and (at full intensity)
// router kills — and shows graceful degradation: moderate chaos loses
// nothing, and at full intensity the only unfinished traffic is the handful
// of packets stranded by dead routers, failed fast as unreachable.
package main

import (
	"fmt"

	"frfc"
)

func main() {
	fmt.Println("FR6, 4x4 mesh, 5-flit packets, 4-bit hop CRC, retry budget 8")
	fmt.Println()
	pts, err := frfc.IntegritySweep(frfc.IntegritySweepOptions{Check: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-8s %-4s %10s %10s %9s %8s %18s\n",
		"BER", "e2e", "delivered", "corrupted", "caught", "escapes", "escape rate (95%)")
	for _, p := range pts {
		e2e := "off"
		if p.E2ECheck {
			e2e = "on"
		}
		lo, hi := p.EscapeRateCI()
		fmt.Printf("%-8.0e %-4s %9.2f%% %10d %9d %8d   [%.4f, %.4f]\n",
			p.BER, e2e, p.DeliveredFraction()*100, p.Corrupted, p.CrcDetected,
			p.CorruptEscapes, lo, hi)
	}
	fmt.Println()
	fmt.Println("Every row delivers 100%: detected corruption rides the loss/retry")
	fmt.Println("path, and with the end-to-end check on even escapes are caught and")
	fmt.Println("retried. With it off, the escape column is silently accepted data —")
	fmt.Println("the exposure a real deployment sizes its CRC against.")

	fmt.Println()
	fmt.Println("Chaos campaigns (deterministic in the seed; kills only at intensity >= 0.75):")
	fmt.Println()
	cpts, err := frfc.ChaosSweep(frfc.ChaosSweepOptions{Check: true})
	if err != nil {
		panic(err)
	}
	for _, p := range cpts {
		fmt.Println(p)
	}
	fmt.Println()
	fmt.Println("Moderate intensity delivers everything despite flaps, loss and")
	fmt.Println("corruption; at full intensity only traffic addressed to killed")
	fmt.Println("routers is written off — fast, as unreachable, never abandoned.")
}
