// Quickstart: simulate flit-reservation flow control against the
// virtual-channel baseline on the paper's 8x8 mesh and print the comparison
// that motivates the technique — equal storage, higher throughput, lower
// latency.
package main

import (
	"fmt"

	"frfc"
)

func main() {
	// The paper's storage-matched pair: FR with 6 pooled buffers per
	// input vs VC with 8 buffers per input (Table 1 shows both cost
	// ~10.5 kbit per node). Fast control wiring: data wires 4 cycles per
	// hop, control and credit wires 1 cycle.
	fr := frfc.FR6(frfc.FastControl, 5).WithSampling(4000, 2500)
	vc := frfc.VC8(frfc.FastControl, 5).WithSampling(4000, 2500)

	fmt.Println("offered-load sweep, 5-flit packets, 8x8 mesh, uniform traffic")
	fmt.Printf("%-8s %16s %16s\n", "load%", "FR6 latency", "VC8 latency")
	for _, load := range []float64{0.20, 0.40, 0.50, 0.60, 0.70} {
		rf := frfc.Run(fr, load)
		rv := frfc.Run(vc, load)
		fmt.Printf("%-8.0f %16s %16s\n", load*100, cell(rf), cell(rv))
	}

	fmt.Println()
	fmt.Printf("base latency: FR6 %.1f cycles, VC8 %.1f cycles\n",
		frfc.BaseLatency(fr), frfc.BaseLatency(vc))
	fmt.Println("(flit reservation hides per-hop routing and arbitration latency:")
	fmt.Println(" control flits race ahead on the fast wires and pre-arrange every move)")
}

func cell(r frfc.Result) string {
	if r.Saturated {
		return "saturated"
	}
	return fmt.Sprintf("%.1f cycles", r.AvgLatency)
}
