// Simulator self-profiling: where do the simulated cycles actually go?
//
// Every component of the simulated network — router, network interface,
// sink — is ticked every cycle whether or not it has work, so the
// simulator's own hot path is dominated by components doing nothing. This
// example arms ObserverOptions.Profile on a standard 8x8 uniform-random run
// and prints what the activity accounting sees: the idle-fraction heatmap
// across the mesh (corner and edge routers idle more — fewer routes cross
// them), the three hottest routers (the mesh center, where dimension-order
// routes concentrate), and the flit-reservation router's per-phase work
// split (scheduling, arbitration, switch traversal, credit handling).
//
// Profiling is observation-only: the run's Result is bit-identical with it
// on or off, and the accounting itself is exported on the Result's Prof*
// fields, as JSON/CSV artifacts (frsim -profile/-idle-csv), and as
// Prometheus gauges when a sweep runs with -status-addr.
package main

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"frfc"
)

func main() {
	spec := frfc.FR6(frfc.FastControl, 5)
	obs := frfc.NewObserver(frfc.ObserverOptions{Profile: true})
	res := frfc.RunObserved(spec, 0.40, obs)

	fmt.Printf("%s, 8x8 mesh, 40%% offered load: avg latency %.1f cycles, accepted %.1f%%cap\n",
		spec.Name(), res.AvgLatency, res.AcceptedLoad*100)
	fmt.Printf("activity: %s\n\n", obs.ProfileSummary())

	// The k×k heatmap: each cell is the fraction of that node's *router*
	// ticks that did no work (interfaces and sinks idle far more — the
	// one-line summary above splits the components out).
	fmt.Println("router idle fraction by node, percent (row y=0 first):")
	for _, row := range idleGrid(obs) {
		for _, v := range row {
			fmt.Printf(" %5.1f", v*100)
		}
		fmt.Println()
	}

	fmt.Println("\nhottest routers (highest active-tick fraction):")
	for i, h := range obs.HottestRouters(3) {
		fmt.Printf("  %d. router %2d at (%d,%d): %.1f%% of ticks active\n",
			i+1, h.Node, h.X, h.Y, h.ActiveFraction*100)
	}

	work := res.ProfSchedWork + res.ProfArbWork + res.ProfSwitchWork + res.ProfCreditWork
	fmt.Printf("\nFR router phase work (%d items): sched %.1f%%, arb %.1f%%, switch %.1f%%, credit %.1f%%\n",
		work,
		100*float64(res.ProfSchedWork)/float64(work),
		100*float64(res.ProfArbWork)/float64(work),
		100*float64(res.ProfSwitchWork)/float64(work),
		100*float64(res.ProfCreditWork)/float64(work))
}

// idleGrid reads the k×k idle fractions back out of the observer's CSV
// export: one row per mesh row, a "#" comment header first.
func idleGrid(obs *frfc.Observer) [][]float64 {
	var buf bytes.Buffer
	if err := obs.WriteIdleCSV(&buf); err != nil {
		panic(err)
	}
	var grid [][]float64
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		var row []float64
		for _, cell := range strings.Split(line, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
			if err != nil {
				panic(err)
			}
			row = append(row, v)
		}
		grid = append(grid, row)
	}
	return grid
}
