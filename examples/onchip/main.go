// On-chip interconnect study: the scenario that motivated the paper. As VLSI
// wires scale, cross-chip data wires cost several clock cycles per hop, but a
// few wires on a thick upper metal layer can run 4x faster. This example
// provisions an 8x8 on-chip mesh, spends those fast wires on a control
// network, and asks the design questions a network architect would:
//
//  1. How much buffer storage does flit reservation save at equal
//     throughput?
//  2. Where does each configuration saturate?
//  3. What does the latency curve look like for the cache-line-sized (5
//     flits of 256 bits = 160 bytes) packets of a coherence protocol?
package main

import (
	"fmt"

	"frfc"
)

func main() {
	const pktLen = 5 // a 160-byte cache line in 256-bit flits

	configs := []frfc.Spec{
		frfc.VC8(frfc.FastControl, pktLen),
		frfc.FR6(frfc.FastControl, pktLen),
		frfc.VC16(frfc.FastControl, pktLen),
		frfc.FR13(frfc.FastControl, pktLen),
	}

	fmt.Println("on-chip 8x8 mesh, 256-bit data flits, fast control wires")
	fmt.Println()

	// Question 1 & 2: storage vs saturation throughput.
	fmt.Printf("%-6s %12s %14s %12s\n", "config", "storage", "saturation", "base lat.")
	storage := map[string]float64{}
	for _, row := range frfc.StorageTable() {
		storage[row.Name] = float64(row.BitsPerNode) / 1024
	}
	for _, s := range configs {
		s = s.WithSampling(3000, 2000)
		sat := frfc.SaturationThroughput(s, 0.02)
		fmt.Printf("%-6s %9.1f kb %13.0f%% %9.1f cy\n",
			s.Name(), storage[s.Name()], sat*100, frfc.BaseLatency(s))
	}
	fmt.Println()
	fmt.Println("FR6 (10.5 kb/node) reaches the throughput neighborhood of VC16")
	fmt.Println("(20.5 kb/node): reservation-driven buffer reuse halves the storage")
	fmt.Println("needed for a given saturation point.")
	fmt.Println()

	// Question 3: the full latency curve for the two storage-matched
	// designs.
	fr := frfc.FR6(frfc.FastControl, pktLen).WithSampling(3000, 2000)
	vc := frfc.VC8(frfc.FastControl, pktLen).WithSampling(3000, 2000)
	loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.55, 0.6, 0.65, 0.7, 0.75}
	fmt.Printf("%-8s %14s %14s\n", "load%", "FR6", "VC8")
	for i, rf := range frfc.Sweep(fr, loads) {
		rv := frfc.Run(vc, loads[i])
		fmt.Printf("%-8.0f %14s %14s\n", loads[i]*100, cell(rf), cell(rv))
	}
}

func cell(r frfc.Result) string {
	if r.Saturated {
		return "saturated"
	}
	return fmt.Sprintf("%.1f", r.AvgLatency)
}
