// Flow-control lineage: the Section 2 story of the paper, measured. Each
// generation of flow control allocates buffers and bandwidth at a finer
// grain or further in advance:
//
//	store-and-forward  whole packets, hop by hop       (Cosmic Cube era)
//	virtual cut-through packet buffers, streaming       [KerKle79]
//	wormhole           flit buffers, channel held       [DalSei86]
//	virtual channels   flit buffers, channel shared     [Dally92]
//	flit reservation   everything reserved in advance   (this paper)
//
// This example runs all five on the same 8x8 mesh with the same 5-flit
// packets and fast-wire-era link timing, and prints base latency and
// saturation throughput for each.
package main

import (
	"fmt"

	"frfc"
)

func main() {
	specs := []frfc.Spec{
		frfc.StoreAndForwardSpec(frfc.FastControl, 2, 5),
		frfc.CutThroughSpec(frfc.FastControl, 2, 5),
		frfc.WormholeSpec(frfc.FastControl, 8, 5),
		frfc.VC8(frfc.FastControl, 5),
		frfc.CircuitSpec(frfc.FastControl, 5),
		frfc.FR6(frfc.FastControl, 5),
	}
	labels := []string{
		"store-and-forward (2 pkt bufs)",
		"virtual cut-through (2 pkt bufs)",
		"wormhole (8 flit bufs)",
		"virtual channels (2x4 flit bufs)",
		"circuit switching (no bufs)",
		"flit reservation (6 flit bufs)",
	}

	fmt.Println("8x8 mesh, 5-flit packets, uniform traffic, 4-cycle data links")
	fmt.Printf("%-34s %12s %14s\n", "flow control", "base lat.", "saturation")
	for i, s := range specs {
		s = s.WithSampling(2500, 2000)
		base := frfc.BaseLatency(s)
		sat := frfc.SaturationThroughput(s, 0.02)
		fmt.Printf("%-34s %9.1f cy %13.0f%%\n", labels[i], base, sat*100)
	}
	fmt.Println()
	fmt.Println("Two trends, fifty years apart: finer-grained allocation cuts the")
	fmt.Println("per-hop cost (store-and-forward -> cut-through -> wormhole), and")
	fmt.Println("smarter scheduling of the same buffers raises throughput (wormhole")
	fmt.Println("-> virtual channels -> flit reservation).")
}
