package frfc

import "frfc/internal/overhead"

// StorageRow is one column of the paper's Table 1: the per-node storage
// breakdown of a flow-control configuration, in bits.
type StorageRow struct {
	Name            string
	DataBuffers     int
	CtrlBuffers     int
	QueuePointers   int
	OutputResTable  int
	InputResTable   int
	BitsPerNode     int
	FlitsPerChannel float64
}

// StorageTable evaluates Table 1 for the paper's five configurations with
// 256-bit data flits, 2-bit type tags, d=1 and a 32-cycle horizon.
func StorageTable() []StorageRow {
	const f, t, ports = 256, 2, 5
	rows := []StorageRow{}
	vc := func(name string, bd, vd int) {
		b := overhead.VCStorage(overhead.VCParams{FlitBits: f, TypeBits: t, DataBuffers: bd, VCs: vd, Ports: ports})
		rows = append(rows, StorageRow{
			Name: name, DataBuffers: b.DataBuffers, QueuePointers: b.QueuePointers,
			OutputResTable: b.OutputResTable, BitsPerNode: b.BitsPerNode(),
			FlitsPerChannel: b.FlitsPerInput(f, ports),
		})
	}
	fr := func(name string, bd, bc, vc int) {
		b := overhead.FRStorage(overhead.FRParams{FlitBits: f, TypeBits: t, DataBuffers: bd, CtrlBuffers: bc, CtrlVCs: vc, Leads: 1, Horizon: 32, Ports: ports})
		rows = append(rows, StorageRow{
			Name: name, DataBuffers: b.DataBuffers, CtrlBuffers: b.CtrlBuffers,
			QueuePointers: b.QueuePointers, OutputResTable: b.OutputResTable,
			InputResTable: b.InputResTable, BitsPerNode: b.BitsPerNode(),
			FlitsPerChannel: b.FlitsPerInput(f, ports),
		})
	}
	vc("VC8", 8, 2)
	vc("VC16", 16, 4)
	vc("VC32", 32, 8)
	fr("FR6", 6, 6, 2)
	fr("FR13", 13, 12, 4)
	return rows
}

// BandwidthRow is one column of the paper's Table 2: per-data-flit control
// bandwidth in bits.
type BandwidthRow struct {
	Name        string
	BitsPerFlit float64
}

// BandwidthTable evaluates Table 2 for the paper's configuration (64 nodes,
// 5-flit packets, 2 VCs, d=1, horizon 32), plus the flit-reservation penalty
// as a fraction of a 256-bit flit.
func BandwidthTable() (rows []BandwidthRow, frPenalty float64) {
	vcp := overhead.BandwidthParams{DestBits: 6, PacketLen: 5, VCs: 2}
	frp := overhead.BandwidthParams{DestBits: 6, PacketLen: 5, VCs: 2, Leads: 1, Horizon: 32}
	rows = []BandwidthRow{
		{Name: "VC", BitsPerFlit: overhead.VCBandwidthPerFlit(vcp)},
		{Name: "FR", BitsPerFlit: overhead.FRBandwidthPerFlit(frp)},
	}
	return rows, overhead.FRBandwidthPenalty(frp, vcp, 256)
}
