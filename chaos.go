package frfc

import (
	"context"
	"fmt"

	"frfc/internal/experiment"
	"frfc/internal/harness"
	"frfc/internal/sim"
)

// ChaosPoint is one row of a ChaosSweep: a flit-reservation network run under
// a deterministically generated chaos campaign — composed soft loss, bit
// errors, link flaps, mid-run corruption spikes and (at high intensity)
// router kills — until every offered packet's fate is resolved.
type ChaosPoint struct {
	Intensity float64
	Seed      uint64
	// Events is how many scheduled fault events the campaign expanded to.
	Events int

	Offered   int64
	Delivered int64
	// Abandoned counts packets given up on after the retry budget ran out;
	// Unreachable counts packets failed fast because a router kill
	// disconnected their destination.
	Abandoned   int64
	Unreachable int64

	DroppedFlits        int64
	Retried             int64
	DeliveredAfterRetry int64

	// The corruption ledger under chaos: see IntegrityPoint.
	Corrupted           int64
	CrcDetected         int64
	CorruptEscapes      int64
	PhantomReservations int64
	ReclaimedSlots      int64

	AvgLatency float64
	Cycles     int64
	// Wedged is set if the no-progress watchdog fired — it never should.
	Wedged bool
}

// DeliveredFraction is the end-to-end delivery probability of the row,
// counting fast-failed unreachable packets against the campaign.
func (p ChaosPoint) DeliveredFraction() float64 {
	if p.Offered == 0 {
		return 0
	}
	return float64(p.Delivered) / float64(p.Offered)
}

// String renders the point as one sweep row.
func (p ChaosPoint) String() string {
	return fmt.Sprintf("intensity=%.2f events=%2d delivered=%6.2f%%  unreachable=%3d  dropped=%4d  corrupted=%5d  escapes=%3d  retried=%4d",
		p.Intensity, p.Events, p.DeliveredFraction()*100, p.Unreachable,
		p.DroppedFlits, p.Corrupted, p.CorruptEscapes, p.Retried)
}

// ChaosSweepOptions parameterizes a ChaosSweep. Zero fields take defaults: a
// 4×4 mesh, 600 packets of 5 flits per row, intensities {0.25, 0.5, 1.0},
// a horizon scaled to the offering window, and the end-to-end check on.
type ChaosSweepOptions struct {
	Radix     int
	Packets   int
	PacketLen int
	// Intensities are the chaos intensities swept, each in (0, 1]; router
	// kills only appear at intensity >= 0.75.
	Intensities []float64
	// Horizon is the cycle window campaigns schedule events in.
	Horizon int
	// ChaosSeed drives the plan generator; Seed the network and workload.
	ChaosSeed uint64
	Seed      uint64
	// DisableE2E turns the end-to-end payload check off, so escaped
	// corruption is silently accepted instead of retried.
	DisableE2E bool
	// Check runs every row under the per-cycle invariant checker.
	Check bool
	// Workers sizes the pool the sweep's campaigns fan out over; 0 means
	// runtime.NumCPU(). Each campaign owns its own network and RNG and its
	// plan is a pure function of the options, so any worker count produces
	// identical points in identical order.
	Workers int
}

// ChaosSweep runs one deterministic chaos campaign per intensity against the
// flit-reservation network with end-to-end retry and reports how much traffic
// survived. At moderate intensity (no router kills) delivery stays total —
// every loss, flap and corruption is absorbed by hop CRCs, reservation-slot
// reclamation and retries — and at full intensity only traffic stranded by
// dead routers is written off, fast, as unreachable. The campaigns execute
// concurrently on the harness worker pool; the points are identical to a
// serial sweep.
func ChaosSweep(o ChaosSweepOptions) ([]ChaosPoint, error) {
	co := experiment.ChaosSweepOptions{
		Radix: o.Radix, Packets: o.Packets, PacketLen: o.PacketLen,
		Intensities: o.Intensities, Horizon: sim.Cycle(o.Horizon),
		ChaosSeed: o.ChaosSeed, Seed: o.Seed,
		DisableE2E: o.DisableE2E, Check: o.Check,
	}
	pts, err := harness.ChaosSweep(context.Background(), co, harness.Options{Workers: o.Workers})
	if err != nil {
		return nil, err
	}
	out := make([]ChaosPoint, len(pts))
	for i, p := range pts {
		out[i] = ChaosPoint{
			Intensity: p.Intensity, Seed: p.Seed, Events: p.Events,
			Offered: p.Offered, Delivered: p.Delivered, Abandoned: p.Abandoned,
			Unreachable: p.Unreachable, DroppedFlits: p.DroppedFlits,
			Retried: p.Retried, DeliveredAfterRetry: p.DeliveredAfterRetry,
			Corrupted: p.Corrupted, CrcDetected: p.CrcDetected,
			CorruptEscapes:      p.CorruptEscapes,
			PhantomReservations: p.PhantomReservations,
			ReclaimedSlots:      p.ReclaimedSlots,
			AvgLatency:          p.AvgLatency, Cycles: int64(p.Cycles), Wedged: p.Wedged,
		}
	}
	return out, nil
}
