package frfc_test

import (
	"strings"
	"testing"

	"frfc"
)

func TestPresetNames(t *testing.T) {
	cases := []struct {
		spec frfc.Spec
		want string
	}{
		{frfc.FR6(frfc.FastControl, 5), "FR6"},
		{frfc.FR13(frfc.FastControl, 5), "FR13"},
		{frfc.VC8(frfc.FastControl, 5), "VC8"},
		{frfc.VC16(frfc.LeadingControl, 5), "VC16"},
		{frfc.VC32(frfc.FastControl, 21), "VC32"},
		{frfc.FRLead(2, 5), "FR6-lead2"},
	}
	for _, c := range cases {
		if c.spec.Name() != c.want {
			t.Errorf("Name() = %q, want %q", c.spec.Name(), c.want)
		}
	}
}

func TestWithMethodsReturnCopies(t *testing.T) {
	base := frfc.FR6(frfc.FastControl, 5)
	renamed := base.WithName("experiment-A")
	if base.Name() != "FR6" || renamed.Name() != "experiment-A" {
		t.Fatalf("WithName mutated the receiver: %q / %q", base.Name(), renamed.Name())
	}
}

func TestCustomRejectsUnknownPattern(t *testing.T) {
	_, err := frfc.Custom("x", frfc.Options{Pattern: "zigzag"})
	if err == nil || !strings.Contains(err.Error(), "zigzag") {
		t.Fatalf("Custom with bad pattern: err = %v", err)
	}
}

func TestCustomBuildsBothFlavors(t *testing.T) {
	fr, err := frfc.Custom("my-fr", frfc.Options{
		FlitReservation: true, MeshRadix: 4, DataBuffers: 8, CtrlVCs: 2,
		Horizon: 16, Pattern: "transpose", Wiring: frfc.LeadingControl, LeadCycles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	vc, err := frfc.Custom("my-vc", frfc.Options{
		FlitReservation: false, MeshRadix: 4, VCs: 4, BufPerVC: 2,
		Pattern: "tornado", Bernoulli: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []frfc.Spec{fr, vc} {
		r := frfc.Run(s.WithSampling(200, 400), 0.15)
		if r.Saturated || r.SampledDelivered != 200 {
			t.Errorf("%s at 15%% load: saturated=%v delivered=%d/200", s.Name(), r.Saturated, r.SampledDelivered)
		}
	}
}

func TestRunReportsConsistentResult(t *testing.T) {
	s := frfc.FR6(frfc.FastControl, 5).WithMeshRadix(4).WithSampling(300, 500)
	r := frfc.Run(s, 0.30)
	if r.Spec != "FR6" {
		t.Errorf("Spec = %q", r.Spec)
	}
	if r.Load != 0.30 {
		t.Errorf("Load = %v", r.Load)
	}
	if r.EffectiveLoad >= r.Load {
		t.Errorf("EffectiveLoad %v not debited below Load %v", r.EffectiveLoad, r.Load)
	}
	if r.MinLatency <= 0 || float64(r.MinLatency) > r.AvgLatency || r.AvgLatency > float64(r.MaxLatency) {
		t.Errorf("latency ordering broken: min %d avg %.1f max %d", r.MinLatency, r.AvgLatency, r.MaxLatency)
	}
	if r.Cycles <= 0 {
		t.Errorf("Cycles = %d", r.Cycles)
	}
}

func TestSweepAndSeedDeterminism(t *testing.T) {
	s := frfc.VC8(frfc.FastControl, 5).WithMeshRadix(4).WithSampling(200, 400).WithSeed(77)
	a := frfc.Sweep(s, []float64{0.2, 0.4})
	b := frfc.Sweep(s, []float64{0.2, 0.4})
	for i := range a {
		if a[i].AvgLatency != b[i].AvgLatency {
			t.Fatalf("same seed, different latency at point %d: %v vs %v", i, a[i].AvgLatency, b[i].AvgLatency)
		}
	}
	c := frfc.Run(s.WithSeed(78), 0.2)
	if c.AvgLatency == a[0].AvgLatency {
		t.Log("different seeds produced identical latency (possible but unlikely)")
	}
}

func TestStorageTableShape(t *testing.T) {
	rows := frfc.StorageTable()
	if len(rows) != 5 {
		t.Fatalf("StorageTable has %d rows, want 5", len(rows))
	}
	byName := map[string]frfc.StorageRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["VC8"].BitsPerNode != 10452 || byName["FR6"].BitsPerNode != 10762 {
		t.Errorf("Table 1 totals wrong: VC8 %d, FR6 %d", byName["VC8"].BitsPerNode, byName["FR6"].BitsPerNode)
	}
	if byName["VC8"].CtrlBuffers != 0 || byName["FR6"].CtrlBuffers == 0 {
		t.Error("control-buffer rows misplaced")
	}
}

func TestBandwidthTableShape(t *testing.T) {
	rows, penalty := frfc.BandwidthTable()
	if len(rows) != 2 {
		t.Fatalf("BandwidthTable has %d rows, want 2", len(rows))
	}
	if rows[1].BitsPerFlit-rows[0].BitsPerFlit != 5 {
		t.Errorf("FR extra bits = %v, want 5", rows[1].BitsPerFlit-rows[0].BitsPerFlit)
	}
	if penalty < 0.019 || penalty > 0.020 {
		t.Errorf("penalty = %v, want ~0.0195", penalty)
	}
}

func TestPatternNames(t *testing.T) {
	for _, name := range []string{"uniform", "transpose", "bitcomp", "tornado", "neighbor", "bitrev", "shuffle", ""} {
		if _, err := frfc.Custom("p", frfc.Options{Pattern: name}); err != nil {
			t.Errorf("Custom with pattern %q failed: %v", name, err)
		}
	}
	if _, err := frfc.Custom("p", frfc.Options{Pattern: "nope"}); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestEagerTransferTracking(t *testing.T) {
	s, err := frfc.Custom("eager", frfc.Options{
		FlitReservation: true, MeshRadix: 4, DataBuffers: 6, CtrlVCs: 2,
		TrackEagerTransfers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := frfc.Run(s.WithSampling(400, 500), 0.6)
	if r.EagerResidencies == 0 {
		t.Fatal("eager ledger replayed nothing")
	}
	if r.EagerTransfers < 0 || r.EagerTransfers > r.EagerResidencies {
		t.Fatalf("transfers %d outside [0, %d]", r.EagerTransfers, r.EagerResidencies)
	}
	// Without tracking, the counters stay zero.
	r2 := frfc.Run(frfc.FR6(frfc.FastControl, 5).WithMeshRadix(4).WithSampling(200, 400), 0.3)
	if r2.EagerResidencies != 0 {
		t.Error("untracked run reported ledger activity")
	}
}

func TestRelatedWorkBaselinesDeliver(t *testing.T) {
	for _, s := range []frfc.Spec{
		frfc.WormholeSpec(frfc.FastControl, 8, 5),
		frfc.StoreAndForwardSpec(frfc.FastControl, 2, 5),
		frfc.CutThroughSpec(frfc.FastControl, 2, 5),
	} {
		s = s.WithMeshRadix(4).WithSampling(200, 400)
		r := frfc.Run(s, 0.15)
		if r.Saturated || r.SampledDelivered != 200 {
			t.Errorf("%s at 15%%: saturated=%v delivered=%d/200", s.Name(), r.Saturated, r.SampledDelivered)
		}
	}
}

func TestLineageBaseLatencyOrdering(t *testing.T) {
	// The Section 2 story in one assertion: store-and-forward pays packet
	// serialization per hop; cut-through, wormhole and VC pay link+router
	// per hop; flit reservation hides the router cycle.
	at := func(s frfc.Spec) float64 {
		return frfc.BaseLatency(s.WithMeshRadix(4).WithSampling(200, 400))
	}
	saf := at(frfc.StoreAndForwardSpec(frfc.FastControl, 2, 5))
	vct := at(frfc.CutThroughSpec(frfc.FastControl, 2, 5))
	wh := at(frfc.WormholeSpec(frfc.FastControl, 8, 5))
	fr := at(frfc.FR6(frfc.FastControl, 5))
	if !(saf > vct && vct >= wh-1 && fr < wh) {
		t.Errorf("lineage ordering broken: SAF %.1f, VCT %.1f, WH %.1f, FR %.1f", saf, vct, wh, fr)
	}
}

func TestCircuitSwitchingDelivers(t *testing.T) {
	s := frfc.CircuitSpec(frfc.FastControl, 5).WithMeshRadix(4).WithSampling(200, 400)
	r := frfc.Run(s, 0.10)
	if r.Saturated || r.SampledDelivered != 200 {
		t.Fatalf("circuit switching at 10%%: saturated=%v delivered=%d/200", r.Saturated, r.SampledDelivered)
	}
}

func TestCustomRecoveryOptions(t *testing.T) {
	s, err := frfc.Custom("fr-recovery", frfc.Options{
		FlitReservation: true, MeshRadix: 4,
		DataFaultRate: 0.03, CtrlFaultRate: 0.01,
		RetryLimit: 10, RetryBackoffBase: 32, NackLatency: 12,
		WatchdogCycles: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := frfc.Run(s.WithSampling(300, 500), 0.20)
	if r.SampledDelivered != r.SampleSize {
		t.Fatalf("recovery run resolved %d of %d sampled packets", r.SampledDelivered, r.SampleSize)
	}
	if r.DroppedFlits == 0 || r.LostPackets == 0 {
		t.Errorf("data fault injection inactive: dropped=%d lost=%d", r.DroppedFlits, r.LostPackets)
	}
	if r.RetriedPackets == 0 || r.DeliveredAfterRetry == 0 {
		t.Errorf("retry layer inactive: retried=%d deliveredAfterRetry=%d", r.RetriedPackets, r.DeliveredAfterRetry)
	}
	if r.CtrlCorrupted == 0 {
		t.Errorf("control fault injection inactive: ctrlCorrupted=%d", r.CtrlCorrupted)
	}
	if r.RetriedPackets > 0 && r.AvgRetryLatency <= r.AvgLatency {
		t.Errorf("retried packets should be slower: retry latency %.1f vs avg %.1f", r.AvgRetryLatency, r.AvgLatency)
	}
}

func TestCustomRejectsBadFaultRates(t *testing.T) {
	for _, o := range []frfc.Options{
		{FlitReservation: true, DataFaultRate: 1.5},
		{FlitReservation: true, DataFaultRate: -0.1},
		{FlitReservation: true, CtrlFaultRate: 1.0},
	} {
		s, err := frfc.Custom("bad", o)
		if err != nil {
			continue // rejected at build time is fine too
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Run accepted invalid fault rates %+v", o)
				}
			}()
			frfc.Run(s.WithSampling(10, 50), 0.05)
		}()
	}
}

func TestPublicFaultSweep(t *testing.T) {
	pts := frfc.FaultSweep(frfc.FaultSweepOptions{Packets: 80, Rates: []float64{0.02}, RetryLimit: 10})
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	detect, retry := pts[0], pts[1]
	if detect.RetryLimit != 0 || retry.RetryLimit != 10 {
		t.Fatalf("unexpected policy order: %+v", pts)
	}
	if retry.DeliveredFraction() != 1.0 {
		t.Errorf("retry arm delivered %.2f at 2%% loss", retry.DeliveredFraction())
	}
	if detect.Delivered+detect.LostDetected != detect.Offered {
		t.Errorf("detect-only conservation broken: %+v", detect)
	}
	if !strings.Contains(retry.String(), "retry<=10") {
		t.Errorf("String() = %q", retry.String())
	}
	if detect.Wedged || retry.Wedged {
		t.Errorf("watchdog fired during sweep")
	}
}
