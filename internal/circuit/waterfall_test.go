package circuit

import (
	"testing"

	"frfc/internal/metrics"
	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
	"frfc/internal/waterfall"
)

// runOne drives a single sampled packet through an otherwise idle network
// and returns its exact stage decomposition — the ground truth the
// closed-form model in internal/model must reproduce.
func runOne(t *testing.T, src, dst topology.NodeID, pktLen int) [waterfall.NumStages]int64 {
	t.Helper()
	mesh := topology.NewMesh(4)
	delivered := false
	wf := waterfall.New()
	wf.Strict = true
	hooks := &noc.Hooks{
		PacketDelivered: func(q *noc.Packet, now sim.Cycle) {
			delivered = true
			wf.Delivered(uint64(q.ID), now)
		},
	}
	net := New(mesh, Config{LinkLatency: 4, CtrlLinkLatency: 1, LocalLatency: 1}, 1, hooks)
	net.AttachProbe(&metrics.Probe{WF: wf})
	p := &noc.Packet{ID: 1, Src: src, Dst: dst, Len: pktLen, CreatedAt: 0, Sampled: true}
	net.Offer(p)
	for now := sim.Cycle(0); now < 500 && !delivered; now++ {
		net.Tick(now)
	}
	if !delivered {
		t.Fatalf("packet %d->%d not delivered", src, dst)
	}
	return wf.StageTotals()
}

// TestSingleCircuitStageTiming pins the exact uncontended decomposition on
// 1- and 2-hop paths, documenting the substrate's cycle anatomy: the whole
// probe/ack round trip lands in reserve, the reserved path is pure wire, and
// the tail streams back to back.
func TestSingleCircuitStageTiming(t *testing.T) {
	for _, c := range []struct {
		src, dst topology.NodeID
		hops     int64
	}{
		{0, 1, 1}, {0, 2, 2}, {0, 5, 2},
	} {
		got := runOne(t, c.src, c.dst, 5)
		h := c.hops
		want := [waterfall.NumStages]int64{
			waterfall.StageReserve: 3*h + 3, // probe: (h+1)·ctrl wires + (h+1) decisions; ack: (h+1)·ctrl wires back
			waterfall.StageLink:    2 + 4*h, // two local links + h data links, zero router cycles
			waterfall.StageDrain:   4,       // L−1 back-to-back
		}
		if got != want {
			t.Errorf("%d->%d (h=%d): stages %v, want %v", c.src, c.dst, h, got, want)
		}
	}
}
