package circuit

import (
	"frfc/internal/metrics"
	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
	"frfc/internal/waterfall"
)

// ni is the circuit-switched network interface: one packet at a time, it
// launches a probe, waits for the ack announcing the circuit is complete,
// streams the data flits, and moves on (the tail tears the circuit down as
// it travels).
type ni struct {
	cfg   Config
	hooks *noc.Hooks
	// wf is the latency-stage ledger; for circuit switching the whole
	// probe/ack round trip (circuit setup) lands in the Reserve stage,
	// between InjectStart at probe launch and HeadWire at the first data
	// flit. The routers are combinational for data, so headWire→eject
	// telescopes into Link with no router sites at all.
	wf *waterfall.Ledger

	queue   []*noc.Packet
	current *noc.Packet
	flits   []noc.DataFlit
	next    int
	acked   bool

	probeCredits int

	probeOut      *sim.Pipe[probe]
	probeCreditIn *sim.Pipe[noc.VCCredit]
	ackIn         *sim.Pipe[ack]
	dataOut       *sim.Pipe[noc.DataFlit]
}

func newNI(cfg Config, hooks *noc.Hooks) *ni {
	return &ni{cfg: cfg, hooks: hooks, probeCredits: cfg.ProbeBuffers}
}

func (n *ni) offer(p *noc.Packet) { n.queue = append(n.queue, p) }

func (n *ni) queueLen() int { return len(n.queue) }

func (n *ni) Tick(now sim.Cycle) {
	n.probeCreditIn.RecvEach(now, func(noc.VCCredit) {
		n.probeCredits++
		if n.probeCredits > n.cfg.ProbeBuffers {
			panic("circuit: NI probe credit overflow")
		}
	})
	n.ackIn.RecvEach(now, func(a ack) {
		if n.current == nil || a.id != n.current.ID {
			panic("circuit: ack for a packet the NI is not waiting on")
		}
		n.acked = true
	})
	if n.current == nil && len(n.queue) > 0 && n.probeCredits > 0 {
		p := n.queue[0]
		copy(n.queue, n.queue[1:])
		n.queue[len(n.queue)-1] = nil
		n.queue = n.queue[:len(n.queue)-1]
		n.current = p
		p.InjectedAt = now
		if n.wf != nil && p.Sampled {
			n.wf.InjectStart(uint64(p.ID), 0, p.CreatedAt, now)
		}
		n.flits = noc.DataFlits(p)
		n.next = 0
		n.acked = false
		n.probeCredits--
		n.probeOut.Send(now, probe{p: p})
	}
	if n.current != nil && n.acked && n.next < len(n.flits) {
		if n.wf != nil && n.next == 0 && n.current.Sampled {
			n.wf.HeadWire(uint64(n.current.ID), 0, now)
		}
		n.dataOut.Send(now, n.flits[n.next])
		n.hooks.Injected(now)
		n.next++
		if n.next == len(n.flits) {
			n.current = nil
			n.flits = nil
		}
	}
}

func (n *ni) pendingWork() int {
	w := len(n.queue)
	if n.current != nil {
		w++
	}
	return w
}

// sink reassembles ejected packets.
type sink struct {
	data  *sim.Pipe[noc.DataFlit]
	got   map[noc.PacketID]int
	hooks *noc.Hooks
	wf    *waterfall.Ledger
}

func newSink(hooks *noc.Hooks) *sink {
	return &sink{got: make(map[noc.PacketID]int), hooks: hooks}
}

func (s *sink) Tick(now sim.Cycle) {
	s.data.RecvEach(now, func(f noc.DataFlit) {
		s.hooks.Ejected(now)
		if s.wf != nil && f.Type.IsHead() && f.Packet.Sampled {
			s.wf.Eject(uint64(f.Packet.ID), 0, now)
		}
		s.got[f.Packet.ID]++
		if s.got[f.Packet.ID] == f.Packet.Len {
			delete(s.got, f.Packet.ID)
			s.hooks.Delivered(f.Packet, now)
		}
	})
}

// Network is a mesh of circuit-switched routers.
type Network struct {
	mesh  topology.Mesh
	cfg   Config
	hooks *noc.Hooks

	routers []*Router
	nis     []*ni
	sinks   []*sink

	offered   int64
	delivered int64
}

var _ noc.Network = (*Network)(nil)
var _ metrics.Attachable = (*Network)(nil)

// AttachProbe hands the observability probe to the NIs and sinks. Circuit
// routers hold no per-flit state worth probing — the latency ledger is the
// only consumer here.
func (n *Network) AttachProbe(p *metrics.Probe) {
	p.Init(n.mesh.Radix())
	wf := p.Waterfall()
	for _, x := range n.nis {
		x.wf = wf
	}
	for _, s := range n.sinks {
		s.wf = wf
	}
}

// New assembles a circuit-switched network over the given mesh.
func New(mesh topology.Mesh, cfg Config, seed uint64, hooks *noc.Hooks) *Network {
	cfg = cfg.withDefaults()
	cfg.validate()
	if hooks == nil {
		hooks = &noc.Hooks{}
	}
	n := &Network{mesh: mesh, cfg: cfg}

	inner := *hooks
	wrapped := inner
	wrapped.PacketDelivered = func(p *noc.Packet, now sim.Cycle) {
		n.delivered++
		if inner.PacketDelivered != nil {
			inner.PacketDelivered(p, now)
		}
	}
	n.hooks = &wrapped

	root := sim.NewRNG(seed)
	n.routers = make([]*Router, mesh.N())
	n.nis = make([]*ni, mesh.N())
	n.sinks = make([]*sink, mesh.N())
	for id := 0; id < mesh.N(); id++ {
		n.routers[id] = newRouter(topology.NodeID(id), mesh, cfg, root.Split())
	}
	for id := 0; id < mesh.N(); id++ {
		n.nis[id] = newNI(cfg, n.hooks)
		n.sinks[id] = newSink(n.hooks)
	}
	n.wire()
	return n
}

func (n *Network) wire() {
	cfg := n.cfg
	for id := 0; id < n.mesh.N(); id++ {
		r := n.routers[id]
		for p := topology.Port(0); p < topology.Local; p++ {
			nb, ok := n.mesh.Neighbor(topology.NodeID(id), p)
			if !ok {
				continue
			}
			far := n.routers[nb]
			op := p.Opposite()

			probes := sim.NewPipe[probe](cfg.CtrlLinkLatency, 1)
			r.out[p].probeOut = probes
			far.in[op].in = probes

			probeCredit := sim.NewPipe[noc.VCCredit](cfg.CtrlLinkLatency, 1)
			r.out[p].probeCreditIn = probeCredit
			far.in[op].creditOut = probeCredit

			acks := sim.NewPipe[ack](cfg.CtrlLinkLatency, cfg.ProbeBuffers)
			r.out[p].ackIn = acks
			far.in[op].ackOut = acks

			data := sim.NewPipe[noc.DataFlit](cfg.LinkLatency, 1)
			r.out[p].data = data
			far.dataIn[op] = data
		}

		ni := n.nis[id]
		sink := n.sinks[id]

		injProbe := sim.NewPipe[probe](cfg.CtrlLinkLatency, 1)
		ni.probeOut = injProbe
		r.in[topology.Local].in = injProbe

		injProbeCredit := sim.NewPipe[noc.VCCredit](cfg.CtrlLinkLatency, 1)
		ni.probeCreditIn = injProbeCredit
		r.in[topology.Local].creditOut = injProbeCredit

		ackPipe := sim.NewPipe[ack](cfg.CtrlLinkLatency, cfg.ProbeBuffers)
		ni.ackIn = ackPipe
		r.in[topology.Local].ackOut = ackPipe

		injData := sim.NewPipe[noc.DataFlit](cfg.LocalLatency, 1)
		ni.dataOut = injData
		r.dataIn[topology.Local] = injData

		ejData := sim.NewPipe[noc.DataFlit](cfg.LocalLatency, 1)
		r.out[topology.Local].data = ejData
		sink.data = ejData
	}
}

// Offer implements noc.Network.
func (n *Network) Offer(p *noc.Packet) {
	n.offered++
	n.nis[p.Src].offer(p)
}

// Tick implements noc.Network.
func (n *Network) Tick(now sim.Cycle) {
	for _, x := range n.nis {
		x.Tick(now)
	}
	for _, r := range n.routers {
		r.Tick(now)
	}
	for _, s := range n.sinks {
		s.Tick(now)
	}
}

// SourceQueueLen implements noc.Network.
func (n *Network) SourceQueueLen() int {
	total := 0
	for _, x := range n.nis {
		total += x.queueLen()
	}
	return total
}

// InFlightPackets implements noc.Network.
func (n *Network) InFlightPackets() int {
	return int(n.offered - n.delivered)
}

// BufferUsage implements noc.Network. Circuit switching buffers no data
// flits at routers; the only storage is the probe queues, which hold no
// payload, so usage is always zero.
func (n *Network) BufferUsage(id topology.NodeID) (used, capacity int) {
	return 0, 0
}

// PoolUsage implements noc.Network.
func (n *Network) PoolUsage(id topology.NodeID, port topology.Port) (used, capacity int) {
	return 0, 0
}
