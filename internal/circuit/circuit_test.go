package circuit

import (
	"testing"

	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

func testConfig() Config {
	return Config{ProbeBuffers: 4, LinkLatency: 4, CtrlLinkLatency: 1, LocalLatency: 1}
}

func TestSingleMessageCrossesMesh(t *testing.T) {
	mesh := topology.NewMesh(4)
	var deliveredAt sim.Cycle = -1
	hooks := &noc.Hooks{PacketDelivered: func(p *noc.Packet, now sim.Cycle) { deliveredAt = now }}
	net := New(mesh, testConfig(), 1, hooks)
	net.Offer(&noc.Packet{ID: 1, Src: 0, Dst: 15, Len: 5, CreatedAt: 0})
	for now := sim.Cycle(0); now < 500 && deliveredAt < 0; now++ {
		net.Tick(now)
	}
	if deliveredAt < 0 {
		t.Fatal("message undelivered")
	}
	// Setup: ~2 cycles/hop probe + ack back; data: pure wire time.
	// 6 hops: setup ~24-30, data 6*4+2+4 = 30 -> total well under 80.
	if deliveredAt > 80 {
		t.Errorf("corner-to-corner latency %d implausibly high", deliveredAt)
	}
}

// TestLongMessageAmortizesSetup: the per-flit cost of circuit switching
// approaches one cycle once the circuit is up, so growing the message by
// 100 flits grows latency by ~100 cycles — and for very long messages the
// total beats store-and-forward by a wide margin.
func TestLongMessageAmortizesSetup(t *testing.T) {
	mesh := topology.NewMesh(4)
	at := func(length int) sim.Cycle {
		var d sim.Cycle = -1
		hooks := &noc.Hooks{PacketDelivered: func(p *noc.Packet, now sim.Cycle) { d = now }}
		net := New(mesh, testConfig(), 1, hooks)
		net.Offer(&noc.Packet{ID: 1, Src: 0, Dst: 15, Len: length, CreatedAt: 0})
		for now := sim.Cycle(0); now < 5000 && d < 0; now++ {
			net.Tick(now)
		}
		if d < 0 {
			t.Fatalf("length-%d message undelivered", length)
		}
		return d
	}
	short := at(5)
	long := at(105)
	growth := long - short
	if growth < 98 || growth > 104 {
		t.Errorf("latency growth for 100 extra flits = %d, want ~100 (streaming at wire speed)", growth)
	}
}

func TestManyMessagesAllDelivered(t *testing.T) {
	mesh := topology.NewMesh(4)
	delivered := 0
	hooks := &noc.Hooks{PacketDelivered: func(p *noc.Packet, now sim.Cycle) { delivered++ }}
	net := New(mesh, testConfig(), 7, hooks)
	rng := sim.NewRNG(42)
	now := sim.Cycle(0)
	const packets = 300
	for i := 0; i < packets; i++ {
		src := topology.NodeID(rng.Intn(mesh.N()))
		dst := topology.NodeID(rng.Intn(mesh.N() - 1))
		if dst >= src {
			dst++
		}
		net.Offer(&noc.Packet{ID: noc.PacketID(i + 1), Src: src, Dst: dst, Len: 5, CreatedAt: now})
		for j := 0; j < 4; j++ {
			net.Tick(now)
			now++
		}
	}
	for net.InFlightPackets() > 0 && now < 500000 {
		net.Tick(now)
		now++
	}
	if delivered != packets {
		t.Fatalf("delivered %d of %d", delivered, packets)
	}
}

func TestHeavyLoadSurvivesAndDrains(t *testing.T) {
	mesh := topology.NewMesh(4)
	hooks := &noc.Hooks{}
	net := New(mesh, testConfig(), 21, hooks)
	rng := sim.NewRNG(77)
	now := sim.Cycle(0)
	offered := 0
	for ; now < 2000; now++ {
		for id := 0; id < mesh.N(); id++ {
			if rng.Bool(0.10) {
				dst := topology.NodeID(rng.Intn(mesh.N() - 1))
				if dst >= topology.NodeID(id) {
					dst++
				}
				offered++
				net.Offer(&noc.Packet{ID: noc.PacketID(offered), Src: topology.NodeID(id), Dst: dst, Len: 5, CreatedAt: now})
			}
		}
		net.Tick(now)
	}
	for net.InFlightPackets() > 0 && now < 2000000 {
		net.Tick(now)
		now++
	}
	if got := net.InFlightPackets(); got != 0 {
		t.Fatalf("failed to drain: %d in flight", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() map[noc.PacketID]sim.Cycle {
		mesh := topology.NewMesh(4)
		delivered := map[noc.PacketID]sim.Cycle{}
		hooks := &noc.Hooks{PacketDelivered: func(p *noc.Packet, now sim.Cycle) { delivered[p.ID] = now }}
		net := New(mesh, testConfig(), 5, hooks)
		rng := sim.NewRNG(3)
		now := sim.Cycle(0)
		for i := 0; i < 100; i++ {
			src := topology.NodeID(rng.Intn(mesh.N()))
			dst := topology.NodeID(rng.Intn(mesh.N() - 1))
			if dst >= src {
				dst++
			}
			net.Offer(&noc.Packet{ID: noc.PacketID(i + 1), Src: src, Dst: dst, Len: 4, CreatedAt: now})
			net.Tick(now)
			now++
		}
		for net.InFlightPackets() > 0 && now < 300000 {
			net.Tick(now)
			now++
		}
		return delivered
	}
	a, b := run(), run()
	for id, ca := range a {
		if b[id] != ca {
			t.Fatalf("packet %d at %d vs %d across identical runs", id, ca, b[id])
		}
	}
}
