// Package circuit implements circuit switching, the substrate of the wave
// switching hybrid the paper reviews in Section 2 [DLSY96]: a probe
// traverses a separate control network reserving an exclusive path of data
// channels; an acknowledgment returns to the source; the message then
// streams over the circuit with no per-hop buffering, arbitration, or flow
// control at all; and the tail flit tears the circuit down behind itself.
//
// Circuit switching shares flit reservation's insight — move the control
// decisions off the data path — but allocates channels for a whole message
// rather than cycle by cycle. As the paper observes, its gains are "only
// realizable if the circuit setup time can be amortized over many message
// deliveries": the benchmarks show it beating buffered flow control on very
// long messages and losing badly on short ones.
package circuit

import (
	"fmt"

	"frfc/internal/noc"
	"frfc/internal/routing"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

// Config selects a circuit-switched network configuration.
type Config struct {
	// ProbeBuffers is the probe queue depth per control input.
	ProbeBuffers int
	// LinkLatency is the data-wire delay between adjacent routers.
	LinkLatency sim.Cycle
	// CtrlLinkLatency is the probe/ack wire delay (fast control wires,
	// as in wave switching).
	CtrlLinkLatency sim.Cycle
	// LocalLatency is the injection/ejection link delay.
	LocalLatency sim.Cycle

	Routing routing.Algorithm
}

func (c Config) withDefaults() Config {
	if c.ProbeBuffers == 0 {
		c.ProbeBuffers = 4
	}
	if c.LinkLatency == 0 {
		c.LinkLatency = 4
	}
	if c.CtrlLinkLatency == 0 {
		c.CtrlLinkLatency = 1
	}
	if c.LocalLatency == 0 {
		c.LocalLatency = 1
	}
	if c.Routing == nil {
		c.Routing = routing.XY
	}
	return c
}

func (c Config) validate() {
	if c.ProbeBuffers < 1 {
		panic("circuit: ProbeBuffers must be >= 1")
	}
	if c.LinkLatency < 1 || c.CtrlLinkLatency < 1 || c.LocalLatency < 1 {
		panic("circuit: link latencies must be >= 1 cycle")
	}
}

// circuitID identifies one circuit; IDs are the packet IDs.
type circuitID = noc.PacketID

// probe asks for a path to Dst on behalf of packet P.
type probe struct {
	p *noc.Packet
}

// ack travels the reserved path backwards to release the source.
type ack struct {
	id circuitID
}

// probeQueue is the control input of one router port.
type probeQueue struct {
	exists    bool
	q         []probe
	arrivedAt []sim.Cycle
	in        *sim.Pipe[probe]
	creditOut *sim.Pipe[noc.VCCredit]
	// ackOut sends acks back toward the probe's origin.
	ackOut *sim.Pipe[ack]
}

// outputPort is the data-network side of one router output.
type outputPort struct {
	exists bool
	owner  circuitID
	owned  bool
	// inPort remembers which input feeds the owner circuit, for data
	// forwarding and teardown.
	inPort topology.Port

	probeOut      *sim.Pipe[probe]
	probeCreditIn *sim.Pipe[noc.VCCredit]
	ackIn         *sim.Pipe[ack]
	data          *sim.Pipe[noc.DataFlit]
	// probeCredits gates probe forwarding into the downstream queue.
	probeCredits int
}

// Router is one circuit-switched router: probes arbitrate for exclusive
// ownership of output channels; data flits pass through combinationally
// along established circuits.
type Router struct {
	id   topology.NodeID
	mesh topology.Mesh
	cfg  Config
	rng  *sim.RNG

	in  [topology.NumPorts]probeQueue
	out [topology.NumPorts]outputPort

	// route maps an owned input port's circuit onto its output port, for
	// data forwarding and ack backtracking.
	fwd map[circuitID]fwdEntry

	dataIn [topology.NumPorts]*sim.Pipe[noc.DataFlit]

	cands []int
}

type fwdEntry struct {
	in, out topology.Port
}

func newRouter(id topology.NodeID, mesh topology.Mesh, cfg Config, rng *sim.RNG) *Router {
	r := &Router{id: id, mesh: mesh, cfg: cfg, rng: rng, fwd: make(map[circuitID]fwdEntry)}
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		if p != topology.Local && !mesh.HasLink(id, p) {
			continue
		}
		r.in[p] = probeQueue{exists: true}
		r.out[p] = outputPort{exists: true, probeCredits: cfg.ProbeBuffers}
	}
	return r
}

// Tick advances the router one cycle: absorb acks and probe credits, route
// and grant probes, then forward circuit data.
func (r *Router) Tick(now sim.Cycle) {
	// Acks travel backwards: an ack arriving on an output port's ack wire
	// belongs to the circuit using that output; relay it toward the
	// circuit's input.
	for p := range r.out {
		o := &r.out[p]
		if !o.exists || o.ackIn == nil {
			continue
		}
		o.ackIn.RecvEach(now, func(a ack) {
			e, ok := r.fwd[a.id]
			if !ok {
				panic(fmt.Sprintf("circuit: node %d relaying ack for unknown circuit %d", r.id, a.id))
			}
			r.in[e.in].ackOut.Send(now, a)
		})
	}
	// Probe credits.
	for p := range r.out {
		o := &r.out[p]
		if !o.exists || o.probeCreditIn == nil {
			continue
		}
		o.probeCreditIn.RecvEach(now, func(noc.VCCredit) {
			o.probeCredits++
			if o.probeCredits > r.cfg.ProbeBuffers {
				panic("circuit: probe credit overflow")
			}
		})
	}
	// Receive probes.
	for p := range r.in {
		in := &r.in[p]
		if !in.exists || in.in == nil {
			continue
		}
		in.in.RecvEach(now, func(pr probe) {
			in.q = append(in.q, pr)
			in.arrivedAt = append(in.arrivedAt, now)
			if len(in.q) > r.cfg.ProbeBuffers {
				panic(fmt.Sprintf("circuit: node %d probe buffer overflow on %s", r.id, topology.Port(p)))
			}
		})
	}
	r.grantProbes(now)
	r.forwardData(now)
}

// grantProbes routes the probe at the head of each input queue and, when its
// output channel is free (and the downstream probe queue has room), extends
// the circuit and forwards the probe. At the destination the circuit is
// complete: the ack starts its journey back.
func (r *Router) grantProbes(now sim.Cycle) {
	r.cands = r.cands[:0]
	for p := range r.in {
		in := &r.in[p]
		if !in.exists || len(in.q) == 0 || in.arrivedAt[0] >= now {
			continue
		}
		r.cands = append(r.cands, p)
	}
	for i := len(r.cands) - 1; i > 0; i-- {
		j := r.rng.Intn(i + 1)
		r.cands[i], r.cands[j] = r.cands[j], r.cands[i]
	}
	for _, p := range r.cands {
		in := &r.in[p]
		pr := in.q[0]
		out, reachable := r.cfg.Routing.NextPort(r.mesh, r.id, pr.p.Dst)
		if !reachable {
			panic(fmt.Sprintf("circuit: node %d: destination %d unreachable", r.id, pr.p.Dst))
		}
		o := &r.out[out]
		if o.owned {
			continue // channel held by another circuit: wait
		}
		if out != topology.Local && o.probeCredits == 0 {
			continue // downstream probe queue full
		}
		// Extend the circuit.
		o.owned = true
		o.owner = pr.p.ID
		o.inPort = topology.Port(p)
		r.fwd[pr.p.ID] = fwdEntry{in: topology.Port(p), out: out}
		// Consume the probe.
		copy(in.q, in.q[1:])
		in.q = in.q[:len(in.q)-1]
		copy(in.arrivedAt, in.arrivedAt[1:])
		in.arrivedAt = in.arrivedAt[:len(in.arrivedAt)-1]
		if in.creditOut != nil {
			in.creditOut.Send(now, noc.VCCredit{})
		}
		if out == topology.Local {
			// Destination: the circuit is complete; launch the ack
			// back toward the source.
			in.ackOut.Send(now, ack{id: pr.p.ID})
			continue
		}
		o.probeCredits--
		o.probeOut.Send(now, pr)
	}
}

// forwardData relays circuit data combinationally: a flit arriving on an
// input follows its circuit's output the same cycle (the wires are switched
// through; there is no buffering). Tails tear the circuit down.
func (r *Router) forwardData(now sim.Cycle) {
	for p := range r.dataIn {
		pipe := r.dataIn[p]
		if pipe == nil {
			continue
		}
		pipe.RecvEach(now, func(f noc.DataFlit) {
			e, ok := r.fwd[f.Packet.ID]
			if !ok || e.in != topology.Port(p) {
				panic(fmt.Sprintf("circuit: node %d: data flit %s with no circuit", r.id, f))
			}
			o := &r.out[e.out]
			if !o.owned || o.owner != f.Packet.ID {
				panic(fmt.Sprintf("circuit: node %d: flit %s on a channel owned by circuit %d", r.id, f, o.owner))
			}
			o.data.Send(now, f)
			if f.Type.IsTail() {
				o.owned = false
				delete(r.fwd, f.Packet.ID)
			}
		})
	}
}

func (r *Router) pendingWork() int {
	n := len(r.fwd)
	for p := range r.in {
		if r.in[p].exists {
			n += len(r.in[p].q)
		}
	}
	return n
}
