package service

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"frfc/internal/harness"
	"frfc/internal/status"
)

// Options tunes a Service. The zero value runs with NumCPU workers, no
// per-job timeout, no status feed and no completion callback.
type Options struct {
	// Workers is the shared pool size; 0 means runtime.NumCPU(). The pool
	// is shared by every campaign; the scheduler divides it fairly.
	Workers int
	// Timeout, when nonzero, bounds each job's execution.
	Timeout time.Duration
	// Status, when non-nil, receives per-campaign progress, queue depth
	// and dedup accounting for /status and /metrics, plus the in-flight
	// job set and merged per-router counters. Observation-only.
	Status *status.Server
	// OnCampaignDone, when non-nil, is called (from a worker goroutine)
	// each time a campaign reaches a terminal state — the hook the
	// background reporter regenerates BENCHMARK.md from.
	OnCampaignDone func(CampaignView)
}

// Service is the campaign daemon: it accepts sweep submissions, schedules
// their jobs fairly over one shared worker pool, dedups work through the
// persistent result database, and reports progress. Safe for concurrent use.
type Service struct {
	db      *DB
	opts    Options
	sched   *scheduler
	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu        sync.Mutex
	campaigns map[string]*Campaign
	order     []string
	nextID    int
	closing   bool
}

// New starts a service over the given database and spawns its worker pool.
func New(db *DB, o Options) *Service {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		db: db, opts: o, sched: newScheduler(),
		baseCtx: ctx, cancel: cancel,
		campaigns: make(map[string]*Campaign),
	}
	for i := 0; i < o.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Workers reports the shared pool size.
func (s *Service) Workers() int { return s.opts.Workers }

// Submit validates a sweep request, expands it into jobs, registers the
// campaign with the fair scheduler and returns it. Jobs already present in
// the result database will resolve as dedup hits without executing.
func (s *Service) Submit(req SweepRequest) (*Campaign, error) {
	if err := (&req).normalized(); err != nil {
		return nil, fmt.Errorf("invalid campaign: %w", err)
	}
	jobs, err := req.jobs()
	if err != nil {
		return nil, fmt.Errorf("invalid campaign: %w", err)
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil, fmt.Errorf("service is shutting down")
	}
	s.nextID++
	id := fmt.Sprintf("c%d", s.nextID)
	ctx, cancel := context.WithCancel(s.baseCtx)
	c := &Campaign{
		id: id, req: req, jobs: jobs, created: time.Now(),
		ctx: ctx, cancel: cancel,
		finished:    make(chan struct{}),
		state:       StateQueued,
		results:     make([]harness.JobResult, len(jobs)),
		done:        make([]bool, len(jobs)),
		queue:       make([]int, len(jobs)),
		weight:      req.Weight,
		maxInflight: req.MaxInFlight,
	}
	for i := range jobs {
		c.queue[i] = i
	}
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.mu.Unlock()

	s.sched.add(c)
	s.pushStatus()
	return c, nil
}

// Get returns a campaign by ID.
func (s *Service) Get(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// List snapshots every campaign's summary, in submission order.
func (s *Service) List() []CampaignView {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	now := time.Now()
	out := make([]CampaignView, 0, len(ids))
	for _, id := range ids {
		if c, ok := s.Get(id); ok {
			out = append(out, c.view(now))
		}
	}
	return out
}

// Cancel cancels a campaign cooperatively: queued jobs are retired
// immediately as cancelled, in-flight jobs see their context end (the
// simulator polls it every 1024 cycles) and record as cancelled. Results
// already completed are kept. Cancelling a finished campaign is a no-op.
func (s *Service) Cancel(id string) (*Campaign, bool) {
	c, ok := s.Get(id)
	if !ok {
		return nil, false
	}
	c.mu.Lock()
	if c.state == StateDone || c.state == StateCancelled {
		c.mu.Unlock()
		return c, true
	}
	c.state = StateCancelled
	c.mu.Unlock()
	c.cancel()
	idxs := s.sched.drain(c)
	completed := false
	for _, idx := range idxs {
		j := c.jobs[idx]
		if c.record(idx, harness.JobResult{
			Job: j, Hash: j.Hash(), Skipped: true, Err: "campaign cancelled",
		}) {
			completed = true
		}
	}
	s.pushStatus()
	if completed {
		s.campaignDone(c)
	}
	return c, true
}

// worker is one shared-pool goroutine: it repeatedly asks the fair scheduler
// for the next job from any campaign and resolves it through the harness's
// single-job path, with the persistent database as the dedup store.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		c, idx, ok := s.sched.next()
		if !ok {
			return
		}
		j := c.jobs[idx]
		ho := harness.Options{Store: s.db, Timeout: s.opts.Timeout, Waterfall: c.req.Waterfall}
		if st := s.opts.Status; st != nil {
			ho.JobStarted = st.OnJobStarted
			ho.JobFinished = st.OnJobFinished
			ho.Collect = st.OnCollect
			if c.req.Waterfall {
				ho.CollectWaterfall = st.OnCollectWaterfall
			}
		}
		jr := harness.ExecOne(c.ctx, j, ho)
		completed := c.record(idx, jr)
		s.sched.release(c)
		s.pushStatus()
		if completed {
			s.campaignDone(c)
		}
	}
}

// campaignDone fires the completion callback.
func (s *Service) campaignDone(c *Campaign) {
	if s.opts.OnCampaignDone != nil {
		s.opts.OnCampaignDone(c.view(time.Now()))
	}
}

// pushStatus feeds the status server a fresh service snapshot.
func (s *Service) pushStatus() {
	st := s.opts.Status
	if st == nil {
		return
	}
	view, campaigns := s.snapshot()
	st.OnService(view, campaigns)
}

// snapshot assembles the service-wide view and per-campaign rows for
// /status and /metrics.
func (s *Service) snapshot() (status.ServiceView, []status.ServiceCampaign) {
	views := s.List()
	dbs := s.db.Stats()
	sv := status.ServiceView{
		Workers:     s.opts.Workers,
		Campaigns:   len(views),
		DedupHits:   dbs.Hits,
		DedupMisses: dbs.Misses,
		DBEntries:   dbs.Entries,
		DBSegments:  dbs.Segments,
		DBHealed:    dbs.Healed,
	}
	rows := make([]status.ServiceCampaign, 0, len(views))
	for _, v := range views {
		if v.State == StateQueued || v.State == StateRunning {
			sv.Active++
		}
		sv.QueueDepth += v.QueueDepth
		sv.InFlight += v.InFlight
		rows = append(rows, status.ServiceCampaign{
			ID: v.ID, Name: v.Name, State: string(v.State),
			Jobs: v.Jobs, Done: v.Done, Simulated: v.Simulated,
			Cached: v.Cached, Failed: v.Failed,
			QueueDepth: v.QueueDepth, InFlight: v.InFlight, Weight: v.Weight,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	return sv, rows
}

// Close shuts the service down: new submissions are rejected, every
// campaign's context is cancelled (cooperative — in-flight simulations stop
// at their next poll), and the worker pool drains. Completed results are
// already durable in the database; a resubmitted campaign after restart
// resolves them as dedup hits. Close returns ctx.Err() if the pool does not
// drain before ctx ends.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
	s.cancel()
	s.sched.close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
