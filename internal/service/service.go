package service

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"frfc/internal/harness"
	"frfc/internal/status"
)

// Options tunes a Service. The zero value runs with NumCPU workers, no
// per-job timeout, no status feed and no completion callback.
type Options struct {
	// Workers is the shared pool size; 0 means runtime.NumCPU(). The pool
	// is shared by every campaign; the scheduler divides it fairly.
	Workers int
	// Timeout, when nonzero, bounds each job's execution.
	Timeout time.Duration
	// Status, when non-nil, receives per-campaign progress, queue depth
	// and dedup accounting for /status and /metrics, plus the in-flight
	// job set and merged per-router counters. Observation-only.
	Status *status.Server
	// OnCampaignDone, when non-nil, is called (from a worker goroutine)
	// each time a campaign reaches a terminal state — the hook the
	// background reporter regenerates BENCHMARK.md from.
	OnCampaignDone func(CampaignView)
	// Limits is the admission-control envelope; the zero value admits
	// everything (the pre-hardening behavior).
	Limits Limits
	// StuckAfter arms the service-level no-progress watchdog: an active
	// campaign with work outstanding but no job outcome recorded for this
	// long is flagged stuck in /status and the stuck-campaigns gauge — the
	// service analog of the simulator's PR-1 watchdog. 0 disables.
	StuckAfter time.Duration
	// WatchdogTick overrides the watchdog scan cadence; 0 derives it from
	// StuckAfter (a quarter, clamped to [100ms, 30s]).
	WatchdogTick time.Duration
}

// Service is the campaign daemon: it accepts sweep submissions, schedules
// their jobs fairly over one shared worker pool, dedups work through the
// persistent result database, and reports progress. Safe for concurrent use.
type Service struct {
	db      *DB
	opts    Options
	sched   *scheduler
	rate    *rateLimiter // nil when rate limiting is off
	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	// admit serializes admission decisions: the capacity check and the
	// registration it authorizes happen under one lock, so two submissions
	// cannot both squeeze through the same last slot. Reads (Get, List)
	// and workers never touch it.
	admit sync.Mutex

	mu        sync.Mutex
	campaigns map[string]*Campaign
	order     []string
	nextID    int
	closing   bool
	rejected  map[string]int64 // submissions rejected, by reason
}

// New starts a service over the given database and spawns its worker pool.
func New(db *DB, o Options) *Service {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		db: db, opts: o, sched: newScheduler(),
		baseCtx: ctx, cancel: cancel,
		campaigns: make(map[string]*Campaign),
		rejected:  make(map[string]int64),
	}
	if o.Limits.RatePerSec > 0 {
		s.rate = newRateLimiter(o.Limits.RatePerSec, o.Limits.Burst)
	}
	for i := 0; i < o.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if o.StuckAfter > 0 {
		s.wg.Add(1)
		go s.watchdog()
	}
	return s
}

// Workers reports the shared pool size.
func (s *Service) Workers() int { return s.opts.Workers }

// Submit validates a sweep request, expands it into jobs, registers the
// campaign with the fair scheduler and returns it. Jobs already present in
// the result database will resolve as dedup hits without executing.
// Equivalent to SubmitFrom with no client identity (rate limits don't
// apply); errors wrap ErrCapacity or ErrClosed when the rejection is about
// the service rather than the request.
func (s *Service) Submit(req SweepRequest) (*Campaign, error) {
	return s.SubmitFrom(req, "")
}

// SubmitFrom is Submit with a client identity for per-client rate limiting
// (the HTTP layer passes the peer address). Admission runs cheapest check
// first — token bucket, then an arithmetic job-count estimate against the
// caps, all before the grid is allocated — so rejection costs nothing no
// matter how large the request claims to be.
func (s *Service) SubmitFrom(req SweepRequest, client string) (*Campaign, error) {
	if s.rate != nil && client != "" && !s.rate.allow(client, time.Now()) {
		s.noteRejected(rejectRate)
		return nil, fmt.Errorf("client %s over submission rate: %w", client, ErrCapacity)
	}
	s.admit.Lock()
	defer s.admit.Unlock()
	s.mu.Lock()
	closing := s.closing
	s.mu.Unlock()
	if closing {
		s.noteRejected(rejectClosed)
		return nil, ErrClosed
	}
	est, err := req.estimateJobs()
	if err != nil {
		s.noteRejected(rejectValidation)
		return nil, fmt.Errorf("invalid campaign: %w", err)
	}
	lim := s.opts.Limits
	if lim.MaxJobsPerCampaign > 0 && est > lim.MaxJobsPerCampaign {
		s.noteRejected(rejectJobs)
		return nil, fmt.Errorf("campaign expands to ~%d jobs, per-campaign cap is %d: %w",
			est, lim.MaxJobsPerCampaign, ErrCapacity)
	}
	if lim.MaxCampaigns > 0 || lim.MaxQueuedJobs > 0 {
		active, queued := s.loadLocked()
		if lim.MaxCampaigns > 0 && active >= lim.MaxCampaigns {
			s.noteRejected(rejectCampaigns)
			return nil, fmt.Errorf("%d campaigns active, cap is %d: %w",
				active, lim.MaxCampaigns, ErrCapacity)
		}
		if lim.MaxQueuedJobs > 0 && queued+est > lim.MaxQueuedJobs {
			s.noteRejected(rejectJobs)
			return nil, fmt.Errorf("%d jobs queued and this campaign adds ~%d, cap is %d: %w",
				queued, est, lim.MaxQueuedJobs, ErrCapacity)
		}
	}
	if err := (&req).normalized(); err != nil {
		s.noteRejected(rejectValidation)
		return nil, fmt.Errorf("invalid campaign: %w", err)
	}
	jobs, err := req.jobs()
	if err != nil {
		s.noteRejected(rejectValidation)
		return nil, fmt.Errorf("invalid campaign: %w", err)
	}
	// The estimate authorized the admission; hold the expansion to it in
	// case the two ever disagree at a float boundary.
	if lim.MaxJobsPerCampaign > 0 && len(jobs) > lim.MaxJobsPerCampaign {
		s.noteRejected(rejectJobs)
		return nil, fmt.Errorf("campaign expands to %d jobs, per-campaign cap is %d: %w",
			len(jobs), lim.MaxJobsPerCampaign, ErrCapacity)
	}

	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		s.noteRejected(rejectClosed)
		return nil, ErrClosed
	}
	s.nextID++
	id := fmt.Sprintf("c%d", s.nextID)
	ctx, cancel := context.WithCancel(s.baseCtx)
	now := time.Now()
	c := &Campaign{
		id: id, req: req, jobs: jobs, created: now,
		ctx: ctx, cancel: cancel,
		finished:     make(chan struct{}),
		state:        StateQueued,
		results:      make([]harness.JobResult, len(jobs)),
		done:         make([]bool, len(jobs)),
		queue:        make([]int, len(jobs)),
		weight:       req.Weight,
		maxInflight:  req.MaxInFlight,
		lastProgress: now,
	}
	for i := range jobs {
		c.queue[i] = i
	}
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.mu.Unlock()

	s.sched.add(c)
	s.pushStatus()
	return c, nil
}

// noteRejected counts one rejected submission by reason.
func (s *Service) noteRejected(reason string) {
	s.mu.Lock()
	s.rejected[reason]++
	s.mu.Unlock()
}

// loadLocked measures current admission load: active campaigns and their
// undispatched jobs. Caller holds s.admit, so no admission races this; the
// workers only ever shrink it.
func (s *Service) loadLocked() (active, queued int) {
	s.mu.Lock()
	cs := make([]*Campaign, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		cs = append(cs, c)
	}
	s.mu.Unlock()
	for _, c := range cs {
		c.mu.Lock()
		if c.state == StateQueued || c.state == StateRunning {
			active++
			queued += len(c.queue)
		}
		c.mu.Unlock()
	}
	return active, queued
}

// watchdog periodically flags campaigns that hold work but make no progress
// — a wedged worker, a job stuck past any reasonable runtime — so operators
// see "stuck" in /status and the frfc_service_stuck_campaigns gauge instead
// of a silently frozen queue. Recording any outcome clears the flag.
func (s *Service) watchdog() {
	defer s.wg.Done()
	tick := s.opts.WatchdogTick
	if tick <= 0 {
		tick = s.opts.StuckAfter / 4
	}
	if tick < 100*time.Millisecond {
		tick = 100 * time.Millisecond
	}
	if tick > 30*time.Second {
		tick = 30 * time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case now := <-t.C:
			if s.sweepStuck(now) {
				s.pushStatus()
			}
		}
	}
}

// sweepStuck marks newly stuck campaigns, reporting whether anything changed.
func (s *Service) sweepStuck(now time.Time) (changed bool) {
	s.mu.Lock()
	cs := make([]*Campaign, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		cs = append(cs, c)
	}
	s.mu.Unlock()
	for _, c := range cs {
		c.mu.Lock()
		active := c.state == StateQueued || c.state == StateRunning
		working := c.inflight > 0 || len(c.queue) > 0
		if active && working && !c.stuck && now.Sub(c.lastProgress) > s.opts.StuckAfter {
			c.stuck = true
			changed = true
		}
		c.mu.Unlock()
	}
	return changed
}

// StartDrain flips the service to not-ready: /readyz starts failing and new
// submissions are rejected with ErrClosed, while the workers keep draining
// already-admitted campaigns. frserve calls this at the top of shutdown so
// load balancers stop routing before the listener disappears.
func (s *Service) StartDrain() {
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
	s.pushStatus()
}

// Ready reports whether the service is accepting submissions — the /readyz
// answer. False once draining begins.
func (s *Service) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closing
}

// Get returns a campaign by ID.
func (s *Service) Get(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// List snapshots every campaign's summary, in submission order.
func (s *Service) List() []CampaignView {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	now := time.Now()
	out := make([]CampaignView, 0, len(ids))
	for _, id := range ids {
		if c, ok := s.Get(id); ok {
			out = append(out, c.view(now))
		}
	}
	return out
}

// Cancel cancels a campaign cooperatively: queued jobs are retired
// immediately as cancelled, in-flight jobs see their context end (the
// simulator polls it every 1024 cycles) and record as cancelled. Results
// already completed are kept. Cancelling a finished campaign is a no-op.
func (s *Service) Cancel(id string) (*Campaign, bool) {
	c, ok := s.Get(id)
	if !ok {
		return nil, false
	}
	c.mu.Lock()
	if c.state == StateDone || c.state == StateCancelled {
		c.mu.Unlock()
		return c, true
	}
	c.state = StateCancelled
	c.mu.Unlock()
	c.cancel()
	idxs := s.sched.drain(c)
	completed := false
	for _, idx := range idxs {
		j := c.jobs[idx]
		if c.record(idx, harness.JobResult{
			Job: j, Hash: j.Hash(), Skipped: true, Err: "campaign cancelled",
		}) {
			completed = true
		}
	}
	s.pushStatus()
	if completed {
		s.campaignDone(c)
	}
	return c, true
}

// worker is one shared-pool goroutine: it repeatedly asks the fair scheduler
// for the next job from any campaign and resolves it through the harness's
// single-job path, with the persistent database as the dedup store.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		c, idx, ok := s.sched.next()
		if !ok {
			return
		}
		j := c.jobs[idx]
		ho := harness.Options{Store: s.db, Timeout: s.opts.Timeout, Waterfall: c.req.Waterfall}
		if st := s.opts.Status; st != nil {
			ho.JobStarted = st.OnJobStarted
			ho.JobFinished = st.OnJobFinished
			ho.Collect = st.OnCollect
			if c.req.Waterfall {
				ho.CollectWaterfall = st.OnCollectWaterfall
			}
		}
		jr := harness.ExecOne(c.ctx, j, ho)
		completed := c.record(idx, jr)
		s.sched.release(c)
		s.pushStatus()
		if completed {
			s.campaignDone(c)
		}
	}
}

// campaignDone fires the completion callback.
func (s *Service) campaignDone(c *Campaign) {
	if s.opts.OnCampaignDone != nil {
		s.opts.OnCampaignDone(c.view(time.Now()))
	}
}

// pushStatus feeds the status server a fresh service snapshot.
func (s *Service) pushStatus() {
	st := s.opts.Status
	if st == nil {
		return
	}
	view, campaigns := s.snapshot()
	st.OnService(view, campaigns)
}

// snapshot assembles the service-wide view and per-campaign rows for
// /status and /metrics.
func (s *Service) snapshot() (status.ServiceView, []status.ServiceCampaign) {
	views := s.List()
	dbs := s.db.Stats()
	s.mu.Lock()
	rejectedBy := make(map[string]int64, len(s.rejected))
	var rejected int64
	for reason, n := range s.rejected {
		rejectedBy[reason] = n
		rejected += n
	}
	ready := !s.closing
	s.mu.Unlock()
	sv := status.ServiceView{
		Workers:       s.opts.Workers,
		Campaigns:     len(views),
		DedupHits:     dbs.Hits,
		DedupMisses:   dbs.Misses,
		DBEntries:     dbs.Entries,
		DBSegments:    dbs.Segments,
		DBHealed:      dbs.Healed,
		DBQuarantined: dbs.Quarantined,
		StoreErrors:   dbs.PutErrors,
		Rejected:      rejected,
		RejectedBy:    rejectedBy,
		Ready:         ready,
	}
	rows := make([]status.ServiceCampaign, 0, len(views))
	for _, v := range views {
		if v.State == StateQueued || v.State == StateRunning {
			sv.Active++
		}
		if v.Stuck {
			sv.StuckCampaigns++
		}
		sv.QueueDepth += v.QueueDepth
		sv.InFlight += v.InFlight
		rows = append(rows, status.ServiceCampaign{
			ID: v.ID, Name: v.Name, State: string(v.State),
			Jobs: v.Jobs, Done: v.Done, Simulated: v.Simulated,
			Cached: v.Cached, Failed: v.Failed,
			QueueDepth: v.QueueDepth, InFlight: v.InFlight, Weight: v.Weight,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	return sv, rows
}

// Close shuts the service down: new submissions are rejected, every
// campaign's context is cancelled (cooperative — in-flight simulations stop
// at their next poll), and the worker pool drains. Completed results are
// already durable in the database; a resubmitted campaign after restart
// resolves them as dedup hits. Close returns ctx.Err() if the pool does not
// drain before ctx ends.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
	s.cancel()
	s.sched.close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
