package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"frfc/internal/experiment"
	"frfc/internal/harness"
)

// slowReq is a sweep request big and slow enough to still be active when
// the test checks admission against it.
func slowReq(name string, seed uint64) SweepRequest {
	return SweepRequest{
		Name: name, Configs: []string{"FR6"},
		From: 0.05, To: 0.6, Step: 0.05, // 12 jobs
		Sample: 1500, Warmup: 1500, Seed: seed,
	}
}

// newLimitedService starts a 1-worker service with the given limits.
func newLimitedService(t *testing.T, lim Limits) *Service {
	t.Helper()
	db, err := OpenDB(filepath.Join(t.TempDir(), "db"), DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, Options{Workers: 1, Limits: lim})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Close(ctx) //nolint:errcheck // best-effort teardown
		db.Close()
	})
	return s
}

// TestEstimateJobsMatchesExpansion: the arithmetic pre-estimate that
// authorizes admission must agree with what normalized() actually expands —
// for explicit load lists and for every grid shape the CLI supports.
func TestEstimateJobsMatchesExpansion(t *testing.T) {
	reqs := []SweepRequest{
		{Configs: []string{"FR6"}, Loads: []float64{0.1, 0.2, 0.3}},
		{Configs: []string{"FR6", "VC8"}, From: 0.05, To: 0.95, Step: 0.05},
		{Configs: []string{"FR6"}, From: 0.1, To: 0.1, Step: 0.1},
		{Configs: []string{"FR6", "VC8", "WH"}, From: 0.02, To: 0.91, Step: 0.03},
		{Configs: []string{"FR6"}, From: 0.1, To: 0.9999, Step: 0.1},
	}
	for i, r := range reqs {
		est, err := r.estimateJobs()
		if err != nil {
			t.Fatalf("req %d: estimate: %v", i, err)
		}
		if err := (&r).normalized(); err != nil {
			t.Fatalf("req %d: normalized: %v", i, err)
		}
		jobs, err := r.jobs()
		if err != nil {
			t.Fatalf("req %d: jobs: %v", i, err)
		}
		if est != len(jobs) {
			t.Errorf("req %d: estimate %d != expansion %d", i, est, len(jobs))
		}
	}
	// Absurd grids estimate huge without allocating anything.
	huge := SweepRequest{Configs: []string{"FR6"}, From: 1e-9, To: 1, Step: 1e-12}
	if est, err := huge.estimateJobs(); err != nil || est < 1<<30 {
		t.Fatalf("huge grid estimate = %d, %v", est, err)
	}
}

// TestSubmitPerCampaignCap: a grid over MaxJobsPerCampaign is rejected with
// ErrCapacity by arithmetic alone, and the rejection is counted.
func TestSubmitPerCampaignCap(t *testing.T) {
	s := newLimitedService(t, Limits{MaxJobsPerCampaign: 5})
	_, err := s.Submit(SweepRequest{Configs: []string{"FR6"}, From: 0.05, To: 0.6, Step: 0.05})
	if !errors.Is(err, ErrCapacity) {
		t.Fatalf("got %v, want ErrCapacity", err)
	}
	// A hostile grid that would expand to billions of jobs is rejected the
	// same way, instantly.
	_, err = s.Submit(SweepRequest{Configs: []string{"FR6"}, From: 1e-9, To: 1.0, Step: 1e-9})
	if !errors.Is(err, ErrCapacity) {
		t.Fatalf("hostile grid: got %v, want ErrCapacity", err)
	}
	sv, _ := s.snapshot()
	if sv.Rejected != 2 || sv.RejectedBy[rejectJobs] != 2 {
		t.Fatalf("rejected accounting: total=%d by=%v, want 2 under %q", sv.Rejected, sv.RejectedBy, rejectJobs)
	}
	// Within the cap still admits.
	c, err := s.Submit(SweepRequest{Configs: []string{"FR6"}, Loads: []float64{0.2}, Sample: 150, Warmup: 300})
	if err != nil {
		t.Fatalf("in-cap submit: %v", err)
	}
	waitDone(t, c)
}

// TestSubmitCampaignAndQueueCaps: MaxCampaigns and MaxQueuedJobs reject while
// earlier campaigns are still active, and admit again once they finish.
func TestSubmitCampaignAndQueueCaps(t *testing.T) {
	s := newLimitedService(t, Limits{MaxCampaigns: 1, MaxQueuedJobs: 20})
	c1, err := s.Submit(slowReq("first", 7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(slowReq("second", 8)); !errors.Is(err, ErrCapacity) {
		t.Fatalf("second campaign: got %v, want ErrCapacity (MaxCampaigns)", err)
	}
	sv, _ := s.snapshot()
	if sv.RejectedBy[rejectCampaigns] != 1 {
		t.Fatalf("rejectedBy = %v, want 1 under %q", sv.RejectedBy, rejectCampaigns)
	}
	s.Cancel(c1.ID())
	waitDone(t, c1)
	// Capacity freed: admission opens again.
	c2, err := s.Submit(SweepRequest{Configs: []string{"FR6"}, Loads: []float64{0.2}, Sample: 150, Warmup: 300})
	if err != nil {
		t.Fatalf("post-drain submit: %v", err)
	}
	waitDone(t, c2)

	q := newLimitedService(t, Limits{MaxQueuedJobs: 15})
	c3, err := q.Submit(slowReq("fill", 9)) // 12 jobs
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(slowReq("overflow", 10)); !errors.Is(err, ErrCapacity) {
		t.Fatalf("queue overflow: got %v, want ErrCapacity (MaxQueuedJobs)", err)
	}
	q.Cancel(c3.ID())
	waitDone(t, c3)
}

// TestRateLimiter: the token bucket under explicit time — burst, exhaustion,
// refill, and per-key isolation.
func TestRateLimiter(t *testing.T) {
	rl := newRateLimiter(1, 2) // 1 token/sec, burst 2
	t0 := time.Unix(1000, 0)
	if !rl.allow("a", t0) || !rl.allow("a", t0) {
		t.Fatal("burst of 2 not honored")
	}
	if rl.allow("a", t0) {
		t.Fatal("third immediate request allowed")
	}
	if !rl.allow("b", t0) {
		t.Fatal("independent client starved by a's bucket")
	}
	if rl.allow("a", t0.Add(500*time.Millisecond)) {
		t.Fatal("allowed before a full token refilled")
	}
	if !rl.allow("a", t0.Add(1100*time.Millisecond)) {
		t.Fatal("not allowed after refill")
	}
	// Refill never exceeds the burst.
	if !rl.allow("a", t0.Add(100*time.Hour)) || !rl.allow("a", t0.Add(100*time.Hour)) {
		t.Fatal("burst capacity lost")
	}
	if rl.allow("a", t0.Add(100*time.Hour)) {
		t.Fatal("bucket overfilled past burst")
	}
}

// TestSubmitRateLimited: SubmitFrom applies the per-client bucket; anonymous
// Submit (internal callers) bypasses it.
func TestSubmitRateLimited(t *testing.T) {
	s := newLimitedService(t, Limits{RatePerSec: 0.0001, Burst: 1})
	one := SweepRequest{Configs: []string{"FR6"}, Loads: []float64{0.2}, Sample: 150, Warmup: 300}
	c, err := s.SubmitFrom(one, "10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c)
	if _, err := s.SubmitFrom(one, "10.0.0.1"); !errors.Is(err, ErrCapacity) {
		t.Fatalf("second submit: got %v, want ErrCapacity (rate)", err)
	}
	if _, err := s.SubmitFrom(one, "10.0.0.2"); err != nil {
		t.Fatalf("different client rate-limited: %v", err)
	}
	if c2, err := s.Submit(one); err != nil {
		t.Fatalf("anonymous submit rate-limited: %v", err)
	} else {
		waitDone(t, c2)
	}
	sv, _ := s.snapshot()
	if sv.RejectedBy[rejectRate] != 1 {
		t.Fatalf("rejectedBy = %v, want 1 under %q", sv.RejectedBy, rejectRate)
	}
}

// TestSubmitHTTPStatusCodes (satellite fix): the submit endpoint
// distinguishes its failures — 400 for bad requests, 413 for oversized
// bodies, 429 + Retry-After for capacity, 503 once draining.
func TestSubmitHTTPStatusCodes(t *testing.T) {
	s := newLimitedService(t, Limits{MaxJobsPerCampaign: 2, MaxBodyBytes: 256})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post(`{"configs":["NOPE"],"loads":[0.2]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("validation error: status %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"configs":["FR6"],"from":0.05,"to":0.9,"step":0.05}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("capacity: status %d, want 429", resp.StatusCode)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	big := fmt.Sprintf(`{"configs":["FR6"],"loads":[0.2],"name":%q}`, strings.Repeat("x", 512))
	if resp := post(big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	s.StartDrain()
	if resp := post(`{"configs":["FR6"],"loads":[0.2]}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining: status %d, want 503", resp.StatusCode)
	}
	sv, _ := s.snapshot()
	for _, reason := range []string{rejectValidation, rejectJobs, rejectBody, rejectClosed} {
		if sv.RejectedBy[reason] == 0 {
			t.Errorf("rejection reason %q not counted: %v", reason, sv.RejectedBy)
		}
	}
}

// TestHealthAndReadiness: /healthz is liveness (always 200); /readyz flips
// to 503 when draining begins, and the snapshot mirrors it.
func TestHealthAndReadiness(t *testing.T) {
	s := newLimitedService(t, Limits{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", code)
	}
	if sv, _ := s.snapshot(); !sv.Ready {
		t.Fatal("snapshot not ready before drain")
	}
	s.StartDrain()
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while draining = %d, want 200 (liveness)", code)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", code)
	}
	if sv, _ := s.snapshot(); sv.Ready {
		t.Fatal("snapshot still ready after StartDrain")
	}
	if _, err := s.Submit(SweepRequest{Configs: []string{"FR6"}, Loads: []float64{0.2}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit while draining: got %v, want ErrClosed", err)
	}
}

// TestWatchdogFlagsStuckCampaigns: a campaign with outstanding work and no
// recorded outcome past StuckAfter is flagged; any progress clears it. The
// sweep is driven directly with synthetic time, so nothing here depends on
// scheduler timing.
func TestWatchdogFlagsStuckCampaigns(t *testing.T) {
	db, err := OpenDB(filepath.Join(t.TempDir(), "db"), DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := &Service{
		db:        db,
		opts:      Options{Workers: 1, StuckAfter: time.Minute},
		campaigns: map[string]*Campaign{},
		rejected:  map[string]int64{},
	}
	jobs := tinyJobs(2, 60)
	now := time.Now()
	c := &Campaign{
		id: "c1", jobs: jobs, created: now,
		finished: make(chan struct{}), state: StateRunning,
		results: make([]harness.JobResult, 2), done: make([]bool, 2),
		queue: []int{0, 1}, weight: 1, lastProgress: now,
	}
	s.campaigns["c1"] = c
	s.order = []string{"c1"}

	if s.sweepStuck(now.Add(30 * time.Second)) {
		t.Fatal("flagged stuck before StuckAfter elapsed")
	}
	if !s.sweepStuck(now.Add(2 * time.Minute)) {
		t.Fatal("not flagged stuck after StuckAfter")
	}
	if !c.view(now).Stuck {
		t.Fatal("view does not show stuck")
	}
	sv, _ := s.snapshot()
	if sv.StuckCampaigns != 1 {
		t.Fatalf("stuckCampaigns = %d, want 1", sv.StuckCampaigns)
	}
	// Progress clears the flag.
	c.mu.Lock()
	c.queue = []int{1}
	c.mu.Unlock()
	c.record(0, harness.JobResult{Job: jobs[0], Hash: jobs[0].Hash(), Result: experiment.Result{}})
	if c.view(now).Stuck {
		t.Fatal("stuck not cleared by progress")
	}
	if s.sweepStuck(time.Now()) {
		t.Fatal("re-flagged immediately after progress")
	}
}

// TestResultsMarshalErrorsSurfaced (satellite fix): a result the stream
// cannot encode is counted into the campaign view instead of silently
// truncating the stream.
func TestResultsMarshalErrorsSurfaced(t *testing.T) {
	s := newLimitedService(t, Limits{})
	c, err := s.Submit(SweepRequest{
		Configs: []string{"FR6"}, Loads: []float64{0.2, 0.25},
		Sample: 150, Warmup: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c)

	// Fail encoding for exactly the first job's hash.
	victim := c.jobs[0].Hash()
	orig := marshalEntry
	marshalEntry = func(j harness.Job, hash string, r experiment.Result) ([]byte, error) {
		if hash == victim {
			return nil, fmt.Errorf("forced marshal failure")
		}
		return orig(j, hash, r)
	}
	defer func() { marshalEntry = orig }()

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/campaigns/" + c.ID() + "/results")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body) //nolint:errcheck // test buffer
	resp.Body.Close()
	if n := bytes.Count(body.Bytes(), []byte("\n")); n != 1 {
		t.Fatalf("stream has %d lines, want 1 (victim omitted)", n)
	}
	if v := c.view(time.Now()); v.MarshalErrors != 1 {
		t.Fatalf("view.MarshalErrors = %d, want 1", v.MarshalErrors)
	}
	// The campaign detail endpoint carries it too.
	var detail struct {
		MarshalErrors int `json:"marshalErrors"`
	}
	dresp, err := http.Get(srv.URL + "/campaigns/" + c.ID())
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(dresp.Body).Decode(&detail); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if detail.MarshalErrors != 1 {
		t.Fatalf("detail marshalErrors = %d, want 1", detail.MarshalErrors)
	}
}
