package service

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"frfc/internal/report"
)

// Reporter regenerates a BENCHMARK.md-style report from the live result
// database each time a campaign completes. Kicks are coalesced: a burst of
// completions while a render is in flight produces exactly one follow-up
// render over the then-current database, so the report is always at least as
// fresh as the last kick. Writes are atomic (temp file + rename) so a reader
// never observes a half-written report.
type Reporter struct {
	db   *DB
	path string

	kick chan struct{} // capacity 1: pending-work flag, not a queue
	done chan struct{}
	stop sync.Once

	mu      sync.Mutex
	renders int
	lastErr error
}

// NewReporter starts a reporter regenerating path from db. Wire its Kick
// method to Options.OnCampaignDone and call Close at shutdown.
func NewReporter(db *DB, path string) *Reporter {
	r := &Reporter{
		db: db, path: path,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	go r.loop()
	return r
}

// Kick requests a regeneration. Never blocks: if one is already pending the
// kick coalesces with it.
func (r *Reporter) Kick(CampaignView) {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// Renders reports how many regenerations completed, and the last render
// error (nil when the last render succeeded).
func (r *Reporter) Renders() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.renders, r.lastErr
}

// Close stops the reporter after draining any pending kick, so a completion
// recorded before Close is always reflected in the file. Safe to call more
// than once. Kicks after Close panic — stop the service first.
func (r *Reporter) Close() {
	r.stop.Do(func() { close(r.kick) })
	<-r.done
}

func (r *Reporter) loop() {
	defer close(r.done)
	for range r.kick {
		err := r.render()
		r.mu.Lock()
		r.renders++
		r.lastErr = err
		r.mu.Unlock()
	}
}

// render snapshots the database and rewrites the report atomically.
func (r *Reporter) render() error {
	var buf bytes.Buffer
	if err := r.db.Snapshot(&buf); err != nil {
		return fmt.Errorf("snapshot db: %w", err)
	}
	// The snapshot is written by the database itself, so strict parsing: a
	// malformed line here is a bug, not operator input.
	src, err := report.ReadStore(&buf, r.db.Dir(), false)
	if err != nil {
		return err
	}
	out := report.Render([]report.Source{src}, nil)
	tmp, err := os.CreateTemp(filepath.Dir(r.path), ".report-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), r.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
