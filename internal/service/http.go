package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"frfc/internal/harness"
	"frfc/internal/status"
)

// Handler returns the service's REST API:
//
//	POST   /campaigns               submit a SweepRequest, returns the campaign summary (201)
//	GET    /campaigns               list campaign summaries, submission order
//	GET    /campaigns/{id}          one campaign's summary plus per-job rows
//	GET    /campaigns/{id}/results  completed results as JSONL store lines, job order
//	                                (?wait=1 blocks until the campaign finishes)
//	DELETE /campaigns/{id}          cancel cooperatively, keeping completed results
//
// Mount it on a status server with Mount to share one listener with /status
// and /metrics.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	s.register(func(pattern string, h http.HandlerFunc) { mux.Handle(pattern, h) })
	return mux
}

// Mount registers the REST routes on a status server's mux, so the campaign
// API, /status and /metrics share one listener.
func (s *Service) Mount(st *status.Server) {
	s.register(func(pattern string, h http.HandlerFunc) { st.Handle(pattern, h) })
}

func (s *Service) register(handle func(pattern string, h http.HandlerFunc)) {
	handle("POST /campaigns", s.handleSubmit)
	handle("GET /campaigns", s.handleList)
	handle("GET /campaigns/{id}", s.handleGet)
	handle("GET /campaigns/{id}/results", s.handleResults)
	handle("DELETE /campaigns/{id}", s.handleCancel)
	handle("GET /healthz", s.handleHealthz)
	handle("GET /readyz", s.handleReadyz)
}

// apiError is the JSON error envelope every non-2xx response carries.
func apiError(w http.ResponseWriter, code int, format string, a ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{ //nolint:errcheck // client gone is not our problem
		"error": fmt.Sprintf(format, a...),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is not our problem
}

// clientKey identifies the submitting client for rate limiting: the peer
// address without the ephemeral port, so one host shares one bucket.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := r.Body
	if max := s.opts.Limits.MaxBodyBytes; max > 0 {
		body = http.MaxBytesReader(w, r.Body, max)
	}
	var req SweepRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.noteRejected(rejectBody)
			apiError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return
		}
		s.noteRejected(rejectValidation)
		apiError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	c, err := s.SubmitFrom(req, clientKey(r))
	if err != nil {
		switch {
		case errors.Is(err, ErrCapacity):
			// The envelope is full or the client is over rate: explicitly
			// retryable, with a hint. One second is the token-bucket
			// horizon for rate rejections and a sane floor for the rest.
			w.Header().Set("Retry-After", "1")
			apiError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, ErrClosed):
			apiError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			apiError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, c.view(c.created))
}

// handleHealthz is liveness: the process is up and serving HTTP. Always 200.
func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 200 while accepting submissions, 503 once the
// daemon starts draining — the signal that tells a load balancer to route
// elsewhere while in-flight campaigns finish.
func (s *Service) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

// campaignDetail is the GET /campaigns/{id} response body.
type campaignDetail struct {
	CampaignView
	JobRows []JobView `json:"jobRows"`
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	c, ok := s.Get(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, campaignDetail{
		CampaignView: c.view(time.Now()),
		JobRows:      c.jobViews(),
	})
}

// handleResults streams the campaign's completed results as canonical JSONL
// store lines in job order — byte-identical to the store a one-shot
// single-worker campaign writes, which is what the CI smoke test diffs.
// With ?wait=1 the response is delayed until the campaign reaches a
// terminal state (or the client goes away).
func (s *Service) handleResults(w http.ResponseWriter, r *http.Request) {
	c, ok := s.Get(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	if wait := r.URL.Query().Get("wait"); wait == "1" || wait == "true" {
		select {
		case <-c.Finished():
		case <-r.Context().Done():
			return
		}
	}
	w.Header().Set("Content-Type", "application/jsonl")
	marshalFailed := 0
	for _, jr := range c.Results() {
		if jr.Hash == "" || jr.Err != "" || jr.Skipped {
			continue // not finished, failed, or cancelled: nothing stored
		}
		line, err := marshalEntry(jr.Job, jr.Hash, jr.Result)
		if err != nil {
			// The stream omits the line but the truncation is not silent:
			// counted into the campaign view, logged once per campaign.
			marshalFailed++
			continue
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return
		}
	}
	if marshalFailed > 0 && c.noteMarshalErrors(marshalFailed) {
		log.Printf("service: campaign %s: %d result(s) failed to marshal; results stream is incomplete",
			c.ID(), marshalFailed)
	}
}

// marshalEntry is harness.MarshalEntry, indirect so tests can force encode
// failures on the results stream.
var marshalEntry = harness.MarshalEntry

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	c, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, c.view(time.Now()))
}
