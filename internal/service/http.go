package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"frfc/internal/harness"
	"frfc/internal/status"
)

// Handler returns the service's REST API:
//
//	POST   /campaigns               submit a SweepRequest, returns the campaign summary (201)
//	GET    /campaigns               list campaign summaries, submission order
//	GET    /campaigns/{id}          one campaign's summary plus per-job rows
//	GET    /campaigns/{id}/results  completed results as JSONL store lines, job order
//	                                (?wait=1 blocks until the campaign finishes)
//	DELETE /campaigns/{id}          cancel cooperatively, keeping completed results
//
// Mount it on a status server with Mount to share one listener with /status
// and /metrics.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	s.register(func(pattern string, h http.HandlerFunc) { mux.Handle(pattern, h) })
	return mux
}

// Mount registers the REST routes on a status server's mux, so the campaign
// API, /status and /metrics share one listener.
func (s *Service) Mount(st *status.Server) {
	s.register(func(pattern string, h http.HandlerFunc) { st.Handle(pattern, h) })
}

func (s *Service) register(handle func(pattern string, h http.HandlerFunc)) {
	handle("POST /campaigns", s.handleSubmit)
	handle("GET /campaigns", s.handleList)
	handle("GET /campaigns/{id}", s.handleGet)
	handle("GET /campaigns/{id}/results", s.handleResults)
	handle("DELETE /campaigns/{id}", s.handleCancel)
}

// apiError is the JSON error envelope every non-2xx response carries.
func apiError(w http.ResponseWriter, code int, format string, a ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{ //nolint:errcheck // client gone is not our problem
		"error": fmt.Sprintf(format, a...),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is not our problem
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		apiError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	c, err := s.Submit(req)
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, c.view(c.created))
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

// campaignDetail is the GET /campaigns/{id} response body.
type campaignDetail struct {
	CampaignView
	JobRows []JobView `json:"jobRows"`
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	c, ok := s.Get(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, campaignDetail{
		CampaignView: c.view(time.Now()),
		JobRows:      c.jobViews(),
	})
}

// handleResults streams the campaign's completed results as canonical JSONL
// store lines in job order — byte-identical to the store a one-shot
// single-worker campaign writes, which is what the CI smoke test diffs.
// With ?wait=1 the response is delayed until the campaign reaches a
// terminal state (or the client goes away).
func (s *Service) handleResults(w http.ResponseWriter, r *http.Request) {
	c, ok := s.Get(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	if wait := r.URL.Query().Get("wait"); wait == "1" || wait == "true" {
		select {
		case <-c.Finished():
		case <-r.Context().Done():
			return
		}
	}
	w.Header().Set("Content-Type", "application/jsonl")
	for _, jr := range c.Results() {
		if jr.Hash == "" || jr.Err != "" || jr.Skipped {
			continue // not finished, failed, or cancelled: nothing stored
		}
		line, err := harness.MarshalEntry(jr.Job, jr.Hash, jr.Result)
		if err != nil {
			continue
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return
		}
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	c, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, c.view(time.Now()))
}
