package service

import (
	"fmt"
	"math"
	"strings"

	"frfc/internal/experiment"
	"frfc/internal/harness"
	"frfc/internal/sim"
)

// SweepRequest is the JSON body of POST /campaigns: a load-grid sweep over
// named configurations, the service analog of a cmd/sweep invocation. The
// grid expansion, spec construction and sampling knobs mirror cmd/sweep
// exactly, so a campaign submitted here produces jobs with the same content
// hashes — and therefore the same stored bytes — as the one-shot CLI run.
type SweepRequest struct {
	// Name labels the campaign in listings and /status; optional.
	Name string `json:"name,omitempty"`
	// Configs names the specs to sweep: FR6, FR13, VC8, VC16, VC32, WH,
	// SAF, VCT, CS, FR6-leadN.
	Configs []string `json:"configs"`
	// Wiring is "fast" (default) or "leading".
	Wiring string `json:"wiring,omitempty"`
	// PacketLen is the packet length in data flits; 0 means 5.
	PacketLen int `json:"pktlen,omitempty"`

	// Loads is the explicit offered-load grid (fractions of capacity).
	// When empty, From/To/Step expand one, exactly as cmd/sweep does.
	Loads []float64 `json:"loads,omitempty"`
	From  float64   `json:"from,omitempty"`
	To    float64   `json:"to,omitempty"`
	Step  float64   `json:"step,omitempty"`

	// Sample and Warmup scale the measurement protocol; 0 keeps the spec
	// defaults. Seed overrides the RNG seed; Routing and Check mirror the
	// sweep flags of the same names.
	Sample  int    `json:"sample,omitempty"`
	Warmup  int    `json:"warmup,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	Routing string `json:"routing,omitempty"`
	Check   bool   `json:"check,omitempty"`

	// Waterfall arms latency provenance on every simulated job: stored
	// results carry the Waterfall* stage decomposition (the seven lifecycle
	// stages summing exactly to the measured latency), exactly as cmd/sweep
	// -waterfall does. Observation-only: every other result field and the
	// job hashes are unchanged, so provenance-on and provenance-off
	// campaigns dedup against each other.
	Waterfall bool `json:"waterfall,omitempty"`

	// Weight is the campaign's share of the shared worker pool under
	// weighted round-robin; 0 means 1. MaxInFlight caps how many of the
	// campaign's jobs may execute at once; 0 means no cap beyond the pool.
	Weight      int `json:"weight,omitempty"`
	MaxInFlight int `json:"maxInFlight,omitempty"`
}

// normalized fills the request's defaults in place and validates it.
func (r *SweepRequest) normalized() error {
	if len(r.Configs) == 0 {
		return fmt.Errorf("configs must name at least one configuration")
	}
	if r.Wiring == "" {
		r.Wiring = "fast"
	}
	if r.Wiring != "fast" && r.Wiring != "leading" {
		return fmt.Errorf("unknown wiring %q (want fast or leading)", r.Wiring)
	}
	if r.PacketLen == 0 {
		r.PacketLen = 5
	}
	if r.PacketLen < 1 {
		return fmt.Errorf("pktlen must be >= 1 (got %d)", r.PacketLen)
	}
	if len(r.Loads) == 0 {
		if r.Step <= 0 {
			return fmt.Errorf("step must be > 0 (got %g)", r.Step)
		}
		if r.From <= 0 {
			return fmt.Errorf("from must be > 0 (got %g)", r.From)
		}
		if r.From > r.To {
			return fmt.Errorf("from (%g) must not exceed to (%g)", r.From, r.To)
		}
		// The identical accumulation loop cmd/sweep runs, so the grid's
		// float64 values — and therefore the job hashes and stored line
		// bytes — match the CLI's exactly.
		for l := r.From; l <= r.To+1e-9; l += r.Step {
			r.Loads = append(r.Loads, l)
		}
	}
	for _, l := range r.Loads {
		if l <= 0 || l > 2 {
			return fmt.Errorf("load %g out of range (0,2]", l)
		}
	}
	if r.Sample < 0 || r.Warmup < 0 {
		return fmt.Errorf("sample and warmup must be >= 0")
	}
	if (r.Sample == 0) != (r.Warmup == 0) {
		return fmt.Errorf("sample and warmup must be set together")
	}
	if r.Weight == 0 {
		r.Weight = 1
	}
	if r.Weight < 1 {
		return fmt.Errorf("weight must be >= 1 (got %d)", r.Weight)
	}
	if r.MaxInFlight < 0 {
		return fmt.Errorf("maxInFlight must be >= 0 (got %d)", r.MaxInFlight)
	}
	if r.Name == "" {
		r.Name = strings.Join(r.Configs, ",")
	}
	return nil
}

// estimateJobs computes the job count the request would expand to, by
// arithmetic alone — no grid allocation — validating just the fields the
// estimate rests on. Admission control checks MaxJobsPerCampaign against
// this before normalized() materializes anything, so rejecting an absurd
// from/to/step costs a handful of float ops, not the memory the grid
// claims.
func (r SweepRequest) estimateJobs() (int, error) {
	if len(r.Configs) == 0 {
		return 0, fmt.Errorf("configs must name at least one configuration")
	}
	loads := len(r.Loads)
	if loads == 0 {
		if r.Step <= 0 {
			return 0, fmt.Errorf("step must be > 0 (got %g)", r.Step)
		}
		if r.From <= 0 {
			return 0, fmt.Errorf("from must be > 0 (got %g)", r.From)
		}
		if r.From > r.To {
			return 0, fmt.Errorf("from (%g) must not exceed to (%g)", r.From, r.To)
		}
		// Trip count of normalized()'s accumulation loop: l = From + k*Step
		// while l <= To + 1e-9.
		n := math.Floor((r.To+1e-9-r.From)/r.Step) + 1
		if n > math.MaxInt32 {
			return math.MaxInt32, nil
		}
		loads = int(n)
	}
	total := loads * len(r.Configs)
	if total < 0 || (loads > 0 && total/loads != len(r.Configs)) {
		return math.MaxInt32, nil // overflow: report "huge", let the cap reject it
	}
	return total, nil
}

// jobs expands the normalized request into harness jobs, specs outermost —
// the same order a cmd/sweep grid builds, so result streams line up with a
// one-shot store written by a single worker.
func (r SweepRequest) jobs() ([]harness.Job, error) {
	w := experiment.FastControl
	if r.Wiring == "leading" {
		w = experiment.LeadingControl
	}
	jobs := make([]harness.Job, 0, len(r.Configs)*len(r.Loads))
	for _, name := range r.Configs {
		spec, err := specByName(strings.TrimSpace(name), w, r.PacketLen)
		if err != nil {
			return nil, err
		}
		if r.Sample > 0 {
			spec = spec.Scaled(r.Sample, sim.Cycle(r.Warmup))
		}
		if r.Seed != 0 {
			spec.Seed = r.Seed
		}
		if r.Routing != "" {
			switch r.Routing {
			case "xy", "yx", "table":
				spec.Routing = r.Routing
			default:
				return nil, fmt.Errorf("unknown routing %q (want xy, yx or table)", r.Routing)
			}
		}
		if r.Check {
			spec.Check = true
		}
		for _, l := range r.Loads {
			jobs = append(jobs, harness.Job{Spec: spec, Load: l})
		}
	}
	return jobs, nil
}

// specByName resolves the sweep config vocabulary to an experiment spec,
// mirroring cmd/sweep's specFor (including the FR6-under-leading special
// case) so service campaigns hash identically to CLI campaigns.
func specByName(name string, w experiment.Wiring, pktLen int) (experiment.Spec, error) {
	if lead, ok := strings.CutPrefix(name, "FR6-lead"); ok {
		var n int
		if _, err := fmt.Sscanf(lead, "%d", &n); err != nil {
			return experiment.Spec{}, fmt.Errorf("bad lead suffix in %q", name)
		}
		return experiment.FRLead(sim.Cycle(n), pktLen), nil
	}
	switch name {
	case "FR6":
		if w == experiment.LeadingControl {
			return experiment.FRLead(1, pktLen), nil
		}
		return experiment.FR6(w, pktLen), nil
	case "FR13":
		return experiment.FR13(w, pktLen), nil
	case "VC8":
		return experiment.VC8(w, pktLen), nil
	case "VC16":
		return experiment.VC16(w, pktLen), nil
	case "VC32":
		return experiment.VC32(w, pktLen), nil
	case "WH":
		return experiment.WormholeSpec("WH8", w, 8, pktLen), nil
	case "SAF":
		return experiment.PacketSwitchSpec("SAF2", experiment.StoreForward, w, 2, pktLen), nil
	case "VCT":
		return experiment.PacketSwitchSpec("VCT2", experiment.CutThrough, w, 2, pktLen), nil
	case "CS":
		return experiment.CircuitSpec("CS", w, pktLen), nil
	default:
		return experiment.Spec{}, fmt.Errorf("unknown config %q (FR6, FR13, VC8, VC16, VC32, WH, SAF, VCT, CS, FR6-leadN)", name)
	}
}
