package service

import (
	"context"
	"sync"
	"time"

	"frfc/internal/harness"
)

// State is a campaign's lifecycle phase.
type State string

// Campaign states. A cancelled campaign keeps whatever results completed
// before the cancel; its remaining jobs are marked cancelled.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateCancelled State = "cancelled"
)

// Campaign is one submitted sweep: its expanded job list, per-job results in
// job order, scheduling parameters, and lifecycle state. All mutable fields
// are guarded by mu; the scheduler additionally owns wrr under its own lock.
type Campaign struct {
	id      string
	req     SweepRequest
	jobs    []harness.Job
	created time.Time

	ctx    context.Context
	cancel context.CancelFunc
	// finished closes exactly once, when the last job records (or the
	// campaign is cancelled with nothing in flight).
	finished chan struct{}

	mu       sync.Mutex
	state    State
	results  []harness.JobResult // indexed like jobs; zero until recorded
	done     []bool
	queue    []int // job indices not yet dispatched, FIFO
	inflight int
	recorded int
	// counters, split the way /status reports them
	simulated int
	cached    int
	failed    int
	cancelled int
	// marshalErrors counts results the stream endpoint could not encode —
	// surfaced in the view instead of silently truncating the stream.
	marshalErrors int
	// lastProgress is when an outcome last recorded (submission time until
	// then); stuck is the watchdog's verdict, cleared by any progress.
	lastProgress time.Time
	stuck        bool

	// weight and maxInflight are fixed at submission.
	weight      int
	maxInflight int
	// wrr is the campaign's smooth weighted-round-robin credit; owned by
	// the scheduler's lock, not mu.
	wrr int
}

// ID returns the campaign's identifier.
func (c *Campaign) ID() string { return c.id }

// Finished returns a channel closed when the campaign reaches a terminal
// state (done or cancelled with nothing left in flight).
func (c *Campaign) Finished() <-chan struct{} { return c.finished }

// State reports the campaign's current lifecycle phase.
func (c *Campaign) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Results returns a copy of the per-job results, in job order. Jobs not yet
// finished have a zero JobResult (empty Hash).
func (c *Campaign) Results() []harness.JobResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]harness.JobResult, len(c.results))
	copy(out, c.results)
	return out
}

// record stores one job's outcome and advances the campaign's lifecycle.
// Returns true when this record completed the campaign.
func (c *Campaign) record(idx int, jr harness.JobResult) (completed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done[idx] {
		return false
	}
	c.done[idx] = true
	c.results[idx] = jr
	c.recorded++
	c.lastProgress = time.Now()
	c.stuck = false
	switch {
	case jr.Cached:
		c.cached++
	case jr.Skipped:
		c.cancelled++
	case jr.Err != "" && c.state == StateCancelled:
		// An in-flight job cut short by the campaign's cancel, not a
		// failure of the job itself.
		c.cancelled++
	case jr.Err != "":
		c.failed++
	default:
		c.simulated++
	}
	if c.recorded == len(c.jobs) {
		if c.state != StateCancelled {
			c.state = StateDone
		}
		close(c.finished)
		return true
	}
	return false
}

// CampaignView is the JSON summary of one campaign, shared by the REST API
// and the /status snapshot.
type CampaignView struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	State State  `json:"state"`
	// Jobs is the campaign size; Done counts recorded outcomes of any kind.
	Jobs int `json:"jobs"`
	Done int `json:"done"`
	// Simulated jobs actually ran; Cached were served from the result
	// database (the dedup ledger); Failed carry an error; Cancelled were
	// never run because the campaign was cancelled.
	Simulated int `json:"simulated"`
	Cached    int `json:"cached"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled,omitempty"`
	// QueueDepth and InFlight describe the scheduler's view right now.
	QueueDepth int `json:"queueDepth"`
	InFlight   int `json:"inFlight"`
	// Weight and MaxInFlight echo the scheduling parameters.
	Weight      int `json:"weight"`
	MaxInFlight int `json:"maxInFlight,omitempty"`
	// AgeSeconds is how long ago the campaign was submitted.
	AgeSeconds float64 `json:"ageSeconds"`
	// Stuck is the no-progress watchdog's verdict: work outstanding but
	// nothing recorded for longer than the service's StuckAfter.
	Stuck bool `json:"stuck,omitempty"`
	// MarshalErrors counts completed results the results stream failed to
	// encode (and therefore omitted) — zero unless something is deeply
	// wrong with a stored result.
	MarshalErrors int `json:"marshalErrors,omitempty"`
}

// view snapshots the campaign summary.
func (c *Campaign) view(now time.Time) CampaignView {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CampaignView{
		ID: c.id, Name: c.req.Name, State: c.state,
		Jobs: len(c.jobs), Done: c.recorded,
		Simulated: c.simulated, Cached: c.cached,
		Failed: c.failed, Cancelled: c.cancelled,
		QueueDepth: len(c.queue), InFlight: c.inflight,
		Weight: c.weight, MaxInFlight: c.maxInflight,
		AgeSeconds: now.Sub(c.created).Seconds(),
		Stuck:      c.stuck, MarshalErrors: c.marshalErrors,
	}
}

// noteMarshalErrors raises the campaign's marshal-error count (the results
// stream recounts on every request; the maximum observed stands). Returns
// true the first time the count becomes nonzero, so the caller logs once
// per campaign, not once per poll.
func (c *Campaign) noteMarshalErrors(n int) (first bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n > c.marshalErrors {
		first = c.marshalErrors == 0
		c.marshalErrors = n
	}
	return first
}

// JobView is one job's row in the campaign detail response.
type JobView struct {
	Spec string  `json:"spec"`
	Load float64 `json:"load"`
	Seed uint64  `json:"seed,omitempty"`
	Hash string  `json:"hash"`
	// State is "queued", "running", "done", "cached", "failed" or
	// "cancelled".
	State string `json:"state"`
	// Latency is the job's measured average latency, present once done.
	Latency float64 `json:"latency,omitempty"`
	Err     string  `json:"err,omitempty"`
}

// jobViews snapshots the per-job rows, in job order.
func (c *Campaign) jobViews() []JobView {
	c.mu.Lock()
	defer c.mu.Unlock()
	queued := make(map[int]bool, len(c.queue))
	for _, i := range c.queue {
		queued[i] = true
	}
	out := make([]JobView, len(c.jobs))
	for i, j := range c.jobs {
		jv := JobView{
			Spec: j.EffectiveSpec().Name, Load: j.Load, Seed: j.Seed,
			Hash: j.Hash(),
		}
		switch {
		case !c.done[i] && queued[i]:
			jv.State = "queued"
		case !c.done[i]:
			jv.State = "running"
		case c.results[i].Cached:
			jv.State = "cached"
			jv.Latency = c.results[i].Result.AvgLatency
		case c.results[i].Skipped:
			jv.State = "cancelled"
		case c.results[i].Err != "":
			jv.State = "failed"
			jv.Err = c.results[i].Err
		default:
			jv.State = "done"
			jv.Latency = c.results[i].Result.AvgLatency
		}
		out[i] = jv
	}
	return out
}
