package service

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"frfc/internal/experiment"
)

// TestConcurrentSubmitCancelClose (satellite): submissions, cancellations and
// shutdown all racing is the daemon's normal death — SIGTERM arrives while
// clients are mid-flight. Run under -race; the assertions are "no panic, no
// deadlock, every admitted campaign reaches a terminal state, every rejection
// is typed".
func TestConcurrentSubmitCancelClose(t *testing.T) {
	db, err := OpenDB(filepath.Join(t.TempDir(), "db"), DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := New(db, Options{Workers: 2, Limits: Limits{MaxCampaigns: 4, MaxQueuedJobs: 64}})

	var mu sync.Mutex
	var admitted []*Campaign

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				c, err := s.Submit(SweepRequest{
					Name:    fmt.Sprintf("race-%d-%d", g, i),
					Configs: []string{"FR6"},
					Loads:   []float64{0.2 + float64(g)*0.01, 0.25 + float64(g)*0.01},
					Sample:  150, Warmup: 300, Seed: uint64(g*100 + i + 1),
				})
				switch {
				case err == nil:
					mu.Lock()
					admitted = append(admitted, c)
					mu.Unlock()
				case errors.Is(err, ErrCapacity), errors.Is(err, ErrClosed):
					// typed rejection: the expected outcome under pressure
				default:
					t.Errorf("untyped submit error: %v", err)
				}
			}
		}(g)
	}
	// Cancellers race the submitters over whatever is admitted so far.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				mu.Lock()
				var id string
				if len(admitted) > 0 {
					id = admitted[i%len(admitted)].ID()
				}
				mu.Unlock()
				if id != "" {
					s.Cancel(id)
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	// Close races the tail of the submissions.
	closeErr := make(chan error, 2)
	wg.Add(2)
	for g := 0; g < 2; g++ { // double-Close, concurrently
		go func() {
			defer wg.Done()
			time.Sleep(20 * time.Millisecond)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			closeErr <- s.Close(ctx)
		}()
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-closeErr; err != nil {
			t.Fatalf("close %d: %v", i, err)
		}
	}
	// After Close returns both times, every admitted campaign must be
	// terminal — nothing left running against a drained pool.
	for _, c := range admitted {
		select {
		case <-c.Finished():
		default:
			t.Errorf("campaign %s not terminal after Close: %+v", c.ID(), c.view(time.Now()))
		}
	}
	if _, err := s.Submit(SweepRequest{Configs: []string{"FR6"}, Loads: []float64{0.2}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: got %v, want ErrClosed", err)
	}
}

// TestServiceDoubleClose: sequential re-Close is a cheap no-op, not a panic
// on a closed channel or a hung wait.
func TestServiceDoubleClose(t *testing.T) {
	s, _ := newTestService(t, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestDBConcurrentPutCloseCompact: Put, Stats, Close and a second Close
// racing on one DB. The loser of the close race gets a "put on closed db"
// error, never a torn write or a data race.
func TestDBConcurrentPutCloseCompact(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, DBOptions{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	jobs := tinyJobs(16, 42)
	res := experiment.Run(jobs[0].Spec, jobs[0].Load)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g * 4; i < g*4+4; i++ {
				db.Put(jobs[i], jobs[i].Hash(), res) //nolint:errcheck // racing close; error is the point
				db.Stats()
			}
		}(g)
	}
	wg.Add(2)
	for g := 0; g < 2; g++ {
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(1+g) * time.Millisecond)
			db.Close() //nolint:errcheck // double-close race is the test
		}()
	}
	wg.Wait()

	// Whatever landed before the close must replay cleanly.
	db2, err := OpenDB(dir, DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	st := db2.Stats()
	if st.Quarantined != 0 {
		t.Fatalf("quarantined %d lines after racing close, want 0", st.Quarantined)
	}
	if st.Entries < 0 || st.Entries > 16 {
		t.Fatalf("entries = %d out of range", st.Entries)
	}
}
