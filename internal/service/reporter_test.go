package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"frfc/internal/experiment"
)

// TestReporterRegeneratesAtomically: a kick renders the database snapshot to
// the report path, Close drains pending kicks, and rerendering an unchanged
// database is byte-identical.
func TestReporterRegeneratesAtomically(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(filepath.Join(dir, "db"), DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	jobs := tinyJobs(3, 7)
	res := experiment.Run(jobs[0].Spec, jobs[0].Load)
	for _, j := range jobs {
		if err := db.Put(j, j.Hash(), res); err != nil {
			t.Fatal(err)
		}
	}

	path := filepath.Join(dir, "BENCHMARK.md")
	rep := NewReporter(db, path)
	rep.Kick(CampaignView{})
	// A burst of kicks coalesces rather than queueing.
	for i := 0; i < 10; i++ {
		rep.Kick(CampaignView{})
	}
	rep.Close()
	renders, lastErr := rep.Renders()
	if lastErr != nil {
		t.Fatalf("render error: %v", lastErr)
	}
	if renders < 1 || renders > 11 {
		t.Fatalf("renders = %d, want coalesced burst (1..11)", renders)
	}

	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(first), "3 points") {
		t.Fatalf("report missing rows:\n%s", first)
	}
	// No temp litter left behind by the atomic write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".report-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}

	// An unchanged database rerenders byte-identically.
	rep2 := NewReporter(db, path)
	rep2.Kick(CampaignView{})
	rep2.Close()
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("report not deterministic:\n%s\nvs\n%s", first, second)
	}
}
