package service

import (
	"errors"
	"math"
	"sync"
	"time"
)

// ErrCapacity marks a submission rejected by admission control — the service
// is full or the client is over its rate, and retrying later is the right
// move. The HTTP layer renders it as 429 with Retry-After.
var ErrCapacity = errors.New("capacity exceeded")

// ErrClosed marks a submission rejected because the service is draining or
// shut down; the HTTP layer renders it as 503.
var ErrClosed = errors.New("service is shutting down")

// Limits is the service's admission-control envelope: what it promises to
// accept, everything beyond which is rejected fast and explicitly — the
// reservation discipline the simulator applies to link bandwidth, applied to
// the worker pool. The zero value means unlimited (the PR-8 behavior),
// so embedded and test uses keep working untuned.
type Limits struct {
	// MaxCampaigns caps concurrently active (queued or running) campaigns.
	MaxCampaigns int
	// MaxQueuedJobs caps the sum of undispatched jobs across all active
	// campaigns.
	MaxQueuedJobs int
	// MaxJobsPerCampaign caps one submission's expanded grid. Enforced
	// against an arithmetic pre-estimate before the grid is allocated, so
	// a hostile from/to/step cannot balloon memory on its way to a 429.
	MaxJobsPerCampaign int
	// MaxBodyBytes caps the submit request body (http.MaxBytesReader).
	MaxBodyBytes int64
	// RatePerSec and Burst shape the per-client token bucket on submits:
	// sustained RatePerSec with bursts of Burst. RatePerSec 0 disables
	// rate limiting; Burst 0 means a burst of 1.
	RatePerSec float64
	Burst      int
}

// rejection reasons, the keys of the rejected-counter map in /status.
const (
	rejectRate       = "rate"       // token bucket empty for this client
	rejectCampaigns  = "campaigns"  // MaxCampaigns reached
	rejectJobs       = "jobs"       // MaxQueuedJobs or MaxJobsPerCampaign
	rejectBody       = "body"       // request body over MaxBodyBytes
	rejectValidation = "validation" // malformed request
	rejectClosed     = "closed"     // draining or shut down
)

// rateLimiter is a per-key token bucket: each key sustains rate tokens/sec
// with bursts of burst. Buckets are created on first sight and evicted
// wholesale when the table grows past its cap, which refunds at most one
// burst per client — fine for admission control, fatal for billing, and this
// is admission control.
type rateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// rateTableCap bounds the bucket table; an attacker cycling source addresses
// buys resets, not memory.
const rateTableCap = 4096

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst <= 0 {
		burst = 1
	}
	return &rateLimiter{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket)}
}

// allow consumes one token from key's bucket if available. now is a
// parameter so tests drive time explicitly.
func (rl *rateLimiter) allow(key string, now time.Time) bool {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b, ok := rl.buckets[key]
	if !ok {
		if len(rl.buckets) >= rateTableCap {
			rl.buckets = make(map[string]*bucket)
		}
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[key] = b
	}
	b.tokens = math.Min(rl.burst, b.tokens+rl.rate*now.Sub(b.last).Seconds())
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
