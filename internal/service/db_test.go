package service

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"frfc/internal/experiment"
	"frfc/internal/harness"
)

func tinySpec() experiment.Spec {
	s := experiment.FR6(experiment.FastControl, 5)
	s.MeshRadix = 4
	return s.Scaled(150, 300)
}

// tinyJobs builds n distinct jobs sharing one tiny spec.
func tinyJobs(n int, seed uint64) []harness.Job {
	jobs := make([]harness.Job, n)
	for i := range jobs {
		jobs[i] = harness.Job{Spec: tinySpec(), Load: 0.2 + float64(i)*0.01, Seed: seed}
	}
	return jobs
}

// TestDBRotationAndReplay: a tiny segment limit forces rotation; a reopened
// database replays every segment and resolves every hash bit-identically.
func TestDBRotationAndReplay(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, DBOptions{SegmentBytes: 512}) // a line is ~400 bytes
	if err != nil {
		t.Fatal(err)
	}
	jobs := tinyJobs(6, 1)
	res := experiment.Run(jobs[0].Spec, jobs[0].Load)
	for _, j := range jobs {
		if err := db.Put(j, j.Hash(), res); err != nil {
			t.Fatal(err)
		}
	}
	if s := db.Stats(); s.Segments < 3 {
		t.Fatalf("segments = %d, want rotation to have produced at least 3", s.Segments)
	}
	var snap1 bytes.Buffer
	if err := db.Snapshot(&snap1); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := OpenDB(dir, DBOptions{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != len(jobs) {
		t.Fatalf("reopen resolves %d hashes, want %d", db2.Len(), len(jobs))
	}
	for _, j := range jobs {
		got, ok := db2.Get(j.Hash())
		if !ok {
			t.Fatalf("hash %s lost across reopen", j.Hash())
		}
		if !reflect.DeepEqual(got, res) {
			t.Fatalf("result changed across reopen")
		}
	}
	var snap2 bytes.Buffer
	if err := db2.Snapshot(&snap2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap1.Bytes(), snap2.Bytes()) {
		t.Fatalf("snapshot not byte-identical across reopen:\n%s\nvs\n%s", snap1.String(), snap2.String())
	}
}

// TestDBHealsTornTail: a kill mid-write leaves a truncated last line; reopen
// heals it (counts it, keeps every complete line) and the next Put appends
// cleanly.
func TestDBHealsTornTail(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	jobs := tinyJobs(3, 2)
	res := experiment.Run(jobs[0].Spec, jobs[0].Load)
	for _, j := range jobs[:2] {
		if err := db.Put(j, j.Hash(), res); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	// Tear the tail: drop the last 20 bytes of the only segment, and the
	// matching checksum line — a kill mid-write loses both together. (A
	// torn data line under an intact checksum is corruption, not a tear,
	// and is quarantined instead; see db_crash_test.go.)
	seg := filepath.Join(dir, segmentName(0))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, raw[:len(raw)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	sums, err := os.ReadFile(filepath.Join(dir, sumName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, sumName(0)), sums[:len(sums)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDB(dir, DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s := db2.Stats()
	if s.Entries != 1 || s.Healed != 1 {
		t.Fatalf("entries=%d healed=%d, want 1/1", s.Entries, s.Healed)
	}
	if _, ok := db2.Get(jobs[0].Hash()); !ok {
		t.Fatal("intact first line lost while healing")
	}
	// The torn job and a new one append cleanly after healing.
	for _, j := range jobs[1:] {
		if err := db2.Put(j, j.Hash(), res); err != nil {
			t.Fatal(err)
		}
	}
	if db2.Len() != 3 {
		t.Fatalf("len = %d after re-put, want 3", db2.Len())
	}
}

// TestDBConcurrentAccess: two goroutines putting disjoint job sets while a
// reader Gets concurrently — under -race — must leave no torn records: a
// reopened database heals nothing and resolves every hash exactly once.
func TestDBConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, DBOptions{SegmentBytes: 1024}) // rotate under load too
	if err != nil {
		t.Fatal(err)
	}
	sets := [][]harness.Job{tinyJobs(8, 11), tinyJobs(8, 22)}
	res := experiment.Run(sets[0][0].Spec, sets[0][0].Load)

	var writers, reader sync.WaitGroup
	for _, jobs := range sets {
		writers.Add(1)
		go func(jobs []harness.Job) {
			defer writers.Done()
			for _, j := range jobs {
				if err := db.Put(j, j.Hash(), res); err != nil {
					t.Errorf("Put: %v", err)
				}
			}
		}(jobs)
	}
	stop := make(chan struct{})
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, jobs := range sets {
				for _, j := range jobs {
					if r, ok := db.Get(j.Hash()); ok && !reflect.DeepEqual(r, res) {
						t.Error("reader observed a torn result")
						return
					}
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
	db.Close()

	db2, err := OpenDB(dir, DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s := db2.Stats()
	if s.Healed != 0 {
		t.Fatalf("reopen healed %d lines: concurrent puts tore records", s.Healed)
	}
	if want := len(sets[0]) + len(sets[1]); s.Entries != want {
		t.Fatalf("entries = %d, want %d", s.Entries, want)
	}
	for _, jobs := range sets {
		for _, j := range jobs {
			if _, ok := db2.Get(j.Hash()); !ok {
				t.Fatalf("hash %s lost", j.Hash())
			}
		}
	}
}

// TestDBClosedPut: a Put after Close must error, not silently recreate a
// segment.
func TestDBClosedPut(t *testing.T) {
	db, err := OpenDB(t.TempDir(), DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	j := tinyJobs(1, 3)[0]
	if err := db.Put(j, j.Hash(), experiment.Result{}); err == nil {
		t.Fatal("Put after Close succeeded")
	}
}

// TestDBSegmentOrder: segment files sort lexicographically in creation order,
// which replay's last-write-wins depends on.
func TestDBSegmentOrder(t *testing.T) {
	names := []string{segmentName(2), segmentName(10), segmentName(1)}
	sort.Strings(names)
	want := []string{segmentName(1), segmentName(2), segmentName(10)}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("segment names sort as %v, want %v", names, want)
	}
}
