package service

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"frfc/internal/experiment"
	"frfc/internal/harness"
)

// waitDone blocks until the campaign finishes or the test times out.
func waitDone(t *testing.T, c *Campaign) {
	t.Helper()
	select {
	case <-c.Finished():
	case <-time.After(60 * time.Second):
		t.Fatalf("campaign %s did not finish: %+v", c.ID(), c.view(time.Now()))
	}
}

// resultsBytes renders a finished campaign's result stream the way the HTTP
// handler does: canonical store lines in job order.
func resultsBytes(t *testing.T, c *Campaign) []byte {
	t.Helper()
	var b bytes.Buffer
	for _, jr := range c.Results() {
		if jr.Hash == "" || jr.Err != "" || jr.Skipped {
			continue
		}
		line, err := harness.MarshalEntry(jr.Job, jr.Hash, jr.Result)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(append(line, '\n'))
	}
	return b.Bytes()
}

// directStore runs the jobs one-shot through the harness with a single worker
// and a plain JSONL store, returning the store's bytes — the reference every
// service stream must match.
func directStore(t *testing.T, jobs []harness.Job) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "direct.jsonl")
	st, err := harness.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := harness.RunJobs(context.Background(), jobs, harness.Options{Workers: 1, Store: st}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// gridJobs expands specs over the same from/to/step accumulation loop
// cmd/sweep runs, independently of SweepRequest's expansion.
func gridJobs(specs []experiment.Spec, from, to, step float64) []harness.Job {
	var loads []float64
	for l := from; l <= to+1e-9; l += step {
		loads = append(loads, l)
	}
	var jobs []harness.Job
	for _, s := range specs {
		for _, l := range loads {
			jobs = append(jobs, harness.Job{Spec: s, Load: l})
		}
	}
	return jobs
}

// newTestService opens a DB in a temp dir and starts a service over it.
func newTestService(t *testing.T, workers int) (*Service, *DB) {
	t.Helper()
	db, err := OpenDB(filepath.Join(t.TempDir(), "db"), DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, Options{Workers: workers})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Close(ctx) //nolint:errcheck // best-effort teardown
		db.Close()
	})
	return s, db
}

// TestConcurrentCampaignsByteIdentical is the tentpole guarantee: two
// campaigns multiplexed concurrently over a shared pool stream results
// byte-identical to serial one-shot harness runs of the same grids, and the
// small campaign finishes while the large one still has queued work.
func TestConcurrentCampaignsByteIdentical(t *testing.T) {
	// Reference runs: serial, single worker, plain store.
	bigSpec := experiment.FR6(experiment.FastControl, 5).Scaled(150, 300)
	smallSpec := experiment.VC8(experiment.FastControl, 5).Scaled(150, 300)
	wantBig := directStore(t, gridJobs([]experiment.Spec{bigSpec}, 0.05, 0.6, 0.05))
	wantSmall := directStore(t, gridJobs([]experiment.Spec{smallSpec}, 0.2, 0.3, 0.1))

	s, _ := newTestService(t, 2)
	big, err := s.Submit(SweepRequest{
		Configs: []string{"FR6"}, From: 0.05, To: 0.6, Step: 0.05,
		Sample: 150, Warmup: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	small, err := s.Submit(SweepRequest{
		Configs: []string{"VC8"}, From: 0.2, To: 0.3, Step: 0.1,
		Sample: 150, Warmup: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if big.view(time.Now()).Jobs != 12 || small.view(time.Now()).Jobs != 2 {
		t.Fatalf("grid expansion wrong: big=%d small=%d", big.view(time.Now()).Jobs, small.view(time.Now()).Jobs)
	}

	waitDone(t, small)
	// Fair scheduling: the 2-job probe must drain while the 12-job sweep
	// still has work outstanding — a FIFO over one queue would starve it.
	if v := big.view(time.Now()); v.Done >= v.Jobs {
		t.Fatalf("small campaign finished only after the large one drained: %+v", v)
	}
	waitDone(t, big)

	if got := resultsBytes(t, big); !bytes.Equal(got, wantBig) {
		t.Fatalf("big campaign not byte-identical to serial run:\ngot:\n%s\nwant:\n%s", got, wantBig)
	}
	if got := resultsBytes(t, small); !bytes.Equal(got, wantSmall) {
		t.Fatalf("small campaign not byte-identical to serial run:\ngot:\n%s\nwant:\n%s", got, wantSmall)
	}
	if v := big.view(time.Now()); v.State != StateDone || v.Simulated != 12 || v.Failed != 0 {
		t.Fatalf("big campaign summary wrong: %+v", v)
	}
}

// TestResubmitDedupsInstantly: an identical campaign resolves entirely from
// the database — zero executions — and streams identical bytes.
func TestResubmitDedupsInstantly(t *testing.T) {
	s, db := newTestService(t, 2)
	req := SweepRequest{Configs: []string{"FR6"}, Loads: []float64{0.2, 0.3}, Sample: 150, Warmup: 300}
	first, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, first)

	second, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, second)
	v := second.view(time.Now())
	if v.Simulated != 0 || v.Cached != 2 {
		t.Fatalf("resubmission executed jobs: %+v", v)
	}
	if !bytes.Equal(resultsBytes(t, first), resultsBytes(t, second)) {
		t.Fatal("dedup-served results differ from originals")
	}
	if st := db.Stats(); st.Hits < 2 {
		t.Fatalf("dedup ledger hits = %d, want >= 2", st.Hits)
	}
}

// TestRestartResumesFromDB: results persisted by one service instance are
// served as dedup hits by a fresh instance over the same directory — the
// restart/recovery story, with zero re-executed jobs.
func TestRestartResumesFromDB(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := OpenDB(dir, DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, Options{Workers: 2})
	subset := SweepRequest{Configs: []string{"FR6"}, Loads: []float64{0.2, 0.3}, Sample: 150, Warmup: 300}
	c, err := s.Submit(subset)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Restart over the same directory; the superset re-runs nothing it has.
	db2, err := OpenDB(dir, DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(db2, Options{Workers: 2})
	defer func() {
		s2.Close(ctx) //nolint:errcheck // best-effort teardown
		db2.Close()
	}()
	superset := SweepRequest{Configs: []string{"FR6"}, Loads: []float64{0.2, 0.3, 0.4, 0.5}, Sample: 150, Warmup: 300}
	c2, err := s2.Submit(superset)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c2)
	v := c2.view(time.Now())
	if v.Cached != 2 || v.Simulated != 2 || v.Failed != 0 {
		t.Fatalf("restart resume wrong: %+v, want 2 cached + 2 simulated", v)
	}
}

// TestCancelKeepsCompletedResults: cancelling mid-run retires queued jobs,
// cuts in-flight ones cooperatively, closes Finished, and keeps what
// completed. The service keeps serving other campaigns afterwards.
func TestCancelKeepsCompletedResults(t *testing.T) {
	s, _ := newTestService(t, 1)
	c, err := s.Submit(SweepRequest{
		Configs: []string{"FR6"}, From: 0.05, To: 0.8, Step: 0.05,
		Sample: 150, Warmup: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let at least one job land before cancelling.
	deadline := time.Now().Add(30 * time.Second)
	for c.view(time.Now()).Done == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := s.Cancel(c.ID()); !ok {
		t.Fatal("Cancel did not find the campaign")
	}
	waitDone(t, c)
	v := c.view(time.Now())
	if v.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", v.State)
	}
	if v.Done != v.Jobs {
		t.Fatalf("cancelled campaign not fully recorded: %+v", v)
	}
	if v.Cancelled == 0 {
		t.Fatalf("no jobs recorded as cancelled: %+v", v)
	}
	if got := resultsBytes(t, c); v.Simulated > 0 && len(got) == 0 {
		t.Fatal("completed results discarded by cancel")
	}
	// Cancelling again is a no-op, not an error.
	if _, ok := s.Cancel(c.ID()); !ok {
		t.Fatal("second Cancel errored")
	}

	// The pool is healthy: a follow-up campaign completes.
	after, err := s.Submit(SweepRequest{Configs: []string{"VC8"}, Loads: []float64{0.2}, Sample: 150, Warmup: 300})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, after)
	if v := after.view(time.Now()); v.State != StateDone || v.Simulated != 1 {
		t.Fatalf("post-cancel campaign wrong: %+v", v)
	}
}

// TestHTTPResultsStream drives the REST surface end to end in-process:
// submit over HTTP, wait via ?wait=1, and check the streamed bytes match the
// campaign's canonical lines.
func TestHTTPResultsStream(t *testing.T) {
	s, _ := newTestService(t, 2)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/campaigns", "application/json",
		bytes.NewReader([]byte(`{"configs":["FR6"],"loads":[0.2,0.3],"sample":150,"warmup":300}`)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST = %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/campaigns/c1/results?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	c, ok := s.Get("c1")
	if !ok {
		t.Fatal("campaign c1 missing")
	}
	if want := resultsBytes(t, c); !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("HTTP stream differs from canonical lines:\ngot:\n%s\nwant:\n%s", got.String(), want)
	}
}

// TestSchedulerWeightedShares: smooth WRR gives a weight-3 campaign three of
// every four picks against a weight-1 campaign, interleaved (not bursted).
func TestSchedulerWeightedShares(t *testing.T) {
	mk := func(id string, jobs, weight int) *Campaign {
		c := &Campaign{
			id: id, finished: make(chan struct{}), state: StateQueued,
			results: make([]harness.JobResult, jobs), done: make([]bool, jobs),
			queue: make([]int, jobs), weight: weight,
		}
		for i := range c.queue {
			c.queue[i] = i
		}
		return c
	}
	sched := newScheduler()
	heavy := mk("heavy", 9, 3)
	light := mk("light", 3, 1)
	sched.add(heavy)
	sched.add(light)

	var picks []string
	for i := 0; i < 12; i++ {
		c, _, ok := sched.pick()
		if !ok {
			t.Fatalf("pick %d found nothing", i)
		}
		picks = append(picks, c.id)
		// Return the slot so in-flight caps never interfere.
		c.mu.Lock()
		c.inflight--
		c.mu.Unlock()
	}
	counts := map[string]int{}
	for _, id := range picks {
		counts[id]++
	}
	if counts["heavy"] != 9 || counts["light"] != 3 {
		t.Fatalf("shares = %v over %v, want heavy 9 / light 3", counts, picks)
	}
	// Smoothness: the light campaign is served within every weight window,
	// never pushed to the tail.
	for w := 0; w < 3; w++ {
		window := picks[w*4 : w*4+4]
		n := 0
		for _, id := range window {
			if id == "light" {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("window %d = %v, want exactly one light pick per 4", w, window)
		}
	}
}

// TestSchedulerInFlightCap: a campaign at its maxInFlight cap is ineligible
// until a slot frees.
func TestSchedulerInFlightCap(t *testing.T) {
	c := &Campaign{
		id: "capped", finished: make(chan struct{}), state: StateQueued,
		results: make([]harness.JobResult, 4), done: make([]bool, 4),
		queue: []int{0, 1, 2, 3}, weight: 1, maxInflight: 2,
	}
	sched := newScheduler()
	sched.add(c)
	for i := 0; i < 2; i++ {
		if _, _, ok := sched.pick(); !ok {
			t.Fatalf("pick %d blocked below the cap", i)
		}
	}
	if _, _, ok := sched.pick(); ok {
		t.Fatal("pick succeeded above the in-flight cap")
	}
	sched.release(c)
	if _, _, ok := sched.pick(); !ok {
		t.Fatal("pick blocked after a slot freed")
	}
}

// TestSubmitValidation: malformed requests never reach the scheduler.
func TestSubmitValidation(t *testing.T) {
	s, _ := newTestService(t, 1)
	for _, req := range []SweepRequest{
		{},
		{Configs: []string{"NOPE"}, Loads: []float64{0.2}},
		{Configs: []string{"FR6"}},
		{Configs: []string{"FR6"}, Loads: []float64{-1}},
		{Configs: []string{"FR6"}, Loads: []float64{0.2}, Sample: 100},
		{Configs: []string{"FR6"}, Loads: []float64{0.2}, Routing: "zigzag"},
		{Configs: []string{"FR6"}, Loads: []float64{0.2}, Weight: -1},
	} {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("Submit(%+v) accepted", req)
		}
	}
	if len(s.List()) != 0 {
		t.Fatalf("rejected submissions registered campaigns: %v", s.List())
	}
}

// TestWaterfallCampaign: a waterfall:true request decomposes every stored
// result into the seven lifecycle stages (summing exactly to the total),
// streams bytes identical to a one-shot harness run with the same option,
// and dedups against a provenance-off campaign of the same grid — the job
// hashes are observation-independent.
func TestWaterfallCampaign(t *testing.T) {
	spec := experiment.FR6(experiment.FastControl, 5).Scaled(150, 300)
	jobs := gridJobs([]experiment.Spec{spec}, 0.2, 0.3, 0.1)
	path := filepath.Join(t.TempDir(), "direct.jsonl")
	st, err := harness.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := harness.RunJobs(context.Background(), jobs, harness.Options{
		Workers: 1, Store: st, Waterfall: true,
	}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	s, db := newTestService(t, 2)
	c, err := s.Submit(SweepRequest{
		Configs: []string{"FR6"}, From: 0.2, To: 0.3, Step: 0.1,
		Sample: 150, Warmup: 300, Waterfall: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c)
	for _, jr := range c.Results() {
		r := jr.Result
		if r.WaterfallPackets == 0 || r.WaterfallTotal == 0 {
			t.Fatalf("job %v undecomposed: %+v", jr.Job.Load, r)
		}
		sum := r.WaterfallQueue + r.WaterfallReserve + r.WaterfallArb +
			r.WaterfallStall + r.WaterfallSched + r.WaterfallLink + r.WaterfallDrain
		if sum != r.WaterfallTotal {
			t.Fatalf("job %v stage sum %d != total %d", jr.Job.Load, sum, r.WaterfallTotal)
		}
	}
	if got := resultsBytes(t, c); !bytes.Equal(got, want) {
		t.Fatalf("waterfall campaign not byte-identical to one-shot run:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The same grid with provenance off resolves entirely from the DB: the
	// decomposition rides on stored results, never on the job identity.
	off, err := s.Submit(SweepRequest{
		Configs: []string{"FR6"}, From: 0.2, To: 0.3, Step: 0.1,
		Sample: 150, Warmup: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, off)
	if v := off.view(time.Now()); v.Simulated != 0 || v.Cached != 2 {
		t.Fatalf("provenance-off resubmission re-executed jobs: %+v", v)
	}
	if st := db.Stats(); st.Hits < 2 {
		t.Fatalf("dedup ledger hits = %d, want >= 2", st.Hits)
	}
}
