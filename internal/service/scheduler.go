package service

import "sync"

// scheduler multiplexes the jobs of N concurrent campaigns over one shared
// worker pool with smooth weighted round-robin: on every pick each eligible
// campaign's credit grows by its weight and the highest credit wins (ties to
// the earliest submission), so a campaign with weight w receives w/Σw of the
// dispatch slots while it has work — a 10,000-job sweep cannot starve a
// 6-job probe, because the probe keeps winning its share of picks and
// drains first.
//
// Fairness is purely about *when* jobs run. Every job owns its own network
// and RNG, so dispatch order can never change any job's result — the
// harness's bit-identical guarantee holds under any interleaving.
type scheduler struct {
	mu        sync.Mutex
	cond      *sync.Cond
	campaigns []*Campaign // submission order; drained campaigns removed
	closed    bool
}

func newScheduler() *scheduler {
	s := &scheduler{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// add registers a campaign's queue with the scheduler and wakes workers.
func (s *scheduler) add(c *Campaign) {
	s.mu.Lock()
	s.campaigns = append(s.campaigns, c)
	s.mu.Unlock()
	s.cond.Broadcast()
}

// next blocks until a job is available (returning the campaign and the job's
// index, with the campaign's in-flight count already incremented) or the
// scheduler is closed (ok=false). Eligibility: the campaign has queued jobs
// and is under its in-flight cap.
func (s *scheduler) next() (c *Campaign, idx int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil, 0, false
		}
		if c, idx, ok := s.pick(); ok {
			return c, idx, true
		}
		s.cond.Wait()
	}
}

// pick runs one round of smooth WRR over the eligible campaigns. Caller
// holds s.mu.
func (s *scheduler) pick() (*Campaign, int, bool) {
	var eligible []*Campaign
	total := 0
	for _, c := range s.campaigns {
		c.mu.Lock()
		ok := len(c.queue) > 0 && (c.maxInflight == 0 || c.inflight < c.maxInflight)
		c.mu.Unlock()
		if ok {
			eligible = append(eligible, c)
			total += c.weight
		}
	}
	if len(eligible) == 0 {
		return nil, 0, false
	}
	var best *Campaign
	for _, c := range eligible {
		c.wrr += c.weight
		if best == nil || c.wrr > best.wrr {
			best = c
		}
	}
	best.wrr -= total

	best.mu.Lock()
	idx := best.queue[0]
	best.queue = best.queue[1:]
	best.inflight++
	if best.state == StateQueued {
		best.state = StateRunning
	}
	best.mu.Unlock()
	return best, idx, true
}

// release returns a worker's slot after it records a job outcome, retiring
// the campaign from the rotation once it has neither queued nor in-flight
// work, and wakes workers that may now be under a freed in-flight cap.
func (s *scheduler) release(c *Campaign) {
	s.mu.Lock()
	c.mu.Lock()
	c.inflight--
	drained := len(c.queue) == 0 && c.inflight == 0
	c.mu.Unlock()
	if drained {
		for i, cc := range s.campaigns {
			if cc == c {
				s.campaigns = append(s.campaigns[:i], s.campaigns[i+1:]...)
				break
			}
		}
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// drain empties a campaign's queue (for cancellation), returning the
// undispatched job indices. In-flight jobs are unaffected; their contexts
// carry the cancel.
func (s *scheduler) drain(c *Campaign) []int {
	s.mu.Lock()
	c.mu.Lock()
	idxs := c.queue
	c.queue = nil
	stillListed := c.inflight > 0
	c.mu.Unlock()
	if !stillListed {
		for i, cc := range s.campaigns {
			if cc == c {
				s.campaigns = append(s.campaigns[:i], s.campaigns[i+1:]...)
				break
			}
		}
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	return idxs
}

// close wakes every worker to exit after its current job.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}
