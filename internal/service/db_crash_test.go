package service

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"frfc/internal/experiment"
	"frfc/internal/harness"
	"frfc/internal/iofault"
)

// faultDB opens a database over an injector armed with the given plan. The
// injector's real-SIGKILL path is stubbed so KindKill behaves as KindCrash.
func faultDB(t *testing.T, dir string, o DBOptions, plan ...iofault.Fault) (*DB, *iofault.Injector) {
	t.Helper()
	in, err := iofault.New(plan...)
	if err != nil {
		t.Fatalf("iofault.New: %v", err)
	}
	o.FS = in
	db, err := OpenDB(dir, o)
	if err != nil {
		t.Fatalf("OpenDB: %v", err)
	}
	return db, in
}

// reopenClean reopens the directory over the real filesystem and returns the
// database plus its stats — the post-mortem view after a crash.
func reopenClean(t *testing.T, dir string) (*DB, DBStats) {
	t.Helper()
	db, err := OpenDB(dir, DBOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db, db.Stats()
}

// TestDBPutSurvivesWriteEIO: an EIO on one Put's data write fails that Put
// only — the database keeps serving, rotates off the poisoned segment, and a
// clean reopen sees exactly the successful Puts, nothing healed or
// quarantined.
func TestDBPutSurvivesWriteEIO(t *testing.T) {
	dir := t.TempDir()
	// Put p writes at indices 2p (line) and 2p+1 (checksum): write @2 is
	// the second Put's data line.
	db, _ := faultDB(t, dir, DBOptions{}, iofault.Fault{Op: iofault.OpWrite, Index: 2, Kind: iofault.KindErr})
	jobs := tinyJobs(3, 40)
	res := experiment.Run(jobs[0].Spec, jobs[0].Load)

	if err := db.Put(jobs[0], jobs[0].Hash(), res); err != nil {
		t.Fatalf("put 0: %v", err)
	}
	if err := db.Put(jobs[1], jobs[1].Hash(), res); !errors.Is(err, syscall.EIO) {
		t.Fatalf("put 1: got %v, want EIO", err)
	}
	if err := db.Put(jobs[2], jobs[2].Hash(), res); err != nil {
		t.Fatalf("put 2 after poisoned rotation: %v", err)
	}
	s := db.Stats()
	if s.PutErrors != 1 || s.Entries != 2 || s.Segments != 2 {
		t.Fatalf("stats after EIO: %+v, want 1 putError, 2 entries, 2 segments", s)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, st := reopenClean(t, dir)
	if st.Entries != 2 || st.Healed != 0 || st.Quarantined != 0 {
		t.Fatalf("reopen stats: %+v, want 2 entries clean", st)
	}
}

// TestDBPutSurvivesSyncENOSPC: a failed fsync is treated as data loss for
// the unsynced batch (fsyncgate semantics) — that Put fails, the segment is
// abandoned, and later Puts land in a fresh one.
func TestDBPutSurvivesSyncENOSPC(t *testing.T) {
	dir := t.TempDir()
	// Put p syncs at indices 2p (data) and 2p+1 (checksum) under
	// FsyncAlways: sync @2 is the second Put's data fsync.
	db, _ := faultDB(t, dir, DBOptions{},
		iofault.Fault{Op: iofault.OpSync, Index: 2, Kind: iofault.KindErr, Err: syscall.ENOSPC})
	jobs := tinyJobs(3, 41)
	res := experiment.Run(jobs[0].Spec, jobs[0].Load)

	if err := db.Put(jobs[0], jobs[0].Hash(), res); err != nil {
		t.Fatalf("put 0: %v", err)
	}
	if err := db.Put(jobs[1], jobs[1].Hash(), res); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("put 1: got %v, want ENOSPC", err)
	}
	if err := db.Put(jobs[2], jobs[2].Hash(), res); err != nil {
		t.Fatalf("put 2: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	db2, st := reopenClean(t, dir)
	if st.Entries != 2 || st.Quarantined != 0 {
		t.Fatalf("reopen stats: %+v, want 2 entries, 0 quarantined", st)
	}
	for _, i := range []int{0, 2} {
		if _, ok := db2.Get(jobs[i].Hash()); !ok {
			t.Fatalf("job %d lost", i)
		}
	}
	if _, ok := db2.Get(jobs[1].Hash()); ok {
		t.Fatal("failed put resolved after reopen")
	}
}

// TestDBShortWriteHealsAsTail: a short write leaves a partial line; the
// poisoned segment is abandoned, and on reopen the partial bytes are healed
// as a torn tail — uncovered by any checksum, so never quarantined.
func TestDBShortWriteHealsAsTail(t *testing.T) {
	dir := t.TempDir()
	db, _ := faultDB(t, dir, DBOptions{},
		iofault.Fault{Op: iofault.OpWrite, Index: 2, Kind: iofault.KindShort, Bytes: 9})
	jobs := tinyJobs(3, 42)
	res := experiment.Run(jobs[0].Spec, jobs[0].Load)
	if err := db.Put(jobs[0], jobs[0].Hash(), res); err != nil {
		t.Fatalf("put 0: %v", err)
	}
	if err := db.Put(jobs[1], jobs[1].Hash(), res); err == nil {
		t.Fatal("short write Put succeeded")
	}
	if err := db.Put(jobs[2], jobs[2].Hash(), res); err != nil {
		t.Fatalf("put 2: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, st := reopenClean(t, dir)
	if st.Entries != 2 || st.Healed != 1 || st.Quarantined != 0 {
		t.Fatalf("reopen stats: %+v, want 2 entries / 1 healed / 0 quarantined", st)
	}
}

// TestDBQuarantinesFlippedByte: mid-segment bit rot — a byte flipped in a
// line whose checksum was recorded — is quarantined on reopen: counted,
// preserved in the .quarantine sidecar, never served, never fatal. And the
// verdict is stable: a second reopen reaches the same count without
// duplicating the quarantine file.
func TestDBQuarantinesFlippedByte(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	jobs := tinyJobs(3, 43)
	res := experiment.Run(jobs[0].Spec, jobs[0].Load)
	for _, j := range jobs {
		if err := db.Put(j, j.Hash(), res); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	// Flip one byte in the middle line of the only segment.
	seg := filepath.Join(dir, segmentName(0))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("expected 3 lines, got %d", len(lines)-1)
	}
	mid := len(lines[0]) + len(lines[1])/2
	corrupted := append([]byte(nil), raw...)
	corrupted[mid] ^= 0x40
	if err := os.WriteFile(seg, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, st := reopenClean(t, dir)
	if st.Entries != 2 || st.Quarantined != 1 || st.Healed != 0 {
		t.Fatalf("reopen stats: %+v, want 2 entries / 1 quarantined / 0 healed", st)
	}
	if _, ok := db2.Get(jobs[1].Hash()); ok {
		t.Fatal("corrupt line served from the index")
	}
	q, err := os.ReadFile(filepath.Join(dir, quarantineName(0)))
	if err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	if !bytes.Equal(bytes.TrimSuffix(q, []byte("\n")), bytes.TrimSuffix(lines[1], []byte("\n"))[:len(lines[1])-1]) &&
		!bytes.Contains(q, []byte(jobs[1].Hash())) {
		t.Fatalf("quarantine file does not hold the corrupt line: %q", q)
	}

	// Third open: same verdict, no quarantine duplication.
	db2.Close()
	_, st3 := reopenClean(t, dir)
	if st3.Quarantined != 1 {
		t.Fatalf("second reopen quarantined %d, want 1", st3.Quarantined)
	}
	q2, err := os.ReadFile(filepath.Join(dir, quarantineName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q, q2) {
		t.Fatal("quarantine file grew across reopens")
	}
}

// TestDBCrashSweepFsyncAlways sweeps a simulated crash across every sync
// boundary of a 4-Put workload, before and after each, and asserts the
// survivor count exactly: under FsyncAlways, Put p's line is durable once
// its data fsync (sync index 2p) has completed, whether or not the checksum
// fsync (2p+1) made it. Nothing is ever quarantined by a crash, and
// re-putting the lost jobs after reopen restores the full set — the
// at-least-once recovery contract the service's resubmission path relies on.
func TestDBCrashSweepFsyncAlways(t *testing.T) {
	jobs := tinyJobs(4, 44)
	res := experiment.Run(jobs[0].Spec, jobs[0].Load)
	for k := int64(0); k < int64(2*len(jobs)); k++ {
		for _, when := range []iofault.When{iofault.Before, iofault.After} {
			name := fmt.Sprintf("crash-%s-sync-%d", when, k)
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				db, in := faultDB(t, dir, DBOptions{},
					iofault.Fault{Op: iofault.OpSync, Index: k, Kind: iofault.KindCrash, When: when})
				var firstErr error
				for _, j := range jobs {
					if err := db.Put(j, j.Hash(), res); err != nil {
						firstErr = err
						break
					}
				}
				if !errors.Is(firstErr, iofault.ErrCrashed) {
					t.Fatalf("workload did not crash: %v", firstErr)
				}
				if !in.Crashed() {
					t.Fatal("injector not crashed")
				}

				// Durable syncs: k of them (Before) or k+1 (After); Put p
				// survives iff sync 2p is among them.
				durableSyncs := k
				if when == iofault.After {
					durableSyncs = k + 1
				}
				want := int((durableSyncs + 1) / 2)

				db2, st := reopenClean(t, dir)
				if st.Entries != want {
					t.Fatalf("survivors = %d, want %d (stats %+v)", st.Entries, want, st)
				}
				if st.Quarantined != 0 {
					t.Fatalf("crash quarantined %d lines; crashes must only tear tails", st.Quarantined)
				}
				for p := 0; p < want; p++ {
					if _, ok := db2.Get(jobs[p].Hash()); !ok {
						t.Fatalf("synced put %d lost", p)
					}
				}
				// Resubmission: re-put everything; only the lost suffix is new.
				for _, j := range jobs {
					if err := db2.Put(j, j.Hash(), res); err != nil {
						t.Fatalf("re-put: %v", err)
					}
				}
				if db2.Len() != len(jobs) {
					t.Fatalf("after re-put len = %d, want %d", db2.Len(), len(jobs))
				}
			})
		}
	}
}

// TestDBFsyncBatchBoundedLoss: with BatchPuts=3, a crash at the close-time
// sync loses exactly the unsynced tail — at most BatchPuts-1 results —
// while the synced batch survives.
func TestDBFsyncBatchBoundedLoss(t *testing.T) {
	dir := t.TempDir()
	db, _ := faultDB(t, dir,
		DBOptions{Fsync: FsyncPolicy{Mode: FsyncBatch, BatchPuts: 3, BatchInterval: time.Hour}},
		// Syncs 0,1 fire at the third Put (batch full); the next sync pair
		// is Close's — crash there, stranding Puts 3 and 4.
		iofault.Fault{Op: iofault.OpSync, Index: 2, Kind: iofault.KindCrash, When: iofault.Before})
	jobs := tinyJobs(5, 45)
	res := experiment.Run(jobs[0].Spec, jobs[0].Load)
	for i, j := range jobs {
		if err := db.Put(j, j.Hash(), res); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := db.Close(); !errors.Is(err, iofault.ErrCrashed) {
		t.Fatalf("close: got %v, want crash", err)
	}
	_, st := reopenClean(t, dir)
	if st.Entries != 3 {
		t.Fatalf("survivors = %d, want the synced batch of 3 (stats %+v)", st.Entries, st)
	}
}

// TestDBFsyncOff: without fsync a crash loses everything since the last
// rotation — and a clean Close still flushes, so orderly shutdown is safe.
func TestDBFsyncOff(t *testing.T) {
	jobs := tinyJobs(3, 46)
	res := experiment.Run(jobs[0].Spec, jobs[0].Load)

	crash := t.TempDir()
	db, _ := faultDB(t, crash, DBOptions{Fsync: FsyncPolicy{Mode: FsyncOff}},
		iofault.Fault{Op: iofault.OpSync, Index: 0, Kind: iofault.KindCrash, When: iofault.Before})
	for _, j := range jobs {
		if err := db.Put(j, j.Hash(), res); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := db.Close(); !errors.Is(err, iofault.ErrCrashed) {
		t.Fatalf("close: got %v, want crash", err)
	}
	if _, st := reopenClean(t, crash); st.Entries != 0 {
		t.Fatalf("fsync=off crash kept %d entries, want 0", st.Entries)
	}

	clean := t.TempDir()
	db2, _ := faultDB(t, clean, DBOptions{Fsync: FsyncPolicy{Mode: FsyncOff}})
	for _, j := range jobs {
		if err := db2.Put(j, j.Hash(), res); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := db2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, st := reopenClean(t, clean); st.Entries != len(jobs) {
		t.Fatalf("clean close kept %d entries, want %d", st.Entries, len(jobs))
	}
}

// TestDBRotationCloseErrorSurfaced: satellite fix — a failed close during
// segment rotation is a Put error, not a silent shrug, because it can drop
// buffered state right as the segment is abandoned.
func TestDBRotationCloseErrorSurfaced(t *testing.T) {
	dir := t.TempDir()
	// Tiny limit: the second Put rotates. Close @0 is the data segment's
	// close inside that rotation.
	db, _ := faultDB(t, dir, DBOptions{SegmentBytes: 16},
		iofault.Fault{Op: iofault.OpClose, Index: 0, Kind: iofault.KindErr})
	jobs := tinyJobs(3, 47)
	res := experiment.Run(jobs[0].Spec, jobs[0].Load)
	if err := db.Put(jobs[0], jobs[0].Hash(), res); err != nil {
		t.Fatalf("put 0: %v", err)
	}
	err := db.Put(jobs[1], jobs[1].Hash(), res)
	if !errors.Is(err, syscall.EIO) || !strings.Contains(err.Error(), "rotate") {
		t.Fatalf("rotation close error not surfaced: %v", err)
	}
	if s := db.Stats(); s.PutErrors != 1 {
		t.Fatalf("putErrors = %d, want 1", s.PutErrors)
	}
	// The database keeps serving: the next Put opens the post-rotation
	// segment.
	if err := db.Put(jobs[2], jobs[2].Hash(), res); err != nil {
		t.Fatalf("put 2: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, st := reopenClean(t, dir)
	if st.Entries != 2 {
		t.Fatalf("reopen entries = %d, want 2", st.Entries)
	}
}

// TestDBCompact: compaction merges every segment (and the duplicate lines a
// re-recorded hash leaves behind) into one highest-numbered segment with a
// full sidecar, byte-identical under Snapshot, and a reopen of the compacted
// directory resolves everything with nothing healed or quarantined.
func TestDBCompact(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, DBOptions{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	jobs := tinyJobs(6, 48)
	res := experiment.Run(jobs[0].Spec, jobs[0].Load)
	for _, j := range jobs {
		if err := db.Put(j, j.Hash(), res); err != nil {
			t.Fatal(err)
		}
	}
	// Re-record one hash: a superseded duplicate for compaction to shed.
	if err := db.Put(jobs[0], jobs[0].Hash(), res); err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	if err := db.Snapshot(&before); err != nil {
		t.Fatal(err)
	}
	preSegs := db.Stats().Segments
	if preSegs < 3 {
		t.Fatalf("want rotation before compacting, got %d segments", preSegs)
	}
	if err := db.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if s := db.Stats(); s.Segments != 1 || s.Entries != len(jobs) {
		t.Fatalf("post-compact stats %+v, want 1 segment / %d entries", s, len(jobs))
	}
	var after bytes.Buffer
	if err := db.Snapshot(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("snapshot changed across compaction")
	}
	// Compaction is live: the database still accepts Puts afterwards.
	extra := harness.Job{Spec: tinySpec(), Load: 0.5, Seed: 48}
	if err := db.Put(extra, extra.Hash(), res); err != nil {
		t.Fatalf("post-compact put: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if len(segs) != 2 { // the compacted segment + the post-compact one
		t.Fatalf("segments on disk = %v, want compacted + post-compact", segs)
	}
	db2, st := reopenClean(t, dir)
	if st.Entries != len(jobs)+1 || st.Healed != 0 || st.Quarantined != 0 {
		t.Fatalf("reopen stats %+v, want %d clean entries", st, len(jobs)+1)
	}
	for _, j := range jobs {
		if _, ok := db2.Get(j.Hash()); !ok {
			t.Fatalf("hash %s lost across compaction", j.Hash())
		}
	}
}

// TestDBCompactCrashSafe: a crash at either rename boundary of compaction
// leaves a directory that reopens with the complete index — before the data
// rename the old segments are authoritative; between the renames the merged
// segment wins by sequence number and replays by decode.
func TestDBCompactCrashSafe(t *testing.T) {
	for _, tc := range []struct {
		name string
		when iofault.When
	}{
		{"before-data-rename", iofault.Before},
		{"between-renames", iofault.After},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			seedDB, err := OpenDB(dir, DBOptions{SegmentBytes: 512})
			if err != nil {
				t.Fatal(err)
			}
			jobs := tinyJobs(6, 49)
			res := experiment.Run(jobs[0].Spec, jobs[0].Load)
			for _, j := range jobs {
				if err := seedDB.Put(j, j.Hash(), res); err != nil {
					t.Fatal(err)
				}
			}
			seedDB.Close()

			db, _ := faultDB(t, dir, DBOptions{SegmentBytes: 512},
				iofault.Fault{Op: iofault.OpRename, Index: 0, Kind: iofault.KindCrash, When: tc.when})
			if err := db.Compact(); !errors.Is(err, iofault.ErrCrashed) {
				t.Fatalf("compact: got %v, want crash", err)
			}

			db2, st := reopenClean(t, dir)
			if st.Entries != len(jobs) || st.Quarantined != 0 {
				t.Fatalf("reopen stats %+v, want %d entries", st, len(jobs))
			}
			for _, j := range jobs {
				if _, ok := db2.Get(j.Hash()); !ok {
					t.Fatalf("hash %s lost to a compaction crash", j.Hash())
				}
			}
		})
	}
}

// TestDBDoubleClose: the second Close is a no-op, not a second error — and
// Compact after Close refuses rather than resurrecting files.
func TestDBDoubleClose(t *testing.T) {
	db, err := OpenDB(t.TempDir(), DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j := tinyJobs(1, 50)[0]
	if err := db.Put(j, j.Hash(), experiment.Result{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := db.Compact(); err == nil {
		t.Fatal("compact after close succeeded")
	}
}
