package service

import (
	"fmt"
	"testing"

	"frfc/internal/experiment"
	"frfc/internal/harness"
)

// BenchmarkDBPutFsyncPolicy measures the cost of one durable Put under each
// fsync policy — the numbers behind the durability-tradeoff table in
// docs/service.md. Run with:
//
//	go test ./internal/service/ -bench BenchmarkDBPutFsyncPolicy -benchtime 2s
func BenchmarkDBPutFsyncPolicy(b *testing.B) {
	res := experiment.Run(tinySpec(), 0.2)
	for _, p := range []struct {
		name string
		pol  FsyncPolicy
	}{
		{"always", FsyncPolicy{Mode: FsyncAlways}},
		{"batch16", FsyncPolicy{Mode: FsyncBatch, BatchPuts: 16}},
		{"off", FsyncPolicy{Mode: FsyncOff}},
	} {
		b.Run(p.name, func(b *testing.B) {
			db, err := OpenDB(b.TempDir(), DBOptions{Fsync: p.pol})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := harness.Job{Spec: tinySpec(), Load: 0.2, Seed: uint64(i)}
				if err := db.Put(j, fmt.Sprintf("bench-%d", i), res); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
