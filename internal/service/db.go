// Package service is the long-running campaign daemon layered on the
// harness: a REST job-submission API, a persistent result database keyed by
// the harness's sha256 job hashes, and a fair scheduler that multiplexes
// concurrent campaigns over one shared worker pool.
//
// The determinism contract of the harness carries through unchanged: every
// job owns its own network and RNG, so scheduling order — which campaign a
// worker serves next — can never affect any job's result, only when it
// lands. A campaign run through the service is bit-identical to the same
// campaign run one-shot through harness.RunJobs.
package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"frfc/internal/experiment"
	"frfc/internal/harness"
)

// DefaultSegmentBytes is the rotation threshold for database segments: once
// the active segment grows past it, the next Put opens a new one. Small
// enough that a damaged segment loses little, large enough that a long
// campaign does not shower the directory with files.
const DefaultSegmentBytes = 4 << 20

// DBOptions tunes OpenDB. The zero value uses DefaultSegmentBytes.
type DBOptions struct {
	// SegmentBytes is the rotation threshold; 0 means DefaultSegmentBytes.
	SegmentBytes int64
}

// DBStats is a point-in-time snapshot of the database's accounting.
type DBStats struct {
	// Entries is the number of distinct job hashes resolvable.
	Entries int `json:"entries"`
	// Segments is how many segment files exist, including the active one.
	Segments int `json:"segments"`
	// Hits and Misses count Get outcomes since open — the dedup ledger.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Healed counts undecodable lines skipped while opening: the footprint
	// of a kill mid-write (at most one per segment) or foreign junk.
	Healed int `json:"healed"`
}

// dbEntry is one cached result: the decoded Result served to the harness and
// the exact line bytes served to results streams and snapshots, so that what
// the service returns is byte-identical to what a one-shot store would hold.
type dbEntry struct {
	spec string
	load float64
	seed uint64
	res  experiment.Result
	line []byte // canonical JSONL line, no trailing newline
}

// DB is the service's persistent result database: append-only JSONL segments
// under one directory plus an in-memory index keyed by the harness job hash.
// It implements harness.ResultStore, so campaigns executed through it dedup
// resubmitted jobs to cached results instantly, and it survives restart the
// same way the one-shot store does — every complete line loads, a truncated
// tail (the footprint of a kill mid-write) is skipped and simply re-run.
//
// Segment lines use the identical schema the harness store writes
// (harness.MarshalEntry), so segments are readable by cmd/report and by the
// store's own tooling.
type DB struct {
	mu       sync.Mutex
	dir      string
	segLimit int64

	f    *os.File // active segment, opened for append
	seq  int      // active segment sequence number
	size int64    // bytes written to the active segment

	entries  map[string]dbEntry
	segments int
	hits     int64
	misses   int64
	healed   int
	closed   bool
}

// segmentName renders the file name of segment n; lexicographic order is
// creation order, which is what OpenDB relies on for last-write-wins replay.
func segmentName(n int) string { return fmt.Sprintf("seg-%06d.jsonl", n) }

// OpenDB opens (creating if absent) the database directory and replays every
// segment in creation order, last write per hash winning — the same resume
// semantics as the one-shot store. Undecodable lines are healed (counted,
// skipped); the highest-numbered segment is reopened for append.
func OpenDB(dir string, o DBOptions) (*DB, error) {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: create db dir: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("service: scan db dir: %w", err)
	}
	sort.Strings(names)
	db := &DB{dir: dir, segLimit: o.SegmentBytes, entries: make(map[string]dbEntry)}
	for _, name := range names {
		if err := db.replaySegment(name); err != nil {
			return nil, err
		}
	}
	db.segments = len(names)
	db.seq = len(names) // next segment to create, unless the last has room
	if n := len(names); n > 0 {
		last := names[n-1]
		if st, err := os.Stat(last); err == nil && st.Size() < o.SegmentBytes {
			f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("service: reopen segment: %w", err)
			}
			db.f = f
			db.seq = n - 1
			db.size = st.Size()
		}
	}
	return db, nil
}

// replaySegment loads one segment's decodable lines into the index. A line
// that fails to decode — or decodes without a hash — is healed, not fatal:
// the recovery story is that a kill mid-write costs at most the jobs in
// flight, never the database.
func (db *DB) replaySegment(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("service: open segment: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e struct {
			Hash string            `json:"hash"`
			Spec string            `json:"spec"`
			Load float64           `json:"load"`
			Seed uint64            `json:"seed"`
			Res  experiment.Result `json:"result"`
		}
		if err := json.Unmarshal(line, &e); err != nil || e.Hash == "" {
			db.healed++
			continue
		}
		db.entries[e.Hash] = dbEntry{
			spec: e.Spec, load: e.Load, seed: e.Seed, res: e.Res,
			line: append([]byte(nil), line...),
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("service: read segment %s: %w", path, err)
	}
	return nil
}

// Get returns the cached result for a job hash, counting the dedup ledger.
func (db *DB) Get(hash string) (experiment.Result, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.entries[hash]
	if ok {
		db.hits++
	} else {
		db.misses++
	}
	return e.res, ok
}

// GetLine returns the stored canonical JSONL line for a job hash.
func (db *DB) GetLine(hash string) ([]byte, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.entries[hash]
	return e.line, ok
}

// Put records a completed job durably: one canonical JSONL line appended to
// the active segment and synced before the index is updated, rotating to a
// fresh segment when the active one is over the limit. Implements
// harness.ResultStore, so it slots straight into harness.Options.Store.
func (db *DB) Put(j harness.Job, hash string, r experiment.Result) error {
	line, err := harness.MarshalEntry(j, hash, r)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("service: put on closed db")
	}
	if db.f != nil && db.size >= db.segLimit {
		db.f.Close()
		db.f = nil
		db.seq++
	}
	if db.f == nil {
		path := filepath.Join(db.dir, segmentName(db.seq))
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("service: create segment: %w", err)
		}
		db.f = f
		db.size = 0
		db.segments++
	}
	if _, err := db.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("service: append result: %w", err)
	}
	if err := db.f.Sync(); err != nil {
		return fmt.Errorf("service: sync segment: %w", err)
	}
	db.size += int64(len(line)) + 1
	spec := j.EffectiveSpec()
	db.entries[hash] = dbEntry{spec: spec.Name, load: j.Load, seed: j.Seed, res: r, line: line}
	return nil
}

// Dir reports the database directory.
func (db *DB) Dir() string { return db.dir }

// Len reports how many distinct job hashes the database resolves.
func (db *DB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.entries)
}

// Stats snapshots the database accounting for /status and /metrics.
func (db *DB) Stats() DBStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return DBStats{
		Entries: len(db.entries), Segments: db.segments,
		Hits: db.hits, Misses: db.misses, Healed: db.healed,
	}
}

// Snapshot writes every entry as canonical JSONL in a stable order (spec,
// load, seed, then hash) — the deterministic input the background reporter
// renders BENCHMARK.md from, byte-identical across regenerations.
func (db *DB) Snapshot(w io.Writer) error {
	db.mu.Lock()
	keys := make([]string, 0, len(db.entries))
	for h := range db.entries {
		keys = append(keys, h)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := db.entries[keys[i]], db.entries[keys[j]]
		if a.spec != b.spec {
			return a.spec < b.spec
		}
		if a.load != b.load {
			return a.load < b.load
		}
		if a.seed != b.seed {
			return a.seed < b.seed
		}
		return keys[i] < keys[j]
	})
	lines := make([][]byte, len(keys))
	for i, h := range keys {
		lines[i] = db.entries[h].line
	}
	db.mu.Unlock()
	for _, line := range lines {
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// Close closes the active segment. Further Puts fail.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.closed = true
	if db.f == nil {
		return nil
	}
	err := db.f.Close()
	db.f = nil
	return err
}
