// Package service is the long-running campaign daemon layered on the
// harness: a REST job-submission API, a persistent result database keyed by
// the harness's sha256 job hashes, and a fair scheduler that multiplexes
// concurrent campaigns over one shared worker pool.
//
// The determinism contract of the harness carries through unchanged: every
// job owns its own network and RNG, so scheduling order — which campaign a
// worker serves next — can never affect any job's result, only when it
// lands. A campaign run through the service is bit-identical to the same
// campaign run one-shot through harness.RunJobs.
package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"frfc/internal/experiment"
	"frfc/internal/harness"
	"frfc/internal/iofault"
)

// DefaultSegmentBytes is the rotation threshold for database segments: once
// the active segment grows past it, the next Put opens a new one. Small
// enough that a damaged segment loses little, large enough that a long
// campaign does not shower the directory with files.
const DefaultSegmentBytes = 4 << 20

// FsyncMode selects when Put fsyncs the segment files.
type FsyncMode int

// Fsync modes. The durability ladder, fastest to safest: Off (the OS decides
// when bytes reach the platter — a crash can lose everything since the last
// rotation), Batch (bounded loss: at most BatchPuts results or
// BatchInterval of work), Always (a Put that returned nil is on disk).
// Rotation and Close sync regardless of mode.
const (
	FsyncAlways FsyncMode = iota
	FsyncBatch
	FsyncOff
)

func (m FsyncMode) String() string {
	switch m {
	case FsyncBatch:
		return "batch"
	case FsyncOff:
		return "off"
	default:
		return "always"
	}
}

// ParseFsyncMode parses "always", "batch" or "off" (the -fsync flag).
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "", "always":
		return FsyncAlways, nil
	case "batch":
		return FsyncBatch, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("service: unknown fsync mode %q (want always|batch|off)", s)
}

// FsyncPolicy tunes the durability/throughput tradeoff of DB.Put. See the
// FsyncMode constants for the ladder; docs/service.md has the measurements.
type FsyncPolicy struct {
	Mode FsyncMode
	// BatchPuts syncs after this many unsynced Puts (FsyncBatch only);
	// 0 means 16.
	BatchPuts int
	// BatchInterval syncs when the oldest unsynced Put is this old,
	// checked at Put time (FsyncBatch only); 0 means 100ms.
	BatchInterval time.Duration
}

// DBOptions tunes OpenDB. The zero value uses DefaultSegmentBytes, FsyncAlways
// and the real filesystem.
type DBOptions struct {
	// SegmentBytes is the rotation threshold; 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// Fsync is the durability policy; the zero value is FsyncAlways.
	Fsync FsyncPolicy
	// FS is the filesystem the database runs on; nil means the real one.
	// Tests and the kill-9 soak thread an iofault.Injector through here.
	FS iofault.FS
}

// DBStats is a point-in-time snapshot of the database's accounting.
type DBStats struct {
	// Entries is the number of distinct job hashes resolvable.
	Entries int `json:"entries"`
	// Segments is how many segment files exist, including the active one.
	Segments int `json:"segments"`
	// Hits and Misses count Get outcomes since open — the dedup ledger.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Healed counts undecodable lines without checksum coverage skipped
	// while opening: the footprint of a kill mid-write (at most one per
	// segment) or foreign junk.
	Healed int `json:"healed"`
	// Quarantined counts lines that failed their recorded CRC32C (or
	// carried a valid checksum over undecodable content) while opening —
	// mid-segment corruption, preserved in seg-*.quarantine sidecars
	// instead of being served or silently dropped.
	Quarantined int `json:"quarantined"`
	// PutErrors counts Put calls that failed in the storage path (write,
	// sync, rotation) since open — the disk-is-lying ledger.
	PutErrors int64 `json:"putErrors"`
}

// dbEntry is one cached result: the decoded Result served to the harness and
// the exact line bytes served to results streams and snapshots, so that what
// the service returns is byte-identical to what a one-shot store would hold.
type dbEntry struct {
	spec string
	load float64
	seed uint64
	res  experiment.Result
	line []byte // canonical JSONL line, no trailing newline
}

// DB is the service's persistent result database: append-only JSONL segments
// under one directory plus an in-memory index keyed by the harness job hash.
// It implements harness.ResultStore, so campaigns executed through it dedup
// resubmitted jobs to cached results instantly, and it survives restart the
// same way the one-shot store does — every complete line loads, a truncated
// tail (the footprint of a kill mid-write) is skipped and simply re-run.
//
// Segment lines use the identical schema the harness store writes
// (harness.MarshalEntry), so segments are readable by cmd/report and by the
// store's own tooling. Integrity lives out-of-band: each seg-NNNNNN.jsonl
// has a seg-NNNNNN.sum sidecar holding one CRC32C per line, positionally
// aligned, so the data segments stay byte-identical to one-shot stores while
// replay can tell a torn tail (healed, re-run) from a flipped byte in the
// middle (quarantined to seg-NNNNNN.quarantine, never served).
//
// After any write or sync error the active segment is poisoned: the next Put
// abandons it for a fresh segment, so partial bytes from a failed write can
// never concatenate with later good lines — damage stays a healable tail.
type DB struct {
	mu       sync.Mutex
	dir      string
	segLimit int64
	fsync    FsyncPolicy
	fs       iofault.FS

	f        iofault.File // active segment, opened for append
	fsum     iofault.File // its CRC32C sidecar, same positions
	seq      int          // active segment number, or next to create if f == nil
	size     int64        // bytes written to the active segment
	poisoned bool         // active segment took a write/sync error; rotate next Put

	pendingPuts int       // Puts not yet synced (FsyncBatch)
	oldestDirty time.Time // when the first of them landed

	entries     map[string]dbEntry
	segments    int
	hits        int64
	misses      int64
	healed      int
	quarantined int
	putErrors   int64
	closed      bool
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segmentName renders the file name of segment n; lexicographic order is
// creation order, which is what OpenDB relies on for last-write-wins replay.
func segmentName(n int) string { return fmt.Sprintf("seg-%06d.jsonl", n) }

// sumName is segment n's checksum sidecar: one 8-hex-digit CRC32C
// (Castagnoli) per data line, same position.
func sumName(n int) string { return fmt.Sprintf("seg-%06d.sum", n) }

// quarantineName is where segment n's corrupt lines are preserved.
func quarantineName(n int) string { return fmt.Sprintf("seg-%06d.quarantine", n) }

// segmentSeq extracts the sequence number from a segment path; compaction
// leaves holes in the numbering, so names are parsed, never counted.
func segmentSeq(path string) (int, bool) {
	base := filepath.Base(path)
	if len(base) != len("seg-000000.jsonl") {
		return 0, false
	}
	n, err := strconv.Atoi(base[4:10])
	return n, err == nil && n >= 0
}

// OpenDB opens (creating if absent) the database directory and replays every
// segment in creation order, last write per hash winning — the same resume
// semantics as the one-shot store. Lines failing their recorded checksum are
// quarantined; undecodable lines without checksum coverage are healed
// (counted, skipped). The highest-numbered segment is reopened for append
// only when it is fully intact and its sidecar covers every line — anything
// less starts a fresh segment, so checksum positions can never desynchronize
// from data lines.
func OpenDB(dir string, o DBOptions) (*DB, error) {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.Fsync.BatchPuts <= 0 {
		o.Fsync.BatchPuts = 16
	}
	if o.Fsync.BatchInterval <= 0 {
		o.Fsync.BatchInterval = 100 * time.Millisecond
	}
	if o.FS == nil {
		o.FS = iofault.OS
	}
	if err := o.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: create db dir: %w", err)
	}
	names, err := o.FS.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("service: scan db dir: %w", err)
	}
	sort.Strings(names)
	db := &DB{
		dir: dir, segLimit: o.SegmentBytes, fsync: o.Fsync, fs: o.FS,
		entries: make(map[string]dbEntry),
	}
	maxSeq := -1
	lastIntact := false
	for _, name := range names {
		seq, ok := segmentSeq(name)
		if !ok {
			continue
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		rep, err := db.replaySegment(name, seq)
		if err != nil {
			return nil, err
		}
		lastIntact = rep.intact
		db.segments++
	}
	db.seq = maxSeq + 1
	if lastIntact {
		last := filepath.Join(dir, segmentName(maxSeq))
		if st, err := o.FS.Stat(last); err == nil && st.Size() < o.SegmentBytes {
			f, err := o.FS.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("service: reopen segment: %w", err)
			}
			fsum, err := o.FS.OpenFile(filepath.Join(dir, sumName(maxSeq)), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				f.Close() //nolint:errcheck // surfacing the sidecar error
				return nil, fmt.Errorf("service: reopen segment sidecar: %w", err)
			}
			db.f, db.fsum = f, fsum
			db.seq = maxSeq
			db.size = st.Size()
		}
	}
	return db, nil
}

// segReplay summarizes one segment's replay for the append-reopen decision.
type segReplay struct {
	// intact: every line decoded, the sidecar exists and covers every line,
	// and nothing was healed or quarantined — safe to append to, because a
	// new line's checksum will land at the matching sidecar position.
	intact bool
}

// readSums loads segment seq's checksum sidecar. A missing sidecar (legacy
// segment) returns nil. A malformed sidecar line marks that position — and
// alignment — untrusted without failing the open.
func (db *DB) readSums(seq int) (sums []uint32, valid []bool, exists bool, err error) {
	f, err := db.fs.Open(filepath.Join(db.dir, sumName(seq)))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, false, nil
		}
		return nil, nil, false, fmt.Errorf("service: open sidecar: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, false, fmt.Errorf("service: read sidecar: %w", err)
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		v, perr := strconv.ParseUint(string(bytes.TrimSpace(line)), 16, 32)
		sums = append(sums, uint32(v))
		valid = append(valid, perr == nil)
	}
	return sums, valid, true, nil
}

// replaySegment loads one segment's verifiable lines into the index.
//
// Three verdicts per line, in trust order:
//   - checksum matches and the line decodes: accepted.
//   - a checksum is recorded but the line contradicts it (CRC mismatch, or
//     valid CRC over undecodable content): quarantined — the bytes were once
//     whole and are now lying, so they are preserved in the .quarantine
//     sidecar for forensics and never served.
//   - no checksum recorded (legacy segment, or a crash landed the data line
//     but not its sidecar line): decode decides — decodable lines load,
//     undecodable ones are healed as a torn tail.
//
// Nothing here is fatal: the recovery story is that damage costs at most the
// jobs affected, never the database.
func (db *DB) replaySegment(path string, seq int) (segReplay, error) {
	sums, sumsValid, haveSums, err := db.readSums(seq)
	if err != nil {
		return segReplay{}, err
	}
	f, err := db.fs.Open(path)
	if err != nil {
		return segReplay{}, fmt.Errorf("service: open segment: %w", err)
	}
	defer f.Close()

	var quarantine iofault.File
	defer func() {
		if quarantine != nil {
			quarantine.Close() //nolint:errcheck // best-effort forensics file
		}
	}()
	quarantineLine := func(raw []byte) {
		db.quarantined++
		if quarantine == nil {
			// Truncate on first write this open: reopening a damaged
			// segment must not duplicate its quarantine records.
			q, qerr := db.fs.OpenFile(filepath.Join(db.dir, quarantineName(seq)),
				os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
			if qerr != nil {
				return // counted anyway; preservation is best-effort
			}
			quarantine = q
		}
		quarantine.Write(append(raw, '\n')) //nolint:errcheck // best-effort
	}

	clean := true
	lines := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for i := 0; sc.Scan(); i++ {
		lines++
		raw := sc.Bytes()
		covered := i < len(sums) && sumsValid[i]
		if covered && crc32.Checksum(raw, castagnoli) != sums[i] {
			quarantineLine(raw)
			clean = false
			continue
		}
		line := bytes.TrimSpace(raw)
		var e struct {
			Hash string            `json:"hash"`
			Spec string            `json:"spec"`
			Load float64           `json:"load"`
			Seed uint64            `json:"seed"`
			Res  experiment.Result `json:"result"`
		}
		if err := json.Unmarshal(line, &e); err != nil || e.Hash == "" {
			if covered {
				// The checksum vouches for these bytes, yet they don't
				// decode: recorded-then-corrupted beyond what CRC sees,
				// or a schema bug. Either way: preserve, don't serve.
				quarantineLine(raw)
			} else {
				db.healed++
			}
			clean = false
			continue
		}
		db.entries[e.Hash] = dbEntry{
			spec: e.Spec, load: e.Load, seed: e.Seed, res: e.Res,
			line: append([]byte(nil), line...),
		}
	}
	if err := sc.Err(); err != nil {
		return segReplay{}, fmt.Errorf("service: read segment %s: %w", path, err)
	}
	allValid := true
	for _, v := range sumsValid {
		allValid = allValid && v
	}
	return segReplay{intact: clean && haveSums && allValid && len(sums) == lines}, nil
}

// Get returns the cached result for a job hash, counting the dedup ledger.
func (db *DB) Get(hash string) (experiment.Result, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.entries[hash]
	if ok {
		db.hits++
	} else {
		db.misses++
	}
	return e.res, ok
}

// GetLine returns the stored canonical JSONL line for a job hash.
func (db *DB) GetLine(hash string) ([]byte, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.entries[hash]
	return e.line, ok
}

// rotateLocked retires the active segment: sync both files, close both, and
// surface every error — a failed close can drop buffered state right before
// the segment is abandoned, which is exactly the loss this database exists
// to prevent. Even on error the segment is abandoned (the files are closed
// or unusable either way) so the next Put starts fresh.
func (db *DB) rotateLocked() error {
	f, fsum := db.f, db.fsum
	db.f, db.fsum = nil, nil
	db.seq++
	db.pendingPuts = 0
	db.poisoned = false
	if f == nil {
		return nil
	}
	var firstErr error
	for _, step := range []struct {
		name string
		fn   func() error
	}{
		{"sync segment", f.Sync},
		{"sync sidecar", func() error {
			if fsum == nil {
				return nil
			}
			return fsum.Sync()
		}},
		{"close segment", f.Close},
		{"close sidecar", func() error {
			if fsum == nil {
				return nil
			}
			return fsum.Close()
		}},
	} {
		if err := step.fn(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("service: rotate: %s: %w", step.name, err)
		}
	}
	return firstErr
}

// Put records a completed job durably: one canonical JSONL line appended to
// the active segment, its CRC32C appended to the sidecar, both synced per
// the FsyncPolicy before the index is updated, rotating to a fresh segment
// when the active one is over the limit or poisoned by an earlier error.
// Implements harness.ResultStore, so it slots straight into
// harness.Options.Store.
func (db *DB) Put(j harness.Job, hash string, r experiment.Result) error {
	line, err := harness.MarshalEntry(j, hash, r)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("service: put on closed db")
	}
	if db.f != nil && (db.size >= db.segLimit || db.poisoned) {
		poisoned := db.poisoned
		if err := db.rotateLocked(); err != nil && !poisoned {
			// A poisoned segment's close failing is old news — its error
			// was already surfaced by the Put that poisoned it.
			db.putErrors++
			return err
		}
	}
	if db.f == nil {
		path := filepath.Join(db.dir, segmentName(db.seq))
		f, err := db.fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			db.putErrors++
			return fmt.Errorf("service: create segment: %w", err)
		}
		fsum, err := db.fs.OpenFile(filepath.Join(db.dir, sumName(db.seq)),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			f.Close() //nolint:errcheck // surfacing the sidecar error
			db.putErrors++
			return fmt.Errorf("service: create segment sidecar: %w", err)
		}
		db.f, db.fsum = f, fsum
		db.size = 0
		db.segments++
	}
	if _, err := db.f.Write(append(line, '\n')); err != nil {
		db.poisoned = true
		db.putErrors++
		return fmt.Errorf("service: append result: %w", err)
	}
	sum := fmt.Sprintf("%08x\n", crc32.Checksum(line, castagnoli))
	if _, err := db.fsum.Write([]byte(sum)); err != nil {
		db.poisoned = true
		db.putErrors++
		return fmt.Errorf("service: append checksum: %w", err)
	}
	if err := db.maybeSyncLocked(); err != nil {
		db.poisoned = true
		db.putErrors++
		return err
	}
	db.size += int64(len(line)) + 1
	spec := j.EffectiveSpec()
	db.entries[hash] = dbEntry{spec: spec.Name, load: j.Load, seed: j.Seed, res: r, line: line}
	return nil
}

// maybeSyncLocked applies the fsync policy to the Put that just wrote.
func (db *DB) maybeSyncLocked() error {
	switch db.fsync.Mode {
	case FsyncOff:
		return nil
	case FsyncBatch:
		db.pendingPuts++
		if db.pendingPuts == 1 {
			db.oldestDirty = time.Now()
		}
		if db.pendingPuts < db.fsync.BatchPuts &&
			time.Since(db.oldestDirty) < db.fsync.BatchInterval {
			return nil
		}
	}
	return db.syncLocked()
}

// syncLocked flushes both active files to disk: data first, then checksums,
// so a crash between the two leaves data lines without sidecar coverage
// (replayed by decode) rather than checksums vouching for absent bytes.
func (db *DB) syncLocked() error {
	if err := db.f.Sync(); err != nil {
		return fmt.Errorf("service: sync segment: %w", err)
	}
	if err := db.fsum.Sync(); err != nil {
		return fmt.Errorf("service: sync sidecar: %w", err)
	}
	db.pendingPuts = 0
	return nil
}

// Compact merges every segment into one: the full index, in Snapshot order,
// written to a fresh highest-numbered segment (with sidecar), after which
// the old segments and sidecars are removed. Superseded duplicates — the
// same hash re-recorded across restarts — and quarantined bytes are what
// compaction sheds. Quarantine files are deliberately left behind: they are
// forensic evidence, removed by the operator, not by the machine.
//
// Crash-safe at every boundary: the merged segment is built under temp
// names, synced, then renamed into place (data before sidecar) — and
// because it carries the highest sequence number, last-write-wins replay
// makes it authoritative whether or not the old segments' removal completed.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("service: compact on closed db")
	}
	if err := db.rotateLocked(); err != nil {
		return err
	}
	// rotateLocked advanced db.seq past the active segment: that number is
	// free for the merged segment.
	newSeq := db.seq
	old, err := db.fs.Glob(filepath.Join(db.dir, "seg-*.jsonl"))
	if err != nil {
		return fmt.Errorf("service: scan db dir: %w", err)
	}
	sort.Strings(old)

	keys := db.sortedKeysLocked()
	tmpData := filepath.Join(db.dir, "compact.jsonl.tmp")
	tmpSum := filepath.Join(db.dir, "compact.sum.tmp")
	write := func(path string, emit func(io.Writer) error) error {
		f, err := db.fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close() //nolint:errcheck // surfacing the write error
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close() //nolint:errcheck // surfacing the sync error
			return err
		}
		return f.Close()
	}
	if err := write(tmpData, func(w io.Writer) error {
		for _, h := range keys {
			if _, err := w.Write(append(db.entries[h].line, '\n')); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return fmt.Errorf("service: compact data: %w", err)
	}
	if err := write(tmpSum, func(w io.Writer) error {
		for _, h := range keys {
			sum := fmt.Sprintf("%08x\n", crc32.Checksum(db.entries[h].line, castagnoli))
			if _, err := io.WriteString(w, sum); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return fmt.Errorf("service: compact sidecar: %w", err)
	}
	// Data before sidecar: a crash between the renames leaves the merged
	// data covered by decode-replay, never a sidecar vouching for nothing.
	if err := db.fs.Rename(tmpData, filepath.Join(db.dir, segmentName(newSeq))); err != nil {
		return fmt.Errorf("service: install compacted segment: %w", err)
	}
	if err := db.fs.Rename(tmpSum, filepath.Join(db.dir, sumName(newSeq))); err != nil {
		return fmt.Errorf("service: install compacted sidecar: %w", err)
	}
	for _, name := range old {
		seq, ok := segmentSeq(name)
		if !ok || seq == newSeq {
			continue
		}
		if err := db.fs.Remove(name); err != nil {
			return fmt.Errorf("service: remove old segment: %w", err)
		}
		sidecar := filepath.Join(db.dir, sumName(seq))
		if err := db.fs.Remove(sidecar); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("service: remove old sidecar: %w", err)
		}
	}
	db.seq = newSeq + 1
	db.segments = 1
	db.size = 0
	return nil
}

// sortedKeysLocked returns every hash in Snapshot order: spec, load, seed,
// then hash — the deterministic order reports and compaction share.
func (db *DB) sortedKeysLocked() []string {
	keys := make([]string, 0, len(db.entries))
	for h := range db.entries {
		keys = append(keys, h)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := db.entries[keys[i]], db.entries[keys[j]]
		if a.spec != b.spec {
			return a.spec < b.spec
		}
		if a.load != b.load {
			return a.load < b.load
		}
		if a.seed != b.seed {
			return a.seed < b.seed
		}
		return keys[i] < keys[j]
	})
	return keys
}

// Dir reports the database directory.
func (db *DB) Dir() string { return db.dir }

// Len reports how many distinct job hashes the database resolves.
func (db *DB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.entries)
}

// Stats snapshots the database accounting for /status and /metrics.
func (db *DB) Stats() DBStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return DBStats{
		Entries: len(db.entries), Segments: db.segments,
		Hits: db.hits, Misses: db.misses,
		Healed: db.healed, Quarantined: db.quarantined, PutErrors: db.putErrors,
	}
}

// Snapshot writes every entry as canonical JSONL in a stable order (spec,
// load, seed, then hash) — the deterministic input the background reporter
// renders BENCHMARK.md from, byte-identical across regenerations.
func (db *DB) Snapshot(w io.Writer) error {
	db.mu.Lock()
	keys := db.sortedKeysLocked()
	lines := make([][]byte, len(keys))
	for i, h := range keys {
		lines[i] = db.entries[h].line
	}
	db.mu.Unlock()
	for _, line := range lines {
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// Close syncs and closes the active segment and sidecar, surfacing any
// error from either. Further Puts fail; a second Close is a no-op.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	f, fsum := db.f, db.fsum
	db.f, db.fsum = nil, nil
	var firstErr error
	for _, c := range []iofault.File{f, fsum} {
		if c == nil {
			continue
		}
		if err := c.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
