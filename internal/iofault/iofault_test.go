package iofault

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestParsePlanRoundTrip(t *testing.T) {
	plans := []string{
		"eio write @3",
		"enospc sync @0",
		"short write @1 7",
		"crash before-sync @5",
		"crash after-close @2",
		"kill after-sync @9",
		"kill before-open @0",
		"eio rename @1",
		"enospc remove @4",
	}
	for _, s := range plans {
		plan, err := ParsePlan(s)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", s, err)
		}
		if len(plan) != 1 {
			t.Fatalf("ParsePlan(%q): %d faults, want 1", s, len(plan))
		}
		if got := plan[0].String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParsePlanMulti(t *testing.T) {
	plan, err := ParsePlan("eio sync @2; short write @1 7 ;; kill after-sync @5")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if len(plan) != 3 {
		t.Fatalf("got %d faults, want 3", len(plan))
	}
	if plan[0].Op != OpSync || plan[0].Index != 2 || !errors.Is(plan[0].Err, syscall.EIO) {
		t.Errorf("fault 0 = %+v", plan[0])
	}
	if plan[1].Kind != KindShort || plan[1].Bytes != 7 {
		t.Errorf("fault 1 = %+v", plan[1])
	}
	if plan[2].Kind != KindKill || plan[2].When != After || plan[2].Op != OpSync {
		t.Errorf("fault 2 = %+v", plan[2])
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"   ;  ",
		"eio write",
		"eio write 3",
		"eio frobnicate @1",
		"eio write @-1",
		"eio write @x",
		"short sync @1 5",
		"short write @1",
		"short write @1 -2",
		"crash sync @1",
		"crash during-sync @1",
		"kill after-zap @1",
		"explode write @1",
		"eio write @1 extra",
	} {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q): want error, got nil", s)
		}
	}
}

func TestDuplicateFaultRejected(t *testing.T) {
	_, err := New(Fault{Op: OpWrite, Index: 2}, Fault{Op: OpWrite, Index: 2, Kind: KindShort})
	if err == nil {
		t.Fatal("duplicate fault accepted")
	}
}

// openFile arms an injector with the plan and opens one append file in a
// temp dir, returning both plus the real path for post-mortem reads.
func openFile(t *testing.T, plan ...Fault) (*Injector, File, string) {
	t.Helper()
	in, err := New(plan...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	in.killSelf = func() { t.Fatal("unexpected real SIGKILL") }
	path := filepath.Join(t.TempDir(), "f.jsonl")
	f, err := in.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	return in, f, path
}

func readAll(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		t.Fatalf("ReadFile: %v", err)
	}
	return string(b)
}

func TestWriteErrAtIndex(t *testing.T) {
	_, f, path := openFile(t, Fault{Op: OpWrite, Index: 1, Kind: KindErr, Err: syscall.ENOSPC})
	if _, err := f.Write([]byte("one\n")); err != nil {
		t.Fatalf("write 0: %v", err)
	}
	if _, err := f.Write([]byte("two\n")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write 1: got %v, want ENOSPC", err)
	}
	if _, err := f.Write([]byte("three\n")); err != nil {
		t.Fatalf("write 2: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The errored write took no effect; its neighbours did.
	if got := readAll(t, path); got != "one\nthree\n" {
		t.Fatalf("disk = %q, want %q", got, "one\nthree\n")
	}
}

func TestShortWrite(t *testing.T) {
	_, f, path := openFile(t, Fault{Op: OpWrite, Index: 0, Kind: KindShort, Bytes: 3})
	n, err := f.Write([]byte("abcdef\n"))
	if n != 3 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := readAll(t, path); got != "abc" {
		t.Fatalf("disk = %q, want %q", got, "abc")
	}
}

func TestBufferUntilSync(t *testing.T) {
	_, f, path := openFile(t)
	if _, err := f.Write([]byte("hello\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Unsynced data must not be on disk yet: that is the crash model.
	if got := readAll(t, path); got != "" {
		t.Fatalf("pre-sync disk = %q, want empty", got)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if got := readAll(t, path); got != "hello\n" {
		t.Fatalf("post-sync disk = %q", got)
	}
}

func TestCrashBeforeSyncLosesPending(t *testing.T) {
	in, f, path := openFile(t, Fault{Op: OpSync, Index: 1, Kind: KindCrash, When: Before})
	for _, s := range []string{"a\n", "b\n"} {
		if _, err := f.Write([]byte(s)); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if err := f.Sync(); err != nil { // sync 0: flushes a+b
		t.Fatalf("sync 0: %v", err)
	}
	if _, err := f.Write([]byte("c\n")); err != nil {
		t.Fatalf("write c: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) { // sync 1: crash before
		t.Fatalf("sync 1: got %v, want ErrCrashed", err)
	}
	if !in.Crashed() {
		t.Fatal("injector not marked crashed")
	}
	// Everything after the crash fails.
	if _, err := f.Write([]byte("d\n")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
	if err := f.Close(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash close: %v", err)
	}
	if _, err := in.OpenFile(path, os.O_WRONLY, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open: %v", err)
	}
	if _, err := in.Glob("*"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash glob: %v", err)
	}
	// c was never synced: only the first flush survives.
	if got := readAll(t, path); got != "a\nb\n" {
		t.Fatalf("disk = %q, want %q", got, "a\nb\n")
	}
}

func TestCrashAfterSyncKeepsFlushed(t *testing.T) {
	_, f, path := openFile(t, Fault{Op: OpSync, Index: 0, Kind: KindCrash, When: After})
	if _, err := f.Write([]byte("a\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync: got %v, want ErrCrashed", err)
	}
	if got := readAll(t, path); got != "a\n" {
		t.Fatalf("disk = %q, want %q (after-sync crash must flush first)", got, "a\n")
	}
}

func TestSyncErrDropsPending(t *testing.T) {
	_, f, path := openFile(t, Fault{Op: OpSync, Index: 0, Kind: KindErr})
	if _, err := f.Write([]byte("doomed\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync: got %v, want EIO", err)
	}
	if _, err := f.Write([]byte("kept\n")); err != nil {
		t.Fatalf("write 2: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// fsyncgate semantics: the failed sync's data is gone for good.
	if got := readAll(t, path); got != "kept\n" {
		t.Fatalf("disk = %q, want %q", got, "kept\n")
	}
}

func TestCloseErrLosesPending(t *testing.T) {
	_, f, path := openFile(t, Fault{Op: OpClose, Index: 0, Kind: KindErr})
	if _, err := f.Write([]byte("x\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Close(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("close: got %v, want EIO", err)
	}
	if got := readAll(t, path); got != "" {
		t.Fatalf("disk = %q, want empty", got)
	}
}

func TestCleanCloseFlushes(t *testing.T) {
	_, f, path := openFile(t)
	if _, err := f.Write([]byte("x\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := readAll(t, path); got != "x\n" {
		t.Fatalf("disk = %q, want %q", got, "x\n")
	}
}

func TestOpenErrAndRenameRemoveFaults(t *testing.T) {
	dir := t.TempDir()
	in, err := New(
		Fault{Op: OpOpen, Index: 0, Kind: KindErr},
		Fault{Op: OpRename, Index: 0, Kind: KindErr, Err: syscall.ENOSPC},
		Fault{Op: OpRemove, Index: 0, Kind: KindErr},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := in.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, syscall.EIO) {
		t.Fatalf("open 0: %v", err)
	}
	f, err := in.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open 1: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := in.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("rename 0: %v", err)
	}
	if err := in.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); err != nil {
		t.Fatalf("rename 1: %v", err)
	}
	if err := in.Remove(filepath.Join(dir, "b")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("remove 0: %v", err)
	}
	if err := in.Remove(filepath.Join(dir, "b")); err != nil {
		t.Fatalf("remove 1: %v", err)
	}
}

func TestCrashOnRenameAfter(t *testing.T) {
	dir := t.TempDir()
	in, err := New(Fault{Op: OpRename, Index: 0, Kind: KindCrash, When: After})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a"), []byte("x"), 0o644); err != nil {
		t.Fatalf("seed file: %v", err)
	}
	if err := in.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename: got %v, want ErrCrashed", err)
	}
	// After-rename crash: the rename itself happened.
	if _, err := os.Stat(filepath.Join(dir, "b")); err != nil {
		t.Fatalf("renamed file missing: %v", err)
	}
}

func TestKillInvokesKillSelf(t *testing.T) {
	in, err := New(Fault{Op: OpSync, Index: 0, Kind: KindKill, When: Before})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	killed := false
	in.killSelf = func() { killed = true }
	path := filepath.Join(t.TempDir(), "f")
	f, err := in.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync: got %v, want ErrCrashed (stubbed kill)", err)
	}
	if !killed {
		t.Fatal("killSelf not invoked")
	}
	if got := readAll(t, path); got != "" {
		t.Fatalf("disk = %q, want empty (before-sync kill)", got)
	}
}

func TestCountsSharedAcrossFiles(t *testing.T) {
	in, err := New(Fault{Op: OpWrite, Index: 2, Kind: KindErr})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	dir := t.TempDir()
	f1, err := in.OpenFile(filepath.Join(dir, "1"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open 1: %v", err)
	}
	f2, err := in.OpenFile(filepath.Join(dir, "2"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open 2: %v", err)
	}
	if _, err := f1.Write([]byte("a")); err != nil { // write 0
		t.Fatalf("w0: %v", err)
	}
	if _, err := f2.Write([]byte("b")); err != nil { // write 1
		t.Fatalf("w1: %v", err)
	}
	// write 2 is the faulted one, regardless of which file takes it.
	if _, err := f1.Write([]byte("c")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("w2: got %v, want EIO", err)
	}
	if got := in.Count(OpWrite); got != 3 {
		t.Fatalf("Count(OpWrite) = %d, want 3", got)
	}
	if err := f1.Close(); err != nil {
		t.Fatalf("close 1: %v", err)
	}
	if err := f2.Close(); err != nil {
		t.Fatalf("close 2: %v", err)
	}
}

func TestSeededSyncDeterministic(t *testing.T) {
	a := SeededSync(42, 10, true)
	b := SeededSync(42, 10, true)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.Op != OpSync || a.Kind != KindKill {
		t.Fatalf("unexpected fault shape: %+v", a)
	}
	if a.Index < 0 || a.Index >= 10 {
		t.Fatalf("index %d out of [0,10)", a.Index)
	}
	// Different seeds should spread over indices and placements.
	seenIdx := map[int64]bool{}
	seenWhen := map[When]bool{}
	for s := uint64(0); s < 64; s++ {
		f := SeededSync(s, 10, false)
		if f.Kind != KindCrash {
			t.Fatalf("kill=false produced %v", f.Kind)
		}
		seenIdx[f.Index] = true
		seenWhen[f.When] = true
	}
	if len(seenIdx) < 5 || len(seenWhen) != 2 {
		t.Fatalf("poor spread: %d indices, %d placements", len(seenIdx), len(seenWhen))
	}
	// Round-trip the rendered form through the parser (soak uses this to
	// build the -iofault flag).
	f := SeededSync(7, 20, true)
	plan, err := ParsePlan(f.String())
	if err != nil || len(plan) != 1 || plan[0] != f {
		t.Fatalf("seeded fault %q did not round-trip: %v %+v", f.String(), err, plan)
	}
}
