// Package iofault is a deterministic filesystem fault injector: an FS shim
// that the service's persistent result database runs on top of, able to fail
// chosen operations with EIO or ENOSPC, truncate writes, and simulate — or
// genuinely execute — a process death at a chosen sync boundary.
//
// Determinism is the whole point. Faults are addressed by (operation kind,
// operation index): "the 3rd write", "the 5th sync". Two runs of the same
// workload over the same plan fail at exactly the same place, which is what
// lets the crash-recovery tests assert exact survivor counts instead of
// "some data probably survived" — the same discipline the simulator's PR 5/6
// fault scenarios apply to links and routers, turned on the storage layer.
//
// # The durability model
//
// Files opened for writing buffer everything in memory until Sync (or a
// clean Close) flushes it to the real file. A crash fault therefore loses
// exactly the unsynced suffix, the way SIGKILL before fsync loses page-cache
// state on a machine crash — even though the test process and host keep
// running. What a reopened database observes after an injected crash is
// precisely what it would observe after a real one:
//
//   - data synced before the crash: durable
//   - data written but not synced: gone
//   - the operation stream after the crash: every call fails ErrCrashed
//
// Kill faults (KindKill) do not simulate: they deliver SIGKILL to the
// process itself, so no deferred cleanup, no atexit, no flush runs — the
// real thing, scheduled at a deterministic operation index. The frserve
// kill-9 recovery soak is built on them.
package iofault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// Op enumerates the filesystem operations the injector counts. A Fault's
// Index addresses the Nth operation of its Op since the injector was armed.
type Op uint8

// Counted operations. Reads are never faulted: the recovery story under test
// is about what survives writes, not about read availability.
const (
	OpWrite Op = iota
	OpSync
	OpClose
	OpOpen
	OpRename
	OpRemove
	numOps
)

var opNames = [numOps]string{"write", "sync", "close", "open", "rename", "remove"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// When situates a crash or kill fault relative to its anchor operation:
// Before fires with the operation never performed, After fires with the
// operation (including its flush, for syncs) complete.
type When uint8

// Crash placements.
const (
	Before When = iota
	After
)

func (w When) String() string {
	if w == Before {
		return "before"
	}
	return "after"
}

// Kind is what happens when a fault fires.
type Kind uint8

// Fault kinds.
const (
	// KindErr fails the operation with Fault.Err (EIO, ENOSPC, ...). The
	// operation takes no effect: an errored write buffers nothing.
	KindErr Kind = iota
	// KindShort persists only Fault.Bytes bytes of a write, then fails it
	// with io.ErrShortWrite — the torn-line footprint of a full disk or an
	// interrupted write(2).
	KindShort
	// KindCrash simulates process death at the operation: unsynced buffers
	// are dropped, and every later operation through the injector fails
	// with ErrCrashed.
	KindCrash
	// KindKill is KindCrash for real: SIGKILL to the current process, so
	// nothing after the boundary runs at all. For subprocess harnesses.
	KindKill
)

// ErrCrashed is returned by every operation after a KindCrash fault fired:
// the process is notionally dead, nothing succeeds anymore.
var ErrCrashed = errors.New("iofault: process crashed")

// Fault is one scheduled failure: at the Index'th operation of kind Op,
// inject Kind.
type Fault struct {
	Op    Op
	Index int64
	Kind  Kind
	When  When  // KindCrash/KindKill: fire before or after the operation
	Err   error // KindErr: the error to return; nil means EIO
	Bytes int   // KindShort: bytes persisted before the failure
}

// String renders the fault in ParsePlan's grammar, so a programmatically
// built fault can round-trip through a -iofault command-line flag.
func (f Fault) String() string {
	switch f.Kind {
	case KindShort:
		return fmt.Sprintf("short %s @%d %d", f.Op, f.Index, f.Bytes)
	case KindCrash:
		return fmt.Sprintf("crash %s-%s @%d", f.When, f.Op, f.Index)
	case KindKill:
		return fmt.Sprintf("kill %s-%s @%d", f.When, f.Op, f.Index)
	default:
		verb := "eio"
		if errors.Is(f.Err, syscall.ENOSPC) {
			verb = "enospc"
		}
		return fmt.Sprintf("%s %s @%d", verb, f.Op, f.Index)
	}
}

// ParsePlan parses the fault-plan grammar, mirroring the simulator's
// scenario strings ("down 5-6 @1200"): semicolon-separated faults of
//
//	eio <op> @<index>          fail the op with EIO
//	enospc <op> @<index>       fail the op with ENOSPC
//	short write @<index> <n>   persist n bytes, fail with short write
//	crash <when>-<op> @<index> simulated process death at the boundary
//	kill <when>-<op> @<index>  real SIGKILL at the boundary
//
// where <op> is write|sync|close|open|rename|remove and <when> is
// before|after. Example: "eio write @3; crash after-sync @5".
func ParsePlan(s string) ([]Fault, error) {
	var plan []Fault
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := parseFault(part)
		if err != nil {
			return nil, err
		}
		plan = append(plan, f)
	}
	if len(plan) == 0 {
		return nil, fmt.Errorf("iofault: empty plan %q", s)
	}
	return plan, nil
}

func parseFault(s string) (Fault, error) {
	fields := strings.Fields(s)
	if len(fields) < 3 {
		return Fault{}, fmt.Errorf("iofault: bad fault %q (want \"<verb> <op> @<index>\")", s)
	}
	verb, opWord, at := fields[0], fields[1], fields[2]
	if !strings.HasPrefix(at, "@") {
		return Fault{}, fmt.Errorf("iofault: bad index %q in %q (want @N)", at, s)
	}
	idx, err := strconv.ParseInt(at[1:], 10, 64)
	if err != nil || idx < 0 {
		return Fault{}, fmt.Errorf("iofault: bad index %q in %q", at, s)
	}
	f := Fault{Index: idx}
	switch verb {
	case "eio", "enospc":
		f.Kind = KindErr
		f.Err = syscall.EIO
		if verb == "enospc" {
			f.Err = syscall.ENOSPC
		}
		if f.Op, err = parseOp(opWord); err != nil {
			return Fault{}, fmt.Errorf("%w in %q", err, s)
		}
	case "short":
		f.Kind = KindShort
		if f.Op, err = parseOp(opWord); err != nil {
			return Fault{}, fmt.Errorf("%w in %q", err, s)
		}
		if f.Op != OpWrite {
			return Fault{}, fmt.Errorf("iofault: short faults only apply to writes (%q)", s)
		}
		if len(fields) != 4 {
			return Fault{}, fmt.Errorf("iofault: short fault %q missing byte count", s)
		}
		if f.Bytes, err = strconv.Atoi(fields[3]); err != nil || f.Bytes < 0 {
			return Fault{}, fmt.Errorf("iofault: bad short byte count %q in %q", fields[3], s)
		}
	case "crash", "kill":
		f.Kind = KindCrash
		if verb == "kill" {
			f.Kind = KindKill
		}
		when, op, ok := strings.Cut(opWord, "-")
		if !ok {
			return Fault{}, fmt.Errorf("iofault: %s fault wants <before|after>-<op>, got %q", verb, opWord)
		}
		switch when {
		case "before":
			f.When = Before
		case "after":
			f.When = After
		default:
			return Fault{}, fmt.Errorf("iofault: bad placement %q in %q", when, s)
		}
		if f.Op, err = parseOp(op); err != nil {
			return Fault{}, fmt.Errorf("%w in %q", err, s)
		}
	default:
		return Fault{}, fmt.Errorf("iofault: unknown verb %q in %q", verb, s)
	}
	if len(fields) != 3 && f.Kind != KindShort {
		return Fault{}, fmt.Errorf("iofault: trailing tokens in %q", s)
	}
	return f, nil
}

func parseOp(s string) (Op, error) {
	for i, n := range opNames {
		if s == n {
			return Op(i), nil
		}
	}
	return 0, fmt.Errorf("iofault: unknown op %q", s)
}

// SeededSync derives a deterministic crash (or kill) fault at a sync index
// in [0, maxSync) from a seed — the per-cycle schedule of the kill-9
// recovery soak, where each cycle murders the daemon at a different, but
// reproducible, durability boundary.
func SeededSync(seed uint64, maxSync int64, kill bool) Fault {
	if maxSync <= 0 {
		maxSync = 1
	}
	x := splitmix64(seed)
	f := Fault{Op: OpSync, Kind: KindCrash, Index: int64(x % uint64(maxSync))}
	if kill {
		f.Kind = KindKill
	}
	if splitmix64(x)&1 == 1 {
		f.When = After
	}
	return f
}

// splitmix64 is the standard 64-bit mixer: stable across Go versions, unlike
// math/rand's default source, so soak schedules never drift.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// File is the slice of *os.File the result database needs. Reads and writes
// never mix on one handle: segments are either being replayed or appended.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Name() string
}

// FS is the filesystem surface the result database runs on. OS is the real
// thing; *Injector wraps any FS with a fault plan.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	Glob(pattern string) ([]string, error)
	Stat(name string) (os.FileInfo, error)
	// Open opens a file read-only (segment replay).
	Open(name string) (File, error)
	// OpenFile opens a file for writing (segment append); counted as OpOpen.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

type osFS struct{}

// OS is the real filesystem: every call forwards to package os.
var OS FS = osFS{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Glob(pattern string) ([]string, error)        { return filepath.Glob(pattern) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) Open(name string) (File, error)               { return os.Open(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Injector is an FS that counts operations and injects the plan's faults at
// their indices. Safe for concurrent use; the shared counters make operation
// indices globally ordered across files, which is what gives "the 5th sync"
// a single meaning even when several files are open.
type Injector struct {
	base FS

	mu      sync.Mutex
	faults  map[faultKey]Fault
	counts  [numOps]int64
	crashed bool

	// killSelf delivers the KindKill SIGKILL; swapped out only by tests
	// that must observe the boundary without dying.
	killSelf func()
}

type faultKey struct {
	op    Op
	index int64
}

// New arms an injector over the real filesystem with the given plan. Two
// faults at the same (op, index) are rejected as a plan bug.
func New(plan ...Fault) (*Injector, error) {
	return NewOver(OS, plan...)
}

// NewOver arms an injector over an arbitrary base FS.
func NewOver(base FS, plan ...Fault) (*Injector, error) {
	in := &Injector{
		base:     base,
		faults:   make(map[faultKey]Fault, len(plan)),
		killSelf: func() { _ = syscall.Kill(os.Getpid(), syscall.SIGKILL) },
	}
	for _, f := range plan {
		if f.Op >= numOps {
			return nil, fmt.Errorf("iofault: bad op in fault %+v", f)
		}
		if f.Kind == KindErr && f.Err == nil {
			f.Err = syscall.EIO
		}
		k := faultKey{f.Op, f.Index}
		if _, dup := in.faults[k]; dup {
			return nil, fmt.Errorf("iofault: duplicate fault at %s @%d", f.Op, f.Index)
		}
		in.faults[k] = f
	}
	return in, nil
}

// Crashed reports whether a crash fault has fired: the injector is dead and
// every operation fails with ErrCrashed until a fresh injector is armed.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Count reports how many operations of kind op have been attempted.
func (in *Injector) Count(op Op) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[op]
}

// step consumes one operation slot of kind op: it returns the fault armed at
// this index (ok) or an ErrCrashed error when the injector is already dead.
func (in *Injector) step(op Op) (Fault, bool, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return Fault{}, false, ErrCrashed
	}
	idx := in.counts[op]
	in.counts[op]++
	f, ok := in.faults[faultKey{op, idx}]
	return f, ok, nil
}

// crash executes a KindCrash/KindKill fault. KindKill never returns.
func (in *Injector) crash(kind Kind) error {
	if kind == KindKill {
		in.killSelf()
		// Only reachable when killSelf is stubbed in tests.
	}
	in.mu.Lock()
	in.crashed = true
	in.mu.Unlock()
	return ErrCrashed
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	if in.Crashed() {
		return ErrCrashed
	}
	return in.base.MkdirAll(path, perm)
}

func (in *Injector) Glob(pattern string) ([]string, error) {
	if in.Crashed() {
		return nil, ErrCrashed
	}
	return in.base.Glob(pattern)
}

func (in *Injector) Stat(name string) (os.FileInfo, error) {
	if in.Crashed() {
		return nil, ErrCrashed
	}
	return in.base.Stat(name)
}

func (in *Injector) Open(name string) (File, error) {
	if in.Crashed() {
		return nil, ErrCrashed
	}
	return in.base.Open(name)
}

// OpenFile opens a writable handle whose writes buffer in memory until Sync
// (or a clean Close) flushes them — see the package durability model.
func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, ok, err := in.step(OpOpen)
	if err != nil {
		return nil, err
	}
	if ok {
		switch f.Kind {
		case KindErr:
			return nil, fmt.Errorf("iofault: open %s: %w", name, f.Err)
		case KindCrash, KindKill:
			if f.When == Before {
				return nil, in.crash(f.Kind)
			}
		}
	}
	uf, oerr := in.base.OpenFile(name, flag, perm)
	if oerr != nil {
		return nil, oerr
	}
	if ok && (f.Kind == KindCrash || f.Kind == KindKill) && f.When == After {
		uf.Close() //nolint:errcheck // the process is dying
		return nil, in.crash(f.Kind)
	}
	return &faultFile{in: in, f: uf}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	return in.pathOp(OpRename, "rename "+oldpath, func() error { return in.base.Rename(oldpath, newpath) })
}

func (in *Injector) Remove(name string) error {
	return in.pathOp(OpRemove, "remove "+name, func() error { return in.base.Remove(name) })
}

// pathOp runs a single-shot path operation (rename, remove) under the fault
// plan.
func (in *Injector) pathOp(op Op, what string, body func() error) error {
	f, ok, err := in.step(op)
	if err != nil {
		return err
	}
	if ok {
		switch f.Kind {
		case KindErr:
			return fmt.Errorf("iofault: %s: %w", what, f.Err)
		case KindCrash, KindKill:
			if f.When == Before {
				return in.crash(f.Kind)
			}
			if err := body(); err != nil {
				return err
			}
			return in.crash(f.Kind)
		}
	}
	return body()
}

// faultFile is a writable handle whose writes buffer until Sync. Reads are
// not supported (the database never reads through an append handle).
type faultFile struct {
	in *Injector
	f  File

	mu      sync.Mutex
	pending []byte
}

func (ff *faultFile) Name() string { return ff.f.Name() }

func (ff *faultFile) Read([]byte) (int, error) {
	return 0, fmt.Errorf("iofault: read on write handle %s", ff.f.Name())
}

func (ff *faultFile) Write(p []byte) (int, error) {
	flt, ok, err := ff.in.step(OpWrite)
	if err != nil {
		return 0, err
	}
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ok {
		switch flt.Kind {
		case KindErr:
			return 0, fmt.Errorf("iofault: write %s: %w", ff.f.Name(), flt.Err)
		case KindShort:
			n := flt.Bytes
			if n > len(p) {
				n = len(p)
			}
			ff.pending = append(ff.pending, p[:n]...)
			return n, fmt.Errorf("iofault: write %s: %w", ff.f.Name(), io.ErrShortWrite)
		case KindCrash, KindKill:
			if flt.When == After {
				// The write lands in the buffer, but the buffer dies
				// with the process: same durable state as Before.
				ff.pending = append(ff.pending, p...)
			}
			return 0, ff.in.crash(flt.Kind)
		}
	}
	ff.pending = append(ff.pending, p...)
	return len(p), nil
}

func (ff *faultFile) Sync() error {
	flt, ok, err := ff.in.step(OpSync)
	if err != nil {
		return err
	}
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ok {
		switch flt.Kind {
		case KindErr:
			// A failed fsync leaves the write-back cache in an unknown
			// state; model the worst case and drop it (fsyncgate).
			ff.pending = nil
			return fmt.Errorf("iofault: sync %s: %w", ff.f.Name(), flt.Err)
		case KindCrash, KindKill:
			if flt.When == After {
				if err := ff.flushLocked(); err != nil {
					return err
				}
			}
			return ff.in.crash(flt.Kind)
		}
	}
	return ff.flushLocked()
}

func (ff *faultFile) Close() error {
	flt, ok, err := ff.in.step(OpClose)
	if err != nil {
		return err
	}
	ff.mu.Lock()
	defer ff.mu.Unlock()
	if ok {
		switch flt.Kind {
		case KindErr:
			// A failed close loses whatever had not been synced.
			ff.pending = nil
			ff.f.Close() //nolint:errcheck // reporting the injected error
			return fmt.Errorf("iofault: close %s: %w", ff.f.Name(), flt.Err)
		case KindCrash, KindKill:
			if flt.When == After {
				if err := ff.flushLocked(); err != nil {
					return err
				}
				ff.f.Close() //nolint:errcheck // the process is dying
			}
			return ff.in.crash(flt.Kind)
		}
	}
	// A clean close flushes: data handed to the OS before an orderly exit
	// survives process death, unlike the unsynced buffer of a crash.
	if err := ff.flushLocked(); err != nil {
		ff.f.Close() //nolint:errcheck // reporting the flush error
		return err
	}
	return ff.f.Close()
}

// flushLocked empties the pending buffer into the real file and fsyncs it.
func (ff *faultFile) flushLocked() error {
	if len(ff.pending) > 0 {
		if _, err := ff.f.Write(ff.pending); err != nil {
			return err
		}
		ff.pending = nil
	}
	return ff.f.Sync()
}
