package noc

import (
	"testing"
	"testing/quick"

	"frfc/internal/sim"
)

func TestTypeFor(t *testing.T) {
	cases := []struct {
		seq, n int
		want   FlitType
	}{
		{0, 1, HeadTailFlit},
		{0, 5, HeadFlit},
		{2, 5, BodyFlit},
		{4, 5, TailFlit},
	}
	for _, c := range cases {
		if got := TypeFor(c.seq, c.n); got != c.want {
			t.Errorf("TypeFor(%d, %d) = %s, want %s", c.seq, c.n, got, c.want)
		}
	}
}

func TestFlitTypePredicates(t *testing.T) {
	if !HeadFlit.IsHead() || HeadFlit.IsTail() {
		t.Error("HeadFlit predicates wrong")
	}
	if !TailFlit.IsTail() || TailFlit.IsHead() {
		t.Error("TailFlit predicates wrong")
	}
	if !HeadTailFlit.IsHead() || !HeadTailFlit.IsTail() {
		t.Error("HeadTailFlit predicates wrong")
	}
	if BodyFlit.IsHead() || BodyFlit.IsTail() {
		t.Error("BodyFlit predicates wrong")
	}
}

func TestDataFlits(t *testing.T) {
	p := &Packet{ID: 7, Len: 5}
	flits := DataFlits(p)
	if len(flits) != 5 {
		t.Fatalf("got %d flits, want 5", len(flits))
	}
	for i, f := range flits {
		if f.Seq != i || f.Packet != p || f.Type != TypeFor(i, 5) {
			t.Fatalf("flit %d malformed: %+v", i, f)
		}
	}
}

func TestControlFlitsHeadCarriesDestination(t *testing.T) {
	p := &Packet{ID: 1, Dst: 42, Len: 5}
	cfs := ControlFlits(p, 1)
	if len(cfs) != 5 {
		t.Fatalf("d=1, L=5: got %d control flits, want 5", len(cfs))
	}
	if cfs[0].Dst != 42 || !cfs[0].Type.IsHead() {
		t.Fatal("head control flit missing destination")
	}
	if !cfs[4].Type.IsTail() {
		t.Fatal("last control flit not a tail")
	}
}

// TestControlFlitsCoverEverySeqOnce: for any packet length and lead width,
// every data flit is led exactly once, in order, by at most d per flit.
func TestControlFlitsCoverEverySeqOnce(t *testing.T) {
	f := func(lRaw, dRaw uint8) bool {
		l := int(lRaw%40) + 1
		d := int(dRaw%6) + 1
		p := &Packet{Len: l}
		cfs := ControlFlits(p, d)
		next := 0
		for i, cf := range cfs {
			if len(cf.Leads) == 0 || len(cf.Leads) > d {
				return false
			}
			if cf.Type.IsHead() != (i == 0) || cf.Type.IsTail() != (i == len(cfs)-1) {
				return false
			}
			for _, le := range cf.Leads {
				if le.Seq != next {
					return false
				}
				next++
			}
		}
		return next == l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestControlFlitsRejectBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { ControlFlits(&Packet{Len: 5}, 0) },
		func() { ControlFlits(&Packet{Len: 0}, 1) },
		func() { DataFlits(&Packet{Len: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad packetize arguments did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestHooksNilSafe(t *testing.T) {
	var h *Hooks
	h.Delivered(&Packet{}, 0)
	h.Injected(0)
	h.Ejected(0)
	empty := &Hooks{}
	empty.Delivered(&Packet{}, 0)
	empty.Injected(0)
	empty.Ejected(0)
}

func TestFlitStrings(t *testing.T) {
	p := &Packet{ID: 3, Len: 2}
	df := DataFlit{Packet: p, Seq: 1, Type: TailFlit}
	if df.String() == "" || (DataFlit{}).String() == "" {
		t.Error("DataFlit.String empty")
	}
	cf := ControlFlit{Packet: p, Type: HeadFlit, Leads: []LeadEntry{{Seq: 0, Arrival: sim.Cycle(9)}}}
	if cf.String() == "" || (ControlFlit{}).String() == "" {
		t.Error("ControlFlit.String empty")
	}
}
