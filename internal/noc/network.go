package noc

import (
	"frfc/internal/sim"
	"frfc/internal/topology"
)

// Hooks are the observation points a network reports through. Any field may
// be nil; use the call helpers, which are nil-safe.
type Hooks struct {
	// PacketDelivered fires once per packet when its last flit has been
	// ejected at the destination.
	PacketDelivered func(p *Packet, now sim.Cycle)
	// FlitInjected fires when a data flit enters the network at a source.
	FlitInjected func(now sim.Cycle)
	// FlitEjected fires when a data flit leaves the network at its
	// destination.
	FlitEjected func(now sim.Cycle)
	// FlitDropped fires when fault injection destroys a data flit on a
	// link.
	FlitDropped func(p *Packet, now sim.Cycle)
	// PacketLost fires once per packet when the destination detects that
	// one of its flits will never arrive (an idle pattern where the
	// reassembly schedule expected data — the paper's Section 5 error
	// story).
	PacketLost func(p *Packet, now sim.Cycle)
}

// Delivered invokes PacketDelivered if set.
func (h *Hooks) Delivered(p *Packet, now sim.Cycle) {
	if h != nil && h.PacketDelivered != nil {
		h.PacketDelivered(p, now)
	}
}

// Injected invokes FlitInjected if set.
func (h *Hooks) Injected(now sim.Cycle) {
	if h != nil && h.FlitInjected != nil {
		h.FlitInjected(now)
	}
}

// Ejected invokes FlitEjected if set.
func (h *Hooks) Ejected(now sim.Cycle) {
	if h != nil && h.FlitEjected != nil {
		h.FlitEjected(now)
	}
}

// Dropped invokes FlitDropped if set.
func (h *Hooks) Dropped(p *Packet, now sim.Cycle) {
	if h != nil && h.FlitDropped != nil {
		h.FlitDropped(p, now)
	}
}

// Lost invokes PacketLost if set.
func (h *Hooks) Lost(p *Packet, now sim.Cycle) {
	if h != nil && h.PacketLost != nil {
		h.PacketLost(p, now)
	}
}

// Network is the common surface the experiment harness drives. Both the
// flit-reservation network (internal/core) and the baseline networks
// (internal/vcrouter, internal/wormhole) implement it.
type Network interface {
	// Offer places a freshly generated packet in its source's injection
	// queue. The packet's Src field selects the queue.
	Offer(p *Packet)
	// Tick advances the whole network by one cycle.
	Tick(now sim.Cycle)
	// SourceQueueLen reports the total number of packets waiting in
	// source queues, the quantity whose stabilization ends warm-up.
	SourceQueueLen() int
	// InFlightPackets reports packets offered but not yet fully
	// delivered (including those still queued at sources).
	InFlightPackets() int
	// BufferUsage reports the number of occupied data-flit buffers and
	// the total data-flit buffer capacity across the given router's
	// input ports.
	BufferUsage(id topology.NodeID) (used, capacity int)
	// PoolUsage reports the occupancy and capacity of one input port's
	// buffer pool on the given router — the granularity at which
	// Section 4.2 of the paper tracks occupancy ("a specific buffer
	// pool of a router in the middle of the mesh").
	PoolUsage(id topology.NodeID, port topology.Port) (used, capacity int)
}
