package noc

import (
	"frfc/internal/sim"
	"frfc/internal/topology"
)

// Hooks are the observation points a network reports through. Any field may
// be nil; use the call helpers, which are nil-safe.
type Hooks struct {
	// PacketDelivered fires once per packet when its last flit has been
	// ejected at the destination.
	PacketDelivered func(p *Packet, now sim.Cycle)
	// FlitInjected fires when a data flit enters the network at a source.
	FlitInjected func(now sim.Cycle)
	// FlitEjected fires when a data flit leaves the network at its
	// destination.
	FlitEjected func(now sim.Cycle)
	// FlitDropped fires when fault injection destroys a data flit on a
	// link.
	FlitDropped func(p *Packet, now sim.Cycle)
	// PacketLost fires when the destination detects that one of a
	// packet's flits will never arrive (an idle pattern where the
	// reassembly schedule expected data — the paper's Section 5 error
	// story). Without end-to-end retry it fires at most once per packet
	// and resolves the packet's fate; with retry enabled it fires once per
	// lost transmission attempt and triggers a retransmission instead.
	PacketLost func(p *Packet, now sim.Cycle)
	// PacketRetried fires when a source network interface re-offers a
	// packet after a loss notification or retry timeout; p.Attempts has
	// already been incremented to the new attempt number.
	PacketRetried func(p *Packet, now sim.Cycle)
	// PacketAbandoned fires when a source exhausts its retry budget for a
	// packet; the packet's fate is resolved as undeliverable.
	PacketAbandoned func(p *Packet, now sim.Cycle)
	// PacketUnreachable fires when a source interface fails a packet fast
	// because no route to its destination exists over the surviving
	// topology (a hard fault disconnected the pair or killed one of its
	// endpoints). It resolves the packet's fate without burning the retry
	// budget; if the topology later heals, subsequent packets between the
	// pair flow again.
	PacketUnreachable func(p *Packet, now sim.Cycle)
	// CtrlFlitCorrupted fires when fault injection corrupts a control flit
	// on an inter-router control link; the flit is recovered by link-level
	// detection-and-retransmission, so the event costs latency but never
	// loses information.
	CtrlFlitCorrupted func(now sim.Cycle)
	// FlitCorrupted fires when a link bit error delivers a flit (data or
	// control) with damaged payload — corruption as delivery, not loss.
	FlitCorrupted func(now sim.Cycle)
	// CorruptionDetected fires when a receiver's modeled hop-level CRC
	// catches a corrupted flit; the flit is then discarded into the loss
	// path (flit reservation) or repaired by modeled link retransmission
	// (the baselines, which have no loss tolerance).
	CorruptionDetected func(now sim.Cycle)
	// CorruptionEscaped fires when corrupted payload reaches its
	// destination undetected by every hop CRC — the silent-corruption
	// event the end-to-end check exists to catch. It fires whether or not
	// the end-to-end check then rejects the packet.
	CorruptionEscaped func(p *Packet, now sim.Cycle)
	// Wedged fires when the network's no-progress watchdog trips: packets
	// are in flight, no recovery action is pending, and no flit has moved
	// for the configured number of cycles. The snapshot is a rendered
	// diagnostic naming the stalled routers and their control, buffer, and
	// reservation state.
	Wedged func(now sim.Cycle, snapshot string)
}

// Delivered invokes PacketDelivered if set.
func (h *Hooks) Delivered(p *Packet, now sim.Cycle) {
	if h != nil && h.PacketDelivered != nil {
		h.PacketDelivered(p, now)
	}
}

// Injected invokes FlitInjected if set.
func (h *Hooks) Injected(now sim.Cycle) {
	if h != nil && h.FlitInjected != nil {
		h.FlitInjected(now)
	}
}

// Ejected invokes FlitEjected if set.
func (h *Hooks) Ejected(now sim.Cycle) {
	if h != nil && h.FlitEjected != nil {
		h.FlitEjected(now)
	}
}

// Dropped invokes FlitDropped if set.
func (h *Hooks) Dropped(p *Packet, now sim.Cycle) {
	if h != nil && h.FlitDropped != nil {
		h.FlitDropped(p, now)
	}
}

// Lost invokes PacketLost if set.
func (h *Hooks) Lost(p *Packet, now sim.Cycle) {
	if h != nil && h.PacketLost != nil {
		h.PacketLost(p, now)
	}
}

// Retried invokes PacketRetried if set.
func (h *Hooks) Retried(p *Packet, now sim.Cycle) {
	if h != nil && h.PacketRetried != nil {
		h.PacketRetried(p, now)
	}
}

// Abandoned invokes PacketAbandoned if set.
func (h *Hooks) Abandoned(p *Packet, now sim.Cycle) {
	if h != nil && h.PacketAbandoned != nil {
		h.PacketAbandoned(p, now)
	}
}

// Unreachable invokes PacketUnreachable if set.
func (h *Hooks) Unreachable(p *Packet, now sim.Cycle) {
	if h != nil && h.PacketUnreachable != nil {
		h.PacketUnreachable(p, now)
	}
}

// CtrlCorrupted invokes CtrlFlitCorrupted if set.
func (h *Hooks) CtrlCorrupted(now sim.Cycle) {
	if h != nil && h.CtrlFlitCorrupted != nil {
		h.CtrlFlitCorrupted(now)
	}
}

// Corrupted invokes FlitCorrupted if set.
func (h *Hooks) Corrupted(now sim.Cycle) {
	if h != nil && h.FlitCorrupted != nil {
		h.FlitCorrupted(now)
	}
}

// CrcDetected invokes CorruptionDetected if set.
func (h *Hooks) CrcDetected(now sim.Cycle) {
	if h != nil && h.CorruptionDetected != nil {
		h.CorruptionDetected(now)
	}
}

// CorruptEscape invokes CorruptionEscaped if set.
func (h *Hooks) CorruptEscape(p *Packet, now sim.Cycle) {
	if h != nil && h.CorruptionEscaped != nil {
		h.CorruptionEscaped(p, now)
	}
}

// Wedge invokes Wedged if set.
func (h *Hooks) Wedge(now sim.Cycle, snapshot string) {
	if h != nil && h.Wedged != nil {
		h.Wedged(now, snapshot)
	}
}

// Network is the common surface the experiment harness drives. Both the
// flit-reservation network (internal/core) and the baseline networks
// (internal/vcrouter, internal/wormhole) implement it.
type Network interface {
	// Offer places a freshly generated packet in its source's injection
	// queue. The packet's Src field selects the queue.
	Offer(p *Packet)
	// Tick advances the whole network by one cycle.
	Tick(now sim.Cycle)
	// SourceQueueLen reports the total number of packets waiting in
	// source queues, the quantity whose stabilization ends warm-up.
	SourceQueueLen() int
	// InFlightPackets reports packets offered but not yet fully
	// delivered (including those still queued at sources).
	InFlightPackets() int
	// BufferUsage reports the number of occupied data-flit buffers and
	// the total data-flit buffer capacity across the given router's
	// input ports.
	BufferUsage(id topology.NodeID) (used, capacity int)
	// PoolUsage reports the occupancy and capacity of one input port's
	// buffer pool on the given router — the granularity at which
	// Section 4.2 of the paper tracks occupancy ("a specific buffer
	// pool of a router in the middle of the mesh").
	PoolUsage(id topology.NodeID, port topology.Port) (used, capacity int)
}
