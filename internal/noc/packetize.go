package noc

// TypeFor returns the flit type for position seq within a packet of length n.
func TypeFor(seq, n int) FlitType {
	switch {
	case n == 1:
		return HeadTailFlit
	case seq == 0:
		return HeadFlit
	case seq == n-1:
		return TailFlit
	default:
		return BodyFlit
	}
}

// DataFlits decomposes a packet into its data flits in sequence order. The
// virtual-channel and wormhole baselines use the Type field on the wire;
// the flit-reservation network ignores it.
func DataFlits(p *Packet) []DataFlit {
	if p.Len < 1 {
		panic("noc: packet must contain at least one data flit")
	}
	flits := make([]DataFlit, p.Len)
	for i := range flits {
		flits[i] = DataFlit{Packet: p, Seq: i, Attempt: p.Attempts, Type: TypeFor(i, p.Len)}
	}
	return flits
}

// ControlFlits builds the control-flit sequence for a packet under
// flit-reservation flow control, with each control flit leading up to d data
// flits (d=1 in the paper's measured configurations; Section 5 discusses
// wider control flits). The head flit carries the destination and leads the
// first min(d, Len) data flits; each subsequent body flit leads the next d.
// Arrival times are left zero; the source's injection scheduler fills them.
func ControlFlits(p *Packet, d int) []ControlFlit {
	if d < 1 {
		panic("noc: control flit must lead at least one data flit")
	}
	if p.Len < 1 {
		panic("noc: packet must contain at least one data flit")
	}
	n := (p.Len + d - 1) / d // number of control flits
	flits := make([]ControlFlit, 0, n)
	for i := 0; i < n; i++ {
		lo := i * d
		hi := lo + d
		if hi > p.Len {
			hi = p.Len
		}
		leads := make([]LeadEntry, 0, hi-lo)
		for seq := lo; seq < hi; seq++ {
			leads = append(leads, LeadEntry{Seq: seq})
		}
		cf := ControlFlit{Packet: p, Type: TypeFor(i, n), Attempt: p.Attempts, Leads: leads}
		if cf.Type.IsHead() {
			cf.Dst = p.Dst
		}
		flits = append(flits, cf)
	}
	return flits
}
