// Package noc defines the messages that travel through the simulated
// networks: data flits, control flits, credits, and packet descriptors.
// These types are shared by the flit-reservation router (internal/core) and
// the baseline routers (internal/vcrouter, internal/wormhole).
package noc

import (
	"fmt"

	"frfc/internal/sim"
	"frfc/internal/topology"
)

// FlitType distinguishes the position of a flit within its packet. Under
// virtual-channel and wormhole flow control every data flit carries a type
// tag (the t-bit field of Table 1); under flit-reservation flow control only
// control flits do.
type FlitType uint8

// Flit positions within a packet.
const (
	HeadFlit FlitType = iota
	BodyFlit
	TailFlit
	// HeadTailFlit marks the single flit of a one-flit packet.
	HeadTailFlit
)

// String returns a short name for the flit type.
func (t FlitType) String() string {
	switch t {
	case HeadFlit:
		return "head"
	case BodyFlit:
		return "body"
	case TailFlit:
		return "tail"
	case HeadTailFlit:
		return "head+tail"
	default:
		return fmt.Sprintf("FlitType(%d)", uint8(t))
	}
}

// IsHead reports whether the flit opens a packet.
func (t FlitType) IsHead() bool { return t == HeadFlit || t == HeadTailFlit }

// IsTail reports whether the flit closes a packet.
func (t FlitType) IsTail() bool { return t == TailFlit || t == HeadTailFlit }

// PacketID uniquely identifies a packet within a simulation run.
type PacketID uint64

// Packet describes a packet to be delivered: the unit the traffic generator
// produces and the statistics collector accounts. The network decomposes it
// into flits.
type Packet struct {
	ID        PacketID
	Src, Dst  topology.NodeID
	Len       int       // number of data flits
	CreatedAt sim.Cycle // when the source created it (start of latency span)
	Sampled   bool      // whether this packet belongs to the measurement sample

	// InjectedAt is stamped by the network interface when the packet's
	// first flit (data, or control under flit reservation) enters the
	// network; the span CreatedAt..InjectedAt is pure source queueing.
	// Under end-to-end retry it is re-stamped on each re-injection.
	InjectedAt sim.Cycle

	// Attempts counts end-to-end retransmissions: 0 on the first
	// injection, incremented by the source network interface each time the
	// packet is re-offered after a loss notification or retry timeout.
	Attempts int
}

// DataFlit is one flit of packet payload on the data network.
//
// Under flit-reservation flow control the router "never examines" a data
// flit: it is identified solely by its arrival time, and the identity fields
// below exist only so the simulator can verify that the pre-arranged schedule
// delivered the right payload to the right place (self-checking simulation).
// Under virtual-channel and wormhole flow control the Type and VC fields are
// genuinely carried on the wire (and charged as storage overhead in Table 1),
// and head flits carry the destination.
type DataFlit struct {
	Packet *Packet
	Seq    int // 0-based index within the packet
	// Attempt is the packet's end-to-end transmission attempt this flit
	// belongs to (0 = first try). It is stamped at packetization time so
	// stragglers of an earlier, partially lost attempt remain
	// distinguishable from a retry's flits at the destination.
	Attempt int

	// Fields carried on the wire only by the VC/wormhole baselines.
	Type FlitType
	VC   int

	// Corrupted marks payload damaged by a link bit error (sim.Pipe's
	// bit-error model). The flag is simulator bookkeeping for damage the
	// wire cannot announce: routers only learn of it through a modeled CRC
	// check, and an escape that reaches the destination uncaught is a
	// silent-corruption delivery.
	Corrupted bool
}

// String renders the flit for diagnostics.
func (f DataFlit) String() string {
	if f.Packet == nil {
		return "data(nil)"
	}
	return fmt.Sprintf("data(pkt=%d seq=%d/%d %s)", f.Packet.ID, f.Seq, f.Packet.Len, f.Type)
}

// LeadEntry is one data-flit announcement inside a control flit: the index of
// the data flit within its packet and the cycle at which it will arrive at
// the receiving router's input (the time stamp of Figure 2, rewritten hop by
// hop as departures are scheduled).
type LeadEntry struct {
	Seq     int
	Arrival sim.Cycle
}

// ControlFlit is one flit on the control network of flit-reservation flow
// control. A packet consists of one control head flit (carrying the
// destination) plus enough body flits that each data flit is led by exactly
// one entry; the final control flit is typed Tail (or HeadTail for packets
// whose control fits in one flit) so the control virtual channel can be
// released, exactly as in wormhole flow control.
type ControlFlit struct {
	Packet *Packet
	Type   FlitType
	VC     int             // control virtual channel id
	Dst    topology.NodeID // valid on head flits
	Leads  []LeadEntry     // up to d entries; d=1 in the paper's experiments
	// Attempt is the packet's end-to-end transmission attempt this control
	// flit announces (0 = first try); it flows into the destination's
	// reassembly schedule so retries are never confused with stragglers.
	Attempt int

	// Corrupted marks a control flit damaged by a link bit error. This is
	// the uniquely dangerous corruption under flit reservation: the flit's
	// arrival-time stamps are garbled, so a router that fails to detect it
	// installs reservations that no longer describe the real data stream
	// (phantom reservations). Each hop's modeled CRC gets a chance to catch
	// it; an escape is processed as if valid.
	Corrupted bool
}

// String renders the control flit for diagnostics.
func (c ControlFlit) String() string {
	if c.Packet == nil {
		return "ctrl(nil)"
	}
	return fmt.Sprintf("ctrl(pkt=%d %s vc=%d leads=%v)", c.Packet.ID, c.Type, c.VC, c.Leads)
}

// VCCredit is the credit returned upstream by a virtual-channel or wormhole
// router when a flit leaves an input buffer, freeing one slot of the given
// virtual channel's queue (or of the shared pool when pooled buffering is
// enabled — the VC field then identifies the queue the flit left for
// accounting only).
type VCCredit struct {
	VC int
}

// ReservationCredit is the credit returned upstream by a flit-reservation
// router: because reservations are made in advance, the credit announces the
// future cycle from which one more buffer of the sending input's pool will be
// free. The receiving output reservation table increments its free-buffer
// count from FreeFrom through the scheduling horizon.
//
// VC attributes the freed residency to the control virtual channel (of the
// link the credit travels against) whose packet put the flit there. The
// upstream scheduler uses this to maintain per-control-VC occupancy counts,
// which drive the buffer-reservation rule that keeps the shared pool from
// deadlocking the control network (see core's deadlock note).
type ReservationCredit struct {
	FreeFrom sim.Cycle
	VC       int
}
