package model

import (
	"math"
	"testing"

	"frfc/internal/experiment"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

func params8(l int, tp sim.Cycle, creditBufs int) Params {
	return Params{
		Mesh:       topology.NewMesh(8),
		PacketLen:  l,
		LinkDelay:  tp,
		LocalDelay: 1,
		CreditBufs: creditBufs,
	}
}

// TestPredictionArithmetic pins down the formulas on hand-computed points.
func TestPredictionArithmetic(t *testing.T) {
	p := params8(5, 4, 0)
	src, dst := topology.NodeID(0), topology.NodeID(63) // 14 hops
	if got := CutThrough(p, src, dst); got != 2+14*5+1+4 {
		t.Errorf("CutThrough corner = %v, want %v", got, 2+14*5+1+4)
	}
	if got := FlitReservation(p, src, dst); got != 1+2+14*4+4+1 {
		t.Errorf("FlitReservation corner = %v, want %v", got, 1+2+14*4+4+1)
	}
	// SAF, one hop (nodes 0 -> 1), L=5, tp=4:
	// tail into router: 4+1 = 5; router 0: +1+4 (decide+reserialize) +4
	// (link) = 14; router 1: +1+4 +1 (local) = 20.
	if got := StoreAndForward(p, 0, 1); got != 20 {
		t.Errorf("StoreAndForward 1 hop = %v, want 20", got)
	}
}

func TestCreditLoopStretchesSerialization(t *testing.T) {
	deep := params8(21, 4, 0)
	shallow := params8(21, 4, 4) // rtt 7 over 4 buffers: 1.75 cycles/flit
	src, dst := topology.NodeID(0), topology.NodeID(7)
	d := VirtualChannel(deep, src, dst)
	s := VirtualChannel(shallow, src, dst)
	if s <= d {
		t.Errorf("shallow buffers (%v) not slower than deep (%v)", s, d)
	}
	want := d + 20*(7.0/4-1)
	if math.Abs(s-want) > 1e-9 {
		t.Errorf("stretched prediction %v, want %v", s, want)
	}
}

// TestModelMatchesSimulator validates the closed forms against light-load
// measurements on the full 8x8 mesh: each prediction must land within a few
// cycles of the simulator (residual queueing at 2% load sits above the
// floor), and the cross-method ordering must agree exactly.
func TestModelMatchesSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("full-mesh light-load measurement")
	}
	type method struct {
		name      string
		predicted float64
		spec      experiment.Spec
	}
	p := params8(5, 4, 4)
	pFree := params8(5, 4, 0)
	methods := []method{
		{"FR6", MeanOverUniform(pFree, FlitReservation), experiment.FR6(experiment.FastControl, 5)},
		{"VC8", MeanOverUniform(p, VirtualChannel), experiment.VC8(experiment.FastControl, 5)},
		{"VCT", MeanOverUniform(pFree, CutThrough), experiment.PacketSwitchSpec("VCT2", experiment.CutThrough, experiment.FastControl, 2, 5)},
		{"SAF", MeanOverUniform(pFree, StoreAndForward), experiment.PacketSwitchSpec("SAF2", experiment.StoreForward, experiment.FastControl, 2, 5)},
	}
	for _, m := range methods {
		measured := experiment.BaseLatency(m.spec.Scaled(600, 800))
		diff := measured - m.predicted
		if diff < -1 || diff > 4 {
			t.Errorf("%s: measured %.1f vs predicted %.1f (diff %.1f outside [-1, +4])",
				m.name, measured, m.predicted, diff)
		}
	}
}

func TestMeanOverUniformAveragesPairs(t *testing.T) {
	// On a 2x2 mesh there are 12 ordered distinct pairs: 8 at 1 hop and
	// 4 at 2 hops, so mean hops = 4/3. A predictor returning the hop
	// count directly must average exactly that.
	p := Params{Mesh: topology.NewMesh(2), PacketLen: 1, LinkDelay: 1, LocalDelay: 1}
	got := MeanOverUniform(p, func(p Params, s, d topology.NodeID) float64 {
		return float64(p.Mesh.Hops(s, d))
	})
	if math.Abs(got-4.0/3.0) > 1e-12 {
		t.Fatalf("MeanOverUniform = %v, want 4/3", got)
	}
}

func TestFlitReservationAlwaysFastestPrediction(t *testing.T) {
	p := params8(5, 4, 4)
	for src := 0; src < 8; src++ {
		for dst := 56; dst < 64; dst++ {
			s, d := topology.NodeID(src), topology.NodeID(dst)
			fr := FlitReservation(p, s, d)
			for _, other := range []float64{VirtualChannel(p, s, d), CutThrough(p, s, d), StoreAndForward(p, s, d)} {
				if fr >= other {
					t.Fatalf("FR prediction %v not below %v for %d->%d", fr, other, s, d)
				}
			}
		}
	}
}
