// Package model provides closed-form, contention-free latency predictions
// for each flow-control method on a mesh, derived from the per-hop cost
// structure Section 2 of the paper lays out. The predictions serve two
// purposes: they document each method's latency anatomy in one place, and
// the test suite validates the simulator against them at near-zero load —
// a change that breaks either side fails loudly.
//
// All formulas express the latency of a single uncontended packet from
// creation at the source NI to last-flit ejection at the destination sink,
// using this repository's timing conventions:
//
//   - every router decision (routing/arbitration/scheduling) costs 1 cycle;
//   - data links take tp cycles, pipelined at one flit per cycle;
//   - injection and ejection traverse explicit local links of LocalDelay;
//   - a flit-reservation flit whose reserved departure equals its arrival
//     bypasses the router, so an uncontended FR hop costs exactly tp.
//
// Measurements at light (not strictly zero) load sit a cycle or two above
// these floors from residual queueing; the tests assert that envelope.
package model

import (
	"frfc/internal/sim"
	"frfc/internal/topology"
)

// Params describe the network a prediction is made for.
type Params struct {
	Mesh       topology.Mesh
	PacketLen  int       // L, data flits per packet
	LinkDelay  sim.Cycle // tp, cycles per inter-router link
	LocalDelay sim.Cycle // injection/ejection link delay

	// CreditBufs is the flit-buffer depth behind one credit loop (the
	// per-VC queue depth for VC/wormhole). When the credit round trip
	// exceeds CreditBufs cycles, a long packet cannot stream at one flit
	// per cycle and serialization stretches. Zero means unconstrained.
	CreditBufs int

	// CtrlDelay is the control-wire latency used by the circuit-switched
	// predictor (the probe/ack network); zero defaults to 1.
	CtrlDelay sim.Cycle
}

func (p Params) ctrlDelay() float64 {
	if p.CtrlDelay <= 0 {
		return 1
	}
	return float64(p.CtrlDelay)
}

// creditRTT is the buffer turnaround of Figure 1: departure, link,
// downstream decision, credit wire, credit processing.
func (p Params) creditRTT() sim.Cycle {
	return 1 + p.LinkDelay + 1 + 1
}

// interFlit is the steady-state spacing between consecutive flits of one
// packet on one virtual channel, in cycles: limited by the credit loop when
// the buffer pool behind it is shallow.
func (p Params) interFlit() float64 {
	if p.CreditBufs <= 0 {
		return 1
	}
	r := float64(p.creditRTT()) / float64(p.CreditBufs)
	if r < 1 {
		return 1
	}
	return r
}

func hops(p Params, src, dst topology.NodeID) sim.Cycle {
	return sim.Cycle(p.Mesh.Hops(src, dst))
}

// VirtualChannel predicts uncontended virtual-channel (and wormhole — they
// coincide without contention) latency:
//
//	2·local + h·(1 + tp) + 1 (ejection decision) + (L−1)·interFlit
func VirtualChannel(p Params, src, dst topology.NodeID) float64 {
	h := float64(hops(p, src, dst))
	head := 2*float64(p.LocalDelay) + h*float64(1+p.LinkDelay) + 1
	return head + float64(p.PacketLen-1)*p.interFlit()
}

// CutThrough predicts uncontended virtual cut-through latency: the header
// cuts through like wormhole, and packet-sized buffers never throttle the
// stream.
//
//	2·local + h·(1 + tp) + 1 + (L−1)
func CutThrough(p Params, src, dst topology.NodeID) float64 {
	h := float64(hops(p, src, dst))
	return 2*float64(p.LocalDelay) + h*float64(1+p.LinkDelay) + 1 + float64(p.PacketLen-1)
}

// StoreAndForward predicts uncontended store-and-forward latency: every one
// of the h+1 routers (and the source NI) re-serializes the whole packet, and
// each of the h links plus both local links is paid once by the tail.
//
//	tail = (L−1) + local                       leave the NI
//	     + (h+1)·(1 + L−1 + ...) per router: decide, re-serialize
//	     + h·tp + local                        link traversals
//
// which simplifies to 2·local + (h+2)·L + h·(tp+1) + 1 − (h+3) + ... — the
// code keeps the stepwise form for clarity.
func StoreAndForward(p Params, src, dst topology.NodeID) float64 {
	h := hops(p, src, dst)
	l := sim.Cycle(p.PacketLen)
	// Tail reaches the first router.
	t := l - 1 + p.LocalDelay
	// Each router waits for the tail, decides next cycle, then streams:
	// tail leaves L cycles after the decision starts, and rides the
	// next link (local for the last router).
	for i := sim.Cycle(0); i <= h; i++ {
		t += 1 + (l - 1)
		if i < h {
			t += p.LinkDelay
		} else {
			t += p.LocalDelay
		}
	}
	return float64(t)
}

// FlitReservation predicts uncontended flit-reservation latency with fast
// control wires: one injection-scheduling cycle, the local links, pure-tp
// bypass hops, and back-to-back serialization.
//
//	1 + 2·local + h·tp + (L−1) + 1
func FlitReservation(p Params, src, dst topology.NodeID) float64 {
	h := float64(hops(p, src, dst))
	return 1 + 2*float64(p.LocalDelay) + h*float64(p.LinkDelay) + float64(p.PacketLen-1) + 1
}

// CircuitSwitch predicts uncontended circuit-switched latency: a setup probe
// crosses h+1 control links from the NI plus one router decision each, the
// ack retraces the h+1 control links with no decisions, and only then do the
// data flits stream over the reserved, combinational path — so the data part
// is pure wire plus tail serialization.
//
//	(2h+2)·ctrl + (h+1) + 2·local + h·tp + (L−1)
func CircuitSwitch(p Params, src, dst topology.NodeID) float64 {
	h := float64(hops(p, src, dst))
	setup := (2*h+2)*p.ctrlDelay() + (h + 1)
	return setup + 2*float64(p.LocalDelay) + h*float64(p.LinkDelay) + float64(p.PacketLen-1)
}

// Breakdown splits a predicted contention-free latency across the waterfall
// stages of internal/waterfall (same order, same semantics). Each *Breakdown
// function mirrors its scalar predictor term by term, so the components sum
// exactly to the prediction — the analytic counterpart of the ledger's
// conservation guarantee, and what the cross-validation tests compare the
// measured stage means against.
type Breakdown struct {
	Queue, Reserve, Arb, Stall, Sched, Link, Drain float64
}

// Total sums the stages.
func (b Breakdown) Total() float64 {
	return b.Queue + b.Reserve + b.Arb + b.Stall + b.Sched + b.Link + b.Drain
}

// VirtualChannelBreakdown decomposes VirtualChannel: the h router decisions
// plus the ejection decision are arbitration, the wires (two local links and
// h data links) are link time, and tail serialization — possibly stretched by
// a shallow credit loop — is drain.
func VirtualChannelBreakdown(p Params, src, dst topology.NodeID) Breakdown {
	h := float64(hops(p, src, dst))
	return Breakdown{
		Arb:   h + 1,
		Link:  2*float64(p.LocalDelay) + h*float64(p.LinkDelay),
		Drain: float64(p.PacketLen-1) * p.interFlit(),
	}
}

// CutThroughBreakdown decomposes CutThrough: like wormhole for the head,
// with packet-sized buffers that never throttle the drain.
func CutThroughBreakdown(p Params, src, dst topology.NodeID) Breakdown {
	h := float64(hops(p, src, dst))
	return Breakdown{
		Arb:   h + 1,
		Link:  2*float64(p.LocalDelay) + h*float64(p.LinkDelay),
		Drain: float64(p.PacketLen - 1),
	}
}

// StoreAndForwardBreakdown decomposes StoreAndForward: at each of the h+1
// routers the head stalls L−1 cycles waiting for its own tail (a buffer
// stall by construction) and pays one decision cycle; wires and drain are as
// in cut-through.
func StoreAndForwardBreakdown(p Params, src, dst topology.NodeID) Breakdown {
	h := float64(hops(p, src, dst))
	l := float64(p.PacketLen)
	return Breakdown{
		Arb:   h + 1,
		Stall: (h + 1) * (l - 1),
		Link:  2*float64(p.LocalDelay) + h*float64(p.LinkDelay),
		Drain: l - 1,
	}
}

// FlitReservationBreakdown decomposes FlitReservation: one injection-
// scheduling cycle is the reservation cost, the destination router's
// scheduled ejection pass costs one cycle of wholesale residence, bypass
// hops are pure wire, and the tail streams back to back.
func FlitReservationBreakdown(p Params, src, dst topology.NodeID) Breakdown {
	h := float64(hops(p, src, dst))
	return Breakdown{
		Reserve: 1,
		Sched:   1,
		Link:    2*float64(p.LocalDelay) + h*float64(p.LinkDelay),
		Drain:   float64(p.PacketLen - 1),
	}
}

// CircuitSwitchBreakdown decomposes CircuitSwitch: the whole probe/ack round
// trip is reservation time, and the reserved path itself is pure wire plus
// drain.
func CircuitSwitchBreakdown(p Params, src, dst topology.NodeID) Breakdown {
	h := float64(hops(p, src, dst))
	return Breakdown{
		Reserve: (2*h+2)*p.ctrlDelay() + (h + 1),
		Link:    2*float64(p.LocalDelay) + h*float64(p.LinkDelay),
		Drain:   float64(p.PacketLen - 1),
	}
}

// MeanBreakdownOverUniform averages a stage decomposition over all ordered
// pairs of distinct nodes, stage by stage — the analytic counterpart of a
// uniform-random zero-load waterfall measurement.
func MeanBreakdownOverUniform(p Params, predict func(Params, topology.NodeID, topology.NodeID) Breakdown) Breakdown {
	var total Breakdown
	var pairs int64
	n := p.Mesh.N()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			b := predict(p, topology.NodeID(s), topology.NodeID(d))
			total.Queue += b.Queue
			total.Reserve += b.Reserve
			total.Arb += b.Arb
			total.Stall += b.Stall
			total.Sched += b.Sched
			total.Link += b.Link
			total.Drain += b.Drain
			pairs++
		}
	}
	f := float64(pairs)
	return Breakdown{
		Queue: total.Queue / f, Reserve: total.Reserve / f, Arb: total.Arb / f,
		Stall: total.Stall / f, Sched: total.Sched / f, Link: total.Link / f,
		Drain: total.Drain / f,
	}
}

// MeanOverUniform averages a predictor over all ordered pairs of distinct
// nodes — the analytic counterpart of a uniform-random zero-load latency
// measurement.
func MeanOverUniform(p Params, predict func(Params, topology.NodeID, topology.NodeID) float64) float64 {
	var total float64
	var pairs int64
	n := p.Mesh.N()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			total += predict(p, topology.NodeID(s), topology.NodeID(d))
			pairs++
		}
	}
	return total / float64(pairs)
}
