// Package traffic generates the synthetic workloads driving the simulator.
// The paper evaluates uniformly distributed traffic to random destinations
// injected by a constant-rate source; additional standard patterns
// (transpose, bit-complement, tornado, hotspot) and a Bernoulli process are
// provided for wider experimentation.
package traffic

import (
	"fmt"

	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

// Pattern chooses a destination for each generated packet.
type Pattern interface {
	// Dest returns the destination for a packet injected at src. It must
	// never return src itself.
	Dest(rng *sim.RNG, m topology.Mesh, src topology.NodeID) topology.NodeID
	// Name identifies the pattern in reports.
	Name() string
}

// Uniform sends every packet to a destination drawn uniformly from all other
// nodes — the workload of every experiment in the paper.
type Uniform struct{}

// Dest implements Pattern.
func (Uniform) Dest(rng *sim.RNG, m topology.Mesh, src topology.NodeID) topology.NodeID {
	d := topology.NodeID(rng.Intn(m.N() - 1))
	if d >= src {
		d++
	}
	return d
}

// Name implements Pattern.
func (Uniform) Name() string { return "uniform" }

// Transpose sends node (x, y) to node (y, x). Nodes on the diagonal, whose
// transpose is themselves, fall back to a uniform destination.
type Transpose struct{}

// Dest implements Pattern.
func (Transpose) Dest(rng *sim.RNG, m topology.Mesh, src topology.NodeID) topology.NodeID {
	c := m.Coord(src)
	d := m.ID(topology.Coord{X: c.Y, Y: c.X})
	if d == src {
		return Uniform{}.Dest(rng, m, src)
	}
	return d
}

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// BitComplement sends node (x, y) to (k−1−x, k−1−y).
type BitComplement struct{}

// Dest implements Pattern.
func (BitComplement) Dest(rng *sim.RNG, m topology.Mesh, src topology.NodeID) topology.NodeID {
	c := m.Coord(src)
	k := m.Radix()
	d := m.ID(topology.Coord{X: k - 1 - c.X, Y: k - 1 - c.Y})
	if d == src {
		return Uniform{}.Dest(rng, m, src)
	}
	return d
}

// Name implements Pattern.
func (BitComplement) Name() string { return "bitcomp" }

// Tornado sends node (x, y) halfway around each dimension: to
// ((x+⌈k/2⌉−1) mod k, y). On a mesh (no wraparound) this creates maximal
// link contention along rows.
type Tornado struct{}

// Dest implements Pattern.
func (Tornado) Dest(rng *sim.RNG, m topology.Mesh, src topology.NodeID) topology.NodeID {
	c := m.Coord(src)
	k := m.Radix()
	d := m.ID(topology.Coord{X: (c.X + (k+1)/2 - 1) % k, Y: c.Y})
	if d == src {
		return Uniform{}.Dest(rng, m, src)
	}
	return d
}

// Name implements Pattern.
func (Tornado) Name() string { return "tornado" }

// Neighbor sends node (x, y) to (x+1 mod k, y): nearest-neighbor traffic,
// the friendliest standard pattern.
type Neighbor struct{}

// Dest implements Pattern.
func (Neighbor) Dest(rng *sim.RNG, m topology.Mesh, src topology.NodeID) topology.NodeID {
	c := m.Coord(src)
	d := m.ID(topology.Coord{X: (c.X + 1) % m.Radix(), Y: c.Y})
	if d == src {
		return Uniform{}.Dest(rng, m, src)
	}
	return d
}

// Name implements Pattern.
func (Neighbor) Name() string { return "neighbor" }

// BitReverse sends node i to the node whose index is i's bit-reversal (over
// log2 N bits). Meaningful when the node count is a power of two; other
// radices fall back to uniform.
type BitReverse struct{}

// Dest implements Pattern.
func (BitReverse) Dest(rng *sim.RNG, m topology.Mesh, src topology.NodeID) topology.NodeID {
	n := m.N()
	if n&(n-1) != 0 {
		return Uniform{}.Dest(rng, m, src)
	}
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	rev := 0
	for b := 0; b < bits; b++ {
		if int(src)&(1<<b) != 0 {
			rev |= 1 << (bits - 1 - b)
		}
	}
	if rev == int(src) {
		return Uniform{}.Dest(rng, m, src)
	}
	return topology.NodeID(rev)
}

// Name implements Pattern.
func (BitReverse) Name() string { return "bitrev" }

// Shuffle sends node i to node (2i mod N-1) (perfect shuffle; node N-1 maps
// to itself and falls back to uniform), a classic adversary for low-diameter
// networks.
type Shuffle struct{}

// Dest implements Pattern.
func (Shuffle) Dest(rng *sim.RNG, m topology.Mesh, src topology.NodeID) topology.NodeID {
	n := m.N()
	if int(src) == n-1 {
		return Uniform{}.Dest(rng, m, src)
	}
	d := topology.NodeID((2 * int(src)) % (n - 1))
	if d == src {
		return Uniform{}.Dest(rng, m, src)
	}
	return d
}

// Name implements Pattern.
func (Shuffle) Name() string { return "shuffle" }

// Hotspot directs a fraction of traffic at a single hot node and the rest
// uniformly.
type Hotspot struct {
	Hot      topology.NodeID
	Fraction float64 // probability a packet targets Hot
}

// Dest implements Pattern.
func (h Hotspot) Dest(rng *sim.RNG, m topology.Mesh, src topology.NodeID) topology.NodeID {
	if src != h.Hot && rng.Bool(h.Fraction) {
		return h.Hot
	}
	return Uniform{}.Dest(rng, m, src)
}

// Name implements Pattern.
func (h Hotspot) Name() string { return fmt.Sprintf("hotspot(%d,%.2f)", h.Hot, h.Fraction) }

// Process decides, cycle by cycle, when a node generates a packet.
type Process interface {
	// Inject reports whether a new packet should be created at cycle now.
	Inject(rng *sim.RNG, now sim.Cycle) bool
	// Name identifies the process in reports.
	Name() string
}

// Bernoulli injects a packet each cycle with independent probability Rate
// (packets/cycle), giving geometric inter-arrival times.
type Bernoulli struct {
	Rate float64
}

// Inject implements Process.
func (b Bernoulli) Inject(rng *sim.RNG, now sim.Cycle) bool {
	return rng.Bool(b.Rate)
}

// Name implements Process.
func (b Bernoulli) Name() string { return fmt.Sprintf("bernoulli(%.4f)", b.Rate) }

// ConstantRate is the paper's "constant rate source": packets are generated
// at a fixed average rate with deterministic spacing, implemented as an
// accumulator so non-integral periods are honored exactly in the long run.
// Each node's accumulator starts at a random phase so sources across the
// network are not synchronized.
type ConstantRate struct {
	Rate float64 // packets per cycle

	phase   float64
	started bool
}

// Inject implements Process.
func (c *ConstantRate) Inject(rng *sim.RNG, now sim.Cycle) bool {
	if c.Rate <= 0 {
		return false
	}
	if !c.started {
		c.phase = rng.Float64()
		c.started = true
	}
	c.phase += c.Rate
	if c.phase >= 1 {
		c.phase -= 1
		return true
	}
	return false
}

// Name implements Process.
func (c *ConstantRate) Name() string { return fmt.Sprintf("constant(%.4f)", c.Rate) }

// Generator produces the packet stream for one node.
type Generator struct {
	mesh    topology.Mesh
	src     topology.NodeID
	pattern Pattern
	process Process
	rng     *sim.RNG
	pktLen  int
	nextID  func() noc.PacketID
}

// NewGenerator returns a per-node packet generator. nextID must hand out
// globally unique packet IDs (the network assembly shares one counter across
// all generators).
func NewGenerator(m topology.Mesh, src topology.NodeID, pat Pattern, proc Process, rng *sim.RNG, pktLen int, nextID func() noc.PacketID) *Generator {
	if pktLen < 1 {
		panic("traffic: packet length must be at least 1 flit")
	}
	if nextID == nil {
		panic("traffic: nextID must not be nil")
	}
	return &Generator{mesh: m, src: src, pattern: pat, process: proc, rng: rng, pktLen: pktLen, nextID: nextID}
}

// Generate returns a new packet if the injection process fires at cycle now,
// or nil.
func (g *Generator) Generate(now sim.Cycle) *noc.Packet {
	if !g.process.Inject(g.rng, now) {
		return nil
	}
	return &noc.Packet{
		ID:        g.nextID(),
		Src:       g.src,
		Dst:       g.pattern.Dest(g.rng, g.mesh, g.src),
		Len:       g.pktLen,
		CreatedAt: now,
	}
}

// PacketRateFor converts an offered load expressed as a fraction of network
// capacity into a per-node packet injection rate (packets/cycle), given the
// mesh and packet length: load × capacity(flits/cycle) ÷ packet length.
func PacketRateFor(m topology.Mesh, load float64, pktLen int) float64 {
	return load * m.CapacityPerNode() / float64(pktLen)
}
