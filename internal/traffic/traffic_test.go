package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

func allPatterns() []Pattern {
	return []Pattern{
		Uniform{},
		Transpose{},
		BitComplement{},
		Tornado{},
		Hotspot{Hot: 5, Fraction: 0.3},
		Neighbor{},
		BitReverse{},
		Shuffle{},
	}
}

// TestPatternsNeverSelfAddress: no pattern may return the source itself.
func TestPatternsNeverSelfAddress(t *testing.T) {
	m := topology.NewMesh(8)
	rng := sim.NewRNG(3)
	for _, p := range allPatterns() {
		for src := 0; src < m.N(); src++ {
			for i := 0; i < 20; i++ {
				if d := p.Dest(rng, m, topology.NodeID(src)); d == topology.NodeID(src) {
					t.Fatalf("%s returned the source %d as destination", p.Name(), src)
				}
			}
		}
	}
}

func TestPatternsStayOnMesh(t *testing.T) {
	m := topology.NewMesh(4)
	rng := sim.NewRNG(9)
	f := func(srcRaw uint8, which uint8) bool {
		p := allPatterns()[int(which)%len(allPatterns())]
		src := topology.NodeID(int(srcRaw) % m.N())
		d := p.Dest(rng, m, src)
		return int(d) >= 0 && int(d) < m.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformCoversAllDestinations(t *testing.T) {
	m := topology.NewMesh(4)
	rng := sim.NewRNG(17)
	counts := make([]int, m.N())
	const trials = 30000
	for i := 0; i < trials; i++ {
		counts[Uniform{}.Dest(rng, m, 3)]++
	}
	if counts[3] != 0 {
		t.Fatal("uniform pattern picked the source")
	}
	want := trials / (m.N() - 1)
	for id, c := range counts {
		if id == 3 {
			continue
		}
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("destination %d drawn %d times, want ~%d", id, c, want)
		}
	}
}

func TestTransposeMapsCoordinates(t *testing.T) {
	m := topology.NewMesh(4)
	rng := sim.NewRNG(1)
	src := m.ID(topology.Coord{X: 1, Y: 3})
	want := m.ID(topology.Coord{X: 3, Y: 1})
	if got := (Transpose{}).Dest(rng, m, src); got != want {
		t.Fatalf("transpose of (1,3) = node %d, want %d", got, want)
	}
}

func TestBitComplementMapsCoordinates(t *testing.T) {
	m := topology.NewMesh(4)
	rng := sim.NewRNG(1)
	src := m.ID(topology.Coord{X: 0, Y: 1})
	want := m.ID(topology.Coord{X: 3, Y: 2})
	if got := (BitComplement{}).Dest(rng, m, src); got != want {
		t.Fatalf("bit complement of (0,1) = node %d, want %d", got, want)
	}
}

func TestHotspotFraction(t *testing.T) {
	m := topology.NewMesh(4)
	rng := sim.NewRNG(23)
	h := Hotspot{Hot: 0, Fraction: 0.5}
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if h.Dest(rng, m, 9) == 0 {
			hits++
		}
	}
	frac := float64(hits) / trials
	// 0.5 directed plus uniform spillover (1/15 of the other half).
	want := 0.5 + 0.5/15
	if math.Abs(frac-want) > 0.03 {
		t.Fatalf("hotspot hit rate %.3f, want ~%.3f", frac, want)
	}
}

func TestConstantRateAchievesRate(t *testing.T) {
	rng := sim.NewRNG(31)
	for _, rate := range []float64{0.01, 0.1, 0.33, 0.5} {
		p := &ConstantRate{Rate: rate}
		fired := 0
		const cycles = 50000
		for now := sim.Cycle(0); now < cycles; now++ {
			if p.Inject(rng, now) {
				fired++
			}
		}
		got := float64(fired) / cycles
		if math.Abs(got-rate) > rate*0.02+0.0005 {
			t.Fatalf("constant rate %.3f produced %.4f packets/cycle", rate, got)
		}
	}
}

func TestConstantRateIsSmooth(t *testing.T) {
	// Inter-arrival gaps of a constant-rate source at rate 0.25 must be
	// exactly 4 cycles (after the random phase).
	rng := sim.NewRNG(7)
	p := &ConstantRate{Rate: 0.25}
	var arrivals []sim.Cycle
	for now := sim.Cycle(0); now < 1000; now++ {
		if p.Inject(rng, now) {
			arrivals = append(arrivals, now)
		}
	}
	for i := 2; i < len(arrivals); i++ {
		if gap := arrivals[i] - arrivals[i-1]; gap != 4 {
			t.Fatalf("gap %d between arrivals %d and %d, want 4", gap, i-1, i)
		}
	}
}

func TestBernoulliAchievesRate(t *testing.T) {
	rng := sim.NewRNG(41)
	p := Bernoulli{Rate: 0.2}
	fired := 0
	const cycles = 50000
	for now := sim.Cycle(0); now < cycles; now++ {
		if p.Inject(rng, now) {
			fired++
		}
	}
	got := float64(fired) / cycles
	if math.Abs(got-0.2) > 0.01 {
		t.Fatalf("bernoulli 0.2 produced %.4f packets/cycle", got)
	}
}

func TestGeneratorProducesValidPackets(t *testing.T) {
	m := topology.NewMesh(4)
	var next noc.PacketID
	gen := NewGenerator(m, 5, Uniform{}, Bernoulli{Rate: 0.5}, sim.NewRNG(2), 7,
		func() noc.PacketID { next++; return next })
	seen := map[noc.PacketID]bool{}
	for now := sim.Cycle(0); now < 400; now++ {
		p := gen.Generate(now)
		if p == nil {
			continue
		}
		if p.Src != 5 || p.Dst == 5 || p.Len != 7 || p.CreatedAt != now {
			t.Fatalf("bad packet %+v", p)
		}
		if seen[p.ID] {
			t.Fatalf("duplicate packet ID %d", p.ID)
		}
		seen[p.ID] = true
	}
	if len(seen) == 0 {
		t.Fatal("generator produced nothing at rate 0.5")
	}
}

func TestPacketRateFor(t *testing.T) {
	m := topology.NewMesh(8)
	// 100% of capacity, 5-flit packets: 0.5 flits/cycle / 5 = 0.1 pkt/cycle.
	if got := PacketRateFor(m, 1.0, 5); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("PacketRateFor = %v, want 0.1", got)
	}
}

func TestBitReverseMapsIndices(t *testing.T) {
	m := topology.NewMesh(4) // 16 nodes, 4 bits
	rng := sim.NewRNG(1)
	// 0b0001 -> 0b1000 = 8
	if got := (BitReverse{}).Dest(rng, m, 1); got != 8 {
		t.Fatalf("bit reverse of 1 = %d, want 8", got)
	}
	// 0b0110 -> 0b0110 = self: falls back to uniform (not self).
	if got := (BitReverse{}).Dest(rng, m, 6); got == 6 {
		t.Fatal("bit-reverse fixed point returned itself")
	}
}

func TestShuffleMapsIndices(t *testing.T) {
	m := topology.NewMesh(4)
	rng := sim.NewRNG(1)
	// 2*5 mod 15 = 10.
	if got := (Shuffle{}).Dest(rng, m, 5); got != 10 {
		t.Fatalf("shuffle of 5 = %d, want 10", got)
	}
}

func TestNeighborIsAdjacent(t *testing.T) {
	m := topology.NewMesh(4)
	rng := sim.NewRNG(1)
	for src := 0; src < m.N(); src++ {
		d := (Neighbor{}).Dest(rng, m, topology.NodeID(src))
		if m.Hops(topology.NodeID(src), d) > 3 {
			t.Fatalf("neighbor destination %d is %d hops from %d", d, m.Hops(topology.NodeID(src), d), src)
		}
	}
}
