package stats

import (
	"math"
	"testing"
)

func TestWilsonCI95Basics(t *testing.T) {
	// Degenerate inputs: no trials means no information.
	if lo, hi := WilsonCI95(0, 0); lo != 0 || hi != 1 {
		t.Fatalf("n=0 gave [%g, %g], want [0, 1]", lo, hi)
	}

	// k = 0 must still have positive width (the rule-of-three regime), and
	// k = n must not reach past 1.
	lo, hi := WilsonCI95(0, 400)
	if lo != 0 || hi <= 0 || hi > 0.02 {
		t.Fatalf("0/400 gave [%g, %g], want [0, ~0.0095]", lo, hi)
	}
	lo, hi = WilsonCI95(400, 400)
	if hi != 1 || lo >= 1 || lo < 0.98 {
		t.Fatalf("400/400 gave [%g, %g], want [~0.990, 1]", lo, hi)
	}

	// A textbook cell: 10/100 → Wilson [0.0552, 0.1744].
	lo, hi = WilsonCI95(10, 100)
	if math.Abs(lo-0.0552) > 5e-4 || math.Abs(hi-0.1744) > 5e-4 {
		t.Fatalf("10/100 gave [%g, %g], want [0.0552, 0.1744]", lo, hi)
	}

	// The interval always contains the point estimate and is ordered.
	for _, c := range []struct{ k, n int64 }{{0, 1}, {1, 1}, {1, 400}, {3, 400}, {200, 400}} {
		lo, hi := WilsonCI95(c.k, c.n)
		p := float64(c.k) / float64(c.n)
		if !(lo <= p && p <= hi) || lo > hi {
			t.Fatalf("%d/%d: p=%g outside [%g, %g]", c.k, c.n, p, lo, hi)
		}
	}

	// Width shrinks as n grows at fixed p.
	_, hiSmall := WilsonCI95(5, 100)
	loSmall, _ := WilsonCI95(5, 100)
	loBig, hiBig := WilsonCI95(50, 1000)
	if hiBig-loBig >= hiSmall-loSmall {
		t.Fatalf("interval did not narrow with n: n=100 width %g, n=1000 width %g",
			hiSmall-loSmall, hiBig-loBig)
	}
}
