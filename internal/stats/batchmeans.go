package stats

import "math"

// tCrit95 holds two-sided 95% Student-t critical values for 1..30 degrees of
// freedom. Beyond 30 degrees the t distribution is within ~1.5% of the
// normal, and the table gives way to 1.96.
var tCrit95 = [31]float64{
	0, // df 0 is meaningless; guarded by callers
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCrit95 reports the two-sided 95% Student-t critical value for df degrees
// of freedom: an exact table lookup up to df=30, 1.96 beyond (where the
// normal approximation is accurate), and 0 for df < 1 (no interval exists).
func TCrit95(df int) float64 {
	switch {
	case df < 1:
		return 0
	case df <= 30:
		return tCrit95[df]
	default:
		return 1.96
	}
}

// DefaultBatches is the batch count BatchMeans aims for: around 30 batches is
// the classic compromise between enough degrees of freedom for a stable t
// interval and batches long enough to swallow the autocorrelation.
const DefaultBatches = 30

// BatchMeans retains a sequence of observations in arrival order and computes
// a non-overlapping batch-means confidence interval on the mean. Successive
// packet latencies out of one simulation are strongly positively correlated
// (they queue behind each other), so the i.i.d. interval t·s/√n is far too
// optimistic; grouping the sequence into k long batches and treating the
// batch means as the (approximately independent) sample restores an honest
// interval. Memory is one float64 per observation.
type BatchMeans struct {
	xs []float64
}

// Add appends one observation. Order matters: batching only de-correlates a
// sequence when batches are contiguous runs of it.
func (b *BatchMeans) Add(x float64) { b.xs = append(b.xs, x) }

// N reports the number of observations.
func (b *BatchMeans) N() int { return len(b.xs) }

// CI95 reports the half-width of the 95% batch-means confidence interval on
// the mean, using at most the requested number of non-overlapping batches
// (<= 0 means DefaultBatches), along with the batch count actually used.
// With fewer than 4 observations — or fewer than 2 per batch after shrinking
// the batch count to the data — no meaningful interval exists and it reports
// (0, 0). Trailing observations that do not fill the final batch are dropped,
// as is conventional.
func (b *BatchMeans) CI95(batches int) (half float64, used int) {
	if batches <= 0 {
		batches = DefaultBatches
	}
	n := len(b.xs)
	if n < 4 {
		return 0, 0
	}
	if batches > n/2 {
		batches = n / 2 // at least 2 observations per batch
	}
	size := n / batches
	var means Welford
	for i := 0; i < batches; i++ {
		sum := 0.0
		for _, x := range b.xs[i*size : (i+1)*size] {
			sum += x
		}
		means.Add(sum / float64(size))
	}
	return TCrit95(batches-1) * means.StdDev() / math.Sqrt(float64(batches)), batches
}

// Lag1 estimates the lag-1 autocorrelation of the sequence: the correlation
// between consecutive observations, in [-1, 1]. Values near zero mean the
// i.i.d. CI95 can be trusted; strongly positive values (typical of queueing
// systems) mean it understates the real uncertainty and the batch-means
// interval should be reported instead. Returns 0 with fewer than 2
// observations or zero variance.
func (b *BatchMeans) Lag1() float64 {
	n := len(b.xs)
	if n < 2 {
		return 0
	}
	mean := 0.0
	for _, x := range b.xs {
		mean += x
	}
	mean /= float64(n)
	var num, den float64
	for i, x := range b.xs {
		d := x - mean
		den += d * d
		if i+1 < n {
			num += d * (b.xs[i+1] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Lag1Significant reports whether the estimated lag-1 autocorrelation is
// statistically distinguishable from zero at roughly the 95% level, using the
// large-sample bound |r| > 2/√n. When it is positive and significant, the
// naive i.i.d. confidence interval is untrustworthy.
func (b *BatchMeans) Lag1Significant() bool {
	n := len(b.xs)
	if n < 8 {
		return false // too little data to call either way
	}
	return math.Abs(b.Lag1()) > 2/math.Sqrt(float64(n))
}
