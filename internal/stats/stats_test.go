package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"frfc/internal/sim"
)

// TestWelfordMatchesDirectComputation: the online mean/variance must agree
// with the two-pass formulas on arbitrary inputs.
func TestWelfordMatchesDirectComputation(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		var xs []float64
		for _, v := range raw {
			x := float64(v)
			w.Add(x)
			xs = append(xs, x)
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		varSum := 0.0
		for _, x := range xs {
			varSum += (x - mean) * (x - mean)
		}
		variance := varSum / float64(len(xs)-1)
		return math.Abs(w.Mean()-mean) < 1e-6*(1+math.Abs(mean)) &&
			math.Abs(w.Variance()-variance) < 1e-6*(1+variance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.CI95() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Variance() != 0 {
		t.Fatal("single sample mishandled")
	}
}

func TestCI95ShrinksWithSamples(t *testing.T) {
	var small, large Welford
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 5))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 5))
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: %v (n=1000) vs %v (n=10)", large.CI95(), small.CI95())
	}
}

func TestLatencyStats(t *testing.T) {
	s := NewLatencyStats()
	if s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty stats min/max not zero")
	}
	for _, l := range []sim.Cycle{30, 10, 50, 20} {
		s.Record(l)
	}
	if s.N() != 4 || s.Min() != 10 || s.Max() != 50 {
		t.Fatalf("n/min/max = %d/%d/%d", s.N(), s.Min(), s.Max())
	}
	if math.Abs(s.Mean()-27.5) > 1e-9 {
		t.Fatalf("mean = %v, want 27.5", s.Mean())
	}
}

func TestThroughputWindow(t *testing.T) {
	var tp Throughput
	tp.CountEjected(5) // before the window opens: ignored
	tp.Open(100)
	for i := 0; i < 10; i++ {
		tp.CountEjected(2)
	}
	tp.CountInjected(30)
	tp.Close(150)
	tp.CountEjected(5) // after close: ignored
	if tp.Ejected() != 20 || tp.Injected() != 30 {
		t.Fatalf("ejected/injected = %d/%d, want 20/30", tp.Ejected(), tp.Injected())
	}
	if got := tp.AcceptedFlitsPerCycle(); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("accepted = %v flits/cycle, want 0.4", got)
	}
}

func TestThroughputZeroWindow(t *testing.T) {
	var tp Throughput
	tp.Open(5)
	tp.Close(5)
	if tp.AcceptedFlitsPerCycle() != 0 {
		t.Fatal("zero-length window should report zero throughput")
	}
}

func TestOccupancy(t *testing.T) {
	o := NewOccupancy(4)
	if o.FullFraction() != 0 || o.MeanOccupancy() != 0 {
		t.Fatal("empty occupancy not zero")
	}
	for _, u := range []int{4, 2, 4, 0} {
		o.Observe(u)
	}
	if got := o.FullFraction(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("full fraction = %v, want 0.5", got)
	}
	if got := o.MeanOccupancy(); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("mean occupancy = %v, want 2.5", got)
	}
}

func TestStabilizerDetectsSteadyState(t *testing.T) {
	s := NewStabilizer(10, 0.05)
	// Growing queue: never stable.
	q := 0
	for i := 0; i < 100; i++ {
		q += 3
		s.Observe(q)
	}
	if s.Stable() {
		t.Fatal("stabilizer declared a linearly growing queue stable")
	}
	// Constant queue: stable after two windows.
	s = NewStabilizer(10, 0.05)
	for i := 0; i < 25; i++ {
		s.Observe(40)
	}
	if !s.Stable() {
		t.Fatal("stabilizer did not recognize a constant queue")
	}
}

func TestStabilizerToleratesEmptyQueues(t *testing.T) {
	s := NewStabilizer(5, 0.05)
	for i := 0; i < 20; i++ {
		s.Observe(0)
	}
	if !s.Stable() {
		t.Fatal("all-empty queues should count as stable")
	}
}

func TestStabilizerRejectsBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStabilizer(0, ...) did not panic")
		}
	}()
	NewStabilizer(0, 0.1)
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for v := sim.Cycle(1); v <= 100; v++ {
		h.Add(v)
	}
	cases := []struct {
		q    float64
		want sim.Cycle
	}{{0.01, 1}, {0.50, 50}, {0.95, 95}, {1.0, 100}}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if h.N() != 100 {
		t.Errorf("N = %d", h.N())
	}
}

func TestHistogramQuantileMatchesSortProperty(t *testing.T) {
	f := func(raw []uint8, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		q := (float64(qRaw%100) + 1) / 100
		var h Histogram
		var xs []int
		for _, v := range raw {
			h.Add(sim.Cycle(v))
			xs = append(xs, int(v))
		}
		sort.Ints(xs)
		need := int(q * float64(len(xs)))
		if need < 1 {
			need = 1
		}
		want := sim.Cycle(xs[need-1])
		return h.Quantile(q) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty quantile did not panic")
			}
		}()
		h.Quantile(0.5)
	}()
	h.Add(0)
	if h.Quantile(0.5) != 0 {
		t.Error("single zero sample quantile wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative sample did not panic")
			}
		}()
		h.Add(-1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("q=0 did not panic")
			}
		}()
		h.Quantile(0)
	}()
}

func TestLatencyStatsQuantiles(t *testing.T) {
	s := NewLatencyStats()
	if s.Quantile(0.5) != 0 {
		t.Error("empty latency quantile not 0")
	}
	for _, l := range []sim.Cycle{10, 20, 30, 40} {
		s.Record(l)
	}
	if got := s.Quantile(0.5); got != 20 {
		t.Errorf("P50 = %d, want 20", got)
	}
	if got := s.Quantile(1.0); got != 40 {
		t.Errorf("P100 = %d, want 40", got)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Add(42)
	for _, q := range []float64{0.001, 0.5, 1.0} {
		if got := h.Quantile(q); got != 42 {
			t.Errorf("Quantile(%v) = %d, want 42", q, got)
		}
	}
	if h.N() != 1 {
		t.Errorf("N = %d, want 1", h.N())
	}
}

func TestHistogramAllEqual(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Add(7)
	}
	for _, q := range []float64{0.001, 0.25, 0.5, 0.99, 1.0} {
		if got := h.Quantile(q); got != 7 {
			t.Errorf("Quantile(%v) = %d, want 7", q, got)
		}
	}
}

func TestHistogramQuantileAboveOnePanics(t *testing.T) {
	var h Histogram
	h.Add(1)
	defer func() {
		if recover() == nil {
			t.Error("q>1 did not panic")
		}
	}()
	h.Quantile(1.5)
}

// TestLatencyStatsQuantileClamps: unlike the raw Histogram, the public
// latency accumulator clamps out-of-range q instead of panicking, so a
// caller-computed quantile that lands on 0 or drifts past 1 in floating
// point can't take down a run.
func TestLatencyStatsQuantileClamps(t *testing.T) {
	s := NewLatencyStats()
	if s.Quantile(0) != 0 || s.Quantile(-1) != 0 || s.Quantile(2) != 0 {
		t.Fatal("empty stats out-of-range quantile not 0")
	}
	for _, l := range []sim.Cycle{10, 20, 30, 40} {
		s.Record(l)
	}
	if got := s.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %d, want min 10", got)
	}
	if got := s.Quantile(-0.5); got != 10 {
		t.Errorf("Quantile(-0.5) = %d, want min 10", got)
	}
	if got := s.Quantile(1.0000001); got != 40 {
		t.Errorf("Quantile(>1) = %d, want max 40", got)
	}
}

func TestLatencyStatsSingleAndAllEqual(t *testing.T) {
	s := NewLatencyStats()
	s.Record(33)
	if s.Quantile(0.5) != 33 || s.Min() != 33 || s.Max() != 33 {
		t.Fatal("single sample quantile/min/max wrong")
	}
	if s.CI95() != 0 {
		t.Fatalf("single sample CI95 = %v, want 0", s.CI95())
	}
	eq := NewLatencyStats()
	for i := 0; i < 500; i++ {
		eq.Record(12)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := eq.Quantile(q); got != 12 {
			t.Errorf("all-equal Quantile(%v) = %d, want 12", q, got)
		}
	}
	if ci := eq.CI95(); ci != 0 || math.IsNaN(ci) {
		t.Errorf("all-equal CI95 = %v, want exactly 0", ci)
	}
}

// TestWelfordVarianceNeverNegative: near-constant data can push the m2
// accumulator fractionally below zero through cancellation; Variance and
// StdDev must clamp rather than emit NaN.
func TestWelfordVarianceNeverNegative(t *testing.T) {
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(1e9 + 0.1)
	}
	if v := w.Variance(); v < 0 || math.IsNaN(v) {
		t.Fatalf("variance = %v, want >= 0", v)
	}
	if sd := w.StdDev(); math.IsNaN(sd) {
		t.Fatalf("stddev = %v, want a number", sd)
	}
	if ci := w.CI95(); math.IsNaN(ci) || math.IsInf(ci, 0) {
		t.Fatalf("CI95 = %v, want finite", ci)
	}
	w.m2 = -1e-9 // force the pathological case directly
	if v := w.Variance(); v != 0 {
		t.Fatalf("clamped variance = %v, want 0", v)
	}
}

func TestOccupancyZeroCapacity(t *testing.T) {
	o := NewOccupancy(0)
	for i := 0; i < 10; i++ {
		o.Observe(0)
	}
	if got := o.FullFraction(); got != 0 {
		t.Fatalf("zero-capacity pool full fraction = %v, want 0", got)
	}
	if got := o.MeanOccupancy(); got != 0 {
		t.Fatalf("zero-capacity pool mean occupancy = %v, want 0", got)
	}
}

func TestRetryLatencySeparatesPaths(t *testing.T) {
	r := NewRetryLatency()
	r.Record(10, 0)
	r.Record(20, 0)
	r.Record(200, 1)
	r.Record(400, 3)
	if n := r.FirstTry().N(); n != 2 {
		t.Fatalf("first-try N = %d, want 2", n)
	}
	if n := r.Retried().N(); n != 2 {
		t.Fatalf("retried N = %d, want 2", n)
	}
	if m := r.FirstTry().Mean(); m != 15 {
		t.Errorf("first-try mean = %v, want 15", m)
	}
	if m := r.Retried().Mean(); m != 300 {
		t.Errorf("retried mean = %v, want 300", m)
	}
}

// TestCI95UsesStudentT: for small n the half-width must carry the Student-t
// critical value, not the normal 1.96 — at n=2 the difference is ~6.5×.
func TestCI95UsesStudentT(t *testing.T) {
	var w Welford
	w.Add(0)
	w.Add(10)
	// n=2: s = 7.0710678, t(1) = 12.706 → half-width = 12.706·s/√2 = 63.53.
	want := 12.706 * w.StdDev() / math.Sqrt(2)
	if got := w.CI95(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("CI95 at n=2 = %v, want %v (Student-t)", got, want)
	}
	if normal := 1.96 * w.StdDev() / math.Sqrt(2); w.CI95() < 6*normal {
		t.Fatalf("CI95 at n=2 = %v barely above normal approximation %v", w.CI95(), normal)
	}
	// Large n: t converges to 1.96.
	var big Welford
	for i := 0; i < 1000; i++ {
		big.Add(float64(i % 7))
	}
	want = 1.96 * big.StdDev() / math.Sqrt(1000)
	if got := big.CI95(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("CI95 at n=1000 = %v, want normal-regime %v", got, want)
	}
}

func TestTCrit95Table(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{{0, 0}, {-3, 0}, {1, 12.706}, {2, 4.303}, {10, 2.228}, {30, 2.042}, {31, 1.96}, {100000, 1.96}}
	for _, c := range cases {
		if got := TCrit95(c.df); got != c.want {
			t.Errorf("TCrit95(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	// The table must decrease monotonically toward the normal value.
	for df := 2; df <= 30; df++ {
		if TCrit95(df) >= TCrit95(df-1) {
			t.Errorf("TCrit95 not decreasing at df=%d", df)
		}
		if TCrit95(df) < 1.96 {
			t.Errorf("TCrit95(%d) = %v below the normal limit", df, TCrit95(df))
		}
	}
}

// TestBatchMeansIIDAgreement: on genuinely independent data the batch-means
// interval and the i.i.d. interval must agree to well within 2× — batching
// loses degrees of freedom but estimates the same variance.
func TestBatchMeansIIDAgreement(t *testing.T) {
	var bm BatchMeans
	var w Welford
	rng := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 3000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		x := float64(rng>>33) / float64(1<<31) // uniform [0,1)
		bm.Add(x)
		w.Add(x)
	}
	half, used := bm.CI95(30)
	if used != 30 {
		t.Fatalf("used %d batches, want 30", used)
	}
	iid := w.CI95()
	if half <= 0 || half > 2*iid || iid > 2*half {
		t.Fatalf("batch-means CI %v disagrees with i.i.d. CI %v on independent data", half, iid)
	}
	if bm.Lag1Significant() {
		t.Fatalf("independent data flagged as autocorrelated (lag1=%v)", bm.Lag1())
	}
}

// TestBatchMeansWidensOnCorrelatedData: on a strongly autocorrelated sequence
// the i.i.d. interval is far too narrow; batch means must report a wider,
// honest one and the lag-1 estimate must flag the sequence.
func TestBatchMeansWidensOnCorrelatedData(t *testing.T) {
	var bm BatchMeans
	var w Welford
	rng := uint64(12345)
	x := 0.0
	for i := 0; i < 3000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		noise := float64(rng>>33)/float64(1<<31) - 0.5
		x = 0.98*x + noise // AR(1), lag-1 autocorrelation ~0.98
		bm.Add(x)
		w.Add(x)
	}
	if r := bm.Lag1(); r < 0.9 {
		t.Fatalf("lag-1 estimate %v, want ~0.98", r)
	}
	if !bm.Lag1Significant() {
		t.Fatal("strong autocorrelation not flagged")
	}
	half, _ := bm.CI95(30)
	if iid := w.CI95(); half < 2*iid {
		t.Fatalf("batch-means CI %v not meaningfully wider than i.i.d. %v on AR(1) data", half, iid)
	}
}

func TestBatchMeansEdgeCases(t *testing.T) {
	var bm BatchMeans
	if half, used := bm.CI95(30); half != 0 || used != 0 {
		t.Fatal("empty batch means produced an interval")
	}
	if bm.Lag1() != 0 || bm.Lag1Significant() {
		t.Fatal("empty batch means produced a lag-1 estimate")
	}
	for i := 0; i < 3; i++ {
		bm.Add(1)
	}
	if half, used := bm.CI95(30); half != 0 || used != 0 {
		t.Fatal("3 observations produced an interval")
	}
	// 10 observations, 30 requested: shrink to 5 batches of 2.
	bm = BatchMeans{}
	for i := 0; i < 10; i++ {
		bm.Add(float64(i))
	}
	if _, used := bm.CI95(30); used != 5 {
		t.Fatalf("used %d batches on 10 observations, want 5", used)
	}
	// Constant data: zero-width interval, no NaN.
	bm = BatchMeans{}
	for i := 0; i < 100; i++ {
		bm.Add(7)
	}
	if half, used := bm.CI95(0); half != 0 || used != DefaultBatches {
		t.Fatalf("constant data CI = (%v, %d), want (0, %d)", half, used, DefaultBatches)
	}
	if bm.Lag1() != 0 {
		t.Fatalf("constant data lag-1 = %v, want 0", bm.Lag1())
	}
}

// TestBatchMeansDropsRemainder: 31 observations into 30 batches of 1 is
// refused (needs 2 per batch) and shrinks to 15 batches of 2, dropping the
// 31st observation.
func TestBatchMeansDropsRemainder(t *testing.T) {
	var bm BatchMeans
	for i := 0; i < 31; i++ {
		bm.Add(float64(i))
	}
	if _, used := bm.CI95(30); used != 15 {
		t.Fatalf("used %d batches on 31 observations, want 15", used)
	}
}
