package stats

import "math"

// WilsonCI95 is the 95% Wilson score interval for a binomial proportion with
// k successes in n trials. Unlike the normal (Wald) approximation it behaves
// at the extremes this codebase actually hits — k = 0 or k in the single
// digits out of a few hundred trials, exactly the regime of corruption-escape
// counts — where the Wald interval collapses to a width of zero or goes
// negative. n <= 0 returns (0, 1): no trials, no information.
func WilsonCI95(k, n int64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	const z = 1.959963984540054 // Φ⁻¹(0.975)
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo = center - half
	hi = center + half
	// At the exact endpoints the bound equals the estimate analytically
	// ((1 + z²/n)/(1 + z²/n) = 1 for k = n); snap past the float rounding.
	if lo < 0 || k == 0 {
		lo = 0
	}
	if hi > 1 || k == n {
		hi = 1
	}
	return lo, hi
}
