package stats

import "frfc/internal/sim"

// PhaseLatency buckets delivery latencies into consecutive cycle phases split
// at the given boundaries, the degradation measurement behind hard-fault
// scenarios: phase 0 is healthy operation before the first fault, the middle
// phases cover the outage, and the last phase is post-recovery. Comparing the
// first and last phase means quantifies how completely latency recovers once
// the topology heals.
type PhaseLatency struct {
	bounds []sim.Cycle
	phases []Welford
}

// NewPhaseLatency splits time at the given strictly increasing cycle
// boundaries, yielding len(bounds)+1 phases: phase i covers
// [bounds[i-1], bounds[i]).
func NewPhaseLatency(bounds ...sim.Cycle) *PhaseLatency {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: phase boundaries must be strictly increasing")
		}
	}
	return &PhaseLatency{bounds: bounds, phases: make([]Welford, len(bounds)+1)}
}

// phaseOf locates the phase containing cycle now.
func (p *PhaseLatency) phaseOf(now sim.Cycle) int {
	for i, b := range p.bounds {
		if now < b {
			return i
		}
	}
	return len(p.bounds)
}

// Record attributes one delivery at cycle now with the given latency to the
// phase containing now.
func (p *PhaseLatency) Record(now, latency sim.Cycle) {
	p.phases[p.phaseOf(now)].Add(float64(latency))
}

// Phases reports the number of phases.
func (p *PhaseLatency) Phases() int { return len(p.phases) }

// N reports the deliveries recorded in phase i.
func (p *PhaseLatency) N(i int) int64 { return p.phases[i].N() }

// Mean reports the mean latency of phase i, 0 when empty.
func (p *PhaseLatency) Mean(i int) float64 { return p.phases[i].Mean() }

// RecoveryRatio compares the last phase's mean latency against the first's:
// 1.0 is full recovery, above 1 is residual degradation. It reports 0 when
// either phase recorded nothing (no basis for comparison).
func (p *PhaseLatency) RecoveryRatio() float64 {
	first, last := &p.phases[0], &p.phases[len(p.phases)-1]
	if first.N() == 0 || last.N() == 0 || first.Mean() == 0 {
		return 0
	}
	return last.Mean() / first.Mean()
}
