package stats

import "frfc/internal/sim"

// Histogram counts integer-valued samples (cycles) at unit resolution,
// giving exact quantiles for latency distributions. Memory grows with the
// largest observed value, which for packet latencies is bounded by the
// saturation guard.
type Histogram struct {
	counts []int64
	n      int64
}

// Add records one sample. Negative samples panic: a negative latency is a
// measurement bug.
func (h *Histogram) Add(v sim.Cycle) {
	if v < 0 {
		panic("stats: negative sample in histogram")
	}
	for int(v) >= len(h.counts) {
		grown := make([]int64, max(len(h.counts)*2, int(v)+1, 64))
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[v]++
	h.n++
}

// N reports the number of samples.
func (h *Histogram) N() int64 { return h.n }

// Quantile returns the smallest value x such that at least q of the samples
// are <= x (0 < q <= 1). It panics on an empty histogram or out-of-range q.
func (h *Histogram) Quantile(q float64) sim.Cycle {
	if h.n == 0 {
		panic("stats: quantile of empty histogram")
	}
	if q <= 0 || q > 1 {
		panic("stats: quantile out of (0, 1]")
	}
	need := int64(q * float64(h.n))
	if need < 1 {
		need = 1
	}
	var seen int64
	for v, c := range h.counts {
		seen += c
		if seen >= need {
			return sim.Cycle(v)
		}
	}
	return sim.Cycle(len(h.counts) - 1)
}
