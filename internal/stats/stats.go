// Package stats accumulates the measurements the paper reports: average
// packet latency with 95% confidence intervals, accepted throughput, buffer
// occupancy, and warm-up stabilization of queue lengths.
package stats

import (
	"math"

	"frfc/internal/sim"
)

// Welford accumulates a running mean and variance using Welford's online
// algorithm, which is numerically stable over the hundreds of thousands of
// samples a saturation-point run produces.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N reports the sample count.
func (w *Welford) N() int64 { return w.n }

// Mean reports the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance reports the unbiased sample variance (0 with fewer than 2
// samples). Floating-point cancellation can drive the accumulator a hair
// below zero on near-constant data; that is clamped so StdDev never goes NaN.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	v := w.m2 / float64(w.n-1)
	if v < 0 {
		return 0
	}
	return v
}

// StdDev reports the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// CI95 reports the half-width of the 95% confidence interval on the mean:
// t·s/√n with the Student-t critical value for n-1 degrees of freedom. For
// the paper's sample sizes (thousands of packets) t is indistinguishable from
// the normal approximation's 1.96, but for small n the normal value badly
// understates the interval — at n=2 the true critical value is 12.7, not
// 1.96. Samples are assumed independent; for autocorrelated sequences use
// BatchMeans, which does not share that assumption.
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return TCrit95(int(w.n-1)) * w.StdDev() / math.Sqrt(float64(w.n))
}

// LatencyStats accumulates end-to-end packet latencies. Latency spans packet
// creation (entering the source queue) to ejection of the packet's last flit
// at the destination, as defined in Section 4 of the paper.
type LatencyStats struct {
	w    Welford
	hist Histogram
	min  sim.Cycle
	max  sim.Cycle
}

// NewLatencyStats returns an empty accumulator.
func NewLatencyStats() *LatencyStats {
	return &LatencyStats{min: math.MaxInt64, max: math.MinInt64}
}

// Record adds one packet latency measured in cycles.
func (s *LatencyStats) Record(latency sim.Cycle) {
	s.w.Add(float64(latency))
	s.hist.Add(latency)
	if latency < s.min {
		s.min = latency
	}
	if latency > s.max {
		s.max = latency
	}
}

// Quantile reports the q-quantile of recorded latencies (0 when empty).
// q is clamped to (0, 1]: q <= 0 reports the minimum, q > 1 the maximum.
func (s *LatencyStats) Quantile(q float64) sim.Cycle {
	if s.hist.N() == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min()
	}
	if q > 1 {
		q = 1
	}
	return s.hist.Quantile(q)
}

// N reports the number of packets recorded.
func (s *LatencyStats) N() int64 { return s.w.N() }

// Mean reports the average latency in cycles.
func (s *LatencyStats) Mean() float64 { return s.w.Mean() }

// CI95 reports the half-width of the 95% confidence interval.
func (s *LatencyStats) CI95() float64 { return s.w.CI95() }

// Min reports the smallest recorded latency, or 0 if empty.
func (s *LatencyStats) Min() sim.Cycle {
	if s.w.N() == 0 {
		return 0
	}
	return s.min
}

// Max reports the largest recorded latency, or 0 if empty.
func (s *LatencyStats) Max() sim.Cycle {
	if s.w.N() == 0 {
		return 0
	}
	return s.max
}

// RetryLatency separates delivered-packet latency by delivery path:
// packets that arrived on their first transmission attempt versus packets
// that needed at least one end-to-end retry. Retried deliveries carry the
// notification round-trip and backoff in their latency, so folding them into
// one mean would hide the recovery layer's cost.
type RetryLatency struct {
	firstTry *LatencyStats
	retried  *LatencyStats
}

// NewRetryLatency returns an empty accumulator pair.
func NewRetryLatency() *RetryLatency {
	return &RetryLatency{firstTry: NewLatencyStats(), retried: NewLatencyStats()}
}

// Record adds one delivered packet's latency, classified by how many
// end-to-end retransmission attempts it took (0 = delivered first try).
func (r *RetryLatency) Record(latency sim.Cycle, attempts int) {
	if attempts > 0 {
		r.retried.Record(latency)
		return
	}
	r.firstTry.Record(latency)
}

// FirstTry reports the accumulator for packets delivered without a retry.
func (r *RetryLatency) FirstTry() *LatencyStats { return r.firstTry }

// Retried reports the accumulator for packets delivered after >= 1 retry.
func (r *RetryLatency) Retried() *LatencyStats { return r.retried }

// Throughput tracks flit injection and ejection counts over a measurement
// window to compute accepted throughput.
type Throughput struct {
	startCycle sim.Cycle
	endCycle   sim.Cycle
	injected   int64
	ejected    int64
	open       bool
}

// Open starts the measurement window at cycle now.
func (t *Throughput) Open(now sim.Cycle) {
	t.startCycle = now
	t.open = true
}

// Close ends the measurement window at cycle now.
func (t *Throughput) Close(now sim.Cycle) {
	t.endCycle = now
	t.open = false
}

// CountInjected adds n injected flits if the window is open.
func (t *Throughput) CountInjected(n int) {
	if t.open {
		t.injected += int64(n)
	}
}

// CountEjected adds n ejected flits if the window is open.
func (t *Throughput) CountEjected(n int) {
	if t.open {
		t.ejected += int64(n)
	}
}

// Injected reports total injected flits in the window.
func (t *Throughput) Injected() int64 { return t.injected }

// Ejected reports total ejected flits in the window.
func (t *Throughput) Ejected() int64 { return t.ejected }

// AcceptedFlitsPerCycle reports ejected flits per cycle over the window
// (total across all nodes); divide by node count for per-node throughput.
func (t *Throughput) AcceptedFlitsPerCycle() float64 {
	cycles := t.endCycle - t.startCycle
	if cycles <= 0 {
		return 0
	}
	return float64(t.ejected) / float64(cycles)
}

// Occupancy tracks what fraction of observed cycles a buffer pool spent
// completely full, the measurement behind Section 4.2's observation that
// near saturation FR6's pools are full 40% of the time versus <5% for
// virtual-channel flow control.
type Occupancy struct {
	cycles    int64
	fullCount int64
	sum       int64
	capacity  int
}

// NewOccupancy returns a tracker for a pool of the given capacity.
func NewOccupancy(capacity int) *Occupancy {
	return &Occupancy{capacity: capacity}
}

// Observe records the pool's occupancy for one cycle. A pool with no
// capacity is never counted as full — otherwise an idle zero-capacity pool
// would report FullFraction 1.0.
func (o *Occupancy) Observe(used int) {
	o.cycles++
	o.sum += int64(used)
	if o.capacity > 0 && used >= o.capacity {
		o.fullCount++
	}
}

// FullFraction reports the fraction of observed cycles the pool was full.
func (o *Occupancy) FullFraction() float64 {
	if o.cycles == 0 {
		return 0
	}
	return float64(o.fullCount) / float64(o.cycles)
}

// MeanOccupancy reports the average number of occupied buffers.
func (o *Occupancy) MeanOccupancy() float64 {
	if o.cycles == 0 {
		return 0
	}
	return float64(o.sum) / float64(o.cycles)
}

// Stabilizer implements the paper's warm-up criterion: run until average
// queue lengths have stabilized. It compares the mean queue length over
// consecutive windows and declares stability when the relative change falls
// below a tolerance.
type Stabilizer struct {
	window    sim.Cycle
	tolerance float64

	cur      float64
	curN     int64
	prevMean float64
	havePrev bool
	stable   bool
}

// NewStabilizer returns a stabilizer comparing windows of the given length
// (cycles) with the given relative tolerance (e.g. 0.05 for 5%).
func NewStabilizer(window sim.Cycle, tolerance float64) *Stabilizer {
	if window < 1 {
		panic("stats: stabilizer window must be at least 1 cycle")
	}
	return &Stabilizer{window: window, tolerance: tolerance}
}

// Observe records the aggregate queue length at one cycle.
func (s *Stabilizer) Observe(queueLen int) {
	s.cur += float64(queueLen)
	s.curN++
	if s.curN < int64(s.window) {
		return
	}
	mean := s.cur / float64(s.curN)
	s.cur, s.curN = 0, 0
	if s.havePrev {
		denom := s.prevMean
		if denom < 1 {
			denom = 1 // avoid declaring instability over empty queues
		}
		s.stable = math.Abs(mean-s.prevMean)/denom <= s.tolerance
	}
	s.prevMean = mean
	s.havePrev = true
}

// Stable reports whether the last two completed windows agreed within
// tolerance.
func (s *Stabilizer) Stable() bool { return s.stable }
