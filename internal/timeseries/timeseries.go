// Package timeseries records per-epoch snapshots of a running simulation:
// flit injection and acceptance rates, reservation hit/miss counts, retries,
// the running mean packet latency, and aggregate buffer occupancy. The
// recorder is driven off the same epoch tick as the metrics registry's gauge
// sampling, so each point covers exactly one gauge sample, and it reads only
// counter totals the fabric already maintains — enabling it does not add
// per-cycle work to the hot path, only an O(nodes) sweep once per epoch.
//
// Like metrics.Probe, every method is safe on a nil receiver, so call sites
// pay one pointer test when recording is disabled.
package timeseries

import (
	"encoding/json"
	"fmt"
	"io"

	"frfc/internal/metrics"
	"frfc/internal/sim"
)

// Point is one epoch window's worth of activity. Counter fields are deltas
// over the window, not running totals; MeanLatency and Packets describe the
// measurement state at the window's close.
type Point struct {
	// Epoch is the window's index (0-based); Start is its first cycle and
	// Cycles its length — the final window of a run may be partial.
	Epoch  int64     `json:"epoch"`
	Start  sim.Cycle `json:"start"`
	Cycles sim.Cycle `json:"cycles"`
	// Injected and Ejected count data flits entering and leaving the network
	// during the window. Ejected is the accepted-flit count: summed over all
	// points it equals the run's total ejected flits.
	Injected int64 `json:"injected"`
	Ejected  int64 `json:"ejected"`
	// Reservation-table outcomes, end-to-end retries, and packets failed
	// fast as unreachable (hard-fault scenarios) during the window.
	ResHits     int64 `json:"resHits"`
	ResMisses   int64 `json:"resMisses"`
	Retries     int64 `json:"retries"`
	Unreachable int64 `json:"unreachable,omitempty"`
	// Corrupt counts corrupted flit receptions observed across the fabric
	// during the window (bit-errored deliveries, at every hop they reach).
	Corrupt int64 `json:"corrupt,omitempty"`
	// Packets is the cumulative delivered-packet count at the window's close;
	// MeanLatency is the running mean latency (cycles) over those packets.
	Packets     int64   `json:"packets"`
	MeanLatency float64 `json:"meanLatency"`
	// OccFraction is the fabric-wide buffer fill over the window: occupied
	// buffer slots divided by capacity, aggregated across every sampled
	// bounded pool, in [0,1].
	OccFraction float64 `json:"occFraction"`
}

// InjectedRate is injected flits per cycle over the window.
func (p *Point) InjectedRate() float64 {
	if p.Cycles <= 0 {
		return 0
	}
	return float64(p.Injected) / float64(p.Cycles)
}

// AcceptedRate is ejected (accepted) flits per cycle over the window.
func (p *Point) AcceptedRate() float64 {
	if p.Cycles <= 0 {
		return 0
	}
	return float64(p.Ejected) / float64(p.Cycles)
}

// HitRate is the window's reservation hit fraction, 0 when no reservations
// were attempted.
func (p *Point) HitRate() float64 {
	if n := p.ResHits + p.ResMisses; n > 0 {
		return float64(p.ResHits) / float64(n)
	}
	return 0
}

// totals is a snapshot of the registry's cumulative counters, used to turn
// running totals into per-window deltas.
type totals struct {
	injected, ejected    int64
	resHits, resMisses   int64
	retries, unreachable int64
	corrupt              int64
	occSum, occCapCycles int64 // Σ gauge sums; Σ samples×capacity (bounded pools)
}

func snapshot(reg *metrics.Registry) totals {
	var t totals
	for i := range reg.Nodes {
		n := &reg.Nodes[i]
		t.injected += n.Injected
		t.ejected += n.Ejected
		t.resHits += n.ResHits
		t.resMisses += n.ResMisses
		t.retries += n.Retries
		t.unreachable += n.Unreachable
		t.corrupt += n.Corrupt
		for p := range n.Occ {
			if g := &n.Occ[p]; g.Cap > 0 {
				t.occSum += g.Sum
				t.occCapCycles += g.Samples * g.Cap
			}
		}
	}
	return t
}

// Recorder accumulates Points at a fixed epoch. With a positive bound it
// behaves as a ring, discarding the oldest points once full (Dropped reports
// how many); unbounded it appends for the life of the run.
type Recorder struct {
	epoch sim.Cycle
	max   int

	lastCycle sim.Cycle
	last      totals
	idx       int64

	pts     []Point
	head    int // ring read position once len(pts) == max
	dropped int64
}

// New returns a recorder sampling every epoch cycles (non-positive =
// metrics.DefaultEpoch) and retaining at most maxPoints points (non-positive
// = unbounded). The epoch should match the metrics registry's so each window
// covers exactly one occupancy gauge sample.
func New(epoch sim.Cycle, maxPoints int) *Recorder {
	if epoch <= 0 {
		epoch = metrics.DefaultEpoch
	}
	return &Recorder{epoch: epoch, max: maxPoints}
}

// Epoch reports the sampling period in cycles (0 on a nil recorder).
func (r *Recorder) Epoch() sim.Cycle {
	if r == nil {
		return 0
	}
	return r.epoch
}

// Due reports whether cycle now closes an epoch window. Call with the
// post-increment cycle count, mirroring Probe.SampleDue.
func (r *Recorder) Due(now sim.Cycle) bool {
	return r != nil && now > 0 && now%r.epoch == 0
}

// Observe closes the window ending at cycle now, reading cumulative counters
// from reg and the delivered-packet count and running mean latency from the
// caller's latency accumulator. Calls with now not beyond the previous
// observation are ignored, as are nil receivers and registries.
func (r *Recorder) Observe(now sim.Cycle, reg *metrics.Registry, packets int64, meanLatency float64) {
	if r == nil || reg == nil || now <= r.lastCycle {
		return
	}
	r.record(now, snapshot(reg), packets, meanLatency)
}

// Flush records the final, possibly partial, window ending at cycle now.
// Call once after the run's last cycle (drain included) so that per-window
// ejected counts sum to the run's total ejected flits. A no-op when the
// window would be empty.
func (r *Recorder) Flush(now sim.Cycle, reg *metrics.Registry, packets int64, meanLatency float64) {
	r.Observe(now, reg, packets, meanLatency)
}

func (r *Recorder) record(now sim.Cycle, t totals, packets int64, meanLatency float64) {
	p := Point{
		Epoch:       r.idx,
		Start:       r.lastCycle,
		Cycles:      now - r.lastCycle,
		Injected:    t.injected - r.last.injected,
		Ejected:     t.ejected - r.last.ejected,
		ResHits:     t.resHits - r.last.resHits,
		ResMisses:   t.resMisses - r.last.resMisses,
		Retries:     t.retries - r.last.retries,
		Unreachable: t.unreachable - r.last.unreachable,
		Corrupt:     t.corrupt - r.last.corrupt,
		Packets:     packets,
		MeanLatency: meanLatency,
	}
	if dc := t.occCapCycles - r.last.occCapCycles; dc > 0 {
		p.OccFraction = float64(t.occSum-r.last.occSum) / float64(dc)
	}
	r.idx++
	r.lastCycle = now
	r.last = t
	if r.max > 0 && len(r.pts) == r.max {
		r.pts[r.head] = p
		r.head = (r.head + 1) % r.max
		r.dropped++
		return
	}
	r.pts = append(r.pts, p)
}

// Len reports the number of retained points.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.pts)
}

// Dropped reports how many points a bounded recorder has discarded.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Points returns the retained points in chronological order. The slice is a
// copy; mutating it does not affect the recorder.
func (r *Recorder) Points() []Point {
	if r == nil || len(r.pts) == 0 {
		return nil
	}
	out := make([]Point, 0, len(r.pts))
	out = append(out, r.pts[r.head:]...)
	out = append(out, r.pts[:r.head]...)
	return out
}

// csvHeader documents every column; derived-rate columns are included so the
// file plots directly without post-processing.
const csvHeader = "epoch,start,cycles,injected,ejected,injected_per_cycle,accepted_per_cycle,res_hits,res_misses,hit_rate,retries,unreachable,corrupt,packets,mean_latency,occ_fraction"

// WriteCSV exports the series as CSV, one row per epoch window. The ejected
// column is the accepted-flit count per window; its sum equals the run's
// total ejected flits when the recorder was flushed and unbounded.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("timeseries: nil recorder")
	}
	if _, err := fmt.Fprintln(w, csvHeader); err != nil {
		return err
	}
	for _, p := range r.Points() {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%.6f,%.6f,%d,%d,%.6f,%d,%d,%d,%d,%.4f,%.6f\n",
			p.Epoch, p.Start, p.Cycles, p.Injected, p.Ejected,
			p.InjectedRate(), p.AcceptedRate(),
			p.ResHits, p.ResMisses, p.HitRate(),
			p.Retries, p.Unreachable, p.Corrupt, p.Packets, p.MeanLatency, p.OccFraction); err != nil {
			return err
		}
	}
	return nil
}

// series is the JSON export shape.
type series struct {
	Epoch   sim.Cycle `json:"epoch"`
	Dropped int64     `json:"dropped,omitempty"`
	Points  []Point   `json:"points"`
}

// WriteJSON exports the series as one indented JSON object holding the epoch
// length, the dropped-point count (bounded recorders), and the points in
// chronological order.
func (r *Recorder) WriteJSON(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("timeseries: nil recorder")
	}
	pts := r.Points()
	if pts == nil {
		pts = []Point{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(series{Epoch: r.epoch, Dropped: r.dropped, Points: pts})
}
