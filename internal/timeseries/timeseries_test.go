package timeseries

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"frfc/internal/metrics"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Due(64) {
		t.Fatal("nil recorder claims a sample is due")
	}
	r.Observe(64, metrics.NewRegistry(0), 0, 0)
	r.Flush(100, metrics.NewRegistry(0), 0, 0)
	if r.Len() != 0 || r.Dropped() != 0 || r.Points() != nil || r.Epoch() != 0 {
		t.Fatal("nil recorder reports state")
	}
}

func TestDueCadence(t *testing.T) {
	r := New(50, 0)
	due := 0
	for now := sim.Cycle(0); now <= 200; now++ {
		if r.Due(now) {
			due++
		}
	}
	if due != 4 {
		t.Fatalf("Due fired %d times in (0,200] with epoch 50, want 4", due)
	}
	if New(0, 0).Epoch() != metrics.DefaultEpoch {
		t.Fatal("non-positive epoch did not default")
	}
}

func TestDeltasAndFlush(t *testing.T) {
	reg := metrics.NewRegistry(64)
	reg.Init(2)
	r := New(64, 0)

	// Window 0: 10 injected, 7 ejected, 3 hits, 1 miss.
	n := &reg.Nodes[0]
	n.Injected, n.Ejected, n.ResHits, n.ResMisses = 10, 7, 3, 1
	n.Occ[topology.East].Sample(4, 8)
	r.Observe(64, reg, 2, 30)

	// Window 1: 5 more injected, 6 more ejected, 1 retry.
	n.Injected, n.Ejected, n.Retries = 15, 13, 1
	n.Occ[topology.East].Sample(8, 8)
	r.Observe(128, reg, 4, 32)

	// Partial final window: 2 more ejected during drain.
	n.Ejected = 15
	r.Flush(150, reg, 5, 33)

	pts := r.Points()
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	p0, p1, p2 := pts[0], pts[1], pts[2]
	if p0.Injected != 10 || p0.Ejected != 7 || p0.ResHits != 3 || p0.ResMisses != 1 {
		t.Fatalf("window 0 deltas wrong: %+v", p0)
	}
	if p0.OccFraction != 0.5 {
		t.Fatalf("window 0 occupancy = %v, want 0.5", p0.OccFraction)
	}
	if p1.Injected != 5 || p1.Ejected != 6 || p1.Retries != 1 || p1.Start != 64 || p1.Cycles != 64 {
		t.Fatalf("window 1 deltas wrong: %+v", p1)
	}
	// Window 1's occupancy covers exactly the second gauge sample.
	if p1.OccFraction != 1.0 {
		t.Fatalf("window 1 occupancy = %v, want 1.0", p1.OccFraction)
	}
	if p2.Cycles != 22 || p2.Ejected != 2 || p2.Packets != 5 || p2.MeanLatency != 33 {
		t.Fatalf("partial final window wrong: %+v", p2)
	}

	// The acceptance invariant: per-window ejected sums to the registry total.
	var sum int64
	for _, p := range pts {
		sum += p.Ejected
	}
	if sum != n.Ejected {
		t.Fatalf("ejected column sums to %d, want total %d", sum, n.Ejected)
	}

	// Flush with no new cycles must not add an empty window.
	r.Flush(150, reg, 5, 33)
	if r.Len() != 3 {
		t.Fatal("empty flush appended a point")
	}
}

func TestBoundedRecorderDropsOldest(t *testing.T) {
	reg := metrics.NewRegistry(64)
	reg.Init(2)
	r := New(64, 3)
	for i := 1; i <= 5; i++ {
		reg.Nodes[0].Injected = int64(10 * i)
		r.Observe(sim.Cycle(64*i), reg, 0, 0)
	}
	if r.Len() != 3 || r.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 3 and 2", r.Len(), r.Dropped())
	}
	pts := r.Points()
	if pts[0].Epoch != 2 || pts[1].Epoch != 3 || pts[2].Epoch != 4 {
		t.Fatalf("ring order wrong: %+v", pts)
	}
	// Each retained window still holds its own delta, not a running total.
	for _, p := range pts {
		if p.Injected != 10 {
			t.Fatalf("window %d delta = %d, want 10", p.Epoch, p.Injected)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	reg := metrics.NewRegistry(64)
	reg.Init(2)
	r := New(64, 0)
	reg.Nodes[0].Injected, reg.Nodes[0].Ejected = 32, 16
	reg.Nodes[0].ResHits, reg.Nodes[0].ResMisses = 3, 1
	r.Observe(64, reg, 4, 25.5)

	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 row:\n%s", len(lines), buf.String())
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(row) != len(header) {
		t.Fatalf("row has %d fields, header %d", len(row), len(header))
	}
	col := func(name string) string {
		for i, h := range header {
			if h == name {
				return row[i]
			}
		}
		t.Fatalf("no column %q in %v", name, header)
		return ""
	}
	if col("ejected") != "16" || col("injected") != "32" {
		t.Fatalf("flit columns wrong: %s", lines[1])
	}
	if v, _ := strconv.ParseFloat(col("accepted_per_cycle"), 64); v != 0.25 {
		t.Fatalf("accepted_per_cycle = %v, want 0.25", v)
	}
	if v, _ := strconv.ParseFloat(col("hit_rate"), 64); v != 0.75 {
		t.Fatalf("hit_rate = %v, want 0.75", v)
	}
	if col("mean_latency") != "25.5000" {
		t.Fatalf("mean_latency = %q", col("mean_latency"))
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	reg := metrics.NewRegistry(64)
	reg.Init(2)
	r := New(64, 0)
	reg.Nodes[0].Ejected = 9
	r.Observe(64, reg, 1, 12)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back struct {
		Epoch  sim.Cycle `json:"epoch"`
		Points []Point   `json:"points"`
	}
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON does not round-trip: %v", err)
	}
	if back.Epoch != 64 || len(back.Points) != 1 || back.Points[0].Ejected != 9 {
		t.Fatalf("round-trip lost data: %+v", back)
	}

	// An empty recorder still emits a valid document with an empty array.
	buf.Reset()
	if err := New(64, 0).WriteJSON(&buf); err != nil {
		t.Fatalf("empty WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"points": []`) {
		t.Fatalf("empty recorder JSON lacks points array:\n%s", buf.String())
	}
}
