package core

import (
	"testing"

	"frfc/internal/sim"
)

func TestLedgerNilSafe(t *testing.T) {
	var l *eagerLedger
	l.onReserve(1, 5)
	l.onParkedArrival(3)
	l.onScheduleParked(4, 3, 9)
	if tr, as := l.Transfers(); tr != 0 || as != 0 {
		t.Fatal("nil ledger reported activity")
	}
}

func TestLedgerSequentialResidenciesNoTransfers(t *testing.T) {
	l := newEagerLedger(2)
	for i := sim.Cycle(0); i < 20; i += 2 {
		l.onReserve(i, i+2)
	}
	if tr, as := l.Transfers(); tr != 0 || as != 10 {
		t.Fatalf("transfers/assignments = %d/%d, want 0/10", tr, as)
	}
}

// TestLedgerFigure10Transfer reproduces the situation of the paper's
// Figure 10(a): buffers bound at reservation time, in reservation order, can
// leave a later flit without any single buffer free for its whole residency,
// forcing a mid-residency transfer. The deferred policy the network actually
// executes never does (TestDeferredAllocationNeverFragments).
func TestLedgerFigure10Transfer(t *testing.T) {
	l := newEagerLedger(2)
	l.onReserve(0, 10)  // buffer A busy [0, 10)
	l.onReserve(0, 12)  // buffer B busy [0, 12)
	l.onReserve(13, 30) // free at 13 in both; placed in A, so A is busy [13, 30)
	// Residency [10, 16): at cycle 10 only A is free, but A's free run
	// ends at 13 — the flit starts in A and must transfer (to B, free
	// from 12) to finish.
	l.onReserve(10, 16)
	if tr, as := l.Transfers(); tr != 1 || as != 4 {
		t.Fatalf("transfers/assignments = %d/%d, want 1/4", tr, as)
	}
}

func TestLedgerParkedFlitLifecycle(t *testing.T) {
	l := newEagerLedger(2)
	l.onParkedArrival(5)
	if _, as := l.Transfers(); as != 1 {
		t.Fatal("parked arrival not recorded")
	}
	l.onScheduleParked(9, 5, 12)
	// Another residency after the closed one fits in the same buffer.
	l.onReserve(12, 15)
	if tr, _ := l.Transfers(); tr != 0 {
		t.Fatalf("unexpected transfers: %d", tr)
	}
}

func TestLedgerOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overcommitted ledger did not panic")
		}
	}()
	l := newEagerLedger(1)
	l.onReserve(0, 10)
	l.onReserve(0, 10) // two concurrent residencies, one buffer
}
