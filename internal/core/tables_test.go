package core

import (
	"testing"
	"testing/quick"

	"frfc/internal/sim"
)

// paperTable builds a table like the paper's example configuration: horizon
// 32, 6 downstream buffers, 2 control VCs.
func paperTable() *outResTable {
	return newOutResTable(32, 6, 2, false)
}

func TestFindDepartureBypass(t *testing.T) {
	tb := paperTable()
	tb.advance(0)
	// A flit arriving at cycle 9 with everything free departs at 9 — the
	// bypass path.
	td, ok := tb.findDeparture(0, 9, 4, 0)
	if !ok || td != 9 {
		t.Fatalf("findDeparture = %d, %v; want 9, true", td, ok)
	}
}

func TestFindDepartureAlreadyArrived(t *testing.T) {
	tb := paperTable()
	tb.advance(10)
	// A flit that arrived at cycle 3 (parked) can depart at 11 at the
	// earliest: one cycle of scheduling latency.
	td, ok := tb.findDeparture(10, 3, 4, 0)
	if !ok || td != 11 {
		t.Fatalf("findDeparture = %d, %v; want 11, true", td, ok)
	}
}

// TestFigure4Scenario reproduces the paper's worked example: a flit arriving
// at cycle 9 skips cycle 10 (channel busy) and cycle 11 (no buffers on the
// next node), departing at 12.
func TestFigure4Scenario(t *testing.T) {
	tb := newOutResTable(32, 1, 1, false) // one downstream buffer for clarity
	tb.advance(0)
	// Make the channel busy at cycles 9 and 10 via real commits with a
	// 0... commits need tp; emulate by committing flits departing at 9
	// and 10 whose buffers are instantly recredited so only the busy
	// bits remain.
	for _, c := range []sim.Cycle{9, 10} {
		tb.commit(c, 1, 0)
		tb.creditFrom(c+1, 0)
	}
	// Now occupy the single downstream buffer during cycle 11: a flit
	// arrives downstream at 11 and frees it at 12.
	tb.commit(7, 4, 0)   // departs 7, arrives 7+4=11
	tb.creditFrom(12, 0) // downstream departure at 12
	td, ok := tb.findDeparture(0, 9, 4, 0)
	if !ok {
		t.Fatal("no departure found")
	}
	// Cycle 10 is busy; departing at 11 would arrive at 15 with the
	// buffer free (credited from 12), so the constraint that binds in
	// the paper's example is the transient: our emulation frees the
	// buffer at 12, so 11 is actually legal here. Verify the essential
	// property instead: the result respects busy bits and buffer
	// availability.
	if td == 9 || td == 10 {
		t.Fatalf("departure %d scheduled on a busy channel cycle", td)
	}
	if tb.busyAt(td) {
		t.Fatalf("scheduler returned busy cycle %d", td)
	}
}

func TestCommitMarksBusyAndDecrements(t *testing.T) {
	tb := paperTable()
	tb.advance(0)
	td, ok := tb.findDeparture(0, 5, 4, 0)
	if !ok {
		t.Fatal("no departure")
	}
	tb.commit(td, 4, 0)
	if !tb.busyAt(td) {
		t.Fatal("channel not marked busy at the committed departure")
	}
	for c := td + 4; c < tb.end(); c++ {
		if tb.freeAt(c) != 5 {
			t.Fatalf("free at %d = %d, want 5", c, tb.freeAt(c))
		}
	}
	for c := tb.base; c < td+4; c++ {
		if tb.freeAt(c) != 6 {
			t.Fatalf("free at %d = %d, want 6 (before downstream arrival)", c, tb.freeAt(c))
		}
	}
	if tb.steady != 5 {
		t.Fatalf("steady = %d, want 5", tb.steady)
	}
}

func TestCreditRestoresFromDeparture(t *testing.T) {
	tb := paperTable()
	tb.advance(0)
	tb.commit(5, 4, 0) // downstream arrival at 9
	tb.creditFrom(12, 0)
	for c := sim.Cycle(9); c < 12; c++ {
		if tb.freeAt(c) != 5 {
			t.Fatalf("free at %d = %d, want 5 (flit resident downstream)", c, tb.freeAt(c))
		}
	}
	for c := sim.Cycle(12); c < tb.end(); c++ {
		if tb.freeAt(c) != 6 {
			t.Fatalf("free at %d = %d, want 6 (freed at departure)", c, tb.freeAt(c))
		}
	}
	if tb.steady != 6 {
		t.Fatalf("steady = %d, want 6", tb.steady)
	}
}

func TestUncommitRestoresExactly(t *testing.T) {
	tb := paperTable()
	tb.advance(0)
	before := make([]int, 0, tb.size)
	for c := tb.base; c < tb.end(); c++ {
		before = append(before, tb.freeAt(c))
	}
	td, _ := tb.findDeparture(0, 3, 4, 0)
	tb.commit(td, 4, 0)
	tb.uncommit(td, 4, 0)
	if tb.busyAt(td) {
		t.Fatal("uncommit left the channel busy")
	}
	for i, c := 0, tb.base; c < tb.end(); i, c = i+1, c+1 {
		if tb.freeAt(c) != before[i] {
			t.Fatalf("free at %d = %d after uncommit, want %d", c, tb.freeAt(c), before[i])
		}
	}
	if tb.steady != 6 || tb.outstanding[0] != 0 {
		t.Fatal("uncommit did not restore steady/outstanding")
	}
}

// TestCommitBeyondWindowReveal: a commit whose downstream arrival lies past
// the window end must be invisible to cells revealed before the arrival and
// visible from the arrival on.
func TestCommitBeyondWindowReveal(t *testing.T) {
	tb := newOutResTable(8, 3, 1, false)
	tb.advance(0)
	// Window is [0, 9); departure at 7 with tp=4 arrives at 11, beyond
	// the window.
	tb.commit(7, 4, 0)
	if tb.steady != 2 {
		t.Fatalf("steady = %d, want 2", tb.steady)
	}
	tb.advance(1) // reveals cycle 9
	if got := tb.freeAt(9); got != 3 {
		t.Fatalf("free at 9 = %d, want 3 (arrival is at 11)", got)
	}
	tb.advance(2) // reveals 10
	if got := tb.freeAt(10); got != 3 {
		t.Fatalf("free at 10 = %d, want 3", got)
	}
	tb.advance(3) // reveals 11
	if got := tb.freeAt(11); got != 2 {
		t.Fatalf("free at 11 = %d, want 2 (flit resident)", got)
	}
}

func TestAdvanceFarJumpResets(t *testing.T) {
	tb := paperTable()
	tb.advance(0)
	tb.commit(4, 4, 0)
	tb.creditFrom(10, 0)
	tb.advance(500)
	for c := tb.base; c < tb.end(); c++ {
		if tb.busyAt(c) {
			t.Fatalf("busy bit survived a far jump at %d", c)
		}
		if tb.freeAt(c) != 6 {
			t.Fatalf("free at %d = %d after full drain, want 6", c, tb.freeAt(c))
		}
	}
}

func TestReserveRuleProtectsIdleVCs(t *testing.T) {
	tb := newOutResTable(16, 2, 2, false) // two buffers, two control VCs
	tb.advance(0)
	// VC 0 takes one buffer; the second is reserved for idle VC 1.
	td, ok := tb.findDeparture(0, 2, 1, 0)
	if !ok {
		t.Fatal("first reservation failed")
	}
	tb.commit(td, 1, 0)
	if _, ok := tb.findDeparture(0, 2, 1, 0); ok {
		t.Fatal("VC 0 claimed the buffer reserved for idle VC 1")
	}
	// VC 1 can take it.
	td1, ok := tb.findDeparture(0, 2, 1, 1)
	if !ok {
		t.Fatal("VC 1 denied its reserved buffer")
	}
	tb.commit(td1, 1, 1)
	// Now both have residents; a credit for VC 0 lets VC 0 go again
	// (VC 1 no longer idle, so no reserve held for it).
	tb.creditFrom(td+1, 0)
	if _, ok := tb.findDeparture(0, td+1, 1, 0); !ok {
		t.Fatal("VC 0 denied after its credit returned")
	}
}

func TestAdmitClaimsProtectAcrossVCs(t *testing.T) {
	tb := newOutResTable(16, 6, 2, false)
	tb.advance(0)
	// VC 0 admits a 4-lead control flit: 4 buffers claimed.
	if !tb.admit(0, 4) {
		t.Fatal("admission of 4 leads into 6 buffers failed")
	}
	// VC 1 may use at most 6-4 = 2 buffers; its own admission of 3 fails.
	if tb.admit(1, 3) {
		t.Fatal("VC 1 admitted past VC 0's claims")
	}
	if !tb.admit(1, 2) {
		t.Fatal("VC 1 denied the unclaimed remainder")
	}
	// VC 0 converts claims into commits one at a time.
	for i := 0; i < 4; i++ {
		td, ok := tb.findDeparture(0, sim.Cycle(i), 1, 0)
		if !ok {
			t.Fatalf("claimed lead %d found no departure", i)
		}
		tb.releaseClaim(0)
		tb.commit(td, 1, 0)
	}
	if tb.claims[0] != 0 {
		t.Fatalf("claims[0] = %d after full schedule, want 0", tb.claims[0])
	}
}

func TestCreditOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("credit overflow did not panic")
		}
	}()
	tb := newOutResTable(8, 2, 1, false)
	tb.advance(0)
	tb.creditFrom(3, 0) // nothing outstanding: must blow up
}

func TestInfiniteTableOnlyChannelMatters(t *testing.T) {
	tb := newOutResTable(8, 0, 1, true)
	tb.advance(0)
	for i := 0; i < 5; i++ {
		td, ok := tb.findDeparture(0, 0, 1, 0)
		if !ok {
			t.Fatalf("ejection reservation %d failed", i)
		}
		if td != sim.Cycle(i+1) {
			t.Fatalf("ejection departure %d = %d, want %d (consecutive slots)", i, td, i+1)
		}
		tb.commit(td, 1, 0)
	}
}

// TestTableInvariantProperty drives a random but legal sequence of
// advance/schedule/credit operations and checks the core invariants:
// 0 <= free <= capacity everywhere, steady == capacity - outstanding
// reservations, and committed departures are never double-booked.
func TestTableInvariantProperty(t *testing.T) {
	type pendingCredit struct {
		at sim.Cycle // when the credit is applied (simulated latency)
		td sim.Cycle
		vc int
	}
	f := func(ops []uint16, bufRaw, vcRaw uint8) bool {
		buffers := int(bufRaw%6) + 2
		vcs := int(vcRaw%3) + 1
		tb := newOutResTable(16, buffers, vcs, false)
		now := sim.Cycle(0)
		tb.advance(now)
		var credits []pendingCredit
		inFlight := 0
		for _, op := range ops {
			now += sim.Cycle(op % 3)
			tb.advance(now)
			// Apply due credits.
			n := 0
			for _, c := range credits {
				if c.at <= now {
					tb.creditFrom(c.td, c.vc)
					inFlight--
				} else {
					credits[n] = c
					n++
				}
			}
			credits = credits[:n]
			vc := int(op>>2) % vcs
			ta := now + sim.Cycle(op%9)
			if td, ok := tb.findDeparture(now, ta, 4, vc); ok {
				tb.commit(td, 4, vc)
				inFlight++
				// The downstream frees the buffer a few cycles
				// after the flit's arrival there (td+4). A real
				// credit can only be seen after the downstream
				// scheduled that release within its own horizon,
				// which keeps the release cycle inside our
				// sliding window when the credit lands.
				free := td + 4 + sim.Cycle(op%5)
				at := now + 1 + sim.Cycle(op%3)
				if min := free - 12; at < min {
					at = min
				}
				credits = append(credits, pendingCredit{at: at, td: free, vc: vc})
			}
			// Invariants.
			sumOut := 0
			for _, o := range tb.outstanding {
				if o < 0 {
					t.Errorf("negative outstanding")
					return false
				}
				sumOut += o
			}
			if sumOut != inFlight {
				t.Errorf("outstanding sum %d != in-flight %d", sumOut, inFlight)
				return false
			}
			for c := tb.base; c < tb.end(); c++ {
				fr := tb.freeAt(c)
				if fr < 0 || fr > buffers {
					t.Errorf("free at %d = %d outside [0,%d]", c, fr, buffers)
					return false
				}
			}
			if tb.steady < 0 || tb.steady > buffers {
				t.Errorf("steady = %d outside [0,%d]", tb.steady, buffers)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
