package core

import (
	"testing"

	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

// loadNetwork drives a network at a fixed Bernoulli packet rate for the given
// cycles and then drains it.
func loadNetwork(t *testing.T, net *Network, mesh topology.Mesh, rate float64, cycles sim.Cycle) {
	t.Helper()
	rng := sim.NewRNG(1234)
	now := sim.Cycle(0)
	id := noc.PacketID(0)
	for ; now < cycles; now++ {
		for n := 0; n < mesh.N(); n++ {
			if rng.Bool(rate) {
				dst := topology.NodeID(rng.Intn(mesh.N() - 1))
				if dst >= topology.NodeID(n) {
					dst++
				}
				id++
				net.Offer(&noc.Packet{ID: id, Src: topology.NodeID(n), Dst: dst, Len: 5, CreatedAt: now})
			}
		}
		net.Tick(now)
	}
	for net.InFlightPackets() > 0 && now < cycles+500000 {
		net.Tick(now)
		now++
	}
	if got := net.InFlightPackets(); got != 0 {
		t.Fatalf("failed to drain: %d packets in flight", got)
	}
}

// TestLeadingControlExercisesScheduleList: with a 1-cycle lead on 1-cycle
// wires, data flits frequently catch their control flit (the paper's own
// observation in Section 4.4), so the schedule-list path must be taken.
func TestLeadingControlExercisesScheduleList(t *testing.T) {
	mesh := topology.NewMesh(4)
	net := New(mesh, leadingControl(1), 3, &noc.Hooks{})
	loadNetwork(t, net, mesh, 0.08, 3000)
	if parked := net.ParkedFlits(); parked == 0 {
		t.Fatal("leading control with a 1-cycle lead never parked a flit; the schedule list is untested by construction")
	}
}

// TestFastControlRarelyParks: with 4x-fast control wires and d=1, control
// flits should stay well ahead of data, so parking is rare to nonexistent
// at moderate load.
func TestFastControlRarelyParks(t *testing.T) {
	mesh := topology.NewMesh(4)
	net := New(mesh, fastControl(), 3, &noc.Hooks{})
	loadNetwork(t, net, mesh, 0.06, 3000)
	parked := net.ParkedFlits()
	// Some parking under bursts is fine; it must be a small fraction of
	// the ~ 0.06*16*3000*5 = 14k flits delivered.
	if parked > 1000 {
		t.Fatalf("fast control parked %d flits; control network is failing to stay ahead", parked)
	}
}

// TestControlBudgetRespected: no router may process more control flits per
// output per cycle than the control channel bandwidth. The pipe's width
// assertion enforces the link side; this test exercises a hot single output
// (tornado-like traffic through one column) and relies on the internal
// panics to catch violations.
func TestControlBudgetRespected(t *testing.T) {
	mesh := topology.NewMesh(4)
	net := New(mesh, fastControl(), 9, &noc.Hooks{})
	rng := sim.NewRNG(77)
	now := sim.Cycle(0)
	id := noc.PacketID(0)
	// Everyone in row 0 sends to the east end of the row: one hot path.
	for ; now < 2000; now++ {
		for x := 0; x < 3; x++ {
			if rng.Bool(0.25) {
				id++
				net.Offer(&noc.Packet{ID: id, Src: topology.NodeID(x), Dst: 3, Len: 5, CreatedAt: now})
			}
		}
		net.Tick(now)
	}
	drainOrFail(t, net, now, 500000)
}
