package core

import "frfc/internal/sim"

// eagerLedger is a shadow bookkeeper for the Figure 10 ablation: it replays
// every buffer residency against the alternative policy that binds a specific
// buffer at reservation time instead of just before arrival, and counts the
// buffer-to-buffer transfers that policy is forced into when no single buffer
// is free for a flit's whole residency. It never influences the network —
// deferred allocation remains the executed policy — so the comparison is
// like-for-like on an identical schedule.
type eagerLedger struct {
	slots [][]interval // per virtual buffer: reserved residencies, sorted by from
	open  map[sim.Cycle]openEntry

	assignments int64
	transfers   int64
}

// ledgerInf stands in for an unknown departure time of a parked flit.
const ledgerInf sim.Cycle = 1 << 60

type interval struct {
	from, to sim.Cycle // to exclusive
}

type openEntry struct {
	slot int
}

func newEagerLedger(buffers int) *eagerLedger {
	return &eagerLedger{
		slots: make([][]interval, buffers),
		open:  make(map[sim.Cycle]openEntry),
	}
}

// Transfers reports the number of buffer-to-buffer moves eager allocation
// would have required, and the number of residencies replayed.
func (l *eagerLedger) Transfers() (transfers, assignments int64) {
	if l == nil {
		return 0, 0
	}
	return l.transfers, l.assignments
}

// onReserve replays an in-advance reservation: residency [ta, td).
func (l *eagerLedger) onReserve(ta, td sim.Cycle) {
	if l == nil {
		return
	}
	l.assignments++
	l.place(ta, td)
}

// onParkedArrival replays a flit arriving without a schedule: its residency
// starts at ta with an unknown end.
func (l *eagerLedger) onParkedArrival(ta sim.Cycle) {
	if l == nil {
		return
	}
	l.assignments++
	slot, runEnd := l.bestSlot(ta)
	if slot == -1 {
		panic("core: eager ledger overcommitted on parked arrival")
	}
	_ = runEnd
	l.insert(slot, interval{from: ta, to: ledgerInf})
	l.open[ta] = openEntry{slot: slot}
}

// onScheduleParked replays the late reservation of a parked flit: its open
// residency now ends at td. If the chosen buffer has a conflicting later
// reservation, the flit must be transferred.
func (l *eagerLedger) onScheduleParked(now, ta, td sim.Cycle) {
	if l == nil {
		return
	}
	e, ok := l.open[ta]
	if !ok {
		panic("core: eager ledger has no open residency to close")
	}
	delete(l.open, ta)
	ivs := l.slots[e.slot]
	at := -1
	for i, iv := range ivs {
		if iv.from == ta && iv.to == ledgerInf {
			at = i
			break
		}
	}
	if at == -1 {
		panic("core: eager ledger lost an open interval")
	}
	// The open interval blocked everything after ta in this slot, so it
	// is the last interval; closing it cannot conflict, but a residency
	// extending past what was assumed is already covered. Simply close.
	l.slots[e.slot][at].to = td
}

// place assigns residency [from, to), splitting across buffers when no single
// buffer is free throughout and counting each split as one transfer.
func (l *eagerLedger) place(from, to sim.Cycle) {
	t := from
	for t < to {
		slot, runEnd := l.bestSlot(t)
		if slot == -1 {
			panic("core: eager ledger overcommitted — more residencies than buffers")
		}
		segEnd := to
		if runEnd < segEnd {
			segEnd = runEnd
		}
		l.insert(slot, interval{from: t, to: segEnd})
		if segEnd < to {
			l.transfers++
		}
		t = segEnd
	}
}

// bestSlot returns the buffer free at cycle t whose free run from t extends
// furthest, and the end of that run. slot is -1 if every buffer is busy at t.
func (l *eagerLedger) bestSlot(t sim.Cycle) (slot int, runEnd sim.Cycle) {
	slot, runEnd = -1, 0
	for i, ivs := range l.slots {
		end, free := freeRun(ivs, t)
		if free && end > runEnd {
			slot, runEnd = i, end
		}
	}
	return slot, runEnd
}

// freeRun reports whether cycle t is free in the interval set and, if so, the
// first busy cycle after t (ledgerInf when unbounded).
func freeRun(ivs []interval, t sim.Cycle) (end sim.Cycle, free bool) {
	end = ledgerInf
	for _, iv := range ivs {
		if t >= iv.from && t < iv.to {
			return 0, false
		}
		if iv.from > t && iv.from < end {
			end = iv.from
		}
	}
	return end, true
}

// insert adds an interval to a slot, keeping the set sorted, and prunes
// intervals that ended long ago to bound memory over long runs.
func (l *eagerLedger) insert(slot int, iv interval) {
	ivs := append(l.slots[slot], iv)
	for i := len(ivs) - 1; i > 0 && ivs[i].from < ivs[i-1].from; i-- {
		ivs[i], ivs[i-1] = ivs[i-1], ivs[i]
	}
	// Prune: everything that ends before the newest start can no longer
	// conflict with future placements, which always begin at or after the
	// current scheduling cycle.
	cutoff := iv.from - 4096
	n := 0
	for _, v := range ivs {
		if v.to > cutoff {
			ivs[n] = v
			n++
		}
	}
	l.slots[slot] = ivs[:n]
}
