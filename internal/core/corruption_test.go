package core

import (
	"reflect"
	"testing"

	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

// TestBitErrorsRecoveredByHopCRC: with the default 16-bit hop CRC essentially
// every corrupted flit is detected — data converts to the existing loss path
// and retries recover it, control is discarded and the schedule machinery
// absorbs the gap — so every packet must still be delivered exactly once.
func TestBitErrorsRecoveredByHopCRC(t *testing.T) {
	mesh := topology.NewMesh(4)
	cfg := fastControl()
	cfg.BER = 5e-3
	cfg.RetryLimit = 10
	cfg.WatchdogCycles = 20000
	delivered := map[noc.PacketID]int{}
	hooks := &noc.Hooks{
		PacketDelivered: func(p *noc.Packet, now sim.Cycle) { delivered[p.ID]++ },
		PacketAbandoned: func(p *noc.Packet, now sim.Cycle) {
			t.Errorf("packet %d abandoned after %d attempts", p.ID, p.Attempts)
		},
		Wedged: func(now sim.Cycle, snapshot string) {
			t.Fatalf("watchdog tripped under bit errors:\n%s", snapshot)
		},
	}
	net := New(mesh, cfg, 41, hooks)

	rng := sim.NewRNG(8)
	const packets = 300
	now := offerRandom(net, mesh, rng, packets, 5, 0)
	drainOrFail(t, net, now, 2000000)

	if len(delivered) != packets {
		t.Fatalf("delivered %d distinct packets, want all %d", len(delivered), packets)
	}
	for pid, times := range delivered {
		if times != 1 {
			t.Errorf("packet %d delivered %d times", pid, times)
		}
	}
	rs := net.Recovery()
	if rs.CorruptedFlits == 0 || rs.CrcDetected == 0 {
		t.Fatalf("BER %g over %d packets corrupted nothing: %+v", cfg.BER, packets, rs)
	}
	if rs.Delivered != packets || rs.Abandoned != 0 {
		t.Fatalf("conservation violated: %+v", rs)
	}
}

// TestWeakCrcEscapesCaughtByE2ECheck: a deliberately weak 1-bit hop CRC lets
// half the corrupted flits through, so escapes — including phantom
// reservations from escaped-corrupt control flits — must occur, and the
// end-to-end check plus slot reclamation must still turn every one into a
// successful delivery. The per-cycle invariant checker is armed, so a leaked
// reservation slot or credit panics the run.
func TestWeakCrcEscapesCaughtByE2ECheck(t *testing.T) {
	mesh := topology.NewMesh(4)
	cfg := fastControl()
	cfg.BER = 1e-2
	cfg.CrcBits = 1
	cfg.E2ECheck = true
	cfg.RetryLimit = 10
	cfg.WatchdogCycles = 20000
	cfg.Check = true
	rec, hooks := newRecorder()
	abandoned := 0
	hooks.PacketAbandoned = func(p *noc.Packet, now sim.Cycle) { abandoned++ }
	hooks.Wedged = func(now sim.Cycle, snapshot string) {
		t.Fatalf("watchdog tripped:\n%s", snapshot)
	}
	net := New(mesh, cfg, 99, hooks)

	rng := sim.NewRNG(5)
	const packets = 300
	now := offerRandom(net, mesh, rng, packets, 5, 0)
	drainOrFail(t, net, now, 2000000)

	rs := net.Recovery()
	if rs.CorruptEscapes == 0 {
		t.Fatalf("1-bit CRC at BER %g produced no escapes: %+v", cfg.BER, rs)
	}
	if rs.PhantomReservations == 0 || rs.ReclaimedSlots == 0 {
		t.Fatalf("escaped control corruption hardened nothing: %+v", rs)
	}
	if len(rec.delivered) != packets || abandoned != 0 {
		t.Fatalf("delivered %d of %d (abandoned %d) despite the end-to-end check", len(rec.delivered), packets, abandoned)
	}
}

// TestE2ECheckOffAcceptsEscapes: with hop detection disabled (CrcBits < 0)
// and the end-to-end check off, corrupted *data* arrives and is silently
// accepted — every escape counts, nothing retries. Escaped *control*
// corruption is not free even then: it diverges the reservation tables, and
// the stranded data surfaces through reclamation as ordinary detected loss.
// The conservation law is delivered + lost == offered with zero retries.
func TestE2ECheckOffAcceptsEscapes(t *testing.T) {
	mesh := topology.NewMesh(4)
	cfg := fastControl()
	cfg.BER = 5e-3
	cfg.CrcBits = -1
	rec, hooks := newRecorder()
	lost := 0
	hooks.PacketLost = func(p *noc.Packet, now sim.Cycle) { lost++ }
	net := New(mesh, cfg, 7, hooks)

	rng := sim.NewRNG(3)
	const packets = 200
	now := offerRandom(net, mesh, rng, packets, 5, 0)
	drainOrFail(t, net, now, 500000)

	rs := net.Recovery()
	if len(rec.delivered)+lost != packets {
		t.Fatalf("conservation broken: delivered %d + lost %d != offered %d", len(rec.delivered), lost, packets)
	}
	if rs.CorruptedFlits == 0 {
		t.Fatal("BER exercised nothing")
	}
	if rs.CrcDetected != 0 {
		t.Fatalf("disabled CRC still detected %d flits", rs.CrcDetected)
	}
	if rs.CorruptEscapes == 0 {
		t.Fatalf("no escapes with all checks off: %+v", rs)
	}
	if rs.Retried != 0 {
		t.Fatalf("silent acceptance must not retry: %+v", rs)
	}
}

// TestBitErrorDeterminism: two networks with identical configuration and seed
// must agree on every recovery counter, corruption included — the foundation
// of the harness's bit-identical-across-workers guarantee.
func TestBitErrorDeterminism(t *testing.T) {
	run := func() RecoveryStats {
		mesh := topology.NewMesh(4)
		cfg := fastControl()
		cfg.BER = 1e-2
		cfg.CrcBits = 2
		cfg.E2ECheck = true
		cfg.RetryLimit = 8
		cfg.WatchdogCycles = 20000
		_, hooks := newRecorder()
		net := New(mesh, cfg, 123, hooks)
		rng := sim.NewRNG(77)
		now := offerRandom(net, mesh, rng, 150, 5, 0)
		drainOrFail(t, net, now, 2000000)
		return net.Recovery()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical seeds diverged:\nfirst:  %+v\nsecond: %+v", a, b)
	}
	if a.CorruptedFlits == 0 || a.CorruptEscapes == 0 {
		t.Fatalf("determinism run exercised no corruption: %+v", a)
	}
}
