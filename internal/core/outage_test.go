package core

import (
	"fmt"
	"strings"
	"testing"

	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

// fateRecorder tracks every packet's terminal outcome so the conservation law
// offered == delivered + abandoned + unreachable can be checked per packet.
type fateRecorder struct {
	fate map[noc.PacketID]string
	dup  []string
}

func newFateRecorder(t *testing.T) (*fateRecorder, *noc.Hooks) {
	r := &fateRecorder{fate: make(map[noc.PacketID]string)}
	set := func(id noc.PacketID, f string) {
		if prev, ok := r.fate[id]; ok {
			r.dup = append(r.dup, fmt.Sprintf("packet %d resolved twice: %s then %s", id, prev, f))
		}
		r.fate[id] = f
	}
	hooks := &noc.Hooks{
		PacketDelivered:   func(p *noc.Packet, now sim.Cycle) { set(p.ID, "delivered") },
		PacketAbandoned:   func(p *noc.Packet, now sim.Cycle) { set(p.ID, "abandoned") },
		PacketUnreachable: func(p *noc.Packet, now sim.Cycle) { set(p.ID, "unreachable") },
		Wedged: func(now sim.Cycle, snapshot string) {
			t.Fatalf("watchdog tripped at cycle %d:\n%s", now, snapshot)
		},
	}
	return r, hooks
}

func TestValidateFaultsRejections(t *testing.T) {
	mesh := topology.NewMesh(4)
	cases := []struct {
		name   string
		events []FaultEvent
		retry  bool
		want   string // substring of the error; "" means valid
	}{
		{"valid scenario", []FaultEvent{
			{At: 100, Kind: LinkDown, A: 5, B: 6},
			{At: 500, Kind: LinkUp, A: 5, B: 6},
			{At: 600, Kind: RouterDown, A: 9},
		}, true, ""},
		{"recovery not after failure", []FaultEvent{
			{At: 400, Kind: LinkDown, A: 5, B: 6},
			{At: 400, Kind: LinkUp, A: 5, B: 6},
		}, true, "strictly after"},
		{"node off the mesh", []FaultEvent{
			{At: 100, Kind: RouterDown, A: 16},
		}, true, "outside the"},
		{"link not adjacent", []FaultEvent{
			{At: 100, Kind: LinkDown, A: 0, B: 5},
		}, true, "not adjacent"},
		{"router down without retries", []FaultEvent{
			{At: 100, Kind: RouterDown, A: 5},
		}, false, "RetryLimit"},
		{"events out of order", []FaultEvent{
			{At: 500, Kind: LinkDown, A: 5, B: 6},
			{At: 100, Kind: LinkDown, A: 9, B: 10},
		}, true, "order"},
		{"link up without down", []FaultEvent{
			{At: 100, Kind: LinkUp, A: 5, B: 6},
		}, true, "not down"},
		{"double link down", []FaultEvent{
			{At: 100, Kind: LinkDown, A: 5, B: 6},
			{At: 200, Kind: LinkDown, A: 6, B: 5},
		}, true, "already down"},
		{"event before cycle one", []FaultEvent{
			{At: 0, Kind: LinkDown, A: 5, B: 6},
		}, true, "cycle"},
		{"link touching dead router", []FaultEvent{
			{At: 100, Kind: RouterDown, A: 5},
			{At: 200, Kind: LinkDown, A: 5, B: 6},
		}, true, "dead router"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateFaults(mesh, tc.events, tc.retry)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid scenario rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid scenario accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseScenario(t *testing.T) {
	events, err := ParseScenario("down 5-6 @100; up 5-6 @600; kill 9 @800")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := []FaultEvent{
		{At: 100, Kind: LinkDown, A: 5, B: 6},
		{At: 600, Kind: LinkUp, A: 5, B: 6},
		{At: 800, Kind: RouterDown, A: 9},
	}
	if len(events) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(events), len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
	for _, bad := range []string{"explode 5 @100", "down 5 @100", "down 5-6", "kill x @100", "down 5-6 100"} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("ParseScenario(%q) accepted garbage", bad)
		}
	}
}

// TestLinkOutageWithRecoveryDeliversEverything is the headline graceful-
// degradation claim: one link fails mid-run and is later repaired; the mesh
// stays connected throughout, so with retry enabled every single packet must
// be delivered — nothing abandoned, nothing unreachable, watchdog silent —
// with the invariant checker auditing every cycle.
func TestLinkOutageWithRecoveryDeliversEverything(t *testing.T) {
	mesh := topology.NewMesh(4)
	cfg := fastControl()
	cfg.RetryLimit = 8
	cfg.WatchdogCycles = 20000
	cfg.Check = true
	cfg.Faults = []FaultEvent{
		{At: 500, Kind: LinkDown, A: 5, B: 6},
		{At: 4000, Kind: LinkUp, A: 5, B: 6},
	}
	rec, hooks := newFateRecorder(t)
	net := New(mesh, cfg, 101, hooks)

	// A sustained directed flow across the doomed link guarantees a stream is
	// straddling the wire when the axe falls; random background traffic rides
	// along on the rest of the mesh.
	const crossers = 80
	for i := 0; i < crossers; i++ {
		net.Offer(&noc.Packet{ID: noc.PacketID(10000 + i), Src: 5, Dst: 6, Len: 5, CreatedAt: 0})
	}
	rng := sim.NewRNG(23)
	const background = 300
	now := offerRandom(net, mesh, rng, background, 5, 0)
	drainOrFail(t, net, now, 2000000)

	const packets = crossers + background
	rs := net.Recovery()
	if rs.Delivered != packets || rs.Abandoned != 0 || rs.Unreachable != 0 {
		t.Fatalf("link outage with recovery must deliver everything: %+v", rs)
	}
	if rs.DroppedFlits == 0 {
		t.Fatal("the outage destroyed nothing — the scenario never bit")
	}
	if rs.Retried == 0 {
		t.Fatal("cut streams must recover through end-to-end retry, yet none fired")
	}
	if len(rec.dup) > 0 {
		t.Fatalf("double resolutions: %v", rec.dup)
	}
}

// TestPartitionReportsUnreachableNotAbandoned severs the whole column
// boundary between x=1 and x=2, splitting the mesh in half. Cross-partition
// packets must resolve as unreachable — fast-failed, not retried into
// abandonment — while same-side traffic keeps flowing.
func TestPartitionReportsUnreachableNotAbandoned(t *testing.T) {
	mesh := topology.NewMesh(4)
	cfg := fastControl()
	cfg.RetryLimit = 5
	cfg.WatchdogCycles = 20000
	cfg.Check = true
	cfg.Faults = []FaultEvent{
		{At: 500, Kind: LinkDown, A: 1, B: 2},
		{At: 500, Kind: LinkDown, A: 5, B: 6},
		{At: 500, Kind: LinkDown, A: 9, B: 10},
		{At: 500, Kind: LinkDown, A: 13, B: 14},
	}
	rec, hooks := newFateRecorder(t)
	net := New(mesh, cfg, 7, hooks)

	rng := sim.NewRNG(37)
	const packets = 300
	pkts := make(map[noc.PacketID]*noc.Packet, packets)
	now := sim.Cycle(0)
	for i := 0; i < packets; i++ {
		src := topology.NodeID(rng.Intn(mesh.N()))
		dst := topology.NodeID(rng.Intn(mesh.N() - 1))
		if dst >= src {
			dst++
		}
		p := &noc.Packet{ID: noc.PacketID(i + 1), Src: src, Dst: dst, Len: 5, CreatedAt: now}
		pkts[p.ID] = p
		net.Offer(p)
		for j := 0; j < 3; j++ {
			net.Tick(now)
			now++
		}
	}
	drainOrFail(t, net, now, 2000000)

	rs := net.Recovery()
	if rs.Offered != rs.Delivered+rs.Abandoned+rs.Unreachable {
		t.Fatalf("conservation violated: %+v", rs)
	}
	if rs.Unreachable == 0 {
		t.Fatalf("a partition produced no unreachable packets: %+v", rs)
	}
	if rs.Abandoned != 0 {
		t.Fatalf("partitioned pairs must fail fast, not burn retries: %+v", rs)
	}
	side := func(n topology.NodeID) int {
		if mesh.Coord(n).X <= 1 {
			return 0
		}
		return 1
	}
	for id, fate := range rec.fate {
		p := pkts[id]
		if side(p.Src) == side(p.Dst) && fate != "delivered" {
			t.Errorf("same-side packet %d (%d->%d) ended %s", id, p.Src, p.Dst, fate)
		}
		if side(p.Src) != side(p.Dst) && fate == "abandoned" {
			t.Errorf("cross-partition packet %d (%d->%d) was abandoned, want unreachable", id, p.Src, p.Dst)
		}
	}
	if len(rec.fate) != packets {
		t.Fatalf("%d packets resolved via hooks, want %d", len(rec.fate), packets)
	}
}

// TestRouterOutageResolvesEveryPacket kills a mid-mesh router outright. The
// survivors route around the hole; only packets to or from the dead node are
// unreachable, and nothing hangs.
func TestRouterOutageResolvesEveryPacket(t *testing.T) {
	mesh := topology.NewMesh(4)
	cfg := fastControl()
	cfg.RetryLimit = 5
	cfg.WatchdogCycles = 20000
	cfg.Check = true
	cfg.Faults = []FaultEvent{{At: 500, Kind: RouterDown, A: 5}}
	rec, hooks := newFateRecorder(t)
	net := New(mesh, cfg, 55, hooks)

	rng := sim.NewRNG(41)
	const packets = 300
	pkts := make(map[noc.PacketID]*noc.Packet, packets)
	now := sim.Cycle(0)
	for i := 0; i < packets; i++ {
		src := topology.NodeID(rng.Intn(mesh.N()))
		dst := topology.NodeID(rng.Intn(mesh.N() - 1))
		if dst >= src {
			dst++
		}
		p := &noc.Packet{ID: noc.PacketID(i + 1), Src: src, Dst: dst, Len: 5, CreatedAt: now}
		pkts[p.ID] = p
		net.Offer(p)
		for j := 0; j < 3; j++ {
			net.Tick(now)
			now++
		}
	}
	drainOrFail(t, net, now, 2000000)

	rs := net.Recovery()
	if rs.Offered != rs.Delivered+rs.Abandoned+rs.Unreachable {
		t.Fatalf("conservation violated: %+v", rs)
	}
	if rs.Unreachable == 0 {
		t.Fatalf("killing a router stranded no packets: %+v", rs)
	}
	for id, fate := range rec.fate {
		p := pkts[id]
		touchesDead := p.Src == 5 || p.Dst == 5
		if !touchesDead && fate == "unreachable" {
			t.Errorf("packet %d (%d->%d) avoids the dead router but ended unreachable", id, p.Src, p.Dst)
		}
	}
	if len(rec.fate) != packets {
		t.Fatalf("%d packets resolved via hooks, want %d", len(rec.fate), packets)
	}
}

// TestScenarioDeterminism runs the same outage scenario twice from one seed:
// every fate, cycle count and counter must match exactly — scheduled faults
// ride the configuration, not wall-clock or iteration order.
func TestScenarioDeterminism(t *testing.T) {
	run := func() (map[noc.PacketID]string, RecoveryStats) {
		mesh := topology.NewMesh(4)
		cfg := fastControl()
		cfg.RetryLimit = 5
		cfg.Check = true
		cfg.Faults = []FaultEvent{
			{At: 300, Kind: LinkDown, A: 5, B: 6},
			{At: 450, Kind: RouterDown, A: 10},
			{At: 2500, Kind: LinkUp, A: 5, B: 6},
		}
		fates := make(map[noc.PacketID]string)
		hooks := &noc.Hooks{
			PacketDelivered:   func(p *noc.Packet, now sim.Cycle) { fates[p.ID] = fmt.Sprintf("d@%d", now) },
			PacketAbandoned:   func(p *noc.Packet, now sim.Cycle) { fates[p.ID] = fmt.Sprintf("a@%d", now) },
			PacketUnreachable: func(p *noc.Packet, now sim.Cycle) { fates[p.ID] = fmt.Sprintf("u@%d", now) },
		}
		net := New(mesh, cfg, 99, hooks)
		rng := sim.NewRNG(71)
		now := offerRandom(net, mesh, rng, 200, 5, 0)
		for net.InFlightPackets() > 0 && now < 2000000 {
			net.Tick(now)
			now++
		}
		return fates, net.Recovery()
	}
	f1, r1 := run()
	f2, r2 := run()
	if r1 != r2 {
		t.Fatalf("recovery stats differ:\n  %+v\n  %+v", r1, r2)
	}
	if fmt.Sprintf("%v", f1) != fmt.Sprintf("%v", f2) {
		t.Fatal("per-packet fates differ between identical scenario runs")
	}
	if r1.Unreachable == 0 || r1.Delivered == 0 {
		t.Fatalf("determinism run exercised nothing: %+v", r1)
	}
}

// TestConservationFuzz kills a random link at a random cycle (sometimes
// repairing it later) across several seeds; whatever happens, every offered
// packet must end in exactly one of delivered, abandoned or unreachable, with
// the invariant checker on and the watchdog armed the whole time.
func TestConservationFuzz(t *testing.T) {
	mesh := topology.NewMesh(4)
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := sim.NewRNG(seed * 1000)
			a := topology.NodeID(rng.Intn(mesh.N()))
			var b topology.NodeID
			for p := topology.Port(0); p < topology.Local; p++ {
				if nb, ok := mesh.Neighbor(a, p); ok {
					b = nb
					if rng.Intn(2) == 0 {
						break
					}
				}
			}
			at := sim.Cycle(100 + rng.Intn(500))
			faults := []FaultEvent{{At: at, Kind: LinkDown, A: a, B: b}}
			if seed%2 == 0 {
				faults = append(faults, FaultEvent{At: at + 2000, Kind: LinkUp, A: a, B: b})
			}

			cfg := fastControl()
			cfg.RetryLimit = 4
			cfg.WatchdogCycles = 20000
			cfg.Check = true
			cfg.Faults = faults
			rec, hooks := newFateRecorder(t)
			net := New(mesh, cfg, seed, hooks)

			const packets = 150
			now := offerRandom(net, mesh, sim.NewRNG(seed+500), packets, 5, 0)
			drainOrFail(t, net, now, 2000000)

			rs := net.Recovery()
			if rs.Offered != rs.Delivered+rs.Abandoned+rs.Unreachable {
				t.Fatalf("conservation violated (link %d-%d @%d): %+v", a, b, at, rs)
			}
			if len(rec.fate) != packets {
				t.Fatalf("%d packets resolved via hooks, want %d", len(rec.fate), packets)
			}
			if len(rec.dup) > 0 {
				t.Fatalf("double resolutions: %v", rec.dup)
			}
		})
	}
}
