package core

import (
	"fmt"
	"math"

	"frfc/internal/metrics"
	"frfc/internal/noc"
	"frfc/internal/profile"
	"frfc/internal/sim"
	"frfc/internal/topology"
	"frfc/internal/waterfall"
)

// leadState tracks the scheduling progress of one data flit led by a control
// flit resident in this router: its announced arrival at this node and, once
// the output scheduler succeeds, its reserved departure. dead marks a lead
// whose reservation was made toward an output a hard fault severed: its data
// flit departs into the dead wire and is destroyed, so the lead must not be
// announced downstream when the stream re-routes — the new output's table
// never committed it, and the downstream router must not schedule (and
// credit) a flit that can never arrive.
type leadState struct {
	seq       int
	arrival   sim.Cycle
	scheduled bool
	dead      bool
	departAt  sim.Cycle
}

// queuedCtrl is a control flit buffered in a control VC queue together with
// its mutable per-lead scheduling state. admitted records that the output
// reservation table has set aside buffers for all of its leads (per-flit
// scheduling's strand-free admission). routedHere marks the head that
// established the VC's current routing entry, distinguishing a head still
// being scheduled from a fresh head following a stream whose tail a hard
// fault destroyed.
type queuedCtrl struct {
	flit       noc.ControlFlit
	leads      []leadState
	arrivedAt  sim.Cycle
	admitted   bool
	routedHere bool
	// detectedCorrupt marks a flit the modeled hop CRC caught on receive;
	// it is destroyed — stream and leads included, exactly as a hard fault
	// would — once it reaches its queue head, where the per-lead cleanup
	// machinery can run.
	detectedCorrupt bool
}

// ctrlVC is one control virtual channel of one control input: a small FIFO
// plus the routing-table entry (output port) and downstream-VC allocation of
// the packet currently holding the channel. drain marks a stream a hard
// fault destroyed mid-flight: followers are discarded until the tail passes
// (or a fresh head shows the tail itself was destroyed).
type ctrlVC struct {
	q         []queuedCtrl
	routed    bool
	route     topology.Port
	allocated bool
	outVC     int
	drain     bool
}

// ctrlInput is the control-network side of one router input.
type ctrlInput struct {
	exists    bool
	vcs       []ctrlVC
	in        *sim.Pipe[noc.ControlFlit]
	creditOut *sim.Pipe[noc.VCCredit]
}

// ctrlOutput is the control-network side of one router output: credit
// counters and ownership for the downstream control VCs.
type ctrlOutput struct {
	exists   bool
	credits  []int
	owned    []bool
	out      *sim.Pipe[noc.ControlFlit]
	creditIn *sim.Pipe[noc.VCCredit]
}

// portVC names one virtual channel of one control input port.
type portVC struct {
	port topology.Port
	vc   int
}

// Router is one flit-reservation router (Figure 3). It is assembled and
// ticked by Network.
type Router struct {
	id   topology.NodeID
	mesh topology.Mesh
	cfg  Config
	rng  *sim.RNG

	ctrlIn  [topology.NumPorts]ctrlInput
	ctrlOut [topology.NumPorts]ctrlOutput

	// outTables[p] is the output reservation table for output port p;
	// the Local entry governs the ejection channel and treats the
	// downstream (reassembly buffers) as unbounded.
	outTables [topology.NumPorts]*outResTable
	// inputs[p] is the data-side input reservation table and buffer pool
	// for input port p; the Local entry is the injection port fed by the
	// node's network interface.
	inputs [topology.NumPorts]*inputPort

	dataOut      [topology.NumPorts]*sim.Pipe[noc.DataFlit]
	dataCreditIn [topology.NumPorts]*sim.Pipe[noc.ReservationCredit]

	// sinkNotify tells the local sink which packet's flit will arrive on
	// the ejection link at a given cycle; data flits are identified
	// solely by time, so this is the reassembly schedule the destination
	// control flits set up. attempt carries the end-to-end transmission
	// attempt so the sink can tell retries from stragglers.
	sinkNotify func(at sim.Cycle, pkt *noc.Packet, seq, attempt int)

	hooks *noc.Hooks

	// probe is the observability sink; nil when disabled, and every call
	// on a nil probe is a no-op.
	probe *metrics.Probe

	// prof is the self-profiling registry cached off the probe at attach
	// time so the per-tick accounting costs one nil test when disabled.
	prof *profile.Registry

	// wf is the latency-stage ledger cached off the probe at attach time;
	// nil when latency provenance is disabled. The FR router charges a
	// buffered head flit's whole residence to the Sched stage at departure —
	// its wait is by construction the pre-reserved slot, and the bypass path
	// contributes zero.
	wf *waterfall.Ledger

	// progress points at the network-wide movement counter the no-progress
	// watchdog monitors; the router bumps it whenever a flit moves.
	progress *int64

	cands []portVC // scratch
}

func newRouter(id topology.NodeID, mesh topology.Mesh, cfg Config, rng *sim.RNG) *Router {
	r := &Router{id: id, mesh: mesh, cfg: cfg, rng: rng}
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		hasLink := p == topology.Local || mesh.HasLink(id, p)
		if !hasLink {
			continue
		}
		var ledger *eagerLedger
		if cfg.TrackEagerTransfers {
			ledger = newEagerLedger(cfg.DataBuffers)
		}
		r.inputs[p] = newInputPort(cfg.DataBuffers, ledger, cfg.DataFaultRate > 0 || cfg.BER > 0 || len(cfg.Faults) > 0)
		r.inputs[p].node = int(id)
		r.inputs[p].portIndex = int(p)
		r.outTables[p] = newOutResTable(cfg.Horizon, cfg.DataBuffers, cfg.CtrlVCs, p == topology.Local)
		ci := ctrlInput{exists: true, vcs: make([]ctrlVC, cfg.CtrlVCs)}
		r.ctrlIn[p] = ci
		if p != topology.Local {
			co := ctrlOutput{exists: true,
				credits: make([]int, cfg.CtrlVCs),
				owned:   make([]bool, cfg.CtrlVCs)}
			for v := range co.credits {
				co.credits[v] = cfg.CtrlBufPerVC
			}
			r.ctrlOut[p] = co
		}
	}
	return r
}

// attachProbe points the router and its input ports at the observability
// probe; nil detaches.
func (r *Router) attachProbe(p *metrics.Probe) {
	r.probe = p
	r.prof = p.Profile()
	r.wf = p.Waterfall()
	for i := range r.inputs {
		if r.inputs[i] != nil {
			r.inputs[i].probe = p
		}
	}
}

// dataLatencyFor is the data propagation delay out of the given output port.
func (r *Router) dataLatencyFor(p topology.Port) sim.Cycle {
	if p == topology.Local {
		return r.cfg.LocalLatency
	}
	return r.cfg.DataLinkLatency
}

// Tick advances the router one cycle, in the order that makes the
// intra-cycle dataflow of Section 3 work out: reservation state is brought
// current, control flits are processed (possibly reserving an arrival
// happening this very cycle), then data flits depart and finally arrive.
func (r *Router) Tick(now sim.Cycle) {
	// Self-profiling work counters: credit messages absorbed, arbitration
	// work units, data flits through the crossbar. Plain integer adds, so
	// the disabled-profiling cost is negligible.
	var arb, sw, cred int
	for p := range r.outTables {
		if r.outTables[p] != nil {
			r.outTables[p].advance(now)
		}
	}
	for p := range r.dataCreditIn {
		if r.dataCreditIn[p] == nil {
			continue
		}
		table := r.outTables[p]
		cred += r.dataCreditIn[p].RecvEach(now, func(c noc.ReservationCredit) {
			table.creditFrom(c.FreeFrom, c.VC)
		})
	}
	for p := range r.ctrlOut {
		co := &r.ctrlOut[p]
		if !co.exists || co.creditIn == nil {
			continue
		}
		cred += co.creditIn.RecvEach(now, func(c noc.VCCredit) {
			co.credits[c.VC]++
			if co.credits[c.VC] > r.cfg.CtrlBufPerVC {
				panic("core: control credit overflow")
			}
		})
	}
	for p := range r.ctrlIn {
		ci := &r.ctrlIn[p]
		if !ci.exists || ci.in == nil {
			continue
		}
		arb += ci.in.RecvEach(now, func(cf noc.ControlFlit) {
			vc := &ci.vcs[cf.VC]
			leads := make([]leadState, len(cf.Leads))
			for i, le := range cf.Leads {
				leads[i] = leadState{seq: le.Seq, arrival: le.Arrival, departAt: sim.Never}
			}
			qc := queuedCtrl{flit: cf, leads: leads, arrivedAt: now}
			if cf.Corrupted {
				r.probe.Corrupt(int(r.id))
				// The detection draw happens at receive so RNG order is
				// a function of link traffic alone, not of queueing.
				if r.crcDetect() {
					qc.detectedCorrupt = true
					r.hooks.CrcDetected(now)
				}
			}
			vc.q = append(vc.q, qc)
			if len(vc.q) > r.cfg.CtrlBufPerVC {
				panic(fmt.Sprintf("core: node %d control buffer overflow on %s vc %d", r.id, topology.Port(p), cf.VC))
			}
		})
	}

	walked, sched := r.processControl(now)
	arb += walked

	for p := range r.inputs {
		in := r.inputs[p]
		if in == nil {
			continue
		}
		in.departures(now, func(f noc.DataFlit, out topology.Port) {
			sw++
			r.sendData(now, f, out)
		})
	}
	for p := range r.inputs {
		in := r.inputs[p]
		if in == nil || in.dataIn == nil {
			continue
		}
		sw += in.dataIn.RecvEach(now, func(f noc.DataFlit) {
			if r.wf != nil && f.Seq == 0 && f.Packet.Sampled {
				r.wf.Arrive(uint64(f.Packet.ID), uint8(f.Attempt), now)
			}
			if f.Corrupted {
				r.probe.Corrupt(int(r.id))
				if r.crcDetect() {
					// The hop CRC caught the damage: the flit is
					// discarded into the established loss path — its
					// reservation expires unclaimed and the destination's
					// no-show detection triggers the end-to-end retry.
					r.hooks.CrcDetected(now)
					r.hooks.Dropped(f.Packet, now)
					return
				}
			}
			if in.condemnedArrival(now) {
				// The control flit that was to schedule this data flit
				// was destroyed by a hard fault; the flit has nowhere to
				// go and would park forever.
				r.hooks.Dropped(f.Packet, now)
				return
			}
			if !in.arrive(now, f, func(f noc.DataFlit, out topology.Port) {
				r.sendData(now, f, out)
			}) {
				// Phantom-orphaned flits overcommitted the pool; the
				// refused flit is destroyed and recovered end to end.
				r.hooks.Dropped(f.Packet, now)
			}
		})
		// Any reservation for this cycle still unclaimed means the
		// flit was destroyed en route — an idle pattern arrived in its
		// place. Drop the reservation; every later table the control
		// flit touched cleans itself up the same way.
		in.expireExpected(now)
		if r.cfg.ReclaimCycles > 0 {
			in.reclaim(now, r.cfg.ReclaimCycles, func(f noc.DataFlit) {
				r.hooks.Dropped(f.Packet, now)
			})
		}
	}
	r.prof.RouterTick(int(r.id), sched, arb, sw, cred)
}

// crcDetect draws whether the modeled c-bit hop CRC catches a corrupted
// flit: detection probability 1 − 2⁻ᶜ. CrcBits < 0 disables hop checking
// entirely (every corruption escapes to the end-to-end layer). The draw
// consumes the router's RNG only when a corrupted flit is actually
// examined, so corruption-free traffic replays bit-identically whether or
// not CRC modeling is configured.
func (r *Router) crcDetect() bool {
	if r.cfg.CrcBits < 0 {
		return false
	}
	return r.rng.Bool(1 - math.Exp2(-float64(r.cfg.CrcBits)))
}

// ctrlLossy reports whether control flits can be destroyed in flight in
// this configuration — by hard faults or by CRC-discarded corruption. The
// stream-repair paths it gates would mask real scheduling defects in a
// loss-free run, so they stay panics otherwise.
func (r *Router) ctrlLossy() bool {
	return len(r.cfg.Faults) > 0 || r.cfg.BER > 0
}

// sendData launches a data flit onto an output link, subject to fault
// injection on inter-router links.
func (r *Router) sendData(now sim.Cycle, f noc.DataFlit, out topology.Port) {
	*r.progress++
	if out != topology.Local && r.cfg.DataFaultRate > 0 && r.rng.Bool(r.cfg.DataFaultRate) {
		r.hooks.Dropped(f.Packet, now)
		return
	}
	r.probe.Traverse(now, int(r.id), int(out), uint64(f.Packet.ID), f.Seq)
	if r.wf != nil && f.Seq == 0 && f.Packet.Sampled {
		r.wf.Depart(uint64(f.Packet.ID), uint8(f.Attempt), now, true)
	}
	r.dataOut[out].Send(now, f)
}

// processControl walks the control flits at the front of every control VC in
// random order — the paper's random arbitration — performing routing, output
// scheduling, input scheduling, and forwarding. Each output scheduler
// processes at most CtrlFlitsPerCycle control flits per cycle, matching the
// control network's bandwidth. It reports the self-profiling work counts:
// arb candidates walked by the arbiter and sched output-scheduler
// invocations.
func (r *Router) processControl(now sim.Cycle) (arb, sched int) {
	r.cands = r.cands[:0]
	for p := range r.ctrlIn {
		ci := &r.ctrlIn[p]
		if !ci.exists {
			continue
		}
		for v := range ci.vcs {
			vc := &ci.vcs[v]
			if len(vc.q) > 0 && vc.q[0].arrivedAt < now {
				r.cands = append(r.cands, portVC{topology.Port(p), v})
			}
		}
	}
	for i := len(r.cands) - 1; i > 0; i-- {
		j := r.rng.Intn(i + 1)
		r.cands[i], r.cands[j] = r.cands[j], r.cands[i]
	}
	var budget [topology.NumPorts]int
	for p := range budget {
		budget[p] = r.cfg.CtrlFlitsPerCycle
	}
	arb = len(r.cands)
	for _, cand := range r.cands {
		ci := &r.ctrlIn[cand.port]
		vc := &ci.vcs[cand.vc]
		qc := &vc.q[0]
		if vc.drain {
			if qc.flit.Type.IsHead() {
				// A fresh head while draining means the old stream's
				// tail was itself destroyed; the new stream is intact.
				vc.drain = false
			} else {
				r.discardCtrl(now, ci, vc, cand.vc, cand.port)
				continue
			}
		}
		if qc.detectedCorrupt {
			// CRC-caught corruption: destroy the flit and its stream's
			// remainder exactly as a hard fault would — the leads'
			// no-shows surface at the destination as losses and the
			// end-to-end retry recovers the packet.
			r.discardCtrl(now, ci, vc, cand.vc, cand.port)
			continue
		}
		if vc.routed && !qc.routedHere && qc.flit.Type.IsHead() && r.ctrlLossy() {
			// The previous stream's tail died on a severed wire before it
			// could close the channel; a new head can only follow a
			// complete (or destroyed) stream, so close the old one out.
			if vc.allocated {
				r.ctrlOut[vc.route].owned[vc.outVC] = false
			}
			vc.routed, vc.allocated = false, false
		}
		if !vc.routed {
			if !qc.flit.Type.IsHead() {
				if r.ctrlLossy() {
					// Mid-stream loss (a severed wire or a CRC-discarded
					// flit) broke the wormhole framing; discard to the
					// tail.
					r.discardCtrl(now, ci, vc, cand.vc, cand.port)
					continue
				}
				panic(fmt.Sprintf("core: node %d: %s at front of unrouted control VC", r.id, qc.flit))
			}
			route, ok := r.cfg.Routing.NextPort(r.mesh, r.id, qc.flit.Dst)
			if !ok {
				// No surviving route to the destination. Destroy the
				// stream here; the source resolves the packet through
				// the unreachable fast path or its retry budget.
				r.discardCtrl(now, ci, vc, cand.vc, cand.port)
				continue
			}
			vc.route = route
			vc.routed = true
			qc.routedHere = true
			r.probe.Route(now, int(r.id), int(vc.route), uint64(qc.flit.Packet.ID))
		}
		out := vc.route
		if budget[out] <= 0 {
			r.probe.ArbConflict(int(r.id), int(out))
			continue
		}
		budget[out]--
		// Away from the destination, the packet's downstream control VC
		// is allocated before any of its reservations are made, so that
		// every downstream buffer residency is attributable to a
		// control VC — the bookkeeping behind the pool-reservation
		// deadlock-avoidance rule.
		if out != topology.Local && !vc.allocated && !r.allocateCtrlVC(vc, out) {
			r.probe.CreditStall(int(r.id), int(out))
			continue
		}
		sched++
		if !r.scheduleLeads(now, qc, vc, out, cand.port) {
			continue
		}
		if out == topology.Local {
			r.consume(now, ci, vc, cand.vc)
		} else {
			r.forward(now, ci, vc, cand.vc, out)
		}
	}
	return arb, sched
}

// allocateCtrlVC gives the packet at the head of vc a downstream control VC
// on output port out, chosen uniformly among the free ones; it reports false
// when all are owned.
func (r *Router) allocateCtrlVC(vc *ctrlVC, out topology.Port) bool {
	co := &r.ctrlOut[out]
	free := -1
	nfree := 0
	for dv, owned := range co.owned {
		if !owned {
			nfree++
			if r.rng.Intn(nfree) == 0 {
				free = dv
			}
		}
	}
	if free == -1 {
		return false
	}
	co.owned[free] = true
	vc.outVC = free
	vc.allocated = true
	return true
}

// scheduleLeads runs the output scheduler for every still-unscheduled data
// flit of qc and reports whether all are now scheduled. In the default
// per-flit mode, each success is committed immediately (its reservation
// signal and upstream credit go out even if a sibling fails); in
// all-or-nothing mode the whole set commits or none does. Reservations are
// attributed to the packet's downstream control VC (its input VC at the
// destination, where no control VC is consumed).
func (r *Router) scheduleLeads(now sim.Cycle, qc *queuedCtrl, vc *ctrlVC, out, inPort topology.Port) bool {
	table := r.outTables[out]
	tp := r.dataLatencyFor(out)
	attrVC := vc.outVC // meaningful only when out != Local; ejection ignores it
	if out == topology.Local {
		attrVC = 0
	}
	if r.cfg.AllOrNothing {
		type tentative struct {
			lead int
			td   sim.Cycle
		}
		var committed []tentative
		for i := range qc.leads {
			if qc.leads[i].scheduled {
				continue
			}
			td, ok := table.findDeparture(now, qc.leads[i].arrival, tp, attrVC)
			if !ok {
				for _, t := range committed {
					table.uncommit(t.td, tp, attrVC)
				}
				r.probe.ReserveMiss(int(r.id), int(out))
				return false
			}
			table.commit(td, tp, attrVC)
			committed = append(committed, tentative{lead: i, td: td})
		}
		for _, t := range committed {
			r.probe.ReserveHit(now, int(r.id), int(out), uint64(qc.flit.Packet.ID), t.td)
			r.finalizeLead(now, qc, &qc.leads[t.lead], t.td, out, inPort)
		}
		return true
	}
	// Per-flit mode: the control flit is first admitted — all of its
	// leads' buffers claimed downstream — so that the data flits released
	// early can never be stranded waiting for a control flit that cannot
	// finish scheduling (the wedge analyzed on outResTable.claims).
	if !qc.admitted {
		k := 0
		for i := range qc.leads {
			if !qc.leads[i].scheduled {
				k++
			}
		}
		if !table.admit(attrVC, k) {
			r.probe.ReserveMiss(int(r.id), int(out))
			return false
		}
		qc.admitted = true
	}
	allDone := true
	for i := range qc.leads {
		ld := &qc.leads[i]
		if ld.scheduled {
			continue
		}
		td, ok := table.findDeparture(now, ld.arrival, tp, attrVC)
		if !ok {
			r.probe.ReserveMiss(int(r.id), int(out))
			allDone = false
			continue
		}
		table.releaseClaim(attrVC)
		table.commit(td, tp, attrVC)
		r.probe.ReserveHit(now, int(r.id), int(out), uint64(qc.flit.Packet.ID), td)
		r.finalizeLead(now, qc, ld, td, out, inPort)
	}
	return allDone
}

// finalizeLead records a successful reservation: the input scheduler learns
// the departure, a credit announcing the buffer's future release returns
// upstream, and — at the destination — the sink learns which packet's flit
// the ejection channel will deliver and when.
func (r *Router) finalizeLead(now sim.Cycle, qc *queuedCtrl, ld *leadState, td sim.Cycle, out, inPort topology.Port) {
	in := r.inputs[inPort]
	// A corrupted control flit that escaped the hop CRC installs phantom
	// reservations: table state the real data flit must never be claimed
	// by, because the announced schedule is garbage. Everything else about
	// the flit's progress — credits, forwarding, sink notification —
	// proceeds normally, which is exactly the silent-corruption hazard.
	in.reserve(now, ld.arrival, td, out, qc.flit.Corrupted)
	if in.creditOut != nil {
		// The freed residency is attributed to the control VC this
		// flit arrived on, which is the upstream scheduler's VC for
		// this link.
		in.creditOut.Send(now, noc.ReservationCredit{FreeFrom: td, VC: qc.flit.VC})
	}
	ld.scheduled = true
	ld.departAt = td
	if out == topology.Local {
		r.sinkNotify(td+r.cfg.LocalLatency, qc.flit.Packet, ld.seq, qc.flit.Attempt)
	}
}

// consume retires a control flit at its destination: every data flit it led
// has been scheduled into the ejection channel, so the control flit's work is
// done. Its buffer is freed (credit upstream) and on a tail the control VC's
// routing entry is released.
func (r *Router) consume(now sim.Cycle, ci *ctrlInput, vc *ctrlVC, vcIdx int) {
	qc := vc.q[0]
	r.popCtrl(now, ci, vc, vcIdx)
	if qc.flit.Type.IsTail() {
		vc.routed = false
		vc.allocated = false
	}
}

// forward sends a fully scheduled control flit to the next router, rewriting
// each lead's arrival time to the cycle its data flit will reach that router
// (t_d + t_p). The downstream control VC was allocated before scheduling;
// credits and link bandwidth gate the send, and a blocked flit simply
// retries next cycle.
func (r *Router) forward(now sim.Cycle, ci *ctrlInput, vc *ctrlVC, vcIdx int, out topology.Port) {
	co := &r.ctrlOut[out]
	qc := &vc.q[0]
	if !vc.allocated {
		panic("core: forwarding a control flit with no allocated downstream VC")
	}
	if co.credits[vc.outVC] <= 0 || !co.out.CanSend(now) {
		r.probe.CreditStall(int(r.id), int(out))
		return
	}
	r.probe.CtrlForward(int(r.id), int(out))
	nf := qc.flit
	nf.VC = vc.outVC
	nf.Leads = make([]noc.LeadEntry, 0, len(qc.leads))
	for _, ld := range qc.leads {
		if ld.dead {
			continue // scheduled into a severed wire; the flit dies there
		}
		nf.Leads = append(nf.Leads, noc.LeadEntry{Seq: ld.seq, Arrival: ld.departAt + r.cfg.DataLinkLatency})
	}
	co.out.Send(now, nf)
	co.credits[vc.outVC]--
	isTail := qc.flit.Type.IsTail()
	r.popCtrl(now, ci, vc, vcIdx)
	if isTail {
		co.owned[vc.outVC] = false
		vc.allocated = false
		vc.routed = false
	}
}

// discardCtrl destroys the control flit at the front of vc after a hard
// fault cut its route or broke its stream. Its unscheduled leads' data flits
// are destroyed too: ones already parked are dropped now, future arrivals
// are condemned so they are dropped on sight. Scheduled leads keep their
// reservations — that data is real and departs normally (dying on the
// severed wire if its route is gone). The flit's buffer credit flows
// upstream as usual, and the VC drains until the stream's tail passes.
//
// Each destroyed unscheduled lead still holds a buffer residency in the
// upstream scheduler's table (debited at commit, normally released by
// finalizeLead's credit). The lead will never be finalized, so the residency
// is released here — otherwise every discarded stream would leak upstream
// buffers until its source wedges.
func (r *Router) discardCtrl(now sim.Cycle, ci *ctrlInput, vc *ctrlVC, vcIdx int, inPort topology.Port) {
	qc := &vc.q[0]
	in := r.inputs[inPort]
	for i := range qc.leads {
		ld := &qc.leads[i]
		if ld.scheduled {
			continue
		}
		if f, ok := in.dropParked(ld.arrival); ok {
			r.hooks.Dropped(f.Packet, now)
		} else if ld.arrival >= now {
			in.condemn(ld.arrival)
		}
		if in.creditOut != nil && !in.creditOut.Severed() {
			freeFrom := now
			if ld.arrival > freeFrom {
				freeFrom = ld.arrival
			}
			in.creditOut.Send(now, noc.ReservationCredit{FreeFrom: freeFrom, VC: qc.flit.VC})
		}
	}
	isTail := qc.flit.Type.IsTail()
	r.popCtrl(now, ci, vc, vcIdx)
	vc.drain = !isTail
}

// severOutput reacts to output port p's link dying: every control stream
// routed to p is cut loose — its channel state cleared and its remaining
// flits marked for draining — because the stream can never make progress
// again (routes computed after the fault avoid p, and everything the stream
// already sent into the wire is destroyed).
func (r *Router) severOutput(p topology.Port) {
	co := &r.ctrlOut[p]
	for ip := range r.ctrlIn {
		ci := &r.ctrlIn[ip]
		if !ci.exists {
			continue
		}
		for v := range ci.vcs {
			vc := &ci.vcs[v]
			if !vc.routed || vc.route != p {
				continue
			}
			if vc.allocated && co.exists {
				co.owned[vc.outVC] = false
			}
			vc.routed, vc.allocated = false, false
			vc.drain = true
			// Claims the queued flits held on the dying output's table die
			// with the table; if a still-queued head survives to re-route,
			// it must be re-admitted on the new output from scratch. Leads
			// already scheduled into the dying output die with it too —
			// their data is destroyed on the wire, so the re-routed stream
			// must not announce them downstream.
			for i := range vc.q {
				vc.q[i].admitted = false
				for j := range vc.q[i].leads {
					if vc.q[i].leads[j].scheduled {
						vc.q[i].leads[j].dead = true
					}
				}
			}
		}
	}
}

// popCtrl dequeues the front control flit of a VC and returns its buffer
// credit upstream.
func (r *Router) popCtrl(now sim.Cycle, ci *ctrlInput, vc *ctrlVC, vcIdx int) {
	*r.progress++
	copy(vc.q, vc.q[1:])
	vc.q[len(vc.q)-1] = queuedCtrl{}
	vc.q = vc.q[:len(vc.q)-1]
	if ci.creditOut != nil {
		ci.creditOut.Send(now, noc.VCCredit{VC: vcIdx})
	}
}

// bufferUsage reports occupied and total data buffers across input ports.
func (r *Router) bufferUsage() (used, capacity int) {
	for p := range r.inputs {
		if r.inputs[p] == nil {
			continue
		}
		used += r.inputs[p].occupied
		capacity += r.cfg.DataBuffers
	}
	return used, capacity
}

// pendingWork reports whether any control or data state is still in flight
// inside the router, used by drain checks.
func (r *Router) pendingWork() int {
	n := 0
	for p := range r.ctrlIn {
		if !r.ctrlIn[p].exists {
			continue
		}
		for v := range r.ctrlIn[p].vcs {
			n += len(r.ctrlIn[p].vcs[v].q)
		}
	}
	for p := range r.inputs {
		if r.inputs[p] != nil {
			n += r.inputs[p].pending()
		}
	}
	return n
}
