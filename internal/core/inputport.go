package core

import (
	"fmt"
	"sort"

	"frfc/internal/metrics"
	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

// poolSlot is one buffer of an input port's data pool. A slot is bound to a
// concrete flit only at arrival time (deferred allocation); its departure
// time and output port come from the reservation.
type poolSlot struct {
	occupied bool
	flit     noc.DataFlit
	departAt sim.Cycle // sim.Never while the flit is parked unscheduled
	outPort  topology.Port
}

// reservation is one pending entry of the input reservation table: a data
// flit will arrive at a known cycle and must leave at departAt through
// outPort.
type reservation struct {
	departAt sim.Cycle
	outPort  topology.Port
	// phantom marks a reservation installed by a corrupted control flit
	// that escaped the hop CRC: its schedule is garbage the real traffic
	// must never act on. The arriving data flit is not claimed by it — the
	// flit parks until timeout reclamation collects it — and the entry
	// itself dissolves unclaimed through the ordinary expiry path.
	phantom bool
}

// inputPort is the data-network side of one router input: the buffer pool,
// the input reservation table (expected arrivals), and the schedule list
// (flits that arrived before their control flit finished scheduling,
// Section 3). Data flits are identified solely by their arrival cycle; the
// one-flit-per-cycle channel makes that identification unambiguous.
type inputPort struct {
	pool     []poolSlot
	occupied int
	// expected maps a future arrival cycle to its reservation.
	expected map[sim.Cycle]reservation
	// parked maps the arrival cycle of an already-arrived, unscheduled
	// flit to the pool slot holding it (the logical schedule list).
	parked map[sim.Cycle]int
	// parkedTotal counts every flit that ever passed through the
	// schedule list, a measure of how often data overtakes its control
	// flit.
	parkedTotal int64
	// phantoms counts reservations installed by corrupted control flits
	// that escaped the hop CRC — table state no real traffic ever claims.
	phantoms int64
	// reclaimed counts parked flits collected by timeout reclamation:
	// their control flit was corrupted, so nothing would ever have
	// scheduled them out of the pool.
	reclaimed int64
	// condemned marks arrival cycles whose control stream a hard fault
	// destroyed: the data flit, if it still arrives, is dropped on sight
	// instead of parking forever on the schedule list.
	condemned map[sim.Cycle]bool

	dataIn    *sim.Pipe[noc.DataFlit]
	creditOut *sim.Pipe[noc.ReservationCredit]

	ledger *eagerLedger // non-nil when counting hypothetical eager-allocation transfers

	// probe, with the port's identity, reports late reservations (flits
	// parked ahead of their control flit); nil when observability is off.
	probe     *metrics.Probe
	node      int
	portIndex int

	// faultTolerant permits a reservation for a past arrival with no
	// parked flit — the flit was destroyed upstream and its late control
	// flit doesn't know. Without fault injection that situation is a
	// scheduling bug and panics.
	faultTolerant bool
}

func newInputPort(buffers int, ledger *eagerLedger, faultTolerant bool) *inputPort {
	return &inputPort{
		pool:          make([]poolSlot, buffers),
		expected:      make(map[sim.Cycle]reservation),
		parked:        make(map[sim.Cycle]int),
		condemned:     make(map[sim.Cycle]bool),
		ledger:        ledger,
		faultTolerant: faultTolerant,
	}
}

// reserve records a reservation signal from the output scheduler: the data
// flit arriving at ta departs at departAt through outPort. If the flit has
// already arrived it is claimed from the schedule list; otherwise the input
// reservation table notes the expected arrival.
//
// phantom marks a reservation made by a corrupted control flit that escaped
// the hop CRC. Its announced schedule is garbage, so it must never capture
// real data: an already-parked flit stays parked (timeout reclamation
// collects it), and a future arrival gets a phantom table entry that
// dissolves unclaimed — the arriving flit parks beside it instead.
func (p *inputPort) reserve(now, ta, departAt sim.Cycle, outPort topology.Port, phantom bool) {
	if phantom {
		p.phantoms++
		if _, parked := p.parked[ta]; parked || ta < now {
			return
		}
		if _, dup := p.expected[ta]; dup {
			// Never overwrite a real reservation with a phantom one.
			return
		}
		p.expected[ta] = reservation{departAt: departAt, outPort: outPort, phantom: true}
		return
	}
	if slot, ok := p.parked[ta]; ok {
		delete(p.parked, ta)
		s := &p.pool[slot]
		if !s.occupied || s.departAt != sim.Never {
			panic("core: schedule list pointed at a slot that is not parked")
		}
		s.departAt = departAt
		s.outPort = outPort
		p.ledger.onScheduleParked(now, ta, departAt)
		return
	}
	if ta < now {
		if p.faultTolerant {
			// The flit was destroyed en route and never arrived;
			// the reservation dissolves. The upstream credit still
			// flows (the buffer was reserved but never bound, so
			// releasing it at the scheduled departure stays exact)
			// and the departure slot simply idles.
			return
		}
		panic(fmt.Sprintf("core: reservation for past arrival %d at cycle %d with no parked flit", ta, now))
	}
	if _, dup := p.expected[ta]; dup {
		panic(fmt.Sprintf("core: duplicate reservation for arrival cycle %d", ta))
	}
	p.expected[ta] = reservation{departAt: departAt, outPort: outPort}
	p.ledger.onReserve(ta, departAt)
}

// arrive handles a data flit that reached this input at cycle now. A flit
// reserved to depart this same cycle bypasses the buffer pool entirely and is
// handed straight to fn (the paper's bypass path — zero buffer residency);
// otherwise it is bound to a free pool buffer. Reservation accounting
// guarantees a buffer is free in a corruption-free run; running out then
// indicates a scheduling bug and panics. Under fault injection the pool can
// be transiently overcommitted — a phantom-orphaned flit occupies its slot
// until reclamation while the credit its control flit sent upstream already
// promised the slot free — so the arriving flit is refused (return false)
// and the caller drops it into the loss path. A phantom reservation for this
// cycle is ignored: the flit parks beside it as if unannounced.
func (p *inputPort) arrive(now sim.Cycle, f noc.DataFlit, bypass func(f noc.DataFlit, out topology.Port)) bool {
	if r, ok := p.expected[now]; ok && !r.phantom && r.departAt == now {
		delete(p.expected, now)
		bypass(f, r.outPort)
		return true
	}
	slot := -1
	for i := range p.pool {
		if !p.pool[i].occupied {
			slot = i
			break
		}
	}
	if slot == -1 {
		if p.faultTolerant {
			return false
		}
		panic(fmt.Sprintf("core: data flit %s arrived at cycle %d with no free buffer — reservation accounting violated", f, now))
	}
	s := &p.pool[slot]
	s.occupied = true
	s.flit = f
	p.occupied++
	if r, ok := p.expected[now]; ok && !r.phantom {
		delete(p.expected, now)
		s.departAt = r.departAt
		s.outPort = r.outPort
		return true
	}
	// Arrived before its control flit finished scheduling: park it on the
	// schedule list.
	s.departAt = sim.Never
	s.outPort = 0
	if _, dup := p.parked[now]; dup {
		panic("core: two flits parked with the same arrival cycle on one input")
	}
	p.parked[now] = slot
	p.parkedTotal++
	p.probe.Late(now, p.node, p.portIndex, uint64(f.Packet.ID), f.Seq)
	p.ledger.onParkedArrival(now)
	return true
}

// departures invokes fn for every flit scheduled to leave at cycle now and
// frees its buffer. The one-reservation-per-output-cycle rule upstream
// guarantees distinct flits never contend for a channel here.
func (p *inputPort) departures(now sim.Cycle, fn func(f noc.DataFlit, out topology.Port)) {
	for i := range p.pool {
		s := &p.pool[i]
		if !s.occupied || s.departAt != now {
			continue
		}
		s.occupied = false
		p.occupied--
		fn(s.flit, s.outPort)
		s.flit = noc.DataFlit{}
		s.departAt = sim.Never
	}
}

// expireExpected discards a reservation whose data flit failed to arrive at
// its scheduled cycle (destroyed by a fault upstream): the channel slot the
// departure reserved simply goes idle and no buffer was ever bound, so
// accounting stays consistent. It must run after the cycle's arrivals. A
// condemned cycle whose flit never showed up expires the same way.
func (p *inputPort) expireExpected(now sim.Cycle) {
	delete(p.expected, now)
	delete(p.condemned, now)
}

// condemn marks a future arrival cycle as orphaned: the control flit that
// was to schedule the arriving data flit has been destroyed by a hard fault,
// so the flit must be dropped on arrival rather than parked forever.
func (p *inputPort) condemn(ta sim.Cycle) { p.condemned[ta] = true }

// condemnedArrival reports (and consumes) whether the flit arriving at now
// belongs to a destroyed control stream.
func (p *inputPort) condemnedArrival(now sim.Cycle) bool {
	if p.condemned[now] {
		delete(p.condemned, now)
		return true
	}
	return false
}

// dropParked removes and returns the flit parked under arrival cycle ta, if
// any: its control flit has been destroyed by a hard fault, so it can never
// be scheduled out of the pool.
func (p *inputPort) dropParked(ta sim.Cycle) (noc.DataFlit, bool) {
	slot, ok := p.parked[ta]
	if !ok {
		return noc.DataFlit{}, false
	}
	delete(p.parked, ta)
	s := &p.pool[slot]
	f := s.flit
	s.occupied = false
	p.occupied--
	s.flit = noc.DataFlit{}
	s.departAt = sim.Never
	return f, true
}

// reclaim collects parked flits no control flit will ever schedule: a flit
// parked longer than timeout cycles is dropped into the loss path. In a
// corruption-free run nothing waits that long — a healthy flit's schedule-
// list residency is bounded by the control network's worst queueing delay —
// so only phantom-orphaned flits are ever collected. Stale slots are
// processed in arrival order so a run replays bit-identically.
func (p *inputPort) reclaim(now, timeout sim.Cycle, drop func(noc.DataFlit)) {
	if len(p.parked) == 0 {
		return
	}
	var stale []sim.Cycle
	for ta := range p.parked {
		if now-ta >= timeout {
			stale = append(stale, ta)
		}
	}
	if len(stale) == 0 {
		return
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
	for _, ta := range stale {
		f, _ := p.dropParked(ta)
		p.reclaimed++
		drop(f)
	}
}

// purgeOutput erases every reservation and buffered flit bound for output
// port out. It runs when the link behind out is repaired and the output's
// reservation table is rebuilt from scratch: departures committed on the old
// table would collide with the fresh table's bookkeeping, so their flits are
// destroyed (reported through drop) and their not-yet-arrived brethren are
// condemned. Parked flits stay — their control flit will schedule them on
// the fresh table.
func (p *inputPort) purgeOutput(out topology.Port, drop func(noc.DataFlit)) {
	for ta, r := range p.expected {
		if r.outPort == out {
			delete(p.expected, ta)
			p.condemned[ta] = true
		}
	}
	for i := range p.pool {
		s := &p.pool[i]
		if s.occupied && s.departAt != sim.Never && s.outPort == out {
			s.occupied = false
			p.occupied--
			drop(s.flit)
			s.flit = noc.DataFlit{}
			s.departAt = sim.Never
		}
	}
}

// reset returns the input port to its just-built state, destroying every
// buffered flit (reported through drop) and every reservation. It runs when
// the link feeding this input is repaired: the upstream router restarts with
// a fresh reservation table that believes every buffer here is free, so the
// port must actually be empty or its pool would be overcommitted.
func (p *inputPort) reset(drop func(noc.DataFlit)) {
	for i := range p.pool {
		s := &p.pool[i]
		if s.occupied {
			drop(s.flit)
		}
		*s = poolSlot{departAt: sim.Never}
	}
	p.occupied = 0
	for ta := range p.expected {
		delete(p.expected, ta)
	}
	for ta := range p.parked {
		delete(p.parked, ta)
	}
	for ta := range p.condemned {
		delete(p.condemned, ta)
	}
}

// pending reports buffered flits plus outstanding expectations, used by the
// drain check at the end of a run.
func (p *inputPort) pending() int {
	return p.occupied + len(p.expected)
}
