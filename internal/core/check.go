package core

import (
	"fmt"

	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

// check is the runtime invariant checker (Config.Check): at the end of every
// cycle it audits the conservation laws the protocol's correctness rests on.
// A violation is a simulator bug — or fault-handling that leaked state — and
// panics with a diagnostic dump.
func (n *Network) check(now sim.Cycle) {
	for i := range n.links {
		n.checkLink(now, &n.links[i])
	}
	for id := range n.routers {
		if n.isDead(topology.NodeID(id)) {
			continue
		}
		n.checkLocal(now, topology.NodeID(id))
		n.checkRouter(now, topology.NodeID(id))
	}
}

func (n *Network) fail(now sim.Cycle, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	panic(fmt.Sprintf("core: invariant violated at cycle %d: %s\n%s", now, msg, n.DumpState()))
}

// checkLink audits one directed inter-router link. A severed link must be
// empty; a live one must conserve control credits per VC: sender credit
// counter + credits on the wire + flits queued downstream + flits on the wire
// always equals the downstream VC's buffer depth.
func (n *Network) checkLink(now sim.Cycle, l *linkPipes) {
	if l.data.Severed() {
		empty := 0
		l.data.Each(func(noc.DataFlit) { empty++ })
		l.resvCredit.Each(func(noc.ReservationCredit) { empty++ })
		l.ctrl.Each(func(noc.ControlFlit) { empty++ })
		l.ctrlCredit.Each(func(noc.VCCredit) { empty++ })
		if empty != 0 {
			n.fail(now, "severed link %d->%d carries %d in-flight items", l.a, l.b, empty)
		}
		return
	}
	co := &n.routers[l.a].ctrlOut[l.p]
	ci := &n.routers[l.b].ctrlIn[l.p.Opposite()]
	for v := 0; v < n.cfg.CtrlVCs; v++ {
		total := co.credits[v] + len(ci.vcs[v].q)
		l.ctrlCredit.Each(func(c noc.VCCredit) {
			if c.VC == v {
				total++
			}
		})
		l.ctrl.Each(func(f noc.ControlFlit) {
			if f.VC == v {
				total++
			}
		})
		if total != n.cfg.CtrlBufPerVC {
			n.fail(now, "link %d->%d vc %d: control credits not conserved: %d accounted, want %d",
				l.a, l.b, v, total, n.cfg.CtrlBufPerVC)
		}
	}
}

// checkLocal audits the injection control link between a node's interface and
// its router, which conserves credits the same way as an inter-router link.
func (n *Network) checkLocal(now sim.Cycle, id topology.NodeID) {
	ni := n.nis[id]
	ci := &n.routers[id].ctrlIn[topology.Local]
	for v := 0; v < n.cfg.CtrlVCs; v++ {
		total := ni.ctrlCredits[v] + len(ci.vcs[v].q)
		ni.ctrlCreditIn.Each(func(c noc.VCCredit) {
			if c.VC == v {
				total++
			}
		})
		ni.ctrlOut.Each(func(f noc.ControlFlit) {
			if f.VC == v {
				total++
			}
		})
		if total != n.cfg.CtrlBufPerVC {
			n.fail(now, "node %d injection vc %d: control credits not conserved: %d accounted, want %d",
				id, v, total, n.cfg.CtrlBufPerVC)
		}
	}
	n.checkTable(now, fmt.Sprintf("NI %d injection table", id), ni.injTable)
}

// checkRouter audits one router's reservation tables and buffer pools.
func (n *Network) checkRouter(now sim.Cycle, id topology.NodeID) {
	r := n.routers[id]
	for p := range r.outTables {
		if t := r.outTables[p]; t != nil {
			n.checkTable(now, fmt.Sprintf("node %d out %s", id, topology.Port(p)), t)
		}
	}
	for p := range r.inputs {
		in := r.inputs[p]
		if in == nil {
			continue
		}
		occ := 0
		for i := range in.pool {
			if in.pool[i].occupied {
				occ++
			}
		}
		if occ != in.occupied {
			n.fail(now, "node %d input %s: occupied counter %d but %d slots in use",
				id, topology.Port(p), in.occupied, occ)
		}
		for ta, slot := range in.parked {
			s := &in.pool[slot]
			if !s.occupied || s.departAt != sim.Never {
				n.fail(now, "node %d input %s: schedule-list entry for arrival %d points at a non-parked slot",
					id, topology.Port(p), ta)
			}
			// The leak invariant reclamation exists to enforce: no parked
			// flit outlives the reclamation timeout. Phantom-orphaned
			// flits must be collected the very cycle they go stale, so any
			// older survivor is a leaked buffer slot.
			if n.cfg.ReclaimCycles > 0 && now-ta > n.cfg.ReclaimCycles {
				n.fail(now, "node %d input %s: parked flit from cycle %d outlived the %d-cycle reclamation timeout — reservation slot leaked",
					id, topology.Port(p), ta, n.cfg.ReclaimCycles)
			}
		}
		// Expected arrivals are installed at most one control-flit journey
		// ahead of their data and expire the cycle they fall due, so every
		// surviving entry — phantom ones included — must lie in the future.
		for ta := range in.expected {
			if ta < now {
				n.fail(now, "node %d input %s: expected-arrival entry for past cycle %d survived its expiry",
					id, topology.Port(p), ta)
			}
		}
	}
}

// checkTable audits one output reservation table's bookkeeping ranges.
func (n *Network) checkTable(now sim.Cycle, what string, t *outResTable) {
	if t.infinite {
		return
	}
	if t.steady < 0 || t.steady > t.cap {
		n.fail(now, "%s: steady free count %d outside [0,%d]", what, t.steady, t.cap)
	}
	for i, f := range t.free {
		if f < 0 || f > t.cap {
			n.fail(now, "%s: free-buffer cell %d holds %d, outside [0,%d]", what, i, f, t.cap)
		}
	}
	for v := range t.outstanding {
		if t.outstanding[v] < 0 {
			n.fail(now, "%s: vc %d outstanding residency count %d is negative", what, v, t.outstanding[v])
		}
		if t.claims[v] < 0 {
			n.fail(now, "%s: vc %d claim count %d is negative", what, v, t.claims[v])
		}
	}
}
