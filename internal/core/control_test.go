package core

import (
	"testing"

	"frfc/internal/noc"
	"frfc/internal/routing"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

// TestControlFlitsStayOrderedPerPacket verifies the wormhole discipline of
// the control network: a packet's control flits traverse every hop in order
// on one control VC, so body flits always find their head's routing-table
// entry. The sink's reassembly cross-check would panic on any violation;
// this test additionally tracks per-packet ejection-schedule order at a
// chosen destination.
func TestControlFlitsStayOrderedPerPacket(t *testing.T) {
	mesh := topology.NewMesh(4)
	type sched struct {
		seq int
		at  sim.Cycle
	}
	perPacket := map[noc.PacketID][]sched{}
	net := New(mesh, fastControl(), 31, &noc.Hooks{})
	// Wrap every sink's Expect to observe the reassembly schedule in the
	// order destination control flits build it.
	for i := range net.routers {
		inner := net.sinks[i].Expect
		i := i
		net.routers[i].sinkNotify = func(at sim.Cycle, pkt *noc.Packet, seq, attempt int) {
			perPacket[pkt.ID] = append(perPacket[pkt.ID], sched{seq: seq, at: at})
			inner(at, pkt, seq, attempt)
		}
	}
	rng := sim.NewRNG(12)
	now := sim.Cycle(0)
	const packets = 200
	for i := 0; i < packets; i++ {
		src := topology.NodeID(rng.Intn(mesh.N()))
		dst := topology.NodeID(rng.Intn(mesh.N() - 1))
		if dst >= src {
			dst++
		}
		net.Offer(&noc.Packet{ID: noc.PacketID(i + 1), Src: src, Dst: dst, Len: 5, CreatedAt: now})
		for j := 0; j < 3; j++ {
			net.Tick(now)
			now++
		}
	}
	drainOrFail(t, net, now, 500000)
	for id, ss := range perPacket {
		if len(ss) != 5 {
			t.Fatalf("packet %d scheduled %d ejections, want 5", id, len(ss))
		}
		for i := 1; i < len(ss); i++ {
			// With d=1 and an in-order control worm, ejections are
			// scheduled in flit order.
			if ss[i].seq != ss[i-1].seq+1 {
				t.Fatalf("packet %d ejection schedule out of order: %v", id, ss)
			}
		}
	}
}

// TestYXRoutingWorksEndToEnd exercises the routing-function extension point:
// the whole network runs under YX routing instead of XY.
func TestYXRoutingWorksEndToEnd(t *testing.T) {
	mesh := topology.NewMesh(4)
	cfg := fastControl()
	cfg.Routing = routing.Function(func(m topology.Mesh, cur, dst topology.NodeID) topology.Port {
		cc, cd := m.Coord(cur), m.Coord(dst)
		switch {
		case cd.Y > cc.Y:
			return topology.South
		case cd.Y < cc.Y:
			return topology.North
		case cd.X > cc.X:
			return topology.East
		case cd.X < cc.X:
			return topology.West
		default:
			return topology.Local
		}
	})
	rec, hooks := newRecorder()
	net := New(mesh, cfg, 5, hooks)
	rng := sim.NewRNG(9)
	now := sim.Cycle(0)
	const packets = 150
	for i := 0; i < packets; i++ {
		src := topology.NodeID(rng.Intn(mesh.N()))
		dst := topology.NodeID(rng.Intn(mesh.N() - 1))
		if dst >= src {
			dst++
		}
		net.Offer(&noc.Packet{ID: noc.PacketID(i), Src: src, Dst: dst, Len: 5, CreatedAt: now})
		for j := 0; j < 4; j++ {
			net.Tick(now)
			now++
		}
	}
	for len(rec.delivered) < packets && now < 300000 {
		net.Tick(now)
		now++
	}
	if len(rec.delivered) != packets {
		t.Fatalf("YX routing delivered %d of %d", len(rec.delivered), packets)
	}
}

// TestConfigValidation exercises every structural check.
func TestConfigValidation(t *testing.T) {
	base := fastControl()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no-buffers", func(c *Config) { c.DataBuffers = -1 }},
		{"no-ctrl-vcs", func(c *Config) { c.CtrlVCs = -1 }},
		{"no-leads", func(c *Config) { c.LeadsPerCtrl = -1 }},
		{"tiny-horizon", func(c *Config) { c.Horizon = 1 }},
		{"horizon-below-link", func(c *Config) { c.Horizon = 4; c.DataLinkLatency = 4 }},
		{"buffers-below-vcs", func(c *Config) { c.DataBuffers = 2; c.CtrlVCs = 4 }},
		{"wide-ctrl-small-pool", func(c *Config) { c.DataBuffers = 4; c.LeadsPerCtrl = 4; c.CtrlVCs = 2 }},
		{"negative-lead", func(c *Config) { c.LeadCycles = -1 }},
		{"negative-data-fault", func(c *Config) { c.DataFaultRate = -0.1 }},
		{"data-fault-above-one", func(c *Config) { c.DataFaultRate = 1.5 }},
		{"nan-data-fault", func(c *Config) { c.DataFaultRate = nan() }},
		{"negative-ctrl-fault", func(c *Config) { c.CtrlFaultRate = -0.1 }},
		{"ctrl-fault-above-one", func(c *Config) { c.CtrlFaultRate = 2 }},
		{"nan-ctrl-fault", func(c *Config) { c.CtrlFaultRate = nan() }},
		{"ctrl-fault-certain", func(c *Config) { c.CtrlFaultRate = 1 }},
		{"negative-retry-limit", func(c *Config) { c.RetryLimit = -1 }},
		{"negative-backoff", func(c *Config) { c.RetryBackoffBase = -1 }},
		{"negative-retry-timeout", func(c *Config) { c.RetryTimeout = -1 }},
		{"negative-nack-latency", func(c *Config) { c.NackLatency = -1 }},
		{"negative-watchdog", func(c *Config) { c.WatchdogCycles = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid config %q did not panic", tc.name)
				}
			}()
			cfg := base
			tc.mutate(&cfg)
			cfg = cfg.withDefaults()
			cfg.validate()
		})
	}
}
