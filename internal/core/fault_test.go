package core

import (
	"testing"

	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

// faultedConfig is the fast-control test configuration with data-flit faults.
func faultedConfig(rate float64) Config {
	c := fastControl()
	c.DataFaultRate = rate
	return c
}

// TestFaultInjectionKeepsTablesConsistent exercises the Section 5 error
// story end to end: with a percent-level flit loss rate under sustained
// load, the network must keep running (no reservation-table panics), deliver
// every packet that lost no flit, detect every packet that did, and drain
// completely.
func TestFaultInjectionKeepsTablesConsistent(t *testing.T) {
	mesh := topology.NewMesh(4)
	delivered := map[noc.PacketID]bool{}
	lost := map[noc.PacketID]bool{}
	droppedFrom := map[noc.PacketID]int{}
	hooks := &noc.Hooks{
		PacketDelivered: func(p *noc.Packet, now sim.Cycle) { delivered[p.ID] = true },
		PacketLost:      func(p *noc.Packet, now sim.Cycle) { lost[p.ID] = true },
		FlitDropped:     func(p *noc.Packet, now sim.Cycle) { droppedFrom[p.ID]++ },
	}
	net := New(mesh, faultedConfig(0.01), 15, hooks)

	rng := sim.NewRNG(99)
	now := sim.Cycle(0)
	const packets = 600
	for i := 0; i < packets; i++ {
		src := topology.NodeID(rng.Intn(mesh.N()))
		dst := topology.NodeID(rng.Intn(mesh.N() - 1))
		if dst >= src {
			dst++
		}
		net.Offer(&noc.Packet{ID: noc.PacketID(i), Src: src, Dst: dst, Len: 5, CreatedAt: now})
		for j := 0; j < 3; j++ {
			net.Tick(now)
			now++
		}
	}
	drainOrFail(t, net, now, 500000)
	droppedFlits, lostPackets := net.FaultStats()
	if droppedFlits == 0 {
		t.Fatal("fault injection at 1% dropped nothing over 3000 flits")
	}
	if int64(len(lost)) != lostPackets {
		t.Fatalf("lost-packet hook fired %d times, network counted %d", len(lost), lostPackets)
	}
	for id := 0; id < packets; id++ {
		pid := noc.PacketID(id)
		switch {
		case droppedFrom[pid] > 0 && !lost[pid]:
			t.Errorf("packet %d lost %d flits but was never reported lost", pid, droppedFrom[pid])
		case droppedFrom[pid] == 0 && !delivered[pid]:
			t.Errorf("packet %d lost no flits but was not delivered", pid)
		case delivered[pid] && lost[pid]:
			t.Errorf("packet %d reported both delivered and lost", pid)
		}
	}
}

// TestFaultFreeRunReportsNoFaults: the counters stay zero without injection.
func TestFaultFreeRunReportsNoFaults(t *testing.T) {
	mesh := topology.NewMesh(4)
	_, hooks := newRecorder()
	net := New(mesh, fastControl(), 4, hooks)
	now := sim.Cycle(0)
	net.Offer(&noc.Packet{ID: 1, Src: 0, Dst: 15, Len: 5, CreatedAt: 0})
	for net.InFlightPackets() > 0 && now < 2000 {
		net.Tick(now)
		now++
	}
	if d, l := net.FaultStats(); d != 0 || l != 0 {
		t.Fatalf("fault-free run reported %d drops, %d losses", d, l)
	}
}

// TestHighFaultRateStillDrains pushes loss to 20%: nearly every multi-hop
// packet dies, yet the network must stay live and resolve everything.
func TestHighFaultRateStillDrains(t *testing.T) {
	mesh := topology.NewMesh(4)
	hooks := &noc.Hooks{}
	net := New(mesh, faultedConfig(0.20), 23, hooks)
	rng := sim.NewRNG(5)
	now := sim.Cycle(0)
	const packets = 300
	for i := 0; i < packets; i++ {
		src := topology.NodeID(rng.Intn(mesh.N()))
		dst := topology.NodeID(rng.Intn(mesh.N() - 1))
		if dst >= src {
			dst++
		}
		net.Offer(&noc.Packet{ID: noc.PacketID(i), Src: src, Dst: dst, Len: 5, CreatedAt: now})
		net.Tick(now)
		now++
	}
	drainOrFail(t, net, now, 500000)
	if _, lostPackets := net.FaultStats(); lostPackets == 0 {
		t.Fatal("20% loss rate lost no packets")
	}
}

// TestFaultWithLateControlOn8x8 reproduces the case a smaller mesh rarely
// hits: a flit destroyed upstream whose control flit is itself delayed, so
// the reservation arrives after the flit's scheduled (and missed) arrival
// cycle. The reservation must dissolve without wedging or panicking.
func TestFaultWithLateControlOn8x8(t *testing.T) {
	mesh := topology.NewMesh(8)
	hooks := &noc.Hooks{}
	net := New(mesh, faultedConfig(0.002), 7, hooks)
	rng := sim.NewRNG(3)
	now := sim.Cycle(0)
	id := noc.PacketID(0)
	for ; now < 8000; now++ {
		for n := 0; n < mesh.N(); n++ {
			if rng.Bool(0.05) { // ~50% load
				dst := topology.NodeID(rng.Intn(mesh.N() - 1))
				if dst >= topology.NodeID(n) {
					dst++
				}
				id++
				net.Offer(&noc.Packet{ID: id, Src: topology.NodeID(n), Dst: dst, Len: 5, CreatedAt: now})
			}
		}
		net.Tick(now)
	}
	drainOrFail(t, net, now, 1000000)
	dropped, lost := net.FaultStats()
	if dropped == 0 || lost == 0 {
		t.Fatalf("fault injection inactive: dropped=%d lost=%d", dropped, lost)
	}
}
