// Package core implements flit-reservation flow control, the paper's primary
// contribution. Control flits traverse a separate control network in advance
// of the data flits and reserve data-network buffers and channel bandwidth
// cycle by cycle; data flits carry payload only and are steered purely by
// their pre-arranged schedule.
//
// A router (Figure 3 of the paper) consists of:
//
//   - a control network side: per-input control virtual channels with small
//     queues, credit-based wormhole allocation, and a routing table indexed
//     by control VCID;
//   - an output reservation table per output port recording, for every cycle
//     out to the scheduling horizon, whether the output channel is reserved
//     and how many buffers will be free at the downstream input pool;
//   - an input reservation table per input port directing, cycle by cycle,
//     which buffer each arriving data flit is written to and which buffer is
//     driven onto which output channel;
//   - a shared data-buffer pool per input port, with a specific buffer chosen
//     only when the flit arrives (deferred allocation, Section 5).
//
// Reservation signals update the input reservation table and return credits
// upstream announcing the future cycle a buffer frees, so buffers are
// accounted busy only for the flit's actual residency — zero turnaround.
package core

import (
	"fmt"

	"frfc/internal/routing"
	"frfc/internal/sim"
)

// Config selects a flit-reservation network configuration. The paper's
// measured points are FR6 (6 data buffers, 2 control VCs) and FR13 (13 data
// buffers, 4 control VCs); see internal/experiment for the named presets.
type Config struct {
	// DataBuffers is b_d, the size of each input port's pooled data-flit
	// buffer.
	DataBuffers int
	// CtrlVCs is v_c, the number of virtual channels per control channel.
	CtrlVCs int
	// CtrlBufPerVC is the depth of each control VC queue (3 in the
	// paper's configurations).
	CtrlBufPerVC int
	// Horizon is s, the scheduling horizon: at cycle t the latest
	// reservable departure is t+Horizon (32 in the paper; swept 16–128
	// in Figure 7).
	Horizon sim.Cycle
	// LeadsPerCtrl is d, the maximum number of data flits led by one
	// control flit (1 in the paper's measured configurations; Section 5
	// discusses wider control flits).
	LeadsPerCtrl int
	// CtrlFlitsPerCycle is the control channel bandwidth in control
	// flits per cycle (2 in the paper: two narrow control flits are
	// injected and processed per cycle).
	CtrlFlitsPerCycle int

	// DataLinkLatency is the data-wire propagation delay between
	// adjacent routers (4 with fast control wires, 1 in the
	// leading-control configuration).
	DataLinkLatency sim.Cycle
	// CtrlLinkLatency is the control-wire propagation delay (1 cycle in
	// both configurations).
	CtrlLinkLatency sim.Cycle
	// CreditLatency is the credit-wire propagation delay (1 cycle).
	CreditLatency sim.Cycle
	// LocalLatency is the injection/ejection data link delay between a
	// network interface and its router.
	LocalLatency sim.Cycle
	// LeadCycles is N, the number of cycles data flits are deferred
	// behind their control flits at injection (0 under fast control;
	// 1, 2, 4 in Figure 8's leading-control experiments).
	LeadCycles sim.Cycle

	// AllOrNothing switches output scheduling from the default per-flit
	// mode to all-or-nothing: a control flit's reservations commit only
	// if every data flit it leads can be scheduled (Section 5 ablation;
	// it only differs from per-flit mode when LeadsPerCtrl > 1).
	AllOrNothing bool
	// TrackEagerTransfers, when set, runs a shadow ledger that assigns
	// specific buffers at reservation time — the alternative policy of
	// Figure 10 — and counts the buffer-to-buffer transfers that policy
	// would force. It does not change network behavior.
	TrackEagerTransfers bool
	// SourceInterleave lets a node's network interface work on several
	// packets' control flits concurrently, one per control VC. The
	// default (false) models the paper's constant-rate source: a FIFO
	// queue whose packets start injection strictly in order (data flits
	// of consecutive packets still overlap, since injection times are
	// scheduled).
	SourceInterleave bool

	// DataFaultRate injects faults: each data flit transmission on an
	// inter-router link is lost with this probability, exercising the
	// error story of Section 5 — the downstream router receives an idle
	// pattern where its input reservation table expected data, drops the
	// reservation, and the scheduling tables return to a consistent
	// state with no lost buffers or stalled links. The destination
	// detects the hole in its reassembly schedule and reports the packet
	// lost (and, with RetryLimit > 0, triggers an end-to-end retry).
	DataFaultRate float64
	// CtrlFaultRate corrupts each control flit transmission on an
	// inter-router control link with this probability. Corrupted control
	// flits are recovered by link-level detection-and-retransmission —
	// the receiver detects the corruption, NACKs, and the sender replays
	// from its per-VC retransmit buffer after one link round-trip — so
	// control information is delayed but never lost, completing the
	// Section 5 error story. Data flits led by a delayed control flit
	// simply park on the downstream schedule list until it catches up.
	CtrlFaultRate float64

	// BER is the per-link residual bit-error rate: each flit transmission
	// (data or control) on an inter-router link is delivered on time but
	// with its Corrupted flag set with this probability — corruption as
	// delivery, distinct from the loss of DataFaultRate and the delay of
	// CtrlFaultRate. Corrupted flits are hunted by the modeled hop-level CRC
	// (CrcBits) and, for payload, the end-to-end check (E2ECheck); whatever
	// escapes both is a silent-corruption delivery. Must be < 1.
	BER float64
	// CrcBits is c, the modeled strength of the hop-level CRC: a receiving
	// router catches a corrupted flit with probability 1 − 2^−c. A detected
	// corrupt data flit is discarded into the existing loss path (hole
	// detection, NACK, retry); a detected corrupt control flit is discarded
	// with its reservations released, exactly like the hard-fault discard
	// path. 0 takes the default of 16 bits; negative disables the hop CRC
	// entirely so every corruption escapes to the end-to-end layer.
	CrcBits int
	// E2ECheck verifies the reassembled packet's payload checksum at the
	// destination interface: a packet any of whose delivered flits were
	// corrupted is treated as lost (and retried under RetryLimit) instead
	// of delivered. With the check off such packets are delivered anyway
	// and counted as corrupt escapes, making the residual-error rate
	// measurable.
	E2ECheck bool
	// ReclaimCycles hardens the reservation tables against escaped control
	// corruption: a data flit parked on an input's schedule list longer
	// than this many cycles can no longer be claimed by any truthful
	// control flit (phantom reservation damage), so it is reclaimed — the
	// buffer freed and the flit dropped into the loss path. 0 takes the
	// default of 8×Horizon when BER > 0, otherwise reclamation is off.
	// Reclamation also bounds the checker's leak invariant: with it active
	// no parked flit may outlive the timeout.
	ReclaimCycles sim.Cycle

	// RetryLimit enables end-to-end packet retry when positive: the
	// destination's hole detection sends a loss notification (NACK) back
	// to the source, which re-offers the packet, up to RetryLimit times
	// before abandoning it. Zero keeps the detection-only behavior where
	// a loss resolves the packet's fate.
	RetryLimit int
	// RetryBackoffBase is the delay before the first retry injection;
	// each subsequent retry of the same packet doubles it (exponential
	// backoff). Defaults to 64 cycles when RetryLimit > 0.
	RetryBackoffBase sim.Cycle
	// RetryTimeout, when positive, is the source's per-packet timer: if
	// neither a delivery acknowledgment nor a loss notification arrives
	// within RetryTimeout cycles of the packet's (re-)injection, the
	// source retries as if a NACK had arrived. Zero relies on the
	// (in-model reliable) notification plane alone.
	RetryTimeout sim.Cycle
	// NackLatency is the modeled control-plane latency of end-to-end
	// delivery/loss notifications between a destination and a source
	// interface. Defaults to 16 cycles when RetryLimit > 0.
	NackLatency sim.Cycle

	// WatchdogCycles arms the no-progress watchdog when positive: if
	// packets are in flight, no recovery action (notification or retry
	// timer) is pending, and no flit has moved for WatchdogCycles cycles,
	// the network captures a diagnostic snapshot of every stalled
	// router's reservation tables, parked flits and control VC state and
	// surfaces it through the Wedged hook.
	WatchdogCycles sim.Cycle

	// Routing selects the routing algorithm; nil means dimension-ordered
	// XY routing, the paper's choice. Hard-fault scenarios (Faults) need
	// fault-aware routing and force a per-topology lookup table unless one
	// was supplied.
	Routing routing.Algorithm

	// Faults is the deterministic hard-fault scenario: scheduled link and
	// router outages applied between cycles, severing wires and destroying
	// whatever they carry. Events must be in non-decreasing cycle order and
	// are validated against the mesh by New. The scenario is part of the
	// configuration — and therefore of the harness job hash — so runs stay
	// bit-identical across worker counts.
	Faults []FaultEvent

	// Check enables the per-cycle runtime invariant checker: control-credit
	// conservation per link, reservation-table consistency, buffer-pool
	// consistency, and emptiness of severed pipes. A violation panics with
	// a diagnostic snapshot. Roughly doubles per-cycle cost; meant for CI
	// smoke runs and debugging, not sweeps.
	Check bool
}

// withDefaults fills unset fields with the paper's FR6 values.
func (c Config) withDefaults() Config {
	if c.DataBuffers == 0 {
		c.DataBuffers = 6
	}
	if c.CtrlVCs == 0 {
		c.CtrlVCs = 2
	}
	if c.CtrlBufPerVC == 0 {
		c.CtrlBufPerVC = 3
	}
	if c.Horizon == 0 {
		c.Horizon = 32
	}
	if c.LeadsPerCtrl == 0 {
		c.LeadsPerCtrl = 1
	}
	if c.CtrlFlitsPerCycle == 0 {
		c.CtrlFlitsPerCycle = 2
	}
	if c.DataLinkLatency == 0 {
		c.DataLinkLatency = 4
	}
	if c.CtrlLinkLatency == 0 {
		c.CtrlLinkLatency = 1
	}
	if c.CreditLatency == 0 {
		c.CreditLatency = 1
	}
	if c.LocalLatency == 0 {
		c.LocalLatency = 1
	}
	if c.Routing == nil {
		c.Routing = routing.XY
	}
	corrupt := c.BER > 0 || hasCorruptFaults(c.Faults)
	if corrupt {
		if c.CrcBits == 0 {
			c.CrcBits = 16
		}
		if c.ReclaimCycles == 0 {
			c.ReclaimCycles = 8 * c.Horizon
		}
	}
	if c.RetryLimit > 0 {
		if c.RetryBackoffBase == 0 {
			c.RetryBackoffBase = 64
		}
		if c.NackLatency == 0 {
			c.NackLatency = 16
		}
		if (len(c.Faults) > 0 || corrupt) && c.RetryTimeout == 0 {
			// A hard fault can destroy a packet so completely that no
			// destination ever learns it existed, and a CRC-discarded
			// control stream can die before the destination is told to
			// expect anything — in both cases NACK-based detection alone
			// never fires, so these runs need the source timer.
			c.RetryTimeout = 1024
		}
	}
	return c
}

// validate panics on structurally impossible configurations.
func (c Config) validate() {
	if c.DataBuffers < 1 {
		panic(fmt.Sprintf("core: DataBuffers must be >= 1, got %d", c.DataBuffers))
	}
	if c.CtrlVCs < 1 || c.CtrlBufPerVC < 1 {
		panic("core: control network needs at least one VC with one buffer")
	}
	if c.LeadsPerCtrl < 1 {
		panic("core: LeadsPerCtrl must be >= 1")
	}
	if c.CtrlFlitsPerCycle < 1 {
		panic("core: CtrlFlitsPerCycle must be >= 1")
	}
	if c.Horizon < 2 {
		panic("core: Horizon must be at least 2 cycles")
	}
	if c.DataLinkLatency < 1 || c.CtrlLinkLatency < 1 || c.CreditLatency < 1 || c.LocalLatency < 1 {
		panic("core: link latencies must be >= 1 cycle")
	}
	if c.Horizon <= c.DataLinkLatency {
		panic("core: Horizon must exceed DataLinkLatency or nothing can ever be reserved")
	}
	if c.DataBuffers < c.CtrlVCs {
		panic("core: DataBuffers must be at least CtrlVCs — each control VC needs one reservable buffer downstream for deadlock freedom")
	}
	if !c.AllOrNothing && c.DataBuffers < c.LeadsPerCtrl+c.CtrlVCs-1 {
		panic("core: per-flit scheduling needs DataBuffers >= LeadsPerCtrl + CtrlVCs - 1 so a wide control flit can always be admitted downstream")
	}
	if c.LeadCycles < 0 {
		panic("core: LeadCycles must be >= 0")
	}
	validateRate("DataFaultRate", c.DataFaultRate)
	validateRate("CtrlFaultRate", c.CtrlFaultRate)
	validateRate("BER", c.BER)
	if c.CtrlFaultRate == 1 {
		panic("core: CtrlFaultRate must be < 1 — a link that corrupts every transmission can never deliver")
	}
	if c.BER == 1 {
		panic("core: BER must be < 1 — a link that corrupts every transmission carries no information")
	}
	if c.CrcBits > 62 {
		panic(fmt.Sprintf("core: CrcBits must be <= 62, got %d", c.CrcBits))
	}
	if c.ReclaimCycles < 0 {
		panic("core: ReclaimCycles must be >= 0")
	}
	if c.RetryLimit < 0 {
		panic(fmt.Sprintf("core: RetryLimit must be >= 0, got %d", c.RetryLimit))
	}
	if c.RetryLimit > 0 && (c.RetryBackoffBase < 1 || c.NackLatency < 1) {
		panic("core: retry needs RetryBackoffBase >= 1 and NackLatency >= 1")
	}
	if c.RetryBackoffBase < 0 || c.RetryTimeout < 0 || c.NackLatency < 0 || c.WatchdogCycles < 0 {
		panic("core: retry/watchdog cycle parameters must be >= 0")
	}
}

// validateRate rejects fault probabilities outside [0,1], including NaN
// (which compares false against everything and would otherwise slip through
// range checks silently).
func validateRate(name string, r float64) {
	if r != r || r < 0 || r > 1 {
		panic(fmt.Sprintf("core: %s must be a probability in [0,1], got %v", name, r))
	}
}
