package core

import (
	"fmt"

	"frfc/internal/sim"
)

// outResTable is the output reservation table of Figure 4: for every cycle in
// the window [base, base+size) it records whether the output channel is
// reserved (busy) and how many buffers will be free at the downstream input
// pool. The window slides forward with time, with circular reuse as cycles
// expire; steady holds the free-buffer count at and beyond the window's end,
// so newly revealed cells inherit the net effect of every reservation and
// credit seen so far.
//
// Reservations decrement the free count from the flit's downstream arrival
// (t_d + t_p) through the horizon; credits from the downstream node increment
// it from the announced departure cycle onward. A reservation whose arrival
// lands past the window's end is carried in the future list and applied as
// the window reveals those cycles.
type outResTable struct {
	size   int // Horizon+1 cells: departures reservable in [now+1, now+Horizon]
	base   sim.Cycle
	busy   []bool
	free   []int
	cap    int // downstream pool capacity, for overflow checks
	steady int
	// infinite marks the ejection channel, whose downstream (reassembly
	// buffers) never fills; only the busy bits are meaningful.
	infinite bool

	// outstanding[v] counts downstream buffer residencies attributed to
	// control VC v of this link: incremented per committed reservation,
	// decremented per returned credit. The reservation rule leaves one
	// buffer free for every *other* VC with no outstanding residency, so
	// a packet holding a control VC can always eventually land its next
	// flit downstream — without this, the shared pool and the wormhole
	// control channels form the deadlock cycle Section 5 of the paper
	// warns about (dependencies "in both directions between control
	// flits ... and data flits that share a single buffer pool").
	outstanding []int

	// claims[v] counts downstream buffers set aside for the
	// still-unscheduled leads of control VC v's mid-schedule control
	// flit. Under per-flit scheduling with d > 1, a control flit whose
	// early leads are committed lets their data flits race ahead and
	// park downstream; those flits can only be drained by this very
	// control flit, so it must be guaranteed to finish. A control flit
	// is therefore admitted — all of its leads claimed at once — before
	// its first commit, and every other VC's searches leave the claimed
	// buffers alone. Claims release one by one as the leads commit.
	claims []int

	// future holds at-infinity deltas already folded into steady whose
	// effect must be excluded from cells revealed before their cycle.
	future []futureDelta

	// sufMin is scratch for departure searches.
	sufMin []int
}

type futureDelta struct {
	at    sim.Cycle
	delta int
}

func newOutResTable(horizon sim.Cycle, buffers, ctrlVCs int, infinite bool) *outResTable {
	size := int(horizon) + 1
	t := &outResTable{
		size:        size,
		busy:        make([]bool, size),
		free:        make([]int, size),
		cap:         buffers,
		steady:      buffers,
		infinite:    infinite,
		outstanding: make([]int, ctrlVCs),
		claims:      make([]int, ctrlVCs),
		sufMin:      make([]int, size+1),
	}
	for i := range t.free {
		t.free[i] = buffers
	}
	return t
}

func (t *outResTable) idx(c sim.Cycle) int {
	if c < 0 {
		panic("core: negative cycle in reservation table")
	}
	return int(c % sim.Cycle(t.size))
}

// end returns one past the last cycle in the window.
func (t *outResTable) end() sim.Cycle { return t.base + sim.Cycle(t.size) }

// advance slides the window so it starts at now, recycling expired cells.
func (t *outResTable) advance(now sim.Cycle) {
	if now < t.base {
		panic("core: reservation table advanced backwards")
	}
	if now-t.base >= sim.Cycle(t.size) {
		// The whole window expired (only possible in tests that jump
		// time); reset every cell.
		t.base = now
		for i := range t.busy {
			t.busy[i] = false
		}
		for c := t.base; c < t.end(); c++ {
			t.free[t.idx(c)] = t.revealValue(c)
		}
		t.pruneFuture()
		return
	}
	for t.base < now {
		// The cell for cycle t.base expires and is recycled as the
		// cell for cycle t.base+size.
		revealed := t.base + sim.Cycle(t.size)
		i := t.idx(t.base)
		t.busy[i] = false
		t.free[i] = t.revealValue(revealed)
		t.base++
	}
	t.pruneFuture()
}

// revealValue computes the free count for a newly revealed cell at cycle c:
// steady, excluding future events that take effect only after c.
func (t *outResTable) revealValue(c sim.Cycle) int {
	v := t.steady
	for _, f := range t.future {
		if f.at > c {
			v -= f.delta
		}
	}
	return v
}

func (t *outResTable) pruneFuture() {
	n := 0
	for _, f := range t.future {
		// Keep events that can still affect cells revealed later;
		// the next cell to be revealed is at cycle end().
		if f.at > t.end() {
			t.future[n] = f
			n++
		}
	}
	t.future = t.future[:n]
}

// findDeparture returns the earliest departure cycle t_d in
// [max(ta, now+1), now+Horizon] at which the channel is unreserved and, for
// every cycle from t_d+tp through the horizon, at least one downstream buffer
// is free (the availability rule of Section 3). ok is false when no such
// cycle exists within the horizon — the control flit must stall and retry.
//
// t_d may equal ta: a flit whose departure is reserved for its own arrival
// cycle bypasses the router entirely, completing the hop in exactly the link
// propagation time — the zero-residency fast path that gives flit reservation
// its lower base latency (Section 3's bypass). A flit that has already
// arrived (ta < now) can depart no earlier than the next cycle.
//
// vc is the control VC (of this link) on whose behalf the reservation is
// made; the search demands `1 + reserve(vc)` free buffers rather than 1, so
// that every other currently-idle control VC keeps a buffer available (the
// deadlock-avoidance rule described on the outstanding field).
func (t *outResTable) findDeparture(now, ta, tp sim.Cycle, vc int) (td sim.Cycle, ok bool) {
	if t.base != now {
		panic("core: findDeparture called before advancing the table")
	}
	start := ta
	if start < now+1 {
		start = now + 1
	}
	if start >= t.end() {
		return 0, false
	}
	if t.infinite {
		for c := start; c < t.end(); c++ {
			if !t.busy[t.idx(c)] {
				return c, true
			}
		}
		return 0, false
	}
	need := 1 + t.reserve(vc)
	// Suffix minimum of the free counts lets each candidate departure be
	// checked in O(1): sufMin[i] = min over window cells [base+i, end).
	t.sufMin[t.size] = t.steady
	for i := t.size - 1; i >= 0; i-- {
		v := t.free[t.idx(t.base+sim.Cycle(i))]
		if t.sufMin[i+1] < v {
			v = t.sufMin[i+1]
		}
		t.sufMin[i] = v
	}
	for c := start; c < t.end(); c++ {
		if t.busy[t.idx(c)] {
			continue
		}
		arr := c + tp
		minFree := t.steady
		if arr < t.end() {
			minFree = t.sufMin[arr-t.base]
		}
		if minFree >= need && t.steady >= need {
			return c, true
		}
	}
	return 0, false
}

// reserve reports how many downstream buffers must be left untouched by a
// reservation on behalf of control VC vc: every other VC's claimed buffers,
// plus one per other VC that has neither residents nor claims downstream (so
// a future head always finds a first buffer).
func (t *outResTable) reserve(vc int) int {
	r := 0
	for w := range t.outstanding {
		if w == vc {
			continue
		}
		switch {
		case t.claims[w] > 0:
			r += t.claims[w]
		case t.outstanding[w] == 0:
			r++
		}
	}
	return r
}

// admit sets aside k downstream buffers for a control flit on VC vc before
// its first per-flit commit, so that once any of its leads is committed the
// rest are guaranteed to fit eventually. It reports false (claiming nothing)
// when the steady-state free count cannot cover the claim on top of every
// other VC's protections.
func (t *outResTable) admit(vc, k int) bool {
	if t.infinite {
		return true
	}
	if t.steady < k+t.reserve(vc) {
		return false
	}
	t.claims[vc] += k
	return true
}

// releaseClaim converts one of VC vc's admitted claims into a real
// reservation; the caller pairs it with commit.
func (t *outResTable) releaseClaim(vc int) {
	if t.infinite {
		return
	}
	t.claims[vc]--
	if t.claims[vc] < 0 {
		panic("core: claim released without admission")
	}
}

// commit reserves the channel at td and one downstream buffer (attributed to
// control VC vc) from td+tp onward. The caller must have obtained td from
// findDeparture in the same cycle (no intervening commits invalidate it only
// if re-checked; the router always pairs find+commit).
func (t *outResTable) commit(td, tp sim.Cycle, vc int) {
	i := t.idx(td)
	if t.busy[i] {
		panic("core: committing a departure on a busy channel cycle")
	}
	if td < t.base || td >= t.end() {
		panic(fmt.Sprintf("core: departure %d outside window [%d,%d)", td, t.base, t.end()))
	}
	t.busy[i] = true
	if t.infinite {
		return
	}
	t.outstanding[vc]++
	arr := td + tp
	t.steady--
	for c := arr; c < t.end(); c++ {
		t.free[t.idx(c)]--
		if t.free[t.idx(c)] < 0 {
			panic("core: downstream free-buffer count went negative")
		}
	}
	if arr >= t.end() {
		// The decrement is folded into steady; cells revealed before
		// arr must not see it.
		t.future = append(t.future, futureDelta{at: arr, delta: -1})
	}
}

// uncommit rolls back a commit made earlier in the same cycle, used by
// all-or-nothing scheduling when a later flit of the same control flit fails.
func (t *outResTable) uncommit(td, tp sim.Cycle, vc int) {
	i := t.idx(td)
	if !t.busy[i] {
		panic("core: uncommit of a non-busy channel cycle")
	}
	t.busy[i] = false
	if t.infinite {
		return
	}
	t.outstanding[vc]--
	if t.outstanding[vc] < 0 {
		panic("core: outstanding residency count went negative on uncommit")
	}
	arr := td + tp
	t.steady++
	for c := arr; c < t.end(); c++ {
		t.free[t.idx(c)]++
	}
	if arr >= t.end() {
		for j := len(t.future) - 1; j >= 0; j-- {
			if t.future[j].at == arr && t.future[j].delta == -1 {
				t.future = append(t.future[:j], t.future[j+1:]...)
				return
			}
		}
		panic("core: uncommit found no matching future delta")
	}
}

// creditFrom processes a downstream credit: one more buffer is free from
// cycle `from` onward, ending a residency attributed to control VC vc.
//
// A credit's release cycle always falls inside the window: the downstream
// scheduler picked it within its own horizon of equal length, and the credit
// wire adds at least one cycle, so from <= (now-1) + Horizon < end. The
// availability search relies on this — a beyond-window credit would mean
// cells revealed before `from` could silently dip below the searched
// minimum — so it is enforced rather than tolerated.
func (t *outResTable) creditFrom(from sim.Cycle, vc int) {
	if t.infinite {
		return
	}
	if from >= t.end() {
		panic(fmt.Sprintf("core: credit release cycle %d beyond window end %d — horizons out of sync", from, t.end()))
	}
	if from < t.base {
		from = t.base
	}
	t.outstanding[vc]--
	if t.outstanding[vc] < 0 {
		panic("core: outstanding residency count went negative on credit")
	}
	t.steady++
	if t.steady > t.cap {
		panic("core: free-buffer count exceeded downstream capacity")
	}
	for c := from; c < t.end(); c++ {
		j := t.idx(c)
		t.free[j]++
		if t.free[j] > t.cap {
			panic("core: free-buffer cell exceeded downstream capacity")
		}
	}
}

// freeAt reports the free-buffer count recorded for cycle c (tests only).
func (t *outResTable) freeAt(c sim.Cycle) int {
	if c < t.base || c >= t.end() {
		panic("core: freeAt outside window")
	}
	return t.free[t.idx(c)]
}

// busyAt reports whether the channel is reserved at cycle c (tests only).
func (t *outResTable) busyAt(c sim.Cycle) bool {
	if c < t.base || c >= t.end() {
		panic("core: busyAt outside window")
	}
	return t.busy[t.idx(c)]
}
