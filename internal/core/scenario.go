package core

import (
	"fmt"
	"strconv"
	"strings"

	"frfc/internal/sim"
	"frfc/internal/topology"
)

// FaultKind names one kind of scheduled hard fault.
type FaultKind int

const (
	// LinkDown severs the bidirectional link A—B: both data wires, both
	// control wires and all four credit wires die, destroying everything in
	// flight on them.
	LinkDown FaultKind = iota
	// LinkUp repairs a link previously taken down by LinkDown.
	LinkUp
	// RouterDown kills node A permanently: all incident links plus the
	// node's injection and ejection channels are severed and the router,
	// its interface and its sink stop operating.
	RouterDown
	// LinkCorrupt retunes the bidirectional link A—B's bit-error rate to
	// Rate: from the event's cycle on, each flit (data or control) crossing
	// the link is delivered with its Corrupted flag set with that
	// probability. Rate 0 heals the link.
	LinkCorrupt
)

func (k FaultKind) String() string {
	switch k {
	case LinkDown:
		return "down"
	case LinkUp:
		return "up"
	case RouterDown:
		return "kill"
	case LinkCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultEvent is one scheduled topology fault. Events are plain values —
// every field is comparable and prints stably under %#v — so a scenario can
// live inside an experiment spec and participate in the harness job hash,
// keeping campaign results bit-identical across worker counts.
type FaultEvent struct {
	// At is the cycle the event fires, applied before any component ticks.
	At sim.Cycle
	// Kind selects the fault.
	Kind FaultKind
	// A and B are the link endpoints for LinkDown/LinkUp/LinkCorrupt;
	// RouterDown uses only A.
	A, B topology.NodeID
	// Rate is the bit-error probability installed by LinkCorrupt (a plain
	// comparable float, so the event still prints stably under %#v); unused
	// by the other kinds.
	Rate float64
}

func (e FaultEvent) String() string {
	switch e.Kind {
	case RouterDown:
		return fmt.Sprintf("kill %d @%d", e.A, e.At)
	case LinkCorrupt:
		return fmt.Sprintf("corrupt %d-%d rate %g @%d", e.A, e.B, e.Rate, e.At)
	default:
		return fmt.Sprintf("%s %d-%d @%d", e.Kind, e.A, e.B, e.At)
	}
}

// hasTopologyFaults reports whether the scenario contains any event that
// changes the topology (down/up/kill). LinkCorrupt is a soft fault: it needs
// no fault-aware routing table, no unreachable-pair tracking, and no outage
// maps, so a corruption-only scenario keeps the configured routing intact.
func hasTopologyFaults(events []FaultEvent) bool {
	for _, e := range events {
		if e.Kind != LinkCorrupt {
			return true
		}
	}
	return false
}

// hasCorruptFaults reports whether the scenario contains any LinkCorrupt
// event — i.e. whether the corruption machinery (hop CRC defaults, parked-
// flit reclamation, bit-error pipes) must be armed even when Config.BER is
// zero.
func hasCorruptFaults(events []FaultEvent) bool {
	for _, e := range events {
		if e.Kind == LinkCorrupt {
			return true
		}
	}
	return false
}

// normLink orders a link's endpoints so both directions map to one key.
func normLink(a, b topology.NodeID) [2]topology.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]topology.NodeID{a, b}
}

// ValidateFaults rejects structurally impossible fault scenarios against a
// concrete mesh: events out of cycle order, endpoints outside the mesh or not
// adjacent, a LinkUp with no strictly earlier LinkDown of the same link
// (which also catches recover-at <= fail-at), double faults, events touching
// a dead router, and RouterDown without end-to-end retries — a dead router
// strands every packet its node has offered or will offer, so the scenario
// is only meaningful when sources can detect the loss and fail over.
func ValidateFaults(m topology.Mesh, events []FaultEvent, retryEnabled bool) error {
	down := make(map[[2]topology.NodeID]sim.Cycle)
	dead := make(map[topology.NodeID]bool)
	last := sim.Cycle(0)
	inMesh := func(n topology.NodeID) bool { return n >= 0 && int(n) < m.N() }
	for i, e := range events {
		if e.At < 1 {
			return fmt.Errorf("fault %d (%s): events must fire at cycle >= 1", i, e)
		}
		if e.At < last {
			return fmt.Errorf("fault %d (%s): events must be in non-decreasing cycle order", i, e)
		}
		last = e.At
		if !inMesh(e.A) {
			return fmt.Errorf("fault %d (%s): node %d is outside the %dx%d mesh", i, e, e.A, m.Radix(), m.Radix())
		}
		switch e.Kind {
		case LinkDown, LinkUp:
			if !inMesh(e.B) {
				return fmt.Errorf("fault %d (%s): node %d is outside the %dx%d mesh", i, e, e.B, m.Radix(), m.Radix())
			}
			if m.Hops(e.A, e.B) != 1 {
				return fmt.Errorf("fault %d (%s): nodes %d and %d are not adjacent — no such link", i, e, e.A, e.B)
			}
			if dead[e.A] || dead[e.B] {
				return fmt.Errorf("fault %d (%s): link touches a dead router", i, e)
			}
			key := normLink(e.A, e.B)
			downAt, isDown := down[key]
			if e.Kind == LinkDown {
				if isDown {
					return fmt.Errorf("fault %d (%s): link is already down", i, e)
				}
				down[key] = e.At
			} else {
				if !isDown {
					return fmt.Errorf("fault %d (%s): link is not down", i, e)
				}
				if e.At <= downAt {
					return fmt.Errorf("fault %d (%s): recovery at cycle %d must come strictly after the failure at cycle %d", i, e, e.At, downAt)
				}
				delete(down, key)
			}
		case LinkCorrupt:
			if !inMesh(e.B) {
				return fmt.Errorf("fault %d (%s): node %d is outside the %dx%d mesh", i, e, e.B, m.Radix(), m.Radix())
			}
			if m.Hops(e.A, e.B) != 1 {
				return fmt.Errorf("fault %d (%s): nodes %d and %d are not adjacent — no such link", i, e, e.A, e.B)
			}
			if dead[e.A] || dead[e.B] {
				return fmt.Errorf("fault %d (%s): link touches a dead router", i, e)
			}
			if e.Rate != e.Rate || e.Rate < 0 || e.Rate >= 1 {
				return fmt.Errorf("fault %d (%s): corruption rate must lie in [0,1), got %v", i, e, e.Rate)
			}
		case RouterDown:
			if dead[e.A] {
				return fmt.Errorf("fault %d (%s): router %d is already dead", i, e, e.A)
			}
			if !retryEnabled {
				return fmt.Errorf("fault %d (%s): RouterDown strands the node's pending source traffic; enable end-to-end retries (RetryLimit > 0)", i, e)
			}
			dead[e.A] = true
		default:
			return fmt.Errorf("fault %d: unknown fault kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// ParseScenario parses the textual scenario grammar: semicolon-separated
// events of the form
//
//	down A-B @CYCLE            sever link A—B
//	up   A-B @CYCLE            repair link A—B
//	kill N   @CYCLE            kill router N permanently
//	corrupt A-B rate R @CYCLE  set link A—B's bit-error rate to R in [0,1)
//
// e.g. "down 5-6 @2000; up 5-6 @6000" or "corrupt 5-6 rate 0.01 @400".
// Whitespace is free; node ids are row-major. Structural validation against a
// mesh happens separately in ValidateFaults.
func ParseScenario(s string) ([]FaultEvent, error) {
	var events []FaultEvent
	for _, stmt := range strings.Split(s, ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		fields := strings.Fields(stmt)
		want := 3
		if len(fields) > 0 && fields[0] == "corrupt" {
			want = 5
		}
		if len(fields) != want {
			return nil, fmt.Errorf("scenario: %q: want `down A-B @CYCLE`, `up A-B @CYCLE`, `kill N @CYCLE` or `corrupt A-B rate R @CYCLE`", stmt)
		}
		at, err := parseAt(fields[len(fields)-1])
		if err != nil {
			return nil, fmt.Errorf("scenario: %q: %v", stmt, err)
		}
		ev := FaultEvent{At: at}
		switch fields[0] {
		case "down", "up":
			ev.Kind = LinkDown
			if fields[0] == "up" {
				ev.Kind = LinkUp
			}
			ev.A, ev.B, err = parseLink(fields[1])
			if err != nil {
				return nil, fmt.Errorf("scenario: %q: %v", stmt, err)
			}
		case "corrupt":
			ev.Kind = LinkCorrupt
			ev.A, ev.B, err = parseLink(fields[1])
			if err != nil {
				return nil, fmt.Errorf("scenario: %q: %v", stmt, err)
			}
			if fields[2] != "rate" {
				return nil, fmt.Errorf("scenario: %q: want `corrupt A-B rate R @CYCLE`, got %q where `rate` belongs", stmt, fields[2])
			}
			rate, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("scenario: %q: bad corruption rate %q", stmt, fields[3])
			}
			if rate != rate || rate < 0 || rate >= 1 {
				return nil, fmt.Errorf("scenario: %q: corruption rate must lie in [0,1), got %v", stmt, rate)
			}
			ev.Rate = rate
		case "kill":
			ev.Kind = RouterDown
			a, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("scenario: %q: bad node id", stmt)
			}
			ev.A = topology.NodeID(a)
		default:
			return nil, fmt.Errorf("scenario: %q: unknown event %q", stmt, fields[0])
		}
		events = append(events, ev)
	}
	return events, nil
}

// parseLink splits an "A-B" link operand into its endpoints.
func parseLink(s string) (a, b topology.NodeID, err error) {
	ab := strings.SplitN(s, "-", 2)
	if len(ab) != 2 {
		return 0, 0, fmt.Errorf("link must be A-B")
	}
	ai, errA := strconv.Atoi(ab[0])
	bi, errB := strconv.Atoi(ab[1])
	if errA != nil || errB != nil {
		return 0, 0, fmt.Errorf("bad link endpoints")
	}
	return topology.NodeID(ai), topology.NodeID(bi), nil
}

func parseAt(s string) (sim.Cycle, error) {
	if !strings.HasPrefix(s, "@") {
		return 0, fmt.Errorf("cycle must be written @CYCLE, got %q", s)
	}
	v, err := strconv.ParseInt(s[1:], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad cycle %q", s)
	}
	return sim.Cycle(v), nil
}
