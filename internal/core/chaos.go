package core

import (
	"fmt"
	"sort"

	"frfc/internal/sim"
	"frfc/internal/topology"
)

// This file is the chaos campaign generator: a single knob — intensity —
// deterministically expanded into a composed fault scenario that exercises
// every error model the simulator has at once. A chaos plan mixes
//
//   - soft data loss (DataFaultRate) and control corruption-as-delay
//     (CtrlFaultRate), the paper's Section 5 error story;
//   - silent bit errors on every link (BER), hunted by the hop CRC and the
//     end-to-end check;
//   - link flaps: scheduled down/up windows on distinct links;
//   - scheduled "corrupt" events that spike one link's bit-error rate far
//     above the background BER mid-run;
//   - at high intensity, permanent router kills on nodes kept disjoint from
//     every flapped or corruption-spiked link, so the scenario always passes
//     ValidateFaults by construction.
//
// The same (intensity, horizon, seed) triple always yields the identical
// plan, so chaos campaigns hash stably in the experiment harness and replay
// bit-identically at any worker count.

// ChaosOptions selects a deterministic chaos campaign.
type ChaosOptions struct {
	// Intensity in (0, 1] scales every fault dimension: rates scale
	// linearly, event counts scale with the mesh size, and router kills
	// only appear at Intensity >= 0.75. Values above 1 are rejected.
	Intensity float64
	// Horizon is the cycle window the scheduled events land in; it should
	// cover the measured portion of the run. 0 takes 20000.
	Horizon sim.Cycle
	// Seed drives the plan generator (not the network itself). The same
	// seed always yields the same plan.
	Seed uint64
}

// ChaosPlan is a fully expanded chaos campaign: the scheduled event list
// plus the background fault rates, ready to apply to a Config.
type ChaosPlan struct {
	Events        []FaultEvent
	DataFaultRate float64
	CtrlFaultRate float64
	BER           float64
}

// NewChaosPlan expands the options into a concrete plan for the given mesh.
// It panics on out-of-range options; the produced event list always passes
// ValidateFaults for that mesh with retries enabled.
func NewChaosPlan(mesh topology.Mesh, o ChaosOptions) ChaosPlan {
	if o.Intensity != o.Intensity || o.Intensity <= 0 || o.Intensity > 1 {
		panic(fmt.Sprintf("core: chaos intensity must lie in (0,1], got %v", o.Intensity))
	}
	if o.Horizon < 0 {
		panic("core: chaos horizon must be >= 0")
	}
	if o.Horizon == 0 {
		o.Horizon = 20000
	}
	if o.Horizon < 16 {
		panic(fmt.Sprintf("core: chaos horizon %d is too short to schedule a flap window", o.Horizon))
	}
	rng := sim.NewRNG(o.Seed ^ 0xC5A0C5A0C5A0C5A0)

	// Undirected link inventory in (a, b) order — index order is the only
	// iteration the generator uses, so the plan is reproducible.
	type link struct{ a, b topology.NodeID }
	var links []link
	for id := 0; id < mesh.N(); id++ {
		for p := topology.Port(0); p < topology.Local; p++ {
			if nb, ok := mesh.Neighbor(topology.NodeID(id), p); ok && nb > topology.NodeID(id) {
				links = append(links, link{topology.NodeID(id), nb})
			}
		}
	}
	perm := make([]int, len(links))
	rng.Perm(perm)

	plan := ChaosPlan{
		DataFaultRate: 0.002 * o.Intensity,
		CtrlFaultRate: 0.002 * o.Intensity,
		BER:           0.001 * o.Intensity,
	}

	// Scale event counts with the mesh, floor one flap and one corruption
	// spike so even the gentlest campaign exercises both engines.
	nFlaps := 1 + int(o.Intensity*float64(len(links))/8)
	nSpikes := 1 + int(o.Intensity*float64(len(links))/12)
	if nFlaps+nSpikes > len(links) {
		nFlaps = len(links) / 2
		nSpikes = len(links) - nFlaps
	}
	touched := make(map[topology.NodeID]bool)
	pick := 0
	window := func() (down, up sim.Cycle) {
		down = 1 + sim.Cycle(rng.Intn(int(o.Horizon/2)))
		up = down + 1 + sim.Cycle(rng.Intn(int(o.Horizon-down)))
		if up > o.Horizon {
			up = o.Horizon
		}
		return down, up
	}
	for i := 0; i < nFlaps; i++ {
		l := links[perm[pick]]
		pick++
		touched[l.a], touched[l.b] = true, true
		down, up := window()
		plan.Events = append(plan.Events,
			FaultEvent{At: down, Kind: LinkDown, A: l.a, B: l.b},
			FaultEvent{At: up, Kind: LinkUp, A: l.a, B: l.b})
	}
	for i := 0; i < nSpikes; i++ {
		l := links[perm[pick]]
		pick++
		touched[l.a], touched[l.b] = true, true
		on, off := window()
		spike := 0.05 + 0.15*o.Intensity
		plan.Events = append(plan.Events,
			FaultEvent{At: on, Kind: LinkCorrupt, A: l.a, B: l.b, Rate: spike},
			FaultEvent{At: off, Kind: LinkCorrupt, A: l.a, B: l.b, Rate: plan.BER})
	}

	// Router kills are the harshest fault — they strand traffic until the
	// end-to-end retry writes it off — so they only join at high intensity,
	// and only on nodes no scheduled link event touches (a link event on a
	// dead router's link would invalidate the scenario).
	if o.Intensity >= 0.75 {
		nKills := 1 + int((o.Intensity-0.75)*float64(mesh.N())/8)
		var candidates []topology.NodeID
		for id := 0; id < mesh.N(); id++ {
			if !touched[topology.NodeID(id)] {
				candidates = append(candidates, topology.NodeID(id))
			}
		}
		for i := 0; i < nKills && len(candidates) > 0; i++ {
			j := rng.Intn(len(candidates))
			v := candidates[j]
			candidates = append(candidates[:j], candidates[j+1:]...)
			at := o.Horizon/2 + sim.Cycle(rng.Intn(int(o.Horizon/2)))
			plan.Events = append(plan.Events, FaultEvent{At: at, Kind: RouterDown, A: v})
		}
	}

	sort.SliceStable(plan.Events, func(i, j int) bool {
		a, b := plan.Events[i], plan.Events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	return plan
}

// Apply installs the plan into a configuration, overwriting its fault
// scenario and fault rates. Chaos only makes sense with recovery armed, so a
// zero RetryLimit is raised to 8 (the plan's kills would not validate
// without it).
func (p ChaosPlan) Apply(cfg Config) Config {
	cfg.Faults = append([]FaultEvent(nil), p.Events...)
	cfg.DataFaultRate = p.DataFaultRate
	cfg.CtrlFaultRate = p.CtrlFaultRate
	cfg.BER = p.BER
	if cfg.RetryLimit == 0 {
		cfg.RetryLimit = 8
	}
	return cfg
}
