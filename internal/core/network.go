package core

import (
	"fmt"
	"sort"
	"strings"

	"frfc/internal/metrics"
	"frfc/internal/noc"
	"frfc/internal/routing"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

// notif is one end-to-end notification in flight from a destination back to a
// source interface: a delivery acknowledgment or a loss report for a specific
// transmission attempt. The notification plane is the modeled control channel
// of the recovery layer — reliable, with a fixed NackLatency delay.
type notif struct {
	ack     bool
	pkt     *noc.Packet
	attempt int
}

// linkPipes names the four wires of one directed inter-router link — node a's
// output port p into node b — so the fault engine can sever and restore them
// as a unit and the invariant checker can audit their conservation laws.
type linkPipes struct {
	a, b       topology.NodeID
	p          topology.Port
	data       *sim.Pipe[noc.DataFlit]
	resvCredit *sim.Pipe[noc.ReservationCredit]
	ctrl       *sim.Pipe[noc.ControlFlit]
	ctrlCredit *sim.Pipe[noc.VCCredit]
}

// Network is a complete mesh of flit-reservation routers with per-node
// network interfaces. It implements noc.Network.
type Network struct {
	mesh  topology.Mesh
	cfg   Config
	hooks *noc.Hooks

	routers []*Router
	nis     []*NI
	sinks   []*Sink

	// probe is the attached observability sink; nil when disabled.
	probe *metrics.Probe

	// linkRNG drives control-link fault injection across all links; it is
	// split off the root seed so fault patterns are reproducible.
	linkRNG *sim.RNG

	offered        int64
	delivered      int64
	lostDetected   int64 // loss events at destinations (per attempt under retry)
	lostResolved   int64 // packets whose fate "lost" is final (retry disabled)
	abandoned      int64 // packets that exhausted their retry budget
	retried        int64 // re-injections
	afterRetry     int64 // packets delivered on an attempt > 0
	dropped        int64 // data flits destroyed on links
	ctrlCorrupted  int64 // control flits corrupted (and retransmitted) on links
	unreachable    int64 // packets failed fast: no surviving route to their destination
	corruptedFlits int64 // flits delivered with bit errors (data + control)
	crcDetected    int64 // corrupted flits caught by the hop-level CRC
	corruptEscapes int64 // corrupted payload that reached its destination uncaught

	// links is the directed inter-router link registry built by wire, the
	// handle the hard-fault engine severs through and the invariant checker
	// audits; linkIdx maps an unordered node pair to its two entries.
	links   []linkPipes
	linkIdx map[[2]topology.NodeID][]int

	// Hard-fault scenario state, live when cfg.Faults is non-empty.
	// nextFault indexes the first unapplied event; table is the shared
	// fault-aware routing table rebuilt on every topology change; linkDown
	// and deadNode record the current outage set.
	nextFault int
	table     *routing.Table
	linkDown  map[[2]topology.NodeID]bool
	deadNode  []bool

	// notifs holds in-flight end-to-end notifications keyed by the cycle
	// they reach the source interface.
	notifs map[sim.Cycle][]notif
	// resolved records each packet's first resolution (delivery or
	// abandonment) under retry. A spurious timeout — shorter than the
	// notification round trip — can race an abandonment against an
	// in-flight delivery; whichever resolves first wins and the loser is
	// suppressed, keeping offered == delivered + abandoned exact.
	resolved map[noc.PacketID]bool

	// Watchdog state: progress counts every flit movement network-wide;
	// the watchdog trips when it stands still too long with packets in
	// flight and no recovery action pending.
	progress       *int64
	lastProgress   int64
	lastProgressAt sim.Cycle
	wedgeFired     bool
	now            sim.Cycle
}

var _ noc.Network = (*Network)(nil)

// New assembles a flit-reservation network over the given mesh. The seed
// drives every arbitration and injection decision; hooks may be nil.
func New(mesh topology.Mesh, cfg Config, seed uint64, hooks *noc.Hooks) *Network {
	cfg = cfg.withDefaults()
	cfg.validate()
	topoFaults := hasTopologyFaults(cfg.Faults)
	if len(cfg.Faults) > 0 {
		if err := ValidateFaults(mesh, cfg.Faults, cfg.RetryLimit > 0); err != nil {
			panic("core: " + err.Error())
		}
		// Hard faults change the topology mid-run; only the lookup table
		// can route around them, so any fixed algorithm is replaced.
		// Corruption-only scenarios leave the topology (and therefore the
		// routing choice) alone.
		if topoFaults {
			if _, ok := cfg.Routing.(*routing.Table); !ok {
				cfg.Routing = routing.NewTable(mesh)
			}
		}
	}
	if hooks == nil {
		hooks = &noc.Hooks{}
	}
	n := &Network{mesh: mesh, cfg: cfg, progress: new(int64)}
	if t, ok := cfg.Routing.(*routing.Table); ok {
		n.table = t
	}
	if topoFaults {
		n.linkDown = make(map[[2]topology.NodeID]bool)
		n.deadNode = make([]bool, mesh.N())
	}
	if cfg.RetryLimit > 0 {
		n.notifs = make(map[sim.Cycle][]notif)
		n.resolved = make(map[noc.PacketID]bool)
	}

	inner := *hooks
	wrapped := inner
	wrapped.PacketDelivered = func(p *noc.Packet, now sim.Cycle) {
		if n.resolved != nil {
			if n.resolved[p.ID] {
				return // late delivery of a packet already written off
			}
			n.resolved[p.ID] = true
			at := now + n.cfg.NackLatency
			n.notifs[at] = append(n.notifs[at], notif{ack: true, pkt: p})
		}
		n.delivered++
		if p.Attempts > 0 {
			n.afterRetry++
		}
		if inner.PacketDelivered != nil {
			inner.PacketDelivered(p, now)
		}
	}
	wrapped.PacketLost = func(p *noc.Packet, now sim.Cycle) {
		n.lostDetected++
		if n.cfg.RetryLimit == 0 {
			n.lostResolved++
		}
		if inner.PacketLost != nil {
			inner.PacketLost(p, now)
		}
	}
	wrapped.PacketRetried = func(p *noc.Packet, now sim.Cycle) {
		n.retried++
		if inner.PacketRetried != nil {
			inner.PacketRetried(p, now)
		}
	}
	wrapped.PacketAbandoned = func(p *noc.Packet, now sim.Cycle) {
		if n.resolved[p.ID] {
			return // the delivery beat the retry timer; its ACK is in flight
		}
		n.resolved[p.ID] = true
		n.abandoned++
		if inner.PacketAbandoned != nil {
			inner.PacketAbandoned(p, now)
		}
	}
	wrapped.FlitDropped = func(p *noc.Packet, now sim.Cycle) {
		n.dropped++
		if inner.FlitDropped != nil {
			inner.FlitDropped(p, now)
		}
	}
	wrapped.FlitCorrupted = func(now sim.Cycle) {
		n.corruptedFlits++
		if inner.FlitCorrupted != nil {
			inner.FlitCorrupted(now)
		}
	}
	wrapped.CorruptionDetected = func(now sim.Cycle) {
		n.crcDetected++
		if inner.CorruptionDetected != nil {
			inner.CorruptionDetected(now)
		}
	}
	wrapped.CorruptionEscaped = func(p *noc.Packet, now sim.Cycle) {
		n.corruptEscapes++
		if inner.CorruptionEscaped != nil {
			inner.CorruptionEscaped(p, now)
		}
	}
	wrapped.PacketUnreachable = func(p *noc.Packet, now sim.Cycle) {
		if n.resolved != nil {
			if n.resolved[p.ID] {
				return // a delivery or abandonment already settled this packet
			}
			n.resolved[p.ID] = true
		}
		n.unreachable++
		n.probe.Unreachable(int(p.Src))
		if inner.PacketUnreachable != nil {
			inner.PacketUnreachable(p, now)
		}
	}
	n.hooks = &wrapped

	root := sim.NewRNG(seed)
	n.linkRNG = root.Split()
	n.routers = make([]*Router, mesh.N())
	n.nis = make([]*NI, mesh.N())
	n.sinks = make([]*Sink, mesh.N())
	for id := 0; id < mesh.N(); id++ {
		n.routers[id] = newRouter(topology.NodeID(id), mesh, cfg, root.Split())
		n.routers[id].hooks = n.hooks
		n.routers[id].progress = n.progress
	}
	for id := 0; id < mesh.N(); id++ {
		n.nis[id] = newNI(topology.NodeID(id), cfg, root.Split(), n.hooks)
		n.nis[id].progress = n.progress
		n.sinks[id] = newSink(topology.NodeID(id), n.hooks)
		n.sinks[id].e2eCheck = cfg.E2ECheck
		if cfg.RetryLimit > 0 {
			n.sinks[id].notifyLoss = n.noteLoss
		}
		if topoFaults {
			src := topology.NodeID(id)
			n.nis[id].unreachable = func(dst topology.NodeID) bool {
				return !n.pairConnected(src, dst)
			}
		}
	}
	n.wire()
	return n
}

// AttachProbe points the whole network — routers, interfaces, sinks — at an
// observability probe; nil detaches. Implements metrics.Attachable.
func (n *Network) AttachProbe(p *metrics.Probe) {
	n.probe = p
	p.Init(n.mesh.Radix())
	for _, r := range n.routers {
		r.attachProbe(p)
	}
	for _, ni := range n.nis {
		ni.probe = p
		ni.prof = p.Profile()
		ni.wf = p.Waterfall()
	}
	for _, s := range n.sinks {
		s.probe = p
		s.prof = p.Profile()
		s.wf = p.Waterfall()
	}
}

// sampleOccupancy records one sample of every input pool's occupancy into
// the given probe.
func (n *Network) sampleOccupancy(probe *metrics.Probe) {
	for id, r := range n.routers {
		for p := range r.inputs {
			if in := r.inputs[p]; in != nil {
				probe.Occupancy(id, p, in.occupied, n.cfg.DataBuffers)
			}
		}
	}
}

// noteLoss is the sinks' entry into the notification plane: a detected loss
// of one transmission attempt travels back to the packet's source after
// NackLatency cycles.
func (n *Network) noteLoss(p *noc.Packet, attempt int, now sim.Cycle) {
	at := now + n.cfg.NackLatency
	n.notifs[at] = append(n.notifs[at], notif{pkt: p, attempt: attempt})
}

// onCtrlCorrupt is the fault-injection callback of the control links: each
// corruption is recovered by link-level retransmission, so it only costs
// latency, but the event is counted and surfaced.
func (n *Network) onCtrlCorrupt() {
	n.ctrlCorrupted++
	n.hooks.CtrlCorrupted(n.now)
}

// resvCreditWidth bounds the reservation credits one input port can emit in
// a cycle: every output scheduler may process CtrlFlitsPerCycle control flits
// each leading up to LeadsPerCtrl data flits, all potentially from the same
// input. Under hard faults, each of the input's control VCs may additionally
// discard a destroyed stream's flit in the same cycle, releasing its leads'
// upstream residencies.
func (c Config) resvCreditWidth() int {
	return (int(topology.NumPorts)*c.CtrlFlitsPerCycle + c.CtrlVCs) * c.LeadsPerCtrl
}

// newCtrlLink builds one inter-router control link: a plain pipe, or — under
// CtrlFaultRate — a fault-injecting pipe whose corrupted flits are delayed by
// the link-level retransmission round trip. Under the bit-error model the
// pipe additionally delivers flits with their Corrupted flag set at rate BER.
func (n *Network) newCtrlLink() *sim.Pipe[noc.ControlFlit] {
	cfg := n.cfg
	var p *sim.Pipe[noc.ControlFlit]
	if cfg.CtrlFaultRate > 0 {
		p = sim.NewFaultyPipe[noc.ControlFlit](cfg.CtrlLinkLatency, cfg.CtrlFlitsPerCycle, cfg.CtrlFaultRate, n.linkRNG, n.onCtrlCorrupt)
	} else {
		p = sim.NewPipe[noc.ControlFlit](cfg.CtrlLinkLatency, cfg.CtrlFlitsPerCycle)
	}
	if n.berArmed() {
		p.WithBitErrors(cfg.BER, n.linkRNG, n.corruptCtrl)
	}
	return p
}

// newDataLink builds one inter-router data link, armed with the bit-error
// model when the configuration or a scenario "corrupt" event needs it.
// (DataFaultRate loss is injected at the sending router, not in the pipe.)
func (n *Network) newDataLink() *sim.Pipe[noc.DataFlit] {
	p := sim.NewPipe[noc.DataFlit](n.cfg.DataLinkLatency, 1)
	if n.berArmed() {
		p.WithBitErrors(n.cfg.BER, n.linkRNG, n.corruptData)
	}
	return p
}

// berArmed reports whether inter-router links need the bit-error machinery:
// either a static BER is configured or the fault scenario retunes one with a
// "corrupt" event. Arming with rate zero draws no randomness, so a corrupt
// event's pre-onset behavior is bit-identical to an unarmed run.
func (n *Network) berArmed() bool {
	return n.cfg.BER > 0 || hasCorruptFaults(n.cfg.Faults)
}

// corruptData and corruptCtrl are the links' bit-error transforms: the flit
// is delivered, its payload is wrong, and only the flag — invisible to the
// routers until a CRC check looks — records the damage.
func (n *Network) corruptData(f noc.DataFlit) noc.DataFlit {
	f.Corrupted = true
	n.hooks.Corrupted(n.now)
	return f
}

func (n *Network) corruptCtrl(f noc.ControlFlit) noc.ControlFlit {
	f.Corrupted = true
	n.hooks.Corrupted(n.now)
	return f
}

// wire connects routers, NIs and sinks: data links (one flit/cycle,
// DataLinkLatency), control links (CtrlFlitsPerCycle flits/cycle,
// CtrlLinkLatency), reservation-credit and control-credit wires
// (CreditLatency).
func (n *Network) wire() {
	cfg := n.cfg
	for id := 0; id < n.mesh.N(); id++ {
		r := n.routers[id]
		for p := topology.Port(0); p < topology.Local; p++ {
			nb, ok := n.mesh.Neighbor(topology.NodeID(id), p)
			if !ok {
				continue
			}
			far := n.routers[nb]
			op := p.Opposite()

			data := n.newDataLink()
			r.dataOut[p] = data
			far.inputs[op].dataIn = data

			resvCredit := sim.NewPipe[noc.ReservationCredit](cfg.CreditLatency, cfg.resvCreditWidth())
			r.dataCreditIn[p] = resvCredit
			far.inputs[op].creditOut = resvCredit

			ctrl := n.newCtrlLink()
			r.ctrlOut[p].out = ctrl
			far.ctrlIn[op].in = ctrl

			ctrlCredit := sim.NewPipe[noc.VCCredit](cfg.CreditLatency, cfg.CtrlVCs)
			r.ctrlOut[p].creditIn = ctrlCredit
			far.ctrlIn[op].creditOut = ctrlCredit

			if n.linkIdx == nil {
				n.linkIdx = make(map[[2]topology.NodeID][]int)
			}
			key := normLink(topology.NodeID(id), nb)
			n.linkIdx[key] = append(n.linkIdx[key], len(n.links))
			n.links = append(n.links, linkPipes{
				a: topology.NodeID(id), b: nb, p: p,
				data: data, resvCredit: resvCredit, ctrl: ctrl, ctrlCredit: ctrlCredit,
			})
		}

		ni := n.nis[id]
		sink := n.sinks[id]

		// Injection: NI data -> router Local input; reservation
		// credits flow back from the router's input scheduler.
		injData := sim.NewPipe[noc.DataFlit](cfg.LocalLatency, 1)
		ni.dataOut = injData
		r.inputs[topology.Local].dataIn = injData

		injResvCredit := sim.NewPipe[noc.ReservationCredit](cfg.CreditLatency, cfg.resvCreditWidth())
		ni.resvCreditIn = injResvCredit
		r.inputs[topology.Local].creditOut = injResvCredit

		injCtrl := sim.NewPipe[noc.ControlFlit](cfg.CtrlLinkLatency, cfg.CtrlFlitsPerCycle)
		ni.ctrlOut = injCtrl
		r.ctrlIn[topology.Local].in = injCtrl

		injCtrlCredit := sim.NewPipe[noc.VCCredit](cfg.CreditLatency, cfg.CtrlVCs)
		ni.ctrlCreditIn = injCtrlCredit
		r.ctrlIn[topology.Local].creditOut = injCtrlCredit

		// Ejection: router Local output -> sink, schedule set by
		// destination control flits.
		ejData := sim.NewPipe[noc.DataFlit](cfg.LocalLatency, 1)
		r.dataOut[topology.Local] = ejData
		sink.dataIn = ejData
		r.sinkNotify = sink.Expect
	}
}

// Offer implements noc.Network. A packet whose destination has no surviving
// route is failed fast — counted offered, reported unreachable, never queued.
func (n *Network) Offer(p *noc.Packet) {
	n.offered++
	if n.table != nil && !n.pairConnected(p.Src, p.Dst) {
		n.hooks.Unreachable(p, n.now)
		return
	}
	n.nis[p.Src].offer(p)
}

// isDead reports whether a hard fault has killed the given router.
func (n *Network) isDead(id topology.NodeID) bool {
	return n.deadNode != nil && n.deadNode[id]
}

// pairConnected reports whether src can currently reach dst over the
// surviving topology. Without a routing table (no fault scenario) every pair
// is connected.
func (n *Network) pairConnected(src, dst topology.NodeID) bool {
	if n.isDead(src) || n.isDead(dst) {
		return false
	}
	if n.table == nil {
		return true
	}
	return n.table.Reachable(src, dst)
}

// Tick implements noc.Network.
func (n *Network) Tick(now sim.Cycle) {
	n.now = now
	if n.nextFault < len(n.cfg.Faults) {
		n.applyFaults(now)
	}
	if n.notifs != nil {
		if due, ok := n.notifs[now]; ok {
			delete(n.notifs, now)
			for _, nt := range due {
				if n.isDead(nt.pkt.Src) {
					continue
				}
				ni := n.nis[nt.pkt.Src]
				if nt.ack {
					ni.ack(nt.pkt.ID)
				} else {
					ni.loss(nt.pkt.ID, nt.attempt, now)
				}
			}
		}
	}
	for id, ni := range n.nis {
		if n.isDead(topology.NodeID(id)) {
			continue
		}
		ni.Tick(now)
	}
	for id, r := range n.routers {
		if n.isDead(topology.NodeID(id)) {
			continue
		}
		r.Tick(now)
	}
	for id, s := range n.sinks {
		if n.isDead(topology.NodeID(id)) {
			continue
		}
		s.Tick(now)
	}
	if n.probe.SampleDue(now) {
		n.sampleOccupancy(n.probe)
	}
	if n.cfg.Check {
		n.check(now)
	}
	n.watch(now)
}

// SourceQueueLen implements noc.Network.
func (n *Network) SourceQueueLen() int {
	total := 0
	for _, ni := range n.nis {
		total += ni.queueLen()
	}
	return total
}

// InFlightPackets implements noc.Network. A packet is resolved when it is
// delivered, abandoned after exhausting its retries, reported unreachable
// after a hard fault disconnected its pair, or — with retry disabled —
// detected lost; its fate is then known.
func (n *Network) InFlightPackets() int {
	return int(n.offered - n.delivered - n.lostResolved - n.abandoned - n.unreachable)
}

// FaultStats reports fault-injection activity: data flits destroyed on links
// and loss events detected at destinations (one per packet without retry, one
// per lost transmission attempt with it).
func (n *Network) FaultStats() (droppedFlits, lostPackets int64) {
	return n.dropped, n.lostDetected
}

// RecoveryStats summarizes the end-to-end recovery layer's activity over a
// run.
type RecoveryStats struct {
	// Offered, Delivered and Abandoned satisfy, once the network drains,
	// Offered == Delivered + Abandoned + LostDetected·(retry disabled).
	Offered   int64
	Delivered int64
	Abandoned int64
	// LostDetected counts loss events at destinations — per packet without
	// retry, per lost transmission attempt with it.
	LostDetected int64
	// Unreachable counts packets failed fast because a hard fault left no
	// surviving route between their endpoints; with outages in the scenario,
	// Offered == Delivered + Abandoned + Unreachable once the network drains.
	Unreachable int64
	// Retried counts re-injections; DeliveredAfterRetry counts packets
	// whose delivering attempt was a retry.
	Retried             int64
	DeliveredAfterRetry int64
	// DroppedFlits is data flits destroyed by link faults; CtrlCorrupted is
	// control flits corrupted (each recovered by link-level
	// retransmission).
	DroppedFlits  int64
	CtrlCorrupted int64
	// CorruptedFlits counts flits (data and control) delivered with bit
	// errors by the BER model; CrcDetected counts those caught by the
	// hop-level CRC; CorruptEscapes counts corrupted payload that reached
	// its destination past every hop CRC (and, when the end-to-end check is
	// off, was delivered as-is).
	CorruptedFlits int64
	CrcDetected    int64
	CorruptEscapes int64
	// PhantomReservations counts reservations installed by escaped-corrupt
	// control flits that failed to match their real data flit;
	// ReclaimedSlots counts orphaned parked flits the reclamation timeout
	// freed back into the loss path.
	PhantomReservations int64
	ReclaimedSlots      int64
}

// Recovery reports the recovery layer's counters.
func (n *Network) Recovery() RecoveryStats {
	st := RecoveryStats{
		Offered:             n.offered,
		Delivered:           n.delivered,
		Abandoned:           n.abandoned,
		LostDetected:        n.lostDetected,
		Unreachable:         n.unreachable,
		Retried:             n.retried,
		DeliveredAfterRetry: n.afterRetry,
		DroppedFlits:        n.dropped,
		CtrlCorrupted:       n.ctrlCorrupted,
		CorruptedFlits:      n.corruptedFlits,
		CrcDetected:         n.crcDetected,
		CorruptEscapes:      n.corruptEscapes,
	}
	for _, r := range n.routers {
		for p := range r.inputs {
			if in := r.inputs[p]; in != nil {
				st.PhantomReservations += in.phantoms
				st.ReclaimedSlots += in.reclaimed
			}
		}
	}
	return st
}

// pendingRecovery counts recovery actions that will fire on their own at a
// known future cycle: in-flight end-to-end notifications, armed retry timers
// and backoff-delayed re-offers, and reassembly-schedule entries whose hole
// detection has not yet run. While any exist the network may be legitimately
// idle, so the watchdog holds off.
func (n *Network) pendingRecovery() int {
	total := 0
	for _, nts := range n.notifs {
		total += len(nts)
	}
	for id, ni := range n.nis {
		if n.isDead(topology.NodeID(id)) {
			continue
		}
		total += ni.pendingRecovery()
	}
	for id, s := range n.sinks {
		if n.isDead(topology.NodeID(id)) {
			continue
		}
		total += len(s.expect)
	}
	return total
}

// watch is the no-progress watchdog: with packets in flight, no recovery
// action pending, and no flit movement for WatchdogCycles cycles, the network
// is wedged — it captures a diagnostic snapshot and fires the Wedged hook,
// once per stall.
func (n *Network) watch(now sim.Cycle) {
	if n.cfg.WatchdogCycles <= 0 {
		return
	}
	if *n.progress != n.lastProgress {
		n.lastProgress = *n.progress
		n.lastProgressAt = now
		n.wedgeFired = false
		return
	}
	if n.InFlightPackets() == 0 || n.pendingRecovery() > 0 {
		n.lastProgressAt = now
		return
	}
	if now-n.lastProgressAt >= n.cfg.WatchdogCycles && !n.wedgeFired {
		n.wedgeFired = true
		n.probe.Wedge(now)
		n.hooks.Wedge(now, n.snapshot(now))
	}
}

// snapshot renders the wedge diagnostic: which routers hold stalled work,
// per-router counter lines from the metrics registry (reservation outcomes,
// stall causes, live occupancy), and the full control/buffer/reservation
// state dump as an appendix. With no probe attached, a throwaway registry is
// filled from the network's live state so the counter lines still carry the
// occupancy picture.
func (n *Network) snapshot(now sim.Cycle) string {
	var stalled []int
	for id, r := range n.routers {
		if r.pendingWork() > 0 {
			stalled = append(stalled, id)
		}
	}
	var idle []int
	for id, ni := range n.nis {
		if ni.pendingWork() > 0 {
			idle = append(idle, id)
		}
	}
	sort.Ints(stalled)
	sort.Ints(idle)
	var b strings.Builder
	fmt.Fprintf(&b, "wedged at cycle %d: no flit moved for %d cycles, %d packets in flight\n",
		now, n.cfg.WatchdogCycles, n.InFlightPackets())
	fmt.Fprintf(&b, "stalled routers: %v\nstalled interfaces: %v\n", stalled, idle)
	reg := n.snapshotRegistry()
	b.WriteString(reg.WedgeSummary(stalled))
	b.WriteString(n.DumpState())
	return b.String()
}

// snapshotRegistry is the registry the wedge snapshot renders from: the
// attached probe's, topped up with a fresh occupancy sample so the report
// reflects the stalled state rather than the last epoch, or a temporary one
// when no probe is attached.
func (n *Network) snapshotRegistry() *metrics.Registry {
	probe := n.probe
	if probe == nil || probe.Reg == nil {
		probe = &metrics.Probe{Reg: metrics.NewRegistry(0)}
		probe.Init(n.mesh.Radix())
	}
	n.sampleOccupancy(probe)
	return probe.Reg
}

// ParkedFlits reports how many data flits, network-wide, ever arrived before
// their control flit finished scheduling and waited on a schedule list —
// the data-overtakes-control situation of Section 3.
func (n *Network) ParkedFlits() int64 {
	var total int64
	for _, r := range n.routers {
		for p := range r.inputs {
			if r.inputs[p] != nil {
				total += r.inputs[p].parkedTotal
			}
		}
	}
	return total
}

// BufferUsage implements noc.Network.
func (n *Network) BufferUsage(id topology.NodeID) (used, capacity int) {
	return n.routers[id].bufferUsage()
}

// PoolUsage implements noc.Network.
func (n *Network) PoolUsage(id topology.NodeID, port topology.Port) (used, capacity int) {
	in := n.routers[id].inputs[port]
	if in == nil {
		return 0, 0
	}
	return in.occupied, n.cfg.DataBuffers
}

// EagerTransfers reports, across the whole network, how many buffer-to-buffer
// transfers the allocate-at-reservation-time policy of Figure 10 would have
// required, and how many buffer residencies were replayed. Zero unless the
// configuration set TrackEagerTransfers.
func (n *Network) EagerTransfers() (transfers, residencies int64) {
	for _, r := range n.routers {
		for p := range r.inputs {
			if r.inputs[p] == nil {
				continue
			}
			t, a := r.inputs[p].ledger.Transfers()
			transfers += t
			residencies += a
		}
	}
	return transfers, residencies
}

// DumpState renders the routers' internal control and data state for
// deadlock diagnosis: per control VC, the queue depth and head flit with its
// scheduling progress; per input pool, occupancy and schedule-list size; per
// output table, the steady free count and per-VC outstanding/claims.
func (n *Network) DumpState() string {
	var b strings.Builder
	for id, r := range n.routers {
		if r.pendingWork() == 0 {
			continue
		}
		fmt.Fprintf(&b, "router %d\n", id)
		for p := range r.ctrlIn {
			ci := &r.ctrlIn[p]
			if !ci.exists {
				continue
			}
			for v := range ci.vcs {
				vc := &ci.vcs[v]
				if len(vc.q) == 0 {
					continue
				}
				qc := &vc.q[0]
				fmt.Fprintf(&b, "  ctrl in %s vc %d: qlen=%d head=%v routed=%v route=%v alloc=%v admitted=%v leads=%+v\n",
					topology.Port(p), v, len(vc.q), qc.flit, vc.routed, vc.route, vc.allocated, qc.admitted, qc.leads)
			}
		}
		for p := range r.inputs {
			in := r.inputs[p]
			if in == nil || in.pending() == 0 {
				continue
			}
			fmt.Fprintf(&b, "  input %s: occupied=%d parked=%d expected=%d\n",
				topology.Port(p), in.occupied, len(in.parked), len(in.expected))
		}
		for p := range r.outTables {
			tb := r.outTables[p]
			if tb == nil || tb.infinite {
				continue
			}
			fmt.Fprintf(&b, "  out %s: steady=%d outstanding=%v claims=%v\n",
				topology.Port(p), tb.steady, tb.outstanding, tb.claims)
		}
	}
	for id, ni := range n.nis {
		if ni.pendingWork() > 0 || len(ni.awaiting) > 0 {
			fmt.Fprintf(&b, "NI %d: queue=%d active=%d sendAt=%d ctrlCredits=%v awaitingAck=%d pendingRetry=%d\n",
				id, len(ni.queue), ni.activeCount(), len(ni.sendAt), ni.ctrlCredits, len(ni.awaiting), ni.pendingRecovery())
		}
	}
	return b.String()
}
