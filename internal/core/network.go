package core

import (
	"fmt"
	"strings"

	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

// Network is a complete mesh of flit-reservation routers with per-node
// network interfaces. It implements noc.Network.
type Network struct {
	mesh  topology.Mesh
	cfg   Config
	hooks *noc.Hooks

	routers []*Router
	nis     []*NI
	sinks   []*Sink

	offered   int64
	delivered int64
	lost      int64
	dropped   int64
}

var _ noc.Network = (*Network)(nil)

// New assembles a flit-reservation network over the given mesh. The seed
// drives every arbitration and injection decision; hooks may be nil.
func New(mesh topology.Mesh, cfg Config, seed uint64, hooks *noc.Hooks) *Network {
	cfg = cfg.withDefaults()
	cfg.validate()
	if hooks == nil {
		hooks = &noc.Hooks{}
	}
	n := &Network{mesh: mesh, cfg: cfg}

	inner := *hooks
	wrapped := inner
	wrapped.PacketDelivered = func(p *noc.Packet, now sim.Cycle) {
		n.delivered++
		if inner.PacketDelivered != nil {
			inner.PacketDelivered(p, now)
		}
	}
	wrapped.PacketLost = func(p *noc.Packet, now sim.Cycle) {
		n.lost++
		if inner.PacketLost != nil {
			inner.PacketLost(p, now)
		}
	}
	wrapped.FlitDropped = func(p *noc.Packet, now sim.Cycle) {
		n.dropped++
		if inner.FlitDropped != nil {
			inner.FlitDropped(p, now)
		}
	}
	n.hooks = &wrapped

	root := sim.NewRNG(seed)
	n.routers = make([]*Router, mesh.N())
	n.nis = make([]*NI, mesh.N())
	n.sinks = make([]*Sink, mesh.N())
	for id := 0; id < mesh.N(); id++ {
		n.routers[id] = newRouter(topology.NodeID(id), mesh, cfg, root.Split())
		n.routers[id].hooks = n.hooks
	}
	for id := 0; id < mesh.N(); id++ {
		n.nis[id] = newNI(topology.NodeID(id), cfg, root.Split(), n.hooks)
		n.sinks[id] = newSink(n.hooks)
	}
	n.wire()
	return n
}

// resvCreditWidth bounds the reservation credits one input port can emit in
// a cycle: every output scheduler may process CtrlFlitsPerCycle control flits
// each leading up to LeadsPerCtrl data flits, all potentially from the same
// input.
func (c Config) resvCreditWidth() int {
	return int(topology.NumPorts) * c.CtrlFlitsPerCycle * c.LeadsPerCtrl
}

// wire connects routers, NIs and sinks: data links (one flit/cycle,
// DataLinkLatency), control links (CtrlFlitsPerCycle flits/cycle,
// CtrlLinkLatency), reservation-credit and control-credit wires
// (CreditLatency).
func (n *Network) wire() {
	cfg := n.cfg
	for id := 0; id < n.mesh.N(); id++ {
		r := n.routers[id]
		for p := topology.Port(0); p < topology.Local; p++ {
			nb, ok := n.mesh.Neighbor(topology.NodeID(id), p)
			if !ok {
				continue
			}
			far := n.routers[nb]
			op := p.Opposite()

			data := sim.NewPipe[noc.DataFlit](cfg.DataLinkLatency, 1)
			r.dataOut[p] = data
			far.inputs[op].dataIn = data

			resvCredit := sim.NewPipe[noc.ReservationCredit](cfg.CreditLatency, cfg.resvCreditWidth())
			r.dataCreditIn[p] = resvCredit
			far.inputs[op].creditOut = resvCredit

			ctrl := sim.NewPipe[noc.ControlFlit](cfg.CtrlLinkLatency, cfg.CtrlFlitsPerCycle)
			r.ctrlOut[p].out = ctrl
			far.ctrlIn[op].in = ctrl

			ctrlCredit := sim.NewPipe[noc.VCCredit](cfg.CreditLatency, cfg.CtrlVCs)
			r.ctrlOut[p].creditIn = ctrlCredit
			far.ctrlIn[op].creditOut = ctrlCredit
		}

		ni := n.nis[id]
		sink := n.sinks[id]

		// Injection: NI data -> router Local input; reservation
		// credits flow back from the router's input scheduler.
		injData := sim.NewPipe[noc.DataFlit](cfg.LocalLatency, 1)
		ni.dataOut = injData
		r.inputs[topology.Local].dataIn = injData

		injResvCredit := sim.NewPipe[noc.ReservationCredit](cfg.CreditLatency, cfg.resvCreditWidth())
		ni.resvCreditIn = injResvCredit
		r.inputs[topology.Local].creditOut = injResvCredit

		injCtrl := sim.NewPipe[noc.ControlFlit](cfg.CtrlLinkLatency, cfg.CtrlFlitsPerCycle)
		ni.ctrlOut = injCtrl
		r.ctrlIn[topology.Local].in = injCtrl

		injCtrlCredit := sim.NewPipe[noc.VCCredit](cfg.CreditLatency, cfg.CtrlVCs)
		ni.ctrlCreditIn = injCtrlCredit
		r.ctrlIn[topology.Local].creditOut = injCtrlCredit

		// Ejection: router Local output -> sink, schedule set by
		// destination control flits.
		ejData := sim.NewPipe[noc.DataFlit](cfg.LocalLatency, 1)
		r.dataOut[topology.Local] = ejData
		sink.dataIn = ejData
		r.sinkNotify = sink.Expect
	}
}

// Offer implements noc.Network.
func (n *Network) Offer(p *noc.Packet) {
	n.offered++
	n.nis[p.Src].offer(p)
}

// Tick implements noc.Network.
func (n *Network) Tick(now sim.Cycle) {
	for _, ni := range n.nis {
		ni.Tick(now)
	}
	for _, r := range n.routers {
		r.Tick(now)
	}
	for _, s := range n.sinks {
		s.Tick(now)
	}
}

// SourceQueueLen implements noc.Network.
func (n *Network) SourceQueueLen() int {
	total := 0
	for _, ni := range n.nis {
		total += ni.queueLen()
	}
	return total
}

// InFlightPackets implements noc.Network. Lost packets count as resolved:
// their fate is known even though they were never delivered.
func (n *Network) InFlightPackets() int {
	return int(n.offered - n.delivered - n.lost)
}

// FaultStats reports fault-injection activity: data flits destroyed on links
// and packets the destinations detected as lost.
func (n *Network) FaultStats() (droppedFlits, lostPackets int64) {
	return n.dropped, n.lost
}

// ParkedFlits reports how many data flits, network-wide, ever arrived before
// their control flit finished scheduling and waited on a schedule list —
// the data-overtakes-control situation of Section 3.
func (n *Network) ParkedFlits() int64 {
	var total int64
	for _, r := range n.routers {
		for p := range r.inputs {
			if r.inputs[p] != nil {
				total += r.inputs[p].parkedTotal
			}
		}
	}
	return total
}

// BufferUsage implements noc.Network.
func (n *Network) BufferUsage(id topology.NodeID) (used, capacity int) {
	return n.routers[id].bufferUsage()
}

// PoolUsage implements noc.Network.
func (n *Network) PoolUsage(id topology.NodeID, port topology.Port) (used, capacity int) {
	in := n.routers[id].inputs[port]
	if in == nil {
		return 0, 0
	}
	return in.occupied, n.cfg.DataBuffers
}

// EagerTransfers reports, across the whole network, how many buffer-to-buffer
// transfers the allocate-at-reservation-time policy of Figure 10 would have
// required, and how many buffer residencies were replayed. Zero unless the
// configuration set TrackEagerTransfers.
func (n *Network) EagerTransfers() (transfers, residencies int64) {
	for _, r := range n.routers {
		for p := range r.inputs {
			if r.inputs[p] == nil {
				continue
			}
			t, a := r.inputs[p].ledger.Transfers()
			transfers += t
			residencies += a
		}
	}
	return transfers, residencies
}

// DumpState renders the routers' internal control and data state for
// deadlock diagnosis: per control VC, the queue depth and head flit with its
// scheduling progress; per input pool, occupancy and schedule-list size; per
// output table, the steady free count and per-VC outstanding/claims.
func (n *Network) DumpState() string {
	var b strings.Builder
	for id, r := range n.routers {
		if r.pendingWork() == 0 {
			continue
		}
		fmt.Fprintf(&b, "router %d\n", id)
		for p := range r.ctrlIn {
			ci := &r.ctrlIn[p]
			if !ci.exists {
				continue
			}
			for v := range ci.vcs {
				vc := &ci.vcs[v]
				if len(vc.q) == 0 {
					continue
				}
				qc := &vc.q[0]
				fmt.Fprintf(&b, "  ctrl in %s vc %d: qlen=%d head=%v routed=%v route=%v alloc=%v admitted=%v leads=%+v\n",
					topology.Port(p), v, len(vc.q), qc.flit, vc.routed, vc.route, vc.allocated, qc.admitted, qc.leads)
			}
		}
		for p := range r.inputs {
			in := r.inputs[p]
			if in == nil || in.pending() == 0 {
				continue
			}
			fmt.Fprintf(&b, "  input %s: occupied=%d parked=%d expected=%d\n",
				topology.Port(p), in.occupied, len(in.parked), len(in.expected))
		}
		for p := range r.outTables {
			tb := r.outTables[p]
			if tb == nil || tb.infinite {
				continue
			}
			fmt.Fprintf(&b, "  out %s: steady=%d outstanding=%v claims=%v\n",
				topology.Port(p), tb.steady, tb.outstanding, tb.claims)
		}
	}
	for id, ni := range n.nis {
		if ni.pendingWork() > 0 {
			fmt.Fprintf(&b, "NI %d: queue=%d active=%d sendAt=%d ctrlCredits=%v\n",
				id, len(ni.queue), ni.activeCount(), len(ni.sendAt), ni.ctrlCredits)
		}
	}
	return b.String()
}
