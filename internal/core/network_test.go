package core

import (
	"testing"

	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

type deliverRecorder struct {
	delivered map[noc.PacketID]sim.Cycle
}

func newRecorder() (*deliverRecorder, *noc.Hooks) {
	r := &deliverRecorder{delivered: make(map[noc.PacketID]sim.Cycle)}
	return r, &noc.Hooks{PacketDelivered: func(p *noc.Packet, now sim.Cycle) {
		r.delivered[p.ID] = now
	}}
}

// fastControl is the paper's fast-wire configuration scaled for tests.
func fastControl() Config {
	return Config{
		DataBuffers: 6, CtrlVCs: 2, CtrlBufPerVC: 3, Horizon: 32,
		LeadsPerCtrl: 1, CtrlFlitsPerCycle: 2,
		DataLinkLatency: 4, CtrlLinkLatency: 1, CreditLatency: 1, LocalLatency: 1,
	}
}

// leadingControl is the paper's same-speed-wires configuration with control
// flits injected lead cycles ahead of data.
func leadingControl(lead sim.Cycle) Config {
	c := fastControl()
	c.DataLinkLatency = 1
	c.LeadCycles = lead
	return c
}

func TestSinglePacketCrossesMesh(t *testing.T) {
	mesh := topology.NewMesh(4)
	rec, hooks := newRecorder()
	net := New(mesh, fastControl(), 1, hooks)

	p := &noc.Packet{ID: 1, Src: 0, Dst: 15, Len: 5, CreatedAt: 0}
	net.Offer(p)
	for now := sim.Cycle(0); now < 500 && len(rec.delivered) == 0; now++ {
		net.Tick(now)
	}
	got, ok := rec.delivered[1]
	if !ok {
		t.Fatal("packet was not delivered within 500 cycles")
	}
	if got < 25 || got > 80 {
		t.Errorf("corner-to-corner 5-flit latency = %d cycles, want within [25, 80]", got)
	}
	if net.InFlightPackets() != 0 {
		t.Errorf("InFlightPackets = %d after delivery, want 0", net.InFlightPackets())
	}
}

func TestFRFasterThanVCBaseLatency(t *testing.T) {
	// With fast control wires, flit reservation eliminates per-hop
	// routing/arbitration latency; an uncontended packet should beat the
	// VC per-hop cost of 1+4 cycles. Corner to corner on 4x4 = 6 hops.
	mesh := topology.NewMesh(4)
	rec, hooks := newRecorder()
	net := New(mesh, fastControl(), 2, hooks)
	net.Offer(&noc.Packet{ID: 1, Src: 0, Dst: 15, Len: 5, CreatedAt: 0})
	for now := sim.Cycle(0); now < 500 && len(rec.delivered) == 0; now++ {
		net.Tick(now)
	}
	if lat, ok := rec.delivered[1]; !ok || lat > 45 {
		t.Errorf("uncontended FR latency = %v (delivered=%v), want <= 45 cycles", lat, ok)
	}
}

func TestManyRandomPacketsAllDelivered(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"fast-control", fastControl()},
		{"leading-1", leadingControl(1)},
		{"leading-4", leadingControl(4)},
		{"all-or-nothing-d4", func() Config {
			c := fastControl()
			c.LeadsPerCtrl = 4
			c.AllOrNothing = true
			return c
		}()},
		{"wide-control-d4", func() Config {
			c := fastControl()
			c.LeadsPerCtrl = 4
			return c
		}()},
		{"eager-ledger", func() Config {
			c := fastControl()
			c.TrackEagerTransfers = true
			return c
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mesh := topology.NewMesh(4)
			rec, hooks := newRecorder()
			net := New(mesh, tc.cfg, 7, hooks)

			rng := sim.NewRNG(42)
			const packets = 300
			now := sim.Cycle(0)
			for i := 0; i < packets; i++ {
				src := topology.NodeID(rng.Intn(mesh.N()))
				dst := topology.NodeID(rng.Intn(mesh.N() - 1))
				if dst >= src {
					dst++
				}
				net.Offer(&noc.Packet{ID: noc.PacketID(i), Src: src, Dst: dst, Len: 5, CreatedAt: now})
				for j := 0; j < 4; j++ {
					net.Tick(now)
					now++
				}
			}
			for len(rec.delivered) < packets && now < 200000 {
				net.Tick(now)
				now++
			}
			if len(rec.delivered) != packets {
				t.Fatalf("delivered %d of %d packets", len(rec.delivered), packets)
			}
			if got := net.InFlightPackets(); got != 0 {
				t.Errorf("InFlightPackets = %d after drain, want 0", got)
			}
		})
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() map[noc.PacketID]sim.Cycle {
		mesh := topology.NewMesh(4)
		rec, hooks := newRecorder()
		net := New(mesh, leadingControl(1), 99, hooks)
		rng := sim.NewRNG(5)
		now := sim.Cycle(0)
		for i := 0; i < 100; i++ {
			src := topology.NodeID(rng.Intn(mesh.N()))
			dst := topology.NodeID(rng.Intn(mesh.N() - 1))
			if dst >= src {
				dst++
			}
			net.Offer(&noc.Packet{ID: noc.PacketID(i), Src: src, Dst: dst, Len: 3, CreatedAt: now})
			net.Tick(now)
			now++
		}
		for net.InFlightPackets() > 0 && now < 100000 {
			net.Tick(now)
			now++
		}
		return rec.delivered
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered different packet counts: %d vs %d", len(a), len(b))
	}
	for id, ca := range a {
		if cb := b[id]; ca != cb {
			t.Fatalf("packet %d delivered at cycle %d in run A but %d in run B", id, ca, cb)
		}
	}
}

func TestHeavyLoadSurvivesAndDrains(t *testing.T) {
	// Push the network well past saturation and verify the invariants
	// hold (no panics) and that it drains completely once offers stop.
	mesh := topology.NewMesh(4)
	rec, hooks := newRecorder()
	net := New(mesh, fastControl(), 21, hooks)
	rng := sim.NewRNG(77)
	now := sim.Cycle(0)
	offered := 0
	for ; now < 2000; now++ {
		for id := 0; id < mesh.N(); id++ {
			if rng.Bool(0.15) { // ~0.75 flits/node/cycle offered: way past capacity
				dst := topology.NodeID(rng.Intn(mesh.N() - 1))
				if dst >= topology.NodeID(id) {
					dst++
				}
				net.Offer(&noc.Packet{ID: noc.PacketID(offered), Src: topology.NodeID(id), Dst: dst, Len: 5, CreatedAt: now})
				offered++
			}
		}
		net.Tick(now)
	}
	for net.InFlightPackets() > 0 && now < 2000000 {
		net.Tick(now)
		now++
	}
	if got := net.InFlightPackets(); got != 0 {
		t.Fatalf("network failed to drain: %d packets still in flight after cycle %d (delivered %d of %d)",
			got, now, len(rec.delivered), offered)
	}
}

func TestBufferUsageWithinCapacity(t *testing.T) {
	mesh := topology.NewMesh(4)
	_, hooks := newRecorder()
	net := New(mesh, fastControl(), 11, hooks)
	rng := sim.NewRNG(13)
	now := sim.Cycle(0)
	for i := 0; i < 300; i++ {
		src := topology.NodeID(rng.Intn(mesh.N()))
		dst := topology.NodeID(rng.Intn(mesh.N() - 1))
		if dst >= src {
			dst++
		}
		net.Offer(&noc.Packet{ID: noc.PacketID(i), Src: src, Dst: dst, Len: 5, CreatedAt: now})
		net.Tick(now)
		now++
		for id := 0; id < mesh.N(); id++ {
			used, capacity := net.BufferUsage(topology.NodeID(id))
			if used < 0 || used > capacity {
				t.Fatalf("node %d buffer usage %d outside [0, %d]", id, used, capacity)
			}
		}
	}
}

func TestDumpStateRendersBusyRouters(t *testing.T) {
	mesh := topology.NewMesh(4)
	_, hooks := newRecorder()
	net := New(mesh, fastControl(), 2, hooks)
	net.Offer(&noc.Packet{ID: 1, Src: 0, Dst: 15, Len: 5, CreatedAt: 0})
	for now := sim.Cycle(0); now < 6; now++ {
		net.Tick(now)
	}
	dump := net.DumpState()
	if dump == "" {
		t.Fatal("DumpState empty while a packet is in flight")
	}
	for now := sim.Cycle(6); now < 2000 && net.InFlightPackets() > 0; now++ {
		net.Tick(now)
	}
	if got := net.DumpState(); got != "" {
		t.Fatalf("DumpState not empty after drain:\n%s", got)
	}
}
