package core

import (
	"testing"

	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

func testFlit(id noc.PacketID, seq int) noc.DataFlit {
	return noc.DataFlit{Packet: &noc.Packet{ID: id, Len: 8}, Seq: seq}
}

// noBypass fails the test if the bypass path fires.
func noBypass(t *testing.T) func(noc.DataFlit, topology.Port) {
	t.Helper()
	return func(f noc.DataFlit, out topology.Port) {
		t.Fatalf("unexpected bypass of %s toward %s", f, out)
	}
}

func TestInputPortReserveThenArriveThenDepart(t *testing.T) {
	p := newInputPort(3, nil, false)
	p.reserve(0, 5, 9, topology.East, false)
	p.arrive(5, testFlit(1, 0), noBypass(t))
	if p.occupied != 1 {
		t.Fatalf("occupied = %d, want 1", p.occupied)
	}
	// Not due yet.
	p.departures(8, func(noc.DataFlit, topology.Port) {
		t.Fatal("departed early")
	})
	var gone bool
	p.departures(9, func(f noc.DataFlit, out topology.Port) {
		gone = true
		if out != topology.East || f.Packet.ID != 1 {
			t.Fatalf("wrong departure: %s via %s", f, out)
		}
	})
	if !gone || p.occupied != 0 {
		t.Fatalf("departure missing (gone=%v, occupied=%d)", gone, p.occupied)
	}
}

func TestInputPortBypass(t *testing.T) {
	p := newInputPort(1, nil, false)
	p.reserve(0, 7, 7, topology.South, false) // depart the same cycle it arrives
	hit := false
	p.arrive(7, testFlit(2, 0), func(f noc.DataFlit, out topology.Port) {
		hit = true
		if out != topology.South {
			t.Fatalf("bypass toward %s, want S", out)
		}
	})
	if !hit {
		t.Fatal("bypass path not taken")
	}
	if p.occupied != 0 {
		t.Fatal("bypassed flit occupied a buffer")
	}
}

func TestInputPortParkThenSchedule(t *testing.T) {
	p := newInputPort(2, nil, false)
	// Flit arrives before any reservation: parked on the schedule list.
	p.arrive(4, testFlit(3, 1), noBypass(t))
	if len(p.parked) != 1 || p.occupied != 1 {
		t.Fatal("flit not parked")
	}
	// The reservation signal claims it later.
	p.reserve(10, 4, 13, topology.West, false)
	if len(p.parked) != 0 {
		t.Fatal("schedule list entry not claimed")
	}
	departed := false
	p.departures(13, func(f noc.DataFlit, out topology.Port) {
		departed = true
		if out != topology.West || f.Seq != 1 {
			t.Fatalf("wrong departure %s via %s", f, out)
		}
	})
	if !departed {
		t.Fatal("parked flit never departed")
	}
}

func TestInputPortPoolExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arrival into a full pool did not panic")
		}
	}()
	p := newInputPort(1, nil, false)
	p.arrive(1, testFlit(1, 0), noBypass(t))
	p.arrive(2, testFlit(2, 0), noBypass(t))
}

func TestInputPortDuplicateReservationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate reservation did not panic")
		}
	}()
	p := newInputPort(2, nil, false)
	p.reserve(0, 5, 9, topology.East, false)
	p.reserve(0, 5, 10, topology.West, false)
}

func TestInputPortPastReservationWithoutFlitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("reservation for a past arrival with no parked flit did not panic")
		}
	}()
	p := newInputPort(2, nil, false)
	p.reserve(10, 4, 13, topology.East, false)
}

func TestInputPortPending(t *testing.T) {
	p := newInputPort(4, nil, false)
	p.reserve(0, 6, 9, topology.East, false)
	if p.pending() != 1 {
		t.Fatalf("pending = %d with one expectation, want 1", p.pending())
	}
	p.arrive(6, testFlit(1, 0), noBypass(t))
	if p.pending() != 1 {
		t.Fatalf("pending = %d with one resident, want 1", p.pending())
	}
	p.departures(9, func(noc.DataFlit, topology.Port) {})
	if p.pending() != 0 {
		t.Fatalf("pending = %d after departure, want 0", p.pending())
	}
}

// TestDeferredAllocationNeverFragments is the Figure 10 theorem as a
// property: binding buffers at arrival time (greedy interval coloring by
// left endpoint) always succeeds within the pool bound, so deferred
// allocation never needs a transfer. We replay many random residency sets
// whose max overlap is within capacity.
func TestDeferredAllocationNeverFragments(t *testing.T) {
	rng := sim.NewRNG(77)
	const buffers = 6
	for trial := 0; trial < 200; trial++ {
		p := newInputPort(buffers, nil, false)
		// Build random arrivals with random residencies, admitting an
		// arrival only if current+future overlap stays within bounds;
		// this mirrors what the reservation accounting enforces.
		occupancy := map[sim.Cycle]int{}
		type res struct{ ta, td sim.Cycle }
		var rs []res
		for i := 0; i < 40; i++ {
			ta := sim.Cycle(rng.Intn(120))
			td := ta + 1 + sim.Cycle(rng.Intn(12))
			ok := true
			for c := ta; c < td; c++ {
				if occupancy[c]+1 > buffers {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for c := ta; c < td; c++ {
				occupancy[c]++
			}
			// Arrival cycles must be unique per input (one flit
			// per cycle per link).
			dup := false
			for _, r := range rs {
				if r.ta == ta {
					dup = true
					break
				}
			}
			if dup {
				for c := ta; c < td; c++ {
					occupancy[c]--
				}
				continue
			}
			rs = append(rs, res{ta, td})
		}
		for _, r := range rs {
			p.reserve(0, r.ta, r.td, topology.East, false)
		}
		// Replay in time order; arrive panics if ever out of buffers.
		for c := sim.Cycle(0); c <= 140; c++ {
			p.departures(c, func(noc.DataFlit, topology.Port) {})
			for _, r := range rs {
				if r.ta == c {
					p.arrive(c, testFlit(noc.PacketID(c), 0), func(noc.DataFlit, topology.Port) {})
				}
			}
		}
		if p.occupied != 0 {
			t.Fatalf("trial %d: %d flits never departed", trial, p.occupied)
		}
	}
}

func TestInputPortFaultTolerantLateReservation(t *testing.T) {
	// In fault-tolerant mode a reservation for a past arrival with no
	// parked flit (the flit was destroyed upstream) dissolves quietly.
	p := newInputPort(2, nil, true)
	p.reserve(10, 4, 13, topology.East, false)
	if p.pending() != 0 {
		t.Fatalf("dissolved reservation left pending state: %d", p.pending())
	}
	p.departures(13, func(noc.DataFlit, topology.Port) {
		t.Fatal("a vanished flit departed")
	})
}
