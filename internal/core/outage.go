package core

import (
	"fmt"
	"sort"

	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

// This file is the hard-fault engine: it applies the scheduled outage events
// of Config.Faults to the running network — severing and restoring wires,
// destroying in-flight state, and rebuilding the fault-aware routing table —
// all deterministically, so a scenario run is bit-identical regardless of how
// the harness schedules it.

// applyFaults applies every scenario event due at or before now, then — if
// any fired — recomputes routes and fails fast the queued packets the new
// topology cut off. It runs at the top of Tick, before any component moves.
func (n *Network) applyFaults(now sim.Cycle) {
	changed := false
	for n.nextFault < len(n.cfg.Faults) && n.cfg.Faults[n.nextFault].At <= now {
		e := n.cfg.Faults[n.nextFault]
		n.nextFault++
		switch e.Kind {
		case LinkDown:
			n.failLink(e.A, e.B)
			changed = true
		case LinkUp:
			n.repairLink(e.A, e.B)
			changed = true
		case RouterDown:
			n.killRouter(now, e.A)
			changed = true
		case LinkCorrupt:
			// A soft fault: the topology is untouched, only the link's
			// bit-error rate changes.
			n.corruptLink(e.A, e.B, e.Rate)
		default:
			panic(fmt.Sprintf("core: unknown fault kind %d", e.Kind))
		}
	}
	if changed {
		n.topoChanged(now)
	}
}

// corruptLink retunes the undirected link a—b's bit-error rate: both
// directions' data and control wires start delivering corrupted flits at the
// given probability. The pipes were armed at wire time (berArmed), so the
// retune never perturbs RNG draw order.
func (n *Network) corruptLink(a, b topology.NodeID, rate float64) {
	for _, i := range n.linkIdx[normLink(a, b)] {
		l := &n.links[i]
		l.data.SetBitErrorRate(rate)
		l.ctrl.SetBitErrorRate(rate)
	}
}

// severDirected cuts one directed link's four wires, destroying everything in
// flight. Destroyed data flits are reported as dropped; control flits and
// credits vanish silently — the drain machinery downstream and the credit
// recomputation at repair time absorb the loss.
func (n *Network) severDirected(l *linkPipes) {
	l.data.Sever(func(f noc.DataFlit) { n.hooks.Dropped(f.Packet, n.now) })
	l.resvCredit.Sever(nil)
	l.ctrl.Sever(nil)
	l.ctrlCredit.Sever(nil)
}

// failLink takes the undirected link a—b out of service: both directions'
// wires are severed and every control stream routed into them is cut loose.
func (n *Network) failLink(a, b topology.NodeID) {
	n.linkDown[normLink(a, b)] = true
	for _, i := range n.linkIdx[normLink(a, b)] {
		l := &n.links[i]
		n.severDirected(l)
		n.routers[l.a].severOutput(l.p)
	}
}

// repairLink returns the undirected link a—b to service. Per direction x→y
// through x's port p:
//
//   - the four wires are restored, empty;
//   - x gets a fresh output reservation table for p — the old one's free
//     counts are garbage because the credits that would have maintained them
//     died on the severed credit wire;
//   - x's control-output credits are recomputed from y's actual control queue
//     occupancy (queued flits drain and return their credits over the
//     restored wire, re-establishing conservation);
//   - reservations x's inputs still hold toward p are purged — their
//     departures were committed on the dead table and would collide with the
//     fresh one's bookkeeping;
//   - y's input port behind the link is reset to empty, because the fresh
//     table at x believes every buffer there is free.
//
// y's control queues keep their flits: their streams route onward through
// live outputs and complete as ghosts of the destroyed data.
func (n *Network) repairLink(a, b topology.NodeID) {
	delete(n.linkDown, normLink(a, b))
	cfg := n.cfg
	for _, i := range n.linkIdx[normLink(a, b)] {
		l := &n.links[i]
		l.data.Restore()
		l.resvCredit.Restore()
		l.ctrl.Restore()
		l.ctrlCredit.Restore()

		x, y := n.routers[l.a], n.routers[l.b]
		q := l.p.Opposite()
		x.outTables[l.p] = newOutResTable(cfg.Horizon, cfg.DataBuffers, cfg.CtrlVCs, false)
		co := &x.ctrlOut[l.p]
		for v := range co.credits {
			co.credits[v] = cfg.CtrlBufPerVC - len(y.ctrlIn[q].vcs[v].q)
			co.owned[v] = false
		}
		drop := func(f noc.DataFlit) { n.hooks.Dropped(f.Packet, n.now) }
		for p := range x.inputs {
			if x.inputs[p] != nil {
				x.inputs[p].purgeOutput(l.p, drop)
			}
		}
		y.inputs[q].reset(drop)
	}
}

// killRouter permanently removes a router: every incident link and the
// node's own injection/ejection wires are severed for good, and every packet
// its interface still owed an outcome is resolved as unreachable — in
// PacketID order, for determinism.
func (n *Network) killRouter(now sim.Cycle, v topology.NodeID) {
	n.deadNode[v] = true
	for p := topology.Port(0); p < topology.Local; p++ {
		nb, ok := n.mesh.Neighbor(v, p)
		if !ok {
			continue
		}
		for _, i := range n.linkIdx[normLink(v, nb)] {
			l := &n.links[i]
			if l.data.Severed() {
				continue // already down, or shared with another dead router
			}
			n.severDirected(l)
			n.routers[l.a].severOutput(l.p)
		}
	}

	drop := func(f noc.DataFlit) { n.hooks.Dropped(f.Packet, n.now) }
	ni := n.nis[v]
	ni.dataOut.Sever(drop)
	ni.resvCreditIn.Sever(nil)
	ni.ctrlOut.Sever(nil)
	ni.ctrlCreditIn.Sever(nil)
	n.sinks[v].dataIn.Sever(drop)

	// The dead interface never ticks again, so its timers can never resolve
	// anything: settle every packet it was responsible for right now.
	pending := make([]*noc.Packet, 0, len(ni.awaiting))
	for _, st := range ni.awaiting {
		pending = append(pending, st.pkt)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].ID < pending[j].ID })
	for _, p := range pending {
		n.hooks.Unreachable(p, now)
	}
	ni.awaiting = make(map[noc.PacketID]*retryState)
	ni.queue = nil
	ni.timeouts = nil
	ni.retryAt = make(map[sim.Cycle][]*noc.Packet)
	ni.sendAt = make(map[sim.Cycle]noc.DataFlit)
	for i := range ni.active {
		ni.active[i] = niPacket{}
	}
	// Flits already scheduled into the dead sink will never eject; the
	// senders' retry machinery resolves them through the unreachable path.
	n.sinks[v].expect = make(map[sim.Cycle]expectEntry)
}

// topoChanged recomputes routes over the surviving topology and fails fast
// every queued packet the change disconnected, interface by interface in id
// order.
func (n *Network) topoChanged(now sim.Cycle) {
	if n.table != nil {
		n.table.Rebuild(n.mesh,
			func(a, b topology.NodeID) bool { return !n.linkDown[normLink(a, b)] },
			func(v topology.NodeID) bool { return !n.deadNode[v] })
	}
	for id := range n.nis {
		if n.isDead(topology.NodeID(id)) {
			continue
		}
		n.nis[id].failUnreachable(now)
	}
}
