package core

import (
	"testing"

	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
	"frfc/internal/vcrouter"
)

// TestZeroTurnaroundBufferReuse verifies the paper's headline mechanism at
// the network level: under flit reservation, a buffer freed by a departure
// at cycle t can hold a new flit arriving at cycle t — zero turnaround —
// whereas the virtual-channel credit loop leaves a buffer idle for the
// propagation-plus-credit delay after every departure.
//
// The probe drives one path of a 4x4 mesh with back-to-back traffic: with
// only 3 buffers per input against a 6-cycle credit loop, sustaining a flit
// per cycle is only possible if buffers are reusable the cycle they free.
func TestZeroTurnaroundBufferReuse(t *testing.T) {
	mesh := topology.NewMesh(4)
	cfg := fastControl()
	cfg.DataBuffers = 3
	// One control VC: with more, the deadlock-avoidance reserve holds a
	// buffer back for the idle VCs, which is exactly what this probe must
	// not measure.
	cfg.CtrlVCs = 1
	net := New(mesh, cfg, 3, &noc.Hooks{})

	// A steady stream from node 0 to node 3 crosses routers 1 and 2.
	// With a 4-cycle data link and only 3 buffers per input, virtual
	// channel flow control could sustain at most 3 flits per ~6-cycle
	// credit loop (1/2 flit/cycle); flit reservation must sustain close
	// to the full 1 flit/cycle.
	now := sim.Cycle(0)
	var delivered int
	net.hooks.FlitEjected = func(sim.Cycle) { delivered++ }
	id := noc.PacketID(0)
	for ; now < 600; now++ {
		// One 5-flit packet every 5 cycles: 1 flit/cycle offered on
		// the single path.
		if now%5 == 0 {
			id++
			net.Offer(&noc.Packet{ID: id, Src: 0, Dst: 3, Len: 5, CreatedAt: now})
		}
		net.Tick(now)
	}
	for net.InFlightPackets() > 0 && now < 20000 {
		net.Tick(now)
		now++
	}
	drainCycles := int(now)
	if net.InFlightPackets() != 0 {
		t.Fatal("stream did not drain")
	}
	// 120 packets x 5 flits = 600 flits over ~600 cycles of injection: if
	// the pipeline sustained ~1 flit/cycle, drain completes shortly after
	// the last injection. A 1/3-rate credit-loop bottleneck would need
	// ~1800 cycles.
	if drainCycles > 900 {
		t.Fatalf("stream took %d cycles to drain; buffers are not turning around instantly", drainCycles)
	}
}

// TestAdvanceCreditsBeatTheCreditLoop measures the same effect comparatively:
// on one saturated path, flit reservation with 2 buffers outruns virtual
// channels with 2 buffers by roughly the credit-loop factor.
func TestAdvanceCreditsBeatTheCreditLoop(t *testing.T) {
	mesh := topology.NewMesh(4)
	throughput := func(build func() noc.Network) int {
		net := build()
		delivered := 0
		now := sim.Cycle(0)
		id := noc.PacketID(0)
		for ; now < 1500; now++ {
			if now%5 == 0 {
				id++
				net.Offer(&noc.Packet{ID: id, Src: 0, Dst: 3, Len: 5, CreatedAt: now})
			}
			net.Tick(now)
		}
		_ = delivered
		// Count ejected flits in the window by draining and comparing.
		start := net.InFlightPackets()
		return 300 - start // packets completed during the window
	}
	fr := throughput(func() noc.Network {
		cfg := fastControl()
		cfg.DataBuffers = 2
		cfg.CtrlVCs = 1
		return New(mesh, cfg, 3, &noc.Hooks{})
	})
	// A VC network with the same 2 buffers per input (1 VC x 2).
	vc := throughput(func() noc.Network {
		return vcrouter.New(mesh, vcrouter.Config{NumVCs: 1, BufPerVC: 2, LinkLatency: 4, CreditLatency: 1, LocalLatency: 1}, 3, &noc.Hooks{})
	})
	if fr <= vc {
		t.Fatalf("FR completed %d packets vs VC %d on a saturated path; advance credits should win", fr, vc)
	}
	if float64(fr) < 1.5*float64(vc) {
		t.Errorf("FR advantage only %d vs %d; expected at least ~1.5x from zero turnaround", fr, vc)
	}
}
