package core

import (
	"testing"

	"frfc/internal/noc"
	"frfc/internal/sim"
)

// testNI builds an NI with test-owned pipes on both ends.
func testNI(cfg Config) (*NI, *sim.Pipe[noc.ControlFlit], *sim.Pipe[noc.DataFlit], *sim.Pipe[noc.ReservationCredit], *sim.Pipe[noc.VCCredit]) {
	cfg = cfg.withDefaults()
	n := newNI(0, cfg, sim.NewRNG(1), &noc.Hooks{})
	ctrl := sim.NewPipe[noc.ControlFlit](cfg.CtrlLinkLatency, cfg.CtrlFlitsPerCycle)
	data := sim.NewPipe[noc.DataFlit](cfg.LocalLatency, 1)
	resv := sim.NewPipe[noc.ReservationCredit](cfg.CreditLatency, cfg.resvCreditWidth())
	ctrlCredit := sim.NewPipe[noc.VCCredit](cfg.CreditLatency, cfg.CtrlVCs)
	n.ctrlOut = ctrl
	n.dataOut = data
	n.resvCreditIn = resv
	n.ctrlCreditIn = ctrlCredit
	return n, ctrl, data, resv, ctrlCredit
}

func TestNIInjectsControlBeforeData(t *testing.T) {
	n, ctrl, data, _, _ := testNI(fastControl())
	n.offer(&noc.Packet{ID: 1, Src: 0, Dst: 5, Len: 3, CreatedAt: 0})
	var ctrlAt, dataAt []sim.Cycle
	for now := sim.Cycle(0); now < 30; now++ {
		n.Tick(now)
		ctrl.RecvEach(now+1, func(cf noc.ControlFlit) { ctrlAt = append(ctrlAt, now) })
		data.RecvEach(now+1, func(noc.DataFlit) { dataAt = append(dataAt, now) })
	}
	if len(ctrlAt) != 3 || len(dataAt) != 3 {
		t.Fatalf("injected %d control and %d data flits, want 3 and 3", len(ctrlAt), len(dataAt))
	}
	for i := range ctrlAt {
		if ctrlAt[i] >= dataAt[i] {
			t.Fatalf("control flit %d injected at %d, not before its data flit at %d", i, ctrlAt[i], dataAt[i])
		}
	}
}

func TestNILeadCyclesHonored(t *testing.T) {
	cfg := leadingControl(4)
	n, ctrl, data, _, _ := testNI(cfg)
	n.offer(&noc.Packet{ID: 1, Src: 0, Dst: 5, Len: 2, CreatedAt: 0})
	ctrlSent := map[int]sim.Cycle{} // seq -> inject cycle
	dataSent := map[int]sim.Cycle{}
	for now := sim.Cycle(0); now < 40; now++ {
		n.Tick(now)
		ctrl.RecvEach(now+1, func(cf noc.ControlFlit) {
			for _, le := range cf.Leads {
				ctrlSent[le.Seq] = now
			}
		})
		data.RecvEach(now+1, func(f noc.DataFlit) { dataSent[f.Seq] = now })
	}
	for seq, c := range ctrlSent {
		d, ok := dataSent[seq]
		if !ok {
			t.Fatalf("data flit %d never injected", seq)
		}
		if d < c+cfg.LeadCycles {
			t.Fatalf("flit %d: data at %d, control at %d — lead of %d violated", seq, d, c, cfg.LeadCycles)
		}
	}
}

func TestNIControlFlitCarriesAccurateArrivals(t *testing.T) {
	cfg := fastControl()
	n, ctrl, data, _, _ := testNI(cfg)
	n.offer(&noc.Packet{ID: 1, Src: 0, Dst: 5, Len: 2, CreatedAt: 0})
	announced := map[int]sim.Cycle{}
	arrived := map[int]sim.Cycle{}
	for now := sim.Cycle(0); now < 40; now++ {
		n.Tick(now)
		ctrl.RecvEach(now+1, func(cf noc.ControlFlit) {
			for _, le := range cf.Leads {
				announced[le.Seq] = le.Arrival
			}
		})
		data.RecvEach(now, func(f noc.DataFlit) { arrived[f.Seq] = now })
	}
	if len(announced) != 2 || len(arrived) != 2 {
		t.Fatalf("announced %d, arrived %d; want 2 and 2", len(announced), len(arrived))
	}
	for seq, a := range announced {
		if arrived[seq] != a {
			t.Fatalf("flit %d announced to arrive at %d but arrived at %d", seq, a, arrived[seq])
		}
	}
}

func TestNIRespectsControlCredits(t *testing.T) {
	cfg := fastControl() // CtrlBufPerVC = 3
	n, ctrl, _, resv, ctrlCredit := testNI(cfg)
	// One long packet: 8 control flits, but only 3 control credits. The
	// test plays the router's input scheduler for the reservation
	// credits (scheduling each injected flit's buffer release promptly)
	// so that only the control-credit limit binds.
	n.offer(&noc.Packet{ID: 1, Src: 0, Dst: 5, Len: 8, CreatedAt: 0})
	sent := 0
	now := sim.Cycle(0)
	step := func(returnCtrl bool) {
		n.Tick(now)
		ctrl.RecvEach(now+1, func(cf noc.ControlFlit) {
			sent++
			for _, le := range cf.Leads {
				resv.Send(now+1, noc.ReservationCredit{FreeFrom: le.Arrival, VC: cf.VC})
			}
			if returnCtrl {
				ctrlCredit.Send(now+1, noc.VCCredit{VC: cf.VC})
			}
		})
		now++
	}
	for now < 20 {
		step(false)
	}
	if sent != cfg.CtrlBufPerVC {
		t.Fatalf("NI sent %d control flits with %d credits and no returns", sent, cfg.CtrlBufPerVC)
	}
	// Returning control credits (3 outstanding plus one per new flit)
	// resumes injection all the way.
	for i := 0; i < 3; i++ {
		ctrlCredit.Send(now, noc.VCCredit{VC: 0})
		step(true)
	}
	for end := now + 25; now < end; {
		step(true)
	}
	if sent != 8 {
		t.Fatalf("NI sent %d control flits after credit returns, want 8", sent)
	}
}

func TestNIFIFOSourceSerializesPackets(t *testing.T) {
	cfg := fastControl()
	n, ctrl, _, resv, ctrlCredit := testNI(cfg)
	n.offer(&noc.Packet{ID: 1, Src: 0, Dst: 5, Len: 2, CreatedAt: 0})
	n.offer(&noc.Packet{ID: 2, Src: 0, Dst: 6, Len: 2, CreatedAt: 0})
	var order []noc.PacketID
	for now := sim.Cycle(0); now < 40; now++ {
		n.Tick(now)
		ctrl.RecvEach(now+1, func(cf noc.ControlFlit) {
			order = append(order, cf.Packet.ID)
			// Play a healthy downstream: return both credit kinds.
			ctrlCredit.Send(now+1, noc.VCCredit{VC: cf.VC})
			for _, le := range cf.Leads {
				resv.Send(now+1, noc.ReservationCredit{FreeFrom: le.Arrival, VC: cf.VC})
			}
		})
	}
	want := []noc.PacketID{1, 1, 2, 2}
	if len(order) != len(want) {
		t.Fatalf("control injections: %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("FIFO violated: injections %v", order)
		}
	}
}

func TestNIInterleaveAllowsConcurrentPackets(t *testing.T) {
	cfg := fastControl()
	cfg.SourceInterleave = true
	n, ctrl, _, _, _ := testNI(cfg)
	n.offer(&noc.Packet{ID: 1, Src: 0, Dst: 5, Len: 3, CreatedAt: 0})
	n.offer(&noc.Packet{ID: 2, Src: 0, Dst: 6, Len: 3, CreatedAt: 0})
	firstOfTwo := sim.Cycle(-1)
	lastOfOne := sim.Cycle(-1)
	for now := sim.Cycle(0); now < 40; now++ {
		n.Tick(now)
		ctrl.RecvEach(now+1, func(cf noc.ControlFlit) {
			if cf.Packet.ID == 2 && firstOfTwo < 0 {
				firstOfTwo = now
			}
			if cf.Packet.ID == 1 {
				lastOfOne = now
			}
		})
	}
	if firstOfTwo < 0 || lastOfOne < 0 {
		t.Fatal("packets not injected")
	}
	if firstOfTwo > lastOfOne {
		t.Fatalf("interleaving NI serialized packets: pkt2 started %d, pkt1 finished %d", firstOfTwo, lastOfOne)
	}
}

func TestSinkExpectAndVerify(t *testing.T) {
	s := newSink(0, &noc.Hooks{})
	s.dataIn = sim.NewPipe[noc.DataFlit](1, 1)
	p := &noc.Packet{ID: 9, Len: 1}
	s.Expect(5, p, 0, 0)
	s.dataIn.Send(4, noc.DataFlit{Packet: p, Seq: 0})
	delivered := false
	s.hooks = &noc.Hooks{PacketDelivered: func(q *noc.Packet, now sim.Cycle) {
		delivered = q == p && now == 5
	}}
	s.Tick(5)
	if !delivered {
		t.Fatal("sink did not deliver the expected packet")
	}
}

func TestSinkPanicsOnReassemblyMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched flit did not panic")
		}
	}()
	s := newSink(0, &noc.Hooks{})
	s.dataIn = sim.NewPipe[noc.DataFlit](1, 1)
	p := &noc.Packet{ID: 9, Len: 2}
	q := &noc.Packet{ID: 8, Len: 2}
	s.Expect(5, p, 0, 0)
	s.dataIn.Send(4, noc.DataFlit{Packet: q, Seq: 0})
	s.Tick(5)
}

func TestSinkPanicsOnUnscheduledFlit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unscheduled flit did not panic")
		}
	}()
	s := newSink(0, &noc.Hooks{})
	s.dataIn = sim.NewPipe[noc.DataFlit](1, 1)
	s.dataIn.Send(4, noc.DataFlit{Packet: &noc.Packet{ID: 1, Len: 1}})
	s.Tick(5)
}

func TestSinkDetectsLoss(t *testing.T) {
	lost := false
	s := newSink(0, &noc.Hooks{})
	s.dataIn = sim.NewPipe[noc.DataFlit](1, 1)
	p := &noc.Packet{ID: 9, Len: 2}
	s.hooks = &noc.Hooks{PacketLost: func(q *noc.Packet, now sim.Cycle) { lost = q == p }}
	s.Expect(5, p, 0, 0)
	// Nothing arrives at cycle 5.
	s.Tick(5)
	if !lost {
		t.Fatal("sink did not detect the missing flit")
	}
	if s.pendingWork() != 0 {
		t.Fatal("lost expectation not cleaned up")
	}
}
