package core

import (
	"fmt"

	"frfc/internal/metrics"
	"frfc/internal/noc"
	"frfc/internal/profile"
	"frfc/internal/sim"
	"frfc/internal/topology"
	"frfc/internal/waterfall"
)

// NI is a node's network interface on the injection side. Packet injection
// is scheduled exactly like any other hop (Section 3): the NI keeps an output
// reservation table for the injection channel — busy bits for the channel,
// free-buffer counts for the router's injection pool — and a control flit is
// injected only after it has scheduled the injection times of all its data
// flits. Under leading control (LeadCycles > 0) a data flit's injection is
// additionally deferred at least LeadCycles behind its control flit.
type NI struct {
	node  topology.NodeID
	cfg   Config
	rng   *sim.RNG
	hooks *noc.Hooks
	probe *metrics.Probe
	// prof is the self-profiling registry cached off the probe at attach
	// time; nil when profiling is disabled.
	prof *profile.Registry
	// wf is the latency-stage ledger cached off the probe at attach time;
	// nil when latency provenance is disabled.
	wf *waterfall.Ledger

	queue []*noc.Packet

	injTable *outResTable

	active []niPacket // one slot per control VC of the injection link

	ctrlCredits []int
	ctrlOwned   []bool

	ctrlOut      *sim.Pipe[noc.ControlFlit]
	ctrlCreditIn *sim.Pipe[noc.VCCredit]
	dataOut      *sim.Pipe[noc.DataFlit]
	resvCreditIn *sim.Pipe[noc.ReservationCredit]

	// sendAt holds scheduled data-flit injections keyed by departure
	// cycle; the injection channel's busy bits make the key unique.
	sendAt map[sim.Cycle]noc.DataFlit

	// End-to-end retry state (cfg.RetryLimit > 0). awaiting tracks every
	// offered packet until the destination's acknowledgment arrives;
	// retryAt holds backoff-delayed re-offers keyed by injection cycle;
	// timeouts is the per-packet retry timer queue, FIFO because every
	// deadline is armed as now + RetryTimeout.
	awaiting map[noc.PacketID]*retryState
	retryAt  map[sim.Cycle][]*noc.Packet
	timeouts []niTimeout

	// progress points at the network-wide movement counter the watchdog
	// monitors; the NI bumps it whenever it puts a flit on a wire.
	progress *int64

	// unreachable, when set, reports whether a destination is currently
	// disconnected from this node over the surviving topology. The NI fails
	// such packets fast — PacketUnreachable instead of burning the retry
	// budget — at queue admission, on every topology change, and whenever a
	// loss signal or retry would otherwise re-inject one.
	unreachable func(dst topology.NodeID) bool
}

// retryState tracks one offered packet awaiting its end-to-end outcome.
type retryState struct {
	pkt *noc.Packet
	// attempt is the transmission attempt currently outstanding (0 = the
	// first injection).
	attempt int
	// retryPending marks that a re-offer is scheduled but not yet queued,
	// so duplicate loss signals (NACK plus timeout) for the same attempt
	// trigger only one retry.
	retryPending bool
}

// niTimeout is one armed per-packet retry timer.
type niTimeout struct {
	pid      noc.PacketID
	attempt  int
	deadline sim.Cycle
}

// niPacket is one packet whose control flits are being scheduled and
// injected on one control VC.
type niPacket struct {
	active   bool
	pkt      *noc.Packet
	data     []noc.DataFlit
	ctrl     []noc.ControlFlit
	nextCtrl int
}

func newNI(node topology.NodeID, cfg Config, rng *sim.RNG, hooks *noc.Hooks) *NI {
	n := &NI{
		node:        node,
		cfg:         cfg,
		rng:         rng,
		hooks:       hooks,
		injTable:    newOutResTable(cfg.Horizon, cfg.DataBuffers, cfg.CtrlVCs, false),
		active:      make([]niPacket, cfg.CtrlVCs),
		ctrlCredits: make([]int, cfg.CtrlVCs),
		ctrlOwned:   make([]bool, cfg.CtrlVCs),
		sendAt:      make(map[sim.Cycle]noc.DataFlit),
		progress:    new(int64),
	}
	if cfg.RetryLimit > 0 {
		n.awaiting = make(map[noc.PacketID]*retryState)
		n.retryAt = make(map[sim.Cycle][]*noc.Packet)
	}
	for v := range n.ctrlCredits {
		n.ctrlCredits[v] = cfg.CtrlBufPerVC
	}
	return n
}

func (n *NI) offer(p *noc.Packet) {
	if n.cfg.RetryLimit > 0 {
		n.awaiting[p.ID] = &retryState{pkt: p}
	}
	n.queue = append(n.queue, p)
}

// ack releases a packet's retry state: the destination acknowledged
// delivery, so no retry timer or loss notification for it matters anymore.
func (n *NI) ack(pid noc.PacketID) { delete(n.awaiting, pid) }

// loss reacts to a loss notification (NACK) or retry timeout for the given
// attempt of a packet: it schedules a backoff-delayed re-offer, or abandons
// the packet when the retry budget is exhausted. Stale signals — for a
// packet already acknowledged, an attempt already superseded, or an attempt
// whose retry is already scheduled — are ignored.
func (n *NI) loss(pid noc.PacketID, attempt int, now sim.Cycle) {
	st := n.awaiting[pid]
	if st == nil || st.retryPending || attempt != st.attempt {
		return
	}
	if n.unreachable != nil && n.unreachable(st.pkt.Dst) {
		// The loss was no accident: the destination is cut off. Resolve
		// the packet now instead of retrying into a void.
		delete(n.awaiting, pid)
		n.hooks.Unreachable(st.pkt, now)
		return
	}
	if st.attempt >= n.cfg.RetryLimit {
		delete(n.awaiting, pid)
		n.hooks.Abandoned(st.pkt, now)
		return
	}
	st.retryPending = true
	at := now + n.cfg.RetryBackoffBase<<st.attempt
	n.retryAt[at] = append(n.retryAt[at], st.pkt)
}

// tickRetries requeues packets whose retry backoff has elapsed and fires
// per-packet retry timers whose deadline passed without an acknowledgment.
func (n *NI) tickRetries(now sim.Cycle) {
	if ps, ok := n.retryAt[now]; ok {
		delete(n.retryAt, now)
		for _, p := range ps {
			st := n.awaiting[p.ID]
			if st == nil || !st.retryPending {
				continue
			}
			if n.unreachable != nil && n.unreachable(p.Dst) {
				delete(n.awaiting, p.ID)
				n.hooks.Unreachable(p, now)
				continue
			}
			st.retryPending = false
			st.attempt++
			p.Attempts = st.attempt
			n.probe.Retry(now, int(n.node), uint64(p.ID), st.attempt)
			n.hooks.Retried(p, now)
			n.queue = append(n.queue, p)
		}
	}
	fired := 0
	for fired < len(n.timeouts) && n.timeouts[fired].deadline <= now {
		fired++
	}
	if fired > 0 {
		due := n.timeouts[:fired]
		for _, to := range due {
			n.loss(to.pid, to.attempt, now)
		}
		n.timeouts = append(n.timeouts[:0], n.timeouts[fired:]...)
	}
}

// pendingRecovery reports armed retry timers and scheduled re-offers; while
// any exist the network is idle by design (a backoff or timeout is running
// down), so the no-progress watchdog holds off.
func (n *NI) pendingRecovery() int {
	total := len(n.timeouts)
	for _, ps := range n.retryAt {
		total += len(ps)
	}
	return total
}

// failUnreachable fails fast every queued packet whose destination is no
// longer reachable over the surviving topology; the network calls it after
// each topology change. Packets mid-injection are left alone — their loss
// surfaces through the normal timers and resolves through loss().
func (n *NI) failUnreachable(now sim.Cycle) {
	if n.unreachable == nil {
		return
	}
	kept := n.queue[:0]
	for _, p := range n.queue {
		if n.unreachable(p.Dst) {
			if n.awaiting != nil {
				delete(n.awaiting, p.ID)
			}
			n.hooks.Unreachable(p, now)
			continue
		}
		kept = append(kept, p)
	}
	for i := len(kept); i < len(n.queue); i++ {
		n.queue[i] = nil
	}
	n.queue = kept
}

func (n *NI) activeCount() int {
	c := 0
	for v := range n.active {
		if n.active[v].active {
			c++
		}
	}
	return c
}

func (n *NI) queueLen() int { return len(n.queue) }

// Tick advances the injection interface one cycle.
func (n *NI) Tick(now sim.Cycle) {
	// Self-profiling work counter: credits absorbed, packets started,
	// control flits injected, data flits launched.
	work := 0
	n.injTable.advance(now)
	work += n.resvCreditIn.RecvEach(now, func(c noc.ReservationCredit) {
		n.injTable.creditFrom(c.FreeFrom, c.VC)
	})
	work += n.ctrlCreditIn.RecvEach(now, func(c noc.VCCredit) {
		n.ctrlCredits[c.VC]++
		if n.ctrlCredits[c.VC] > n.cfg.CtrlBufPerVC {
			panic("core: NI control credit overflow")
		}
	})

	if n.cfg.RetryLimit > 0 {
		n.tickRetries(now)
	}

	// Start queued packets on free control VCs. The default FIFO source
	// starts packets strictly one at a time; SourceInterleave lifts that
	// to one packet per control VC.
	for v := range n.active {
		if n.active[v].active || n.ctrlOwned[v] || len(n.queue) == 0 {
			continue
		}
		if !n.cfg.SourceInterleave && n.activeCount() > 0 {
			break
		}
		p := n.queue[0]
		copy(n.queue, n.queue[1:])
		n.queue[len(n.queue)-1] = nil
		n.queue = n.queue[:len(n.queue)-1]
		n.ctrlOwned[v] = true
		p.InjectedAt = now
		if n.wf != nil && p.Sampled {
			n.wf.InjectStart(uint64(p.ID), uint8(p.Attempts), p.CreatedAt, now)
		}
		n.active[v] = niPacket{active: true, pkt: p, data: noc.DataFlits(p), ctrl: noc.ControlFlits(p, n.cfg.LeadsPerCtrl)}
		work++
	}

	// Schedule and inject control flits, up to the control channel's
	// per-cycle bandwidth, visiting VCs in random order for fairness.
	injected := 0
	start := 0
	if len(n.active) > 1 {
		start = n.rng.Intn(len(n.active))
	}
	for i := 0; i < len(n.active) && injected < n.cfg.CtrlFlitsPerCycle; i++ {
		v := (start + i) % len(n.active)
		for injected < n.cfg.CtrlFlitsPerCycle && n.tryInject(now, v) {
			injected++
		}
	}

	// Launch data flits whose scheduled injection cycle has come.
	if f, ok := n.sendAt[now]; ok {
		delete(n.sendAt, now)
		n.probe.Inject(now, int(n.node), uint64(f.Packet.ID), f.Seq)
		if n.wf != nil && f.Seq == 0 && f.Packet.Sampled {
			n.wf.HeadWire(uint64(f.Packet.ID), uint8(f.Attempt), now)
		}
		n.dataOut.Send(now, f)
		*n.progress++
		n.hooks.Injected(now)
		work++
	}
	n.prof.ComponentTick(profile.CompNI, int(n.node), work+injected > 0)
}

// tryInject attempts to schedule and inject the next control flit of the
// packet on VC v. A control flit goes out only in a cycle where (a) the
// control channel can carry it, (b) a control buffer is free downstream, and
// (c) every data flit it leads was successfully scheduled on the injection
// channel — so LeadCycles is honored relative to the control flit's actual
// injection cycle.
func (n *NI) tryInject(now sim.Cycle, v int) bool {
	ap := &n.active[v]
	if !ap.active || ap.nextCtrl >= len(ap.ctrl) {
		return false
	}
	if n.ctrlCredits[v] <= 0 || !n.ctrlOut.CanSend(now) {
		n.probe.CreditStall(int(n.node), int(topology.Local))
		return false
	}
	cf := ap.ctrl[ap.nextCtrl]

	// Schedule all data flits this control flit leads; all-or-nothing so
	// the control flit can carry final injection times. Data injection is
	// deferred at least LeadCycles behind this control flit (leading
	// control); findDeparture never returns earlier than now+1.
	minTA := now + n.cfg.LeadCycles
	type tentative struct {
		lead int
		td   sim.Cycle
	}
	committed := make([]tentative, 0, len(cf.Leads))
	for i := range cf.Leads {
		td, ok := n.injTable.findDeparture(now, minTA, n.cfg.LocalLatency, v)
		if !ok {
			for _, t := range committed {
				n.injTable.uncommit(t.td, n.cfg.LocalLatency, v)
			}
			n.probe.ReserveMiss(int(n.node), int(topology.Local))
			return false
		}
		n.injTable.commit(td, n.cfg.LocalLatency, v)
		committed = append(committed, tentative{lead: i, td: td})
	}
	for _, t := range committed {
		n.probe.ReserveHit(now, int(n.node), int(topology.Local), uint64(cf.Packet.ID), t.td)
	}
	leads := make([]noc.LeadEntry, len(cf.Leads))
	for _, t := range committed {
		seq := cf.Leads[t.lead].Seq
		leads[t.lead] = noc.LeadEntry{Seq: seq, Arrival: t.td + n.cfg.LocalLatency}
		if _, dup := n.sendAt[t.td]; dup {
			panic("core: NI scheduled two data flits on one injection cycle")
		}
		n.sendAt[t.td] = ap.data[seq]
	}
	cf.Leads = leads
	cf.VC = v
	n.ctrlOut.Send(now, cf)
	*n.progress++
	n.ctrlCredits[v]--
	ap.nextCtrl++
	if ap.nextCtrl == len(ap.ctrl) {
		// The packet is fully committed to the network; arm its retry
		// timer. Deadlines are armed in injection order with a constant
		// offset, keeping the timeout queue FIFO.
		if n.cfg.RetryTimeout > 0 {
			if st := n.awaiting[ap.pkt.ID]; st != nil && !st.retryPending && st.attempt == ap.pkt.Attempts {
				n.timeouts = append(n.timeouts, niTimeout{pid: ap.pkt.ID, attempt: st.attempt, deadline: now + n.cfg.RetryTimeout})
			}
		}
		n.ctrlOwned[v] = false
		ap.active = false
		ap.pkt, ap.data, ap.ctrl = nil, nil, nil
	}
	return true
}

// pendingWork reports queued packets plus unsent control and data flits.
func (n *NI) pendingWork() int {
	w := len(n.queue) + len(n.sendAt)
	for v := range n.active {
		if n.active[v].active {
			w += len(n.active[v].ctrl) - n.active[v].nextCtrl
		}
	}
	return w
}

// Sink is a node's network interface on the ejection side. Data flits are
// identified purely by when they arrive; the destination control flits set up
// the reassembly schedule via Expect, and the sink cross-checks each arriving
// flit against it — a corrupted schedule is a simulator bug and panics.
//
// Reassembly is attempt-aware: under end-to-end retry the flits of a retried
// packet carry a higher attempt number than stragglers of the lost attempt,
// so the sink can discard the stragglers and assemble the retry cleanly.
type Sink struct {
	node   topology.NodeID
	dataIn *sim.Pipe[noc.DataFlit]
	expect map[sim.Cycle]expectEntry
	state  map[noc.PacketID]*sinkPkt
	hooks  *noc.Hooks
	probe  *metrics.Probe
	// prof is the self-profiling registry cached off the probe at attach
	// time; nil when profiling is disabled.
	prof *profile.Registry
	// wf is the latency-stage ledger cached off the probe at attach time;
	// nil when latency provenance is disabled.
	wf *waterfall.Ledger
	// e2eCheck arms the end-to-end payload checksum: a reassembled packet
	// any of whose flits arrived corrupted is rejected as lost (retried
	// under RetryLimit) instead of delivered.
	e2eCheck bool
	// notifyLoss, when set, reports each detected loss of a transmission
	// attempt to the notification plane (which relays it to the source NI
	// after the configured control-plane latency).
	notifyLoss func(p *noc.Packet, attempt int, now sim.Cycle)
}

type expectEntry struct {
	pkt     *noc.Packet
	seq     int
	attempt int
}

// sinkPkt is one packet's reassembly state: the newest transmission attempt
// seen, its progress, and whether the packet's fate is already resolved.
type sinkPkt struct {
	attempt int
	got     int
	lost    bool // current attempt had a detected hole
	done    bool // delivered; every later signal for the packet is stale
	// corrupt records that a flit of the current attempt arrived with
	// payload damage no hop CRC caught; the end-to-end check turns it
	// into a rejection at completion time.
	corrupt bool
}

func newSink(node topology.NodeID, hooks *noc.Hooks) *Sink {
	return &Sink{
		node:   node,
		expect: make(map[sim.Cycle]expectEntry),
		state:  make(map[noc.PacketID]*sinkPkt),
		hooks:  hooks,
	}
}

// Expect records that the flit identified by (pkt, seq, attempt) will arrive
// on the ejection link at cycle at.
func (s *Sink) Expect(at sim.Cycle, pkt *noc.Packet, seq, attempt int) {
	if _, dup := s.expect[at]; dup {
		panic("core: two flits scheduled to eject in the same cycle")
	}
	s.expect[at] = expectEntry{pkt: pkt, seq: seq, attempt: attempt}
}

func (s *Sink) stateFor(id noc.PacketID, attempt int) *sinkPkt {
	st := s.state[id]
	if st == nil {
		st = &sinkPkt{attempt: attempt}
		s.state[id] = st
	}
	return st
}

// Tick receives ejected flits, matches them to the reassembly schedule, and
// reports completed packets. A reassembly slot that stays empty at its
// scheduled cycle means a flit was destroyed by a fault upstream; the packet's
// current attempt is reported lost, once, and stragglers of lost or superseded
// attempts are ignored.
func (s *Sink) Tick(now sim.Cycle) {
	work := s.dataIn.RecvEach(now, func(f noc.DataFlit) {
		e, ok := s.expect[now]
		if !ok {
			panic(fmt.Sprintf("core: %s ejected at cycle %d with no reassembly schedule entry", f, now))
		}
		delete(s.expect, now)
		if e.pkt.ID != f.Packet.ID || e.seq != f.Seq || e.attempt != f.Attempt {
			panic(fmt.Sprintf("core: reassembly mismatch at cycle %d: scheduled pkt=%d seq=%d attempt=%d, got %s attempt=%d", now, e.pkt.ID, e.seq, e.attempt, f, f.Attempt))
		}
		s.hooks.Ejected(now)
		s.probe.Eject(now, int(s.node), uint64(f.Packet.ID), f.Seq)
		if s.wf != nil && f.Seq == 0 && f.Packet.Sampled {
			s.wf.Eject(uint64(f.Packet.ID), uint8(f.Attempt), now)
		}
		st := s.stateFor(f.Packet.ID, f.Attempt)
		if st.done || f.Attempt < st.attempt {
			return // straggler of a resolved packet or superseded attempt
		}
		if f.Attempt > st.attempt {
			st.attempt, st.got, st.lost, st.corrupt = f.Attempt, 0, false, false
		}
		if st.lost {
			return
		}
		if f.Corrupted {
			// Damage that escaped every hop CRC has reached the
			// destination — the silent-corruption event. With the
			// end-to-end check off this packet is delivered as-is.
			st.corrupt = true
			s.hooks.CorruptEscape(f.Packet, now)
		}
		st.got++
		if st.got == f.Packet.Len {
			if st.corrupt && s.e2eCheck {
				// The payload checksum rejects the reassembled packet;
				// the established loss path takes over.
				st.lost = true
				s.probe.Nack(int(s.node))
				s.hooks.Lost(f.Packet, now)
				if s.notifyLoss != nil {
					s.notifyLoss(f.Packet, f.Attempt, now)
				}
				return
			}
			st.done = true
			s.hooks.Delivered(f.Packet, now)
		}
	})
	if e, ok := s.expect[now]; ok {
		delete(s.expect, now)
		work++
		st := s.stateFor(e.pkt.ID, e.attempt)
		// A stale entry — the packet's fate no longer depends on this
		// attempt — is dropped without a loss report.
		if !(st.done || e.attempt < st.attempt || (e.attempt == st.attempt && st.lost)) {
			if e.attempt > st.attempt {
				st.attempt, st.got, st.corrupt = e.attempt, 0, false
			}
			st.lost = true
			s.probe.Nack(int(s.node))
			s.hooks.Lost(e.pkt, now)
			if s.notifyLoss != nil {
				s.notifyLoss(e.pkt, e.attempt, now)
			}
		}
	}
	s.prof.ComponentTick(profile.CompSink, int(s.node), work > 0)
}

// pendingWork reports flits expected but not yet ejected.
func (s *Sink) pendingWork() int { return len(s.expect) }
