package core

import (
	"fmt"

	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

// NI is a node's network interface on the injection side. Packet injection
// is scheduled exactly like any other hop (Section 3): the NI keeps an output
// reservation table for the injection channel — busy bits for the channel,
// free-buffer counts for the router's injection pool — and a control flit is
// injected only after it has scheduled the injection times of all its data
// flits. Under leading control (LeadCycles > 0) a data flit's injection is
// additionally deferred at least LeadCycles behind its control flit.
type NI struct {
	node  topology.NodeID
	cfg   Config
	rng   *sim.RNG
	hooks *noc.Hooks

	queue []*noc.Packet

	injTable *outResTable

	active []niPacket // one slot per control VC of the injection link

	ctrlCredits []int
	ctrlOwned   []bool

	ctrlOut      *sim.Pipe[noc.ControlFlit]
	ctrlCreditIn *sim.Pipe[noc.VCCredit]
	dataOut      *sim.Pipe[noc.DataFlit]
	resvCreditIn *sim.Pipe[noc.ReservationCredit]

	// sendAt holds scheduled data-flit injections keyed by departure
	// cycle; the injection channel's busy bits make the key unique.
	sendAt map[sim.Cycle]noc.DataFlit
}

// niPacket is one packet whose control flits are being scheduled and
// injected on one control VC.
type niPacket struct {
	active   bool
	pkt      *noc.Packet
	data     []noc.DataFlit
	ctrl     []noc.ControlFlit
	nextCtrl int
}

func newNI(node topology.NodeID, cfg Config, rng *sim.RNG, hooks *noc.Hooks) *NI {
	n := &NI{
		node:        node,
		cfg:         cfg,
		rng:         rng,
		hooks:       hooks,
		injTable:    newOutResTable(cfg.Horizon, cfg.DataBuffers, cfg.CtrlVCs, false),
		active:      make([]niPacket, cfg.CtrlVCs),
		ctrlCredits: make([]int, cfg.CtrlVCs),
		ctrlOwned:   make([]bool, cfg.CtrlVCs),
		sendAt:      make(map[sim.Cycle]noc.DataFlit),
	}
	for v := range n.ctrlCredits {
		n.ctrlCredits[v] = cfg.CtrlBufPerVC
	}
	return n
}

func (n *NI) offer(p *noc.Packet) { n.queue = append(n.queue, p) }

func (n *NI) activeCount() int {
	c := 0
	for v := range n.active {
		if n.active[v].active {
			c++
		}
	}
	return c
}

func (n *NI) queueLen() int { return len(n.queue) }

// Tick advances the injection interface one cycle.
func (n *NI) Tick(now sim.Cycle) {
	n.injTable.advance(now)
	n.resvCreditIn.RecvEach(now, func(c noc.ReservationCredit) {
		n.injTable.creditFrom(c.FreeFrom, c.VC)
	})
	n.ctrlCreditIn.RecvEach(now, func(c noc.VCCredit) {
		n.ctrlCredits[c.VC]++
		if n.ctrlCredits[c.VC] > n.cfg.CtrlBufPerVC {
			panic("core: NI control credit overflow")
		}
	})

	// Start queued packets on free control VCs. The default FIFO source
	// starts packets strictly one at a time; SourceInterleave lifts that
	// to one packet per control VC.
	for v := range n.active {
		if n.active[v].active || n.ctrlOwned[v] || len(n.queue) == 0 {
			continue
		}
		if !n.cfg.SourceInterleave && n.activeCount() > 0 {
			break
		}
		p := n.queue[0]
		copy(n.queue, n.queue[1:])
		n.queue[len(n.queue)-1] = nil
		n.queue = n.queue[:len(n.queue)-1]
		n.ctrlOwned[v] = true
		p.InjectedAt = now
		n.active[v] = niPacket{active: true, pkt: p, data: noc.DataFlits(p), ctrl: noc.ControlFlits(p, n.cfg.LeadsPerCtrl)}
	}

	// Schedule and inject control flits, up to the control channel's
	// per-cycle bandwidth, visiting VCs in random order for fairness.
	injected := 0
	start := 0
	if len(n.active) > 1 {
		start = n.rng.Intn(len(n.active))
	}
	for i := 0; i < len(n.active) && injected < n.cfg.CtrlFlitsPerCycle; i++ {
		v := (start + i) % len(n.active)
		for injected < n.cfg.CtrlFlitsPerCycle && n.tryInject(now, v) {
			injected++
		}
	}

	// Launch data flits whose scheduled injection cycle has come.
	if f, ok := n.sendAt[now]; ok {
		delete(n.sendAt, now)
		n.dataOut.Send(now, f)
		n.hooks.Injected(now)
	}
}

// tryInject attempts to schedule and inject the next control flit of the
// packet on VC v. A control flit goes out only in a cycle where (a) the
// control channel can carry it, (b) a control buffer is free downstream, and
// (c) every data flit it leads was successfully scheduled on the injection
// channel — so LeadCycles is honored relative to the control flit's actual
// injection cycle.
func (n *NI) tryInject(now sim.Cycle, v int) bool {
	ap := &n.active[v]
	if !ap.active || ap.nextCtrl >= len(ap.ctrl) {
		return false
	}
	if n.ctrlCredits[v] <= 0 || !n.ctrlOut.CanSend(now) {
		return false
	}
	cf := ap.ctrl[ap.nextCtrl]

	// Schedule all data flits this control flit leads; all-or-nothing so
	// the control flit can carry final injection times. Data injection is
	// deferred at least LeadCycles behind this control flit (leading
	// control); findDeparture never returns earlier than now+1.
	minTA := now + n.cfg.LeadCycles
	type tentative struct {
		lead int
		td   sim.Cycle
	}
	committed := make([]tentative, 0, len(cf.Leads))
	for i := range cf.Leads {
		td, ok := n.injTable.findDeparture(now, minTA, n.cfg.LocalLatency, v)
		if !ok {
			for _, t := range committed {
				n.injTable.uncommit(t.td, n.cfg.LocalLatency, v)
			}
			return false
		}
		n.injTable.commit(td, n.cfg.LocalLatency, v)
		committed = append(committed, tentative{lead: i, td: td})
	}
	leads := make([]noc.LeadEntry, len(cf.Leads))
	for _, t := range committed {
		seq := cf.Leads[t.lead].Seq
		leads[t.lead] = noc.LeadEntry{Seq: seq, Arrival: t.td + n.cfg.LocalLatency}
		if _, dup := n.sendAt[t.td]; dup {
			panic("core: NI scheduled two data flits on one injection cycle")
		}
		n.sendAt[t.td] = ap.data[seq]
	}
	cf.Leads = leads
	cf.VC = v
	n.ctrlOut.Send(now, cf)
	n.ctrlCredits[v]--
	ap.nextCtrl++
	if ap.nextCtrl == len(ap.ctrl) {
		n.ctrlOwned[v] = false
		ap.active = false
		ap.pkt, ap.data, ap.ctrl = nil, nil, nil
	}
	return true
}

// pendingWork reports queued packets plus unsent control and data flits.
func (n *NI) pendingWork() int {
	w := len(n.queue) + len(n.sendAt)
	for v := range n.active {
		if n.active[v].active {
			w += len(n.active[v].ctrl) - n.active[v].nextCtrl
		}
	}
	return w
}

// Sink is a node's network interface on the ejection side. Data flits are
// identified purely by when they arrive; the destination control flits set up
// the reassembly schedule via Expect, and the sink cross-checks each arriving
// flit against it — a corrupted schedule is a simulator bug and panics.
type Sink struct {
	dataIn *sim.Pipe[noc.DataFlit]
	expect map[sim.Cycle]expectEntry
	got    map[noc.PacketID]int
	lost   map[noc.PacketID]bool
	hooks  *noc.Hooks
}

type expectEntry struct {
	pkt *noc.Packet
	seq int
}

func newSink(hooks *noc.Hooks) *Sink {
	return &Sink{
		expect: make(map[sim.Cycle]expectEntry),
		got:    make(map[noc.PacketID]int),
		lost:   make(map[noc.PacketID]bool),
		hooks:  hooks,
	}
}

// Expect records that the flit identified by (pkt, seq) will arrive on the
// ejection link at cycle at.
func (s *Sink) Expect(at sim.Cycle, pkt *noc.Packet, seq int) {
	if _, dup := s.expect[at]; dup {
		panic("core: two flits scheduled to eject in the same cycle")
	}
	s.expect[at] = expectEntry{pkt: pkt, seq: seq}
}

// Tick receives ejected flits, matches them to the reassembly schedule, and
// reports completed packets. A reassembly slot that stays empty at its
// scheduled cycle means a flit was destroyed by a fault upstream; its packet
// is reported lost, once, and stragglers from lost packets are ignored.
func (s *Sink) Tick(now sim.Cycle) {
	s.dataIn.RecvEach(now, func(f noc.DataFlit) {
		e, ok := s.expect[now]
		if !ok {
			panic(fmt.Sprintf("core: %s ejected at cycle %d with no reassembly schedule entry", f, now))
		}
		delete(s.expect, now)
		if e.pkt.ID != f.Packet.ID || e.seq != f.Seq {
			panic(fmt.Sprintf("core: reassembly mismatch at cycle %d: scheduled pkt=%d seq=%d, got %s", now, e.pkt.ID, e.seq, f))
		}
		s.hooks.Ejected(now)
		if s.lost[f.Packet.ID] {
			return
		}
		s.got[f.Packet.ID]++
		if s.got[f.Packet.ID] == f.Packet.Len {
			delete(s.got, f.Packet.ID)
			s.hooks.Delivered(f.Packet, now)
		}
	})
	if e, ok := s.expect[now]; ok {
		delete(s.expect, now)
		if !s.lost[e.pkt.ID] {
			s.lost[e.pkt.ID] = true
			delete(s.got, e.pkt.ID)
			s.hooks.Lost(e.pkt, now)
		}
	}
}

// pendingWork reports flits expected but not yet ejected.
func (s *Sink) pendingWork() int { return len(s.expect) }
