package core

import (
	"reflect"
	"testing"

	"frfc/internal/topology"
)

// TestChaosPlanDeterministic: the plan is a pure function of
// (intensity, horizon, seed) — the property the harness job hash rests on.
func TestChaosPlanDeterministic(t *testing.T) {
	mesh := topology.NewMesh(4)
	o := ChaosOptions{Intensity: 0.6, Horizon: 2000, Seed: 42}
	a := NewChaosPlan(mesh, o)
	b := NewChaosPlan(mesh, o)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical options produced different plans:\n%+v\n%+v", a, b)
	}
	c := NewChaosPlan(mesh, ChaosOptions{Intensity: 0.6, Horizon: 2000, Seed: 43})
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical event schedules")
	}
}

// TestChaosPlanAlwaysValidates: whatever the dice land on, the generated
// schedule must pass ValidateFaults by construction — kills land only on
// nodes no link event touches, flaps pair down with a later up, and spike
// rates stay in range.
func TestChaosPlanAlwaysValidates(t *testing.T) {
	for _, radix := range []int{3, 4, 6} {
		mesh := topology.NewMesh(radix)
		for _, intensity := range []float64{0.05, 0.25, 0.5, 0.75, 0.9, 1.0} {
			for seed := uint64(0); seed < 20; seed++ {
				plan := NewChaosPlan(mesh, ChaosOptions{Intensity: intensity, Horizon: 1500, Seed: seed})
				if err := ValidateFaults(mesh, plan.Events, true); err != nil {
					t.Fatalf("radix=%d intensity=%g seed=%d: generated invalid plan: %v\nevents: %v",
						radix, intensity, seed, err, plan.Events)
				}
				if len(plan.Events) == 0 {
					t.Fatalf("radix=%d intensity=%g seed=%d: empty plan", radix, intensity, seed)
				}
				if plan.DataFaultRate <= 0 || plan.BER <= 0 {
					t.Fatalf("intensity=%g: background rates not armed: %+v", intensity, plan)
				}
			}
		}
	}
}

// TestChaosPlanKillsOnlyAtHighIntensity: router kills are the harshest fault
// and must stay out of moderate campaigns — that is what makes "delivered
// stays total below intensity 0.75" a meaningful guarantee.
func TestChaosPlanKillsOnlyAtHighIntensity(t *testing.T) {
	mesh := topology.NewMesh(4)
	kills := func(intensity float64) int {
		n := 0
		for _, e := range NewChaosPlan(mesh, ChaosOptions{Intensity: intensity, Seed: 9}).Events {
			if e.Kind == RouterDown {
				n++
			}
		}
		return n
	}
	if n := kills(0.5); n != 0 {
		t.Fatalf("moderate intensity scheduled %d router kills", n)
	}
	if n := kills(1.0); n == 0 {
		t.Fatal("full intensity scheduled no router kills")
	}
}

// TestChaosPlanApply: applying a plan overwrites the fault scenario and
// rates, and arms the retry budget chaos depends on without clobbering an
// explicit one.
func TestChaosPlanApply(t *testing.T) {
	mesh := topology.NewMesh(4)
	plan := NewChaosPlan(mesh, ChaosOptions{Intensity: 0.5, Seed: 1})
	cfg := fastControl()
	got := plan.Apply(cfg)
	if !reflect.DeepEqual(got.Faults, plan.Events) {
		t.Fatal("Apply did not install the event schedule")
	}
	if got.DataFaultRate != plan.DataFaultRate || got.CtrlFaultRate != plan.CtrlFaultRate || got.BER != plan.BER {
		t.Fatalf("Apply did not install the rates: %+v", got)
	}
	if got.RetryLimit != 8 {
		t.Fatalf("Apply left RetryLimit at %d, want the 8 default", got.RetryLimit)
	}
	cfg.RetryLimit = 3
	if got := plan.Apply(cfg); got.RetryLimit != 3 {
		t.Fatalf("Apply clobbered an explicit RetryLimit: %d", got.RetryLimit)
	}
}

// TestChaosOptionsRejected: out-of-range knobs panic immediately rather than
// generating a quietly degenerate campaign.
func TestChaosOptionsRejected(t *testing.T) {
	mesh := topology.NewMesh(4)
	for _, o := range []ChaosOptions{
		{Intensity: 0},
		{Intensity: -0.5},
		{Intensity: 1.5},
		{Intensity: nan()},
		{Intensity: 0.5, Horizon: -1},
		{Intensity: 0.5, Horizon: 8},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("options %+v did not panic", o)
				}
			}()
			NewChaosPlan(mesh, o)
		}()
	}
}
