package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

func nan() float64 { return math.NaN() }

// drainOrFail ticks the network until every offered packet's fate is resolved,
// failing with a full state dump — naming the routers and interfaces holding
// stalled work — if that doesn't happen within limit cycles.
func drainOrFail(t *testing.T, net *Network, now, limit sim.Cycle) sim.Cycle {
	t.Helper()
	for net.InFlightPackets() > 0 && now < limit {
		net.Tick(now)
		now++
	}
	if got := net.InFlightPackets(); got != 0 {
		t.Fatalf("network failed to drain: %d unresolved packets at cycle %d\n%s", got, now, net.snapshot(now))
	}
	return now
}

// offerRandom injects n random-destination packets of the given length,
// spaced a few cycles apart, and returns the cycle reached.
func offerRandom(net *Network, mesh topology.Mesh, rng *sim.RNG, n, flits int, now sim.Cycle) sim.Cycle {
	for i := 0; i < n; i++ {
		src := topology.NodeID(rng.Intn(mesh.N()))
		dst := topology.NodeID(rng.Intn(mesh.N() - 1))
		if dst >= src {
			dst++
		}
		net.Offer(&noc.Packet{ID: noc.PacketID(i + 1), Src: src, Dst: dst, Len: flits, CreatedAt: now})
		for j := 0; j < 3; j++ {
			net.Tick(now)
			now++
		}
	}
	return now
}

// TestControlFaultRecovery corrupts 5% of all inter-router control flits.
// Link-level retransmission recovers every one — control information is
// delayed, never lost — so every packet must still be delivered without any
// loss report, exercising the schedule-list path as delayed control flits are
// overtaken by their data.
func TestControlFaultRecovery(t *testing.T) {
	mesh := topology.NewMesh(4)
	cfg := fastControl()
	cfg.CtrlFaultRate = 0.05
	rec, hooks := newRecorder()
	net := New(mesh, cfg, 77, hooks)

	rng := sim.NewRNG(13)
	const packets = 300
	now := offerRandom(net, mesh, rng, packets, 5, 0)
	drainOrFail(t, net, now, 500000)

	if len(rec.delivered) != packets {
		t.Fatalf("delivered %d of %d packets under control faults", len(rec.delivered), packets)
	}
	if dropped, lost := net.FaultStats(); dropped != 0 || lost != 0 {
		t.Fatalf("control faults must not lose anything: dropped=%d lost=%d", dropped, lost)
	}
	rs := net.Recovery()
	if rs.CtrlCorrupted == 0 {
		t.Fatal("5% control fault rate corrupted nothing over ~1500 control flits")
	}
}

// TestRetryDeliversEverythingUnderDataLoss is the headline reliability claim:
// at 5% data-flit loss with end-to-end retry, every single packet is
// eventually delivered. The watchdog is armed and any wedge fails the test
// with its snapshot.
func TestRetryDeliversEverythingUnderDataLoss(t *testing.T) {
	mesh := topology.NewMesh(4)
	cfg := fastControl()
	cfg.DataFaultRate = 0.05
	cfg.RetryLimit = 10
	cfg.WatchdogCycles = 20000
	delivered := map[noc.PacketID]int{}
	hooks := &noc.Hooks{
		PacketDelivered: func(p *noc.Packet, now sim.Cycle) { delivered[p.ID]++ },
		PacketAbandoned: func(p *noc.Packet, now sim.Cycle) {
			t.Errorf("packet %d abandoned after %d attempts", p.ID, p.Attempts)
		},
		Wedged: func(now sim.Cycle, snapshot string) {
			t.Fatalf("watchdog tripped during retry stress:\n%s", snapshot)
		},
	}
	net := New(mesh, cfg, 41, hooks)

	rng := sim.NewRNG(8)
	const packets = 400
	now := offerRandom(net, mesh, rng, packets, 5, 0)
	drainOrFail(t, net, now, 2000000)

	if len(delivered) != packets {
		t.Fatalf("delivered %d distinct packets, want all %d", len(delivered), packets)
	}
	for pid, times := range delivered {
		if times != 1 {
			t.Errorf("packet %d delivered %d times", pid, times)
		}
	}
	rs := net.Recovery()
	if rs.Retried == 0 || rs.DeliveredAfterRetry == 0 {
		t.Fatalf("5%% loss over %d packets exercised no retries: %+v", packets, rs)
	}
	if rs.Delivered != packets || rs.Abandoned != 0 {
		t.Fatalf("conservation violated: %+v", rs)
	}
}

// TestRetryWithCombinedFaults runs data loss and control corruption together
// with retry and a per-packet timeout armed, the full recovery stack at once.
func TestRetryWithCombinedFaults(t *testing.T) {
	mesh := topology.NewMesh(4)
	cfg := fastControl()
	cfg.DataFaultRate = 0.02
	cfg.CtrlFaultRate = 0.02
	cfg.RetryLimit = 10
	cfg.RetryTimeout = 5000
	cfg.WatchdogCycles = 20000
	rec, hooks := newRecorder()
	hooks.Wedged = func(now sim.Cycle, snapshot string) {
		t.Fatalf("watchdog tripped:\n%s", snapshot)
	}
	net := New(mesh, cfg, 19, hooks)

	rng := sim.NewRNG(29)
	const packets = 200
	now := offerRandom(net, mesh, rng, packets, 5, 0)
	drainOrFail(t, net, now, 2000000)

	if len(rec.delivered) != packets {
		t.Fatalf("delivered %d of %d under combined faults", len(rec.delivered), packets)
	}
	rs := net.Recovery()
	if rs.CtrlCorrupted == 0 || rs.DroppedFlits == 0 {
		t.Fatalf("both fault planes should have fired: %+v", rs)
	}
	if rs.Abandoned != 0 {
		t.Fatalf("no packet should exhaust 10 retries at 2%% loss: %+v", rs)
	}
}

// TestRetryBudgetAbandons drives loss high enough that a one-retry budget
// cannot save every packet: the source must abandon the stragglers, and the
// packet conservation law offered == delivered + abandoned must hold exactly.
func TestRetryBudgetAbandons(t *testing.T) {
	mesh := topology.NewMesh(4)
	cfg := fastControl()
	cfg.DataFaultRate = 0.20
	cfg.RetryLimit = 1
	cfg.WatchdogCycles = 20000
	resolved := map[noc.PacketID]string{}
	hooks := &noc.Hooks{
		PacketDelivered: func(p *noc.Packet, now sim.Cycle) { resolved[p.ID] = "delivered" },
		PacketAbandoned: func(p *noc.Packet, now sim.Cycle) { resolved[p.ID] = "abandoned" },
		Wedged: func(now sim.Cycle, snapshot string) {
			t.Fatalf("watchdog tripped:\n%s", snapshot)
		},
	}
	net := New(mesh, cfg, 3, hooks)

	rng := sim.NewRNG(17)
	const packets = 300
	now := offerRandom(net, mesh, rng, packets, 5, 0)
	drainOrFail(t, net, now, 2000000)

	rs := net.Recovery()
	if rs.Offered != rs.Delivered+rs.Abandoned {
		t.Fatalf("conservation violated: offered=%d delivered=%d abandoned=%d", rs.Offered, rs.Delivered, rs.Abandoned)
	}
	if rs.Abandoned == 0 {
		t.Fatal("20% loss with one retry abandoned nothing — test not exercising the budget")
	}
	if len(resolved) != packets {
		t.Fatalf("%d packets resolved via hooks, want %d", len(resolved), packets)
	}
}

// TestSpuriousTimeoutIsCancelled arms a retry timeout shorter than the
// fault-free flight time: the timer fires and schedules a retry, but the
// delivery acknowledgment lands before the backoff elapses, so the stale
// re-offer must be discarded and the packet delivered exactly once.
func TestSpuriousTimeoutIsCancelled(t *testing.T) {
	mesh := topology.NewMesh(4)
	cfg := fastControl()
	cfg.RetryLimit = 3
	cfg.RetryTimeout = 25 // corner-to-corner takes ~35 cycles
	deliveries := 0
	hooks := &noc.Hooks{
		PacketDelivered: func(p *noc.Packet, now sim.Cycle) { deliveries++ },
	}
	net := New(mesh, cfg, 21, hooks)
	net.Offer(&noc.Packet{ID: 1, Src: 0, Dst: 15, Len: 5, CreatedAt: 0})
	now := drainOrFail(t, net, 0, 5000)
	// Run past the backoff horizon to prove the cancelled retry never
	// re-enters the network.
	for end := now + 1000; now < end; now++ {
		net.Tick(now)
	}
	if deliveries != 1 {
		t.Fatalf("packet delivered %d times, want exactly 1", deliveries)
	}
	if rs := net.Recovery(); rs.Retried != 0 {
		t.Fatalf("acknowledged packet was still retried: %+v", rs)
	}
}

// TestNIRetryStateMachine unit-tests the source interface's retry bookkeeping
// against duplicate and stale signals: NACK-then-timeout for one attempt must
// retry once, signals for superseded attempts are ignored, and the budget
// exhausts into abandonment.
func TestNIRetryStateMachine(t *testing.T) {
	cfg := fastControl()
	cfg.RetryLimit = 2
	cfg = cfg.withDefaults() // fills RetryBackoffBase=64, NackLatency=16
	var retried, abandoned int
	hooks := &noc.Hooks{
		PacketRetried:   func(p *noc.Packet, now sim.Cycle) { retried++ },
		PacketAbandoned: func(p *noc.Packet, now sim.Cycle) { abandoned++ },
	}
	ni := newNI(0, cfg, sim.NewRNG(1), hooks)
	p := &noc.Packet{ID: 7, Len: 1}
	ni.offer(p)
	ni.queue = nil // the packet is "in the network" for this unit test

	ni.loss(7, 0, 100)
	ni.loss(7, 0, 101) // duplicate (timeout after NACK): must not double-schedule
	if got := ni.pendingRecovery(); got != 1 {
		t.Fatalf("pendingRecovery = %d after duplicate loss, want 1", got)
	}
	ni.tickRetries(100 + 64)
	if retried != 1 || len(ni.queue) != 1 || p.Attempts != 1 {
		t.Fatalf("first retry: retried=%d queue=%d attempts=%d", retried, len(ni.queue), p.Attempts)
	}
	ni.queue = nil

	ni.loss(7, 0, 200) // stale: attempt 0 was superseded
	if got := ni.pendingRecovery(); got != 0 {
		t.Fatalf("stale loss scheduled a retry (pending=%d)", got)
	}
	ni.loss(7, 1, 200)
	ni.tickRetries(200 + 128) // backoff doubles per attempt
	if retried != 2 || p.Attempts != 2 {
		t.Fatalf("second retry: retried=%d attempts=%d", retried, p.Attempts)
	}
	ni.queue = nil

	ni.loss(7, 2, 400) // budget (RetryLimit=2) exhausted
	if abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1", abandoned)
	}
	if _, ok := ni.awaiting[7]; ok {
		t.Fatal("abandoned packet still awaiting acknowledgment")
	}
	ni.loss(7, 2, 500) // post-abandon signal must be a no-op
	if abandoned != 1 || retried != 2 {
		t.Fatalf("post-abandon signal changed state: abandoned=%d retried=%d", abandoned, retried)
	}

	q := &noc.Packet{ID: 8, Len: 1}
	ni.offer(q)
	ni.queue = nil
	ni.ack(8)
	ni.loss(8, 0, 600) // loss after ack: stale, no retry
	if got := ni.pendingRecovery(); got != 0 {
		t.Fatalf("acknowledged packet scheduled a retry (pending=%d)", got)
	}
}

// TestFaultDeterminism: two networks built from the same seed and fed the
// same workload must agree on every fault, retry and delivery event —
// fault injection rides the seeded RNG tree, not global randomness.
func TestFaultDeterminism(t *testing.T) {
	run := func() (map[noc.PacketID]sim.Cycle, map[noc.PacketID]int, RecoveryStats) {
		mesh := topology.NewMesh(4)
		cfg := fastControl()
		cfg.DataFaultRate = 0.03
		cfg.CtrlFaultRate = 0.02
		cfg.RetryLimit = 5
		delivered := map[noc.PacketID]sim.Cycle{}
		lost := map[noc.PacketID]int{}
		hooks := &noc.Hooks{
			PacketDelivered: func(p *noc.Packet, now sim.Cycle) { delivered[p.ID] = now },
			PacketLost:      func(p *noc.Packet, now sim.Cycle) { lost[p.ID]++ },
		}
		net := New(mesh, cfg, 123, hooks)
		rng := sim.NewRNG(55)
		now := offerRandom(net, mesh, rng, 200, 5, 0)
		for net.InFlightPackets() > 0 && now < 2000000 {
			net.Tick(now)
			now++
		}
		return delivered, lost, net.Recovery()
	}
	d1, l1, r1 := run()
	d2, l2, r2 := run()
	if fmt.Sprintf("%v", d1) != fmt.Sprintf("%v", d2) {
		t.Fatal("delivery sets/cycles differ between identical seeded runs")
	}
	if fmt.Sprintf("%v", l1) != fmt.Sprintf("%v", l2) {
		t.Fatal("loss events differ between identical seeded runs")
	}
	if r1 != r2 {
		t.Fatalf("recovery stats differ:\n  %+v\n  %+v", r1, r2)
	}
	if r1.Delivered == 0 || r1.DroppedFlits == 0 || r1.CtrlCorrupted == 0 {
		t.Fatalf("determinism run exercised nothing: %+v", r1)
	}
}

// TestWatchdogNamesWedgedRouter manufactures a genuine wedge — every
// downstream control VC of router 0 is marked permanently owned, so its
// control flits can never be forwarded — and checks that the watchdog trips
// once, after the configured quiet period, with a snapshot naming the router.
func TestWatchdogNamesWedgedRouter(t *testing.T) {
	mesh := topology.NewMesh(4)
	cfg := fastControl()
	cfg.WatchdogCycles = 500
	var fires int
	var snap string
	var firedAt sim.Cycle
	hooks := &noc.Hooks{Wedged: func(now sim.Cycle, snapshot string) {
		fires++
		snap = snapshot
		firedAt = now
	}}
	net := New(mesh, cfg, 9, hooks)
	for p := range net.routers[0].ctrlOut {
		co := &net.routers[0].ctrlOut[p]
		if !co.exists {
			continue
		}
		for v := range co.owned {
			co.owned[v] = true
		}
	}
	net.Offer(&noc.Packet{ID: 1, Src: 0, Dst: 15, Len: 5, CreatedAt: 0})
	now := sim.Cycle(0)
	for ; now < 5000; now++ {
		net.Tick(now)
	}
	if fires != 1 {
		t.Fatalf("watchdog fired %d times over a persistent wedge, want exactly 1", fires)
	}
	if firedAt < cfg.WatchdogCycles {
		t.Fatalf("watchdog fired at cycle %d, before its %d-cycle quiet period", firedAt, cfg.WatchdogCycles)
	}
	for _, want := range []string{"wedged at cycle", "router 0", "stalled routers: [0]"} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %q:\n%s", want, snap)
		}
	}
}

// TestWatchdogStaysQuietOnHealthyRun: an armed watchdog must never fire
// across a normal run, its drain, and a long idle tail afterwards.
func TestWatchdogStaysQuietOnHealthyRun(t *testing.T) {
	mesh := topology.NewMesh(4)
	cfg := fastControl()
	cfg.WatchdogCycles = 200
	hooks := &noc.Hooks{Wedged: func(now sim.Cycle, snapshot string) {
		t.Fatalf("watchdog fired on a healthy run at cycle %d:\n%s", now, snapshot)
	}}
	net := New(mesh, cfg, 63, hooks)
	rng := sim.NewRNG(31)
	now := offerRandom(net, mesh, rng, 100, 5, 0)
	now = drainOrFail(t, net, now, 500000)
	for end := now + 2000; now < end; now++ {
		net.Tick(now)
	}
}
