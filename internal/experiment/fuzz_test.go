package experiment

import (
	"fmt"
	"math"
	"testing"

	"frfc/internal/core"
	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
	"frfc/internal/vcrouter"
)

// TestFuzzAllNetworksConserveFlits drives every flow-control implementation
// with randomized shapes (mesh radix, packet length, load, and
// method-specific knobs) and checks the conservation invariants that no
// configuration may violate: every offered packet is eventually delivered
// exactly once, every injected flit is ejected, and the network drains to
// empty once offers stop. Internal reservation/credit violations panic on
// their own.
func TestFuzzAllNetworksConserveFlits(t *testing.T) {
	rng := sim.NewRNG(20260704)
	flows := []Flow{FlitReservation, VirtualChannel, Wormhole, StoreForward, CutThrough, CircuitSwitch}
	const trials = 80
	for trial := 0; trial < trials; trial++ {
		flow := flows[trial%len(flows)]
		radix := 3 + rng.Intn(3)
		pktLen := 1 + rng.Intn(8)
		seed := rng.Uint64()
		var spec Spec
		switch flow {
		case FlitReservation:
			wiring := FastControl
			lead := sim.Cycle(0)
			if rng.Bool(0.5) {
				wiring = LeadingControl
				lead = sim.Cycle(1 + rng.Intn(4))
			}
			buffers := 5 + rng.Intn(9)
			ctrlVCs := 2 + rng.Intn(3)
			if buffers < ctrlVCs {
				buffers = ctrlVCs
			}
			spec = FRSpec("fuzz-fr", wiring, buffers, ctrlVCs, lead, pktLen)
			spec.FR.Horizon = sim.Cycle(12 + rng.Intn(50))
			if d := 1 + rng.Intn(3); spec.FR.DataBuffers >= d+spec.FR.CtrlVCs-1 {
				spec.FR.LeadsPerCtrl = d
			}
			spec.FR.AllOrNothing = rng.Bool(0.3)
			spec.FR.SourceInterleave = rng.Bool(0.3)
		case VirtualChannel:
			spec = vcSpec("fuzz-vc", FastControl, 1+rng.Intn(4), pktLen)
			spec.VC.BufPerVC = 1 + rng.Intn(6)
			spec.VC.SharedPool = rng.Bool(0.3)
			spec.VC.SourceInterleave = rng.Bool(0.3)
		case Wormhole:
			spec = WormholeSpec("fuzz-wh", FastControl, 1+rng.Intn(10), pktLen)
		case StoreForward, CutThrough:
			spec = PacketSwitchSpec("fuzz-ps", flow, FastControl, 1+rng.Intn(3), pktLen)
		case CircuitSwitch:
			spec = CircuitSpec("fuzz-cs", FastControl, pktLen)
			spec.CS.ProbeBuffers = 1 + rng.Intn(6)
		}
		spec.MeshRadix = radix
		detail := ""
		switch flow {
		case FlitReservation:
			detail = fmt.Sprintf("-b%d-v%d-d%d-aon%v", spec.FR.DataBuffers, spec.FR.CtrlVCs, spec.FR.LeadsPerCtrl, spec.FR.AllOrNothing)
		case VirtualChannel:
			detail = fmt.Sprintf("-v%d-b%d-pool%v", spec.VC.NumVCs, spec.VC.BufPerVC, spec.VC.SharedPool)
		}
		name := fmt.Sprintf("trial%02d-%s-k%d-L%d%s", trial, flow, radix, pktLen, detail)
		t.Run(name, func(t *testing.T) {
			mesh := topology.NewMesh(radix)
			var delivered, injectedFlits, ejectedFlits int64
			deliveredSet := map[noc.PacketID]bool{}
			hooks := &noc.Hooks{
				PacketDelivered: func(p *noc.Packet, now sim.Cycle) {
					if deliveredSet[p.ID] {
						t.Errorf("packet %d delivered twice", p.ID)
					}
					deliveredSet[p.ID] = true
					delivered++
				},
				FlitInjected: func(now sim.Cycle) { injectedFlits++ },
				FlitEjected:  func(now sim.Cycle) { ejectedFlits++ },
			}
			net, _ := NewNetwork(spec, hooks)
			load := 0.1 + rng.Float64()*0.5
			rate := load * mesh.CapacityPerNode() / float64(pktLen)
			offered := int64(0)
			now := sim.Cycle(0)
			src := sim.NewRNG(seed)
			for ; now < 1500; now++ {
				for id := 0; id < mesh.N(); id++ {
					if src.Bool(rate) {
						dst := topology.NodeID(src.Intn(mesh.N() - 1))
						if dst >= topology.NodeID(id) {
							dst++
						}
						offered++
						net.Offer(&noc.Packet{ID: noc.PacketID(offered), Src: topology.NodeID(id), Dst: dst, Len: pktLen, CreatedAt: now})
					}
				}
				net.Tick(now)
			}
			for net.InFlightPackets() > 0 && now < 3000000 {
				net.Tick(now)
				now++
			}
			if got := net.InFlightPackets(); got != 0 {
				if vcNet, ok := net.(*vcrouter.Network); ok {
					t.Logf("state dump:\n%s", vcNet.DumpState())
				}
				t.Fatalf("failed to drain: %d packets in flight after %d cycles", got, now)
			}
			if delivered != offered {
				t.Fatalf("delivered %d of %d offered packets", delivered, offered)
			}
			if injectedFlits != ejectedFlits || ejectedFlits != offered*int64(pktLen) {
				t.Fatalf("flit conservation broken: offered %d flits, injected %d, ejected %d",
					offered*int64(pktLen), injectedFlits, ejectedFlits)
			}
		})
	}
}

// TestFuzzRecoveryConservesPackets drives the flit-reservation recovery layer
// with randomized fault rates, retry budgets, backoffs and (sometimes
// pathologically short) retry timeouts, and checks the packet conservation
// law that must hold however the dice land: every offered packet resolves as
// exactly one of delivered, lost (retry disabled) or abandoned. With retries
// enabled and loss at or below 5%, a generous budget must deliver everything.
// The no-progress watchdog is armed and must never fire.
func TestFuzzRecoveryConservesPackets(t *testing.T) {
	rng := sim.NewRNG(20260806)
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		radix := 3 + rng.Intn(2)
		pktLen := 1 + rng.Intn(6)
		dataRate := rng.Float64() * 0.06
		ctrlRate := 0.0
		if rng.Bool(0.5) {
			ctrlRate = rng.Float64() * 0.04
		}
		retry := trial%2 == 1
		cfg := frConfig(FastControl, 6, 2, 0)
		cfg.DataFaultRate = dataRate
		cfg.CtrlFaultRate = ctrlRate
		cfg.WatchdogCycles = 50000
		cfg.SourceInterleave = rng.Bool(0.3)
		if retry {
			cfg.RetryLimit = 6 + rng.Intn(6)
			cfg.RetryBackoffBase = sim.Cycle(1 + rng.Intn(128))
			if rng.Bool(0.5) {
				// Sometimes pathologically short: spurious timeouts
				// must not break conservation.
				cfg.RetryTimeout = sim.Cycle(10 + rng.Intn(4000))
			}
		}
		seed := rng.Uint64()
		name := fmt.Sprintf("trial%02d-k%d-L%d-data%.3f-ctrl%.3f-retry%v", trial, radix, pktLen, dataRate, ctrlRate, retry)
		t.Run(name, func(t *testing.T) {
			mesh := topology.NewMesh(radix)
			var delivered, lost, abandoned int64
			resolvedSet := map[noc.PacketID]int{}
			hooks := &noc.Hooks{
				PacketDelivered: func(p *noc.Packet, now sim.Cycle) { delivered++; resolvedSet[p.ID]++ },
				PacketAbandoned: func(p *noc.Packet, now sim.Cycle) { abandoned++; resolvedSet[p.ID]++ },
				PacketLost: func(p *noc.Packet, now sim.Cycle) {
					lost++
					if !retry {
						resolvedSet[p.ID]++
					}
				},
				Wedged: func(now sim.Cycle, snapshot string) {
					t.Errorf("watchdog fired:\n%s", snapshot)
				},
			}
			net := core.New(mesh, cfg, seed, hooks)
			src := sim.NewRNG(seed ^ 0xABCDEF)
			offered := int64(0)
			now := sim.Cycle(0)
			for ; now < 1200; now++ {
				for id := 0; id < mesh.N(); id++ {
					if src.Bool(0.02) {
						dst := topology.NodeID(src.Intn(mesh.N() - 1))
						if dst >= topology.NodeID(id) {
							dst++
						}
						offered++
						net.Offer(&noc.Packet{ID: noc.PacketID(offered), Src: topology.NodeID(id), Dst: dst, Len: pktLen, CreatedAt: now})
					}
				}
				net.Tick(now)
			}
			for net.InFlightPackets() > 0 && now < 5000000 {
				net.Tick(now)
				now++
			}
			if got := net.InFlightPackets(); got != 0 {
				t.Fatalf("failed to resolve: %d packets in flight after %d cycles\n%s", got, now, net.DumpState())
			}
			rec := net.Recovery()
			if retry {
				if delivered+abandoned != offered {
					t.Fatalf("conservation broken: offered=%d delivered=%d abandoned=%d", offered, delivered, abandoned)
				}
				// Zero abandonment is only a sound demand when the retry
				// budget makes it near-certain. The fault rate applies per
				// flit per link traversal, so the worst-case (corner-to-
				// corner) per-attempt loss probability compounds over
				// maxHops*pktLen traversals; a packet abandons only after
				// RetryLimit+1 consecutive lost attempts.
				if cfg.RetryTimeout == 0 && abandoned != 0 {
					maxHops := 2 * (radix - 1)
					perAttempt := 1 - math.Pow(1-dataRate, float64(maxHops*pktLen))
					expected := float64(offered) * math.Pow(perAttempt, float64(cfg.RetryLimit+1))
					if expected < 0.01 {
						t.Fatalf("abandoned %d packets at %.1f%% loss with budget %d (expected %.4f)",
							abandoned, dataRate*100, cfg.RetryLimit, expected)
					}
				}
			} else {
				if delivered+lost != offered {
					t.Fatalf("conservation broken: offered=%d delivered=%d lost=%d", offered, delivered, lost)
				}
				if rec.Retried != 0 || abandoned != 0 {
					t.Fatalf("retry machinery active while disabled: %+v", rec)
				}
			}
			for pid, times := range resolvedSet {
				if times != 1 {
					t.Errorf("packet %d resolved %d times", pid, times)
				}
			}
			if rec.Offered != offered || rec.Delivered != delivered || rec.Abandoned != abandoned {
				t.Fatalf("Recovery() disagrees with hooks: %+v vs offered=%d delivered=%d abandoned=%d", rec, offered, delivered, abandoned)
			}
		})
	}
}
