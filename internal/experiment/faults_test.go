package experiment

import (
	"testing"
)

// TestFaultSweepRetryDeliversEverything is the recovery layer's headline
// claim: with the end-to-end retry arm enabled, every offered packet is
// delivered at percent-level loss rates, while the detection-only arm loses
// packets at any nonzero rate. A generous budget keeps the retry arm perfect
// through 5% loss; at 10-20% the budget may run out, but conservation must
// still hold.
func TestFaultSweepRetryDeliversEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep is a full-resolution experiment; skipped in -short")
	}
	o := FaultSweepOptions{Packets: 250, RetryLimit: 12}
	points := FaultSweep(o)
	if len(points) != 12 {
		t.Fatalf("expected 12 points (6 rates x 2 policies), got %d", len(points))
	}
	for _, p := range points {
		t.Logf("%s", p)
		if p.Wedged {
			t.Errorf("watchdog fired at loss=%.2f retry=%d", p.DataFaultRate, p.RetryLimit)
		}
		if p.Offered != 250 {
			t.Errorf("offered %d packets at loss=%.2f retry=%d, want 250", p.Offered, p.DataFaultRate, p.RetryLimit)
		}
		switch {
		case p.RetryLimit == 0:
			// Detection-only: delivered + detected losses account for
			// everything, and nothing is retried or abandoned.
			if p.Delivered+p.LostDetected != p.Offered {
				t.Errorf("detect-only conservation broken at loss=%.2f: %+v", p.DataFaultRate, p)
			}
			if p.Retried != 0 || p.Abandoned != 0 {
				t.Errorf("retry machinery active in detect-only arm at loss=%.2f: %+v", p.DataFaultRate, p)
			}
			if p.DataFaultRate >= 0.05 && p.LostDetected == 0 {
				t.Errorf("no losses detected at %.0f%% loss without retry", p.DataFaultRate*100)
			}
		default:
			// Retry arm: every packet resolves as delivered or abandoned.
			if p.Delivered+p.Abandoned != p.Offered {
				t.Errorf("retry conservation broken at loss=%.2f: %+v", p.DataFaultRate, p)
			}
			if p.DataFaultRate <= 0.05 {
				if p.Delivered != p.Offered {
					t.Errorf("retry arm lost packets at %.0f%% loss: %+v", p.DataFaultRate*100, p)
				}
				if p.DataFaultRate >= 0.02 && p.Retried == 0 {
					t.Errorf("no retries at %.0f%% loss; fault injection inactive?", p.DataFaultRate*100)
				}
			}
			if p.DataFaultRate == 0 && (p.Retried != 0 || p.LostDetected != 0 || p.DroppedFlits != 0) {
				t.Errorf("activity on the fault-free row: %+v", p)
			}
		}
	}
}

// TestFaultSweepIsDeterministic: the sweep is seeded, so two runs with the
// same options must agree row for row.
func TestFaultSweepIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep is a full-resolution experiment; skipped in -short")
	}
	o := FaultSweepOptions{Packets: 120, Rates: []float64{0.03}, RetryLimit: 8}
	a := FaultSweep(o)
	b := FaultSweep(o)
	if len(a) != len(b) {
		t.Fatalf("point counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("point %d differs between runs:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}
