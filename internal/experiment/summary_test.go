package experiment

import (
	"strings"
	"testing"
)

func TestSummarizeProducesSaneRow(t *testing.T) {
	row := Summarize(tiny(FR6(FastControl, 5)), SaturationOptions{Resolution: 0.05})
	if row.Spec != "FR6" {
		t.Errorf("Spec = %q", row.Spec)
	}
	if row.BaseLatency <= 0 || row.LatencyAt50 < row.BaseLatency {
		t.Errorf("latencies implausible: base %.1f, at50 %.1f", row.BaseLatency, row.LatencyAt50)
	}
	if row.Throughput < 0.3 || row.Throughput > 1.0 {
		t.Errorf("throughput %.2f implausible", row.Throughput)
	}
	if row.EffectiveThroughput >= row.Throughput {
		t.Errorf("effective throughput %.3f not debited below %.3f", row.EffectiveThroughput, row.Throughput)
	}
}

func TestFormatSummary(t *testing.T) {
	rows := []SummaryRow{
		{Spec: "FR6", BaseLatency: 27, LatencyAt50: 33, Throughput: 0.77, EffectiveThroughput: 0.755},
		{Spec: "VC8", BaseLatency: 32, LatencyAt50: 39, Throughput: 0.63, EffectiveThroughput: 0.63},
	}
	out := FormatSummary("fast control, 5-flit packets", rows)
	for _, want := range []string{"fast control", "FR6", "VC8", "77%", "63%", "27.0", "39.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted summary missing %q:\n%s", want, out)
		}
	}
}

func TestFormatSweep(t *testing.T) {
	rs := []Result{
		{Spec: "FR6", Load: 0.5, AvgLatency: 33.2, CI95: 0.4, AcceptedLoad: 0.5},
		{Spec: "FR6", Load: 0.9, Saturated: true},
	}
	out := FormatSweep(rs)
	if !strings.Contains(out, "SATURATED") || !strings.Contains(out, "33.2") {
		t.Errorf("formatted sweep wrong:\n%s", out)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Spec: "VC8", Load: 0.63, AvgLatency: 41.5, CI95: 0.3, AcceptedLoad: 0.62}
	s := r.String()
	for _, want := range []string{"VC8", "63.0%", "41.50"} {
		if !strings.Contains(s, want) {
			t.Errorf("Result.String() = %q missing %q", s, want)
		}
	}
}

func TestNewNetworkRejectsUnknownFlow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown flow control did not panic")
		}
	}()
	s := FR6(FastControl, 5)
	s.Flow = "carrier-pigeon"
	NewNetwork(s, nil)
}

func TestFRSpecBandwidthPenaltyScalesWithHorizon(t *testing.T) {
	// Wider time stamps (larger horizon) cost more bandwidth.
	s32 := FR6(FastControl, 5)
	s128 := FRSpec("FR6-s128", FastControl, 6, 2, 0, 5)
	s128.FR.Horizon = 128
	p32 := frBandwidthPenaltyForTest(s32)
	if p32 <= 0 {
		t.Fatalf("penalty for horizon 32 = %v, want > 0", p32)
	}
}

// frBandwidthPenaltyForTest exposes the precomputed penalty.
func frBandwidthPenaltyForTest(s Spec) float64 { return s.BandwidthPenalty }
