package experiment

import (
	"fmt"
	"os"
	"testing"
)

// The calibration tests print full-scale (8x8 mesh) measurements next to the
// paper's reported values. They are expensive and run only when
// FRFC_CALIBRATE=1; EXPERIMENTS.md records their output.

func calibrating(t *testing.T) {
	t.Helper()
	if os.Getenv("FRFC_CALIBRATE") == "" {
		t.Skip("set FRFC_CALIBRATE=1 to run full-scale calibration")
	}
}

// TestSaturationCalibration reproduces the saturation-throughput columns of
// Table 3 for 5-flit packets under fast control.
func TestSaturationCalibration(t *testing.T) {
	calibrating(t)
	o := SaturationOptions{Resolution: 0.02}
	for _, tc := range []struct {
		spec  Spec
		paper float64
	}{
		{VC8(FastControl, 5), 0.63},
		{FR6(FastControl, 5), 0.77},
		{VC16(FastControl, 5), 0.80},
		{FR13(FastControl, 5), 0.85},
		{VC32(FastControl, 5), 0.85},
	} {
		s := tc.spec.Scaled(4000, 3000)
		sat := SaturationThroughput(s, o)
		fmt.Printf("%-6s 5-flit  sat=%4.0f%%  (paper %4.0f%%)\n", s.Name, sat*100, tc.paper*100)
	}
}

// TestSaturation21FlitCalibration reproduces Figure 6 / Table 3's 21-flit
// saturation points, including the FR13-beats-VC32 crossover.
func TestSaturation21FlitCalibration(t *testing.T) {
	calibrating(t)
	o := SaturationOptions{Resolution: 0.02}
	for _, tc := range []struct {
		spec  Spec
		paper float64
	}{
		{VC8(FastControl, 21), 0.55},
		{FR6(FastControl, 21), 0.60},
		{VC16(FastControl, 21), 0.65},
		{VC32(FastControl, 21), 0.65},
		{FR13(FastControl, 21), 0.75},
	} {
		s := tc.spec.Scaled(2500, 3000)
		sat := SaturationThroughput(s, o)
		fmt.Printf("%-6s 21-flit sat=%4.0f%%  (paper %4.0f%%)\n", s.Name, sat*100, tc.paper*100)
	}
}

// TestCalibrationReport prints base latency and latency at 50% capacity for
// every configuration under both wirings (Table 3's latency rows).
func TestCalibrationReport(t *testing.T) {
	calibrating(t)
	for _, w := range []Wiring{FastControl, LeadingControl} {
		for _, mk := range []func(Wiring, int) Spec{FR6, FR13, VC8, VC16, VC32} {
			s := mk(w, 5).Scaled(1500, 1500)
			base := BaseLatency(s)
			r50 := Run(s, 0.50)
			fmt.Printf("%-6s %-16s base=%6.1f  lat50=%7.1f sat?%-5v accepted=%4.1f%%\n",
				s.Name, w, base, r50.AvgLatency, r50.Saturated, r50.AcceptedLoad*100)
		}
	}
}

// TestCalibration21FlitLatency reproduces the 21-flit latency rows of
// Table 3 (paper: base 46 FR / 55 VC; at 50% capacity 81/75 for FR6/FR13 vs
// 113/95/97 for VC8/VC16/VC32).
func TestCalibration21FlitLatency(t *testing.T) {
	calibrating(t)
	for _, mk := range []func(Wiring, int) Spec{FR6, FR13, VC8, VC16, VC32} {
		s := mk(FastControl, 21).Scaled(1500, 2000)
		base := BaseLatency(s)
		r50 := Run(s, 0.50)
		fmt.Printf("%-6s 21-flit base=%6.1f  lat50=%7.1f\n", s.Name, base, r50.AvgLatency)
	}
}

// TestCalibrationOccupancy reproduces Section 4.2's buffer-occupancy claim:
// near saturation with 21-flit packets FR6's tracked pool is full a large
// fraction of cycles (paper ~40%) while saturating VC configurations stay
// under ~5%.
func TestCalibrationOccupancy(t *testing.T) {
	calibrating(t)
	fr := Run(FR6(FastControl, 21).Scaled(2000, 3000), 0.60)
	vc := Run(VC8(FastControl, 21).Scaled(2000, 3000), 0.50)
	fmt.Printf("FR6 pool full %4.1f%% of cycles at 60%% load, its saturation edge (paper ~40%%)\n", fr.PoolFullFraction*100)
	fmt.Printf("VC8 pool full %4.1f%% of cycles at 50%% load (paper <5%%)\n", vc.PoolFullFraction*100)
}
