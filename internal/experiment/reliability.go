package experiment

import (
	"context"
	"fmt"

	"frfc/internal/core"
	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/stats"
	"frfc/internal/topology"
)

// ReliabilityScenario is one named hard-fault schedule a ReliabilitySweep
// runs: scheduled link and router outages applied to a flit-reservation
// network mid-run.
type ReliabilityScenario struct {
	Name   string
	Events []core.FaultEvent
}

// ReliabilityPoint is one row of a ReliabilitySweep: one scenario run to full
// resolution, with graceful-degradation measurements split around the outage.
type ReliabilityPoint struct {
	Scenario   string
	RetryLimit int

	Offered     int64
	Delivered   int64
	Abandoned   int64
	Unreachable int64

	DroppedFlits        int64
	Retried             int64
	DeliveredAfterRetry int64

	// AvgLatency is the mean creation-to-delivery latency over every
	// delivered packet. The phase means split the run at the first fault
	// and at the settle point after the last scheduled event: PreFault is
	// healthy operation, Outage covers the degraded window, PostRecovery is
	// after the topology healed (0 when a phase delivered nothing).
	AvgLatency          float64
	PreFaultLatency     float64
	OutageLatency       float64
	PostRecoveryLatency float64
	// LatencyRecovery is PostRecoveryLatency over PreFaultLatency: 1.0 is
	// full recovery, above 1 residual degradation, 0 when either phase is
	// empty.
	LatencyRecovery float64

	// Cycles is how long the run took to resolve every offered packet;
	// Wedged is set if the no-progress watchdog fired — it never should.
	Cycles sim.Cycle
	Wedged bool
}

// DeliveredFraction is the end-to-end delivery probability of the row —
// delivered over offered, counting fast-failed unreachable packets against
// the scenario.
func (p ReliabilityPoint) DeliveredFraction() float64 {
	if p.Offered == 0 {
		return 0
	}
	return float64(p.Delivered) / float64(p.Offered)
}

// String renders the point as one sweep row.
func (p ReliabilityPoint) String() string {
	rec := "-"
	if p.LatencyRecovery > 0 {
		rec = fmt.Sprintf("%.2f", p.LatencyRecovery)
	}
	return fmt.Sprintf("%-12s delivered=%5.1f%%  unreachable=%3d  dropped=%4d  retried=%4d  latency=%8.2f  recovery=%s",
		p.Scenario, p.DeliveredFraction()*100, p.Unreachable, p.DroppedFlits, p.Retried, p.AvgLatency, rec)
}

// ReliabilitySweepOptions parameterizes a ReliabilitySweep.
type ReliabilitySweepOptions struct {
	// Radix is the mesh radix (default 4).
	Radix int
	// Packets per row (default 600) of PacketLen flits (default 5), offered
	// one every three cycles so traffic spans the scenario's events.
	Packets   int
	PacketLen int
	// RetryLimit is the end-to-end retry budget (default 8; router outages
	// require retry, so 0 is rejected by scenario validation).
	RetryLimit int
	// Routing names the routing algorithm ("table" by default — scenarios
	// need fault-aware routing, and the healthy baseline runs the same
	// algorithm so rows are comparable).
	Routing string
	// SettleCycles pads the post-recovery phase boundary past the last
	// scheduled event, so recovery transients are not measured as steady
	// state (default 500).
	SettleCycles sim.Cycle
	// Scenarios are the rows (default: healthy baseline, single link down,
	// link down with repair, router down). Nil selects the defaults.
	Scenarios []ReliabilityScenario
	// Check enables the runtime invariant checker for every row.
	Check bool
	// Seed drives the network and workload RNGs (default fixed).
	Seed uint64
}

// WithDefaults returns the options with every zero field filled in, so
// orchestration layers can enumerate the sweep's cells exactly as
// ReliabilitySweep would.
func (o ReliabilitySweepOptions) WithDefaults() ReliabilitySweepOptions { return o.withDefaults() }

func (o ReliabilitySweepOptions) withDefaults() ReliabilitySweepOptions {
	if o.Radix == 0 {
		o.Radix = 4
	}
	if o.Packets == 0 {
		o.Packets = 600
	}
	if o.PacketLen == 0 {
		o.PacketLen = 5
	}
	if o.RetryLimit == 0 {
		o.RetryLimit = 8
	}
	if o.Routing == "" {
		o.Routing = "table"
	}
	if o.SettleCycles == 0 {
		o.SettleCycles = 500
	}
	if o.Scenarios == nil {
		o.Scenarios = DefaultReliabilityScenarios(o.Radix)
	}
	if o.Seed == 0 {
		o.Seed = 0x0F417
	}
	return o
}

// DefaultReliabilityScenarios builds the standard rows for a k×k mesh: a
// healthy baseline, a permanent central link outage, the same outage repaired
// mid-run, and a central router killed outright. Event cycles sit inside the
// default offering window so every scenario bites live traffic.
func DefaultReliabilityScenarios(radix int) []ReliabilityScenario {
	mesh := topology.NewMesh(radix)
	c := topology.NodeID((radix/2)*radix + radix/2 - 1)
	e, ok := mesh.Neighbor(c, topology.East)
	if !ok {
		panic("experiment: mesh too small for the default reliability scenarios")
	}
	return []ReliabilityScenario{
		{Name: "healthy"},
		{Name: "link-down", Events: []core.FaultEvent{
			{At: 400, Kind: core.LinkDown, A: c, B: e},
		}},
		{Name: "link-flap", Events: []core.FaultEvent{
			{At: 400, Kind: core.LinkDown, A: c, B: e},
			{At: 900, Kind: core.LinkUp, A: c, B: e},
		}},
		{Name: "router-down", Events: []core.FaultEvent{
			{At: 400, Kind: core.RouterDown, A: c},
		}},
	}
}

// ReliabilitySweep measures graceful degradation under hard faults: each
// scenario runs the FR6 network with fault-aware table routing and end-to-end
// retry until every offered packet's fate is resolved. It is the experiment
// behind the hard-fault tolerance claim: still-connected traffic keeps being
// delivered (retries absorb the destroyed in-flight flits), disconnected
// traffic fails fast as unreachable instead of burning the retry budget, and
// after a repair the latency returns to its pre-fault level.
func ReliabilitySweep(o ReliabilitySweepOptions) []ReliabilityPoint {
	o = o.withDefaults()
	points := make([]ReliabilityPoint, 0, len(o.Scenarios))
	for _, sc := range o.Scenarios {
		pt, _ := ReliabilityCell(context.Background(), o, sc)
		points = append(points, pt)
	}
	return points
}

// ReliabilityCell runs one scenario of a ReliabilitySweep to full resolution.
// Each cell owns its own network and RNG seeded only from the options, so
// cells are independent and may execute concurrently; ctx is polled every
// 1024 cycles, and a cancelled cell returns ctx.Err() with a zero point.
func ReliabilityCell(ctx context.Context, o ReliabilitySweepOptions, sc ReliabilityScenario) (ReliabilityPoint, error) {
	o = o.withDefaults()
	mesh := topology.NewMesh(o.Radix)
	if err := core.ValidateFaults(mesh, sc.Events, o.RetryLimit > 0); err != nil {
		return ReliabilityPoint{}, fmt.Errorf("experiment: scenario %q: %w", sc.Name, err)
	}
	cfg := frConfig(FastControl, 6, 2, 0)
	cfg.RetryLimit = o.RetryLimit
	cfg.WatchdogCycles = 50000
	cfg.Check = o.Check
	cfg.Faults = sc.Events
	if alg := ResolveRouting(o.Routing, mesh); alg != nil {
		cfg.Routing = alg
	}

	// Phase boundaries: healthy operation ends at the first scheduled event;
	// the post-recovery phase begins a settle margin after the last one.
	pt := ReliabilityPoint{Scenario: sc.Name, RetryLimit: o.RetryLimit}
	var phases *stats.PhaseLatency
	if len(sc.Events) > 0 {
		first := sc.Events[0].At
		last := sc.Events[len(sc.Events)-1].At
		phases = stats.NewPhaseLatency(first, last+o.SettleCycles)
	}
	lat := stats.NewLatencyStats()
	hooks := &noc.Hooks{
		PacketDelivered: func(p *noc.Packet, now sim.Cycle) {
			lat.Record(now - p.CreatedAt)
			if phases != nil {
				phases.Record(now, now-p.CreatedAt)
			}
		},
		Wedged: func(now sim.Cycle, snapshot string) { pt.Wedged = true },
	}
	net := core.New(mesh, cfg, o.Seed, hooks)

	rng := sim.NewRNG(o.Seed ^ 0x5DEECE66D)
	now := sim.Cycle(0)
	cancelled := func() bool {
		return now&1023 == 0 && ctx.Err() != nil
	}
	for i := 0; i < o.Packets; i++ {
		if cancelled() {
			return ReliabilityPoint{}, ctx.Err()
		}
		src := topology.NodeID(rng.Intn(mesh.N()))
		dst := topology.NodeID(rng.Intn(mesh.N() - 1))
		if dst >= src {
			dst++
		}
		net.Offer(&noc.Packet{ID: noc.PacketID(i + 1), Src: src, Dst: dst, Len: o.PacketLen, CreatedAt: now})
		for j := 0; j < 3; j++ {
			net.Tick(now)
			now++
		}
	}
	limit := now + 5000000
	for net.InFlightPackets() > 0 && now < limit {
		if cancelled() {
			return ReliabilityPoint{}, ctx.Err()
		}
		net.Tick(now)
		now++
	}

	rec := net.Recovery()
	pt.Offered = rec.Offered
	pt.Delivered = rec.Delivered
	pt.Abandoned = rec.Abandoned
	pt.Unreachable = rec.Unreachable
	pt.DroppedFlits = rec.DroppedFlits
	pt.Retried = rec.Retried
	pt.DeliveredAfterRetry = rec.DeliveredAfterRetry
	pt.AvgLatency = lat.Mean()
	if phases != nil {
		pt.PreFaultLatency = phases.Mean(0)
		pt.OutageLatency = phases.Mean(1)
		pt.PostRecoveryLatency = phases.Mean(2)
		pt.LatencyRecovery = phases.RecoveryRatio()
	}
	pt.Cycles = now
	return pt, nil
}
