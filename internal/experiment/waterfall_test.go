package experiment

import (
	"math"
	"testing"

	"frfc/internal/metrics"
	"frfc/internal/model"
	"frfc/internal/sim"
	"frfc/internal/topology"
	"frfc/internal/waterfall"
)

// allSubstrateSpecs returns one spec per flow-control substrate, Check armed
// so the ledger's strict conservation assertion panics on any packet whose
// stage components fail to sum to its measured latency.
func allSubstrateSpecs(t *testing.T) []Spec {
	t.Helper()
	specs := []Spec{
		FR6(FastControl, 5),
		VC8(FastControl, 5),
		WormholeSpec("WH8", FastControl, 8, 5),
		PacketSwitchSpec("VCT2", CutThrough, FastControl, 2, 5),
		PacketSwitchSpec("SAF2", StoreForward, FastControl, 2, 5),
		CircuitSpec("CS", FastControl, 5),
	}
	for i := range specs {
		specs[i].Check = true
	}
	return specs
}

// runWaterfall runs one spec with a stage ledger attached and returns the
// result plus the ledger (still holding per-stage histograms).
func runWaterfall(t *testing.T, s Spec, load float64) (Result, *waterfall.Ledger) {
	t.Helper()
	wf := waterfall.New()
	r := RunObserved(s, load, &metrics.Probe{WF: wf})
	return r, wf
}

// TestWaterfallConservationAllSubstrates drives every substrate at a
// moderate load under Check and verifies the ledger's books: the per-stage
// totals partition the summed latency exactly, and the ledger's mean agrees
// with the latency statistics to the cycle.
func TestWaterfallConservationAllSubstrates(t *testing.T) {
	for _, s := range allSubstrateSpecs(t) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			load := 0.30
			if s.Flow == CircuitSwitch {
				// Exclusive source-to-destination paths saturate the
				// circuit substrate far below 30% capacity.
				load = 0.04
			}
			r, wf := runWaterfall(t, s.Scaled(400, 800), load)
			if r.Saturated {
				t.Fatalf("run saturated at load %.2f; pick a sustainable load", load)
			}
			if r.WaterfallPackets == 0 {
				t.Fatal("no packets in the ledger")
			}
			if r.WaterfallPackets != int64(r.SampledDelivered) {
				t.Errorf("ledger holds %d packets, %d sampled delivered",
					r.WaterfallPackets, r.SampledDelivered)
			}
			sum := r.WaterfallQueue + r.WaterfallReserve + r.WaterfallArb +
				r.WaterfallStall + r.WaterfallSched + r.WaterfallLink + r.WaterfallDrain
			if sum != r.WaterfallTotal {
				t.Errorf("stage sum %d != total %d", sum, r.WaterfallTotal)
			}
			mean := float64(r.WaterfallTotal) / float64(r.WaterfallPackets)
			if math.Abs(mean-r.AvgLatency) > 1e-9 {
				t.Errorf("ledger mean %.4f != AvgLatency %.4f", mean, r.AvgLatency)
			}
			if wf.InFlight() != 0 {
				t.Errorf("%d packets left open in the ledger", wf.InFlight())
			}
		})
	}
}

// TestWaterfallZeroLoadMatchesModel cross-validates the measured stage
// decomposition at near-zero load against internal/model's closed-form
// breakdowns, term by term. Wire time and serialization must match the
// prediction almost exactly; decision/queueing stages may sit slightly above
// their floors from residual contention at 2% load.
func TestWaterfallZeroLoadMatchesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("full-mesh light-load measurement")
	}
	mesh := topology.NewMesh(8)
	pFree := model.Params{Mesh: mesh, PacketLen: 5, LinkDelay: 4, LocalDelay: 1}
	pVC := pFree
	pVC.CreditBufs = 4 // VC8: 4-flit VC queues throttle the drain
	pWH := pFree
	pWH.CreditBufs = 8 // WH8: 8-deep input queues cover the credit loop
	type band struct{ lo, hi float64 }
	cases := []struct {
		spec Spec
		want model.Breakdown
		load float64
		// tol overrides the default acceptance band per stage.
		tol map[string]band
	}{
		{spec: FR6(FastControl, 5), load: 0.02,
			want: model.MeanBreakdownOverUniform(pFree, model.FlitReservationBreakdown)},
		{spec: VC8(FastControl, 5), load: 0.02,
			want: model.MeanBreakdownOverUniform(pVC, model.VirtualChannelBreakdown),
			// interFlit stretch is an upper bound: the credit loop
			// overlaps the head's progress, so the measured drain sits
			// a bit under the prediction.
			tol: map[string]band{"drain": {-1.5, 0.5}}},
		{spec: WormholeSpec("WH8", FastControl, 8, 5), load: 0.02,
			want: model.MeanBreakdownOverUniform(pWH, model.VirtualChannelBreakdown)},
		{spec: PacketSwitchSpec("VCT2", CutThrough, FastControl, 2, 5), load: 0.02,
			want: model.MeanBreakdownOverUniform(pFree, model.CutThroughBreakdown)},
		{spec: PacketSwitchSpec("SAF2", StoreForward, FastControl, 2, 5), load: 0.02,
			want: model.MeanBreakdownOverUniform(pFree, model.StoreAndForwardBreakdown)},
		// Circuit switching saturates near 8% capacity, so "light" load
		// must be lighter still, and the leftover setup contention shows
		// up in reserve (probes queuing behind held channels).
		{spec: CircuitSpec("CS", FastControl, 5), load: 0.005,
			want: model.MeanBreakdownOverUniform(pFree, model.CircuitSwitchBreakdown),
			tol:  map[string]band{"reserve": {-0.5, 4.0}}},
	}
	for _, c := range cases {
		c := c
		c.spec.Check = true
		t.Run(c.spec.Name, func(t *testing.T) {
			t.Parallel()
			r, _ := runWaterfall(t, c.spec.Scaled(600, 800), c.load)
			if r.WaterfallPackets == 0 {
				t.Fatal("no packets in the ledger")
			}
			n := float64(r.WaterfallPackets)
			got := map[string]float64{
				"queue":   float64(r.WaterfallQueue) / n,
				"reserve": float64(r.WaterfallReserve) / n,
				"arb":     float64(r.WaterfallArb) / n,
				"stall":   float64(r.WaterfallStall) / n,
				"sched":   float64(r.WaterfallSched) / n,
				"link":    float64(r.WaterfallLink) / n,
				"drain":   float64(r.WaterfallDrain) / n,
			}
			want := map[string]float64{
				"queue": c.want.Queue, "reserve": c.want.Reserve,
				"arb": c.want.Arb, "stall": c.want.Stall,
				"sched": c.want.Sched, "link": c.want.Link,
				"drain": c.want.Drain,
			}
			// Defaults: wait stages absorb residual light-load
			// contention above their floors; wire and serialization
			// stages must sit on the prediction, up to the hop-count
			// bias of the finite sampled pair set (±1 cycle at tp=4).
			tol := map[string]band{
				"queue": {-0.5, 2.0}, "reserve": {-0.5, 1.0},
				"arb": {-0.5, 1.0}, "stall": {-0.5, 1.0},
				"sched": {-0.5, 1.0}, "link": {-1.0, 1.0},
				"drain": {-0.5, 0.5},
			}
			for st, b := range c.tol {
				tol[st] = b
			}
			for _, st := range []string{"queue", "reserve", "arb", "stall", "sched", "link", "drain"} {
				diff := got[st] - want[st]
				if diff < tol[st].lo || diff > tol[st].hi {
					t.Errorf("%s: measured %.2f vs predicted %.2f (diff %+.2f outside [%.2f, %.2f])",
						st, got[st], want[st], diff, tol[st].lo, tol[st].hi)
				}
			}
		})
	}
}

// TestWaterfallDoesNotPerturbResults runs one spec per substrate with and
// without the ledger and requires every non-waterfall Result field to be
// bit-identical — enabling latency provenance is pure observation.
func TestWaterfallDoesNotPerturbResults(t *testing.T) {
	for _, s := range allSubstrateSpecs(t) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			sc := s.Scaled(200, 600)
			plain := Run(sc, 0.25)
			instr, _ := runWaterfall(t, sc, 0.25)
			instr.WaterfallPackets, instr.WaterfallTotal = 0, 0
			instr.WaterfallQueue, instr.WaterfallReserve, instr.WaterfallArb = 0, 0, 0
			instr.WaterfallStall, instr.WaterfallSched, instr.WaterfallLink = 0, 0, 0
			instr.WaterfallDrain = 0
			if plain != instr {
				t.Errorf("results diverge with the ledger attached:\nplain: %+v\nwf:    %+v", plain, instr)
			}
		})
	}
}

// TestWaterfallWithRetryConserves exercises the failed-attempt path: under
// fault injection with end-to-end retry, every re-offered attempt folds its
// abandoned progress back into queue time, and conservation must still hold
// exactly (Check panics otherwise).
func TestWaterfallWithRetryConserves(t *testing.T) {
	s := FR6(FastControl, 5)
	s.Check = true
	s.FR.DataFaultRate = 0.002
	s.FR.RetryLimit = 4
	r, wf := runWaterfall(t, s.Scaled(300, 800), 0.20)
	if r.WaterfallPackets == 0 {
		t.Fatal("no packets in the ledger")
	}
	sum := r.WaterfallQueue + r.WaterfallReserve + r.WaterfallArb +
		r.WaterfallStall + r.WaterfallSched + r.WaterfallLink + r.WaterfallDrain
	if sum != r.WaterfallTotal {
		t.Errorf("stage sum %d != total %d under retry", sum, r.WaterfallTotal)
	}
	if r.RetriedPackets == 0 {
		t.Log("note: no retries triggered at this fault rate; path untested this run")
	}
	if wf.InFlight() != 0 {
		t.Errorf("%d packets left open in the ledger", wf.InFlight())
	}
}

// TestWaterfallStageStatsExposed checks the ledger's per-stage histograms:
// counts match the packet count and the per-stage means agree with the
// totals.
func TestWaterfallStageStatsExposed(t *testing.T) {
	s := VC8(FastControl, 5)
	s.Check = true
	r, wf := runWaterfall(t, s.Scaled(300, 600), 0.30)
	totals := wf.StageTotals()
	for st := waterfall.Stage(0); st < waterfall.NumStages; st++ {
		ls := wf.StageStats(st)
		if ls.N() != r.WaterfallPackets {
			t.Fatalf("stage %s histogram holds %d samples, want %d", st, ls.N(), r.WaterfallPackets)
		}
		wantMean := float64(totals[st]) / float64(r.WaterfallPackets)
		if math.Abs(ls.Mean()-wantMean) > 1e-9 {
			t.Errorf("stage %s mean %.4f != totals mean %.4f", st, ls.Mean(), wantMean)
		}
	}
	v := wf.View()
	if v.Packets != r.WaterfallPackets {
		t.Errorf("view packets %d != %d", v.Packets, r.WaterfallPackets)
	}
	var share float64
	for _, sv := range v.Stages {
		share += sv.Share
	}
	if math.Abs(share-1.0) > 1e-9 {
		t.Errorf("stage shares sum to %.6f, want 1", share)
	}
	_ = sim.Cycle(0)
}
