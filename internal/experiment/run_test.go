package experiment

import (
	"testing"

	"frfc/internal/traffic"
)

// tiny scales a spec down for unit tests: small mesh, small sample.
func tiny(s Spec) Spec {
	s.MeshRadix = 4
	s = s.Scaled(400, 500)
	return s
}

func TestRunLowLoadDeliversWholeSample(t *testing.T) {
	for _, s := range []Spec{FR6(FastControl, 5), VC8(FastControl, 5)} {
		s = tiny(s)
		r := Run(s, 0.20)
		if r.Saturated {
			t.Errorf("%s saturated at 20%% load", s.Name)
		}
		if r.SampledDelivered != r.SampleSize || r.SampleSize != 400 {
			t.Errorf("%s delivered %d of %d sampled packets", s.Name, r.SampledDelivered, r.SampleSize)
		}
		if r.AvgLatency <= 0 {
			t.Errorf("%s average latency = %f, want > 0", s.Name, r.AvgLatency)
		}
		if r.AcceptedLoad <= 0.1 || r.AcceptedLoad > 0.35 {
			t.Errorf("%s accepted load = %.3f at offered 0.20, want near 0.20", s.Name, r.AcceptedLoad)
		}
	}
}

func TestRunDetectsSaturationAtAbsurdLoad(t *testing.T) {
	s := tiny(VC8(FastControl, 5))
	s.DrainFactor = 2
	r := Run(s, 1.5)
	if !r.Saturated {
		t.Errorf("VC8 at 150%% offered load reported unsaturated (latency %.1f)", r.AvgLatency)
	}
}

func TestFRBaseLatencyBeatsVCUnderFastControl(t *testing.T) {
	fr := BaseLatency(tiny(FR6(FastControl, 5)))
	vc := BaseLatency(tiny(VC8(FastControl, 5)))
	if fr >= vc {
		t.Errorf("FR base latency %.1f >= VC base latency %.1f; the paper's routing/arbitration savings are missing", fr, vc)
	}
}

func TestLeadingControlBaseLatenciesMatch(t *testing.T) {
	// Figure 9: with 1-cycle wires and a 1-cycle control lead, FR's base
	// latency equals VC's (the lead substitutes for routing latency).
	fr := BaseLatency(tiny(FRLead(1, 5)))
	vc := BaseLatency(tiny(VC8(LeadingControl, 5)))
	diff := fr - vc
	if diff < -3 || diff > 3 {
		t.Errorf("leading-control base latencies differ too much: FR %.1f vs VC %.1f", fr, vc)
	}
}

func TestSweepMonotoneLatency(t *testing.T) {
	s := tiny(FR6(FastControl, 5))
	rs := Sweep(s, []float64{0.1, 0.3, 0.5})
	for i := 1; i < len(rs); i++ {
		if rs[i].AvgLatency+1 < rs[i-1].AvgLatency {
			t.Errorf("latency fell from %.1f to %.1f as load rose from %.0f%% to %.0f%%",
				rs[i-1].AvgLatency, rs[i].AvgLatency, rs[i-1].Load*100, rs[i].Load*100)
		}
	}
}

func TestSaturationThroughputOrdering(t *testing.T) {
	// Coarse resolution to keep the test fast; the ordering FR6 > VC8 is
	// the paper's headline result and must hold even on a 4x4 mesh.
	o := SaturationOptions{Resolution: 0.05}
	fr := SaturationThroughput(tiny(FR6(FastControl, 5)), o)
	vc := SaturationThroughput(tiny(VC8(FastControl, 5)), o)
	if fr <= vc {
		t.Errorf("FR6 saturation %.2f <= VC8 saturation %.2f; expected FR to win", fr, vc)
	}
}

func TestSpecDefaultsAndPenalty(t *testing.T) {
	s := FR6(FastControl, 5)
	if s.MeshRadix != 8 || s.PacketLen != 5 {
		t.Errorf("FR6 defaults wrong: radix %d, pktlen %d", s.MeshRadix, s.PacketLen)
	}
	// 5 bits of arrival stamp on a 256-bit flit: ~1.95%.
	if s.BandwidthPenalty < 0.015 || s.BandwidthPenalty > 0.025 {
		t.Errorf("FR6 bandwidth penalty = %.4f, want ~0.0195", s.BandwidthPenalty)
	}
	v := VC8(FastControl, 5)
	if v.BandwidthPenalty != 0 {
		t.Errorf("VC8 bandwidth penalty = %f, want 0", v.BandwidthPenalty)
	}
	if v.VC.BuffersPerInput() != 8 {
		t.Errorf("VC8 buffers/input = %d, want 8", v.VC.BuffersPerInput())
	}
}

func TestBernoulliProcessPath(t *testing.T) {
	s := tiny(FR6(FastControl, 5))
	s.Bernoulli = true
	r := Run(s, 0.25)
	if r.Saturated || r.SampledDelivered != r.SampleSize {
		t.Fatalf("bernoulli run: saturated=%v delivered=%d/%d", r.Saturated, r.SampledDelivered, r.SampleSize)
	}
}

func TestPaperScaleProtocol(t *testing.T) {
	s := FR6(FastControl, 5).PaperScale()
	if s.WarmupCycles != 10000 || s.SamplePackets != 100000 {
		t.Fatalf("PaperScale = warmup %d, sample %d", s.WarmupCycles, s.SamplePackets)
	}
}

func TestBaselineSpecsRunThroughHarness(t *testing.T) {
	for _, s := range []Spec{
		WormholeSpec("WH8", FastControl, 8, 5),
		PacketSwitchSpec("SAF2", StoreForward, FastControl, 2, 5),
		PacketSwitchSpec("VCT2", CutThrough, LeadingControl, 2, 5),
		CircuitSpec("CS", LeadingControl, 5),
	} {
		s = tiny(s)
		s.SamplePackets = 200
		r := Run(s, 0.10)
		if r.Saturated || r.SampledDelivered != 200 {
			t.Errorf("%s: saturated=%v delivered=%d/200", s.Name, r.Saturated, r.SampledDelivered)
		}
	}
}

func TestPercentilesOrdered(t *testing.T) {
	r := Run(tiny(VC8(FastControl, 5)), 0.40)
	if !(r.MinLatency <= r.P50 && r.P50 <= r.P95 && r.P95 <= r.P99 && r.P99 <= r.MaxLatency) {
		t.Fatalf("quantiles out of order: min %d p50 %d p95 %d p99 %d max %d",
			r.MinLatency, r.P50, r.P95, r.P99, r.MaxLatency)
	}
	if float64(r.P50) > r.AvgLatency*1.5 {
		t.Fatalf("median %d wildly above mean %.1f", r.P50, r.AvgLatency)
	}
}

func TestRunRejectsAbsurdLoad(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("load 3.0 did not panic")
		}
	}()
	Run(tiny(FR6(FastControl, 5)), 3.0)
}

func TestQueueDelayDecomposition(t *testing.T) {
	// At light load the source queue is nearly empty; near saturation it
	// dominates. Both components must stay within the total.
	s := tiny(VC8(FastControl, 5))
	light := Run(s, 0.15)
	heavy := Run(s, 0.85)
	for _, r := range []Result{light, heavy} {
		if r.AvgQueueDelay < 0 || r.AvgQueueDelay > r.AvgLatency {
			t.Fatalf("queue delay %.1f outside [0, %.1f]", r.AvgQueueDelay, r.AvgLatency)
		}
	}
	if light.AvgQueueDelay > 3 {
		t.Errorf("light-load queue delay %.1f cycles, want near zero", light.AvgQueueDelay)
	}
	if !heavy.Saturated && heavy.AvgQueueDelay < light.AvgQueueDelay {
		t.Errorf("queue delay fell under load: %.1f -> %.1f", light.AvgQueueDelay, heavy.AvgQueueDelay)
	}
}

// TestComparisonHoldsAcrossTrafficPatterns probes the robustness of the
// paper's headline comparison beyond uniform traffic: at a moderate load the
// storage-matched pair must both deliver, and flit reservation must keep its
// latency advantage under transpose and tornado as well.
func TestComparisonHoldsAcrossTrafficPatterns(t *testing.T) {
	for _, pattern := range []traffic.Pattern{traffic.Uniform{}, traffic.Transpose{}, traffic.Tornado{}} {
		fr := tiny(FR6(FastControl, 5))
		fr.Pattern = pattern
		vc := tiny(VC8(FastControl, 5))
		vc.Pattern = pattern
		rf := Run(fr, 0.30)
		rv := Run(vc, 0.30)
		if rf.Saturated || rv.Saturated {
			t.Errorf("%s: saturation at 30%% load (FR %v, VC %v)", pattern.Name(), rf.Saturated, rv.Saturated)
			continue
		}
		if rf.AvgLatency >= rv.AvgLatency {
			t.Errorf("%s: FR latency %.1f >= VC %.1f — the advantage should survive the pattern",
				pattern.Name(), rf.AvgLatency, rv.AvgLatency)
		}
	}
}
