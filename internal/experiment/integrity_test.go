package experiment

import (
	"reflect"
	"testing"

	"frfc/internal/core"
)

// TestIntegritySweepDeliversEverythingWithE2E is the acceptance criterion:
// with corruption enabled and retry on, every offered packet is delivered
// through bit-error rates at and above 1e-3 on the 4x4 mesh — the weak 4-bit
// hop CRC leaks escapes, and the end-to-end check turns each one into a
// retry instead of an accepted corruption. The per-cycle invariant checker
// is armed, so a leaked reservation slot panics the run.
func TestIntegritySweepDeliversEverythingWithE2E(t *testing.T) {
	o := IntegritySweepOptions{Packets: 200, BERs: []float64{1e-3, 5e-3, 1e-2}, Check: true}
	points := IntegritySweep(o)
	sawEscape := false
	for _, p := range points {
		if p.Wedged {
			t.Fatalf("ber=%g e2e=%v wedged", p.BER, p.E2ECheck)
		}
		if p.Corrupted == 0 {
			t.Fatalf("ber=%g e2e=%v corrupted nothing", p.BER, p.E2ECheck)
		}
		if p.CorruptEscapes > 0 {
			sawEscape = true
		}
		if !p.E2ECheck {
			continue
		}
		if p.Delivered != p.Offered || p.Abandoned != 0 {
			t.Fatalf("ber=%g with e2e check: delivered %d of %d (abandoned %d)",
				p.BER, p.Delivered, p.Offered, p.Abandoned)
		}
	}
	if !sawEscape {
		t.Fatal("the deliberately weak 4-bit CRC leaked no escapes; the sweep is not exercising the end-to-end layer")
	}
}

// TestIntegritySweepDeterministic: the sweep is a pure function of its
// options — two serial runs agree on every field of every point.
func TestIntegritySweepDeterministic(t *testing.T) {
	o := IntegritySweepOptions{Packets: 80, BERs: []float64{0, 5e-3}}
	a := IntegritySweep(o)
	b := IntegritySweep(o)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical options diverged:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}

// TestChaosSweepResolvesEverything: every offered packet under a chaos
// campaign resolves as delivered, abandoned or unreachable, the watchdog
// stays quiet, and moderate intensity (no router kills) loses nothing.
func TestChaosSweepResolvesEverything(t *testing.T) {
	o := ChaosSweepOptions{Packets: 200, Intensities: []float64{0.3, 1.0}, Check: true}
	points := ChaosSweep(o)
	for _, p := range points {
		if p.Wedged {
			t.Fatalf("intensity=%g wedged", p.Intensity)
		}
		if p.Delivered+p.Abandoned+p.Unreachable != p.Offered {
			t.Fatalf("intensity=%g conservation broken: %+v", p.Intensity, p)
		}
		if p.Events == 0 || p.DroppedFlits == 0 || p.Corrupted == 0 {
			t.Fatalf("intensity=%g campaign exercised nothing: %+v", p.Intensity, p)
		}
	}
	if points[0].DeliveredFraction() != 1.0 {
		t.Fatalf("moderate intensity lost traffic: %+v", points[0])
	}
	if points[1].Unreachable == 0 {
		t.Fatalf("full intensity killed no routers: %+v", points[1])
	}
}

// TestChaosExcludesExplicitFaults: a spec cannot carry both a chaos campaign
// and a hand-written fault scenario — the campaign overwrites Faults, so
// accepting both would silently discard the user's schedule.
func TestChaosExcludesExplicitFaults(t *testing.T) {
	s := FR6(FastControl, 5)
	s.MeshRadix = 4
	s.ChaosIntensity = 0.5
	events, err := core.ParseScenario("down 5-6 @400; up 5-6 @900")
	if err != nil {
		t.Fatal(err)
	}
	s.Faults = events
	s.FR.RetryLimit = 4
	defer func() {
		if recover() == nil {
			t.Fatal("chaos + explicit faults did not panic")
		}
	}()
	NewNetwork(s, nil)
}

// TestChaosRejectedOffFR: the chaos engine is a flit-reservation feature;
// pointing it at a baseline flow must fail loudly.
func TestChaosRejectedOffFR(t *testing.T) {
	s := VC8(FastControl, 5)
	s.MeshRadix = 4
	s.ChaosIntensity = 0.5
	defer func() {
		if recover() == nil {
			t.Fatal("chaos on a VC spec did not panic")
		}
	}()
	NewNetwork(s, nil)
}

// TestIntegritySweepHarnessParity is exercised at the harness layer; here we
// pin the cell grid shape: one point per (BER, e2e) pair in declaration
// order, e2e-on first.
func TestIntegritySweepGridShape(t *testing.T) {
	o := IntegritySweepOptions{Packets: 40, BERs: []float64{0, 1e-3}}
	points := IntegritySweep(o)
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	want := []struct {
		ber float64
		e2e bool
	}{{0, true}, {0, false}, {1e-3, true}, {1e-3, false}}
	for i, w := range want {
		if points[i].BER != w.ber || points[i].E2ECheck != w.e2e {
			t.Fatalf("point %d = (ber=%g, e2e=%v), want (ber=%g, e2e=%v)",
				i, points[i].BER, points[i].E2ECheck, w.ber, w.e2e)
		}
	}
}
