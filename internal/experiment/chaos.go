package experiment

import (
	"context"
	"fmt"

	"frfc/internal/core"
	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/stats"
	"frfc/internal/topology"
)

// ChaosPoint is one row of a ChaosSweep: a flit-reservation network run under
// a deterministically generated chaos campaign — composed soft loss, bit
// errors, link flaps, corruption spikes and (at high intensity) router kills
// — until every offered packet's fate is resolved.
type ChaosPoint struct {
	Intensity float64
	Seed      uint64
	// Events is how many scheduled fault events the plan expanded to.
	Events int

	Offered     int64
	Delivered   int64
	Abandoned   int64
	Unreachable int64

	DroppedFlits        int64
	Retried             int64
	DeliveredAfterRetry int64

	// The corruption ledger under chaos: see IntegrityPoint.
	Corrupted           int64
	CrcDetected         int64
	CorruptEscapes      int64
	PhantomReservations int64
	ReclaimedSlots      int64

	AvgLatency float64
	Cycles     sim.Cycle
	Wedged     bool
}

// DeliveredFraction is the end-to-end delivery probability of the row,
// counting fast-failed unreachable packets against the campaign.
func (p ChaosPoint) DeliveredFraction() float64 {
	if p.Offered == 0 {
		return 0
	}
	return float64(p.Delivered) / float64(p.Offered)
}

// String renders the point as one sweep row.
func (p ChaosPoint) String() string {
	return fmt.Sprintf("intensity=%.2f events=%2d delivered=%6.2f%%  unreachable=%3d  dropped=%4d  corrupted=%5d  escapes=%3d  phantom=%3d  retried=%4d  latency=%8.2f",
		p.Intensity, p.Events, p.DeliveredFraction()*100, p.Unreachable,
		p.DroppedFlits, p.Corrupted, p.CorruptEscapes, p.PhantomReservations,
		p.Retried, p.AvgLatency)
}

// ChaosSweepOptions parameterizes a ChaosSweep.
type ChaosSweepOptions struct {
	// Radix is the mesh radix (default 4).
	Radix int
	// Packets per row (default 600) of PacketLen flits (default 5), offered
	// one every three cycles so traffic spans the campaign's events.
	Packets   int
	PacketLen int
	// Intensities are the chaos intensities swept, each in (0, 1]. Nil
	// selects the defaults {0.25, 0.5, 1.0}; router kills only appear at
	// intensity >= 0.75.
	Intensities []float64
	// Horizon is the cycle window the plans schedule events in; 0 scales it
	// to the offering window (3 cycles per packet plus settle margin) so
	// every campaign bites live traffic.
	Horizon sim.Cycle
	// ChaosSeed drives the plan generator; Seed the network and workload.
	// Both default fixed.
	ChaosSeed uint64
	Seed      uint64
	// E2ECheck arms the end-to-end payload check (default on via
	// DisableE2E=false); chaos without it silently accepts escapes.
	DisableE2E bool
	// Check enables the runtime invariant checker for every row.
	Check bool
}

// WithDefaults returns the options with every zero field filled in, so
// orchestration layers can enumerate the sweep's cells exactly as ChaosSweep
// would.
func (o ChaosSweepOptions) WithDefaults() ChaosSweepOptions { return o.withDefaults() }

func (o ChaosSweepOptions) withDefaults() ChaosSweepOptions {
	if o.Radix == 0 {
		o.Radix = 4
	}
	if o.Packets == 0 {
		o.Packets = 600
	}
	if o.PacketLen == 0 {
		o.PacketLen = 5
	}
	if o.Intensities == nil {
		o.Intensities = []float64{0.25, 0.5, 1.0}
	}
	if o.Horizon == 0 {
		o.Horizon = sim.Cycle(3*o.Packets) + 500
	}
	if o.ChaosSeed == 0 {
		o.ChaosSeed = 0xCA05
	}
	if o.Seed == 0 {
		o.Seed = 0x1D7E9
	}
	return o
}

// ChaosSweep runs one deterministic chaos campaign per intensity against the
// FR6 network with end-to-end retry and reports how much traffic survived.
// It is the experiment behind the robustness claim: at moderate intensity
// (no router kills) delivery stays total — every loss, flap and corruption is
// absorbed by hop CRCs, reclamation and retries — and at full intensity only
// traffic stranded by dead routers is written off, fast, as unreachable.
func ChaosSweep(o ChaosSweepOptions) []ChaosPoint {
	o = o.withDefaults()
	points := make([]ChaosPoint, 0, len(o.Intensities))
	for _, intensity := range o.Intensities {
		pt, _ := ChaosCell(context.Background(), o, intensity)
		points = append(points, pt)
	}
	return points
}

// ChaosCell runs one intensity of a ChaosSweep to full resolution. Each cell
// owns its own network and RNG seeded only from the options, so cells are
// independent and may execute concurrently; ctx is polled every 1024 cycles,
// and a cancelled cell returns ctx.Err() with a zero point.
func ChaosCell(ctx context.Context, o ChaosSweepOptions, intensity float64) (ChaosPoint, error) {
	o = o.withDefaults()
	mesh := topology.NewMesh(o.Radix)
	plan := core.NewChaosPlan(mesh, core.ChaosOptions{
		Intensity: intensity, Horizon: o.Horizon, Seed: o.ChaosSeed,
	})
	cfg := frConfig(FastControl, 6, 2, 0)
	cfg = plan.Apply(cfg)
	cfg.E2ECheck = !o.DisableE2E
	cfg.WatchdogCycles = 50000
	cfg.Check = o.Check

	pt := ChaosPoint{Intensity: intensity, Seed: o.ChaosSeed, Events: len(plan.Events)}
	lat := stats.NewLatencyStats()
	hooks := &noc.Hooks{
		PacketDelivered: func(p *noc.Packet, now sim.Cycle) { lat.Record(now - p.CreatedAt) },
		Wedged:          func(now sim.Cycle, snapshot string) { pt.Wedged = true },
	}
	net := core.New(mesh, cfg, o.Seed, hooks)

	rng := sim.NewRNG(o.Seed ^ 0x5DEECE66D)
	now := sim.Cycle(0)
	cancelled := func() bool {
		return now&1023 == 0 && ctx.Err() != nil
	}
	for i := 0; i < o.Packets; i++ {
		if cancelled() {
			return ChaosPoint{}, ctx.Err()
		}
		src := topology.NodeID(rng.Intn(mesh.N()))
		dst := topology.NodeID(rng.Intn(mesh.N() - 1))
		if dst >= src {
			dst++
		}
		net.Offer(&noc.Packet{ID: noc.PacketID(i + 1), Src: src, Dst: dst, Len: o.PacketLen, CreatedAt: now})
		for j := 0; j < 3; j++ {
			net.Tick(now)
			now++
		}
	}
	limit := now + 5000000
	for net.InFlightPackets() > 0 && now < limit {
		if cancelled() {
			return ChaosPoint{}, ctx.Err()
		}
		net.Tick(now)
		now++
	}

	rec := net.Recovery()
	pt.Offered = rec.Offered
	pt.Delivered = rec.Delivered
	pt.Abandoned = rec.Abandoned
	pt.Unreachable = rec.Unreachable
	pt.DroppedFlits = rec.DroppedFlits
	pt.Retried = rec.Retried
	pt.DeliveredAfterRetry = rec.DeliveredAfterRetry
	pt.Corrupted = rec.CorruptedFlits
	pt.CrcDetected = rec.CrcDetected
	pt.CorruptEscapes = rec.CorruptEscapes
	pt.PhantomReservations = rec.PhantomReservations
	pt.ReclaimedSlots = rec.ReclaimedSlots
	pt.AvgLatency = lat.Mean()
	pt.Cycles = now
	return pt, nil
}
