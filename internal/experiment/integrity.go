package experiment

import (
	"context"
	"fmt"

	"frfc/internal/core"
	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/stats"
	"frfc/internal/topology"
)

// IntegrityPoint is one row of an IntegritySweep: a flit-reservation network
// run under a given link bit-error rate, with or without the end-to-end
// payload check, until every offered packet's fate is resolved.
type IntegrityPoint struct {
	BER      float64
	CrcBits  int
	E2ECheck bool

	Offered   int64
	Delivered int64
	Abandoned int64

	// Bit-error-model activity: flits delivered corrupted, corrupted flits
	// the hop CRC caught, corrupted payload that escaped every hop CRC to
	// its destination, phantom reservations installed by escaped-corrupt
	// control flits, and orphaned parked flits the reclamation timeout
	// freed.
	Corrupted           int64
	CrcDetected         int64
	CorruptEscapes      int64
	PhantomReservations int64
	ReclaimedSlots      int64

	Retried             int64
	DeliveredAfterRetry int64

	// AvgLatency is the mean creation-to-delivery latency over every
	// delivered packet; Cycles is how long the run took to resolve them.
	// Wedged is set if the no-progress watchdog fired — it never should.
	AvgLatency float64
	Cycles     sim.Cycle
	Wedged     bool
}

// DeliveredFraction is the end-to-end delivery probability of the row.
func (p IntegrityPoint) DeliveredFraction() float64 {
	if p.Offered == 0 {
		return 0
	}
	return float64(p.Delivered) / float64(p.Offered)
}

// EscapeRate is corrupted-payload escapes per offered packet: the silent-
// corruption exposure of the configuration. With the end-to-end check on an
// escape still triggers a retry, so exposure does not imply wrong data was
// accepted; with it off every escape is accepted as-is.
func (p IntegrityPoint) EscapeRate() float64 {
	if p.Offered == 0 {
		return 0
	}
	return float64(p.CorruptEscapes) / float64(p.Offered)
}

// EscapeRateCI is the 95% Wilson interval around EscapeRate. Escape counts
// are single digits out of a few hundred offered packets, so the interval —
// not the point estimate — is the honest statement of exposure; at zero
// observed escapes it still has positive width (the rule of three).
func (p IntegrityPoint) EscapeRateCI() (lo, hi float64) {
	return stats.WilsonCI95(p.CorruptEscapes, p.Offered)
}

// String renders the point as one sweep row.
func (p IntegrityPoint) String() string {
	e2e := "off"
	if p.E2ECheck {
		e2e = "on"
	}
	return fmt.Sprintf("ber=%-7.0e e2e=%-3s delivered=%6.2f%%  corrupted=%5d  crc=%5d  escapes=%4d  phantom=%3d  reclaimed=%3d  retried=%4d  latency=%8.2f",
		p.BER, e2e, p.DeliveredFraction()*100, p.Corrupted, p.CrcDetected,
		p.CorruptEscapes, p.PhantomReservations, p.ReclaimedSlots, p.Retried, p.AvgLatency)
}

// IntegritySweepOptions parameterizes an IntegritySweep.
type IntegritySweepOptions struct {
	// Radix is the mesh radix (default 4).
	Radix int
	// Packets per row (default 400) of PacketLen flits (default 5), offered
	// one every three cycles.
	Packets   int
	PacketLen int
	// RetryLimit is the end-to-end retry budget (default 8). Corruption
	// recovery leans on it: detected-corrupt data takes the loss path, and
	// the end-to-end check turns escapes into retries.
	RetryLimit int
	// CrcBits is the modeled hop CRC width. The default is 4 — deliberately
	// weak (2^-4 ≈ 6% of corrupted flits slip each hop) so sweeps exercise
	// the escape machinery; production-strength CRCs make escapes
	// astronomically rare. Negative disables hop detection entirely.
	CrcBits int
	// BERs are the link bit-error rates swept; each runs once with the
	// end-to-end check on and once with it off. Nil selects the defaults
	// {0, 1e-4, 1e-3, 5e-3, 1e-2}.
	BERs []float64
	// Check enables the runtime invariant checker for every row.
	Check bool
	// Seed drives the network and workload RNGs (default fixed).
	Seed uint64
}

// WithDefaults returns the options with every zero field filled in, so
// orchestration layers can enumerate the sweep's cells exactly as
// IntegritySweep would.
func (o IntegritySweepOptions) WithDefaults() IntegritySweepOptions { return o.withDefaults() }

func (o IntegritySweepOptions) withDefaults() IntegritySweepOptions {
	if o.Radix == 0 {
		o.Radix = 4
	}
	if o.Packets == 0 {
		o.Packets = 400
	}
	if o.PacketLen == 0 {
		o.PacketLen = 5
	}
	if o.RetryLimit == 0 {
		o.RetryLimit = 8
	}
	if o.CrcBits == 0 {
		o.CrcBits = 4
	}
	if o.BERs == nil {
		o.BERs = []float64{0, 1e-4, 1e-3, 5e-3, 1e-2}
	}
	if o.Seed == 0 {
		o.Seed = 0x1D7E9
	}
	return o
}

// IntegritySweep measures silent-corruption tolerance: for each bit-error
// rate it runs the FR6 network twice — end-to-end check on and off — until
// every offered packet resolves, and reports delivered fraction alongside the
// corruption ledger. It is the experiment behind the integrity claim: with
// the check on, every escape is caught and retried so delivery stays total;
// with it off, the escape rate is exactly the silently accepted corruption.
func IntegritySweep(o IntegritySweepOptions) []IntegrityPoint {
	o = o.withDefaults()
	points := make([]IntegrityPoint, 0, 2*len(o.BERs))
	for _, ber := range o.BERs {
		for _, e2e := range []bool{true, false} {
			pt, _ := IntegrityCell(context.Background(), o, ber, e2e)
			points = append(points, pt)
		}
	}
	return points
}

// IntegrityCell runs one (BER, end-to-end check) cell of an IntegritySweep to
// full resolution. Each cell owns its own network and RNG seeded only from
// the options, so cells are independent and may execute concurrently; ctx is
// polled every 1024 cycles, and a cancelled cell returns ctx.Err() with a
// zero point.
func IntegrityCell(ctx context.Context, o IntegritySweepOptions, ber float64, e2e bool) (IntegrityPoint, error) {
	o = o.withDefaults()
	mesh := topology.NewMesh(o.Radix)
	cfg := frConfig(FastControl, 6, 2, 0)
	cfg.BER = ber
	cfg.CrcBits = o.CrcBits
	cfg.E2ECheck = e2e
	cfg.RetryLimit = o.RetryLimit
	cfg.WatchdogCycles = 50000
	cfg.Check = o.Check

	pt := IntegrityPoint{BER: ber, CrcBits: o.CrcBits, E2ECheck: e2e}
	lat := stats.NewLatencyStats()
	hooks := &noc.Hooks{
		PacketDelivered: func(p *noc.Packet, now sim.Cycle) { lat.Record(now - p.CreatedAt) },
		Wedged:          func(now sim.Cycle, snapshot string) { pt.Wedged = true },
	}
	net := core.New(mesh, cfg, o.Seed, hooks)

	rng := sim.NewRNG(o.Seed ^ 0x5DEECE66D)
	now := sim.Cycle(0)
	cancelled := func() bool {
		return now&1023 == 0 && ctx.Err() != nil
	}
	for i := 0; i < o.Packets; i++ {
		if cancelled() {
			return IntegrityPoint{}, ctx.Err()
		}
		src := topology.NodeID(rng.Intn(mesh.N()))
		dst := topology.NodeID(rng.Intn(mesh.N() - 1))
		if dst >= src {
			dst++
		}
		net.Offer(&noc.Packet{ID: noc.PacketID(i + 1), Src: src, Dst: dst, Len: o.PacketLen, CreatedAt: now})
		for j := 0; j < 3; j++ {
			net.Tick(now)
			now++
		}
	}
	limit := now + 5000000
	for net.InFlightPackets() > 0 && now < limit {
		if cancelled() {
			return IntegrityPoint{}, ctx.Err()
		}
		net.Tick(now)
		now++
	}

	rec := net.Recovery()
	pt.Offered = rec.Offered
	pt.Delivered = rec.Delivered
	pt.Abandoned = rec.Abandoned
	pt.Corrupted = rec.CorruptedFlits
	pt.CrcDetected = rec.CrcDetected
	pt.CorruptEscapes = rec.CorruptEscapes
	pt.PhantomReservations = rec.PhantomReservations
	pt.ReclaimedSlots = rec.ReclaimedSlots
	pt.Retried = rec.Retried
	pt.DeliveredAfterRetry = rec.DeliveredAfterRetry
	pt.AvgLatency = lat.Mean()
	pt.Cycles = now
	return pt, nil
}
