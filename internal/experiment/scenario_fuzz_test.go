package experiment

import (
	"reflect"
	"strings"
	"testing"

	"frfc/internal/core"
	"frfc/internal/topology"
)

// FuzzParseScenario throws arbitrary strings at the scenario grammar and
// checks the parser's contract: parse-then-validate never panics, a parse
// error never comes with events attached, and every accepted scenario
// round-trips — formatting the parsed events with their own String() methods
// and reparsing yields the identical event list.
func FuzzParseScenario(f *testing.F) {
	for _, seed := range []string{
		"",
		"down 5-6 @2000; up 5-6 @6000",
		"kill 10 @400",
		"corrupt 5-6 rate 0.01 @400",
		"corrupt 0-1 rate 1e-3 @1; corrupt 0-1 rate 0 @900",
		"down 5-6 @400; corrupt 1-2 rate 0.5 @500; kill 0 @600",
		"corrupt 5-6 rate NaN @1",
		"corrupt 5-6 rate -0.5 @1",
		"corrupt 5-6 rate @1",
		"down 5-6 @-3",
		"up @ down",
		"corrupt 5-6 rate 0.01 @99999999999999999999",
		";;; ",
		"kill x @7",
	} {
		f.Add(seed)
	}
	mesh := topology.NewMesh(4)
	f.Fuzz(func(t *testing.T, s string) {
		events, err := core.ParseScenario(s)
		if err != nil {
			if events != nil {
				t.Fatalf("parse error came with events attached: %v", err)
			}
			return
		}
		// Structural validation must never panic, whatever shape the
		// accepted events take; rejecting them is fine.
		_ = core.ValidateFaults(mesh, events, true)
		_ = core.ValidateFaults(mesh, events, false)

		parts := make([]string, len(events))
		for i, e := range events {
			parts[i] = e.String()
		}
		again, err := core.ParseScenario(strings.Join(parts, "; "))
		if err != nil {
			t.Fatalf("round-trip reparse failed: %v\nevents: %v", err, events)
		}
		if !reflect.DeepEqual(events, again) {
			t.Fatalf("round-trip changed events:\n first: %#v\nsecond: %#v", events, again)
		}
	})
}
