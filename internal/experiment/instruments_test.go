package experiment

import (
	"context"
	"testing"

	"frfc/internal/metrics"
	"frfc/internal/timeseries"
)

func TestRunInstrumentedMatchesRun(t *testing.T) {
	s := tiny(FR6(FastControl, 5))
	plain := Run(s, 0.30)

	probe := &metrics.Probe{Reg: metrics.NewRegistry(0)}
	series := timeseries.New(0, 0)
	published := 0
	instr, err := RunInstrumented(context.Background(), s, 0.30, Instruments{
		Probe:        probe,
		Series:       series,
		Publish:      func(Live) { published++ },
		PublishEvery: 256,
	})
	if err != nil {
		t.Fatalf("RunInstrumented: %v", err)
	}
	if instr != plain {
		t.Fatalf("instrumented result differs from plain run:\nplain: %+v\ninstr: %+v", plain, instr)
	}
	if published < 2 {
		t.Fatalf("Publish fired %d times over %d cycles at every 256", published, instr.Cycles)
	}
	if series.Len() == 0 {
		t.Fatal("series recorded no points")
	}
}

func TestTimeSeriesAcceptedSumsToEjectedTotal(t *testing.T) {
	s := tiny(FR6(FastControl, 5))
	probe := &metrics.Probe{Reg: metrics.NewRegistry(0)}
	series := timeseries.New(metrics.DefaultEpoch, 0)
	res, err := RunInstrumented(context.Background(), s, 0.30, Instruments{Probe: probe, Series: series})
	if err != nil {
		t.Fatalf("RunInstrumented: %v", err)
	}

	var total int64
	for i := range probe.Reg.Nodes {
		total += probe.Reg.Nodes[i].Ejected
	}
	if total == 0 {
		t.Fatal("registry recorded no ejected flits")
	}
	var sum int64
	for _, p := range series.Points() {
		sum += p.Ejected
	}
	if sum != total {
		t.Fatalf("series ejected sums to %d, registry total %d", sum, total)
	}
	// One point per epoch: full windows plus the flushed partial one.
	want := int(res.Cycles / metrics.DefaultEpoch)
	if res.Cycles%metrics.DefaultEpoch != 0 {
		want++
	}
	if series.Len() != want {
		t.Fatalf("series has %d points over %d cycles at epoch %d, want %d",
			series.Len(), res.Cycles, metrics.DefaultEpoch, want)
	}
	last := series.Points()[series.Len()-1]
	if int(last.Packets) != res.SampledDelivered {
		t.Fatalf("final point packets = %d, want %d delivered", last.Packets, res.SampledDelivered)
	}
}

func TestBatchMeansFieldsPopulated(t *testing.T) {
	r := Run(tiny(FR6(FastControl, 5)), 0.30)
	if r.Batches == 0 || r.BatchCI95 <= 0 {
		t.Fatalf("batch-means interval missing: batches=%d half=%v", r.Batches, r.BatchCI95)
	}
	if r.CI95 <= 0 {
		t.Fatal("i.i.d. CI95 no longer populated")
	}
	// Queueing latencies are positively autocorrelated, which is exactly why
	// the batch interval exists; it should be the wider of the two here.
	if r.CISuspect && r.BatchCI95 < r.CI95 {
		t.Errorf("CI flagged suspect but batch interval %v narrower than i.i.d. %v", r.BatchCI95, r.CI95)
	}
}

func TestWarmupUnstableFlag(t *testing.T) {
	s := tiny(FR6(FastControl, 5))
	if r := Run(s, 0.20); r.WarmupUnstable {
		t.Error("light load flagged WarmupUnstable")
	}
	// Beyond saturation source queues grow without bound, so the stabilizer
	// cannot settle before the cap.
	s.MaxWarmupCycles = s.WarmupCycles
	s.DrainFactor = 2
	if r := Run(s, 1.5); !r.WarmupUnstable {
		t.Error("run at 150% load with capped warmup not flagged WarmupUnstable")
	}
}

func TestPublishSnapshots(t *testing.T) {
	s := tiny(FR6(FastControl, 5))
	probe := &metrics.Probe{Reg: metrics.NewRegistry(0)}
	var snaps []Live
	res, err := RunInstrumented(context.Background(), s, 0.30, Instruments{
		Probe:        probe,
		Publish:      func(lv Live) { snaps = append(snaps, lv) },
		PublishEvery: 512,
	})
	if err != nil {
		t.Fatalf("RunInstrumented: %v", err)
	}
	if len(snaps) < 2 {
		t.Fatalf("got %d snapshots, want several", len(snaps))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Cycle <= snaps[i-1].Cycle {
			t.Fatalf("snapshot cycles not increasing: %d then %d", snaps[i-1].Cycle, snaps[i].Cycle)
		}
	}
	last := snaps[len(snaps)-1]
	if last.Phase != "done" || last.Cycle != res.Cycles || last.Delivered != res.SampledDelivered {
		t.Fatalf("final snapshot wrong: %+v vs result cycles=%d delivered=%d", last, res.Cycles, res.SampledDelivered)
	}
	if last.Reg == nil {
		t.Fatal("snapshot registry missing")
	}
	// Snapshots are clones: the earliest must hold fewer ejections than the
	// final registry, not alias it.
	if last.Reg == probe.Reg {
		t.Fatal("snapshot aliases the live registry")
	}
}
