package experiment

import (
	"context"
	"fmt"

	"frfc/internal/core"
	"frfc/internal/metrics"
	"frfc/internal/noc"
	"frfc/internal/profile"
	"frfc/internal/sim"
	"frfc/internal/stats"
	"frfc/internal/timeseries"
	"frfc/internal/topology"
	"frfc/internal/traffic"
	"frfc/internal/vcrouter"
	"frfc/internal/waterfall"
)

// Result reports one simulated (configuration, load) point.
type Result struct {
	Spec string
	// Load is the offered traffic as a fraction of network capacity.
	Load float64
	// EffectiveLoad is Load debited by the configuration's bandwidth
	// penalty, the basis the paper uses when comparing throughputs.
	EffectiveLoad float64

	// AvgLatency is the mean creation-to-last-flit-ejection latency of
	// the sampled packets, in cycles, including source queueing.
	AvgLatency float64
	// AvgQueueDelay is the mean time sampled packets spent waiting in
	// their source queue before injection began; AvgLatency minus
	// AvgQueueDelay is pure network time.
	AvgQueueDelay float64
	// CI95 is the half-width of the naive 95% confidence interval on
	// AvgLatency, computed as if the sampled latencies were independent.
	// Successive latencies out of one run are strongly positively
	// correlated, so this interval is optimistic; it is kept for
	// comparison against BatchCI95.
	CI95 float64
	// BatchCI95 is the half-width of the batch-means 95% confidence
	// interval on AvgLatency over Batches non-overlapping batches — the
	// honest interval for autocorrelated sequences, and the one summaries
	// report. Zero (with Batches 0) when the sample is too small to batch.
	BatchCI95 float64
	Batches   int
	// Lag1Autocorr estimates the lag-1 autocorrelation of the sampled
	// latency sequence; CISuspect is set when it is positive and
	// statistically significant, meaning CI95 understates the real
	// uncertainty.
	Lag1Autocorr float64
	CISuspect    bool
	// MinLatency and MaxLatency bound the sampled latencies; P50, P95 and
	// P99 are exact quantiles of the sample.
	MinLatency, MaxLatency sim.Cycle
	P50, P95, P99          sim.Cycle

	// AcceptedLoad is the delivered throughput during the measurement
	// window as a fraction of capacity.
	AcceptedLoad float64

	// Saturated is set when the run could not deliver its sample within
	// the drain bound, or when accepted throughput fell more than 10%
	// short of offered — either way the offered load exceeds sustainable
	// throughput.
	Saturated bool
	// WarmupUnstable is set when warm-up hit MaxWarmupCycles without the
	// queue-length stabilizer settling: measurements began from a
	// non-steady state (typical beyond saturation) and steady-state
	// averages should be read with that in mind.
	WarmupUnstable bool
	// SampledDelivered / SampleSize report sample completion.
	SampledDelivered, SampleSize int
	// Cycles is the total simulated length of the run.
	Cycles sim.Cycle

	// PoolFullFraction is the fraction of measured cycles the central
	// router's buffer pools were completely full (Section 4.2's
	// occupancy statistic).
	PoolFullFraction float64

	// EagerTransfers and EagerResidencies report the Figure 10 shadow
	// ledger: how many buffer-to-buffer transfers the
	// allocate-at-reservation-time policy would have forced, over how
	// many buffer residencies. Populated only for flit-reservation
	// configurations with TrackEagerTransfers set.
	EagerTransfers, EagerResidencies int64

	// DroppedFlits and LostPackets report fault-injection activity when
	// the configuration sets a DataFaultRate. Under end-to-end retry
	// LostPackets counts loss events per transmission attempt.
	DroppedFlits, LostPackets int64

	// Recovery-layer activity, populated for flit-reservation
	// configurations: end-to-end retransmissions, packets abandoned after
	// exhausting the retry budget, packets whose delivering attempt was a
	// retry, and control flits corrupted (each recovered by link-level
	// retransmission).
	RetriedPackets, AbandonedPackets   int64
	DeliveredAfterRetry, CtrlCorrupted int64
	// UnreachablePackets counts packets failed fast because a hard-fault
	// scenario disconnected their destination; DeliveredFraction is
	// delivered over resolved (delivered, abandoned or unreachable —
	// packets still in flight when the sampling run stops don't count
	// against it) — the graceful-degradation headline under Faults, 1.0 on
	// a healthy network.
	UnreachablePackets int64
	DeliveredFraction  float64
	// AvgRetryLatency is the mean creation-to-delivery latency of sampled
	// packets that needed at least one retry (0 when none did); their
	// latency includes the loss detection, notification round-trip and
	// backoff, so it is reported apart from AvgLatency.
	AvgRetryLatency float64

	// Bit-error-model activity, populated for flit-reservation and
	// virtual-channel configurations with a BER: flits delivered corrupted,
	// corrupted flits the hop CRC caught, and corrupted payload that
	// escaped detection all the way to its destination. Phantom
	// reservations and reclaimed slots (escaped-corrupt control damage and
	// its repair) exist only in flit-reservation runs.
	CorruptedFlits, CrcDetected, CorruptEscapes int64
	PhantomReservations, ReclaimedSlots         int64

	// Self-profiling summary, populated only when the run carried a
	// profile registry (Instruments.Probe.Prof). ProfTicks and
	// ProfActiveTicks total component ticks executed vs. ticks that did
	// work; ProfIdleFraction is their gap as a fraction. The ProfXxxWork
	// fields are the FR router's per-phase work-unit attribution (zero for
	// other substrates). Every value is a deterministic function of the
	// simulation — host memory samples stay in the profile registry and
	// never enter a Result — so profiled results remain byte-identical
	// across worker counts.
	ProfTicks, ProfActiveTicks                                 int64
	ProfIdleFraction                                           float64
	ProfSchedWork, ProfArbWork, ProfSwitchWork, ProfCreditWork int64

	// Latency-waterfall summary, populated only when the run carried a
	// stage ledger (Instruments.Probe.WF). WaterfallPackets counts sampled
	// packets whose latency was decomposed; WaterfallTotal is their summed
	// creation-to-delivery latency in cycles, and the per-stage fields
	// partition it exactly: Queue + Reserve + Arb + Stall + Sched + Link +
	// Drain == Total for every packet (enforced under Spec.Check). Like the
	// profile summary, every value is a deterministic function of the
	// simulation, so waterfall results stay byte-identical across worker
	// counts and on/off.
	WaterfallPackets, WaterfallTotal               int64
	WaterfallQueue, WaterfallReserve, WaterfallArb int64
	WaterfallStall, WaterfallSched, WaterfallLink  int64
	WaterfallDrain                                 int64
}

// String renders the result as one sweep row. The reported ± half-width is
// the batch-means interval when one exists (the i.i.d. CI95 stays available
// in the struct for comparison).
func (r Result) String() string {
	ci := r.CI95
	if r.Batches > 0 {
		ci = r.BatchCI95
	}
	sat := ""
	if r.Saturated {
		sat = "  SATURATED"
	}
	if r.WarmupUnstable {
		sat += "  WARMUP-UNSTABLE"
	}
	return fmt.Sprintf("%-12s load=%5.1f%%  latency=%8.2f ±%5.2f  accepted=%5.1f%%%s",
		r.Spec, r.Load*100, r.AvgLatency, ci, r.AcceptedLoad*100, sat)
}

// Run simulates one spec at one offered load (fraction of capacity) through
// the paper's protocol: warm up until source queues stabilize, tag
// SamplePackets packets, and run until all of them are delivered or the
// drain bound trips.
func Run(s Spec, load float64) Result {
	return RunObserved(s, load, nil)
}

// RunCtx is Run with cooperative cancellation: the simulation polls ctx every
// 1024 cycles and returns ctx.Err() if it fired. Cancellation never perturbs
// a completed run — a nil error means the Result is bit-identical to what
// Run would have produced.
func RunCtx(ctx context.Context, s Spec, load float64) (Result, error) {
	return RunObservedCtx(ctx, s, load, nil)
}

// RunObserved is Run with an observability probe attached to the network for
// the whole run: counters, occupancy gauges and flit traces accumulate in the
// probe, whose registry is stamped with the run length at the end. A nil or
// empty probe makes it identical to Run.
func RunObserved(s Spec, load float64, probe *metrics.Probe) Result {
	r, _ := RunObservedCtx(context.Background(), s, load, probe)
	return r
}

// RunObservedCtx is RunObserved with cooperative cancellation (see RunCtx).
func RunObservedCtx(ctx context.Context, s Spec, load float64, probe *metrics.Probe) (Result, error) {
	return RunInstrumented(ctx, s, load, Instruments{Probe: probe})
}

// Live is a point-in-time view of a run in flight, delivered to an
// Instruments.Publish hook. The registry is a deep clone, safe to retain or
// serve from another goroutine.
type Live struct {
	// Cycle is the simulation time of the snapshot; Phase names the run
	// phase it was taken in: "warmup", "measure", "drain" or "done".
	Cycle sim.Cycle
	Phase string
	// Tagged and Delivered report sample progress; Packets and MeanLatency
	// the running latency measurement over delivered sampled packets.
	Tagged, Delivered int
	Packets           int64
	MeanLatency       float64
	// Reg is a deep clone of the probe's registry at the snapshot (nil when
	// the probe has none).
	Reg *metrics.Registry
	// Prof is a deep clone of the self-profiling registry (nil when the run
	// is not profiled), its Cycles stamped with the snapshot time.
	Prof *profile.Registry
	// Waterfall is a snapshot of the latency-stage decomposition over
	// packets delivered so far (nil when latency provenance is off).
	Waterfall *waterfall.View
}

// DefaultPublishEvery is the cycle period between Publish snapshots when
// Instruments leaves PublishEvery unset.
const DefaultPublishEvery = 4096

// Instruments bundles the optional observers of one run. Everything here is
// observation-only: enabling any combination never perturbs simulation state,
// so the Result stays bit-identical to an uninstrumented run.
type Instruments struct {
	// Probe collects per-router counters, occupancy gauges and flit traces
	// for the whole run.
	Probe *metrics.Probe
	// Series records a per-epoch time series. It samples the probe's
	// registry, so when the probe has no registry one is created (with the
	// recorder's epoch) for the duration of the run.
	Series *timeseries.Recorder
	// Publish, when set, receives a Live snapshot every PublishEvery cycles
	// (non-positive = DefaultPublishEvery) and once more when the run ends.
	// It is called from the simulation goroutine; keep it fast.
	Publish      func(Live)
	PublishEvery sim.Cycle
}

// RunInstrumented is the fully instrumented run: RunObservedCtx plus a
// per-epoch time-series recorder and a periodic live-snapshot hook. Zero
// Instruments make it identical to Run.
func RunInstrumented(ctx context.Context, s Spec, load float64, ins Instruments) (Result, error) {
	s = s.withDefaults()
	if load < 0 || load > 2 {
		panic(fmt.Sprintf("experiment: offered load %.3f out of range", load))
	}

	probe := ins.Probe
	series := ins.Series
	if series != nil && (probe == nil || probe.Reg == nil) {
		// The recorder reads counter totals out of a registry; give it one
		// when the caller did not.
		reg := metrics.NewRegistry(series.Epoch())
		if probe == nil {
			probe = &metrics.Probe{Reg: reg}
		} else {
			p := *probe
			p.Reg = reg
			probe = &p
		}
	}
	pub := ins.Publish
	pubEvery := ins.PublishEvery
	if pubEvery <= 0 {
		pubEvery = DefaultPublishEvery
	}
	// The self-profiling registry, nil when profiling is off. Memory
	// sampling happens on its epoch inside step(); everything else
	// accumulates inside the fabric via the probe.
	prof := probe.Profile()
	// The latency-stage ledger, nil when latency provenance is off. The
	// fabric timestamps lifecycle transitions into it; delivery and drop
	// hooks below close each packet's account. Spec.Check arms the strict
	// conservation assertion (stage sums must equal measured latency).
	wf := probe.Waterfall()
	if wf != nil {
		wf.Strict = s.Check
	}

	lat := stats.NewLatencyStats()
	retryLat := stats.NewRetryLatency()
	var bm stats.BatchMeans
	var queueDelay stats.Welford
	var tput stats.Throughput
	sampledDelivered := 0

	// With end-to-end retry enabled, a loss event does not resolve a
	// packet's fate — the source will re-offer it, and the run must keep
	// waiting for the eventual delivery (or abandonment).
	retryOn := s.Flow == FlitReservation && s.FR.RetryLimit > 0

	hooks := &noc.Hooks{
		PacketDelivered: func(p *noc.Packet, now sim.Cycle) {
			if p.Sampled {
				lat.Record(now - p.CreatedAt)
				bm.Add(float64(now - p.CreatedAt))
				retryLat.Record(now-p.CreatedAt, p.Attempts)
				queueDelay.Add(float64(p.InjectedAt - p.CreatedAt))
				sampledDelivered++
				if wf != nil {
					wf.Delivered(uint64(p.ID), now)
				}
			}
		},
		FlitEjected: func(now sim.Cycle) { tput.CountEjected(1) },
		// Without retry, a lost packet's fate is resolved even though it
		// never arrives; without this, any fault would wedge the run
		// waiting for a sample that cannot complete.
		PacketLost: func(p *noc.Packet, now sim.Cycle) {
			if p.Sampled && !retryOn {
				sampledDelivered++
				if wf != nil {
					wf.Drop(uint64(p.ID))
				}
			}
		},
		// With retry, abandonment is the resolution of last resort.
		PacketAbandoned: func(p *noc.Packet, now sim.Cycle) {
			if p.Sampled {
				sampledDelivered++
				if wf != nil {
					wf.Drop(uint64(p.ID))
				}
			}
		},
		// A hard fault disconnecting a sampled packet's destination
		// resolves its fate too; without this a scenario run would wait
		// out the drain bound for deliveries that cannot happen.
		PacketUnreachable: func(p *noc.Packet, now sim.Cycle) {
			if p.Sampled {
				sampledDelivered++
				if wf != nil {
					wf.Drop(uint64(p.ID))
				}
			}
		},
	}
	net, mesh := NewNetwork(s, hooks)
	if probe.Enabled() {
		if a, ok := net.(metrics.Attachable); ok {
			a.AttachProbe(probe)
		}
	}

	// Per-node generators with independent RNG streams.
	genRoot := sim.NewRNG(s.Seed ^ 0x9E3779B97F4A7C15)
	rate := traffic.PacketRateFor(mesh, load, s.PacketLen)
	gens := make([]*traffic.Generator, mesh.N())
	var nextID noc.PacketID
	idGen := func() noc.PacketID { nextID++; return nextID }
	for id := range gens {
		var proc traffic.Process
		if s.Bernoulli {
			proc = traffic.Bernoulli{Rate: rate}
		} else {
			proc = &traffic.ConstantRate{Rate: rate}
		}
		gens[id] = traffic.NewGenerator(mesh, topology.NodeID(id), s.Pattern, proc, genRoot.Split(), s.PacketLen, idGen)
	}

	// Track one specific input pool of a central router, as Section 4.2
	// does; under dimension-ordered routing on uniform traffic the West
	// input of a central node carries heavy through-traffic.
	center := topology.NodeID((mesh.Radix()/2)*mesh.Radix() + mesh.Radix()/2)
	_, poolCap := net.PoolUsage(center, topology.West)
	occ := stats.NewOccupancy(poolCap)

	now := sim.Cycle(0)
	tagged := 0
	phase := "warmup"
	// cancelled polls ctx every 1024 cycles; the check never alters
	// simulation state, so a run that finishes is bit-identical whether or
	// not a cancellable context was supplied.
	cancelled := func() bool {
		return now&1023 == 0 && ctx.Err() != nil
	}
	snapshot := func() Live {
		lv := Live{
			Cycle:       now,
			Phase:       phase,
			Tagged:      tagged,
			Delivered:   sampledDelivered,
			Packets:     lat.N(),
			MeanLatency: lat.Mean(),
		}
		if probe != nil {
			lv.Reg = probe.Reg.Clone()
		}
		if prof != nil {
			lv.Prof = prof.Clone()
			lv.Prof.Cycles = now
		}
		if wf != nil {
			v := wf.View()
			lv.Waterfall = &v
		}
		return lv
	}
	step := func(tagging, observe bool) {
		for _, g := range gens {
			p := g.Generate(now)
			if p == nil {
				continue
			}
			if tagging && tagged < s.SamplePackets {
				p.Sampled = true
				tagged++
			}
			net.Offer(p)
		}
		net.Tick(now)
		now++
		if observe {
			used, _ := net.PoolUsage(center, topology.West)
			occ.Observe(used)
		}
		// Post-increment: the fabric's gauge sample for this epoch has
		// already landed in the registry, so the closing window covers
		// exactly one occupancy sample.
		if series.Due(now) {
			series.Observe(now, probe.Reg, lat.N(), lat.Mean())
		}
		if prof.Due(now) {
			prof.SampleMem()
		}
		if pub != nil && now%pubEvery == 0 {
			pub(snapshot())
		}
	}

	// Phase 1: warm-up — a fixed minimum, then until source queues
	// stabilize or the cap is reached.
	stab := stats.NewStabilizer(s.WarmupCycles/4+1, 0.10)
	for now < s.WarmupCycles {
		if cancelled() {
			return Result{}, ctx.Err()
		}
		step(false, false)
		stab.Observe(net.SourceQueueLen())
	}
	for now < s.MaxWarmupCycles && !stab.Stable() {
		if cancelled() {
			return Result{}, ctx.Err()
		}
		step(false, false)
		stab.Observe(net.SourceQueueLen())
	}
	// If the loop above gave up at the cap rather than settling, the
	// measurement starts from a non-steady state — flag it instead of
	// silently proceeding.
	warmupUnstable := !stab.Stable()

	// Phase 2: tag the sample while traffic keeps flowing.
	phase = "measure"
	tput.Open(now)
	sampleStart := now
	for tagged < s.SamplePackets && rate > 0 {
		if cancelled() {
			return Result{}, ctx.Err()
		}
		step(true, true)
	}
	creationCycles := now - sampleStart
	if creationCycles < 1 {
		creationCycles = 1
	}

	// Phase 3: background traffic continues until the whole sample is
	// delivered or the drain bound trips (the saturation signal).
	deadline := now + creationCycles*sim.Cycle(s.DrainFactor) + 10*s.WarmupCycles
	phase = "drain"
	for sampledDelivered < tagged && now < deadline {
		if cancelled() {
			return Result{}, ctx.Err()
		}
		step(false, true)
	}
	tput.Close(now)
	if probe != nil && probe.Reg != nil {
		probe.Reg.Cycles = now
	}
	if prof != nil {
		prof.Cycles = now
	}
	// The final window is usually partial; flush it so the series' ejected
	// counts sum to the run's total ejected flits.
	series.Flush(now, regOf(probe), lat.N(), lat.Mean())
	phase = "done"
	if pub != nil {
		pub(snapshot())
	}

	res := Result{
		Spec:             s.Name,
		Load:             load,
		EffectiveLoad:    load * (1 - s.BandwidthPenalty),
		AvgLatency:       lat.Mean(),
		AvgQueueDelay:    queueDelay.Mean(),
		CI95:             lat.CI95(),
		Lag1Autocorr:     bm.Lag1(),
		WarmupUnstable:   warmupUnstable,
		MinLatency:       lat.Min(),
		MaxLatency:       lat.Max(),
		P50:              lat.Quantile(0.50),
		P95:              lat.Quantile(0.95),
		P99:              lat.Quantile(0.99),
		Saturated:        sampledDelivered < tagged,
		SampledDelivered: sampledDelivered,
		SampleSize:       tagged,
		Cycles:           now,
		PoolFullFraction: occ.FullFraction(),
	}
	res.BatchCI95, res.Batches = bm.CI95(0)
	res.CISuspect = res.Lag1Autocorr > 0 && bm.Lag1Significant()
	res.AcceptedLoad = tput.AcceptedFlitsPerCycle() / (float64(mesh.N()) * mesh.CapacityPerNode())
	if res.AcceptedLoad < 0.90*load {
		res.Saturated = true
	}
	if frNet, ok := net.(*core.Network); ok {
		res.EagerTransfers, res.EagerResidencies = frNet.EagerTransfers()
		res.DroppedFlits, res.LostPackets = frNet.FaultStats()
		rec := frNet.Recovery()
		res.RetriedPackets = rec.Retried
		res.AbandonedPackets = rec.Abandoned
		res.DeliveredAfterRetry = rec.DeliveredAfterRetry
		res.CtrlCorrupted = rec.CtrlCorrupted
		res.AvgRetryLatency = retryLat.Retried().Mean()
		res.UnreachablePackets = rec.Unreachable
		if resolved := rec.Delivered + rec.Abandoned + rec.Unreachable; resolved > 0 {
			res.DeliveredFraction = float64(rec.Delivered) / float64(resolved)
		}
		res.CorruptedFlits = rec.CorruptedFlits
		res.CrcDetected = rec.CrcDetected
		res.CorruptEscapes = rec.CorruptEscapes
		res.PhantomReservations = rec.PhantomReservations
		res.ReclaimedSlots = rec.ReclaimedSlots
	}
	if vcNet, ok := net.(*vcrouter.Network); ok {
		res.CorruptedFlits, res.CrcDetected, res.CorruptEscapes = vcNet.IntegrityCounts()
	}
	if prof != nil {
		res.ProfTicks, res.ProfActiveTicks = prof.Totals()
		res.ProfIdleFraction = prof.IdleFraction()
		ph := prof.PhaseTotals()
		res.ProfSchedWork = ph[profile.PhaseSched]
		res.ProfArbWork = ph[profile.PhaseArb]
		res.ProfSwitchWork = ph[profile.PhaseSwitch]
		res.ProfCreditWork = ph[profile.PhaseCredit]
	}
	if wf != nil {
		res.WaterfallPackets = wf.Packets()
		res.WaterfallTotal = wf.TotalCycles()
		st := wf.StageTotals()
		res.WaterfallQueue = st[waterfall.StageQueue]
		res.WaterfallReserve = st[waterfall.StageReserve]
		res.WaterfallArb = st[waterfall.StageArb]
		res.WaterfallStall = st[waterfall.StageStall]
		res.WaterfallSched = st[waterfall.StageSched]
		res.WaterfallLink = st[waterfall.StageLink]
		res.WaterfallDrain = st[waterfall.StageDrain]
	}
	return res, nil
}

// regOf reads a probe's registry without dereferencing a nil probe.
func regOf(p *metrics.Probe) *metrics.Registry {
	if p == nil {
		return nil
	}
	return p.Reg
}

// Sweep runs the spec at each offered load and returns one result per point.
func Sweep(s Spec, loads []float64) []Result {
	results := make([]Result, 0, len(loads))
	for _, load := range loads {
		results = append(results, Run(s, load))
	}
	return results
}

// BaseLatency measures the zero-load (contention-free) latency of a spec by
// running it at a very light load with a reduced sample.
func BaseLatency(s Spec) float64 {
	s = s.withDefaults()
	s.SamplePackets = min(s.SamplePackets, 500)
	return Run(s, 0.02).AvgLatency
}

// SaturationOptions tunes the saturation-throughput search.
type SaturationOptions struct {
	// LatencyFactor: a load point counts as sustainable while its
	// average latency stays below LatencyFactor × base latency and the
	// whole sample is delivered. The default is 6.
	LatencyFactor float64
	// Resolution is the load-step at which the search stops (default
	// 0.01, i.e. 1% of capacity).
	Resolution float64
	// Lo and Hi bound the search (defaults 0.10 and 1.0).
	Lo, Hi float64
}

func (o SaturationOptions) withDefaults() SaturationOptions {
	if o.LatencyFactor == 0 {
		o.LatencyFactor = 6
	}
	if o.Resolution == 0 {
		o.Resolution = 0.01
	}
	if o.Hi == 0 {
		o.Hi = 1.0
	}
	if o.Lo == 0 {
		o.Lo = 0.10
	}
	return o
}

// SaturationThroughput locates, by bisection, the highest offered load the
// configuration sustains — the "saturates at X% capacity" numbers of the
// paper. It returns the raw load fraction; callers comparing flow-control
// methods apply the spec's BandwidthPenalty as the paper does.
func SaturationThroughput(s Spec, o SaturationOptions) float64 {
	s = s.withDefaults()
	o = o.withDefaults()
	base := BaseLatency(s)
	if base <= 0 {
		panic("experiment: zero base latency — spec cannot deliver packets")
	}
	sustainable := func(load float64) bool {
		r := Run(s, load)
		return !r.Saturated && r.AvgLatency <= o.LatencyFactor*base
	}
	lo, hi := o.Lo, o.Hi
	if !sustainable(lo) {
		return lo
	}
	if sustainable(hi) {
		return hi
	}
	for hi-lo > o.Resolution {
		mid := (lo + hi) / 2
		if sustainable(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
