package experiment

import (
	"context"
	"fmt"

	"frfc/internal/core"
	"frfc/internal/metrics"
	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/stats"
	"frfc/internal/topology"
	"frfc/internal/traffic"
)

// Result reports one simulated (configuration, load) point.
type Result struct {
	Spec string
	// Load is the offered traffic as a fraction of network capacity.
	Load float64
	// EffectiveLoad is Load debited by the configuration's bandwidth
	// penalty, the basis the paper uses when comparing throughputs.
	EffectiveLoad float64

	// AvgLatency is the mean creation-to-last-flit-ejection latency of
	// the sampled packets, in cycles, including source queueing.
	AvgLatency float64
	// AvgQueueDelay is the mean time sampled packets spent waiting in
	// their source queue before injection began; AvgLatency minus
	// AvgQueueDelay is pure network time.
	AvgQueueDelay float64
	// CI95 is the half-width of the 95% confidence interval on
	// AvgLatency.
	CI95 float64
	// MinLatency and MaxLatency bound the sampled latencies; P50, P95 and
	// P99 are exact quantiles of the sample.
	MinLatency, MaxLatency sim.Cycle
	P50, P95, P99          sim.Cycle

	// AcceptedLoad is the delivered throughput during the measurement
	// window as a fraction of capacity.
	AcceptedLoad float64

	// Saturated is set when the run could not deliver its sample within
	// the drain bound, or when accepted throughput fell more than 10%
	// short of offered — either way the offered load exceeds sustainable
	// throughput.
	Saturated bool
	// SampledDelivered / SampleSize report sample completion.
	SampledDelivered, SampleSize int
	// Cycles is the total simulated length of the run.
	Cycles sim.Cycle

	// PoolFullFraction is the fraction of measured cycles the central
	// router's buffer pools were completely full (Section 4.2's
	// occupancy statistic).
	PoolFullFraction float64

	// EagerTransfers and EagerResidencies report the Figure 10 shadow
	// ledger: how many buffer-to-buffer transfers the
	// allocate-at-reservation-time policy would have forced, over how
	// many buffer residencies. Populated only for flit-reservation
	// configurations with TrackEagerTransfers set.
	EagerTransfers, EagerResidencies int64

	// DroppedFlits and LostPackets report fault-injection activity when
	// the configuration sets a DataFaultRate. Under end-to-end retry
	// LostPackets counts loss events per transmission attempt.
	DroppedFlits, LostPackets int64

	// Recovery-layer activity, populated for flit-reservation
	// configurations: end-to-end retransmissions, packets abandoned after
	// exhausting the retry budget, packets whose delivering attempt was a
	// retry, and control flits corrupted (each recovered by link-level
	// retransmission).
	RetriedPackets, AbandonedPackets   int64
	DeliveredAfterRetry, CtrlCorrupted int64
	// AvgRetryLatency is the mean creation-to-delivery latency of sampled
	// packets that needed at least one retry (0 when none did); their
	// latency includes the loss detection, notification round-trip and
	// backoff, so it is reported apart from AvgLatency.
	AvgRetryLatency float64
}

// String renders the result as one sweep row.
func (r Result) String() string {
	sat := ""
	if r.Saturated {
		sat = "  SATURATED"
	}
	return fmt.Sprintf("%-12s load=%5.1f%%  latency=%8.2f ±%5.2f  accepted=%5.1f%%%s",
		r.Spec, r.Load*100, r.AvgLatency, r.CI95, r.AcceptedLoad*100, sat)
}

// Run simulates one spec at one offered load (fraction of capacity) through
// the paper's protocol: warm up until source queues stabilize, tag
// SamplePackets packets, and run until all of them are delivered or the
// drain bound trips.
func Run(s Spec, load float64) Result {
	return RunObserved(s, load, nil)
}

// RunCtx is Run with cooperative cancellation: the simulation polls ctx every
// 1024 cycles and returns ctx.Err() if it fired. Cancellation never perturbs
// a completed run — a nil error means the Result is bit-identical to what
// Run would have produced.
func RunCtx(ctx context.Context, s Spec, load float64) (Result, error) {
	return RunObservedCtx(ctx, s, load, nil)
}

// RunObserved is Run with an observability probe attached to the network for
// the whole run: counters, occupancy gauges and flit traces accumulate in the
// probe, whose registry is stamped with the run length at the end. A nil or
// empty probe makes it identical to Run.
func RunObserved(s Spec, load float64, probe *metrics.Probe) Result {
	r, _ := RunObservedCtx(context.Background(), s, load, probe)
	return r
}

// RunObservedCtx is RunObserved with cooperative cancellation (see RunCtx).
func RunObservedCtx(ctx context.Context, s Spec, load float64, probe *metrics.Probe) (Result, error) {
	s = s.withDefaults()
	if load < 0 || load > 2 {
		panic(fmt.Sprintf("experiment: offered load %.3f out of range", load))
	}

	lat := stats.NewLatencyStats()
	retryLat := stats.NewRetryLatency()
	var queueDelay stats.Welford
	var tput stats.Throughput
	sampledDelivered := 0

	// With end-to-end retry enabled, a loss event does not resolve a
	// packet's fate — the source will re-offer it, and the run must keep
	// waiting for the eventual delivery (or abandonment).
	retryOn := s.Flow == FlitReservation && s.FR.RetryLimit > 0

	hooks := &noc.Hooks{
		PacketDelivered: func(p *noc.Packet, now sim.Cycle) {
			if p.Sampled {
				lat.Record(now - p.CreatedAt)
				retryLat.Record(now-p.CreatedAt, p.Attempts)
				queueDelay.Add(float64(p.InjectedAt - p.CreatedAt))
				sampledDelivered++
			}
		},
		FlitEjected: func(now sim.Cycle) { tput.CountEjected(1) },
		// Without retry, a lost packet's fate is resolved even though it
		// never arrives; without this, any fault would wedge the run
		// waiting for a sample that cannot complete.
		PacketLost: func(p *noc.Packet, now sim.Cycle) {
			if p.Sampled && !retryOn {
				sampledDelivered++
			}
		},
		// With retry, abandonment is the resolution of last resort.
		PacketAbandoned: func(p *noc.Packet, now sim.Cycle) {
			if p.Sampled {
				sampledDelivered++
			}
		},
	}
	net, mesh := NewNetwork(s, hooks)
	if probe.Enabled() {
		if a, ok := net.(metrics.Attachable); ok {
			a.AttachProbe(probe)
		}
	}

	// Per-node generators with independent RNG streams.
	genRoot := sim.NewRNG(s.Seed ^ 0x9E3779B97F4A7C15)
	rate := traffic.PacketRateFor(mesh, load, s.PacketLen)
	gens := make([]*traffic.Generator, mesh.N())
	var nextID noc.PacketID
	idGen := func() noc.PacketID { nextID++; return nextID }
	for id := range gens {
		var proc traffic.Process
		if s.Bernoulli {
			proc = traffic.Bernoulli{Rate: rate}
		} else {
			proc = &traffic.ConstantRate{Rate: rate}
		}
		gens[id] = traffic.NewGenerator(mesh, topology.NodeID(id), s.Pattern, proc, genRoot.Split(), s.PacketLen, idGen)
	}

	// Track one specific input pool of a central router, as Section 4.2
	// does; under dimension-ordered routing on uniform traffic the West
	// input of a central node carries heavy through-traffic.
	center := topology.NodeID((mesh.Radix()/2)*mesh.Radix() + mesh.Radix()/2)
	_, poolCap := net.PoolUsage(center, topology.West)
	occ := stats.NewOccupancy(poolCap)

	now := sim.Cycle(0)
	tagged := 0
	// cancelled polls ctx every 1024 cycles; the check never alters
	// simulation state, so a run that finishes is bit-identical whether or
	// not a cancellable context was supplied.
	cancelled := func() bool {
		return now&1023 == 0 && ctx.Err() != nil
	}
	step := func(tagging, observe bool) {
		for _, g := range gens {
			p := g.Generate(now)
			if p == nil {
				continue
			}
			if tagging && tagged < s.SamplePackets {
				p.Sampled = true
				tagged++
			}
			net.Offer(p)
		}
		net.Tick(now)
		now++
		if observe {
			used, _ := net.PoolUsage(center, topology.West)
			occ.Observe(used)
		}
	}

	// Phase 1: warm-up — a fixed minimum, then until source queues
	// stabilize or the cap is reached.
	stab := stats.NewStabilizer(s.WarmupCycles/4+1, 0.10)
	for now < s.WarmupCycles {
		if cancelled() {
			return Result{}, ctx.Err()
		}
		step(false, false)
		stab.Observe(net.SourceQueueLen())
	}
	for now < s.MaxWarmupCycles && !stab.Stable() {
		if cancelled() {
			return Result{}, ctx.Err()
		}
		step(false, false)
		stab.Observe(net.SourceQueueLen())
	}

	// Phase 2: tag the sample while traffic keeps flowing.
	tput.Open(now)
	sampleStart := now
	for tagged < s.SamplePackets && rate > 0 {
		if cancelled() {
			return Result{}, ctx.Err()
		}
		step(true, true)
	}
	creationCycles := now - sampleStart
	if creationCycles < 1 {
		creationCycles = 1
	}

	// Phase 3: background traffic continues until the whole sample is
	// delivered or the drain bound trips (the saturation signal).
	deadline := now + creationCycles*sim.Cycle(s.DrainFactor) + 10*s.WarmupCycles
	for sampledDelivered < tagged && now < deadline {
		if cancelled() {
			return Result{}, ctx.Err()
		}
		step(false, true)
	}
	tput.Close(now)
	if probe != nil && probe.Reg != nil {
		probe.Reg.Cycles = now
	}

	res := Result{
		Spec:             s.Name,
		Load:             load,
		EffectiveLoad:    load * (1 - s.BandwidthPenalty),
		AvgLatency:       lat.Mean(),
		AvgQueueDelay:    queueDelay.Mean(),
		CI95:             lat.CI95(),
		MinLatency:       lat.Min(),
		MaxLatency:       lat.Max(),
		P50:              lat.Quantile(0.50),
		P95:              lat.Quantile(0.95),
		P99:              lat.Quantile(0.99),
		Saturated:        sampledDelivered < tagged,
		SampledDelivered: sampledDelivered,
		SampleSize:       tagged,
		Cycles:           now,
		PoolFullFraction: occ.FullFraction(),
	}
	res.AcceptedLoad = tput.AcceptedFlitsPerCycle() / (float64(mesh.N()) * mesh.CapacityPerNode())
	if res.AcceptedLoad < 0.90*load {
		res.Saturated = true
	}
	if frNet, ok := net.(*core.Network); ok {
		res.EagerTransfers, res.EagerResidencies = frNet.EagerTransfers()
		res.DroppedFlits, res.LostPackets = frNet.FaultStats()
		rec := frNet.Recovery()
		res.RetriedPackets = rec.Retried
		res.AbandonedPackets = rec.Abandoned
		res.DeliveredAfterRetry = rec.DeliveredAfterRetry
		res.CtrlCorrupted = rec.CtrlCorrupted
		res.AvgRetryLatency = retryLat.Retried().Mean()
	}
	return res, nil
}

// Sweep runs the spec at each offered load and returns one result per point.
func Sweep(s Spec, loads []float64) []Result {
	results := make([]Result, 0, len(loads))
	for _, load := range loads {
		results = append(results, Run(s, load))
	}
	return results
}

// BaseLatency measures the zero-load (contention-free) latency of a spec by
// running it at a very light load with a reduced sample.
func BaseLatency(s Spec) float64 {
	s = s.withDefaults()
	s.SamplePackets = min(s.SamplePackets, 500)
	return Run(s, 0.02).AvgLatency
}

// SaturationOptions tunes the saturation-throughput search.
type SaturationOptions struct {
	// LatencyFactor: a load point counts as sustainable while its
	// average latency stays below LatencyFactor × base latency and the
	// whole sample is delivered. The default is 6.
	LatencyFactor float64
	// Resolution is the load-step at which the search stops (default
	// 0.01, i.e. 1% of capacity).
	Resolution float64
	// Lo and Hi bound the search (defaults 0.10 and 1.0).
	Lo, Hi float64
}

func (o SaturationOptions) withDefaults() SaturationOptions {
	if o.LatencyFactor == 0 {
		o.LatencyFactor = 6
	}
	if o.Resolution == 0 {
		o.Resolution = 0.01
	}
	if o.Hi == 0 {
		o.Hi = 1.0
	}
	if o.Lo == 0 {
		o.Lo = 0.10
	}
	return o
}

// SaturationThroughput locates, by bisection, the highest offered load the
// configuration sustains — the "saturates at X% capacity" numbers of the
// paper. It returns the raw load fraction; callers comparing flow-control
// methods apply the spec's BandwidthPenalty as the paper does.
func SaturationThroughput(s Spec, o SaturationOptions) float64 {
	s = s.withDefaults()
	o = o.withDefaults()
	base := BaseLatency(s)
	if base <= 0 {
		panic("experiment: zero base latency — spec cannot deliver packets")
	}
	sustainable := func(load float64) bool {
		r := Run(s, load)
		return !r.Saturated && r.AvgLatency <= o.LatencyFactor*base
	}
	lo, hi := o.Lo, o.Hi
	if !sustainable(lo) {
		return lo
	}
	if sustainable(hi) {
		return hi
	}
	for hi-lo > o.Resolution {
		mid := (lo + hi) / 2
		if sustainable(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
