package experiment

import (
	"fmt"
	"strings"
)

// SummaryRow is one column of the paper's Table 3 for one configuration:
// base latency, latency at 50% capacity, and saturation throughput.
type SummaryRow struct {
	Spec                string
	BaseLatency         float64
	LatencyAt50         float64
	Throughput          float64 // raw saturation load fraction
	EffectiveThroughput float64 // debited by the bandwidth penalty
}

// Summarize measures one spec's Table 3 row.
func Summarize(s Spec, o SaturationOptions) SummaryRow {
	s = s.withDefaults()
	sat := SaturationThroughput(s, o)
	return SummaryRow{
		Spec:                s.Name,
		BaseLatency:         BaseLatency(s),
		LatencyAt50:         Run(s, 0.50).AvgLatency,
		Throughput:          sat,
		EffectiveThroughput: sat * (1 - s.BandwidthPenalty),
	}
}

// SummarizeAll measures a Table 3 row for every spec.
func SummarizeAll(specs []Spec, o SaturationOptions) []SummaryRow {
	rows := make([]SummaryRow, 0, len(specs))
	for _, s := range specs {
		rows = append(rows, Summarize(s, o))
	}
	return rows
}

// FormatSummary renders rows as a text table in Table 3's layout.
func FormatSummary(title string, rows []SummaryRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %14s %22s %20s\n", "config", "base latency", "latency @50% capacity", "throughput (%cap)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %11.1f cyc %18.1f cyc %13.0f%% (%.0f%% eff)\n",
			r.Spec, r.BaseLatency, r.LatencyAt50, r.Throughput*100, r.EffectiveThroughput*100)
	}
	return b.String()
}

// FormatSweep renders a latency-versus-offered-traffic series as text, one
// line per load point — the textual analog of Figures 5 through 9.
func FormatSweep(results []Result) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "%s\n", r)
	}
	return b.String()
}
