// Package experiment drives the simulator through the paper's measurement
// protocol: warm up until source queues stabilize, tag a sample of packets,
// run until every tagged packet is delivered, and report average latency with
// confidence intervals and accepted throughput. It also names the paper's
// experimental configurations (FR6, FR13, VC8, VC16, VC32 under fast-control
// and leading-control wiring) and locates saturation throughput by search.
package experiment

import (
	"fmt"

	"frfc/internal/circuit"
	"frfc/internal/core"
	"frfc/internal/noc"
	"frfc/internal/overhead"
	"frfc/internal/packetswitch"
	"frfc/internal/routing"
	"frfc/internal/sim"
	"frfc/internal/topology"
	"frfc/internal/traffic"
	"frfc/internal/vcrouter"
	"frfc/internal/wormhole"
)

// Flow selects the flow-control method under test.
type Flow string

// Flow-control methods.
const (
	FlitReservation Flow = "flit-reservation"
	VirtualChannel  Flow = "virtual-channel"
	Wormhole        Flow = "wormhole"
	StoreForward    Flow = "store-and-forward"
	CutThrough      Flow = "cut-through"
	CircuitSwitch   Flow = "circuit"
)

// Wiring selects the paper's two physical configurations.
type Wiring string

// Wirings: FastControl has data wires 4× slower than control/credit wires
// (data links 4 cycles, control and credit links 1 cycle). LeadingControl
// has every wire at 1 cycle, with control flits injected LeadCycles ahead of
// their data flits.
const (
	FastControl    Wiring = "fast-control"
	LeadingControl Wiring = "leading-control"
)

// Spec fully describes one simulated configuration, independent of offered
// load (the load is the sweep variable).
type Spec struct {
	Name string
	Flow Flow

	// FR is consulted when Flow is FlitReservation.
	FR core.Config
	// VC is consulted when Flow is VirtualChannel.
	VC vcrouter.Config
	// WH is consulted when Flow is Wormhole.
	WH wormhole.Config
	// PS is consulted when Flow is StoreForward or CutThrough.
	PS packetswitch.Config
	// CS is consulted when Flow is CircuitSwitch.
	CS circuit.Config

	MeshRadix int
	PacketLen int
	Pattern   traffic.Pattern
	// Bernoulli switches the injection process from the paper's constant
	// rate source to a Bernoulli process.
	Bernoulli bool
	Seed      uint64

	// WarmupCycles is the minimum warm-up; the run then continues until
	// source-queue lengths stabilize, up to MaxWarmupCycles.
	WarmupCycles    sim.Cycle
	MaxWarmupCycles sim.Cycle
	// SamplePackets is how many packets are tagged and measured.
	SamplePackets int
	// DrainFactor bounds how long the run waits for tagged packets, as a
	// multiple of the cycles the sample took to create; a run exceeding
	// it is reported Saturated.
	DrainFactor int

	// BandwidthPenalty is the fraction of data bandwidth this
	// configuration spends on control overhead beyond its comparison
	// baseline; reported throughput is debited by it, as the paper does
	// for flit reservation's arrival-time stamps (~2%).
	BandwidthPenalty float64

	// Routing names the routing algorithm for flit-reservation runs: ""
	// or "xy" (dimension-ordered, the paper's choice), "yx" (transposed
	// dimension order), or "table" (per-node lookup table with up*/down*
	// turn restrictions — the fault-aware option scenarios force). A string
	// rather than a routing.Algorithm so specs stay hashable by value.
	Routing string
	// Faults is the deterministic hard-fault scenario applied to
	// flit-reservation runs: scheduled link and router outages, part of the
	// spec — and therefore of the harness job hash — so scenario results
	// are bit-identical across worker counts.
	Faults []core.FaultEvent
	// Check enables the core runtime invariant checker for the run.
	Check bool

	// ChaosIntensity, when positive, expands a deterministic chaos campaign
	// — composed soft loss, background bit errors, link flaps, mid-run
	// corruption spikes and (at intensity >= 0.75) router kills — and
	// installs it into flit-reservation runs, overwriting Faults and the
	// fault rates (see core.NewChaosPlan). The plan is a pure function of
	// (intensity, horizon, seed), so chaos specs hash stably and replay
	// bit-identically at any worker count. Mutually exclusive with Faults.
	ChaosIntensity float64
	// ChaosHorizon is the cycle window chaos events land in (0 takes the
	// core default); ChaosSeed drives the plan generator.
	ChaosHorizon sim.Cycle
	ChaosSeed    uint64
}

// withDefaults fills unset measurement parameters with values scaled for
// interactive use. The paper-scale protocol (10,000-cycle warm-up, 100,000
// sampled packets) is selected by cmd/paperfigs via PaperScale.
func (s Spec) withDefaults() Spec {
	if s.MeshRadix == 0 {
		s.MeshRadix = 8
	}
	if s.PacketLen == 0 {
		s.PacketLen = 5
	}
	if s.Pattern == nil {
		s.Pattern = traffic.Uniform{}
	}
	if s.Seed == 0 {
		s.Seed = 0xF11725E5
	}
	if s.WarmupCycles == 0 {
		s.WarmupCycles = 2000
	}
	if s.MaxWarmupCycles == 0 {
		s.MaxWarmupCycles = 4 * s.WarmupCycles
	}
	if s.SamplePackets == 0 {
		s.SamplePackets = 3000
	}
	if s.DrainFactor == 0 {
		s.DrainFactor = 8
	}
	return s
}

// Normalized returns the spec with every unset measurement parameter filled
// with its default, the form Run actually executes. Orchestration layers hash
// normalized specs so that a spec and its explicit-default twin share a cache
// key.
func (s Spec) Normalized() Spec { return s.withDefaults() }

// PaperScale returns the spec with the paper's measurement protocol: at
// least 10,000 warm-up cycles and 100,000 sampled packets.
func (s Spec) PaperScale() Spec {
	s.WarmupCycles = 10000
	s.MaxWarmupCycles = 40000
	s.SamplePackets = 100000
	s.DrainFactor = 8
	return s
}

// Scaled returns the spec with measurement effort scaled by the given
// fraction of the paper protocol, for quick sweeps and benchmarks.
func (s Spec) Scaled(samplePackets int, warmup sim.Cycle) Spec {
	s.WarmupCycles = warmup
	s.MaxWarmupCycles = 4 * warmup
	s.SamplePackets = samplePackets
	return s
}

// frBandwidthPenalty computes the Table 2 debit for an FR configuration
// against the storage-matched VC baseline with v_d = v_c.
func frBandwidthPenalty(mesh topology.Mesh, pktLen int, fr core.Config) float64 {
	n := overhead.Log2Ceil(mesh.N())
	frBW := overhead.BandwidthParams{DestBits: n, PacketLen: pktLen, VCs: fr.CtrlVCs, Leads: fr.LeadsPerCtrl, Horizon: int(fr.Horizon)}
	vcBW := overhead.BandwidthParams{DestBits: n, PacketLen: pktLen, VCs: fr.CtrlVCs}
	return overhead.FRBandwidthPenalty(frBW, vcBW, 256)
}

// frConfig builds the paper's FR router parameters for a buffer count and
// control-VC count under the given wiring.
func frConfig(w Wiring, dataBuffers, ctrlVCs int, lead sim.Cycle) core.Config {
	c := core.Config{
		DataBuffers:       dataBuffers,
		CtrlVCs:           ctrlVCs,
		CtrlBufPerVC:      3,
		Horizon:           32,
		LeadsPerCtrl:      1,
		CtrlFlitsPerCycle: 2,
		CtrlLinkLatency:   1,
		CreditLatency:     1,
		LocalLatency:      1,
	}
	switch w {
	case FastControl:
		c.DataLinkLatency = 4
		c.LeadCycles = 0
	case LeadingControl:
		c.DataLinkLatency = 1
		if lead == 0 {
			lead = 1
		}
		c.LeadCycles = lead
	default:
		panic(fmt.Sprintf("experiment: unknown wiring %q", w))
	}
	return c
}

// vcConfig builds the paper's VC router parameters (4 flits per virtual
// channel, the depth the paper found best) under the given wiring.
func vcConfig(w Wiring, vcs int) vcrouter.Config {
	c := vcrouter.Config{
		NumVCs:        vcs,
		BufPerVC:      4,
		CreditLatency: 1,
		LocalLatency:  1,
	}
	switch w {
	case FastControl:
		c.LinkLatency = 4
	case LeadingControl:
		c.LinkLatency = 1
	default:
		panic(fmt.Sprintf("experiment: unknown wiring %q", w))
	}
	return c
}

// FR6 is the paper's 6-buffer flit-reservation configuration
// (storage-matched to VC8): 2 control VCs of 3 buffers, horizon 32.
func FR6(w Wiring, pktLen int) Spec {
	return FRSpec("FR6", w, 6, 2, 1, pktLen)
}

// FR13 is the paper's 13-buffer flit-reservation configuration
// (storage-matched to VC16): 4 control VCs of 3 buffers, horizon 32.
func FR13(w Wiring, pktLen int) Spec {
	return FRSpec("FR13", w, 13, 4, 1, pktLen)
}

// FRLead is FR6 under leading control with an explicit control lead of N
// cycles (Figure 8 sweeps N over 1, 2, 4).
func FRLead(lead sim.Cycle, pktLen int) Spec {
	s := FRSpec(fmt.Sprintf("FR6-lead%d", lead), LeadingControl, 6, 2, lead, pktLen)
	return s
}

// FRSpec builds a flit-reservation spec with explicit buffer and control-VC
// counts, keeping the paper's remaining parameters (3 control buffers per
// VC, horizon 32, d=1, 2 control flits/cycle). Under FastControl wiring the
// lead parameter is ignored.
func FRSpec(name string, w Wiring, buffers, ctrlVCs int, lead sim.Cycle, pktLen int) Spec {
	s := Spec{
		Name:      name,
		Flow:      FlitReservation,
		FR:        frConfig(w, buffers, ctrlVCs, lead),
		PacketLen: pktLen,
	}
	s = s.withDefaults()
	s.BandwidthPenalty = frBandwidthPenalty(topology.NewMesh(s.MeshRadix), pktLen, s.FR)
	return s
}

// VC8 is virtual-channel flow control with 8 buffers per input (2 VCs × 4).
func VC8(w Wiring, pktLen int) Spec { return vcSpec("VC8", w, 2, pktLen) }

// VC16 is virtual-channel flow control with 16 buffers per input (4 VCs × 4).
func VC16(w Wiring, pktLen int) Spec { return vcSpec("VC16", w, 4, pktLen) }

// VC32 is virtual-channel flow control with 32 buffers per input (8 VCs × 4).
func VC32(w Wiring, pktLen int) Spec { return vcSpec("VC32", w, 8, pktLen) }

func vcSpec(name string, w Wiring, vcs, pktLen int) Spec {
	s := Spec{
		Name:      name,
		Flow:      VirtualChannel,
		VC:        vcConfig(w, vcs),
		PacketLen: pktLen,
	}
	return s.withDefaults()
}

// WormholeSpec builds a wormhole baseline spec ([DalSei86], Section 2 of the
// paper) with the given per-input buffer depth under the given wiring.
func WormholeSpec(name string, w Wiring, depth, pktLen int) Spec {
	c := wormhole.Config{BufferDepth: depth, CreditLatency: 1, LocalLatency: 1}
	if w == FastControl {
		c.LinkLatency = 4
	} else {
		c.LinkLatency = 1
	}
	s := Spec{Name: name, Flow: Wormhole, WH: c, PacketLen: pktLen}
	return s.withDefaults()
}

// PacketSwitchSpec builds a store-and-forward or cut-through baseline spec
// (Section 2 of the paper) with the given packet buffers per input.
func PacketSwitchSpec(name string, flow Flow, w Wiring, buffers, pktLen int) Spec {
	mode := packetswitch.StoreAndForward
	if flow == CutThrough {
		mode = packetswitch.CutThrough
	}
	c := packetswitch.Config{Mode: mode, PacketBuffers: buffers, MaxPacketLen: pktLen, CreditLatency: 1, LocalLatency: 1}
	if w == FastControl {
		c.LinkLatency = 4
	} else {
		c.LinkLatency = 1
	}
	s := Spec{Name: name, Flow: flow, PS: c, PacketLen: pktLen}
	return s.withDefaults()
}

// CircuitSpec builds a circuit-switching baseline spec (the substrate of the
// wave-switching hybrid of Section 2): probes on fast control wires reserve
// an exclusive path, then the message streams unbuffered.
func CircuitSpec(name string, w Wiring, pktLen int) Spec {
	c := circuit.Config{ProbeBuffers: 4, CtrlLinkLatency: 1, LocalLatency: 1}
	if w == FastControl {
		c.LinkLatency = 4
	} else {
		c.LinkLatency = 1
	}
	s := Spec{Name: name, Flow: CircuitSwitch, CS: c, PacketLen: pktLen}
	return s.withDefaults()
}

// ResolveRouting maps a spec's routing name onto a core routing algorithm
// for the given mesh; it panics on unknown names. Nil means the core default
// (dimension-ordered XY).
func ResolveRouting(name string, mesh topology.Mesh) routing.Algorithm {
	switch name {
	case "", "xy":
		return nil
	case "yx":
		return routing.YX
	case "table":
		return routing.NewTable(mesh)
	default:
		panic(fmt.Sprintf("experiment: unknown routing %q (want xy, yx or table)", name))
	}
}

// NewNetwork builds the network a spec describes, with the given hooks.
func NewNetwork(s Spec, hooks *noc.Hooks) (noc.Network, topology.Mesh) {
	s = s.withDefaults()
	mesh := topology.NewMesh(s.MeshRadix)
	if s.Flow != FlitReservation && (len(s.Faults) > 0 || s.ChaosIntensity > 0 || (s.Routing != "" && s.Routing != "xy")) {
		// Silently dropping a scenario would report a healthy run as a
		// degraded one's result.
		panic(fmt.Sprintf("experiment: routing/fault/chaos options are implemented for %s only, not %s", FlitReservation, s.Flow))
	}
	// Check is meaningful on every substrate: it arms the latency ledger's
	// strict conservation assertion for all flows, and additionally the
	// in-fabric invariant checker on flit-reservation networks below.
	if s.ChaosIntensity > 0 && len(s.Faults) > 0 {
		panic("experiment: ChaosIntensity and Faults are mutually exclusive — the chaos plan overwrites the fault scenario")
	}
	switch s.Flow {
	case FlitReservation:
		cfg := s.FR
		if alg := ResolveRouting(s.Routing, mesh); alg != nil {
			cfg.Routing = alg
		}
		if len(s.Faults) > 0 {
			cfg.Faults = append([]core.FaultEvent(nil), s.Faults...)
		}
		if s.ChaosIntensity > 0 {
			plan := core.NewChaosPlan(mesh, core.ChaosOptions{
				Intensity: s.ChaosIntensity, Horizon: s.ChaosHorizon, Seed: s.ChaosSeed,
			})
			cfg = plan.Apply(cfg)
		}
		if s.Check {
			cfg.Check = true
		}
		return core.New(mesh, cfg, s.Seed, hooks), mesh
	case VirtualChannel:
		return vcrouter.New(mesh, s.VC, s.Seed, hooks), mesh
	case Wormhole:
		return wormhole.New(mesh, s.WH, s.Seed, hooks), mesh
	case StoreForward, CutThrough:
		return packetswitch.New(mesh, s.PS, s.Seed, hooks), mesh
	case CircuitSwitch:
		return circuit.New(mesh, s.CS, s.Seed, hooks), mesh
	default:
		panic(fmt.Sprintf("experiment: unknown flow control %q", s.Flow))
	}
}
