package experiment

import (
	"context"
	"strings"
	"testing"

	"frfc/internal/core"
	"frfc/internal/topology"
)

// TestReliabilitySweepGracefulDegradation is the hard-fault tolerance
// headline: under scheduled link and router outages with fault-aware table
// routing and end-to-end retry, still-connected traffic is delivered in full,
// disconnected traffic fails fast as unreachable instead of abandoned, the
// watchdog never fires, and once a failed link is repaired the mean latency
// returns to within 10% of its pre-fault level.
func TestReliabilitySweepGracefulDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("reliability sweep is a full-resolution experiment; skipped in -short")
	}
	points := ReliabilitySweep(ReliabilitySweepOptions{Check: true})
	if len(points) != 4 {
		t.Fatalf("expected 4 default scenarios, got %d", len(points))
	}
	byName := map[string]ReliabilityPoint{}
	for _, p := range points {
		t.Logf("%s", p)
		byName[p.Scenario] = p
		if p.Wedged {
			t.Errorf("%s: watchdog fired", p.Scenario)
		}
		if p.Offered == 0 {
			t.Fatalf("%s: offered nothing", p.Scenario)
		}
		if p.Delivered+p.Abandoned+p.Unreachable != p.Offered {
			t.Errorf("%s: packet fates don't conserve: %+v", p.Scenario, p)
		}
		if p.Abandoned != 0 {
			t.Errorf("%s: %d packets abandoned; hard-fault losses must resolve as delivered or unreachable", p.Scenario, p.Abandoned)
		}
	}

	healthy := byName["healthy"]
	if healthy.DeliveredFraction() != 1 || healthy.Unreachable != 0 || healthy.DroppedFlits != 0 {
		t.Errorf("healthy baseline degraded: %+v", healthy)
	}

	// A single failed link never disconnects a mesh: reroute plus retry must
	// keep delivery at 100% with or without the repair.
	for _, name := range []string{"link-down", "link-flap"} {
		p := byName[name]
		if p.Delivered != p.Offered {
			t.Errorf("%s: delivered %d of %d despite the mesh staying connected", name, p.Delivered, p.Offered)
		}
	}

	// The acceptance criterion: after the link comes back, post-recovery mean
	// latency is within 10% of the pre-fault mean.
	flap := byName["link-flap"]
	if flap.LatencyRecovery == 0 {
		t.Fatalf("link-flap recorded no post-recovery deliveries: %+v", flap)
	}
	if flap.LatencyRecovery < 0.9 || flap.LatencyRecovery > 1.1 {
		t.Errorf("link-flap latency did not recover: pre=%.2f post=%.2f ratio=%.3f (want within 10%%)",
			flap.PreFaultLatency, flap.PostRecoveryLatency, flap.LatencyRecovery)
	}

	// Killing a router disconnects its local NI: traffic to and from it fails
	// fast as unreachable, everything between live nodes still arrives.
	rd := byName["router-down"]
	if rd.Unreachable == 0 {
		t.Errorf("router-down reported no unreachable packets: %+v", rd)
	}
	if rd.Delivered+rd.Unreachable != rd.Offered {
		t.Errorf("router-down lost connected-pair packets: %+v", rd)
	}
}

// TestReliabilityCellRejectsInvalidScenario checks that a malformed schedule
// is refused up front instead of corrupting a run.
func TestReliabilityCellRejectsInvalidScenario(t *testing.T) {
	o := ReliabilitySweepOptions{}
	bad := ReliabilityScenario{Name: "bad", Events: []core.FaultEvent{
		{At: 100, Kind: core.LinkDown, A: 3, B: 9}, // not neighbors on a 4x4 mesh
	}}
	if _, err := ReliabilityCell(context.Background(), o, bad); err == nil {
		t.Fatal("expected an error for a non-adjacent link fault")
	} else if !strings.Contains(err.Error(), `"bad"`) {
		t.Errorf("error does not name the scenario: %v", err)
	}
}

// TestReliabilityCellCancellation checks ctx cancellation aborts a cell.
func TestReliabilityCellCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := ReliabilitySweepOptions{}
	_, err := ReliabilityCell(ctx, o, ReliabilityScenario{Name: "healthy"})
	if err == nil {
		t.Fatal("expected ctx.Err() from a cancelled cell")
	}
}

// TestDefaultReliabilityScenariosCoverEveryKind keeps the default rows
// exercising all three fault kinds on valid mesh links.
func TestDefaultReliabilityScenariosCoverEveryKind(t *testing.T) {
	mesh := topology.NewMesh(4)
	kinds := map[core.FaultKind]bool{}
	for _, sc := range DefaultReliabilityScenarios(4) {
		if err := core.ValidateFaults(mesh, sc.Events, true); err != nil {
			t.Errorf("default scenario %q invalid: %v", sc.Name, err)
		}
		for _, ev := range sc.Events {
			kinds[ev.Kind] = true
		}
	}
	for _, k := range []core.FaultKind{core.LinkDown, core.LinkUp, core.RouterDown} {
		if !kinds[k] {
			t.Errorf("default scenarios never exercise fault kind %v", k)
		}
	}
}
