package experiment

import (
	"context"
	"fmt"

	"frfc/internal/core"
	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/stats"
	"frfc/internal/topology"
)

// FaultPoint is one row of a FaultSweep: a flit-reservation network run at
// one data-flit loss rate with one retry policy, until every offered packet's
// fate was resolved.
type FaultPoint struct {
	DataFaultRate float64
	// RetryLimit is the retry budget the row ran with; 0 is the
	// detection-only arm, where a lost packet stays lost.
	RetryLimit int

	Offered      int64
	Delivered    int64
	Abandoned    int64
	LostDetected int64 // loss events at destinations (per attempt under retry)
	DroppedFlits int64

	Retried             int64
	DeliveredAfterRetry int64

	// AvgLatency is the mean creation-to-delivery latency of the packets
	// that made it, in cycles; retries inflate it.
	AvgLatency float64
	// Cycles is how long the run took to resolve everything.
	Cycles sim.Cycle
	// Wedged is set if the no-progress watchdog fired — it never should.
	Wedged bool
}

// DeliveredFraction is the end-to-end delivery probability of the row.
func (p FaultPoint) DeliveredFraction() float64 {
	if p.Offered == 0 {
		return 0
	}
	return float64(p.Delivered) / float64(p.Offered)
}

// String renders the point as one sweep row.
func (p FaultPoint) String() string {
	policy := "detect-only"
	if p.RetryLimit > 0 {
		policy = fmt.Sprintf("retry<=%d", p.RetryLimit)
	}
	return fmt.Sprintf("loss=%5.1f%%  %-11s delivered=%5.1f%%  retried=%4d  abandoned=%3d  latency=%8.2f",
		p.DataFaultRate*100, policy, p.DeliveredFraction()*100, p.Retried, p.Abandoned, p.AvgLatency)
}

// FaultSweepOptions parameterizes a FaultSweep.
type FaultSweepOptions struct {
	// Radix is the mesh radix (default 4).
	Radix int
	// Packets per row (default 400) of PacketLen flits (default 5).
	Packets   int
	PacketLen int
	// RetryLimit is the budget of the retry arm (default 8).
	RetryLimit int
	// Rates are the data-flit loss probabilities swept (default 0–20%).
	Rates []float64
	// Seed drives the network and workload RNGs (default fixed).
	Seed uint64
}

// WithDefaults returns the options with every zero field filled in, so
// orchestration layers can enumerate the sweep's cells exactly as FaultSweep
// would.
func (o FaultSweepOptions) WithDefaults() FaultSweepOptions { return o.withDefaults() }

func (o FaultSweepOptions) withDefaults() FaultSweepOptions {
	if o.Radix == 0 {
		o.Radix = 4
	}
	if o.Packets == 0 {
		o.Packets = 400
	}
	if o.PacketLen == 0 {
		o.PacketLen = 5
	}
	if o.RetryLimit == 0 {
		o.RetryLimit = 8
	}
	if o.Rates == nil {
		o.Rates = []float64{0, 0.01, 0.02, 0.05, 0.10, 0.20}
	}
	if o.Seed == 0 {
		o.Seed = 0xFA017
	}
	return o
}

// FaultSweep measures end-to-end delivery under data-flit loss: for each loss
// rate it runs the FR6 network twice — detection only, and with the
// end-to-end retry layer — resolving every offered packet. It is the
// experiment behind the recovery layer's reliability claim: with retries, the
// delivered fraction stays at 100% through percent-level loss rates, at a
// latency cost the AvgLatency column exposes.
func FaultSweep(o FaultSweepOptions) []FaultPoint {
	o = o.withDefaults()
	points := make([]FaultPoint, 0, 2*len(o.Rates))
	for _, rate := range o.Rates {
		for _, retryLimit := range []int{0, o.RetryLimit} {
			pt, _ := FaultCell(context.Background(), o, rate, retryLimit)
			points = append(points, pt)
		}
	}
	return points
}

// FaultCell runs one (loss rate, retry policy) cell of a FaultSweep to full
// resolution. Each cell owns its own network and RNG seeded only from the
// options, so cells are independent and may execute concurrently; ctx is
// polled every 1024 cycles, and a cancelled cell returns ctx.Err() with a
// zero point.
func FaultCell(ctx context.Context, o FaultSweepOptions, rate float64, retryLimit int) (FaultPoint, error) {
	o = o.withDefaults()
	cfg := frConfig(FastControl, 6, 2, 0)
	cfg.DataFaultRate = rate
	cfg.RetryLimit = retryLimit
	cfg.WatchdogCycles = 50000

	mesh := topology.NewMesh(o.Radix)
	pt := FaultPoint{DataFaultRate: rate, RetryLimit: retryLimit}
	lat := stats.NewLatencyStats()
	hooks := &noc.Hooks{
		PacketDelivered: func(p *noc.Packet, now sim.Cycle) { lat.Record(now - p.CreatedAt) },
		Wedged:          func(now sim.Cycle, snapshot string) { pt.Wedged = true },
	}
	net := core.New(mesh, cfg, o.Seed, hooks)

	rng := sim.NewRNG(o.Seed ^ 0x5DEECE66D)
	now := sim.Cycle(0)
	cancelled := func() bool {
		return now&1023 == 0 && ctx.Err() != nil
	}
	for i := 0; i < o.Packets; i++ {
		if cancelled() {
			return FaultPoint{}, ctx.Err()
		}
		src := topology.NodeID(rng.Intn(mesh.N()))
		dst := topology.NodeID(rng.Intn(mesh.N() - 1))
		if dst >= src {
			dst++
		}
		net.Offer(&noc.Packet{ID: noc.PacketID(i + 1), Src: src, Dst: dst, Len: o.PacketLen, CreatedAt: now})
		for j := 0; j < 3; j++ {
			net.Tick(now)
			now++
		}
	}
	// Resolve every packet; the bound is generous because exponential
	// backoff at high loss rates can stretch the tail.
	limit := now + 5000000
	for net.InFlightPackets() > 0 && now < limit {
		if cancelled() {
			return FaultPoint{}, ctx.Err()
		}
		net.Tick(now)
		now++
	}

	rec := net.Recovery()
	pt.Offered = rec.Offered
	pt.Delivered = rec.Delivered
	pt.Abandoned = rec.Abandoned
	pt.LostDetected = rec.LostDetected
	pt.DroppedFlits = rec.DroppedFlits
	pt.Retried = rec.Retried
	pt.DeliveredAfterRetry = rec.DeliveredAfterRetry
	pt.AvgLatency = lat.Mean()
	pt.Cycles = now
	return pt, nil
}
