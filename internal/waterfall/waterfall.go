// Package waterfall attributes every sampled packet's end-to-end latency to
// named lifecycle stages — source queueing, reservation/setup wait,
// arbitration, credit/buffer stalls, reservation-scheduled residence, link
// traversal, and ejection drain — and folds the per-packet stage vectors into
// per-stage latency histograms with batch-means confidence intervals.
//
// The ledger follows the repo's probe idiom: a nil *Ledger is valid and every
// method on it is a no-op, so instrumented hot paths cost one nil test (plus
// the packet's Sampled check at the call site) when collection is off, with
// zero allocation. Attribution is conservative by construction: the stage
// components of a delivered packet sum exactly to its measured latency
// (delivered − created), a property the Strict mode — armed from the spec's
// Check flag — asserts per packet.
//
// How the telescoping works: the head flit's timeline is cut at instants the
// fabrics already pass through (injection start, first wire entry, per-hop
// arrival and departure, ejection, delivery). Each interval between cuts is
// assigned wholesale to one stage, except per-hop residence, which is split
// between Arb/Stall (per-cycle blocked marks recorded by the router while the
// head waits) with the unmarked remainder — time queued behind a predecessor
// packet — falling to Stall. Tail-flit serialization after the head ejects is
// the Drain stage, so only the head flit is ever tracked.
package waterfall

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"frfc/internal/sim"
	"frfc/internal/stats"
	"frfc/internal/trace"
)

// Stage names one latency component. The seven stages partition a packet's
// creation-to-delivery interval.
type Stage uint8

// The stages, in timeline order.
const (
	// StageQueue is source queueing: packet creation to the cycle its
	// (final) injection attempt started. Failed earlier transmission
	// attempts of a retried packet land here too — everything before the
	// delivering attempt took over counts as waiting at the source.
	StageQueue Stage = iota
	// StageReserve is injection setup: injection start to the head flit
	// entering the injection wire. For flit reservation this is the wait
	// for a feasible reserved departure slot; for circuit switching the
	// probe round-trip that sets the path up; for the buffered baselines
	// the wait for source credit.
	StageReserve
	// StageArb is cycles the head spent pipeline-bound or losing switch
	// arbitration inside routers.
	StageArb
	// StageStall is cycles the head spent blocked on credits, free
	// buffers, store-and-forward assembly, or queued behind a predecessor
	// packet.
	StageStall
	// StageSched is flit reservation's buffered residence: cycles between
	// a data flit's arrival and its pre-reserved departure slot. The
	// paper's bypass claim shows up as this stage collapsing toward zero.
	StageSched
	// StageLink is wire time: cycles the head spent on injection, router
	// and ejection links.
	StageLink
	// StageDrain is tail serialization: head ejection to delivery of the
	// packet's last flit.
	StageDrain

	// NumStages is the number of stages.
	NumStages = 7
)

var stageNames = [NumStages]string{"queue", "reserve", "arb", "stall", "sched", "link", "drain"}

// String returns the stage's short name as used in exports.
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("Stage(%d)", uint8(s))
}

// StageNames lists the stage names in timeline order, indexable by Stage.
func StageNames() [NumStages]string { return stageNames }

// state is the in-flight ledger entry for one sampled packet's head flit.
type state struct {
	created    sim.Cycle
	injStart   sim.Cycle
	lastDepart sim.Cycle // cycle the head last entered a wire
	arriveAt   sim.Cycle // arrival cycle at the current router
	headEject  sim.Cycle
	blockedAt  sim.Cycle // last cycle a blocked mark landed (one per cycle)
	stages     [NumStages]int64
	marks      int64 // blocked marks since the current arrival
	attempt    uint8
	started    bool // InjectStart seen for this attempt
	onWire     bool // HeadWire seen (head has left the source NI)
	inRouter   bool // between Arrive and Depart
	ejected    bool // head reached the sink
}

// Ledger tracks sampled packets in flight and accumulates delivered packets'
// stage vectors. All methods are no-ops on a nil ledger. Call sites must gate
// on the packet's Sampled flag — the ledger itself never sees unsampled
// traffic, which keeps its map small and the enabled-path cost proportional
// to the sample, not the load.
type Ledger struct {
	// Strict asserts conservation per delivered packet (stage components
	// sum exactly to measured latency) and non-negative stall residuals,
	// panicking on violation. Armed from the spec's Check flag.
	Strict bool
	// Tr, when set, receives one KindStage event per stage per delivered
	// packet, which WriteChrome renders as stacked stage sub-spans.
	Tr *trace.Tracer

	pkts map[uint64]*state

	lat     [NumStages]*stats.LatencyStats
	bm      [NumStages]stats.BatchMeans
	totals  [NumStages]int64
	total   int64 // Σ measured latency over delivered packets
	packets int64
}

// New returns an empty ledger.
func New() *Ledger {
	l := &Ledger{pkts: make(map[uint64]*state)}
	for i := range l.lat {
		l.lat[i] = stats.NewLatencyStats()
	}
	return l
}

// InjectStart records packet pid beginning injection attempt attempt at cycle
// now: the Queue stage closes at now. Re-offers within one attempt are
// idempotent (the first call wins); a new attempt resets the entry, folding
// the failed attempt's time back into Queue.
func (l *Ledger) InjectStart(pid uint64, attempt uint8, created, now sim.Cycle) {
	if l == nil {
		return
	}
	st := l.pkts[pid]
	if st == nil {
		st = &state{}
		l.pkts[pid] = st
	} else if st.started && st.attempt == attempt {
		return
	}
	*st = state{created: created, injStart: now, attempt: attempt, started: true, blockedAt: -1}
	st.stages[StageQueue] = int64(now - created)
}

// HeadWire records the head flit entering the injection wire: the Reserve
// stage closes at now.
func (l *Ledger) HeadWire(pid uint64, attempt uint8, now sim.Cycle) {
	if l == nil {
		return
	}
	st := l.pkts[pid]
	if st == nil || !st.started || st.attempt != attempt || st.onWire {
		return
	}
	st.stages[StageReserve] = int64(now - st.injStart)
	st.lastDepart = now
	st.onWire = true
}

// Arrive records the head flit reaching a router input at cycle now: the wire
// hop since the last departure is charged to Link.
func (l *Ledger) Arrive(pid uint64, attempt uint8, now sim.Cycle) {
	if l == nil {
		return
	}
	st := l.pkts[pid]
	if st == nil || !st.onWire || st.attempt != attempt || st.inRouter {
		return
	}
	st.stages[StageLink] += int64(now - st.lastDepart)
	st.arriveAt = now
	st.marks = 0
	st.blockedAt = -1
	st.inRouter = true
}

// Blocked charges one cycle of the head's current router residence to stage
// (StageArb or StageStall). At most one mark lands per cycle per packet; the
// first caller wins. Residence cycles never marked are charged to Stall at
// departure.
func (l *Ledger) Blocked(pid uint64, stage Stage, now sim.Cycle) {
	if l == nil {
		return
	}
	st := l.pkts[pid]
	if st == nil || !st.inRouter || st.blockedAt == now {
		return
	}
	st.blockedAt = now
	st.stages[stage]++
	st.marks++
}

// Depart records the head flit leaving its current router onto an output wire
// at cycle now. When sched is true (flit reservation) the whole residence is
// charged to Sched — buffered time waiting for the pre-reserved departure
// slot; a bypassed flit departs the cycle it arrived and contributes zero.
// Otherwise the residence not covered by Blocked marks is charged to Stall.
func (l *Ledger) Depart(pid uint64, attempt uint8, now sim.Cycle, sched bool) {
	if l == nil {
		return
	}
	st := l.pkts[pid]
	if st == nil || !st.inRouter || st.attempt != attempt {
		return
	}
	residence := int64(now - st.arriveAt)
	if sched {
		st.stages[StageSched] += residence
	} else {
		drift := residence - st.marks
		if drift < 0 {
			if l.Strict {
				panic(fmt.Sprintf("waterfall: packet %d over-attributed at departure: residence %d < %d marks", pid, residence, st.marks))
			}
			drift = 0 // keep the vector sane; conservation re-checked at delivery
		}
		st.stages[StageStall] += drift
	}
	st.lastDepart = now
	st.inRouter = false
}

// Eject records the head flit reaching the destination sink at cycle now: the
// final wire hop is charged to Link and the Drain stage opens.
func (l *Ledger) Eject(pid uint64, attempt uint8, now sim.Cycle) {
	if l == nil {
		return
	}
	st := l.pkts[pid]
	if st == nil || !st.onWire || st.attempt != attempt || st.ejected {
		return
	}
	st.stages[StageLink] += int64(now - st.lastDepart)
	st.headEject = now
	st.inRouter = false
	st.ejected = true
}

// Delivered closes packet pid's ledger entry at delivery cycle now, asserting
// conservation under Strict, folding the stage vector into the aggregates,
// and emitting stage trace events when a tracer is attached. Unknown packets
// (never tracked, or already closed) are ignored.
func (l *Ledger) Delivered(pid uint64, now sim.Cycle) {
	if l == nil {
		return
	}
	st := l.pkts[pid]
	if st == nil {
		return
	}
	delete(l.pkts, pid)
	if !st.ejected {
		if l.Strict {
			panic(fmt.Sprintf("waterfall: packet %d delivered at cycle %d without a head-flit ejection record", pid, now))
		}
		return
	}
	st.stages[StageDrain] = int64(now - st.headEject)
	total := int64(now - st.created)
	var sum int64
	for _, c := range st.stages {
		sum += c
	}
	if l.Strict && sum != total {
		panic(fmt.Sprintf("waterfall: packet %d stage components sum to %d, measured latency is %d (stages %v)", pid, sum, total, st.stages))
	}
	for i, c := range st.stages {
		l.lat[i].Record(sim.Cycle(c))
		l.bm[i].Add(float64(c))
		l.totals[i] += c
	}
	l.total += total
	l.packets++
	if l.Tr != nil {
		for i, c := range st.stages {
			l.Tr.Record(trace.Event{
				Cycle: st.created, Kind: trace.KindStage, Node: -1, Port: -1,
				Packet: pid, Seq: int32(i), Arg: c, Attempt: st.attempt,
			})
		}
	}
}

// Drop discards packet pid's ledger entry: the packet was abandoned, lost
// without retry, or failed fast as unreachable, so no latency was measured.
func (l *Ledger) Drop(pid uint64) {
	if l == nil {
		return
	}
	delete(l.pkts, pid)
}

// InFlight reports how many tracked packets have not yet closed.
func (l *Ledger) InFlight() int {
	if l == nil {
		return 0
	}
	return len(l.pkts)
}

// Packets reports how many delivered packets were folded in.
func (l *Ledger) Packets() int64 {
	if l == nil {
		return 0
	}
	return l.packets
}

// TotalCycles reports the summed measured latency of folded packets; it
// equals the sum of StageTotals exactly.
func (l *Ledger) TotalCycles() int64 {
	if l == nil {
		return 0
	}
	return l.total
}

// StageTotals reports the summed cycles per stage over folded packets.
func (l *Ledger) StageTotals() [NumStages]int64 {
	if l == nil {
		return [NumStages]int64{}
	}
	return l.totals
}

// StageStats returns the per-stage latency accumulator (histogram, mean,
// min/max), or nil on a nil ledger.
func (l *Ledger) StageStats(s Stage) *stats.LatencyStats {
	if l == nil {
		return nil
	}
	return l.lat[s]
}

// StageCI95 reports the batch-means 95% half-width for one stage's mean,
// honest under the strong serial correlation of consecutive packets.
func (l *Ledger) StageCI95(s Stage) float64 {
	if l == nil {
		return 0
	}
	half, _ := l.bm[s].CI95(0)
	return half
}

// StageView is one stage's row in a waterfall view.
type StageView struct {
	Stage  string  `json:"stage"`
	Cycles int64   `json:"cycles"`
	Mean   float64 `json:"mean"`
	Share  float64 `json:"share"`
}

// View is a plain snapshot of a waterfall's aggregates, safe to serialize
// and to merge across runs by summing the integer fields.
type View struct {
	Packets     int64       `json:"packets"`
	TotalCycles int64       `json:"total_cycles"`
	MeanLatency float64     `json:"mean_latency"`
	Stages      []StageView `json:"stages"`
}

// ViewFromTotals builds a View from raw integer aggregates (e.g. summed
// across the jobs of a campaign).
func ViewFromTotals(packets, totalCycles int64, totals [NumStages]int64) View {
	v := View{Packets: packets, TotalCycles: totalCycles, Stages: make([]StageView, 0, NumStages)}
	if packets > 0 {
		v.MeanLatency = float64(totalCycles) / float64(packets)
	}
	for i, c := range totals {
		sv := StageView{Stage: stageNames[i], Cycles: c}
		if packets > 0 {
			sv.Mean = float64(c) / float64(packets)
		}
		if totalCycles > 0 {
			sv.Share = float64(c) / float64(totalCycles)
		}
		v.Stages = append(v.Stages, sv)
	}
	return v
}

// View snapshots the ledger's aggregates.
func (l *Ledger) View() View {
	if l == nil {
		return ViewFromTotals(0, 0, [NumStages]int64{})
	}
	return ViewFromTotals(l.packets, l.total, l.totals)
}

// Summary renders a one-line breakdown: per-stage mean cycles with shares,
// summing to the mean measured latency.
func (l *Ledger) Summary() string {
	v := l.View()
	var b strings.Builder
	fmt.Fprintf(&b, "waterfall: %d packets, mean %.1f cycles = ", v.Packets, v.MeanLatency)
	for i, sv := range v.Stages {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%s %.2f (%.0f%%)", sv.Stage, sv.Mean, sv.Share*100)
	}
	return b.String()
}

// WriteJSON writes the full per-stage breakdown — totals, means, batch-means
// CIs and histogram quantiles — as one JSON object.
func (l *Ledger) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	v := l.View()
	fmt.Fprintf(bw, "{\n  \"packets\": %d,\n  \"total_cycles\": %d,\n  \"mean_latency\": %s,\n  \"stages\": [\n",
		v.Packets, v.TotalCycles, jsonFloat(v.MeanLatency))
	for i, sv := range v.Stages {
		s := Stage(i)
		var ci, p50, p95, p99 float64
		var min, max sim.Cycle
		if l != nil {
			ci = l.StageCI95(s)
			ls := l.lat[i]
			p50, p95, p99 = float64(ls.Quantile(0.50)), float64(ls.Quantile(0.95)), float64(ls.Quantile(0.99))
			min, max = ls.Min(), ls.Max()
		}
		fmt.Fprintf(bw, "    {\"stage\": %q, \"cycles\": %d, \"mean\": %s, \"share\": %s, \"ci95\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s, \"min\": %d, \"max\": %d}",
			sv.Stage, sv.Cycles, jsonFloat(sv.Mean), jsonFloat(sv.Share), jsonFloat(ci),
			jsonFloat(p50), jsonFloat(p95), jsonFloat(p99), int64(min), int64(max))
		if i < len(v.Stages)-1 {
			bw.WriteByte(',')
		}
		bw.WriteByte('\n')
	}
	bw.WriteString("  ]\n}\n")
	return bw.Flush()
}

// WriteCSV writes one row per stage: stage, packets, cycles, mean, share,
// ci95, p50, p95, p99, min, max.
func (l *Ledger) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"stage", "packets", "cycles", "mean", "share", "ci95", "p50", "p95", "p99", "min", "max"}); err != nil {
		return err
	}
	v := l.View()
	for i, sv := range v.Stages {
		s := Stage(i)
		var ci float64
		var p50, p95, p99, min, max sim.Cycle
		if l != nil {
			ci = l.StageCI95(s)
			ls := l.lat[i]
			p50, p95, p99 = ls.Quantile(0.50), ls.Quantile(0.95), ls.Quantile(0.99)
			min, max = ls.Min(), ls.Max()
		}
		rec := []string{
			sv.Stage,
			strconv.FormatInt(v.Packets, 10),
			strconv.FormatInt(sv.Cycles, 10),
			strconv.FormatFloat(sv.Mean, 'g', 8, 64),
			strconv.FormatFloat(sv.Share, 'g', 6, 64),
			strconv.FormatFloat(ci, 'g', 6, 64),
			strconv.FormatInt(int64(p50), 10),
			strconv.FormatInt(int64(p95), 10),
			strconv.FormatInt(int64(p99), 10),
			strconv.FormatInt(int64(min), 10),
			strconv.FormatInt(int64(max), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePrometheus writes the view in Prometheus text exposition format under
// the frfc_latency_stage_* namespace.
func (v View) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("# HELP frfc_waterfall_packets Delivered packets folded into the latency waterfall.\n# TYPE frfc_waterfall_packets gauge\n")
	fmt.Fprintf(bw, "frfc_waterfall_packets %d\n", v.Packets)
	bw.WriteString("# HELP frfc_latency_stage_cycles_total Summed cycles attributed to each latency stage.\n# TYPE frfc_latency_stage_cycles_total gauge\n")
	for _, sv := range v.Stages {
		fmt.Fprintf(bw, "frfc_latency_stage_cycles_total{stage=%q} %d\n", sv.Stage, sv.Cycles)
	}
	bw.WriteString("# HELP frfc_latency_stage_mean Mean cycles per packet attributed to each latency stage.\n# TYPE frfc_latency_stage_mean gauge\n")
	for _, sv := range v.Stages {
		fmt.Fprintf(bw, "frfc_latency_stage_mean{stage=%q} %s\n", sv.Stage, promFloat(sv.Mean))
	}
	return bw.Flush()
}

// jsonFloat renders a float for JSON without exponent surprises for the
// common small values.
func jsonFloat(f float64) string { return strconv.FormatFloat(f, 'g', 8, 64) }

func promFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
