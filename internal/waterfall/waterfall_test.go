package waterfall

import (
	"bytes"
	"strings"
	"testing"

	"frfc/internal/trace"
)

func TestStageNamesMatchTraceSpans(t *testing.T) {
	// The tracer renders KindStage events by stage index without importing
	// this package; the two name tables must stay in lockstep.
	for s := Stage(0); s < NumStages; s++ {
		if got := trace.StageSpanName(int32(s)); got != s.String() {
			t.Errorf("stage %d: waterfall name %q, trace span name %q", s, s, got)
		}
	}
	if Stage(NumStages).String() == "" {
		t.Error("out-of-range stage must still render")
	}
}

func TestNilLedgerIsSafe(t *testing.T) {
	var l *Ledger
	l.InjectStart(1, 0, 0, 5)
	l.HeadWire(1, 0, 6)
	l.Arrive(1, 0, 8)
	l.Blocked(1, StageStall, 8)
	l.Depart(1, 0, 9, false)
	l.Eject(1, 0, 12)
	l.Delivered(1, 14)
	l.Drop(1)
	if l.Packets() != 0 || l.TotalCycles() != 0 || l.InFlight() != 0 {
		t.Error("nil ledger accumulated state")
	}
}

// TestLifecycleDecomposition hand-computes one packet's ledger: created 0,
// injection starts at 3 (queue 3), head on the wire at 5 (reserve 2), one
// router visited 8..12 with one arb mark and one stall mark (drift 2 more to
// stall), ejected at 16, delivered at 19.
func TestLifecycleDecomposition(t *testing.T) {
	l := New()
	l.Strict = true
	l.InjectStart(7, 0, 0, 3)
	l.HeadWire(7, 0, 5)
	l.Arrive(7, 0, 8) // link += 3
	l.Blocked(7, StageArb, 8)
	l.Blocked(7, StageArb, 8) // same-cycle duplicate must not double-charge
	l.Blocked(7, StageStall, 9)
	l.Depart(7, 0, 12, false) // residence 4, marks 2, drift 2 -> stall
	l.Eject(7, 0, 16)         // link += 4
	if l.InFlight() != 1 {
		t.Fatalf("in flight = %d, want 1", l.InFlight())
	}
	l.Delivered(7, 19)
	if l.Packets() != 1 {
		t.Fatalf("packets = %d, want 1", l.Packets())
	}
	want := [NumStages]int64{
		StageQueue:   3,
		StageReserve: 2,
		StageArb:     1,
		StageStall:   3, // 1 mark + 2 drift
		StageLink:    7,
		StageDrain:   3,
	}
	if got := l.StageTotals(); got != want {
		t.Fatalf("stage totals %v, want %v", got, want)
	}
	if l.TotalCycles() != 19 {
		t.Fatalf("total = %d, want 19", l.TotalCycles())
	}
}

// TestSchedResidence covers the flit-reservation attribution: the router
// charges its whole residence to sched at departure, and a zero-residence
// bypass charges nothing.
func TestSchedResidence(t *testing.T) {
	l := New()
	l.Strict = true
	l.InjectStart(1, 0, 0, 0)
	l.HeadWire(1, 0, 1)
	l.Arrive(1, 0, 5)
	l.Depart(1, 0, 5, true) // bypass: zero residence
	l.Arrive(1, 0, 9)
	l.Depart(1, 0, 11, true) // scheduled: 2 cycles wholesale
	l.Eject(1, 0, 14)
	l.Delivered(1, 14)
	st := l.StageTotals()
	if st[StageSched] != 2 {
		t.Errorf("sched = %d, want 2", st[StageSched])
	}
	if st[StageLink] != 11 {
		t.Errorf("link = %d, want 11", st[StageLink])
	}
}

// TestRetryResetFoldsIntoQueue models an end-to-end retry: the second
// attempt's InjectStart discards the first attempt's partial progress and
// re-bases everything since creation as queue time.
func TestRetryResetFoldsIntoQueue(t *testing.T) {
	l := New()
	l.Strict = true
	l.InjectStart(9, 0, 0, 2)
	l.HeadWire(9, 0, 3)
	l.Arrive(9, 0, 6)
	l.Blocked(9, StageStall, 6)
	// The attempt dies in flight; the source re-injects attempt 1 at 40.
	l.InjectStart(9, 1, 0, 40)
	l.HeadWire(9, 1, 41)
	l.Arrive(9, 1, 44)
	l.Depart(9, 1, 45, false)
	l.Eject(9, 1, 48)
	l.Delivered(9, 50)
	want := [NumStages]int64{
		StageQueue:   40,
		StageReserve: 1,
		StageStall:   1, // departure drift: residence 1, no marks
		StageLink:    6, // 41->44 and 45->48
		StageDrain:   2,
	}
	if got := l.StageTotals(); got != want {
		t.Fatalf("stage totals %v, want %v", got, want)
	}
	// Re-delivery of the same attempt must be idempotent via deletion.
	if l.InFlight() != 0 {
		t.Fatalf("in flight = %d, want 0", l.InFlight())
	}
}

func TestInjectStartIdempotentPerAttempt(t *testing.T) {
	l := New()
	l.InjectStart(3, 0, 0, 5)
	l.InjectStart(3, 0, 0, 9) // duplicate for the same attempt: first wins
	l.HeadWire(3, 0, 6)
	l.Eject(3, 0, 10)
	l.Delivered(3, 12)
	st := l.StageTotals()
	if st[StageQueue] != 5 || st[StageReserve] != 1 {
		t.Fatalf("queue=%d reserve=%d, want 5 and 1", st[StageQueue], st[StageReserve])
	}
}

func TestDropForgetsPacket(t *testing.T) {
	l := New()
	l.InjectStart(4, 0, 0, 1)
	l.Drop(4)
	if l.InFlight() != 0 || l.Packets() != 0 {
		t.Error("dropped packet still on the books")
	}
}

func TestStrictPanicsOnOvermark(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic when marks exceed residence under Strict")
		}
	}()
	l := New()
	l.Strict = true
	l.InjectStart(5, 0, 0, 0)
	l.HeadWire(5, 0, 1)
	l.Arrive(5, 0, 3)
	l.Blocked(5, StageStall, 3)
	l.Blocked(5, StageStall, 4)
	l.Depart(5, 0, 4, false) // residence 1, marks 2
}

func TestViewAndWriters(t *testing.T) {
	l := New()
	l.InjectStart(1, 0, 0, 2)
	l.HeadWire(1, 0, 4)
	l.Eject(1, 0, 10)
	l.Delivered(1, 12)
	v := l.View()
	if v.Packets != 1 || v.TotalCycles != 12 {
		t.Fatalf("view %+v", v)
	}
	if len(v.Stages) != int(NumStages) {
		t.Fatalf("view has %d stages", len(v.Stages))
	}
	if s := l.Summary(); !strings.Contains(s, "queue") || !strings.Contains(s, "drain") {
		t.Errorf("summary %q missing stages", s)
	}
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"packets": 1`, `"stages"`, `"queue"`, `"ci95"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("JSON missing %s:\n%s", key, buf.String())
		}
	}
	buf.Reset()
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != int(NumStages)+1 {
		t.Errorf("CSV has %d lines, want %d", lines, int(NumStages)+1)
	}
	buf.Reset()
	v.WritePrometheus(&buf)
	for _, key := range []string{"frfc_waterfall_packets 1", `frfc_latency_stage_cycles_total{stage="queue"}`, "frfc_latency_stage_mean"} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("prometheus output missing %s:\n%s", key, buf.String())
		}
	}
}

func TestViewFromTotals(t *testing.T) {
	var totals [NumStages]int64
	totals[StageLink] = 30
	totals[StageDrain] = 10
	v := ViewFromTotals(4, 40, totals)
	if v.MeanLatency != 10 {
		t.Errorf("mean %v, want 10", v.MeanLatency)
	}
	for _, sv := range v.Stages {
		if sv.Stage == "link" && sv.Share != 0.75 {
			t.Errorf("link share %v, want 0.75", sv.Share)
		}
	}
}
