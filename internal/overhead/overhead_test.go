package overhead

import (
	"math"
	"testing"
)

func TestLog2Ceil(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {6, 3}, {8, 3},
		{9, 4}, {12, 4}, {13, 4}, {16, 4}, {32, 5}, {33, 6}, {64, 6},
	}
	for _, c := range cases {
		if got := Log2Ceil(c.n); got != c.want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestLog2CeilPanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log2Ceil(0) did not panic")
		}
	}()
	Log2Ceil(0)
}

// vcParams returns the VC column inputs of Table 1 for b_d buffers and v_d
// virtual channels (f=256, t=2, 5 ports).
func vcParams(bd, vd int) VCParams {
	return VCParams{FlitBits: 256, TypeBits: 2, DataBuffers: bd, VCs: vd, Ports: 5}
}

// frParams returns the FR column inputs of Table 1 (f=256, t=2, d=1, s=32).
func frParams(bd, bc, vc int) FRParams {
	return FRParams{FlitBits: 256, TypeBits: 2, DataBuffers: bd, CtrlBuffers: bc, CtrlVCs: vc, Leads: 1, Horizon: 32, Ports: 5}
}

// TestTable1VCColumns checks every cell of Table 1's virtual-channel columns.
func TestTable1VCColumns(t *testing.T) {
	cases := []struct {
		name                string
		bd, vd              int
		dataBufs, qPtrs     int
		outRes, bitsPerNode int
		flitsPerInput       float64
	}{
		{"VC8", 8, 2, 10360, 60, 32, 10452, 8.17},
		{"VC16", 16, 4, 20800, 160, 80, 21040, 16.44},
		{"VC32", 32, 8, 41760, 400, 192, 42352, 33.09},
	}
	for _, c := range cases {
		b := VCStorage(vcParams(c.bd, c.vd))
		if b.DataBuffers != c.dataBufs {
			t.Errorf("%s data buffers = %d, want %d", c.name, b.DataBuffers, c.dataBufs)
		}
		if b.QueuePointers != c.qPtrs {
			t.Errorf("%s queue pointers = %d, want %d", c.name, b.QueuePointers, c.qPtrs)
		}
		if b.OutputResTable != c.outRes {
			t.Errorf("%s output res table = %d, want %d", c.name, b.OutputResTable, c.outRes)
		}
		if got := b.BitsPerNode(); got != c.bitsPerNode {
			t.Errorf("%s bits/node = %d, want %d", c.name, got, c.bitsPerNode)
		}
		if got := b.FlitsPerInput(256, 5); math.Abs(got-c.flitsPerInput) > 0.005 {
			t.Errorf("%s flits/input = %.2f, want %.2f", c.name, got, c.flitsPerInput)
		}
	}
}

// TestTable1FRColumns checks Table 1's flit-reservation columns. FR6 matches
// the paper cell for cell. For FR13, the paper's input-reservation-table cell
// (1980) contradicts its own formula, which gives 2620; we assert the
// formula's value and the consequent totals.
func TestTable1FRColumns(t *testing.T) {
	fr6 := FRStorage(frParams(6, 6, 2))
	if fr6.DataBuffers != 7680 {
		t.Errorf("FR6 data buffers = %d, want 7680", fr6.DataBuffers)
	}
	if fr6.CtrlBuffers != 240 {
		t.Errorf("FR6 control buffers = %d, want 240", fr6.CtrlBuffers)
	}
	if fr6.QueuePointers != 60 {
		t.Errorf("FR6 queue pointers = %d, want 60", fr6.QueuePointers)
	}
	if fr6.OutputResTable != 512 {
		t.Errorf("FR6 output res table = %d, want 512", fr6.OutputResTable)
	}
	if fr6.InputResTable != 2270 {
		t.Errorf("FR6 input res table = %d, want 2270", fr6.InputResTable)
	}
	if got := fr6.BitsPerNode(); got != 10762 {
		t.Errorf("FR6 bits/node = %d, want 10762", got)
	}
	if got := fr6.FlitsPerInput(256, 5); math.Abs(got-8.40) > 0.01 {
		t.Errorf("FR6 flits/input = %.2f, want 8.40", got)
	}

	fr13 := FRStorage(frParams(13, 12, 4))
	if fr13.DataBuffers != 16640 {
		t.Errorf("FR13 data buffers = %d, want 16640", fr13.DataBuffers)
	}
	if fr13.CtrlBuffers != 540 {
		t.Errorf("FR13 control buffers = %d, want 540", fr13.CtrlBuffers)
	}
	if fr13.QueuePointers != 160 {
		t.Errorf("FR13 queue pointers = %d, want 160", fr13.QueuePointers)
	}
	if fr13.OutputResTable != 640 {
		t.Errorf("FR13 output res table = %d, want 640", fr13.OutputResTable)
	}
	// Formula value; the paper's table prints 1980 (see EXPERIMENTS.md).
	if fr13.InputResTable != 2620 {
		t.Errorf("FR13 input res table = %d, want 2620 (formula value)", fr13.InputResTable)
	}
}

// TestFR6StorageMatchesVC8 verifies the paper's storage-matching claim: FR
// with 6 data buffers costs approximately the same per node as VC with 8.
func TestFR6StorageMatchesVC8(t *testing.T) {
	fr := FRStorage(frParams(6, 6, 2)).BitsPerNode()
	vc := VCStorage(vcParams(8, 2)).BitsPerNode()
	ratio := float64(fr) / float64(vc)
	if ratio < 0.95 || ratio > 1.08 {
		t.Errorf("FR6/VC8 storage ratio = %.3f, want ~1.03", ratio)
	}
}

// TestTable2Bandwidth checks Table 2's per-data-flit bandwidth overhead for
// the paper's configuration (n=6, L=5, v=2, d=1, s=32): VC pays n/L + 1 bits,
// FR pays 5 extra bits (the arrival-time stamp), about 2% of a 256-bit flit.
func TestTable2Bandwidth(t *testing.T) {
	vc := BandwidthParams{DestBits: 6, PacketLen: 5, VCs: 2}
	fr := BandwidthParams{DestBits: 6, PacketLen: 5, VCs: 2, Leads: 1, Horizon: 32}

	gotVC := VCBandwidthPerFlit(vc)
	if math.Abs(gotVC-2.2) > 1e-9 {
		t.Errorf("VC bandwidth/flit = %.3f bits, want 2.2", gotVC)
	}
	gotFR := FRBandwidthPerFlit(fr)
	if math.Abs(gotFR-7.2) > 1e-9 {
		t.Errorf("FR bandwidth/flit = %.3f bits, want 7.2", gotFR)
	}
	if diff := gotFR - gotVC; math.Abs(diff-5) > 1e-9 {
		t.Errorf("FR extra bits = %.3f, want 5 (the log2 s arrival stamp)", diff)
	}
	penalty := FRBandwidthPenalty(fr, vc, 256)
	if math.Abs(penalty-5.0/256) > 1e-9 {
		t.Errorf("FR bandwidth penalty = %.4f, want %.4f (~2%%)", penalty, 5.0/256)
	}
}

// TestWideControlFlitLowersVCIDOverhead reproduces the Section 5 argument
// that a control flit leading several data flits (d>1) amortizes the VCID.
func TestWideControlFlitLowersVCIDOverhead(t *testing.T) {
	d1 := FRBandwidthPerFlit(BandwidthParams{DestBits: 6, PacketLen: 5, VCs: 2, Leads: 1, Horizon: 32})
	d4 := FRBandwidthPerFlit(BandwidthParams{DestBits: 6, PacketLen: 5, VCs: 2, Leads: 4, Horizon: 32})
	if d4 >= d1 {
		t.Errorf("d=4 overhead (%.3f) should be below d=1 overhead (%.3f)", d4, d1)
	}
}
