// Package overhead implements the analytic storage and bandwidth cost models
// of Tables 1 and 2 of the paper. They matter twice: once as reproducible
// artifacts (cmd/overhead regenerates both tables), and once inside the
// experiment harness, which uses them to pick storage-matched configurations
// and to debit flit-reservation throughput by its extra bandwidth, exactly as
// the paper does when it reports "biased by the 2% additional bandwidth".
package overhead

import "fmt"

// Log2Ceil returns ⌈log₂(n)⌉, the number of bits needed to address n values.
// It panics for n < 1.
func Log2Ceil(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("overhead: Log2Ceil of %d", n))
	}
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

// VCParams are the storage-model inputs for virtual-channel flow control.
type VCParams struct {
	FlitBits    int // f: payload width of a data flit (256)
	TypeBits    int // t: head/body/tail tag (2)
	DataBuffers int // b_d: data buffers per input
	VCs         int // v_d: virtual channels per physical channel
	Ports       int // input channels per node (5 on a mesh router)
}

// FRParams are the storage-model inputs for flit-reservation flow control.
type FRParams struct {
	FlitBits    int // f
	TypeBits    int // t
	DataBuffers int // b_d: pooled data buffers per input
	CtrlBuffers int // b_c: control buffers per input
	CtrlVCs     int // v_c
	Leads       int // d: data flits led per control flit
	Horizon     int // s: scheduling horizon in cycles
	Ports       int // input channels per node
}

// StorageBreakdown itemizes per-node storage in bits, mirroring the rows of
// Table 1. Rows that do not apply to a flow-control method are zero.
type StorageBreakdown struct {
	DataBuffers    int
	CtrlBuffers    int
	QueuePointers  int
	OutputResTable int
	InputResTable  int
}

// BitsPerNode totals the breakdown.
func (b StorageBreakdown) BitsPerNode() int {
	return b.DataBuffers + b.CtrlBuffers + b.QueuePointers + b.OutputResTable + b.InputResTable
}

// FlitsPerInput expresses total node storage in units of f-bit flits per
// input channel, the bottom row of Table 1.
func (b StorageBreakdown) FlitsPerInput(flitBits, ports int) float64 {
	return float64(b.BitsPerNode()) / float64(flitBits*ports)
}

// VCStorage evaluates the virtual-channel column of Table 1:
//
//	data buffers:    (f + log₂v_d + t) × b_d × ports
//	queue pointers:  2 × log₂b_d × v_d × ports
//	output res tbl:  (1 + log₂b_d) × 4 × v_d   (channel status + buffer counts)
func VCStorage(p VCParams) StorageBreakdown {
	return StorageBreakdown{
		DataBuffers:    (p.FlitBits + Log2Ceil(p.VCs) + p.TypeBits) * p.DataBuffers * p.Ports,
		QueuePointers:  2 * Log2Ceil(p.DataBuffers) * p.VCs * p.Ports,
		OutputResTable: (1 + Log2Ceil(p.DataBuffers)) * 4 * p.VCs,
	}
}

// FRStorage evaluates the flit-reservation column of Table 1:
//
//	data buffers:    f × b_d × ports                       (payload only)
//	control buffers: (log₂v_c + t + d·log₂s) × b_c × ports
//	queue pointers:  2 × log₂b_c × v_c × ports
//	output res tbl:  (1 + log₂b_d) × s × 4
//	input res tbl:   [(1 + log₂s + 2 + 2·log₂b_d) × s + b_c] × ports
//
// Note: the paper's FR13 input-reservation-table cell (1980 bits) is not
// reproducible from its own general formula, which yields 2620; this
// implementation follows the formula (see EXPERIMENTS.md).
func FRStorage(p FRParams) StorageBreakdown {
	perSlot := 1 + Log2Ceil(p.Horizon) + 2 + 2*Log2Ceil(p.DataBuffers)
	return StorageBreakdown{
		DataBuffers:    p.FlitBits * p.DataBuffers * p.Ports,
		CtrlBuffers:    (Log2Ceil(p.CtrlVCs) + p.TypeBits + p.Leads*Log2Ceil(p.Horizon)) * p.CtrlBuffers * p.Ports,
		QueuePointers:  2 * Log2Ceil(p.CtrlBuffers) * p.CtrlVCs * p.Ports,
		OutputResTable: (1 + Log2Ceil(p.DataBuffers)) * p.Horizon * 4,
		InputResTable:  (perSlot*p.Horizon + p.CtrlBuffers) * p.Ports,
	}
}

// BandwidthParams are the inputs of Table 2's per-data-flit bandwidth model.
type BandwidthParams struct {
	DestBits  int // n: destination field width (6 for 64 nodes)
	PacketLen int // L: packet length in data flits
	VCs       int // v_d or v_c
	Leads     int // d (flit reservation only)
	Horizon   int // s (flit reservation only)
}

// VCBandwidthPerFlit returns the control-bit overhead carried per data flit
// under virtual-channel flow control: n/L + log₂v_d.
func VCBandwidthPerFlit(p BandwidthParams) float64 {
	return float64(p.DestBits)/float64(p.PacketLen) + float64(Log2Ceil(p.VCs))
}

// FRBandwidthPerFlit returns the control-bit overhead per data flit under
// flit-reservation flow control:
//
//	n/L + (log₂v_c / L)·(1 + (L−1)/d) + log₂s
//
// The last term — the arrival-time stamp — is the overhead flit reservation
// adds beyond virtual channels when v_c = v_d and d = 1.
func FRBandwidthPerFlit(p BandwidthParams) float64 {
	ctrlFlits := 1 + float64(p.PacketLen-1)/float64(p.Leads)
	return float64(p.DestBits)/float64(p.PacketLen) +
		float64(Log2Ceil(p.VCs))/float64(p.PacketLen)*ctrlFlits +
		float64(Log2Ceil(p.Horizon))
}

// FRBandwidthPenalty returns the fraction of data-network bandwidth that
// flit-reservation flow control spends on overhead beyond the matching
// virtual-channel configuration, relative to the flit width — the paper's
// "2% for 256-bit data flits". Reported throughputs are debited by this
// fraction when comparing against virtual channels.
func FRBandwidthPenalty(fr, vc BandwidthParams, flitBits int) float64 {
	extra := FRBandwidthPerFlit(fr) - VCBandwidthPerFlit(vc)
	if extra < 0 {
		extra = 0
	}
	return extra / float64(flitBits)
}
