package status

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"frfc/internal/experiment"
	"frfc/internal/harness"
	"frfc/internal/metrics"
	"frfc/internal/profile"
	"frfc/internal/waterfall"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestStatusSnapshot(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	spec := experiment.FR6(experiment.FastControl, 5)
	s.OnProgress(harness.Progress{Total: 10, Done: 3, Cached: 1, Failed: 1,
		Elapsed: 2 * time.Second, ETA: 5 * time.Second})
	s.OnJobStarted(harness.Job{Spec: spec, Load: 0.4})
	s.OnJobStarted(harness.Job{Spec: spec, Load: 0.2})

	code, body := get(t, "http://"+s.Addr()+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/status is not JSON: %v\n%s", err, body)
	}
	if snap.Campaign == nil || snap.Campaign.Done != 3 || snap.Campaign.Total != 10 {
		t.Fatalf("campaign view wrong: %+v", snap.Campaign)
	}
	if len(snap.Running) != 2 || snap.Running[0].Load != 0.2 || snap.Running[1].Load != 0.4 {
		t.Fatalf("running jobs wrong (want sorted by load): %+v", snap.Running)
	}

	// Finishing a job retires it from the running set.
	s.OnJobFinished(harness.JobResult{Job: harness.Job{Spec: spec, Load: 0.2}})
	_, body = get(t, "http://"+s.Addr()+"/status")
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Running) != 1 || snap.Running[0].Load != 0.4 {
		t.Fatalf("finished job still listed: %+v", snap.Running)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Before any registry arrives the exposition is valid but minimal.
	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "frfc_up 1") {
		t.Fatalf("empty /metrics = %d:\n%s", code, body)
	}

	reg := metrics.NewRegistry(0)
	reg.Init(2)
	reg.Nodes[1].Ejected = 10
	reg.Cycles = 100
	s.OnCollect(harness.Job{}, reg)
	reg2 := metrics.NewRegistry(0)
	reg2.Init(2)
	reg2.Nodes[1].Ejected = 5
	reg2.Cycles = 50
	s.OnCollect(harness.Job{}, reg2)

	_, body = get(t, "http://"+s.Addr()+"/metrics")
	if !strings.Contains(body, `frfc_ejected_flits_total{node="1",x="1",y="0"} 15`) {
		t.Fatalf("/metrics did not merge registries:\n%s", body)
	}
	if !strings.Contains(body, "frfc_cycles 150") {
		t.Fatalf("/metrics cycles not merged:\n%s", body)
	}
	// Every non-comment line is "name{labels} value" — valid exposition.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}
}

func TestLiveRunView(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	reg := metrics.NewRegistry(0)
	reg.Init(2)
	reg.Nodes[0].Injected = 7
	s.OnLive(experiment.Live{Cycle: 4096, Phase: "measure", Tagged: 50, Delivered: 20,
		Packets: 20, MeanLatency: 31.5, Reg: reg})

	_, body := get(t, "http://"+s.Addr()+"/status")
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Run == nil || snap.Run.Phase != "measure" || snap.Run.Cycle != 4096 {
		t.Fatalf("run view wrong: %+v", snap.Run)
	}
	_, body = get(t, "http://"+s.Addr()+"/metrics")
	if !strings.Contains(body, `frfc_injected_flits_total{node="0",x="0",y="0"} 7`) {
		t.Fatalf("/metrics missing live registry:\n%s", body)
	}

	// Root redirects to /status.
	code, _ := get(t, "http://"+s.Addr()+"/")
	if code != http.StatusOK { // after following the redirect
		t.Fatalf("/ = %d", code)
	}
}

// expositionLine matches one Prometheus 0.0.4 sample line: a metric name, an
// optional label set whose values contain no unescaped quote, backslash or
// newline, and a value. Anything outside it would need escaping we don't do.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? [^ ]+$`)

// TestMetricsContentTypeAndEscaping pins the scrape contract: the exact
// Prometheus 0.0.4 content type, and every sample line well-formed with
// label values that never require escaping.
func TestMetricsContentTypeAndEscaping(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	reg := metrics.NewRegistry(0)
	reg.Init(3)
	for i := range reg.Nodes {
		reg.Nodes[i].Injected = int64(i)
		reg.Nodes[i].Ejected = int64(i)
	}
	reg.Cycles = 256
	s.OnCollect(harness.Job{}, reg)
	p := profile.NewRegistry(0)
	p.Init(3)
	p.RouterTick(4, 1, 2, 3, 4)
	p.Cycles = 256
	s.OnCollectProfile(harness.Job{}, p)

	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	if sc := resp.Header.Get("Content-Type"); !strings.Contains(sc, "version=0.0.4") {
		t.Fatalf("not the 0.0.4 exposition: %q", sc)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("exposition line needs escaping or is malformed: %q", line)
		}
	}
	// The /status endpoint declares JSON.
	resp, err = http.Get("http://" + s.Addr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/status Content-Type = %q", ct)
	}
}

// TestProfileBlock: collected profile registries merge into the /status
// profile block and the /metrics exposition; a live snapshot replaces them.
func TestProfileBlock(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	mk := func(sched int) *profile.Registry {
		p := profile.NewRegistry(0)
		p.Init(2)
		p.RouterTick(1, sched, 0, 2, 1)
		p.ComponentTick(profile.CompRouter, 1, false)
		p.Cycles = 100
		return p
	}
	s.OnCollectProfile(harness.Job{}, mk(1))
	s.OnCollectProfile(harness.Job{}, mk(2))

	_, body := get(t, "http://"+s.Addr()+"/status")
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Profile == nil {
		t.Fatalf("no profile block in /status:\n%s", body)
	}
	if snap.Profile.Ticks != 4 || snap.Profile.ActiveTicks != 2 {
		t.Fatalf("profile totals wrong: %+v", snap.Profile)
	}
	if snap.Profile.SchedWork != 3 || snap.Profile.SwitchWork != 4 || snap.Profile.CreditWork != 2 {
		t.Fatalf("merged phase work wrong: %+v", snap.Profile)
	}
	if snap.Profile.IdleFraction != 0.5 {
		t.Fatalf("idle fraction = %v, want 0.5", snap.Profile.IdleFraction)
	}
	if !strings.Contains(snap.Profile.Summary, "idle") {
		t.Fatalf("summary = %q", snap.Profile.Summary)
	}

	_, body = get(t, "http://"+s.Addr()+"/metrics")
	if !strings.Contains(body, `frfc_profile_phase_work_total{node="1",x="1",y="0",phase="sched"} 3`) {
		t.Fatalf("/metrics missing merged profile exposition:\n%s", body)
	}

	// A live publish replaces the campaign aggregate.
	lp := profile.NewRegistry(0)
	lp.Init(2)
	lp.RouterTick(0, 0, 0, 1, 0)
	lp.Cycles = 7
	s.OnLive(experiment.Live{Cycle: 7, Phase: "warmup", Prof: lp})
	_, body = get(t, "http://"+s.Addr()+"/status")
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Profile == nil || snap.Profile.Ticks != 1 {
		t.Fatalf("live profile did not replace aggregate: %+v", snap.Profile)
	}
}

// TestConcurrentFeedsAndScrapes hammers every feed callback from goroutines
// while scraping both endpoints — the shape must stay stable and the race
// detector quiet (CI runs this with -race).
func TestConcurrentFeedsAndScrapes(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	spec := experiment.FR6(experiment.FastControl, 5)
	var wg sync.WaitGroup
	const iters = 50
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				j := harness.Job{Spec: spec, Load: float64(g*iters+i+1) / 1000}
				s.OnJobStarted(j)
				s.OnProgress(harness.Progress{Total: 200, Done: i})
				reg := metrics.NewRegistry(0)
				reg.Init(2)
				reg.Nodes[0].Injected = 1
				s.OnCollect(j, reg)
				p := profile.NewRegistry(0)
				p.Init(2)
				p.RouterTick(0, 1, 0, 1, 0)
				s.OnCollectProfile(j, p)
				s.OnJobFinished(harness.JobResult{Job: j})
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		code, body := get(t, "http://"+s.Addr()+"/status")
		if code != http.StatusOK {
			t.Fatalf("/status = %d", code)
		}
		var snap Snapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("/status JSON broke under concurrency: %v\n%s", err, body)
		}
		if snap.UptimeSeconds < 0 {
			t.Fatalf("nonsense snapshot: %+v", snap)
		}
		code, _ = get(t, fmt.Sprintf("http://%s/metrics", s.Addr()))
		if code != http.StatusOK {
			t.Fatalf("/metrics = %d", code)
		}
	}
	wg.Wait()

	// After the dust settles the aggregates reflect every feed.
	_, body := get(t, "http://"+s.Addr()+"/status")
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Profile == nil || snap.Profile.Ticks != 4*iters {
		t.Fatalf("profile aggregate lost feeds: %+v", snap.Profile)
	}
	if len(snap.Running) != 0 {
		t.Fatalf("finished jobs still running: %+v", snap.Running)
	}
}

// TestServiceViewAndMetrics: the campaign-service feed appears in /status
// under "service"/"serviceCampaigns" and in /metrics as the frfc_service_*
// and frfc_campaign_* gauges, with label values escaped.
func TestServiceViewAndMetrics(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.OnService(ServiceView{
		Workers: 4, Campaigns: 2, Active: 1, QueueDepth: 7, InFlight: 2,
		DedupHits: 5, DedupMisses: 9, DBEntries: 9, DBSegments: 2, DBHealed: 1,
		DBQuarantined: 3, StoreErrors: 2, Rejected: 11,
		RejectedBy:     map[string]int64{"rate": 6, "jobs": 5},
		StuckCampaigns: 1, Ready: false,
	}, []ServiceCampaign{
		{ID: "c1", Name: `probe "q\` + "\n", State: "running", Jobs: 10, Done: 3,
			Simulated: 2, Cached: 1, QueueDepth: 7, InFlight: 2, Weight: 3},
		{ID: "c2", Name: "done-one", State: "done", Jobs: 4, Done: 4, Simulated: 4},
	})

	_, body := get(t, "http://"+s.Addr()+"/status")
	var snap struct {
		Service *struct {
			Workers    int              `json:"workers"`
			DedupHits  int64            `json:"dedupHits"`
			Rejected   int64            `json:"rejected"`
			RejectedBy map[string]int64 `json:"rejectedBy"`
			Ready      bool             `json:"ready"`
		} `json:"service"`
		Campaigns []struct {
			ID    string `json:"id"`
			State string `json:"state"`
			Done  int    `json:"done"`
		} `json:"serviceCampaigns"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if snap.Service == nil || snap.Service.Workers != 4 || snap.Service.DedupHits != 5 {
		t.Fatalf("service view wrong: %s", body)
	}
	if snap.Service.Rejected != 11 || snap.Service.RejectedBy["rate"] != 6 || snap.Service.Ready {
		t.Fatalf("hardening fields wrong: %s", body)
	}
	if len(snap.Campaigns) != 2 || snap.Campaigns[0].ID != "c1" || snap.Campaigns[1].State != "done" {
		t.Fatalf("serviceCampaigns wrong: %s", body)
	}

	_, mbody := get(t, "http://"+s.Addr()+"/metrics")
	for _, want := range []string{
		"frfc_service_workers 4",
		"frfc_service_queue_depth 7",
		"frfc_service_dedup_hits_total 5",
		"frfc_service_dedup_misses_total 9",
		"frfc_service_db_entries 9",
		"frfc_service_rejected_total 11",
		"frfc_service_quarantined_total 3",
		"frfc_service_store_errors_total 2",
		"frfc_service_stuck_campaigns 1",
		"frfc_service_ready 0",
		`frfc_campaign_jobs{campaign="c1",name="probe \"q\\\n",state="running"} 10`,
		`frfc_campaign_done{campaign="c2",name="done-one",state="done"} 4`,
	} {
		if !strings.Contains(mbody, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, mbody)
		}
	}
}

// TestServeOptsTimeouts: the HTTP server carries real protective timeouts —
// slowloris defense on headers, bounded idle — while write timeouts stay off
// by default so ?wait=1 long-polls are never cut mid-flight.
func TestServeOptsTimeouts(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.srv.ReadHeaderTimeout; got != 10*time.Second {
		t.Errorf("default ReadHeaderTimeout = %v, want 10s", got)
	}
	if got := s.srv.IdleTimeout; got != 2*time.Minute {
		t.Errorf("default IdleTimeout = %v, want 2m", got)
	}
	if s.srv.WriteTimeout != 0 || s.srv.ReadTimeout != 0 {
		t.Errorf("write/read timeouts default on (%v/%v), would kill long-polls",
			s.srv.WriteTimeout, s.srv.ReadTimeout)
	}

	s2, err := ServeOpts("127.0.0.1:0", ServerOptions{
		ReadHeaderTimeout: time.Second,
		ReadTimeout:       5 * time.Second,
		WriteTimeout:      6 * time.Second,
		IdleTimeout:       7 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.srv.ReadHeaderTimeout != time.Second || s2.srv.ReadTimeout != 5*time.Second ||
		s2.srv.WriteTimeout != 6*time.Second || s2.srv.IdleTimeout != 7*time.Second {
		t.Errorf("explicit options not honored: %+v", s2.srv)
	}
}

// TestHandleMountsExtraRoutes: Handle shares the status listener with
// caller-provided routes, method patterns included.
func TestHandleMountsExtraRoutes(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Handle("GET /extra", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "mounted")
	}))
	code, body := get(t, "http://"+s.Addr()+"/extra")
	if code != http.StatusOK || body != "mounted" {
		t.Fatalf("mounted route = %d %q", code, body)
	}
	if code, _ := get(t, "http://"+s.Addr()+"/status"); code != http.StatusOK {
		t.Fatalf("/status broken by extra route: %d", code)
	}
}

// TestGracefulShutdown: Shutdown frees the port and later requests fail, and
// a second Shutdown is harmless.
func TestGracefulShutdown(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if code, _ := get(t, "http://"+addr+"/status"); code != http.StatusOK {
		t.Fatalf("/status before shutdown = %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/status"); err == nil {
		t.Fatal("server still serving after Shutdown")
	}
	if err := s.Shutdown(ctx); err != nil && err != http.ErrServerClosed {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestWaterfallBlock: collected stage ledgers fold into the /status waterfall
// block and the /metrics exposition; a live published view replaces them.
func TestWaterfallBlock(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	mk := func(pid uint64) *waterfall.Ledger {
		l := waterfall.New()
		l.InjectStart(pid, 0, 0, 2)
		l.HeadWire(pid, 0, 4)
		l.Eject(pid, 0, 10)
		l.Delivered(pid, 12)
		return l
	}
	s.OnCollectWaterfall(harness.Job{}, mk(1))
	s.OnCollectWaterfall(harness.Job{}, mk(2))

	_, body := get(t, "http://"+s.Addr()+"/status")
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Waterfall == nil {
		t.Fatalf("no waterfall block in /status:\n%s", body)
	}
	if snap.Waterfall.Packets != 2 || snap.Waterfall.TotalCycles != 24 {
		t.Fatalf("waterfall totals wrong: %+v", snap.Waterfall)
	}
	if snap.Waterfall.MeanLatency != 12 || len(snap.Waterfall.Stages) != int(waterfall.NumStages) {
		t.Fatalf("waterfall view wrong: %+v", snap.Waterfall)
	}

	_, body = get(t, "http://"+s.Addr()+"/metrics")
	for _, want := range []string{
		"frfc_waterfall_packets 2",
		`frfc_latency_stage_cycles_total{stage="queue"} 4`,
		"frfc_latency_stage_mean",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// A live publish replaces the campaign aggregate.
	lv := waterfall.ViewFromTotals(1, 9, [waterfall.NumStages]int64{waterfall.StageLink: 9})
	s.OnLive(experiment.Live{Cycle: 7, Phase: "measure", Waterfall: &lv})
	_, body = get(t, "http://"+s.Addr()+"/status")
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Waterfall == nil || snap.Waterfall.Packets != 1 || snap.Waterfall.MeanLatency != 9 {
		t.Fatalf("live waterfall did not replace aggregate: %+v", snap.Waterfall)
	}
}
