package status

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"frfc/internal/experiment"
	"frfc/internal/harness"
	"frfc/internal/metrics"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestStatusSnapshot(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	spec := experiment.FR6(experiment.FastControl, 5)
	s.OnProgress(harness.Progress{Total: 10, Done: 3, Cached: 1, Failed: 1,
		Elapsed: 2 * time.Second, ETA: 5 * time.Second})
	s.OnJobStarted(harness.Job{Spec: spec, Load: 0.4})
	s.OnJobStarted(harness.Job{Spec: spec, Load: 0.2})

	code, body := get(t, "http://"+s.Addr()+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/status is not JSON: %v\n%s", err, body)
	}
	if snap.Campaign == nil || snap.Campaign.Done != 3 || snap.Campaign.Total != 10 {
		t.Fatalf("campaign view wrong: %+v", snap.Campaign)
	}
	if len(snap.Running) != 2 || snap.Running[0].Load != 0.2 || snap.Running[1].Load != 0.4 {
		t.Fatalf("running jobs wrong (want sorted by load): %+v", snap.Running)
	}

	// Finishing a job retires it from the running set.
	s.OnJobFinished(harness.JobResult{Job: harness.Job{Spec: spec, Load: 0.2}})
	_, body = get(t, "http://"+s.Addr()+"/status")
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Running) != 1 || snap.Running[0].Load != 0.4 {
		t.Fatalf("finished job still listed: %+v", snap.Running)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Before any registry arrives the exposition is valid but minimal.
	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "frfc_up 1") {
		t.Fatalf("empty /metrics = %d:\n%s", code, body)
	}

	reg := metrics.NewRegistry(0)
	reg.Init(2)
	reg.Nodes[1].Ejected = 10
	reg.Cycles = 100
	s.OnCollect(harness.Job{}, reg)
	reg2 := metrics.NewRegistry(0)
	reg2.Init(2)
	reg2.Nodes[1].Ejected = 5
	reg2.Cycles = 50
	s.OnCollect(harness.Job{}, reg2)

	_, body = get(t, "http://"+s.Addr()+"/metrics")
	if !strings.Contains(body, `frfc_ejected_flits_total{node="1",x="1",y="0"} 15`) {
		t.Fatalf("/metrics did not merge registries:\n%s", body)
	}
	if !strings.Contains(body, "frfc_cycles 150") {
		t.Fatalf("/metrics cycles not merged:\n%s", body)
	}
	// Every non-comment line is "name{labels} value" — valid exposition.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}
}

func TestLiveRunView(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	reg := metrics.NewRegistry(0)
	reg.Init(2)
	reg.Nodes[0].Injected = 7
	s.OnLive(experiment.Live{Cycle: 4096, Phase: "measure", Tagged: 50, Delivered: 20,
		Packets: 20, MeanLatency: 31.5, Reg: reg})

	_, body := get(t, "http://"+s.Addr()+"/status")
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Run == nil || snap.Run.Phase != "measure" || snap.Run.Cycle != 4096 {
		t.Fatalf("run view wrong: %+v", snap.Run)
	}
	_, body = get(t, "http://"+s.Addr()+"/metrics")
	if !strings.Contains(body, `frfc_injected_flits_total{node="0",x="0",y="0"} 7`) {
		t.Fatalf("/metrics missing live registry:\n%s", body)
	}

	// Root redirects to /status.
	code, _ := get(t, "http://"+s.Addr()+"/")
	if code != http.StatusOK { // after following the redirect
		t.Fatalf("/ = %d", code)
	}
}
