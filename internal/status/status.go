// Package status serves a live, read-only view of a running campaign or
// single simulation over HTTP: a JSON snapshot of progress on /status and
// Prometheus text exposition of the merged per-router counter registry on
// /metrics.
//
// The server is fed through callback methods shaped to plug straight into
// harness.Options (OnProgress, OnJobStarted, OnJobFinished, OnCollect) and
// experiment.Instruments (OnLive). Every feed method and every request
// handler synchronizes on one mutex and touches only the server's own copies
// of the data, so serving never perturbs the simulation: the bit-identical
// result contract holds with the server enabled.
package status

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"frfc/internal/experiment"
	"frfc/internal/harness"
	"frfc/internal/metrics"
	"frfc/internal/profile"
	"frfc/internal/waterfall"
)

// JobView describes one in-flight job in the /status snapshot.
type JobView struct {
	Spec string  `json:"spec"`
	Load float64 `json:"load"`
	Seed uint64  `json:"seed,omitempty"`
	// Since is how long the job has been running, in seconds.
	Since float64 `json:"sinceSeconds"`
}

// CampaignView is the harness progress portion of the /status snapshot.
type CampaignView struct {
	Total   int `json:"total"`
	Done    int `json:"done"`
	Cached  int `json:"cached"`
	Skipped int `json:"skipped"`
	Failed  int `json:"failed"`
	// ElapsedSeconds and ETASeconds mirror harness.Progress; ETA is a naive
	// projection, display only.
	ElapsedSeconds float64 `json:"elapsedSeconds"`
	ETASeconds     float64 `json:"etaSeconds"`
}

// RunView is the single-run portion of the /status snapshot, fed from
// experiment.Live snapshots (cmd/frsim).
type RunView struct {
	Cycle       int64   `json:"cycle"`
	Phase       string  `json:"phase"`
	Tagged      int     `json:"tagged"`
	Delivered   int     `json:"delivered"`
	Packets     int64   `json:"packets"`
	MeanLatency float64 `json:"meanLatency"`
}

// ProfileView is the self-profiling portion of the /status snapshot: the
// activity accounting merged (campaign) or last published (single run).
type ProfileView struct {
	Ticks         int64   `json:"ticks"`
	ActiveTicks   int64   `json:"activeTicks"`
	IdleFraction  float64 `json:"idleFraction"`
	SchedWork     int64   `json:"schedWork"`
	ArbWork       int64   `json:"arbWork"`
	SwitchWork    int64   `json:"switchWork"`
	CreditWork    int64   `json:"creditWork"`
	MemAllocBytes int64   `json:"memAllocBytes"`
	MemEpochs     int64   `json:"memEpochs"`
	Summary       string  `json:"summary"`
}

// ServiceCampaign is one campaign's row in the /status snapshot when the
// server fronts the campaign service (frserve).
type ServiceCampaign struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	State string `json:"state"`
	Jobs  int    `json:"jobs"`
	Done  int    `json:"done"`
	// Simulated jobs ran; Cached were served from the persistent result
	// database — the per-campaign dedup ledger.
	Simulated  int `json:"simulated"`
	Cached     int `json:"cached"`
	Failed     int `json:"failed"`
	QueueDepth int `json:"queueDepth"`
	InFlight   int `json:"inFlight"`
	Weight     int `json:"weight"`
}

// ServiceView is the service-wide portion of the /status snapshot: pool
// shape, aggregate queue pressure, and the persistent database's dedup
// accounting.
type ServiceView struct {
	Workers    int `json:"workers"`
	Campaigns  int `json:"campaigns"`
	Active     int `json:"active"`
	QueueDepth int `json:"queueDepth"`
	InFlight   int `json:"inFlight"`
	// DedupHits and DedupMisses count result-database lookups since the
	// daemon started; DBEntries/DBSegments/DBHealed describe the database
	// itself (healed = undecodable lines skipped during recovery).
	DedupHits   int64 `json:"dedupHits"`
	DedupMisses int64 `json:"dedupMisses"`
	DBEntries   int   `json:"dbEntries"`
	DBSegments  int   `json:"dbSegments"`
	DBHealed    int   `json:"dbHealed,omitempty"`
	// DBQuarantined counts corrupt lines isolated during recovery (failed
	// their recorded checksum); StoreErrors counts database writes that
	// failed since the daemon started.
	DBQuarantined int   `json:"dbQuarantined,omitempty"`
	StoreErrors   int64 `json:"storeErrors,omitempty"`
	// Rejected is total submissions refused by admission control;
	// RejectedBy breaks it down by reason (rate, campaigns, jobs, body,
	// validation, closed).
	Rejected   int64            `json:"rejected,omitempty"`
	RejectedBy map[string]int64 `json:"rejectedBy,omitempty"`
	// StuckCampaigns is the no-progress watchdog's current count.
	StuckCampaigns int `json:"stuckCampaigns,omitempty"`
	// Ready is false once the daemon starts draining (mirrors /readyz).
	Ready bool `json:"ready"`
}

// Snapshot is the /status response body.
type Snapshot struct {
	UptimeSeconds float64       `json:"uptimeSeconds"`
	Campaign      *CampaignView `json:"campaign,omitempty"`
	Run           *RunView      `json:"run,omitempty"`
	Running       []JobView     `json:"running,omitempty"`
	Profile       *ProfileView  `json:"profile,omitempty"`
	// Waterfall is the latency-provenance block: per-stage cycle totals,
	// means and shares, merged across finished jobs (campaign) or last
	// published (single run).
	Waterfall *waterfall.View `json:"waterfall,omitempty"`
	// Service and Campaigns carry the campaign-service view when a
	// daemon (frserve) feeds the server via OnService.
	Service   *ServiceView      `json:"service,omitempty"`
	Campaigns []ServiceCampaign `json:"serviceCampaigns,omitempty"`
}

// Server is the live status HTTP server. The zero value is not usable; call
// Serve.
type Server struct {
	srv   *http.Server
	mux   *http.ServeMux
	ln    net.Listener
	start time.Time

	mu       sync.Mutex
	campaign *CampaignView
	run      *RunView
	running  map[string]time.Time // job key -> start time
	jobs     map[string]JobView
	reg      *metrics.Registry // merged (campaign) or latest (single run)
	prof     *profile.Registry // merged (campaign) or latest (single run)
	// Waterfall aggregates are summed integers (campaign) or the last
	// published live view (single run); wfLive wins while set.
	wfPackets int64
	wfTotal   int64
	wfTotals  [waterfall.NumStages]int64
	wfLive    *waterfall.View
	service   *ServiceView
	campaigns []ServiceCampaign
}

// ServerOptions tunes the HTTP server's protective timeouts. Zero fields
// take the documented defaults — chosen so slowloris-style clients cannot
// pin connections forever, while the deliberately long-lived requests the
// API serves (?wait=1 long-polls, result streams) are never cut mid-flight.
type ServerOptions struct {
	// ReadHeaderTimeout bounds how long a client may dribble headers;
	// 0 means 10s. This is the slowloris defense.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading the entire request; 0 disables it (the
	// submit body is already capped by the service's MaxBodyBytes, and
	// every other endpoint is bodyless).
	ReadTimeout time.Duration
	// WriteTimeout bounds writing the response; 0 disables it — it must
	// not default on, because ?wait=1 long-polls legitimately hold the
	// response open for the lifetime of a campaign.
	WriteTimeout time.Duration
	// IdleTimeout bounds keep-alive idleness between requests; 0 means 2m.
	IdleTimeout time.Duration
}

// Serve starts a status server listening on addr (host:port; host may be
// empty, port 0 picks a free one) with default timeouts. It serves until
// Close.
func Serve(addr string) (*Server, error) {
	return ServeOpts(addr, ServerOptions{})
}

// ServeOpts is Serve with explicit timeout options.
func ServeOpts(addr string, o ServerOptions) (*Server, error) {
	if o.ReadHeaderTimeout == 0 {
		o.ReadHeaderTimeout = 10 * time.Second
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("status: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:      ln,
		start:   time.Now(),
		running: map[string]time.Time{},
		jobs:    map[string]JobView{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		http.Redirect(w, r, "/status", http.StatusFound)
	})
	s.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: o.ReadHeaderTimeout,
		ReadTimeout:       o.ReadTimeout,
		WriteTimeout:      o.WriteTimeout,
		IdleTimeout:       o.IdleTimeout,
	}
	s.mux = mux
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr reports the address the server is listening on (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Handle mounts an additional handler on the server's mux — how frserve
// exposes its REST campaign API on the same listener as /status and
// /metrics. Patterns follow net/http ServeMux syntax (methods and wildcards
// included). Registering a pattern twice panics, as ServeMux does.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// Close stops the server immediately, dropping in-flight requests.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown stops the server gracefully: the listener closes at once (so the
// ephemeral port frees immediately and tests stop leaking listeners), then
// in-flight requests get until ctx's deadline to finish before being cut.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

func jobKey(j harness.Job) string {
	return fmt.Sprintf("%s|%.12g|%d", j.Spec.Name, j.Load, j.Seed)
}

// OnProgress feeds a harness progress snapshot; plug into Options.Progress.
func (s *Server) OnProgress(p harness.Progress) {
	s.mu.Lock()
	s.campaign = &CampaignView{
		Total:          p.Total,
		Done:           p.Done,
		Cached:         p.Cached,
		Skipped:        p.Skipped,
		Failed:         p.Failed,
		ElapsedSeconds: p.Elapsed.Seconds(),
		ETASeconds:     p.ETA.Seconds(),
	}
	s.mu.Unlock()
}

// OnJobStarted records a job as in flight; plug into Options.JobStarted.
func (s *Server) OnJobStarted(j harness.Job) {
	k := jobKey(j)
	s.mu.Lock()
	s.running[k] = time.Now()
	s.jobs[k] = JobView{Spec: j.Spec.Name, Load: j.Load, Seed: j.Seed}
	s.mu.Unlock()
}

// OnJobFinished retires a job from the in-flight set; plug into
// Options.JobFinished.
func (s *Server) OnJobFinished(jr harness.JobResult) {
	k := jobKey(jr.Job)
	s.mu.Lock()
	delete(s.running, k)
	delete(s.jobs, k)
	s.mu.Unlock()
}

// OnCollect merges one finished job's registry into the server's aggregate;
// plug into Options.Collect. The registry is handed over by the worker after
// its run completes, so the merge races with nothing.
func (s *Server) OnCollect(_ harness.Job, reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	if s.reg == nil {
		s.reg = metrics.NewRegistry(reg.Epoch)
	}
	s.reg.Merge(reg)
	s.mu.Unlock()
}

// OnCollectProfile merges one finished job's self-profiling registry into the
// server's aggregate; plug into Options.CollectProfile. Like OnCollect, the
// registry is handed over after the run completes, so the merge races with
// nothing.
func (s *Server) OnCollectProfile(_ harness.Job, p *profile.Registry) {
	if p == nil {
		return
	}
	s.mu.Lock()
	if s.prof == nil {
		s.prof = profile.NewRegistry(p.Epoch)
	}
	s.prof.Merge(p)
	s.mu.Unlock()
}

// OnCollectWaterfall folds one finished job's stage ledger into the server's
// aggregate waterfall; plug into Options.CollectWaterfall. The ledger is
// handed over after the run completes, so the integer sums race with nothing.
func (s *Server) OnCollectWaterfall(_ harness.Job, l *waterfall.Ledger) {
	if l == nil || l.Packets() == 0 {
		return
	}
	st := l.StageTotals()
	s.mu.Lock()
	s.wfPackets += l.Packets()
	s.wfTotal += l.TotalCycles()
	for i := range st {
		s.wfTotals[i] += st[i]
	}
	s.mu.Unlock()
}

// OnService replaces the campaign-service view; the service pushes a fresh
// snapshot after every job completion and lifecycle change. The rows are
// handed over (not shared), so the server needs no further synchronization
// with the scheduler.
func (s *Server) OnService(v ServiceView, campaigns []ServiceCampaign) {
	s.mu.Lock()
	s.service = &v
	s.campaigns = campaigns
	s.mu.Unlock()
}

// OnLive replaces the single-run view and registry snapshot; plug into
// experiment's Instruments.Publish. The Live registry is already a clone
// owned by the receiver.
func (s *Server) OnLive(lv experiment.Live) {
	s.mu.Lock()
	s.run = &RunView{
		Cycle:       int64(lv.Cycle),
		Phase:       lv.Phase,
		Tagged:      lv.Tagged,
		Delivered:   lv.Delivered,
		Packets:     lv.Packets,
		MeanLatency: lv.MeanLatency,
	}
	if lv.Reg != nil {
		s.reg = lv.Reg
	}
	if lv.Prof != nil {
		s.prof = lv.Prof
	}
	if lv.Waterfall != nil {
		s.wfLive = lv.Waterfall
	}
	s.mu.Unlock()
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	snap := Snapshot{UptimeSeconds: time.Since(s.start).Seconds()}
	if s.campaign != nil {
		c := *s.campaign
		snap.Campaign = &c
	}
	if s.run != nil {
		r := *s.run
		snap.Run = &r
	}
	if s.prof != nil {
		ticks, active := s.prof.Totals()
		ph := s.prof.PhaseTotals()
		snap.Profile = &ProfileView{
			Ticks:         ticks,
			ActiveTicks:   active,
			IdleFraction:  s.prof.IdleFraction(),
			SchedWork:     ph[profile.PhaseSched],
			ArbWork:       ph[profile.PhaseArb],
			SwitchWork:    ph[profile.PhaseSwitch],
			CreditWork:    ph[profile.PhaseCredit],
			MemAllocBytes: s.prof.Mem.AllocBytes,
			MemEpochs:     s.prof.Mem.Epochs,
			Summary:       s.prof.Summary(),
		}
	}
	if wv, ok := s.waterfallViewLocked(); ok {
		snap.Waterfall = &wv
	}
	if s.service != nil {
		sv := *s.service
		snap.Service = &sv
		snap.Campaigns = append([]ServiceCampaign(nil), s.campaigns...)
	}
	now := time.Now()
	for k, started := range s.running {
		jv := s.jobs[k]
		jv.Since = now.Sub(started).Seconds()
		snap.Running = append(snap.Running, jv)
	}
	s.mu.Unlock()

	// Stable ordering for humans and tests.
	for i := 1; i < len(snap.Running); i++ {
		for j := i; j > 0 && less(snap.Running[j], snap.Running[j-1]); j-- {
			snap.Running[j], snap.Running[j-1] = snap.Running[j-1], snap.Running[j]
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap) //nolint:errcheck // client gone is not our problem
}

func less(a, b JobView) bool {
	if a.Spec != b.Spec {
		return a.Spec < b.Spec
	}
	if a.Load != b.Load {
		return a.Load < b.Load
	}
	return a.Seed < b.Seed
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// With no registry yet the exposition is just frfc_up — still valid
	// scrape output.
	fmt.Fprintf(w, "# HELP frfc_up Status server is running.\n# TYPE frfc_up gauge\nfrfc_up 1\n")
	if s.service != nil {
		writeServiceMetrics(w, s.service, s.campaigns)
	}
	if s.reg != nil {
		s.reg.WritePrometheus(w) //nolint:errcheck // client gone is not our problem
	}
	if s.prof != nil {
		s.prof.WritePrometheus(w) //nolint:errcheck // client gone is not our problem
	}
	if wv, ok := s.waterfallViewLocked(); ok {
		wv.WritePrometheus(w) //nolint:errcheck // client gone is not our problem
	}
}

// waterfallViewLocked assembles the waterfall snapshot under s.mu: a live
// published view wins; otherwise the campaign's summed integers are folded
// into a fresh view. ok is false when no waterfall data has been fed.
func (s *Server) waterfallViewLocked() (waterfall.View, bool) {
	if s.wfLive != nil {
		return *s.wfLive, true
	}
	if s.wfPackets == 0 {
		return waterfall.View{}, false
	}
	return waterfall.ViewFromTotals(s.wfPackets, s.wfTotal, s.wfTotals), true
}

// writeServiceMetrics renders the campaign-service gauges in Prometheus
// 0.0.4 text exposition: service-wide pool/queue/dedup accounting plus one
// labelled series per campaign.
func writeServiceMetrics(w io.Writer, v *ServiceView, campaigns []ServiceCampaign) {
	g := func(name, help string, value int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, value)
	}
	g("frfc_service_workers", "Shared worker pool size.", int64(v.Workers))
	g("frfc_service_campaigns", "Campaigns known to the daemon.", int64(v.Campaigns))
	g("frfc_service_campaigns_active", "Campaigns queued or running.", int64(v.Active))
	g("frfc_service_queue_depth", "Jobs queued across all campaigns.", int64(v.QueueDepth))
	g("frfc_service_inflight", "Jobs executing right now.", int64(v.InFlight))
	g("frfc_service_dedup_hits_total", "Result-database lookups served from cache.", v.DedupHits)
	g("frfc_service_dedup_misses_total", "Result-database lookups that required simulation.", v.DedupMisses)
	g("frfc_service_db_entries", "Distinct job hashes in the result database.", int64(v.DBEntries))
	g("frfc_service_db_segments", "Segment files in the result database.", int64(v.DBSegments))
	g("frfc_service_rejected_total", "Submissions refused by admission control.", v.Rejected)
	g("frfc_service_quarantined_total", "Corrupt result lines isolated during recovery.", int64(v.DBQuarantined))
	g("frfc_service_store_errors_total", "Result-database writes that failed.", v.StoreErrors)
	g("frfc_service_stuck_campaigns", "Campaigns with work but no recent progress.", int64(v.StuckCampaigns))
	ready := int64(0)
	if v.Ready {
		ready = 1
	}
	g("frfc_service_ready", "1 while accepting submissions, 0 once draining.", ready)
	for _, name := range []struct{ metric, help string }{
		{"frfc_campaign_jobs", "Jobs in the campaign."},
		{"frfc_campaign_done", "Jobs recorded (any outcome)."},
		{"frfc_campaign_cached", "Jobs served from the result database."},
		{"frfc_campaign_queue_depth", "Jobs still queued."},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name.metric, name.help, name.metric)
		for _, c := range campaigns {
			var val int
			switch name.metric {
			case "frfc_campaign_jobs":
				val = c.Jobs
			case "frfc_campaign_done":
				val = c.Done
			case "frfc_campaign_cached":
				val = c.Cached
			case "frfc_campaign_queue_depth":
				val = c.QueueDepth
			}
			fmt.Fprintf(w, "%s{campaign=\"%s\",name=\"%s\",state=\"%s\"} %d\n",
				name.metric, escapeLabel(c.ID), escapeLabel(c.Name), escapeLabel(c.State), val)
		}
	}
}

// escapeLabel escapes a Prometheus label value (backslash, quote, newline).
func escapeLabel(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
