package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"frfc/internal/sim"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Event{Kind: KindInject})
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Fatalf("nil tracer reported activity: len=%d total=%d dropped=%d",
			tr.Len(), tr.Total(), tr.Dropped())
	}
	if evs := tr.Events(); evs != nil {
		t.Fatalf("nil tracer returned events: %v", evs)
	}
}

func TestRecordNeverAllocates(t *testing.T) {
	tr := New(16)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Record(Event{Cycle: 1, Kind: KindTraverse, Packet: 7})
	})
	if allocs != 0 {
		t.Fatalf("Record allocated %v times per call", allocs)
	}
	var nilTr *Tracer
	allocs = testing.AllocsPerRun(1000, func() {
		nilTr.Record(Event{Cycle: 1, Kind: KindTraverse})
	})
	if allocs != 0 {
		t.Fatalf("nil Record allocated %v times per call", allocs)
	}
}

func TestRingWraparoundKeepsNewest(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Cycle: sim.Cycle(i), Kind: KindTraverse})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		want := sim.Cycle(6 + i)
		if ev.Cycle != want {
			t.Fatalf("event %d has cycle %d, want %d (oldest-first order)", i, ev.Cycle, want)
		}
	}
}

func TestFilter(t *testing.T) {
	evs := []Event{
		{Cycle: 10, Node: 0, Packet: 1, Kind: KindInject},
		{Cycle: 20, Node: 3, Packet: 1, Kind: KindTraverse},
		{Cycle: 30, Node: 3, Packet: 2, Kind: KindTraverse},
		{Cycle: 40, Node: 5, Packet: 2, Kind: KindEject},
		{Cycle: 50, Node: 5, Packet: 0, Kind: KindWedge},
	}
	cases := []struct {
		name string
		f    Filter
		want int
	}{
		{"all", All, 5},
		{"node3", Filter{Node: 3}, 2},
		{"node0", Filter{Node: 0}, 1},
		{"packet1", Filter{Node: -1, Packet: 1}, 2},
		{"window", Filter{Node: -1, From: 20, To: 40}, 3},
		{"from-only", Filter{Node: -1, From: 30}, 3},
		{"node-and-window", Filter{Node: 5, From: 45}, 1},
	}
	for _, c := range cases {
		got := 0
		for _, ev := range evs {
			if c.f.keep(ev) {
				got++
			}
		}
		if got != c.want {
			t.Errorf("%s: kept %d events, want %d", c.name, got, c.want)
		}
	}
}

// chromeTrace mirrors the Chrome trace-event container format.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Ph   string         `json:"ph"`
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ts   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		Pid  int64          `json:"pid"`
		Tid  int64          `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeIsValidJSON(t *testing.T) {
	tr := New(64)
	tr.Record(Event{Cycle: 5, Node: 0, Port: 4, Packet: 1, Seq: 0, Kind: KindInject})
	tr.Record(Event{Cycle: 7, Node: 0, Port: 0, Packet: 1, Kind: KindRoute})
	tr.Record(Event{Cycle: 8, Node: 0, Port: 0, Packet: 1, Arg: 11, Kind: KindReserve})
	tr.Record(Event{Cycle: 11, Node: 0, Port: 0, Packet: 1, Seq: 0, Kind: KindTraverse})
	tr.Record(Event{Cycle: 14, Node: 1, Port: 4, Packet: 1, Seq: 0, Kind: KindEject})
	tr.Record(Event{Cycle: 20, Node: 1, Port: -1, Kind: KindWedge})

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, 4, All); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}

	var instants, metas, spans int
	for _, ev := range ct.TraceEvents {
		switch ev.Ph {
		case "i":
			instants++
		case "M":
			metas++
		case "X":
			spans++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if instants != 6 {
		t.Errorf("instants = %d, want 6", instants)
	}
	// Two routers named + the synthetic packets process.
	if metas != 3 {
		t.Errorf("metadata events = %d, want 3", metas)
	}
	if spans != 1 {
		t.Errorf("packet spans = %d, want 1", spans)
	}
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "X" {
			if ev.Ts != 5 || ev.Dur != 10 {
				t.Errorf("packet span ts=%d dur=%d, want ts=5 dur=10", ev.Ts, ev.Dur)
			}
			if ev.Tid != 1 {
				t.Errorf("packet span tid=%d, want packet id 1", ev.Tid)
			}
		}
	}
}

func TestWriteChromeFiltered(t *testing.T) {
	tr := New(64)
	tr.Record(Event{Cycle: 5, Node: 0, Packet: 1, Kind: KindInject})
	tr.Record(Event{Cycle: 9, Node: 2, Packet: 2, Kind: KindInject})
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, 0, Filter{Node: -1, Packet: 2}); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("filtered output is not valid JSON: %v", err)
	}
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "i" && ev.Args["pkt"].(float64) != 2 {
			t.Errorf("filtered trace contains packet %v", ev.Args["pkt"])
		}
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	tr := New(8)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, 0, All); err != nil {
		t.Fatalf("WriteChrome on empty tracer: %v", err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(ct.TraceEvents) != 0 {
		t.Fatalf("empty tracer produced %d events", len(ct.TraceEvents))
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		s := k.String()
		if s == "" || s[0] == 'K' {
			t.Errorf("Kind(%d) has no readable name: %q", k, s)
		}
	}
}
