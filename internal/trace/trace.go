// Package trace is a cycle-accurate, flit-level event tracer. Networks
// record compact events (inject, route, reserve, park, traverse, eject,
// retry, wedge) into a bounded ring buffer with no allocation per event; the
// buffer is then exported as Chrome trace-event JSON, which Perfetto
// (https://ui.perfetto.dev) and chrome://tracing load directly. Exports can
// be filtered by router, packet ID, or cycle window.
//
// A nil *Tracer is valid and records nothing, so instrumented hot paths cost
// a single nil check when tracing is disabled.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"frfc/internal/sim"
)

// Kind classifies one traced event.
type Kind uint8

// Event kinds. The set mirrors a flit's life: injection at the source NI,
// per-hop routing and reservation, parking (data overtook its control flit),
// link traversal, ejection at the destination, end-to-end retry, and the
// watchdog's wedge verdict. KindStage is emitted by the latency waterfall at
// delivery: one event per stage, Seq holding the stage index and Arg the
// cycles attributed to it, with Cycle set to the packet's creation cycle so
// WriteChrome can render the stages as a stacked span over the packet's
// lifetime.
const (
	KindInject Kind = iota
	KindRoute
	KindReserve
	KindPark
	KindTraverse
	KindEject
	KindRetry
	KindWedge
	KindStage
	numKinds
)

// String returns the event-kind name used in trace output.
func (k Kind) String() string {
	switch k {
	case KindInject:
		return "inject"
	case KindRoute:
		return "route"
	case KindReserve:
		return "reserve"
	case KindPark:
		return "park"
	case KindTraverse:
		return "traverse"
	case KindEject:
		return "eject"
	case KindRetry:
		return "retry"
	case KindWedge:
		return "wedge"
	case KindStage:
		return "stage"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one traced occurrence. Node and Port identify where it happened
// (Port < 0 when not meaningful), Packet/Seq/Attempt identify the flit
// involved (Packet 0 when none), and Arg carries kind-specific data — for
// KindReserve it is the reserved departure cycle.
type Event struct {
	Cycle   sim.Cycle
	Arg     int64
	Packet  uint64
	Seq     int32
	Node    int32
	Port    int8
	Attempt uint8
	Kind    Kind
}

// Tracer is a bounded ring buffer of events. When full, the oldest events
// are overwritten, keeping the most recent window of activity — the part
// that matters when diagnosing a stall or a saturation onset.
type Tracer struct {
	buf []Event
	n   uint64 // total events ever recorded
}

// DefaultCapacity is the event capacity used when New is given a
// non-positive one (¼M events ≈ 12 MB).
const DefaultCapacity = 1 << 18

// New returns a tracer holding at most capacity events; capacity <= 0 uses
// DefaultCapacity.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest when the buffer is full.
// It is safe on a nil tracer (no-op) and never allocates.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	t.buf[t.n%uint64(len(t.buf))] = ev
	t.n++
}

// Len reports how many events the buffer currently holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.n < uint64(len(t.buf)) {
		return int(t.n)
	}
	return len(t.buf)
}

// Total reports how many events were ever recorded, including overwritten
// ones.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.n
}

// Dropped reports how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	if t.n <= uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}

// Events returns the buffered events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil || t.n == 0 {
		return nil
	}
	out := make([]Event, 0, t.Len())
	start := uint64(0)
	if t.n > uint64(len(t.buf)) {
		start = t.n - uint64(len(t.buf))
	}
	for i := start; i < t.n; i++ {
		out = append(out, t.buf[i%uint64(len(t.buf))])
	}
	return out
}

// Filter restricts an export. The zero value—with Node set to -1—selects
// everything; any combination of the fields narrows it.
type Filter struct {
	// Node restricts to events at one router (< 0 = all nodes).
	Node int32
	// Packet restricts to one packet's events (0 = all packets). Events
	// with no packet (wedge) are kept only when Packet is 0.
	Packet uint64
	// From and To bound the cycle window, inclusive; To <= 0 means
	// unbounded above.
	From, To sim.Cycle
}

// All is the filter that keeps every event.
var All = Filter{Node: -1}

// keep reports whether ev passes the filter.
func (f Filter) keep(ev Event) bool {
	if f.Node >= 0 && ev.Node != f.Node {
		return false
	}
	if f.Packet != 0 && ev.Packet != f.Packet {
		return false
	}
	if ev.Cycle < f.From {
		return false
	}
	if f.To > 0 && ev.Cycle > f.To {
		return false
	}
	return true
}

// packetsPid is the synthetic process ID under which per-packet lifetime
// spans are emitted, distinct from any realistic router ID.
const packetsPid = 1 << 20

// stageSpanNames labels KindStage events by Seq in trace exports. The order
// mirrors the waterfall's stage order (internal/waterfall), which asserts the
// two stay in sync.
var stageSpanNames = []string{"queue", "reserve", "arb", "stall", "sched", "link", "drain"}

// StageSpanName returns the label WriteChrome uses for a KindStage event
// with the given Seq.
func StageSpanName(seq int32) string {
	if seq >= 0 && int(seq) < len(stageSpanNames) {
		return stageSpanNames[seq]
	}
	return fmt.Sprintf("stage%d", seq)
}

// WriteChrome exports the filtered events as Chrome trace-event JSON. One
// simulated cycle maps to one microsecond of trace time. Every event becomes
// a thread-scoped instant on pid=router, tid=port; additionally each packet
// appearing in the filtered set gets one complete ("X") span from its first
// to its last filtered event under a synthetic "packets" process, so packet
// lifetimes render as bars in Perfetto.
//
// radix, when positive, names router processes by mesh coordinate; 0 labels
// them by ID only.
func (t *Tracer) WriteChrome(w io.Writer, radix int, f Filter) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	type span struct{ from, to sim.Cycle }
	type stageSet struct {
		created sim.Cycle
		cycles  []int64
	}
	nodes := map[int32]bool{}
	spans := map[uint64]*span{}
	stages := map[uint64]*stageSet{}
	events := t.Events()
	for _, ev := range events {
		if !f.keep(ev) {
			continue
		}
		if ev.Kind == KindStage {
			ss := stages[ev.Packet]
			if ss == nil {
				ss = &stageSet{created: ev.Cycle}
				stages[ev.Packet] = ss
			}
			for int(ev.Seq) >= len(ss.cycles) {
				ss.cycles = append(ss.cycles, 0)
			}
			ss.cycles[ev.Seq] = ev.Arg
			continue
		}
		nodes[ev.Node] = true
		if ev.Packet != 0 {
			s := spans[ev.Packet]
			if s == nil {
				spans[ev.Packet] = &span{from: ev.Cycle, to: ev.Cycle}
			} else {
				if ev.Cycle < s.from {
					s.from = ev.Cycle
				}
				if ev.Cycle > s.to {
					s.to = ev.Cycle
				}
			}
		}
	}

	// Process metadata: name each router, plus the synthetic packets row.
	ids := make([]int32, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		name := fmt.Sprintf("router %d", id)
		if radix > 0 {
			name = fmt.Sprintf("router %d (%d,%d)", id, int(id)%radix, int(id)/radix)
		}
		emit(`{"ph":"M","name":"process_name","pid":%d,"args":{"name":"%s"}}`, id, name)
	}
	if len(spans) > 0 || len(stages) > 0 {
		emit(`{"ph":"M","name":"process_name","pid":%d,"args":{"name":"packets"}}`, packetsPid)
	}

	for _, ev := range events {
		if !f.keep(ev) || ev.Kind == KindStage {
			continue
		}
		port := ev.Port
		if port < 0 {
			port = 0
		}
		emit(`{"ph":"i","s":"t","name":"%s","cat":"flit","ts":%d,"pid":%d,"tid":%d,"args":{"pkt":%d,"seq":%d,"attempt":%d,"port":%d,"arg":%d}}`,
			ev.Kind, int64(ev.Cycle), ev.Node, port, ev.Packet, ev.Seq, ev.Attempt, ev.Port, ev.Arg)
	}

	pkts := make([]uint64, 0, len(spans))
	for id := range spans {
		pkts = append(pkts, id)
	}
	sort.Slice(pkts, func(i, j int) bool { return pkts[i] < pkts[j] })
	for _, id := range pkts {
		s := spans[id]
		dur := int64(s.to-s.from) + 1
		emit(`{"ph":"X","name":"pkt %d","cat":"packet","ts":%d,"dur":%d,"pid":%d,"tid":%d}`,
			id, int64(s.from), dur, packetsPid, id)
	}

	// Waterfall stage sub-spans: each packet's stages laid end to end from
	// its creation cycle, on the packet's own track, so Perfetto shows where
	// the cycles went inside the lifetime bar.
	staged := make([]uint64, 0, len(stages))
	for id := range stages {
		staged = append(staged, id)
	}
	sort.Slice(staged, func(i, j int) bool { return staged[i] < staged[j] })
	for _, id := range staged {
		ss := stages[id]
		ts := int64(ss.created)
		for seq, dur := range ss.cycles {
			if dur > 0 {
				emit(`{"ph":"X","name":"%s","cat":"stage","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{"pkt":%d}}`,
					StageSpanName(int32(seq)), ts, dur, packetsPid, id)
			}
			ts += dur
		}
	}

	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
