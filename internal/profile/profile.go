// Package profile is the simulator's self-profiling registry: where
// internal/metrics counts what the simulated fabric did, this package counts
// what the simulator itself did to compute it. Per node and per component it
// separates ticks that performed work (moved a flit, absorbed a credit,
// arbitrated a candidate) from ticks that woke for nothing, attributes the FR
// router's activity to its pipeline phases (reservation scheduling,
// arbitration, switch traversal, credit handling), and samples allocation and
// GC deltas on the metrics epoch. The resulting idle fractions are the
// measured case for the event-driven kernel refactor.
//
// The contract matches internal/metrics: every method is safe — and free of
// allocation — on a nil *Registry, so a disabled profiler costs the hot path
// one pointer test per tick. Profiling is observation-only; nothing here may
// feed back into simulation behaviour.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"

	"frfc/internal/sim"
)

// Component identifies which simulator object a tick belongs to.
type Component int

const (
	// CompRouter is a router tick (FR or VC-family).
	CompRouter Component = iota
	// CompNI is a network-interface (injection-side) tick.
	CompNI
	// CompSink is an ejection-side tick.
	CompSink
	// NumComponents sizes per-component arrays.
	NumComponents
)

var componentNames = [NumComponents]string{"router", "ni", "sink"}

// String names the component for exports.
func (c Component) String() string {
	if c < 0 || c >= NumComponents {
		return fmt.Sprintf("component(%d)", int(c))
	}
	return componentNames[c]
}

// Phase identifies one of the FR router's pipeline phases for cycle
// attribution. A phase "cycle" is one unit of work inside that phase, not a
// wall-clock measure: credit messages absorbed, control candidates
// arbitrated, output-scheduler invocations, and data flits through the
// crossbar respectively.
type Phase int

const (
	// PhaseSched is reservation scheduling: output-table scheduling work
	// triggered by arbitration winners (lead admission, departure search).
	PhaseSched Phase = iota
	// PhaseArb is control-flit arbitration: candidates considered in the
	// arbitration walk plus control receptions queued for it.
	PhaseArb
	// PhaseSwitch is switch traversal: data flits leaving through the
	// crossbar or arriving at an input.
	PhaseSwitch
	// PhaseCredit is credit handling: credit messages absorbed from data
	// and control planes.
	PhaseCredit
	// NumPhases sizes per-phase arrays.
	NumPhases
)

var phaseNames = [NumPhases]string{"sched", "arb", "switch", "credit"}

// String names the phase for exports.
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return fmt.Sprintf("phase(%d)", int(p))
	}
	return phaseNames[p]
}

// NodeProfile accounts one node's simulator activity, indexed by NodeID in
// the registry.
type NodeProfile struct {
	// Ticks counts how many times each component at this node was ticked;
	// Active counts the subset of those ticks that performed any work. The
	// gap is the wake-for-nothing overhead an event-driven kernel would
	// skip.
	Ticks  [NumComponents]int64 `json:"ticks"`
	Active [NumComponents]int64 `json:"active"`
	// Phases attributes the FR router's work units to pipeline phases
	// (see Phase). Zero for non-FR substrates.
	Phases [NumPhases]int64 `json:"phases"`
}

// active reports whether the node recorded any ticks at all.
func (n *NodeProfile) active() bool {
	for c := 0; c < int(NumComponents); c++ {
		if n.Ticks[c] != 0 {
			return true
		}
	}
	return false
}

// MemStats aggregates per-epoch allocation and GC deltas sampled with
// runtime.ReadMemStats. These numbers describe the host process, not the
// simulated machine, and are inherently nondeterministic — they live only in
// the profile registry and never enter experiment results.
type MemStats struct {
	// Epochs is how many samples were folded in.
	Epochs int64 `json:"epochs"`
	// AllocBytes, Mallocs and Frees are cumulative heap deltas over the
	// sampled window; NumGC counts completed collections and PauseNs their
	// total stop-the-world time.
	AllocBytes int64 `json:"allocBytes"`
	Mallocs    int64 `json:"mallocs"`
	Frees      int64 `json:"frees"`
	NumGC      int64 `json:"numGC"`
	PauseNs    int64 `json:"pauseNs"`
	// MaxEpochAllocBytes is the largest single-epoch allocation delta —
	// the spike the steady-state average hides.
	MaxEpochAllocBytes int64 `json:"maxEpochAllocBytes"`
}

// DefaultEpoch is the sampling period, in cycles, used when a registry is
// created with a non-positive one. It matches metrics.DefaultEpoch so the
// two registries sample on the same tick.
const DefaultEpoch = 64

// Registry holds every node's self-profiling counters for one simulated
// network.
type Registry struct {
	// Epoch is the memory-sampling period in cycles.
	Epoch sim.Cycle `json:"epoch"`
	// Radix is the mesh radix k (k×k nodes); Cycles is the simulated run
	// length recorded at export time.
	Radix  int           `json:"radix"`
	Cycles sim.Cycle     `json:"cycles"`
	Nodes  []NodeProfile `json:"nodes"`
	// Mem is the aggregated allocation/GC sample set.
	Mem MemStats `json:"mem"`
	// Cols and Rows, when both positive, describe a rectangular cols×rows
	// layout (node id = y*cols + x) and take precedence over the square
	// Radix in grid exports. Zero for square meshes.
	Cols int `json:"cols,omitempty"`
	Rows int `json:"rows,omitempty"`

	// lastMem is the previous runtime snapshot; primed once the first
	// sample has been taken so the initial absolute values don't count as
	// a delta.
	lastMem runtime.MemStats
	primed  bool
}

// NewRegistry returns an empty registry sampling memory every epoch cycles
// (non-positive = DefaultEpoch). Node storage is sized on Init.
func NewRegistry(epoch sim.Cycle) *Registry {
	if epoch <= 0 {
		epoch = DefaultEpoch
	}
	return &Registry{Epoch: epoch}
}

// Init sizes the registry for a k×k mesh. It is idempotent and keeps
// existing counts when already sized.
func (r *Registry) Init(radix int) {
	if r == nil || radix <= 0 {
		return
	}
	if len(r.Nodes) < radix*radix {
		nodes := make([]NodeProfile, radix*radix)
		copy(nodes, r.Nodes)
		r.Nodes = nodes
	}
	r.Radix = radix
}

// InitRect sizes the registry for a rectangular cols×rows layout with nodes
// numbered row-major (id = y*cols + x).
func (r *Registry) InitRect(cols, rows int) {
	if r == nil || cols <= 0 || rows <= 0 {
		return
	}
	if len(r.Nodes) < cols*rows {
		nodes := make([]NodeProfile, cols*rows)
		copy(nodes, r.Nodes)
		r.Nodes = nodes
	}
	r.Cols, r.Rows = cols, rows
}

// dims reports the grid layout: the rectangular one when set, else the square
// radix on both axes.
func (r *Registry) dims() (cols, rows int) {
	if r.Cols > 0 && r.Rows > 0 {
		return r.Cols, r.Rows
	}
	return r.Radix, r.Radix
}

// at returns the node's profile, growing the registry if an ID beyond the
// initialised size appears (defensive; normal paths Init first).
func (r *Registry) at(node int) *NodeProfile {
	if node >= len(r.Nodes) {
		nodes := make([]NodeProfile, node+1)
		copy(nodes, r.Nodes)
		r.Nodes = nodes
	}
	return &r.Nodes[node]
}

// RouterTick records one router tick at node with its per-phase work counts:
// sched output-scheduler invocations, arb arbitration candidates, sw data
// flits through the crossbar, cred credit messages absorbed. The tick is
// active when any phase did work.
func (r *Registry) RouterTick(node, sched, arb, sw, cred int) {
	if r == nil {
		return
	}
	n := r.at(node)
	n.Ticks[CompRouter]++
	if sched|arb|sw|cred != 0 {
		n.Active[CompRouter]++
	}
	n.Phases[PhaseSched] += int64(sched)
	n.Phases[PhaseArb] += int64(arb)
	n.Phases[PhaseSwitch] += int64(sw)
	n.Phases[PhaseCredit] += int64(cred)
}

// ComponentTick records one tick of component c at node, active when the
// component performed any work this cycle. Used for NIs, sinks, and the
// VC-family routers, which account activity without phase attribution.
func (r *Registry) ComponentTick(c Component, node int, active bool) {
	if r == nil {
		return
	}
	n := r.at(node)
	n.Ticks[c]++
	if active {
		n.Active[c]++
	}
}

// Due reports whether now falls on the memory-sampling epoch.
func (r *Registry) Due(now sim.Cycle) bool {
	return r != nil && r.Epoch > 0 && now%r.Epoch == 0
}

// SampleMem folds one runtime.ReadMemStats delta into the registry. The
// first call primes the baseline and records nothing. ReadMemStats stops the
// world briefly; call it on the sampling epoch, not every cycle.
func (r *Registry) SampleMem() {
	if r == nil {
		return
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	if r.primed {
		alloc := int64(m.TotalAlloc - r.lastMem.TotalAlloc)
		r.Mem.Epochs++
		r.Mem.AllocBytes += alloc
		r.Mem.Mallocs += int64(m.Mallocs - r.lastMem.Mallocs)
		r.Mem.Frees += int64(m.Frees - r.lastMem.Frees)
		r.Mem.NumGC += int64(m.NumGC - r.lastMem.NumGC)
		r.Mem.PauseNs += int64(m.PauseTotalNs - r.lastMem.PauseTotalNs)
		if alloc > r.Mem.MaxEpochAllocBytes {
			r.Mem.MaxEpochAllocBytes = alloc
		}
	}
	r.lastMem = m
	r.primed = true
}

// Clone returns a deep copy of the registry, safe to hand to another
// goroutine while the original keeps accumulating. A nil registry clones to
// nil.
func (r *Registry) Clone() *Registry {
	if r == nil {
		return nil
	}
	c := *r
	c.Nodes = append([]NodeProfile(nil), r.Nodes...)
	return &c
}

// Merge folds another registry's counts into this one: tick and phase
// counters add, memory deltas add (epoch maxima take the larger), layout
// dimensions take the larger, and Cycles accumulate. Merging nil is a no-op.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	if o.Radix > r.Radix {
		r.Radix = o.Radix
	}
	if o.Cols > r.Cols {
		r.Cols = o.Cols
	}
	if o.Rows > r.Rows {
		r.Rows = o.Rows
	}
	r.Cycles += o.Cycles
	if len(o.Nodes) > len(r.Nodes) {
		nodes := make([]NodeProfile, len(o.Nodes))
		copy(nodes, r.Nodes)
		r.Nodes = nodes
	}
	for i := range o.Nodes {
		dst, src := &r.Nodes[i], &o.Nodes[i]
		for c := 0; c < int(NumComponents); c++ {
			dst.Ticks[c] += src.Ticks[c]
			dst.Active[c] += src.Active[c]
		}
		for p := 0; p < int(NumPhases); p++ {
			dst.Phases[p] += src.Phases[p]
		}
	}
	r.Mem.Epochs += o.Mem.Epochs
	r.Mem.AllocBytes += o.Mem.AllocBytes
	r.Mem.Mallocs += o.Mem.Mallocs
	r.Mem.Frees += o.Mem.Frees
	r.Mem.NumGC += o.Mem.NumGC
	r.Mem.PauseNs += o.Mem.PauseNs
	if o.Mem.MaxEpochAllocBytes > r.Mem.MaxEpochAllocBytes {
		r.Mem.MaxEpochAllocBytes = o.Mem.MaxEpochAllocBytes
	}
}

// Totals sums ticks and active ticks across every node and component.
func (r *Registry) Totals() (ticks, active int64) {
	if r == nil {
		return 0, 0
	}
	for i := range r.Nodes {
		for c := 0; c < int(NumComponents); c++ {
			ticks += r.Nodes[i].Ticks[c]
			active += r.Nodes[i].Active[c]
		}
	}
	return ticks, active
}

// IdleFraction is the fraction of all component ticks that performed no
// work, in [0,1]; 0 when nothing was recorded.
func (r *Registry) IdleFraction() float64 {
	ticks, active := r.Totals()
	if ticks == 0 {
		return 0
	}
	return 1 - float64(active)/float64(ticks)
}

// PhaseTotals sums the FR router's per-phase work units across all nodes.
func (r *Registry) PhaseTotals() [NumPhases]int64 {
	var t [NumPhases]int64
	if r == nil {
		return t
	}
	for i := range r.Nodes {
		for p := 0; p < int(NumPhases); p++ {
			t[p] += r.Nodes[i].Phases[p]
		}
	}
	return t
}

// HotNode describes one router's activity for Hottest.
type HotNode struct {
	// Node is the node id; X and Y its mesh coordinates.
	Node int `json:"node"`
	X    int `json:"x"`
	Y    int `json:"y"`
	// ActiveFraction is active router ticks over total router ticks.
	ActiveFraction float64 `json:"activeFraction"`
}

// Hottest returns the n routers with the highest active-tick fraction,
// busiest first, ties broken by node id for determinism. Nodes that never
// ticked are skipped.
func (r *Registry) Hottest(n int) []HotNode {
	if r == nil || n <= 0 {
		return nil
	}
	cols, _ := r.dims()
	var hot []HotNode
	for id := range r.Nodes {
		ticks := r.Nodes[id].Ticks[CompRouter]
		if ticks == 0 {
			continue
		}
		x, y := id, 0
		if cols > 0 {
			x, y = id%cols, id/cols
		}
		hot = append(hot, HotNode{Node: id, X: x, Y: y,
			ActiveFraction: float64(r.Nodes[id].Active[CompRouter]) / float64(ticks)})
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].ActiveFraction != hot[j].ActiveFraction {
			return hot[i].ActiveFraction > hot[j].ActiveFraction
		}
		return hot[i].Node < hot[j].Node
	})
	if len(hot) > n {
		hot = hot[:n]
	}
	return hot
}

// WriteJSON exports the registry as one indented JSON object.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteIdleCSV writes a k×k grid of per-router idle-tick fractions (0..1),
// one row per mesh row, matching the physical layout so the file reads as a
// heatmap of where the cycle-stepped kernel wastes its wakeups.
func (r *Registry) WriteIdleCSV(w io.Writer) error {
	return r.writeGrid(w, "# idle router-tick fraction per node (rows = mesh rows, y increasing downward)",
		func(n *NodeProfile) float64 {
			if n.Ticks[CompRouter] == 0 {
				return 0
			}
			return 1 - float64(n.Active[CompRouter])/float64(n.Ticks[CompRouter])
		})
}

func (r *Registry) writeGrid(w io.Writer, header string, cell func(*NodeProfile) float64) error {
	if r == nil {
		return fmt.Errorf("profile: nil registry")
	}
	cols, rows := r.dims()
	if cols <= 0 || rows <= 0 {
		return fmt.Errorf("profile: registry not initialised (cols %d, rows %d)", cols, rows)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			if x > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			var v float64
			if id := y*cols + x; id < len(r.Nodes) {
				v = cell(&r.Nodes[id])
			}
			if _, err := fmt.Fprintf(w, "%.4f", v); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders a short human-readable digest: overall idle fraction,
// per-component idle fractions, the FR phase split, and the allocation rate.
func (r *Registry) Summary() string {
	if r == nil {
		return ""
	}
	ticks, _ := r.Totals()
	if ticks == 0 {
		return "profile: no ticks recorded"
	}
	var comp [NumComponents][2]int64
	for i := range r.Nodes {
		for c := 0; c < int(NumComponents); c++ {
			comp[c][0] += r.Nodes[i].Ticks[c]
			comp[c][1] += r.Nodes[i].Active[c]
		}
	}
	s := fmt.Sprintf("profile: %.1f%% of %d component ticks idle", 100*r.IdleFraction(), ticks)
	for c := Component(0); c < NumComponents; c++ {
		if comp[c][0] == 0 {
			continue
		}
		s += fmt.Sprintf("; %s %.1f%%", c, 100*(1-float64(comp[c][1])/float64(comp[c][0])))
	}
	ph := r.PhaseTotals()
	var phSum int64
	for p := 0; p < int(NumPhases); p++ {
		phSum += ph[p]
	}
	if phSum > 0 {
		s += fmt.Sprintf("; phases sched %d / arb %d / switch %d / credit %d",
			ph[PhaseSched], ph[PhaseArb], ph[PhaseSwitch], ph[PhaseCredit])
	}
	if r.Mem.Epochs > 0 {
		s += fmt.Sprintf("; mem %d B/epoch over %d epochs (%d GCs)",
			r.Mem.AllocBytes/r.Mem.Epochs, r.Mem.Epochs, r.Mem.NumGC)
	}
	return s
}
