package profile

import (
	"fmt"
	"io"
)

// WritePrometheus exports the registry in Prometheus text exposition format
// (version 0.0.4): per-node tick/active-tick counters labelled by component,
// per-node FR phase attribution, per-router idle-fraction gauges, and the
// run-level memory sample aggregates. The receiver must not be mutated
// concurrently — export a Clone of a live registry instead.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("profile: nil registry")
	}
	cols, _ := r.dims()
	coord := func(id int) (x, y int) {
		if cols <= 0 {
			return id, 0
		}
		return id % cols, id / cols
	}

	if _, err := io.WriteString(w,
		"# HELP frfc_profile_ticks_total Simulator ticks executed for this component at this node.\n"+
			"# TYPE frfc_profile_ticks_total counter\n"); err != nil {
		return err
	}
	for id := range r.Nodes {
		x, y := coord(id)
		for c := Component(0); c < NumComponents; c++ {
			if _, err := fmt.Fprintf(w, "frfc_profile_ticks_total{node=\"%d\",x=\"%d\",y=\"%d\",component=\"%s\"} %d\n",
				id, x, y, c, r.Nodes[id].Ticks[c]); err != nil {
				return err
			}
		}
	}
	if _, err := io.WriteString(w,
		"# HELP frfc_profile_active_ticks_total Ticks that performed any work for this component at this node.\n"+
			"# TYPE frfc_profile_active_ticks_total counter\n"); err != nil {
		return err
	}
	for id := range r.Nodes {
		x, y := coord(id)
		for c := Component(0); c < NumComponents; c++ {
			if _, err := fmt.Fprintf(w, "frfc_profile_active_ticks_total{node=\"%d\",x=\"%d\",y=\"%d\",component=\"%s\"} %d\n",
				id, x, y, c, r.Nodes[id].Active[c]); err != nil {
				return err
			}
		}
	}

	if _, err := io.WriteString(w,
		"# HELP frfc_profile_phase_work_total FR router work units attributed to this pipeline phase at this node.\n"+
			"# TYPE frfc_profile_phase_work_total counter\n"); err != nil {
		return err
	}
	for id := range r.Nodes {
		x, y := coord(id)
		for p := Phase(0); p < NumPhases; p++ {
			if _, err := fmt.Fprintf(w, "frfc_profile_phase_work_total{node=\"%d\",x=\"%d\",y=\"%d\",phase=\"%s\"} %d\n",
				id, x, y, p, r.Nodes[id].Phases[p]); err != nil {
				return err
			}
		}
	}

	if _, err := io.WriteString(w,
		"# HELP frfc_profile_idle_fraction Fraction of this node's router ticks that performed no work.\n"+
			"# TYPE frfc_profile_idle_fraction gauge\n"); err != nil {
		return err
	}
	for id := range r.Nodes {
		n := &r.Nodes[id]
		if n.Ticks[CompRouter] == 0 {
			continue
		}
		x, y := coord(id)
		if _, err := fmt.Fprintf(w, "frfc_profile_idle_fraction{node=\"%d\",x=\"%d\",y=\"%d\"} %g\n",
			id, x, y, 1-float64(n.Active[CompRouter])/float64(n.Ticks[CompRouter])); err != nil {
			return err
		}
	}

	_, err := fmt.Fprintf(w,
		"# HELP frfc_profile_mem_alloc_bytes_total Heap bytes allocated over the sampled epochs.\n"+
			"# TYPE frfc_profile_mem_alloc_bytes_total counter\nfrfc_profile_mem_alloc_bytes_total %d\n"+
			"# HELP frfc_profile_mem_mallocs_total Heap objects allocated over the sampled epochs.\n"+
			"# TYPE frfc_profile_mem_mallocs_total counter\nfrfc_profile_mem_mallocs_total %d\n"+
			"# HELP frfc_profile_mem_gc_total Garbage collections completed over the sampled epochs.\n"+
			"# TYPE frfc_profile_mem_gc_total counter\nfrfc_profile_mem_gc_total %d\n"+
			"# HELP frfc_profile_mem_pause_ns_total GC stop-the-world nanoseconds over the sampled epochs.\n"+
			"# TYPE frfc_profile_mem_pause_ns_total counter\nfrfc_profile_mem_pause_ns_total %d\n"+
			"# HELP frfc_profile_mem_epochs Memory samples folded into this registry.\n"+
			"# TYPE frfc_profile_mem_epochs gauge\nfrfc_profile_mem_epochs %d\n"+
			"# HELP frfc_profile_mem_max_epoch_alloc_bytes Largest single-epoch allocation delta.\n"+
			"# TYPE frfc_profile_mem_max_epoch_alloc_bytes gauge\nfrfc_profile_mem_max_epoch_alloc_bytes %d\n"+
			"# HELP frfc_profile_cycles Simulated cycles covered by this profile registry.\n"+
			"# TYPE frfc_profile_cycles gauge\nfrfc_profile_cycles %d\n",
		r.Mem.AllocBytes, r.Mem.Mallocs, r.Mem.NumGC, r.Mem.PauseNs,
		r.Mem.Epochs, r.Mem.MaxEpochAllocBytes, r.Cycles)
	return err
}
