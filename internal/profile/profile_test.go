package profile

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"frfc/internal/sim"
)

// A nil registry must absorb every call without panicking or allocating.
func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Init(4)
	r.InitRect(3, 2)
	r.RouterTick(0, 1, 2, 3, 4)
	r.ComponentTick(CompNI, 1, true)
	r.SampleMem()
	r.Merge(NewRegistry(0))
	if r.Due(64) {
		t.Fatal("nil registry reported a due epoch")
	}
	if c := r.Clone(); c != nil {
		t.Fatalf("nil clone = %v", c)
	}
	if ticks, active := r.Totals(); ticks != 0 || active != 0 {
		t.Fatalf("nil totals = %d/%d", ticks, active)
	}
	if f := r.IdleFraction(); f != 0 {
		t.Fatalf("nil idle fraction = %g", f)
	}
	if h := r.Hottest(3); h != nil {
		t.Fatalf("nil hottest = %v", h)
	}
	if s := r.Summary(); s != "" {
		t.Fatalf("nil summary = %q", s)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		r.RouterTick(0, 1, 1, 1, 1)
		r.ComponentTick(CompSink, 0, false)
	}); allocs != 0 {
		t.Fatalf("nil registry allocated %v per op", allocs)
	}
}

func TestAccountingAndIdleFraction(t *testing.T) {
	r := NewRegistry(0)
	if r.Epoch != DefaultEpoch {
		t.Fatalf("default epoch = %d", r.Epoch)
	}
	r.Init(2)
	// Node 0: 2 router ticks, 1 active; node 1: 2 ticks, 0 active.
	r.RouterTick(0, 1, 2, 3, 4)
	r.RouterTick(0, 0, 0, 0, 0)
	r.RouterTick(1, 0, 0, 0, 0)
	r.RouterTick(1, 0, 0, 0, 0)
	r.ComponentTick(CompNI, 0, true)
	r.ComponentTick(CompSink, 0, false)

	ticks, active := r.Totals()
	if ticks != 6 || active != 2 {
		t.Fatalf("totals = %d/%d, want 6/2", ticks, active)
	}
	if f := r.IdleFraction(); math.Abs(f-2.0/3) > 1e-12 {
		t.Fatalf("idle fraction = %g", f)
	}
	ph := r.PhaseTotals()
	if ph[PhaseSched] != 1 || ph[PhaseArb] != 2 || ph[PhaseSwitch] != 3 || ph[PhaseCredit] != 4 {
		t.Fatalf("phase totals = %v", ph)
	}
	hot := r.Hottest(5)
	if len(hot) != 2 || hot[0].Node != 0 || hot[0].ActiveFraction != 0.5 || hot[1].Node != 1 {
		t.Fatalf("hottest = %+v", hot)
	}
	if hot[0].X != 0 || hot[0].Y != 0 || hot[1].X != 1 || hot[1].Y != 0 {
		t.Fatalf("hottest coords = %+v", hot)
	}
	if s := r.Summary(); !strings.Contains(s, "router") || !strings.Contains(s, "sched 1") {
		t.Fatalf("summary = %q", s)
	}
}

func TestCloneMerge(t *testing.T) {
	a := NewRegistry(32)
	a.Init(2)
	a.RouterTick(0, 1, 1, 1, 1)
	a.Cycles = 100
	a.Mem = MemStats{Epochs: 2, AllocBytes: 10, Mallocs: 3, Frees: 1, NumGC: 1, PauseNs: 7, MaxEpochAllocBytes: 8}

	b := a.Clone()
	b.RouterTick(0, 0, 0, 0, 0)
	if a.Nodes[0].Ticks[CompRouter] != 1 || b.Nodes[0].Ticks[CompRouter] != 2 {
		t.Fatal("clone shares node storage")
	}

	c := NewRegistry(32)
	c.Init(3)
	c.RouterTick(5, 0, 2, 0, 0)
	c.Cycles = 50
	c.Mem = MemStats{Epochs: 1, AllocBytes: 20, MaxEpochAllocBytes: 20}

	a.Merge(c)
	if a.Radix != 3 || len(a.Nodes) != 9 {
		t.Fatalf("merge did not grow: radix %d, %d nodes", a.Radix, len(a.Nodes))
	}
	if a.Cycles != 150 {
		t.Fatalf("cycles = %d", a.Cycles)
	}
	if a.Nodes[5].Phases[PhaseArb] != 2 || a.Nodes[0].Ticks[CompRouter] != 1 {
		t.Fatal("merge lost counts")
	}
	if a.Mem.Epochs != 3 || a.Mem.AllocBytes != 30 || a.Mem.MaxEpochAllocBytes != 20 {
		t.Fatalf("mem merge = %+v", a.Mem)
	}
}

func TestSampleMemPrimes(t *testing.T) {
	r := NewRegistry(0)
	r.SampleMem()
	if r.Mem.Epochs != 0 {
		t.Fatalf("first sample recorded a delta: %+v", r.Mem)
	}
	// Allocate something observable, then sample the delta.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	_ = sink
	r.SampleMem()
	if r.Mem.Epochs != 1 || r.Mem.AllocBytes <= 0 || r.Mem.Mallocs <= 0 {
		t.Fatalf("second sample missed the allocation: %+v", r.Mem)
	}
	if r.Mem.MaxEpochAllocBytes != r.Mem.AllocBytes {
		t.Fatalf("max epoch delta %d != only delta %d", r.Mem.MaxEpochAllocBytes, r.Mem.AllocBytes)
	}
}

func TestDue(t *testing.T) {
	r := NewRegistry(64)
	for _, tc := range []struct {
		now  sim.Cycle
		want bool
	}{{0, true}, {1, false}, {63, false}, {64, true}, {128, true}} {
		if got := r.Due(tc.now); got != tc.want {
			t.Fatalf("Due(%d) = %v", tc.now, got)
		}
	}
}

func TestWriteIdleCSVAndJSON(t *testing.T) {
	r := NewRegistry(0)
	r.Init(2)
	r.RouterTick(0, 0, 0, 0, 0)
	r.RouterTick(0, 1, 0, 0, 0)
	r.RouterTick(3, 0, 0, 0, 0)

	var csv bytes.Buffer
	if err := r.WriteIdleCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "#") {
		t.Fatalf("csv shape wrong:\n%s", csv.String())
	}
	if lines[1] != "0.5000,0.0000" || lines[2] != "0.0000,1.0000" {
		t.Fatalf("csv values wrong:\n%s", csv.String())
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("json invalid: %v", err)
	}
	if decoded["radix"].(float64) != 2 {
		t.Fatalf("json radix = %v", decoded["radix"])
	}
	if _, ok := decoded["mem"]; !ok {
		t.Fatal("json missing mem block")
	}

	// Uninitialised registries refuse grid export rather than writing junk.
	if err := NewRegistry(0).WriteIdleCSV(&bytes.Buffer{}); err == nil {
		t.Fatal("uninitialised WriteIdleCSV did not error")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry(0)
	r.InitRect(3, 2)
	r.RouterTick(4, 1, 1, 1, 1)
	r.RouterTick(4, 0, 0, 0, 0)
	r.Cycles = 256
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`frfc_profile_ticks_total{node="4",x="1",y="1",component="router"} 2`,
		`frfc_profile_active_ticks_total{node="4",x="1",y="1",component="router"} 1`,
		`frfc_profile_phase_work_total{node="4",x="1",y="1",phase="sched"} 1`,
		`frfc_profile_idle_fraction{node="4",x="1",y="1"} 0.5`,
		"frfc_profile_cycles 256",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line is "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}
}
