package sim

// Pipe is a bandwidth-limited delay line modeling a pipelined wire between
// two components. Items sent at cycle t become receivable at cycle t+latency.
// At most width items may be sent per cycle, which models the per-cycle
// bandwidth of the physical channel (one wide data flit per cycle on a data
// link; two narrow control flits per cycle on a control link in the paper's
// configuration).
//
// A Pipe is single-producer single-consumer and not safe for concurrent use;
// the simulation is single-threaded by design.
type Pipe[T any] struct {
	latency Cycle
	width   int

	q []pipeEntry[T]

	lastSendCycle Cycle
	sentThisCycle int

	// Fault-injection state (NewFaultyPipe). Each item sent is corrupted
	// in flight with probability faultRate; the receiver detects the
	// corruption, NACKs, and the sender — which holds every unacknowledged
	// item in a retransmit buffer — replays it, adding one link round-trip
	// (2×latency) per corruption. Replay is go-back-N: items behind a
	// corrupted one are delivered no earlier than it, so FIFO order is
	// preserved and the receiver never has to reorder.
	faultRate   float64
	rng         *RNG
	onCorrupt   func()
	retransmits int64

	// Hard-fault state (Sever/Restore). A severed pipe models a dead wire:
	// items already in flight are destroyed at sever time and every
	// subsequent Send is discarded (through onDrop when set) instead of
	// enqueued. Senders keep their normal bandwidth accounting so model
	// bugs still surface while a link is down.
	severed bool
	onDrop  func(T)

	// Bit-error state (WithBitErrors). Distinct from faultRate above: a bit
	// error does not delay or drop the item — it is delivered on time,
	// transformed by corruptFn (which marks it corrupted), modeling residual
	// errors that escape the link layer and must be caught by higher-level
	// CRC or end-to-end checks.
	ber       float64
	berRNG    *RNG
	corruptFn func(T) T
	corrupted int64
}

type pipeEntry[T any] struct {
	readyAt Cycle
	item    T
}

// NewPipe returns a pipe with the given latency (cycles, must be >= 1 so
// that same-cycle delivery — which would make component tick order matter —
// is impossible) and width (items per cycle, must be >= 1).
func NewPipe[T any](latency Cycle, width int) *Pipe[T] {
	if latency < 1 {
		panic("sim: pipe latency must be at least 1 cycle")
	}
	if width < 1 {
		panic("sim: pipe width must be at least 1 item per cycle")
	}
	return &Pipe[T]{latency: latency, width: width, lastSendCycle: Never}
}

// NewFaultyPipe returns a pipe that corrupts each item in flight with the
// given probability and recovers it by link-level detection-and-
// retransmission: the receiver detects the corrupted item, returns a NACK,
// and the sender replays from its retransmit buffer, costing one link
// round-trip (2×latency) per corruption. An item may be corrupted again on
// replay, so its total delay is latency + 2·latency·k for a geometrically
// distributed k. Delivery remains FIFO (go-back-N), so no item overtakes a
// retransmitting predecessor. onCorrupt, if non-nil, is invoked once per
// corruption event; rate must lie in [0,1) and rng must be non-nil when
// rate > 0.
func NewFaultyPipe[T any](latency Cycle, width int, rate float64, rng *RNG, onCorrupt func()) *Pipe[T] {
	if rate < 0 || rate >= 1 || rate != rate {
		panic("sim: fault rate must lie in [0, 1)")
	}
	if rate > 0 && rng == nil {
		panic("sim: faulty pipe needs an RNG")
	}
	p := NewPipe[T](latency, width)
	p.faultRate = rate
	p.rng = rng
	p.onCorrupt = onCorrupt
	return p
}

// Retransmits reports how many corruption-and-replay events the pipe's
// link-level recovery has performed.
func (p *Pipe[T]) Retransmits() int64 { return p.retransmits }

// WithBitErrors arms the pipe's bit-error model: each item sent is delivered
// on time but passed through corrupt — which should mark it corrupted — with
// probability ber. This is the corruption mode distinct from loss: the wire
// still delivers, the payload is wrong, and it is the receiver's CRC or the
// end-to-end check that must notice. ber must lie in [0,1); rng and corrupt
// must be non-nil when ber > 0. It returns the pipe for chaining and composes
// with the loss/delay fault model of NewFaultyPipe.
func (p *Pipe[T]) WithBitErrors(ber float64, rng *RNG, corrupt func(T) T) *Pipe[T] {
	if ber < 0 || ber >= 1 || ber != ber {
		panic("sim: bit-error rate must lie in [0, 1)")
	}
	if ber > 0 && (rng == nil || corrupt == nil) {
		panic("sim: bit-error pipe needs an RNG and a corrupting transform")
	}
	p.ber = ber
	p.berRNG = rng
	p.corruptFn = corrupt
	return p
}

// SetBitErrorRate retunes the bit-error probability mid-run (scenario
// "corrupt" events). The pipe must already have been armed by WithBitErrors
// so the RNG draw order stays a pure function of the fault schedule.
func (p *Pipe[T]) SetBitErrorRate(ber float64) {
	if ber < 0 || ber >= 1 || ber != ber {
		panic("sim: bit-error rate must lie in [0, 1)")
	}
	if ber > 0 && (p.berRNG == nil || p.corruptFn == nil) {
		panic("sim: SetBitErrorRate on a pipe never armed with WithBitErrors")
	}
	p.ber = ber
}

// Corrupted reports how many items the bit-error model has delivered
// corrupted.
func (p *Pipe[T]) Corrupted() int64 { return p.corrupted }

// Latency reports the pipe's propagation delay in cycles.
func (p *Pipe[T]) Latency() Cycle { return p.latency }

// Width reports the pipe's bandwidth in items per cycle.
func (p *Pipe[T]) Width() int { return p.width }

// CanSend reports whether another item may be sent during cycle now without
// exceeding the pipe's bandwidth.
func (p *Pipe[T]) CanSend(now Cycle) bool {
	return p.lastSendCycle != now || p.sentThisCycle < p.width
}

// Send enqueues an item at cycle now; it becomes receivable at now+latency.
// It panics if the per-cycle bandwidth is exceeded or if time runs backwards,
// both of which indicate a bug in the calling model rather than a recoverable
// condition.
func (p *Pipe[T]) Send(now Cycle, item T) {
	if p.lastSendCycle == now {
		if p.sentThisCycle >= p.width {
			panic("sim: pipe bandwidth exceeded")
		}
		p.sentThisCycle++
	} else {
		if p.lastSendCycle != Never && now < p.lastSendCycle {
			panic("sim: pipe send time went backwards")
		}
		p.lastSendCycle = now
		p.sentThisCycle = 1
	}
	if p.severed {
		if p.onDrop != nil {
			p.onDrop(item)
		}
		return
	}
	if p.ber > 0 && p.berRNG.Bool(p.ber) {
		item = p.corruptFn(item)
		p.corrupted++
	}
	readyAt := now + p.latency
	if p.faultRate > 0 {
		for p.rng.Bool(p.faultRate) {
			readyAt += 2 * p.latency
			p.retransmits++
			if p.onCorrupt != nil {
				p.onCorrupt()
			}
		}
	}
	// Go-back-N: an item sent behind a retransmitting predecessor is held in
	// the sender's retransmit buffer and replayed after it, so delivery stays
	// FIFO.
	if n := len(p.q); n > 0 && p.q[n-1].readyAt > readyAt {
		readyAt = p.q[n-1].readyAt
	}
	p.q = append(p.q, pipeEntry[T]{readyAt: readyAt, item: item})
}

// TrySend sends item if bandwidth allows and reports whether it did.
func (p *Pipe[T]) TrySend(now Cycle, item T) bool {
	if !p.CanSend(now) {
		return false
	}
	p.Send(now, item)
	return true
}

// Recv pops the oldest item whose delivery time has arrived (readyAt <= now).
// The second result is false when nothing is ready.
func (p *Pipe[T]) Recv(now Cycle) (T, bool) {
	var zero T
	if len(p.q) == 0 || p.q[0].readyAt > now {
		return zero, false
	}
	item := p.q[0].item
	// Shift rather than reslice so the backing array does not grow without
	// bound over long simulations.
	copy(p.q, p.q[1:])
	p.q[len(p.q)-1] = pipeEntry[T]{}
	p.q = p.q[:len(p.q)-1]
	return item, true
}

// RecvEach pops every ready item in FIFO order, passes each to fn, and
// returns how many were delivered. The count gives callers a free activity
// signal for self-profiling; ignoring it is fine.
func (p *Pipe[T]) RecvEach(now Cycle, fn func(T)) int {
	delivered := 0
	for {
		item, ok := p.Recv(now)
		if !ok {
			return delivered
		}
		fn(item)
		delivered++
	}
}

// Len reports how many items are in flight (sent but not yet received).
func (p *Pipe[T]) Len() int { return len(p.q) }

// Empty reports whether nothing is in flight.
func (p *Pipe[T]) Empty() bool { return len(p.q) == 0 }

// Each visits every in-flight item in FIFO order without consuming it; it
// exists for invariant checkers that audit conservation across a link.
func (p *Pipe[T]) Each(fn func(T)) {
	for i := range p.q {
		fn(p.q[i].item)
	}
}

// Sever cuts the wire: everything in flight is destroyed — each destroyed
// item is reported to onDrop when non-nil — and every Send until Restore is
// likewise discarded. Severing an already-severed pipe only replaces the
// drop callback.
func (p *Pipe[T]) Sever(onDrop func(T)) {
	p.onDrop = onDrop
	if p.severed {
		return
	}
	p.severed = true
	for i := range p.q {
		if onDrop != nil {
			onDrop(p.q[i].item)
		}
		p.q[i] = pipeEntry[T]{}
	}
	p.q = p.q[:0]
}

// Restore repairs a severed wire; the pipe resumes carrying items. Items
// destroyed while it was down stay destroyed.
func (p *Pipe[T]) Restore() {
	p.severed = false
	p.onDrop = nil
}

// Severed reports whether the pipe is currently cut.
func (p *Pipe[T]) Severed() bool { return p.severed }
