package sim

import "testing"

// tickRecorder logs the cycles and order in which it ticks.
type tickRecorder struct {
	id    int
	log   *[]int
	times *[]Cycle
}

func (r tickRecorder) Tick(now Cycle) {
	*r.log = append(*r.log, r.id)
	*r.times = append(*r.times, now)
}

func TestKernelTicksInRegistrationOrder(t *testing.T) {
	var k Kernel
	var log []int
	var times []Cycle
	for i := 0; i < 3; i++ {
		k.Register(tickRecorder{id: i, log: &log, times: &times})
	}
	k.Run(2)
	wantLog := []int{0, 1, 2, 0, 1, 2}
	wantTimes := []Cycle{0, 0, 0, 1, 1, 1}
	for i := range wantLog {
		if log[i] != wantLog[i] || times[i] != wantTimes[i] {
			t.Fatalf("tick %d: component %d at cycle %d; want component %d at cycle %d",
				i, log[i], times[i], wantLog[i], wantTimes[i])
		}
	}
	if k.Now() != 2 {
		t.Fatalf("Now() = %d after Run(2), want 2", k.Now())
	}
}

func TestKernelRegisterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register(nil) did not panic")
		}
	}()
	var k Kernel
	k.Register(nil)
}

func TestKernelRunNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run(-1) did not panic")
		}
	}()
	var k Kernel
	k.Run(-1)
}

func TestRunUntil(t *testing.T) {
	var k Kernel
	count := 0
	k.Register(tickFunc(func(Cycle) { count++ }))
	done := func() bool { return count >= 5 }
	if !k.RunUntil(done, 100) {
		t.Fatal("RunUntil did not reach the condition")
	}
	if count != 5 {
		t.Fatalf("ran %d cycles, want 5", count)
	}
	if k.RunUntil(func() bool { return false }, 10) {
		t.Fatal("RunUntil reported success for an unreachable condition")
	}
}

type tickFunc func(Cycle)

func (f tickFunc) Tick(now Cycle) { f(now) }
