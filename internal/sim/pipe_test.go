package sim

import (
	"testing"
	"testing/quick"
)

func TestPipeDeliversAfterLatency(t *testing.T) {
	p := NewPipe[int](4, 1)
	p.Send(10, 42)
	for now := Cycle(10); now < 14; now++ {
		if _, ok := p.Recv(now); ok {
			t.Fatalf("item visible at cycle %d, before latency elapsed", now)
		}
	}
	got, ok := p.Recv(14)
	if !ok || got != 42 {
		t.Fatalf("Recv(14) = %v, %v; want 42, true", got, ok)
	}
	if _, ok := p.Recv(15); ok {
		t.Fatal("item delivered twice")
	}
}

func TestPipeFIFOWithinAndAcrossCycles(t *testing.T) {
	p := NewPipe[int](2, 3)
	p.Send(0, 1)
	p.Send(0, 2)
	p.Send(1, 3)
	var got []int
	p.RecvEach(3, func(v int) { got = append(got, v) })
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("received %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("received %v, want %v", got, want)
		}
	}
}

func TestPipeBandwidthLimit(t *testing.T) {
	p := NewPipe[int](1, 2)
	if !p.TrySend(5, 1) || !p.TrySend(5, 2) {
		t.Fatal("pipe refused sends within its width")
	}
	if p.CanSend(5) {
		t.Fatal("CanSend true beyond width")
	}
	if p.TrySend(5, 3) {
		t.Fatal("TrySend succeeded beyond width")
	}
	if !p.CanSend(6) {
		t.Fatal("bandwidth not replenished on the next cycle")
	}
}

func TestPipeSendPanicsBeyondWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Send beyond width did not panic")
		}
	}()
	p := NewPipe[int](1, 1)
	p.Send(0, 1)
	p.Send(0, 2)
}

func TestPipeRejectsBadConstruction(t *testing.T) {
	for _, tc := range []struct {
		latency Cycle
		width   int
	}{{0, 1}, {1, 0}, {-3, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPipe(%d, %d) did not panic", tc.latency, tc.width)
				}
			}()
			NewPipe[int](tc.latency, tc.width)
		}()
	}
}

func TestPipeTimeBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("send at an earlier cycle did not panic")
		}
	}()
	p := NewPipe[int](1, 1)
	p.Send(5, 1)
	p.Send(4, 2)
}

func TestPipeLenAndEmpty(t *testing.T) {
	p := NewPipe[int](3, 1)
	if !p.Empty() || p.Len() != 0 {
		t.Fatal("new pipe not empty")
	}
	p.Send(0, 7)
	if p.Empty() || p.Len() != 1 {
		t.Fatal("pipe empty after send")
	}
	p.Recv(3)
	if !p.Empty() {
		t.Fatal("pipe not empty after delivery")
	}
}

// TestPipeOrderProperty: whatever the (latency, send schedule), items come
// out in send order with exactly the configured delay.
func TestPipeOrderProperty(t *testing.T) {
	f := func(latencySeed uint8, gaps []uint8) bool {
		latency := Cycle(latencySeed%7) + 1
		p := NewPipe[int](latency, 1)
		now := Cycle(0)
		var sendTimes []Cycle
		for i, g := range gaps {
			if i >= 40 {
				break
			}
			now += Cycle(g % 5)
			if !p.CanSend(now) {
				now++
			}
			p.Send(now, i)
			sendTimes = append(sendTimes, now)
		}
		// Drain in order, checking delivery times.
		idx := 0
		for c := Cycle(0); c <= now+latency; c++ {
			p.RecvEach(c, func(v int) {
				if v != idx {
					t.Errorf("out of order: got %d, want %d", v, idx)
				}
				if c < sendTimes[v]+latency {
					t.Errorf("item %d delivered at %d, before %d", v, c, sendTimes[v]+latency)
				}
				idx++
			})
		}
		return idx == len(sendTimes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFaultyPipeRecoversEveryItem: every item sent through a faulty pipe is
// eventually delivered exactly once, in FIFO order, with each corruption
// adding one link round-trip to the item's delay.
func TestFaultyPipeRecoversEveryItem(t *testing.T) {
	const latency, n = 3, 500
	p := NewFaultyPipe[int](latency, 1, 0.2, NewRNG(7), nil)
	sentAt := make([]Cycle, n)
	got := make([]int, 0, n)
	now := Cycle(0)
	for i := 0; i < n; i++ {
		sentAt[i] = now
		p.Send(now, i)
		now++
		if v, ok := p.Recv(now); ok {
			got = append(got, v)
		}
	}
	for !p.Empty() {
		now++
		for {
			v, ok := p.Recv(now)
			if !ok {
				break
			}
			got = append(got, v)
		}
	}
	if len(got) != n {
		t.Fatalf("delivered %d of %d items", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO order broken: position %d delivered item %d", i, v)
		}
	}
	if p.Retransmits() == 0 {
		t.Fatal("20%% corruption over 500 items produced no retransmissions")
	}
}

// TestFaultyPipeDelayIsRoundTripMultiple: with a single item in flight, the
// delivery delay is exactly latency + 2*latency*corruptions.
func TestFaultyPipeDelayIsRoundTripMultiple(t *testing.T) {
	const latency = 4
	for seed := uint64(1); seed < 30; seed++ {
		p := NewFaultyPipe[int](latency, 1, 0.5, NewRNG(seed), nil)
		before := p.Retransmits()
		p.Send(0, 42)
		k := p.Retransmits() - before
		want := Cycle(latency + 2*latency*k)
		if _, ok := p.Recv(want - 1); ok {
			t.Fatalf("seed %d: item readable before cycle %d (k=%d)", seed, want, k)
		}
		if _, ok := p.Recv(want); !ok {
			t.Fatalf("seed %d: item not readable at cycle %d (k=%d)", seed, want, k)
		}
	}
}

// TestFaultyPipeZeroRateIsTransparent: a zero fault rate behaves exactly like
// NewPipe and needs no RNG.
func TestFaultyPipeZeroRateIsTransparent(t *testing.T) {
	p := NewFaultyPipe[string](2, 1, 0, nil, nil)
	p.Send(0, "x")
	if _, ok := p.Recv(1); ok {
		t.Fatal("item readable before latency elapsed")
	}
	if v, ok := p.Recv(2); !ok || v != "x" {
		t.Fatalf("Recv(2) = %q, %v", v, ok)
	}
	if p.Retransmits() != 0 {
		t.Fatal("zero-rate pipe reported retransmissions")
	}
}

// TestFaultyPipeRejectsBadRates: rates outside [0,1) and NaN panic.
func TestFaultyPipeRejectsBadRates(t *testing.T) {
	for _, rate := range []float64{-0.1, 1.0, 1.5, nan()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %v did not panic", rate)
				}
			}()
			NewFaultyPipe[int](1, 1, rate, NewRNG(1), nil)
		}()
	}
}

func nan() float64 { z := 0.0; return z / z }

// TestSeverDestroysInFlightAndBlocksSends: a severed pipe drops everything it
// held and everything sent while down, reporting each loss; Restore resumes
// normal delivery without resurrecting destroyed items.
func TestSeverDestroysInFlightAndBlocksSends(t *testing.T) {
	p := NewPipe[string](3, 2)
	p.Send(0, "a")
	p.Send(0, "b")
	var dropped []string
	p.Sever(func(s string) { dropped = append(dropped, s) })
	if !p.Severed() || !p.Empty() {
		t.Fatalf("after Sever: severed=%v len=%d", p.Severed(), p.Len())
	}
	p.Send(1, "c")
	if got := len(dropped); got != 3 {
		t.Fatalf("dropped %v, want [a b c]", dropped)
	}
	if _, ok := p.Recv(10); ok {
		t.Fatal("severed pipe delivered an item")
	}
	p.Restore()
	if p.Severed() {
		t.Fatal("Restore left the pipe severed")
	}
	p.Send(2, "d")
	if v, ok := p.Recv(5); !ok || v != "d" {
		t.Fatalf("Recv after restore = %q, %v", v, ok)
	}
	if len(dropped) != 3 {
		t.Fatalf("restore resurrected drops: %v", dropped)
	}
}

// TestSeverKeepsBandwidthAccounting: sends into a severed pipe still count
// against per-cycle width, so model bugs surface even while a link is down.
func TestSeverKeepsBandwidthAccounting(t *testing.T) {
	p := NewPipe[int](1, 1)
	p.Sever(nil)
	p.Send(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("over-width send on severed pipe did not panic")
		}
	}()
	p.Send(0, 2)
}

// TestEachVisitsWithoutConsuming: Each sees every in-flight item in order and
// leaves the pipe untouched.
func TestEachVisitsWithoutConsuming(t *testing.T) {
	p := NewPipe[int](5, 3)
	p.Send(0, 1)
	p.Send(0, 2)
	var seen []int
	p.Each(func(v int) { seen = append(seen, v) })
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 || p.Len() != 2 {
		t.Fatalf("Each saw %v, len=%d", seen, p.Len())
	}
}

// TestRecvEachReturnsCount: the delivery count matches what fn saw, and an
// empty or not-yet-ready pipe reports zero.
func TestRecvEachReturnsCount(t *testing.T) {
	p := NewPipe[int](5, 2)
	if n := p.RecvEach(0, func(int) { t.Fatal("empty pipe delivered") }); n != 0 {
		t.Fatalf("empty RecvEach = %d", n)
	}
	p.Send(0, 1)
	p.Send(0, 2)
	if n := p.RecvEach(1, func(int) { t.Fatal("early delivery") }); n != 0 {
		t.Fatalf("pre-latency RecvEach = %d", n)
	}
	var seen []int
	if n := p.RecvEach(5, func(v int) { seen = append(seen, v) }); n != 2 || len(seen) != 2 {
		t.Fatalf("RecvEach = %d, saw %v", n, seen)
	}
}
