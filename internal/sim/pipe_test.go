package sim

import (
	"testing"
	"testing/quick"
)

func TestPipeDeliversAfterLatency(t *testing.T) {
	p := NewPipe[int](4, 1)
	p.Send(10, 42)
	for now := Cycle(10); now < 14; now++ {
		if _, ok := p.Recv(now); ok {
			t.Fatalf("item visible at cycle %d, before latency elapsed", now)
		}
	}
	got, ok := p.Recv(14)
	if !ok || got != 42 {
		t.Fatalf("Recv(14) = %v, %v; want 42, true", got, ok)
	}
	if _, ok := p.Recv(15); ok {
		t.Fatal("item delivered twice")
	}
}

func TestPipeFIFOWithinAndAcrossCycles(t *testing.T) {
	p := NewPipe[int](2, 3)
	p.Send(0, 1)
	p.Send(0, 2)
	p.Send(1, 3)
	var got []int
	p.RecvEach(3, func(v int) { got = append(got, v) })
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("received %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("received %v, want %v", got, want)
		}
	}
}

func TestPipeBandwidthLimit(t *testing.T) {
	p := NewPipe[int](1, 2)
	if !p.TrySend(5, 1) || !p.TrySend(5, 2) {
		t.Fatal("pipe refused sends within its width")
	}
	if p.CanSend(5) {
		t.Fatal("CanSend true beyond width")
	}
	if p.TrySend(5, 3) {
		t.Fatal("TrySend succeeded beyond width")
	}
	if !p.CanSend(6) {
		t.Fatal("bandwidth not replenished on the next cycle")
	}
}

func TestPipeSendPanicsBeyondWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Send beyond width did not panic")
		}
	}()
	p := NewPipe[int](1, 1)
	p.Send(0, 1)
	p.Send(0, 2)
}

func TestPipeRejectsBadConstruction(t *testing.T) {
	for _, tc := range []struct {
		latency Cycle
		width   int
	}{{0, 1}, {1, 0}, {-3, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPipe(%d, %d) did not panic", tc.latency, tc.width)
				}
			}()
			NewPipe[int](tc.latency, tc.width)
		}()
	}
}

func TestPipeTimeBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("send at an earlier cycle did not panic")
		}
	}()
	p := NewPipe[int](1, 1)
	p.Send(5, 1)
	p.Send(4, 2)
}

func TestPipeLenAndEmpty(t *testing.T) {
	p := NewPipe[int](3, 1)
	if !p.Empty() || p.Len() != 0 {
		t.Fatal("new pipe not empty")
	}
	p.Send(0, 7)
	if p.Empty() || p.Len() != 1 {
		t.Fatal("pipe empty after send")
	}
	p.Recv(3)
	if !p.Empty() {
		t.Fatal("pipe not empty after delivery")
	}
}

// TestPipeOrderProperty: whatever the (latency, send schedule), items come
// out in send order with exactly the configured delay.
func TestPipeOrderProperty(t *testing.T) {
	f := func(latencySeed uint8, gaps []uint8) bool {
		latency := Cycle(latencySeed%7) + 1
		p := NewPipe[int](latency, 1)
		now := Cycle(0)
		var sendTimes []Cycle
		for i, g := range gaps {
			if i >= 40 {
				break
			}
			now += Cycle(g % 5)
			if !p.CanSend(now) {
				now++
			}
			p.Send(now, i)
			sendTimes = append(sendTimes, now)
		}
		// Drain in order, checking delivery times.
		idx := 0
		for c := Cycle(0); c <= now+latency; c++ {
			p.RecvEach(c, func(v int) {
				if v != idx {
					t.Errorf("out of order: got %d, want %d", v, idx)
				}
				if c < sendTimes[v]+latency {
					t.Errorf("item %d delivered at %d, before %d", v, c, sendTimes[v]+latency)
				}
				idx++
			})
		}
		return idx == len(sendTimes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
