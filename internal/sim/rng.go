package sim

// RNG is a small, fast, deterministic pseudo-random number generator
// (xorshift64* by Vigna). Every stochastic decision in the simulator —
// traffic destinations, injection timing, and the random arbitration the
// paper specifies — draws from an explicitly seeded RNG so that runs are
// exactly reproducible.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state.
func (r *RNG) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r.state = seed
	// Scramble the seed so that small consecutive seeds do not produce
	// correlated early outputs.
	for i := 0; i < 4; i++ {
		r.Uint64()
	}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm fills dst with a uniform random permutation of [0, len(dst)) using
// Fisher-Yates. Reusing the caller's slice avoids per-cycle allocation in
// arbitration hot paths.
func (r *RNG) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// Split derives an independent generator from this one. It is used to give
// each node its own stream so adding components does not perturb the draws
// seen by others.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() | 1)
}
