package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero state")
	}
}

func TestIntnBoundsProperty(t *testing.T) {
	r := NewRNG(99)
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / trials
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("Bool(0.3) hit rate %.3f, want ~0.30", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	dst := make([]int, 17)
	for trial := 0; trial < 50; trial++ {
		r.Perm(dst)
		seen := make([]bool, len(dst))
		for _, v := range dst {
			if v < 0 || v >= len(dst) || seen[v] {
				t.Fatalf("Perm produced invalid permutation %v", dst)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformish(t *testing.T) {
	// Each position should receive each value roughly equally often.
	r := NewRNG(13)
	const n, trials = 4, 12000
	counts := [n][n]int{}
	dst := make([]int, n)
	for i := 0; i < trials; i++ {
		r.Perm(dst)
		for pos, v := range dst {
			counts[pos][v]++
		}
	}
	want := trials / n
	for pos := 0; pos < n; pos++ {
		for v := 0; v < n; v++ {
			if counts[pos][v] < want*8/10 || counts[pos][v] > want*12/10 {
				t.Fatalf("Perm bias: value %d at position %d occurred %d times, want ~%d", v, pos, counts[pos][v], want)
			}
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	root := NewRNG(42)
	a := root.Split()
	b := root.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams produced %d/100 identical draws", same)
	}
}
