package sim

import (
	"math"
	"testing"
)

type berItem struct {
	n       int
	corrupt bool
}

// TestBitErrorsDeliverOnTimeAndMarked: a bit error is corruption, not loss —
// every item arrives exactly at now+latency in FIFO order, a seeded fraction
// passes through the corrupting transform, and the Corrupted counter agrees
// with what the receiver observes.
func TestBitErrorsDeliverOnTimeAndMarked(t *testing.T) {
	p := NewPipe[berItem](3, 1).WithBitErrors(0.3, NewRNG(11), func(it berItem) berItem {
		it.corrupt = true
		return it
	})
	const n = 2000
	sent := Cycle(0)
	got := 0
	corrupted := 0
	for i := 0; i < n; i++ {
		p.Send(sent, berItem{n: i})
		p.RecvEach(sent, func(it berItem) {
			if it.n != got {
				t.Fatalf("out of order: got item %d, want %d", it.n, got)
			}
			got++
			if it.corrupt {
				corrupted++
			}
		})
		sent++
	}
	for !p.Empty() {
		p.RecvEach(sent, func(it berItem) {
			if it.corrupt {
				corrupted++
			}
			got++
		})
		sent++
	}
	if sent != Cycle(n)+3 {
		t.Fatalf("drained at cycle %d, want %d: bit errors must not delay delivery", sent, n+3)
	}
	if got != n {
		t.Fatalf("received %d of %d items: bit errors must not drop", got, n)
	}
	if int64(corrupted) != p.Corrupted() {
		t.Fatalf("receiver saw %d corrupted items, pipe counted %d", corrupted, p.Corrupted())
	}
	if f := float64(corrupted) / n; math.Abs(f-0.3) > 0.05 {
		t.Fatalf("corruption frequency %.3f far from configured 0.3", f)
	}
}

// TestBitErrorsComposeWithFaultyPipe: the corruption mode stacks on the
// loss/delay model — a corrupted item can also be delayed by link-level
// retransmission, and neither model drops anything.
func TestBitErrorsComposeWithFaultyPipe(t *testing.T) {
	p := NewFaultyPipe[berItem](2, 1, 0.2, NewRNG(5), nil).
		WithBitErrors(0.2, NewRNG(6), func(it berItem) berItem {
			it.corrupt = true
			return it
		})
	const n = 500
	now := Cycle(0)
	for i := 0; i < n; i++ {
		p.Send(now, berItem{n: i})
		now++
	}
	got := 0
	for !p.Empty() && now < 100000 {
		p.RecvEach(now, func(it berItem) {
			if it.n != got {
				t.Fatalf("out of order: got %d, want %d", it.n, got)
			}
			got++
		})
		now++
	}
	if got != n {
		t.Fatalf("received %d of %d items", got, n)
	}
	if p.Corrupted() == 0 || p.Retransmits() == 0 {
		t.Fatalf("composition exercised nothing: corrupted=%d retransmits=%d", p.Corrupted(), p.Retransmits())
	}
}

// TestSetBitErrorRateRetunes: scenario "corrupt" events retune the rate
// mid-run; rate 0 heals the link and an unarmed pipe rejects retuning.
func TestSetBitErrorRateRetunes(t *testing.T) {
	p := NewPipe[berItem](1, 1).WithBitErrors(0.9, NewRNG(1), func(it berItem) berItem {
		it.corrupt = true
		return it
	})
	now := Cycle(0)
	for i := 0; i < 50; i++ {
		p.Send(now, berItem{})
		now++
	}
	if p.Corrupted() == 0 {
		t.Fatal("armed pipe corrupted nothing at rate 0.9")
	}
	healed := p.Corrupted()
	p.SetBitErrorRate(0)
	for i := 0; i < 50; i++ {
		p.Send(now, berItem{})
		now++
	}
	if p.Corrupted() != healed {
		t.Fatalf("healed pipe kept corrupting: %d -> %d", healed, p.Corrupted())
	}

	unarmed := NewPipe[berItem](1, 1)
	defer func() {
		if recover() == nil {
			t.Error("SetBitErrorRate on an unarmed pipe did not panic")
		}
	}()
	unarmed.SetBitErrorRate(0.1)
}

// TestWithBitErrorsRejectsBadArms: out-of-range rates and missing
// collaborators panic at arm time, not mid-simulation.
func TestWithBitErrorsRejectsBadArms(t *testing.T) {
	ident := func(it berItem) berItem { return it }
	cases := []func(){
		func() { NewPipe[berItem](1, 1).WithBitErrors(-0.1, NewRNG(1), ident) },
		func() { NewPipe[berItem](1, 1).WithBitErrors(1.0, NewRNG(1), ident) },
		func() { NewPipe[berItem](1, 1).WithBitErrors(math.NaN(), NewRNG(1), ident) },
		func() { NewPipe[berItem](1, 1).WithBitErrors(0.1, nil, ident) },
		func() { NewPipe[berItem](1, 1).WithBitErrors(0.1, NewRNG(1), nil) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
