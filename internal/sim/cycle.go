// Package sim provides the cycle-stepped simulation kernel used by every
// network model in this repository: a deterministic clock, a component
// registry ticked in fixed order, a seeded pseudo-random number generator,
// and bandwidth-limited delay lines (pipes) that model pipelined wires.
//
// All inter-component communication travels through pipes with a latency of
// at least one cycle, so the order in which components tick within a cycle
// cannot change simulation results: anything sent during cycle t is invisible
// before cycle t+1.
package sim

// Cycle is a point in simulated time, measured in clock cycles from the start
// of the simulation. It is a distinct type so that cycle values cannot be
// confused with counts or indices.
type Cycle int64

// Never is a sentinel cycle value meaning "no time scheduled". It is far in
// the past so comparisons such as departAt == now can never match it.
const Never Cycle = -1 << 62

// Component is anything advanced by the kernel once per cycle.
type Component interface {
	// Tick advances the component through cycle now. Implementations may
	// read items that became ready at or before now from their input pipes
	// and send items that will become visible no earlier than now+1.
	Tick(now Cycle)
}

// Kernel steps a fixed set of components through simulated time. The zero
// value is ready to use.
type Kernel struct {
	now        Cycle
	components []Component
}

// Now reports the cycle the kernel will execute on its next Step. After a
// Step, Now has advanced by one.
func (k *Kernel) Now() Cycle { return k.now }

// Register adds a component to the kernel. Components tick in registration
// order, which is fixed for the lifetime of the kernel, keeping runs
// reproducible.
func (k *Kernel) Register(c Component) {
	if c == nil {
		panic("sim: Register called with nil component")
	}
	k.components = append(k.components, c)
}

// Step executes one cycle: every registered component ticks once at the
// current time, then the clock advances.
func (k *Kernel) Step() {
	for _, c := range k.components {
		c.Tick(k.now)
	}
	k.now++
}

// Run executes n cycles. It panics if n is negative.
func (k *Kernel) Run(n Cycle) {
	if n < 0 {
		panic("sim: Run called with negative cycle count")
	}
	for i := Cycle(0); i < n; i++ {
		k.Step()
	}
}

// RunUntil steps the kernel until done reports true (checked before each
// cycle) or limit cycles have elapsed, and reports whether done was reached.
func (k *Kernel) RunUntil(done func() bool, limit Cycle) bool {
	for i := Cycle(0); i < limit; i++ {
		if done() {
			return true
		}
		k.Step()
	}
	return done()
}
