// Package vcrouter implements credit-based virtual-channel flow control
// [Dally92], the baseline the paper measures flit-reservation flow control
// against. Each physical channel multiplexes NumVCs virtual channels, each
// with its own flit queue; virtual channels arbitrate for physical channel
// bandwidth flit by flit, with random arbitration and single-cycle
// routing-plus-scheduling as specified in Section 4 of the paper.
//
// The package also implements the shared-buffer-pool variant of [TamFra92]
// (buffers of one input shared across its virtual channels), which Section 5
// reports gives no throughput improvement — an ablation reproduced by
// BenchmarkAblationVCSharedPool.
package vcrouter

import (
	"fmt"

	"frfc/internal/routing"
	"frfc/internal/sim"
)

// Config selects a virtual-channel network configuration. The paper's
// experimental points are VC8 (2 VCs × 4 flits), VC16 (4 × 4) and VC32
// (8 × 4); see Configuration helpers in internal/experiment.
type Config struct {
	// NumVCs is v_d, the number of virtual channels per physical channel.
	NumVCs int
	// BufPerVC is the depth of each virtual channel's flit queue.
	// NumVCs × BufPerVC is the per-input buffer count the paper quotes
	// (8, 16, 32).
	BufPerVC int
	// SharedPool, when true, pools an input's buffers across its virtual
	// channels ([TamFra92]); the per-VC queues become logical and only
	// the aggregate capacity is enforced.
	SharedPool bool
	// SourceInterleave lets a node's network interface inject several
	// packets concurrently, one per local virtual channel. The default
	// (false) models the paper's constant-rate source: a FIFO queue that
	// injects one packet at a time, so a blocked head packet stalls the
	// source.
	SourceInterleave bool

	// LinkLatency is the data-wire propagation delay between adjacent
	// routers in cycles: 4 in the paper's fast-control comparison, 1 in
	// the leading-control comparison.
	LinkLatency sim.Cycle
	// CreditLatency is the propagation delay of the credit wires
	// (1 cycle in both of the paper's configurations).
	CreditLatency sim.Cycle
	// LocalLatency is the injection/ejection link delay between a
	// network interface and its router (1 cycle).
	LocalLatency sim.Cycle

	// Routing selects the route function; nil means dimension-ordered
	// XY routing, the paper's choice.
	Routing routing.Algorithm

	// BER is the per-flit bit-error probability on inter-router data
	// links: each flit is delivered on time but corrupted with this
	// probability. The baseline has no loss machinery, so a hop CRC that
	// catches a corrupted flit models a zero-cost link-level retransmit
	// (the payload is repaired in place); corruption the CRC misses
	// propagates and is counted when it reaches the ejection port.
	BER float64
	// CrcBits is the modeled per-hop CRC width c: a corrupted flit is
	// detected with probability 1 - 2^-c. 0 defaults to 16 when BER > 0;
	// negative disables hop detection entirely so every corrupted flit
	// escapes to its destination.
	CrcBits int
}

// withDefaults fills unset fields with the paper's values and validates.
func (c Config) withDefaults() Config {
	if c.NumVCs == 0 {
		c.NumVCs = 2
	}
	if c.BufPerVC == 0 {
		c.BufPerVC = 4
	}
	if c.LinkLatency == 0 {
		c.LinkLatency = 4
	}
	if c.CreditLatency == 0 {
		c.CreditLatency = 1
	}
	if c.LocalLatency == 0 {
		c.LocalLatency = 1
	}
	if c.Routing == nil {
		c.Routing = routing.XY
	}
	if c.CrcBits == 0 && c.BER > 0 {
		c.CrcBits = 16
	}
	return c
}

// validate panics on structurally impossible configurations; these are
// programming errors, not runtime conditions.
func (c Config) validate() {
	if c.NumVCs < 1 {
		panic(fmt.Sprintf("vcrouter: NumVCs must be >= 1, got %d", c.NumVCs))
	}
	if c.BufPerVC < 1 {
		panic(fmt.Sprintf("vcrouter: BufPerVC must be >= 1, got %d", c.BufPerVC))
	}
	if c.LinkLatency < 1 || c.CreditLatency < 1 || c.LocalLatency < 1 {
		panic("vcrouter: link latencies must be >= 1 cycle")
	}
	if c.BER < 0 || c.BER >= 1 || c.BER != c.BER {
		panic(fmt.Sprintf("vcrouter: BER must lie in [0, 1), got %v", c.BER))
	}
	if c.CrcBits > 62 {
		panic(fmt.Sprintf("vcrouter: CrcBits %d exceeds the modeled maximum of 62", c.CrcBits))
	}
}

// BuffersPerInput reports the total data-flit buffering per input port.
func (c Config) BuffersPerInput() int { return c.NumVCs * c.BufPerVC }
