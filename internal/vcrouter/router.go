package vcrouter

import (
	"fmt"
	"math"

	"frfc/internal/metrics"
	"frfc/internal/noc"
	"frfc/internal/profile"
	"frfc/internal/sim"
	"frfc/internal/topology"
	"frfc/internal/waterfall"
)

// queuedFlit is a buffered flit together with its arrival cycle; a flit may
// not leave the router before the cycle after it arrived, which models the
// paper's one-cycle routing-and-scheduling latency.
type queuedFlit struct {
	flit      noc.DataFlit
	arrivedAt sim.Cycle
}

// vcState is the per-virtual-channel bookkeeping of one input port: the flit
// queue plus the route and output-VC allocation of the packet currently
// occupying the channel.
type vcState struct {
	q         []queuedFlit
	routed    bool
	route     topology.Port
	allocated bool
	outVC     int
}

// inputState is one input port: NumVCs virtual channels plus the wires to the
// upstream node (incoming flits, outgoing credits).
type inputState struct {
	exists    bool
	vcs       []vcState
	poolUsed  int // total buffered flits (enforced in SharedPool mode)
	data      *sim.Pipe[noc.DataFlit]
	creditOut *sim.Pipe[noc.VCCredit]
}

// outputState is one output port: per-downstream-VC credit counters and
// ownership, plus the wires to the downstream node.
type outputState struct {
	exists   bool
	infinite bool  // ejection port: the sink never runs out of buffers
	credits  []int // per downstream VC
	pool     int   // pooled credits (SharedPool mode)
	// occ tracks, in SharedPool mode, how many pooled buffers each
	// downstream VC currently holds; the DAMQ reservation rule keeps one
	// buffer available for every other empty VC so a single blocked
	// packet cannot consume the whole pool and deadlock the channel
	// (the safeguard [TamFra92]'s dynamically-allocated queues carry).
	occ      []int
	owned    []bool
	data     *sim.Pipe[noc.DataFlit]
	creditIn *sim.Pipe[noc.VCCredit]
}

// Router is one virtual-channel router. It is assembled and ticked by
// Network; the type is exported only for white-box testing within the
// package tree.
type Router struct {
	id    topology.NodeID
	mesh  topology.Mesh
	cfg   Config
	rng   *sim.RNG
	hooks *noc.Hooks

	in  [topology.NumPorts]inputState
	out [topology.NumPorts]outputState

	// probe is the observability sink; nil when disabled, and every call
	// on a nil probe is a no-op.
	probe *metrics.Probe

	// prof is the self-profiling registry cached off the probe at attach
	// time; nil when profiling is disabled.
	prof *profile.Registry

	// wf is the latency-stage ledger cached off the probe at attach time;
	// nil when latency provenance is disabled. While a sampled head flit
	// waits at the front of its channel, each cycle is charged to exactly
	// one stage: no free output VC or no credit → Stall, pipeline latency
	// or a lost switch arbitration → Arb. Cycles spent queued behind a
	// predecessor packet carry no mark and fall to Stall at departure.
	wf *waterfall.Ledger

	// Scratch buffers reused every cycle to keep the hot loop
	// allocation-free.
	outOrder []int
	vcReqs   []portVC
	saCand   [topology.NumPorts][]portVC
	freeVCs  []int
}

// portVC names one virtual channel of one input port.
type portVC struct {
	port topology.Port
	vc   int
}

func newRouter(id topology.NodeID, mesh topology.Mesh, cfg Config, rng *sim.RNG, hooks *noc.Hooks) *Router {
	r := &Router{id: id, mesh: mesh, cfg: cfg, rng: rng, hooks: hooks,
		outOrder: make([]int, topology.NumPorts)}
	for p := topology.Port(0); p < topology.NumPorts; p++ {
		if p != topology.Local && !mesh.HasLink(id, p) {
			continue
		}
		r.in[p] = inputState{exists: true, vcs: make([]vcState, cfg.NumVCs)}
		r.out[p] = outputState{
			exists:   true,
			infinite: p == topology.Local,
			credits:  make([]int, cfg.NumVCs),
			pool:     cfg.BuffersPerInput(),
			occ:      make([]int, cfg.NumVCs),
			owned:    make([]bool, cfg.NumVCs),
		}
		for v := range r.out[p].credits {
			r.out[p].credits[v] = cfg.BufPerVC
		}
	}
	return r
}

// Tick advances the router one cycle: absorb credits and flits, route and
// allocate virtual channels, then perform switch allocation and traversal.
// Each stage reports its work count so the self-profiler can tell ticks that
// moved something from ticks that woke for nothing.
func (r *Router) Tick(now sim.Cycle) {
	work := r.recvCredits(now)
	work += r.recvFlits(now)
	work += r.allocateVCs(now)
	work += r.switchAllocate(now)
	r.prof.ComponentTick(profile.CompRouter, int(r.id), work > 0)
}

func (r *Router) recvCredits(now sim.Cycle) int {
	received := 0
	for p := range r.out {
		o := &r.out[p]
		if !o.exists || o.creditIn == nil {
			continue
		}
		received += o.creditIn.RecvEach(now, func(c noc.VCCredit) {
			if r.cfg.SharedPool {
				o.pool++
				o.occ[c.VC]--
				if o.pool > r.cfg.BuffersPerInput() || o.occ[c.VC] < 0 {
					panic(fmt.Sprintf("vcrouter: node %d out %s pooled credit overflow", r.id, topology.Port(p)))
				}
				return
			}
			o.credits[c.VC]++
			if o.credits[c.VC] > r.cfg.BufPerVC {
				panic(fmt.Sprintf("vcrouter: node %d out %s vc %d credit overflow", r.id, topology.Port(p), c.VC))
			}
		})
	}
	return received
}

func (r *Router) recvFlits(now sim.Cycle) int {
	received := 0
	for p := range r.in {
		in := &r.in[p]
		if !in.exists || in.data == nil {
			continue
		}
		received += in.data.RecvEach(now, func(f noc.DataFlit) {
			if r.wf != nil && f.Type.IsHead() && f.Packet.Sampled {
				r.wf.Arrive(uint64(f.Packet.ID), 0, now)
			}
			if f.Corrupted {
				r.probe.Corrupt(int(r.id))
				if r.crcDetect() {
					// The hop CRC caught the corruption. Credit-based
					// flow control has no drop-and-recover path — a
					// dropped flit would wedge its wormhole forever — so
					// detection models a zero-cost link-level retransmit
					// that restores the payload in place.
					f.Corrupted = false
					r.hooks.CrcDetected(now)
				}
			}
			vc := &in.vcs[f.VC]
			vc.q = append(vc.q, queuedFlit{flit: f, arrivedAt: now})
			in.poolUsed++
			if r.cfg.SharedPool {
				if in.poolUsed > r.cfg.BuffersPerInput() {
					panic(fmt.Sprintf("vcrouter: node %d in %s pooled buffer overflow", r.id, topology.Port(p)))
				}
			} else if len(vc.q) > r.cfg.BufPerVC {
				panic(fmt.Sprintf("vcrouter: node %d in %s vc %d buffer overflow", r.id, topology.Port(p), f.VC))
			}
		})
	}
	return received
}

// crcDetect reports whether the modeled c-bit hop CRC catches a corrupted
// flit: probability 1 - 2^-c. It draws randomness only when a corrupted flit
// is examined, so configurations without bit errors keep their RNG streams —
// and their behavior — bit-identical to builds without the error model.
func (r *Router) crcDetect() bool {
	c := r.cfg.CrcBits
	if c < 0 {
		return false
	}
	return r.rng.Bool(1 - math.Exp2(-float64(c)))
}

// allocateVCs routes head flits and assigns them a free virtual channel on
// the downstream input of the routed output port, with random arbitration
// among competing heads. It reports the number of allocation requests
// arbitrated.
func (r *Router) allocateVCs(now sim.Cycle) int {
	r.vcReqs = r.vcReqs[:0]
	for p := range r.in {
		in := &r.in[p]
		if !in.exists {
			continue
		}
		for v := range in.vcs {
			vc := &in.vcs[v]
			if len(vc.q) == 0 || vc.allocated {
				continue
			}
			head := vc.q[0].flit
			if !head.Type.IsHead() {
				// A body flit can only be at the front of an
				// unallocated VC if the model leaked state.
				panic(fmt.Sprintf("vcrouter: node %d in %s vc %d: %s at front of unallocated channel", r.id, topology.Port(p), v, head))
			}
			if !vc.routed {
				route, ok := r.cfg.Routing.NextPort(r.mesh, r.id, head.Packet.Dst)
				if !ok {
					panic(fmt.Sprintf("vcrouter: node %d: destination %d unreachable", r.id, head.Packet.Dst))
				}
				vc.route = route
				vc.routed = true
			}
			r.vcReqs = append(r.vcReqs, portVC{topology.Port(p), v})
		}
	}
	// Random arbitration: shuffle request order, then give each request a
	// random free downstream VC.
	for i := len(r.vcReqs) - 1; i > 0; i-- {
		j := r.rng.Intn(i + 1)
		r.vcReqs[i], r.vcReqs[j] = r.vcReqs[j], r.vcReqs[i]
	}
	for _, req := range r.vcReqs {
		vc := &r.in[req.port].vcs[req.vc]
		o := &r.out[vc.route]
		r.freeVCs = r.freeVCs[:0]
		for dv, owned := range o.owned {
			if !owned {
				r.freeVCs = append(r.freeVCs, dv)
			}
		}
		if len(r.freeVCs) == 0 {
			if r.wf != nil {
				r.blockedHead(req.port, req.vc, waterfall.StageStall, now)
			}
			continue
		}
		dv := r.freeVCs[r.rng.Intn(len(r.freeVCs))]
		o.owned[dv] = true
		vc.outVC = dv
		vc.allocated = true
	}
	return len(r.vcReqs)
}

// switchAllocate matches ready input VCs to output channels (one grant per
// input port and one per output port, random arbitration) and performs the
// traversal for each winner. It reports the number of traversals performed.
func (r *Router) switchAllocate(now sim.Cycle) int {
	traversed := 0
	for p := range r.saCand {
		r.saCand[p] = r.saCand[p][:0]
	}
	for p := range r.in {
		in := &r.in[p]
		if !in.exists {
			continue
		}
		for v := range in.vcs {
			vc := &in.vcs[v]
			if !vc.allocated || len(vc.q) == 0 {
				continue
			}
			if vc.q[0].arrivedAt >= now {
				if r.wf != nil {
					r.blockedHead(topology.Port(p), v, waterfall.StageArb, now)
				}
				continue // one-cycle routing/scheduling latency
			}
			if !r.hasCredit(&r.out[vc.route], vc.outVC) {
				if r.wf != nil {
					r.blockedHead(topology.Port(p), v, waterfall.StageStall, now)
				}
				continue
			}
			r.saCand[vc.route] = append(r.saCand[vc.route], portVC{topology.Port(p), v})
		}
	}
	r.rng.Perm(r.outOrder)
	var inputGranted [topology.NumPorts]bool
	for _, oi := range r.outOrder {
		cands := r.saCand[oi]
		// Filter candidates whose input port was already granted this
		// cycle (the crossbar connects each input once per cycle).
		n := 0
		for _, c := range cands {
			if !inputGranted[c.port] {
				cands[n] = c
				n++
			} else if r.wf != nil {
				r.blockedHead(c.port, c.vc, waterfall.StageArb, now)
			}
		}
		cands = cands[:n]
		if len(cands) == 0 {
			continue
		}
		win := cands[r.rng.Intn(len(cands))]
		inputGranted[win.port] = true
		if r.wf != nil {
			for _, c := range cands {
				if c != win {
					r.blockedHead(c.port, c.vc, waterfall.StageArb, now)
				}
			}
		}
		r.traverse(now, win.port, win.vc)
		traversed++
	}
	return traversed
}

func (r *Router) hasCredit(o *outputState, vc int) bool {
	if o.infinite {
		return true
	}
	if r.cfg.SharedPool {
		// DAMQ reservation: leave one pooled buffer for every other VC
		// that holds nothing downstream.
		reserve := 0
		for w, n := range o.occ {
			if w != vc && n == 0 {
				reserve++
			}
		}
		return o.pool > reserve
	}
	return o.credits[vc] > 0
}

// traverse moves the head flit of the given input VC onto its output link,
// returns a credit upstream, and releases channel state on tail flits.
func (r *Router) traverse(now sim.Cycle, p topology.Port, v int) {
	in := &r.in[p]
	vc := &in.vcs[v]
	o := &r.out[vc.route]

	qf := vc.q[0]
	copy(vc.q, vc.q[1:])
	vc.q[len(vc.q)-1] = queuedFlit{}
	vc.q = vc.q[:len(vc.q)-1]
	in.poolUsed--

	if in.creditOut != nil {
		in.creditOut.Send(now, noc.VCCredit{VC: v})
	}

	f := qf.flit
	f.VC = vc.outVC
	r.probe.Traverse(now, int(r.id), int(vc.route), uint64(f.Packet.ID), f.Seq)
	if r.wf != nil && f.Type.IsHead() && f.Packet.Sampled {
		r.wf.Depart(uint64(f.Packet.ID), 0, now, false)
	}
	o.data.Send(now, f)
	if !o.infinite {
		if r.cfg.SharedPool {
			o.pool--
			o.occ[vc.outVC]++
			if o.pool < 0 {
				panic("vcrouter: pooled credit underflow")
			}
		} else {
			o.credits[vc.outVC]--
			if o.credits[vc.outVC] < 0 {
				panic("vcrouter: credit underflow")
			}
		}
	}
	if f.Type.IsTail() {
		o.owned[vc.outVC] = false
		vc.allocated = false
		vc.routed = false
	}
}

// blockedHead charges one cycle of the head flit waiting at the front of
// input (p, v) to the given waterfall stage. Non-head fronts and unsampled
// packets are skipped; the ledger deduplicates to one mark per cycle.
func (r *Router) blockedHead(p topology.Port, v int, stage waterfall.Stage, now sim.Cycle) {
	vc := &r.in[p].vcs[v]
	if len(vc.q) == 0 {
		return
	}
	f := vc.q[0].flit
	if f.Type.IsHead() && f.Packet.Sampled {
		r.wf.Blocked(uint64(f.Packet.ID), stage, now)
	}
}

// bufferUsage reports occupied and total data-flit buffers across the
// router's existing input ports.
func (r *Router) bufferUsage() (used, capacity int) {
	for p := range r.in {
		if !r.in[p].exists {
			continue
		}
		used += r.in[p].poolUsed
		capacity += r.cfg.BuffersPerInput()
	}
	return used, capacity
}
