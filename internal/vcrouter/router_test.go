package vcrouter

import (
	"testing"

	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

// twoNode wires a single pair of routers (node 0 east of... node 0 and 1 of
// a 2x2 mesh) directly, with test-owned pipes on the unconnected ends.
func testRouter(cfg Config) (*Router, *sim.Pipe[noc.DataFlit], *sim.Pipe[noc.VCCredit], *sim.Pipe[noc.DataFlit], *sim.Pipe[noc.VCCredit]) {
	cfg = cfg.withDefaults()
	mesh := topology.NewMesh(2)
	r := newRouter(0, mesh, cfg, sim.NewRNG(1), &noc.Hooks{})
	// Feed the East input (from node 1 westward — we play the neighbor).
	inData := sim.NewPipe[noc.DataFlit](1, 1)
	inCredit := sim.NewPipe[noc.VCCredit](1, 4)
	r.in[topology.East].data = inData
	r.in[topology.East].creditOut = inCredit
	// Capture the East output.
	outData := sim.NewPipe[noc.DataFlit](1, 1)
	outCredit := sim.NewPipe[noc.VCCredit](1, 4)
	r.out[topology.East].data = outData
	r.out[topology.East].creditIn = outCredit
	// Local ejection path.
	ej := sim.NewPipe[noc.DataFlit](1, 1)
	r.out[topology.Local].data = ej
	return r, inData, inCredit, ej, outCredit
}

func mkPacket(id noc.PacketID, dst topology.NodeID, n int) []noc.DataFlit {
	return noc.DataFlits(&noc.Packet{ID: id, Dst: dst, Len: n})
}

func TestRouterEjectsLocalTraffic(t *testing.T) {
	r, inData, inCredit, ej, _ := testRouter(Config{NumVCs: 2, BufPerVC: 4, LinkLatency: 1})
	flits := mkPacket(1, 0, 3) // destination == router id: ejects
	now := sim.Cycle(0)
	for _, f := range flits {
		f.VC = 0
		inData.Send(now, f)
		r.Tick(now)
		now++
	}
	var got []noc.DataFlit
	for ; now < 20; now++ {
		r.Tick(now)
		ej.RecvEach(now+1, func(f noc.DataFlit) { got = append(got, f) })
	}
	if len(got) != 3 {
		t.Fatalf("ejected %d flits, want 3", len(got))
	}
	for i, f := range got {
		if f.Seq != i {
			t.Fatalf("ejection order broken: flit %d has seq %d", i, f.Seq)
		}
	}
	// One credit per forwarded flit returned upstream.
	credits := 0
	inCredit.RecvEach(now+2, func(noc.VCCredit) { credits++ })
	if credits != 3 {
		t.Fatalf("returned %d credits, want 3", credits)
	}
}

func TestRouterBlocksWithoutCredits(t *testing.T) {
	// East output credits start at BufPerVC; without returns, only that
	// many flits may leave. The test sender obeys the upstream credit
	// protocol itself (that is the contract recvFlits enforces).
	cfg := Config{NumVCs: 1, BufPerVC: 2, LinkLatency: 1}
	r, inData, inCredit, _, _ := testRouter(cfg)
	outData := r.out[topology.East].data
	// Destination node 1 is east of node 0 on a 2x2 mesh.
	flits := mkPacket(1, 1, 5)
	now := sim.Cycle(0)
	myCredits := cfg.BufPerVC
	i := 0
	for ; now < 15; now++ {
		inCredit.RecvEach(now, func(noc.VCCredit) { myCredits++ })
		if i < len(flits) && myCredits > 0 {
			f := flits[i]
			f.VC = 0
			inData.Send(now, f)
			myCredits--
			i++
		}
		r.Tick(now)
	}
	sent := 0
	outData.RecvEach(now, func(noc.DataFlit) { sent++ })
	if sent != cfg.BufPerVC {
		t.Fatalf("router sent %d flits with %d downstream credits and no returns", sent, cfg.BufPerVC)
	}
}

func TestRouterResumesOnCredit(t *testing.T) {
	cfg := Config{NumVCs: 1, BufPerVC: 2, LinkLatency: 1}
	r, inData, _, _, outCredit := testRouter(cfg)
	outData := r.out[topology.East].data
	flits := mkPacket(1, 1, 4)
	now := sim.Cycle(0)
	for _, f := range flits {
		f.VC = 0
		inData.Send(now, f)
		r.Tick(now)
		now++
	}
	for ; now < 10; now++ {
		r.Tick(now)
	}
	drain := 0
	outData.RecvEach(now, func(noc.DataFlit) { drain++ })
	if drain != 2 {
		t.Fatalf("pre-credit drain = %d, want 2", drain)
	}
	// Return two credits; the remaining two flits flow.
	outCredit.Send(now, noc.VCCredit{VC: 0})
	outCredit.Send(now, noc.VCCredit{VC: 0})
	for end := now + 8; now < end; now++ {
		r.Tick(now)
	}
	outData.RecvEach(now, func(noc.DataFlit) { drain++ })
	if drain != 4 {
		t.Fatalf("post-credit drain = %d, want 4", drain)
	}
}

func TestVCAllocationReleasedByTail(t *testing.T) {
	cfg := Config{NumVCs: 1, BufPerVC: 4, LinkLatency: 1}
	r, inData, _, _, outCredit := testRouter(cfg)
	outData := r.out[topology.East].data
	now := sim.Cycle(0)
	sent := 0
	// step plays a well-behaved downstream: consume whatever comes out
	// and return one credit per consumed flit.
	step := func() {
		r.Tick(now)
		now++
		outData.RecvEach(now, func(noc.DataFlit) {
			sent++
			outCredit.Send(now, noc.VCCredit{VC: 0})
		})
	}
	for _, f := range mkPacket(1, 1, 2) {
		f.VC = 0
		inData.Send(now, f)
		step()
	}
	for i := 0; i < 6; i++ {
		step()
	}
	if r.out[topology.East].owned[0] {
		t.Fatal("output VC still owned after the tail left")
	}
	// A second packet reuses the VC.
	for _, f := range mkPacket(2, 1, 2) {
		f.VC = 0
		inData.Send(now, f)
		step()
	}
	for i := 0; i < 6; i++ {
		step()
	}
	if sent != 4 {
		t.Fatalf("forwarded %d flits across two packets, want 4", sent)
	}
}

func TestBufferOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("buffer overflow did not panic")
		}
	}()
	cfg := Config{NumVCs: 1, BufPerVC: 1, LinkLatency: 1}
	r, inData, _, _, _ := testRouter(cfg)
	// Two flits into a 1-deep queue with no drain possible in time.
	f := mkPacket(1, 1, 3)
	f[0].VC = 0
	f[1].VC = 0
	inData.Send(0, f[0])
	r.Tick(0) // receives flit 0
	inData.Send(1, f[1])
	r.Tick(1) // flit 0 can't have left (arrivedAt==0 eligible at 1; it MAY leave)
	inData.Send(2, f[2])
	r.Tick(2)
	inData.Send(3, noc.DataFlit{Packet: f[0].Packet, Seq: 9, Type: noc.BodyFlit})
	r.Tick(3)
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{NumVCs: -1},
		{NumVCs: 1, BufPerVC: -2},
		{NumVCs: 1, BufPerVC: 1, LinkLatency: -4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			cfg := cfg.withDefaults()
			cfg.validate()
		}()
	}
}

func TestBuffersPerInput(t *testing.T) {
	c := Config{NumVCs: 4, BufPerVC: 4}
	if c.BuffersPerInput() != 16 {
		t.Fatalf("BuffersPerInput = %d, want 16", c.BuffersPerInput())
	}
}
