package vcrouter

import (
	"frfc/internal/metrics"
	"frfc/internal/noc"
	"frfc/internal/profile"
	"frfc/internal/sim"
	"frfc/internal/topology"
	"frfc/internal/waterfall"
)

// ni is a node's network interface on the injection side. It keeps the
// source queue of whole packets, decomposes the packet at the head of the
// queue into flits, and injects them into the router's Local input port over
// a one-flit-per-cycle injection channel, obeying the same credit protocol an
// upstream router would. Packets are assigned to free local-input virtual
// channels so that, as in a real terminal, several packets can be in flight
// when channels allow.
type ni struct {
	node  topology.NodeID
	cfg   Config
	rng   *sim.RNG
	hooks *noc.Hooks
	probe *metrics.Probe
	prof  *profile.Registry
	wf    *waterfall.Ledger

	queue []*noc.Packet
	slots []niSlot

	credits []int // per local-input VC
	pool    int   // pooled credits (SharedPool mode)
	occ     []int // pooled buffers held per VC (SharedPool mode)
	owned   []bool

	data     *sim.Pipe[noc.DataFlit] // to the router's Local input
	creditIn *sim.Pipe[noc.VCCredit] // credits back from the router

	ready []int // scratch
}

// niSlot is one packet mid-injection on one local-input VC.
type niSlot struct {
	active bool
	vc     int
	flits  []noc.DataFlit
	next   int
}

func newNI(node topology.NodeID, cfg Config, rng *sim.RNG, hooks *noc.Hooks) *ni {
	n := &ni{node: node, cfg: cfg, rng: rng, hooks: hooks,
		slots:   make([]niSlot, cfg.NumVCs),
		credits: make([]int, cfg.NumVCs),
		occ:     make([]int, cfg.NumVCs),
		owned:   make([]bool, cfg.NumVCs),
		pool:    cfg.BuffersPerInput(),
	}
	for v := range n.credits {
		n.credits[v] = cfg.BufPerVC
	}
	return n
}

func (n *ni) offer(p *noc.Packet) { n.queue = append(n.queue, p) }

func (n *ni) activeCount() int {
	c := 0
	for s := range n.slots {
		if n.slots[s].active {
			c++
		}
	}
	return c
}

func (n *ni) queueLen() int { return len(n.queue) }

func (n *ni) hasCredit(vc int) bool {
	if n.cfg.SharedPool {
		// Same DAMQ reservation as the routers: never take the buffer
		// another empty VC needs to make progress.
		reserve := 0
		for w, c := range n.occ {
			if w != vc && c == 0 {
				reserve++
			}
		}
		return n.pool > reserve
	}
	return n.credits[vc] > 0
}

// Tick absorbs returned credits, starts queued packets on free virtual
// channels, and injects at most one flit (the injection channel's bandwidth).
func (n *ni) Tick(now sim.Cycle) {
	// Self-profiling work counter: credits absorbed, packets started,
	// flits injected.
	work := n.creditIn.RecvEach(now, func(c noc.VCCredit) {
		if n.cfg.SharedPool {
			n.pool++
			n.occ[c.VC]--
		} else {
			n.credits[c.VC]++
		}
	})

	// Assign queued packets to free VC slots. By default the source is a
	// FIFO injecting one packet at a time; SourceInterleave lifts that to
	// one packet per local virtual channel.
	for s := range n.slots {
		if n.slots[s].active || len(n.queue) == 0 {
			continue
		}
		if !n.cfg.SourceInterleave && n.activeCount() > 0 {
			break
		}
		// Slot index doubles as VC index: each slot drives one VC.
		if n.owned[s] {
			continue
		}
		p := n.queue[0]
		copy(n.queue, n.queue[1:])
		n.queue[len(n.queue)-1] = nil
		n.queue = n.queue[:len(n.queue)-1]
		n.owned[s] = true
		p.InjectedAt = now
		if n.wf != nil && p.Sampled {
			n.wf.InjectStart(uint64(p.ID), 0, p.CreatedAt, now)
		}
		n.slots[s] = niSlot{active: true, vc: s, flits: noc.DataFlits(p)}
		work++
	}

	// Inject one flit among ready slots, chosen at random.
	n.ready = n.ready[:0]
	for s := range n.slots {
		sl := &n.slots[s]
		if sl.active && sl.next < len(sl.flits) && n.hasCredit(sl.vc) {
			n.ready = append(n.ready, s)
		}
	}
	if len(n.ready) > 0 {
		s := n.ready[n.rng.Intn(len(n.ready))]
		sl := &n.slots[s]
		f := sl.flits[sl.next]
		f.VC = sl.vc
		sl.next++
		if n.cfg.SharedPool {
			n.pool--
			n.occ[sl.vc]++
		} else {
			n.credits[sl.vc]--
		}
		n.probe.Inject(now, int(n.node), uint64(f.Packet.ID), f.Seq)
		if n.wf != nil && f.Seq == 0 && f.Packet.Sampled {
			n.wf.HeadWire(uint64(f.Packet.ID), 0, now)
		}
		n.data.Send(now, f)
		n.hooks.Injected(now)
		if sl.next == len(sl.flits) {
			n.owned[sl.vc] = false
			sl.active = false
			sl.flits = nil
		}
		work++
	}
	n.prof.ComponentTick(profile.CompNI, int(n.node), work > 0)
}

// sink is the ejection side of a network interface: it receives flits from
// the router's Local output and reports packets whose every flit has
// arrived. Reassembly space is unbounded, matching the paper's immediate-
// ejection assumption.
type sink struct {
	node  topology.NodeID
	data  *sim.Pipe[noc.DataFlit]
	got   map[noc.PacketID]int
	hooks *noc.Hooks
	probe *metrics.Probe
	prof  *profile.Registry
	wf    *waterfall.Ledger
	// delivered counts fully reassembled packets, used by the network's
	// in-flight accounting.
	delivered int64
}

func newSink(node topology.NodeID, hooks *noc.Hooks) *sink {
	return &sink{node: node, got: make(map[noc.PacketID]int), hooks: hooks}
}

func (s *sink) Tick(now sim.Cycle) {
	received := s.data.RecvEach(now, func(f noc.DataFlit) {
		if f.Corrupted {
			// The baseline has no end-to-end recovery: an escaped
			// corruption is delivered as if it were good data, and only
			// the counter records the silent damage.
			s.hooks.CorruptEscape(f.Packet, now)
		}
		s.hooks.Ejected(now)
		s.probe.Eject(now, int(s.node), uint64(f.Packet.ID), f.Seq)
		if s.wf != nil && f.Seq == 0 && f.Packet.Sampled {
			s.wf.Eject(uint64(f.Packet.ID), 0, now)
		}
		s.got[f.Packet.ID]++
		if s.got[f.Packet.ID] == f.Packet.Len {
			delete(s.got, f.Packet.ID)
			s.delivered++
			s.hooks.Delivered(f.Packet, now)
		}
	})
	s.prof.ComponentTick(profile.CompSink, int(s.node), received > 0)
}
