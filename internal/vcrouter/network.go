package vcrouter

import (
	"fmt"
	"strings"

	"frfc/internal/metrics"
	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

// Network is a complete mesh of virtual-channel routers with per-node
// network interfaces. It implements noc.Network.
type Network struct {
	mesh  topology.Mesh
	cfg   Config
	hooks *noc.Hooks

	routers []*Router
	nis     []*ni
	sinks   []*sink

	// probe is the attached observability sink; nil when disabled.
	probe *metrics.Probe

	// linkRNG drives the bit-error draws on every inter-router data link;
	// it is split off the root seed only when BER > 0 so a zero-BER
	// configuration keeps the exact RNG split order (and therefore the
	// bit-identical behavior) of builds that predate the error model.
	linkRNG *sim.RNG
	// now mirrors the current tick so the link transform can timestamp
	// corruption hooks.
	now sim.Cycle

	offered   int64
	delivered int64

	// Integrity counters, maintained by chaining the corruption hooks.
	corrupted   int64 // flits delivered corrupted by the bit-error model
	crcRepaired int64 // corrupted flits the hop CRC caught and repaired
	escapes     int64 // corrupted flits that reached their destination
}

var _ noc.Network = (*Network)(nil)

// New assembles a virtual-channel network over the given mesh. The seed
// drives every random-arbitration and injection decision, making runs
// reproducible. hooks may be nil.
func New(mesh topology.Mesh, cfg Config, seed uint64, hooks *noc.Hooks) *Network {
	cfg = cfg.withDefaults()
	cfg.validate()
	if hooks == nil {
		hooks = &noc.Hooks{}
	}
	n := &Network{mesh: mesh, cfg: cfg, hooks: hooks}

	// Chain the delivered hook so the network can track in-flight counts
	// while still reporting to the caller.
	inner := *hooks
	wrapped := inner
	wrapped.PacketDelivered = func(p *noc.Packet, now sim.Cycle) {
		n.delivered++
		if inner.PacketDelivered != nil {
			inner.PacketDelivered(p, now)
		}
	}
	wrapped.FlitCorrupted = func(now sim.Cycle) {
		n.corrupted++
		if inner.FlitCorrupted != nil {
			inner.FlitCorrupted(now)
		}
	}
	wrapped.CorruptionDetected = func(now sim.Cycle) {
		n.crcRepaired++
		if inner.CorruptionDetected != nil {
			inner.CorruptionDetected(now)
		}
	}
	wrapped.CorruptionEscaped = func(p *noc.Packet, now sim.Cycle) {
		n.escapes++
		if inner.CorruptionEscaped != nil {
			inner.CorruptionEscaped(p, now)
		}
	}
	n.hooks = &wrapped

	root := sim.NewRNG(seed)
	if cfg.BER > 0 {
		n.linkRNG = root.Split()
	}
	n.routers = make([]*Router, mesh.N())
	n.nis = make([]*ni, mesh.N())
	n.sinks = make([]*sink, mesh.N())
	for id := 0; id < mesh.N(); id++ {
		n.routers[id] = newRouter(topology.NodeID(id), mesh, cfg, root.Split(), n.hooks)
	}
	for id := 0; id < mesh.N(); id++ {
		n.nis[id] = newNI(topology.NodeID(id), cfg, root.Split(), n.hooks)
		n.sinks[id] = newSink(topology.NodeID(id), n.hooks)
	}
	n.wire()
	return n
}

// AttachProbe points the whole network — routers, interfaces, sinks — at an
// observability probe; nil detaches. Implements metrics.Attachable.
func (n *Network) AttachProbe(p *metrics.Probe) {
	n.probe = p
	p.Init(n.mesh.Radix())
	for _, r := range n.routers {
		r.probe = p
		r.prof = p.Profile()
		r.wf = p.Waterfall()
	}
	for _, x := range n.nis {
		x.probe = p
		x.prof = p.Profile()
		x.wf = p.Waterfall()
	}
	for _, s := range n.sinks {
		s.probe = p
		s.prof = p.Profile()
		s.wf = p.Waterfall()
	}
}

// wire connects routers, NIs and sinks with delay-line pipes: data links of
// LinkLatency, credit wires of CreditLatency, and injection/ejection links of
// LocalLatency.
func (n *Network) wire() {
	cfg := n.cfg
	for id := 0; id < n.mesh.N(); id++ {
		r := n.routers[id]
		// Inter-router links: create the pipe on the output side and
		// hand the receiving end to the neighbor's input.
		for p := topology.Port(0); p < topology.Local; p++ {
			nb, ok := n.mesh.Neighbor(topology.NodeID(id), p)
			if !ok {
				continue
			}
			data := sim.NewPipe[noc.DataFlit](cfg.LinkLatency, 1)
			if cfg.BER > 0 {
				data.WithBitErrors(cfg.BER, n.linkRNG, n.corruptFlit)
			}
			credit := sim.NewPipe[noc.VCCredit](cfg.CreditLatency, 1)
			r.out[p].data = data
			r.out[p].creditIn = credit
			far := n.routers[nb]
			farIn := &far.in[p.Opposite()]
			farIn.data = data
			farIn.creditOut = credit
		}
		// Injection: NI -> router Local input.
		inj := sim.NewPipe[noc.DataFlit](cfg.LocalLatency, 1)
		injCredit := sim.NewPipe[noc.VCCredit](cfg.CreditLatency, 1)
		n.nis[id].data = inj
		n.nis[id].creditIn = injCredit
		r.in[topology.Local].data = inj
		r.in[topology.Local].creditOut = injCredit
		// Ejection: router Local output -> sink.
		ej := sim.NewPipe[noc.DataFlit](cfg.LocalLatency, 1)
		r.out[topology.Local].data = ej
		n.sinks[id].data = ej
	}
}

// corruptFlit is the data links' bit-error transform: the flit is delivered
// on schedule with its Corrupted flag set; only a CRC check downstream can
// tell the payload is wrong.
func (n *Network) corruptFlit(f noc.DataFlit) noc.DataFlit {
	f.Corrupted = true
	n.hooks.Corrupted(n.now)
	return f
}

// IntegrityCounts reports the bit-error model's tallies: flits delivered
// corrupted, corrupted flits the hop CRC repaired, and corrupted flits that
// escaped detection all the way to their destination.
func (n *Network) IntegrityCounts() (corrupted, crcRepaired, escaped int64) {
	return n.corrupted, n.crcRepaired, n.escapes
}

// Offer implements noc.Network.
func (n *Network) Offer(p *noc.Packet) {
	n.offered++
	n.nis[p.Src].offer(p)
}

// Tick implements noc.Network: one cycle for every NI, router, and sink.
func (n *Network) Tick(now sim.Cycle) {
	n.now = now
	for _, x := range n.nis {
		x.Tick(now)
	}
	for _, r := range n.routers {
		r.Tick(now)
	}
	for _, s := range n.sinks {
		s.Tick(now)
	}
	if n.probe.SampleDue(now) {
		for id, r := range n.routers {
			for p := range r.in {
				if r.in[p].exists {
					n.probe.Occupancy(id, p, r.in[p].poolUsed, n.cfg.BuffersPerInput())
				}
			}
		}
	}
}

// SourceQueueLen implements noc.Network.
func (n *Network) SourceQueueLen() int {
	total := 0
	for _, x := range n.nis {
		total += x.queueLen()
	}
	return total
}

// InFlightPackets implements noc.Network.
func (n *Network) InFlightPackets() int {
	return int(n.offered - n.delivered)
}

// BufferUsage implements noc.Network.
func (n *Network) BufferUsage(id topology.NodeID) (used, capacity int) {
	return n.routers[id].bufferUsage()
}

// PoolUsage implements noc.Network.
func (n *Network) PoolUsage(id topology.NodeID, port topology.Port) (used, capacity int) {
	in := &n.routers[id].in[port]
	if !in.exists {
		return 0, 0
	}
	return in.poolUsed, n.cfg.BuffersPerInput()
}

// DumpState renders the routers' internal state for deadlock diagnosis: per
// input VC, the queue depth and head flit; per output, credit counts and VC
// ownership.
func (n *Network) DumpState() string {
	var b strings.Builder
	for id, r := range n.routers {
		busy := false
		for p := range r.in {
			if r.in[p].exists && r.in[p].poolUsed > 0 {
				busy = true
			}
		}
		if !busy {
			continue
		}
		fmt.Fprintf(&b, "router %d\n", id)
		for p := range r.in {
			in := &r.in[p]
			if !in.exists {
				continue
			}
			for v := range in.vcs {
				vc := &in.vcs[v]
				if len(vc.q) == 0 {
					continue
				}
				fmt.Fprintf(&b, "  in %s vc %d: qlen=%d head=%v routed=%v route=%v alloc=%v outVC=%d\n",
					topology.Port(p), v, len(vc.q), vc.q[0].flit, vc.routed, vc.route, vc.allocated, vc.outVC)
			}
		}
		for p := range r.out {
			o := &r.out[p]
			if !o.exists {
				continue
			}
			fmt.Fprintf(&b, "  out %s credits=%v owned=%v\n", topology.Port(p), o.credits, o.owned)
		}
	}
	for id, ni := range n.nis {
		if len(ni.queue) > 0 || ni.activeCount() > 0 {
			fmt.Fprintf(&b, "NI %d queue=%d active=%d credits=%v\n", id, len(ni.queue), ni.activeCount(), ni.credits)
		}
	}
	return b.String()
}
