package vcrouter

import (
	"testing"

	"frfc/internal/noc"
	"frfc/internal/routing"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

// deliverRecorder collects delivered packets for assertions.
type deliverRecorder struct {
	delivered map[noc.PacketID]sim.Cycle
}

func newRecorder() (*deliverRecorder, *noc.Hooks) {
	r := &deliverRecorder{delivered: make(map[noc.PacketID]sim.Cycle)}
	return r, &noc.Hooks{PacketDelivered: func(p *noc.Packet, now sim.Cycle) {
		r.delivered[p.ID] = now
	}}
}

func TestSinglePacketCrossesMesh(t *testing.T) {
	mesh := topology.NewMesh(4)
	rec, hooks := newRecorder()
	net := New(mesh, Config{NumVCs: 2, BufPerVC: 4, LinkLatency: 4, CreditLatency: 1, LocalLatency: 1}, 1, hooks)

	p := &noc.Packet{ID: 1, Src: 0, Dst: 15, Len: 5, CreatedAt: 0}
	net.Offer(p)
	for now := sim.Cycle(0); now < 500 && len(rec.delivered) == 0; now++ {
		net.Tick(now)
	}
	got, ok := rec.delivered[1]
	if !ok {
		t.Fatal("packet was not delivered within 500 cycles")
	}
	// 6 hops corner to corner on a 4x4 mesh; per hop 1 (router) + 4 (link)
	// cycles, plus injection/ejection links and 4 cycles of serialization
	// for the trailing flits. The exact constant is a property of the
	// model; assert a sane window rather than a magic number.
	if got < 30 || got > 80 {
		t.Errorf("corner-to-corner 5-flit latency = %d cycles, want within [30, 80]", got)
	}
	if net.InFlightPackets() != 0 {
		t.Errorf("InFlightPackets = %d after delivery, want 0", net.InFlightPackets())
	}
}

func TestManyRandomPacketsAllDelivered(t *testing.T) {
	mesh := topology.NewMesh(4)
	rec, hooks := newRecorder()
	net := New(mesh, Config{NumVCs: 2, BufPerVC: 4, LinkLatency: 4, CreditLatency: 1, LocalLatency: 1}, 7, hooks)

	rng := sim.NewRNG(42)
	const packets = 400
	now := sim.Cycle(0)
	for i := 0; i < packets; i++ {
		src := topology.NodeID(rng.Intn(mesh.N()))
		dst := topology.NodeID(rng.Intn(mesh.N() - 1))
		if dst >= src {
			dst++
		}
		net.Offer(&noc.Packet{ID: noc.PacketID(i), Src: src, Dst: dst, Len: 5, CreatedAt: now})
		// Space offers out a little so the source queues drain.
		for j := 0; j < 4; j++ {
			net.Tick(now)
			now++
		}
	}
	for len(rec.delivered) < packets && now < 200000 {
		net.Tick(now)
		now++
	}
	if len(rec.delivered) != packets {
		t.Fatalf("delivered %d of %d packets", len(rec.delivered), packets)
	}
	if got := net.InFlightPackets(); got != 0 {
		t.Errorf("InFlightPackets = %d after drain, want 0", got)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() map[noc.PacketID]sim.Cycle {
		mesh := topology.NewMesh(4)
		rec, hooks := newRecorder()
		net := New(mesh, Config{NumVCs: 2, BufPerVC: 4, LinkLatency: 1, CreditLatency: 1, LocalLatency: 1}, 99, hooks)
		rng := sim.NewRNG(5)
		now := sim.Cycle(0)
		for i := 0; i < 100; i++ {
			src := topology.NodeID(rng.Intn(mesh.N()))
			dst := topology.NodeID(rng.Intn(mesh.N() - 1))
			if dst >= src {
				dst++
			}
			net.Offer(&noc.Packet{ID: noc.PacketID(i), Src: src, Dst: dst, Len: 3, CreatedAt: now})
			net.Tick(now)
			now++
		}
		for net.InFlightPackets() > 0 && now < 100000 {
			net.Tick(now)
			now++
		}
		return rec.delivered
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered different packet counts: %d vs %d", len(a), len(b))
	}
	for id, ca := range a {
		if cb := b[id]; ca != cb {
			t.Fatalf("packet %d delivered at cycle %d in run A but %d in run B", id, ca, cb)
		}
	}
}

func TestSharedPoolDeliversEverything(t *testing.T) {
	mesh := topology.NewMesh(4)
	rec, hooks := newRecorder()
	net := New(mesh, Config{NumVCs: 2, BufPerVC: 4, SharedPool: true, LinkLatency: 4, CreditLatency: 1, LocalLatency: 1, Routing: routing.XY}, 3, hooks)
	now := sim.Cycle(0)
	const packets = 200
	rng := sim.NewRNG(8)
	for i := 0; i < packets; i++ {
		src := topology.NodeID(rng.Intn(mesh.N()))
		dst := topology.NodeID(rng.Intn(mesh.N() - 1))
		if dst >= src {
			dst++
		}
		net.Offer(&noc.Packet{ID: noc.PacketID(i), Src: src, Dst: dst, Len: 5, CreatedAt: now})
		for j := 0; j < 3; j++ {
			net.Tick(now)
			now++
		}
	}
	for len(rec.delivered) < packets && now < 200000 {
		net.Tick(now)
		now++
	}
	if len(rec.delivered) != packets {
		t.Fatalf("shared-pool config delivered %d of %d packets", len(rec.delivered), packets)
	}
}

func TestBufferUsageWithinCapacity(t *testing.T) {
	mesh := topology.NewMesh(4)
	_, hooks := newRecorder()
	net := New(mesh, Config{NumVCs: 2, BufPerVC: 4, LinkLatency: 4, CreditLatency: 1, LocalLatency: 1}, 11, hooks)
	rng := sim.NewRNG(13)
	now := sim.Cycle(0)
	for i := 0; i < 300; i++ {
		src := topology.NodeID(rng.Intn(mesh.N()))
		dst := topology.NodeID(rng.Intn(mesh.N() - 1))
		if dst >= src {
			dst++
		}
		net.Offer(&noc.Packet{ID: noc.PacketID(i), Src: src, Dst: dst, Len: 5, CreatedAt: now})
		net.Tick(now)
		now++
		for id := 0; id < mesh.N(); id++ {
			used, capacity := net.BufferUsage(topology.NodeID(id))
			if used < 0 || used > capacity {
				t.Fatalf("node %d buffer usage %d outside [0, %d]", id, used, capacity)
			}
		}
	}
}
