package vcrouter

import (
	"reflect"
	"testing"

	"frfc/internal/noc"
	"frfc/internal/sim"
	"frfc/internal/topology"
)

func offerMany(net *Network, mesh topology.Mesh, rng *sim.RNG, packets int) sim.Cycle {
	now := sim.Cycle(0)
	for i := 0; i < packets; i++ {
		src := topology.NodeID(rng.Intn(mesh.N()))
		dst := topology.NodeID(rng.Intn(mesh.N() - 1))
		if dst >= src {
			dst++
		}
		net.Offer(&noc.Packet{ID: noc.PacketID(i), Src: src, Dst: dst, Len: 5, CreatedAt: now})
		for j := 0; j < 4; j++ {
			net.Tick(now)
			now++
		}
	}
	return now
}

// TestBitErrorsRepairedInPlace: credit-based wormhole flow control has no
// drop-and-recover path — a discarded flit would wedge its wormhole forever —
// so a detected corruption models a zero-cost link-level retransmit that
// repairs the flit in place. With the default 16-bit CRC essentially nothing
// slips, so every packet is delivered and no escape reaches a sink.
func TestBitErrorsRepairedInPlace(t *testing.T) {
	mesh := topology.NewMesh(4)
	rec, hooks := newRecorder()
	cfg := Config{NumVCs: 2, BufPerVC: 4, LinkLatency: 4, CreditLatency: 1, LocalLatency: 1, BER: 5e-3}
	net := New(mesh, cfg, 7, hooks)

	rng := sim.NewRNG(42)
	const packets = 300
	now := offerMany(net, mesh, rng, packets)
	for len(rec.delivered) < packets && now < 200000 {
		net.Tick(now)
		now++
	}
	if len(rec.delivered) != packets {
		t.Fatalf("delivered %d of %d packets under bit errors", len(rec.delivered), packets)
	}
	if got := net.InFlightPackets(); got != 0 {
		t.Errorf("InFlightPackets = %d after drain, want 0", got)
	}
	corrupted, repaired, escaped := net.IntegrityCounts()
	if corrupted == 0 {
		t.Fatal("BER exercised nothing over ~1500 flits")
	}
	if repaired != corrupted || escaped != 0 {
		t.Fatalf("16-bit CRC should catch everything: corrupted=%d repaired=%d escaped=%d",
			corrupted, repaired, escaped)
	}
}

// TestBitErrorEscapesCounted: with hop detection disabled every corrupted
// flit rides to its sink as an escape — the baseline has no end-to-end
// recovery, which is exactly the comparison point against the FR network's
// retry story. Delivery itself is unaffected: corruption is not loss.
func TestBitErrorEscapesCounted(t *testing.T) {
	mesh := topology.NewMesh(4)
	rec, hooks := newRecorder()
	cfg := Config{NumVCs: 2, BufPerVC: 4, LinkLatency: 4, CreditLatency: 1, LocalLatency: 1, BER: 5e-3, CrcBits: -1}
	net := New(mesh, cfg, 7, hooks)

	rng := sim.NewRNG(42)
	const packets = 200
	now := offerMany(net, mesh, rng, packets)
	for len(rec.delivered) < packets && now < 200000 {
		net.Tick(now)
		now++
	}
	if len(rec.delivered) != packets {
		t.Fatalf("delivered %d of %d packets", len(rec.delivered), packets)
	}
	corrupted, repaired, escaped := net.IntegrityCounts()
	if corrupted == 0 || escaped == 0 {
		t.Fatalf("disabled CRC produced no escapes: corrupted=%d escaped=%d", corrupted, escaped)
	}
	if repaired != 0 {
		t.Fatalf("disabled CRC still repaired %d flits", repaired)
	}
}

// TestZeroBERPreservesBaseline: arming the bit-error machinery with BER 0
// must not perturb the baseline simulation — the link RNG splits off the
// root only when BER > 0, so delivery times are bit-identical with the
// feature absent.
func TestZeroBERPreservesBaseline(t *testing.T) {
	run := func(cfg Config) map[noc.PacketID]sim.Cycle {
		mesh := topology.NewMesh(4)
		rec, hooks := newRecorder()
		net := New(mesh, cfg, 7, hooks)
		rng := sim.NewRNG(42)
		const packets = 100
		now := offerMany(net, mesh, rng, packets)
		for len(rec.delivered) < packets && now < 200000 {
			net.Tick(now)
			now++
		}
		return rec.delivered
	}
	base := Config{NumVCs: 2, BufPerVC: 4, LinkLatency: 4, CreditLatency: 1, LocalLatency: 1}
	armed := base
	armed.BER = 0
	armed.CrcBits = 16
	if a, b := run(base), run(armed); !reflect.DeepEqual(a, b) {
		t.Fatal("BER=0 with CrcBits set changed baseline delivery times")
	}
}

// TestVCConfigRejectsBadBER: out-of-range rates and CRC widths panic at
// construction.
func TestVCConfigRejectsBadBER(t *testing.T) {
	base := Config{NumVCs: 2, BufPerVC: 4, LinkLatency: 4, CreditLatency: 1, LocalLatency: 1}
	mesh := topology.NewMesh(3)
	for name, mutate := range map[string]func(*Config){
		"negative ber": func(c *Config) { c.BER = -0.1 },
		"ber one":      func(c *Config) { c.BER = 1.0 },
		"huge crc":     func(c *Config) { c.CrcBits = 63 },
	} {
		cfg := base
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			New(mesh, cfg, 1, &noc.Hooks{})
		}()
	}
}
