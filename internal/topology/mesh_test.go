package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeshBasics(t *testing.T) {
	m := NewMesh(4)
	if m.Radix() != 4 || m.N() != 16 {
		t.Fatalf("radix/N = %d/%d, want 4/16", m.Radix(), m.N())
	}
	if got := m.Coord(0); got != (Coord{0, 0}) {
		t.Errorf("Coord(0) = %+v", got)
	}
	if got := m.Coord(15); got != (Coord{3, 3}) {
		t.Errorf("Coord(15) = %+v", got)
	}
	if got := m.ID(Coord{2, 1}); got != 6 {
		t.Errorf("ID({2,1}) = %d, want 6", got)
	}
}

func TestMeshRejectsSmallRadix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMesh(1) did not panic")
		}
	}()
	NewMesh(1)
}

func TestCoordIDRoundTripProperty(t *testing.T) {
	m := NewMesh(8)
	f := func(raw uint8) bool {
		id := NodeID(int(raw) % m.N())
		return m.ID(m.Coord(id)) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsAndOpposite(t *testing.T) {
	m := NewMesh(3)
	center := m.ID(Coord{1, 1})
	cases := []struct {
		port Port
		want Coord
	}{
		{East, Coord{2, 1}},
		{West, Coord{0, 1}},
		{North, Coord{1, 0}},
		{South, Coord{1, 2}},
	}
	for _, c := range cases {
		nb, ok := m.Neighbor(center, c.port)
		if !ok || m.Coord(nb) != c.want {
			t.Errorf("Neighbor(center, %s) = %v, %v; want %+v", c.port, nb, ok, c.want)
		}
		// The way back uses the opposite port.
		back, ok := m.Neighbor(nb, c.port.Opposite())
		if !ok || back != center {
			t.Errorf("Neighbor(%v, %s.Opposite()) = %v, want center", nb, c.port, back)
		}
	}
}

func TestMeshEdgesHaveNoWraparound(t *testing.T) {
	m := NewMesh(3)
	if _, ok := m.Neighbor(m.ID(Coord{0, 0}), West); ok {
		t.Error("west edge wrapped around")
	}
	if _, ok := m.Neighbor(m.ID(Coord{0, 0}), North); ok {
		t.Error("north edge wrapped around")
	}
	if _, ok := m.Neighbor(m.ID(Coord{2, 2}), East); ok {
		t.Error("east edge wrapped around")
	}
	if _, ok := m.Neighbor(m.ID(Coord{2, 2}), South); ok {
		t.Error("south edge wrapped around")
	}
}

func TestOppositeOfLocalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Local.Opposite() did not panic")
		}
	}()
	Local.Opposite()
}

func TestHops(t *testing.T) {
	m := NewMesh(8)
	if got := m.Hops(0, 63); got != 14 {
		t.Errorf("corner-to-corner hops = %d, want 14", got)
	}
	if got := m.Hops(5, 5); got != 0 {
		t.Errorf("self hops = %d, want 0", got)
	}
}

// TestAvgHopsUniformMatchesBruteForce validates the closed-form mean hop
// count against direct enumeration.
func TestAvgHopsUniformMatchesBruteForce(t *testing.T) {
	for _, k := range []int{2, 3, 4, 8} {
		m := NewMesh(k)
		total, pairs := 0, 0
		for a := 0; a < m.N(); a++ {
			for b := 0; b < m.N(); b++ {
				if a == b {
					continue
				}
				total += m.Hops(NodeID(a), NodeID(b))
				pairs++
			}
		}
		want := float64(total) / float64(pairs)
		if got := m.AvgHopsUniform(); math.Abs(got-want) > 1e-9 {
			t.Errorf("k=%d: AvgHopsUniform() = %v, brute force %v", k, got, want)
		}
	}
}

func TestCapacityPerNode(t *testing.T) {
	if got := NewMesh(8).CapacityPerNode(); got != 0.5 {
		t.Errorf("8x8 capacity = %v flits/node/cycle, want 0.5", got)
	}
	if got := NewMesh(4).CapacityPerNode(); got != 1.0 {
		t.Errorf("4x4 capacity = %v flits/node/cycle, want 1.0", got)
	}
}

func TestPortString(t *testing.T) {
	want := map[Port]string{East: "E", West: "W", North: "N", South: "S", Local: "L"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
}
