// Package topology defines the network topologies the simulator runs on.
// The paper evaluates an 8×8 two-dimensional mesh; the implementation is a
// general k-ary 2-mesh so that tests can use smaller instances and users can
// scale up.
package topology

import "fmt"

// NodeID identifies a router/terminal pair. IDs are assigned in row-major
// order: id = y*k + x.
type NodeID int

// Coord is a node's (column, row) position in the mesh.
type Coord struct {
	X, Y int
}

// Port identifies one of a router's five ports. The four direction ports
// connect to neighboring routers; Local connects to the node's network
// interface (injection on the input side, ejection on the output side).
type Port int

// Router ports, in fixed arbitration-independent order.
const (
	East Port = iota
	West
	North
	South
	Local
	NumPorts // number of ports on a mesh router
)

// DirectionPorts is the number of inter-router ports (all ports but Local).
const DirectionPorts = int(Local)

// String returns the conventional compass name of the port.
func (p Port) String() string {
	switch p {
	case East:
		return "E"
	case West:
		return "W"
	case North:
		return "N"
	case South:
		return "S"
	case Local:
		return "L"
	default:
		return fmt.Sprintf("Port(%d)", int(p))
	}
}

// Opposite returns the port on the neighboring router that faces back along
// the same link: a flit leaving through East arrives on the neighbor's West
// input. It panics for Local, which has no opposite.
func (p Port) Opposite() Port {
	switch p {
	case East:
		return West
	case West:
		return East
	case North:
		return South
	case South:
		return North
	default:
		panic("topology: Opposite of non-direction port " + p.String())
	}
}

// Mesh is a k×k two-dimensional mesh with bidirectional links between
// orthogonal neighbors.
type Mesh struct {
	k int
}

// NewMesh returns a k-ary 2-mesh. It panics unless k >= 2.
func NewMesh(k int) Mesh {
	if k < 2 {
		panic("topology: mesh radix must be at least 2")
	}
	return Mesh{k: k}
}

// Radix reports k, the number of nodes per dimension.
func (m Mesh) Radix() int { return m.k }

// N reports the total node count, k².
func (m Mesh) N() int { return m.k * m.k }

// Coord converts a NodeID to mesh coordinates. It panics on an out-of-range
// ID.
func (m Mesh) Coord(id NodeID) Coord {
	if int(id) < 0 || int(id) >= m.N() {
		panic(fmt.Sprintf("topology: node %d out of range for %d-node mesh", id, m.N()))
	}
	return Coord{X: int(id) % m.k, Y: int(id) / m.k}
}

// ID converts mesh coordinates to a NodeID. It panics on out-of-range
// coordinates.
func (m Mesh) ID(c Coord) NodeID {
	if c.X < 0 || c.X >= m.k || c.Y < 0 || c.Y >= m.k {
		panic(fmt.Sprintf("topology: coordinate %+v out of range for radix %d", c, m.k))
	}
	return NodeID(c.Y*m.k + c.X)
}

// Neighbor returns the node reached by leaving id through direction port p,
// and whether such a neighbor exists (mesh edges have no wraparound).
// It panics if p is Local.
func (m Mesh) Neighbor(id NodeID, p Port) (NodeID, bool) {
	c := m.Coord(id)
	switch p {
	case East:
		c.X++
	case West:
		c.X--
	case North:
		c.Y--
	case South:
		c.Y++
	default:
		panic("topology: Neighbor of non-direction port " + p.String())
	}
	if c.X < 0 || c.X >= m.k || c.Y < 0 || c.Y >= m.k {
		return 0, false
	}
	return m.ID(c), true
}

// HasLink reports whether the router at id has a neighbor through port p.
func (m Mesh) HasLink(id NodeID, p Port) bool {
	_, ok := m.Neighbor(id, p)
	return ok
}

// Hops returns the minimal hop count between two nodes (Manhattan distance).
func (m Mesh) Hops(a, b NodeID) int {
	ca, cb := m.Coord(a), m.Coord(b)
	return abs(ca.X-cb.X) + abs(ca.Y-cb.Y)
}

// AvgHopsUniform returns the expected hop count between a uniformly random
// ordered pair of distinct nodes. For a k-ary 2-mesh the per-dimension mean
// distance over all (not necessarily distinct) pairs is (k²−1)/(3k); the
// distinct-pair value follows by conditioning out the zero-distance pairs.
func (m Mesh) AvgHopsUniform() float64 {
	k := float64(m.k)
	n := k * k
	// Sum over all ordered pairs (including self-pairs) of |x1-x2| per
	// dimension is k * k² * (k²−1)/(3k)… computed directly instead:
	perDim := (k*k - 1) / (3 * k) // mean over all pairs incl. self
	allPairs := 2 * perDim        // two dimensions
	// Exclude the n self pairs (distance 0) from the n² total.
	return allPairs * n * n / (n*n - n)
}

// CapacityPerNode returns the saturation injection bandwidth per node, in
// flits/cycle, implied by the bisection bound under uniform random traffic.
// A k×k mesh has 2k unidirectional bisection channels; uniform traffic sends
// half of all injected flits across the bisection, so with channel bandwidth
// of one flit/cycle each node may inject at most 4/k flits/cycle. The paper's
// "offered traffic as % of capacity" is a fraction of this value (0.5
// flits/node/cycle for the 8×8 mesh).
func (m Mesh) CapacityPerNode() float64 {
	return 4 / float64(m.k)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
