package metrics

import (
	"frfc/internal/profile"
	"frfc/internal/sim"
	"frfc/internal/topology"
	"frfc/internal/trace"
	"frfc/internal/waterfall"
)

// Probe is the instrumentation point handed to a fabric. Any part may be
// absent: Reg collects counters and gauges, Tracer records flit-level
// events, Prof accounts the simulator's own activity (ticks, idle fractions,
// phase attribution), WF attributes per-packet latency to lifecycle stages.
// All methods are no-ops on a nil *Probe — fabrics hold a concrete *Probe
// (not an interface), so the disabled path is one nil test with no dynamic
// dispatch and no allocation.
type Probe struct {
	Reg    *Registry
	Tracer *trace.Tracer
	Prof   *profile.Registry
	WF     *waterfall.Ledger
}

// Enabled reports whether the probe collects anything at all.
func (p *Probe) Enabled() bool {
	return p != nil && (p.Reg != nil || p.Tracer != nil || p.Prof != nil || p.WF != nil)
}

// Init sizes the registries for a k×k mesh; safe to call on any probe.
func (p *Probe) Init(radix int) {
	if p == nil {
		return
	}
	p.Reg.Init(radix)
	p.Prof.Init(radix)
}

// Profile returns the self-profiling registry, nil when profiling is off.
// Fabrics cache the result at attach time so the per-tick cost of disabled
// profiling is a nil test on a concrete *profile.Registry.
func (p *Probe) Profile() *profile.Registry {
	if p == nil {
		return nil
	}
	return p.Prof
}

// Waterfall returns the latency-stage ledger, nil when latency provenance is
// off. Fabrics cache the result at attach time so the per-event cost of the
// disabled waterfall is a nil test on a concrete *waterfall.Ledger.
func (p *Probe) Waterfall() *waterfall.Ledger {
	if p == nil {
		return nil
	}
	return p.WF
}

// SampleDue reports whether occupancy gauges should be sampled this cycle.
func (p *Probe) SampleDue(now sim.Cycle) bool {
	return p != nil && p.Reg != nil && p.Reg.Epoch > 0 && now%p.Reg.Epoch == 0
}

// Occupancy records one epoch sample of an input port's buffer usage.
func (p *Probe) Occupancy(node int, port int, used, capacity int) {
	if p == nil || p.Reg == nil {
		return
	}
	p.Reg.at(node).Occ[port].Sample(used, capacity)
}

// ReserveHit records a successful reservation at node's output port: the
// control flit found departure slots and admitted its leads. depart is the
// earliest reserved departure cycle.
func (p *Probe) ReserveHit(now sim.Cycle, node, port int, pkt uint64, depart sim.Cycle) {
	if p == nil {
		return
	}
	if p.Reg != nil {
		p.Reg.at(node).ResHits++
	}
	p.Tracer.Record(trace.Event{
		Cycle: now, Kind: trace.KindReserve, Node: int32(node), Port: int8(port),
		Packet: pkt, Arg: int64(depart),
	})
}

// ReserveMiss records a reservation attempt that found no feasible slot.
func (p *Probe) ReserveMiss(node, port int) {
	if p == nil || p.Reg == nil {
		return
	}
	p.Reg.at(node).ResMisses++
}

// Late records a data flit arriving ahead of its reservation and parking.
func (p *Probe) Late(now sim.Cycle, node, port int, pkt uint64, seq int) {
	if p == nil {
		return
	}
	if p.Reg != nil {
		p.Reg.at(node).LateReservations++
	}
	p.Tracer.Record(trace.Event{
		Cycle: now, Kind: trace.KindPark, Node: int32(node), Port: int8(port),
		Packet: pkt, Seq: int32(seq),
	})
}

// ArbConflict records an arbitration loss at node for an output port.
func (p *Probe) ArbConflict(node, port int) {
	if p == nil || p.Reg == nil {
		return
	}
	p.Reg.at(node).ArbConflicts++
}

// CreditStall records a cycle in which a ready flit could not advance for
// lack of downstream credit or link bandwidth.
func (p *Probe) CreditStall(node, port int) {
	if p == nil || p.Reg == nil {
		return
	}
	p.Reg.at(node).CreditStalls++
}

// Route records a routing decision: pkt at node was steered to output out.
func (p *Probe) Route(now sim.Cycle, node, out int, pkt uint64) {
	if p == nil || p.Tracer == nil {
		return
	}
	p.Tracer.Record(trace.Event{
		Cycle: now, Kind: trace.KindRoute, Node: int32(node), Port: int8(out), Packet: pkt,
	})
}

// Inject records a data flit entering the network at node's NI.
func (p *Probe) Inject(now sim.Cycle, node int, pkt uint64, seq int) {
	if p == nil {
		return
	}
	if p.Reg != nil {
		p.Reg.at(node).Injected++
	}
	p.Tracer.Record(trace.Event{
		Cycle: now, Kind: trace.KindInject, Node: int32(node), Port: int8(topology.Local),
		Packet: pkt, Seq: int32(seq),
	})
}

// Eject records a data flit delivered to node's sink.
func (p *Probe) Eject(now sim.Cycle, node int, pkt uint64, seq int) {
	if p == nil {
		return
	}
	if p.Reg != nil {
		p.Reg.at(node).Ejected++
	}
	p.Tracer.Record(trace.Event{
		Cycle: now, Kind: trace.KindEject, Node: int32(node), Port: int8(topology.Local),
		Packet: pkt, Seq: int32(seq),
	})
}

// Traverse records a data flit crossing node's output link out.
func (p *Probe) Traverse(now sim.Cycle, node, out int, pkt uint64, seq int) {
	if p == nil {
		return
	}
	if p.Reg != nil {
		p.Reg.at(node).Links[out].Flits++
	}
	p.Tracer.Record(trace.Event{
		Cycle: now, Kind: trace.KindTraverse, Node: int32(node), Port: int8(out),
		Packet: pkt, Seq: int32(seq),
	})
}

// CtrlForward records a control flit crossing node's output link out.
func (p *Probe) CtrlForward(node, out int) {
	if p == nil || p.Reg == nil {
		return
	}
	p.Reg.at(node).Links[out].Ctrl++
}

// Retry records node's NI issuing an end-to-end retransmission of pkt.
func (p *Probe) Retry(now sim.Cycle, node int, pkt uint64, attempt int) {
	if p == nil {
		return
	}
	if p.Reg != nil {
		p.Reg.at(node).Retries++
	}
	p.Tracer.Record(trace.Event{
		Cycle: now, Kind: trace.KindRetry, Node: int32(node), Port: -1,
		Packet: pkt, Attempt: uint8(attempt),
	})
}

// Nack records a loss detection (hole in the delivered sequence) at node.
func (p *Probe) Nack(node int) {
	if p == nil || p.Reg == nil {
		return
	}
	p.Reg.at(node).Nacks++
}

// Corrupt records a corrupted flit (data or control) arriving at node — a
// bit-errored delivery, counted whether or not the hop CRC catches it.
func (p *Probe) Corrupt(node int) {
	if p == nil || p.Reg == nil {
		return
	}
	p.Reg.at(node).Corrupt++
}

// Unreachable records node's NI failing a packet fast because a hard fault
// disconnected its destination.
func (p *Probe) Unreachable(node int) {
	if p == nil || p.Reg == nil {
		return
	}
	p.Reg.at(node).Unreachable++
}

// Wedge records the watchdog declaring the network wedged.
func (p *Probe) Wedge(now sim.Cycle) {
	if p == nil || p.Tracer == nil {
		return
	}
	p.Tracer.Record(trace.Event{Cycle: now, Kind: trace.KindWedge, Port: -1})
}

// Attachable is implemented by networks that accept a probe after
// construction. Attaching nil detaches.
type Attachable interface {
	AttachProbe(*Probe)
}
