// Package metrics is a per-router counter and gauge registry for the
// simulated fabrics. Routers and network interfaces increment counters
// (reservation-table hits/misses, late reservations, arbitration conflicts,
// credit stalls, retries, NACKs) and contribute link-utilization tallies;
// buffer occupancy is sampled on a configurable epoch. The registry exports
// as JSON for machine consumption and as per-node CSV heatmaps for a quick
// visual read of where a mesh is congested.
//
// Instrumentation goes through Probe, whose methods are safe — and free of
// allocation — on a nil receiver, so a disabled probe costs the fabric hot
// path one pointer test per site.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"frfc/internal/sim"
	"frfc/internal/topology"
)

// Gauge accumulates epoch samples of a bounded quantity such as buffer
// occupancy.
type Gauge struct {
	// Samples is how many times the gauge was read; Sum and Max aggregate
	// the sampled values; Cap is the quantity's bound (last seen).
	Samples int64 `json:"samples"`
	Sum     int64 `json:"sum"`
	Max     int64 `json:"max"`
	Cap     int64 `json:"cap"`
}

// Sample records one observation.
func (g *Gauge) Sample(used, capacity int) {
	g.Samples++
	g.Sum += int64(used)
	if int64(used) > g.Max {
		g.Max = int64(used)
	}
	g.Cap = int64(capacity)
}

// Mean is the average sampled value, 0 with no samples.
func (g *Gauge) Mean() float64 {
	if g.Samples == 0 {
		return 0
	}
	return float64(g.Sum) / float64(g.Samples)
}

// MeanFraction is Mean divided by capacity, in [0,1]; 0 when unbounded or
// unsampled.
func (g *Gauge) MeanFraction() float64 {
	if g.Samples == 0 || g.Cap <= 0 {
		return 0
	}
	return g.Mean() / float64(g.Cap)
}

// LinkStats tallies traffic leaving a router through one output port.
type LinkStats struct {
	// Flits counts data flits sent; Ctrl counts control flits.
	Flits int64 `json:"flits"`
	Ctrl  int64 `json:"ctrl"`
}

// NodeMetrics is one router's counters, indexed by the router's NodeID in
// the registry.
type NodeMetrics struct {
	// Reservation-table outcomes at this router: a hit schedules the
	// requested departures, a miss leaves the control flit to retry next
	// cycle, and a late reservation is a data flit arriving before the
	// reservation its control flit made (it parks).
	ResHits          int64 `json:"resHits"`
	ResMisses        int64 `json:"resMisses"`
	LateReservations int64 `json:"lateReservations"`
	// ArbConflicts counts arbitration losses (another requester took the
	// output this cycle); CreditStalls counts cycles a winner could not
	// proceed for lack of downstream credit or link bandwidth.
	ArbConflicts int64 `json:"arbConflicts"`
	CreditStalls int64 `json:"creditStalls"`
	// Recovery activity attributed to this node's NI: end-to-end retries
	// issued, loss detections (NACK path), and packets failed fast because
	// a hard fault disconnected their destination.
	Retries     int64 `json:"retries"`
	Nacks       int64 `json:"nacks"`
	Unreachable int64 `json:"unreachable,omitempty"`
	// Corrupt counts corrupted flit receptions observed at this node: a
	// bit-errored data or control flit arriving at one of the router's
	// inputs, counted at every hop it survives and whether or not the hop
	// CRC then catches it.
	Corrupt int64 `json:"corrupt,omitempty"`
	// Injected and Ejected count data flits entering and leaving the
	// network at this node.
	Injected int64 `json:"injected"`
	Ejected  int64 `json:"ejected"`
	// Links is per-output-port traffic; Occ is the sampled occupancy of
	// each input port's buffer pool.
	Links [topology.NumPorts]LinkStats `json:"links"`
	Occ   [topology.NumPorts]Gauge     `json:"occ"`
}

// active reports whether the node recorded anything at all.
func (n *NodeMetrics) active() bool {
	if n.ResHits|n.ResMisses|n.LateReservations|n.ArbConflicts|n.CreditStalls|
		n.Retries|n.Nacks|n.Unreachable|n.Corrupt|n.Injected|n.Ejected != 0 {
		return true
	}
	for p := 0; p < int(topology.NumPorts); p++ {
		if n.Links[p].Flits|n.Links[p].Ctrl != 0 {
			return true
		}
	}
	return false
}

// DefaultEpoch is the sampling period, in cycles, used when a registry is
// created with a non-positive one.
const DefaultEpoch = 64

// Registry holds every router's metrics for one simulated network.
type Registry struct {
	// Epoch is the gauge sampling period in cycles.
	Epoch sim.Cycle `json:"epoch"`
	// Radix is the mesh radix k (k×k nodes); Cycles is the simulated run
	// length recorded at export time.
	Radix  int           `json:"radix"`
	Cycles sim.Cycle     `json:"cycles"`
	Nodes  []NodeMetrics `json:"nodes"`
	// Cols and Rows, when both positive, describe a rectangular cols×rows
	// layout (node id = y*cols + x) and take precedence over the square
	// Radix in grid exports. Set by InitRect; zero for square meshes.
	Cols int `json:"cols,omitempty"`
	Rows int `json:"rows,omitempty"`
}

// NewRegistry returns an empty registry sampling gauges every epoch cycles
// (non-positive = DefaultEpoch). Node storage is sized on Init.
func NewRegistry(epoch sim.Cycle) *Registry {
	if epoch <= 0 {
		epoch = DefaultEpoch
	}
	return &Registry{Epoch: epoch}
}

// Init sizes the registry for a k×k mesh. It is idempotent and keeps
// existing counts when already sized.
func (r *Registry) Init(radix int) {
	if r == nil || radix <= 0 {
		return
	}
	if len(r.Nodes) < radix*radix {
		nodes := make([]NodeMetrics, radix*radix)
		copy(nodes, r.Nodes)
		r.Nodes = nodes
	}
	r.Radix = radix
}

// InitRect sizes the registry for a rectangular cols×rows layout with nodes
// numbered row-major (id = y*cols + x). Like Init it is idempotent and keeps
// existing counts; grid exports then emit rows lines of cols cells.
func (r *Registry) InitRect(cols, rows int) {
	if r == nil || cols <= 0 || rows <= 0 {
		return
	}
	if len(r.Nodes) < cols*rows {
		nodes := make([]NodeMetrics, cols*rows)
		copy(nodes, r.Nodes)
		r.Nodes = nodes
	}
	r.Cols, r.Rows = cols, rows
}

// dims reports the grid layout: the rectangular one when set, else the square
// radix on both axes.
func (r *Registry) dims() (cols, rows int) {
	if r.Cols > 0 && r.Rows > 0 {
		return r.Cols, r.Rows
	}
	return r.Radix, r.Radix
}

// Clone returns a deep copy of the registry, safe to hand to another
// goroutine while the original keeps accumulating. A nil registry clones to
// nil.
func (r *Registry) Clone() *Registry {
	if r == nil {
		return nil
	}
	c := *r
	c.Nodes = append([]NodeMetrics(nil), r.Nodes...)
	return &c
}

// Merge folds another registry's counts into this one: counters and gauge
// accumulators add, gauge maxima and layout dimensions take the larger, and
// Cycles accumulates (the merged registry describes the union of simulated
// work). Merging nil is a no-op.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	if o.Radix > r.Radix {
		r.Radix = o.Radix
	}
	if o.Cols > r.Cols {
		r.Cols = o.Cols
	}
	if o.Rows > r.Rows {
		r.Rows = o.Rows
	}
	r.Cycles += o.Cycles
	if len(o.Nodes) > len(r.Nodes) {
		nodes := make([]NodeMetrics, len(o.Nodes))
		copy(nodes, r.Nodes)
		r.Nodes = nodes
	}
	for i := range o.Nodes {
		dst, src := &r.Nodes[i], &o.Nodes[i]
		dst.ResHits += src.ResHits
		dst.ResMisses += src.ResMisses
		dst.LateReservations += src.LateReservations
		dst.ArbConflicts += src.ArbConflicts
		dst.CreditStalls += src.CreditStalls
		dst.Retries += src.Retries
		dst.Nacks += src.Nacks
		dst.Unreachable += src.Unreachable
		dst.Corrupt += src.Corrupt
		dst.Injected += src.Injected
		dst.Ejected += src.Ejected
		for p := 0; p < int(topology.NumPorts); p++ {
			dst.Links[p].Flits += src.Links[p].Flits
			dst.Links[p].Ctrl += src.Links[p].Ctrl
			dg, sg := &dst.Occ[p], &src.Occ[p]
			dg.Samples += sg.Samples
			dg.Sum += sg.Sum
			if sg.Max > dg.Max {
				dg.Max = sg.Max
			}
			if sg.Cap > dg.Cap {
				dg.Cap = sg.Cap
			}
		}
	}
}

// at returns the node's metrics, growing the registry if an ID beyond the
// initialised size appears (defensive; normal paths Init first).
func (r *Registry) at(node int) *NodeMetrics {
	if node >= len(r.Nodes) {
		nodes := make([]NodeMetrics, node+1)
		copy(nodes, r.Nodes)
		r.Nodes = nodes
	}
	return &r.Nodes[node]
}

// WriteJSON exports the registry as one indented JSON object.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteOccupancyCSV writes a k×k grid of mean input-buffer occupancy
// fractions (0..1), one row per mesh row, matching the physical layout so
// the file reads as a heatmap. A leading comment line documents the field.
func (r *Registry) WriteOccupancyCSV(w io.Writer) error {
	return r.writeGrid(w, "# mean input-buffer occupancy fraction per router (rows = mesh rows, y increasing downward)",
		func(n *NodeMetrics) float64 {
			var sum float64
			var ports int
			for p := 0; p < int(topology.NumPorts); p++ {
				if n.Occ[p].Samples > 0 {
					sum += n.Occ[p].MeanFraction()
					ports++
				}
			}
			if ports == 0 {
				return 0
			}
			return sum / float64(ports)
		})
}

// WriteUtilizationCSV writes a k×k grid of mean outbound link utilization:
// data flits sent on the router's direction ports divided by
// cycles × direction-port count. Local-port (ejection) traffic is excluded
// so the number reads as fabric-link load.
func (r *Registry) WriteUtilizationCSV(w io.Writer) error {
	return r.writeGrid(w, "# mean outbound link utilization per router (data flits / cycle / direction link)",
		func(n *NodeMetrics) float64 {
			if r.Cycles <= 0 {
				return 0
			}
			var flits int64
			for p := 0; p < topology.DirectionPorts; p++ {
				flits += n.Links[p].Flits
			}
			return float64(flits) / (float64(r.Cycles) * float64(topology.DirectionPorts))
		})
}

func (r *Registry) writeGrid(w io.Writer, header string, cell func(*NodeMetrics) float64) error {
	cols, rows := r.dims()
	if cols <= 0 || rows <= 0 {
		return fmt.Errorf("metrics: registry not initialised (cols %d, rows %d)", cols, rows)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			if x > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			var v float64
			if id := y*cols + x; id < len(r.Nodes) {
				v = cell(&r.Nodes[id])
			}
			if _, err := fmt.Fprintf(w, "%.4f", v); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// WedgeSummary renders the per-router counter lines of a watchdog snapshot:
// one line per active router, stalled routers first, each showing the
// counters that explain why traffic stopped moving.
func (r *Registry) WedgeSummary(stalled []int) string {
	if r == nil {
		return ""
	}
	stall := map[int]bool{}
	for _, id := range stalled {
		stall[id] = true
	}
	ids := make([]int, 0, len(r.Nodes))
	for id := range r.Nodes {
		if r.Nodes[id].active() || stall[id] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if stall[ids[i]] != stall[ids[j]] {
			return stall[ids[i]]
		}
		return ids[i] < ids[j]
	})
	var b strings.Builder
	for _, id := range ids {
		n := &r.Nodes[id]
		fmt.Fprintf(&b, "router %d:", id)
		if stall[id] {
			b.WriteString(" STALLED")
		}
		fmt.Fprintf(&b, " res %d/%d hit/miss, late %d, arb-conflicts %d, credit-stalls %d",
			n.ResHits, n.ResMisses, n.LateReservations, n.ArbConflicts, n.CreditStalls)
		if n.Retries != 0 || n.Nacks != 0 {
			fmt.Fprintf(&b, ", retries %d, nacks %d", n.Retries, n.Nacks)
		}
		if n.Unreachable != 0 {
			fmt.Fprintf(&b, ", unreachable %d", n.Unreachable)
		}
		if n.Corrupt != 0 {
			fmt.Fprintf(&b, ", corrupt %d", n.Corrupt)
		}
		fmt.Fprintf(&b, ", inj %d, ej %d", n.Injected, n.Ejected)
		var occ []string
		for p := 0; p < int(topology.NumPorts); p++ {
			if g := &n.Occ[p]; g.Samples > 0 && g.Sum > 0 {
				occ = append(occ, fmt.Sprintf("%s %.0f%%", topology.Port(p), 100*g.MeanFraction()))
			}
		}
		if len(occ) > 0 {
			fmt.Fprintf(&b, ", occ[%s]", strings.Join(occ, " "))
		}
		b.WriteString("\n")
	}
	return b.String()
}
