package metrics

import (
	"fmt"
	"io"

	"frfc/internal/topology"
)

// counterCol names one per-node counter column for Prometheus export.
type counterCol struct {
	name string
	help string
	get  func(*NodeMetrics) int64
}

var promCounters = []counterCol{
	{"frfc_res_hits_total", "Reservation-table hits at this router.", func(n *NodeMetrics) int64 { return n.ResHits }},
	{"frfc_res_misses_total", "Reservation-table misses at this router.", func(n *NodeMetrics) int64 { return n.ResMisses }},
	{"frfc_late_reservations_total", "Data flits that arrived before their reservation.", func(n *NodeMetrics) int64 { return n.LateReservations }},
	{"frfc_arb_conflicts_total", "Arbitration losses at this router.", func(n *NodeMetrics) int64 { return n.ArbConflicts }},
	{"frfc_credit_stalls_total", "Cycles an arbitration winner stalled on credit or link bandwidth.", func(n *NodeMetrics) int64 { return n.CreditStalls }},
	{"frfc_retries_total", "End-to-end packet retries issued by this node's NI.", func(n *NodeMetrics) int64 { return n.Retries }},
	{"frfc_nacks_total", "Loss detections (NACK path) at this node's NI.", func(n *NodeMetrics) int64 { return n.Nacks }},
	{"frfc_unreachable_total", "Packets failed fast at this node's NI because a hard fault disconnected their destination.", func(n *NodeMetrics) int64 { return n.Unreachable }},
	{"frfc_injected_flits_total", "Data flits injected into the network at this node.", func(n *NodeMetrics) int64 { return n.Injected }},
	{"frfc_ejected_flits_total", "Data flits ejected from the network at this node.", func(n *NodeMetrics) int64 { return n.Ejected }},
}

// WritePrometheus exports the registry in Prometheus text exposition format
// (version 0.0.4): per-router counters labelled by node id and mesh
// coordinates, per-output-port link traffic, mean input-buffer occupancy
// fractions for sampled ports, and the run-level cycle count and sampling
// epoch. The receiver must not be mutated concurrently — export a Clone of a
// live registry instead.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("metrics: nil registry")
	}
	cols, _ := r.dims()
	coord := func(id int) (x, y int) {
		if cols <= 0 {
			return id, 0
		}
		return id % cols, id / cols
	}
	for _, c := range promCounters {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", c.name, c.help, c.name); err != nil {
			return err
		}
		for id := range r.Nodes {
			x, y := coord(id)
			if _, err := fmt.Fprintf(w, "%s{node=\"%d\",x=\"%d\",y=\"%d\"} %d\n",
				c.name, id, x, y, c.get(&r.Nodes[id])); err != nil {
				return err
			}
		}
	}

	if _, err := io.WriteString(w,
		"# HELP frfc_link_flits_total Data flits sent on this output port.\n"+
			"# TYPE frfc_link_flits_total counter\n"); err != nil {
		return err
	}
	for id := range r.Nodes {
		x, y := coord(id)
		for p := 0; p < int(topology.NumPorts); p++ {
			if _, err := fmt.Fprintf(w, "frfc_link_flits_total{node=\"%d\",x=\"%d\",y=\"%d\",port=\"%s\"} %d\n",
				id, x, y, topology.Port(p), r.Nodes[id].Links[p].Flits); err != nil {
				return err
			}
		}
	}
	if _, err := io.WriteString(w,
		"# HELP frfc_link_ctrl_total Control flits sent on this output port.\n"+
			"# TYPE frfc_link_ctrl_total counter\n"); err != nil {
		return err
	}
	for id := range r.Nodes {
		x, y := coord(id)
		for p := 0; p < int(topology.NumPorts); p++ {
			if _, err := fmt.Fprintf(w, "frfc_link_ctrl_total{node=\"%d\",x=\"%d\",y=\"%d\",port=\"%s\"} %d\n",
				id, x, y, topology.Port(p), r.Nodes[id].Links[p].Ctrl); err != nil {
				return err
			}
		}
	}

	if _, err := io.WriteString(w,
		"# HELP frfc_occupancy_mean_fraction Mean input-buffer occupancy fraction (0..1) for sampled ports.\n"+
			"# TYPE frfc_occupancy_mean_fraction gauge\n"); err != nil {
		return err
	}
	for id := range r.Nodes {
		x, y := coord(id)
		for p := 0; p < int(topology.NumPorts); p++ {
			g := &r.Nodes[id].Occ[p]
			if g.Samples == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "frfc_occupancy_mean_fraction{node=\"%d\",x=\"%d\",y=\"%d\",port=\"%s\"} %g\n",
				id, x, y, topology.Port(p), g.MeanFraction()); err != nil {
				return err
			}
		}
	}

	_, err := fmt.Fprintf(w,
		"# HELP frfc_cycles Simulated cycles covered by this registry.\n"+
			"# TYPE frfc_cycles gauge\nfrfc_cycles %d\n"+
			"# HELP frfc_epoch Gauge sampling period in cycles.\n"+
			"# TYPE frfc_epoch gauge\nfrfc_epoch %d\n", r.Cycles, r.Epoch)
	return err
}
