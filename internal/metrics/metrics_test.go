package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"frfc/internal/sim"
	"frfc/internal/topology"
	"frfc/internal/trace"
)

func TestNilProbeIsSafeAndFree(t *testing.T) {
	var p *Probe
	if p.Enabled() {
		t.Fatal("nil probe claims to be enabled")
	}
	if p.SampleDue(0) {
		t.Fatal("nil probe claims a sample is due")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		p.Init(8)
		p.Occupancy(3, 1, 2, 8)
		p.ReserveHit(10, 3, 0, 7, 12)
		p.ReserveMiss(3, 0)
		p.Late(10, 3, 1, 7, 0)
		p.ArbConflict(3, 0)
		p.CreditStall(3, 0)
		p.Route(10, 3, 0, 7)
		p.Inject(10, 3, 7, 0)
		p.Eject(14, 5, 7, 0)
		p.Traverse(11, 3, 0, 7, 0)
		p.CtrlForward(3, 0)
		p.Retry(20, 3, 7, 1)
		p.Nack(5)
		p.Wedge(30)
	})
	if allocs != 0 {
		t.Fatalf("disabled probe allocated %v times per call batch", allocs)
	}
}

func TestEnabledProbeHotPathDoesNotAllocate(t *testing.T) {
	p := &Probe{Reg: NewRegistry(0), Tracer: trace.New(1 << 10)}
	p.Init(8)
	allocs := testing.AllocsPerRun(1000, func() {
		p.Occupancy(3, 1, 2, 8)
		p.ReserveHit(10, 3, 0, 7, 12)
		p.ReserveMiss(3, 0)
		p.ArbConflict(3, 0)
		p.CreditStall(3, 0)
		p.Inject(10, 3, 7, 0)
		p.Traverse(11, 3, 0, 7, 0)
		p.CtrlForward(3, 0)
		p.Eject(14, 5, 7, 0)
	})
	if allocs != 0 {
		t.Fatalf("enabled probe allocated %v times per call batch", allocs)
	}
}

func TestSampleDue(t *testing.T) {
	p := &Probe{Reg: NewRegistry(50)}
	due := 0
	for now := sim.Cycle(0); now < 200; now++ {
		if p.SampleDue(now) {
			due++
		}
	}
	if due != 4 {
		t.Fatalf("SampleDue fired %d times in 200 cycles with epoch 50, want 4", due)
	}
}

func TestRegistryDefaultEpoch(t *testing.T) {
	if r := NewRegistry(0); r.Epoch != DefaultEpoch {
		t.Fatalf("epoch = %d, want default %d", r.Epoch, DefaultEpoch)
	}
	if r := NewRegistry(17); r.Epoch != 17 {
		t.Fatalf("epoch = %d, want 17", r.Epoch)
	}
}

func TestRegistryInitIdempotent(t *testing.T) {
	r := NewRegistry(0)
	r.Init(4)
	r.at(3).ResHits = 9
	r.Init(4)
	if r.Nodes[3].ResHits != 9 {
		t.Fatal("re-Init dropped existing counts")
	}
	r.Init(8)
	if len(r.Nodes) != 64 || r.Nodes[3].ResHits != 9 {
		t.Fatalf("growing Init lost state: len=%d hits=%d", len(r.Nodes), r.Nodes[3].ResHits)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Mean() != 0 || g.MeanFraction() != 0 {
		t.Fatal("empty gauge not zero")
	}
	g.Sample(2, 8)
	g.Sample(6, 8)
	if g.Mean() != 4 {
		t.Fatalf("Mean = %v, want 4", g.Mean())
	}
	if g.MeanFraction() != 0.5 {
		t.Fatalf("MeanFraction = %v, want 0.5", g.MeanFraction())
	}
	if g.Max != 6 {
		t.Fatalf("Max = %d, want 6", g.Max)
	}
	// Unbounded (capacity 0) pools must not divide by zero.
	var u Gauge
	u.Sample(3, 0)
	if f := u.MeanFraction(); f != 0 {
		t.Fatalf("MeanFraction with cap 0 = %v, want 0", f)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	p := &Probe{Reg: NewRegistry(32)}
	p.Init(4)
	p.ReserveHit(10, 5, 0, 1, 12)
	p.Traverse(11, 5, 0, 1, 0)
	p.Reg.Cycles = 100

	var buf bytes.Buffer
	if err := p.Reg.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Registry
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON does not round-trip: %v", err)
	}
	if back.Epoch != 32 || back.Radix != 4 || back.Cycles != 100 {
		t.Fatalf("header lost: %+v", back)
	}
	if back.Nodes[5].ResHits != 1 || back.Nodes[5].Links[0].Flits != 1 {
		t.Fatalf("node counts lost: %+v", back.Nodes[5])
	}
}

func TestHeatmapCSVs(t *testing.T) {
	r := NewRegistry(0)
	r.Init(2)
	r.Cycles = 100
	// Node 3 sends 40 data flits east; node 0's Local pool half full.
	r.at(3).Links[topology.East].Flits = 40
	r.at(0).Occ[topology.Local].Sample(4, 8)

	var occ bytes.Buffer
	if err := r.WriteOccupancyCSV(&occ); err != nil {
		t.Fatalf("WriteOccupancyCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(occ.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "#") {
		t.Fatalf("occupancy CSV shape wrong:\n%s", occ.String())
	}
	if lines[1] != "0.5000,0.0000" {
		t.Fatalf("occupancy row 0 = %q, want %q", lines[1], "0.5000,0.0000")
	}

	var util bytes.Buffer
	if err := r.WriteUtilizationCSV(&util); err != nil {
		t.Fatalf("WriteUtilizationCSV: %v", err)
	}
	lines = strings.Split(strings.TrimSpace(util.String()), "\n")
	// 40 flits / (100 cycles * 4 direction links) = 0.1 at node 3 (row 1, col 1).
	if lines[2] != "0.0000,0.1000" {
		t.Fatalf("utilization row 1 = %q, want %q", lines[2], "0.0000,0.1000")
	}
}

func TestHeatmapCSVRequiresInit(t *testing.T) {
	r := NewRegistry(0)
	var buf bytes.Buffer
	if err := r.WriteOccupancyCSV(&buf); err == nil {
		t.Fatal("uninitialised registry exported a heatmap")
	}
}

func TestWedgeSummary(t *testing.T) {
	r := NewRegistry(0)
	r.Init(2)
	r.at(0).ResHits = 3
	r.at(0).CreditStalls = 7
	r.at(2).ResMisses = 5
	r.at(2).Occ[topology.East].Sample(8, 8)

	s := r.WedgeSummary([]int{2})
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 2 {
		t.Fatalf("WedgeSummary lines = %d, want 2:\n%s", len(lines), s)
	}
	// Stalled router first, marked.
	if !strings.HasPrefix(lines[0], "router 2:") || !strings.Contains(lines[0], "STALLED") {
		t.Fatalf("stalled router not first/marked: %q", lines[0])
	}
	if !strings.Contains(lines[0], "occ[E 100%]") {
		t.Fatalf("occupancy missing from stalled line: %q", lines[0])
	}
	if !strings.Contains(lines[1], "credit-stalls 7") {
		t.Fatalf("counter missing: %q", lines[1])
	}
	// Inactive router 1 and 3 are omitted.
	if strings.Contains(s, "router 1:") || strings.Contains(s, "router 3:") {
		t.Fatalf("idle routers rendered:\n%s", s)
	}
	// Nil registry renders nothing rather than panicking.
	var nilReg *Registry
	if nilReg.WedgeSummary([]int{0}) != "" {
		t.Fatal("nil registry produced a summary")
	}
}

func TestProbeTracesThroughTracer(t *testing.T) {
	tr := trace.New(64)
	p := &Probe{Tracer: tr}
	p.Inject(5, 0, 1, 0)
	p.Route(6, 0, 2, 1)
	p.ReserveHit(7, 0, 2, 1, 9)
	p.Late(8, 1, 0, 1, 0)
	p.Traverse(9, 0, 2, 1, 0)
	p.Eject(12, 1, 1, 0)
	p.Retry(20, 0, 1, 1)
	p.Wedge(30)
	evs := tr.Events()
	want := []trace.Kind{
		trace.KindInject, trace.KindRoute, trace.KindReserve, trace.KindPark,
		trace.KindTraverse, trace.KindEject, trace.KindRetry, trace.KindWedge,
	}
	if len(evs) != len(want) {
		t.Fatalf("recorded %d events, want %d", len(evs), len(want))
	}
	for i, k := range want {
		if evs[i].Kind != k {
			t.Errorf("event %d kind = %v, want %v", i, evs[i].Kind, k)
		}
	}
	if evs[2].Arg != 9 {
		t.Errorf("reserve departure arg = %d, want 9", evs[2].Arg)
	}
}

func TestHeatmapCSVNonSquare(t *testing.T) {
	// 8 columns x 4 rows, row-major ids: node id = y*8 + x.
	r := NewRegistry(0)
	r.InitRect(8, 4)
	r.Cycles = 100
	// Distinct cells: (x=5,y=0) id 5, (x=2,y=3) id 26.
	r.at(5).Occ[topology.Local].Sample(4, 8)
	r.at(26).Occ[topology.Local].Sample(8, 8)
	r.at(26).Links[topology.East].Flits = 40

	var occ bytes.Buffer
	if err := r.WriteOccupancyCSV(&occ); err != nil {
		t.Fatalf("WriteOccupancyCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(occ.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("4x8 heatmap has %d lines, want 5 (header + 4 rows):\n%s", len(lines), occ.String())
	}
	for i, row := range lines[1:] {
		if cells := strings.Split(row, ","); len(cells) != 8 {
			t.Fatalf("row %d has %d cells, want 8: %q", i, len(cells), row)
		}
	}
	if lines[1] != "0.0000,0.0000,0.0000,0.0000,0.0000,0.5000,0.0000,0.0000" {
		t.Fatalf("row y=0 = %q, want 0.5 in column x=5", lines[1])
	}
	if lines[4] != "0.0000,0.0000,1.0000,0.0000,0.0000,0.0000,0.0000,0.0000" {
		t.Fatalf("row y=3 = %q, want 1.0 in column x=2", lines[4])
	}

	var util bytes.Buffer
	if err := r.WriteUtilizationCSV(&util); err != nil {
		t.Fatalf("WriteUtilizationCSV: %v", err)
	}
	lines = strings.Split(strings.TrimSpace(util.String()), "\n")
	// 40 flits / (100 cycles * 4 direction links) = 0.1 at (x=2, y=3).
	if lines[4] != "0.0000,0.0000,0.1000,0.0000,0.0000,0.0000,0.0000,0.0000" {
		t.Fatalf("utilization row y=3 = %q, want 0.1 in column x=2", lines[4])
	}
}

func TestInitRectIdempotent(t *testing.T) {
	r := NewRegistry(0)
	r.InitRect(8, 4)
	r.at(26).ResHits = 9
	r.InitRect(8, 4)
	if r.Nodes[26].ResHits != 9 {
		t.Fatal("re-InitRect dropped existing counts")
	}
}

func TestRegistryClone(t *testing.T) {
	r := NewRegistry(32)
	r.Init(2)
	r.Cycles = 50
	r.at(1).ResHits = 7
	r.at(1).Occ[topology.East].Sample(2, 8)

	c := r.Clone()
	if c.Epoch != 32 || c.Cycles != 50 || c.Nodes[1].ResHits != 7 {
		t.Fatalf("clone lost state: %+v", c)
	}
	// Mutating the original must not reach the clone.
	r.at(1).ResHits = 99
	r.at(1).Occ[topology.East].Sample(8, 8)
	if c.Nodes[1].ResHits != 7 || c.Nodes[1].Occ[topology.East].Samples != 1 {
		t.Fatal("clone shares node storage with the original")
	}
	var nilReg *Registry
	if nilReg.Clone() != nil {
		t.Fatal("nil registry cloned to non-nil")
	}
}

func TestRegistryMerge(t *testing.T) {
	a := NewRegistry(0)
	a.Init(2)
	a.Cycles = 100
	a.at(1).ResHits = 3
	a.at(1).Occ[topology.East].Sample(2, 8)

	b := NewRegistry(0)
	b.Init(2)
	b.Cycles = 60
	b.at(1).ResHits = 4
	b.at(1).Injected = 10
	b.at(1).Occ[topology.East].Sample(6, 8)
	b.at(1).Occ[topology.East].Sample(4, 8)

	a.Merge(b)
	if a.Cycles != 160 {
		t.Fatalf("merged cycles = %d, want 160", a.Cycles)
	}
	n := &a.Nodes[1]
	if n.ResHits != 7 || n.Injected != 10 {
		t.Fatalf("merged counters wrong: hits=%d inj=%d", n.ResHits, n.Injected)
	}
	g := &n.Occ[topology.East]
	if g.Samples != 3 || g.Sum != 12 || g.Max != 6 || g.Cap != 8 {
		t.Fatalf("merged gauge wrong: %+v", g)
	}
	// Merging a larger registry grows the destination.
	big := NewRegistry(0)
	big.Init(4)
	big.at(15).Ejected = 5
	a.Merge(big)
	if len(a.Nodes) != 16 || a.Nodes[15].Ejected != 5 || a.Nodes[1].ResHits != 7 {
		t.Fatalf("merge with larger registry lost state: len=%d", len(a.Nodes))
	}
	// Nil operands are no-ops, not panics.
	a.Merge(nil)
	var nilReg *Registry
	nilReg.Merge(a)
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry(32)
	r.InitRect(4, 2)
	r.Cycles = 500
	r.at(6).ResHits = 11 // x=2, y=1
	r.at(6).Links[topology.East].Flits = 40
	r.at(6).Occ[topology.East].Sample(4, 8)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE frfc_res_hits_total counter",
		`frfc_res_hits_total{node="6",x="2",y="1"} 11`,
		`frfc_link_flits_total{node="6",x="2",y="1",port="E"} 40`,
		`frfc_occupancy_mean_fraction{node="6",x="2",y="1",port="E"} 0.5`,
		"frfc_cycles 500",
		"frfc_epoch 32",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}
	// Unsampled gauges are omitted; node 0's occupancy must not appear.
	if strings.Contains(out, `frfc_occupancy_mean_fraction{node="0"`) {
		t.Error("unsampled occupancy gauge exported")
	}
	// Text exposition: every non-comment line is "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}
}
