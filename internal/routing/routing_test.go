package routing

import (
	"testing"
	"testing/quick"

	"frfc/internal/topology"
)

// TestMinimalAndConvergent verifies that both routing functions deliver every
// (src, dst) pair over a minimal path.
func TestMinimalAndConvergent(t *testing.T) {
	for _, fn := range []struct {
		name string
		f    Function
	}{{"XY", XY}, {"YX", YX}} {
		for _, k := range []int{2, 4, 8} {
			m := topology.NewMesh(k)
			for src := 0; src < m.N(); src++ {
				for dst := 0; dst < m.N(); dst++ {
					got := PathLength(m, fn.f, topology.NodeID(src), topology.NodeID(dst))
					want := m.Hops(topology.NodeID(src), topology.NodeID(dst)) + 1
					if got != want {
						t.Fatalf("%s on %dx%d: path %d->%d visits %d routers, want %d",
							fn.name, k, k, src, dst, got, want)
					}
				}
			}
		}
	}
}

func TestLocalAtDestination(t *testing.T) {
	m := topology.NewMesh(4)
	for id := 0; id < m.N(); id++ {
		if XY(m, topology.NodeID(id), topology.NodeID(id)) != topology.Local {
			t.Fatalf("XY at destination %d did not return Local", id)
		}
		if YX(m, topology.NodeID(id), topology.NodeID(id)) != topology.Local {
			t.Fatalf("YX at destination %d did not return Local", id)
		}
	}
}

// TestXYCorrectsXFirst pins down dimension order: as long as the X offset is
// nonzero, XY must move in X.
func TestXYCorrectsXFirst(t *testing.T) {
	m := topology.NewMesh(8)
	f := func(a, b uint8) bool {
		src := topology.NodeID(int(a) % m.N())
		dst := topology.NodeID(int(b) % m.N())
		cs, cd := m.Coord(src), m.Coord(dst)
		p := XY(m, src, dst)
		if cs.X != cd.X {
			return p == topology.East || p == topology.West
		}
		if cs.Y != cd.Y {
			return p == topology.North || p == topology.South
		}
		return p == topology.Local
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestXYNeverRoutesOffMesh: the returned port always has a link.
func TestXYNeverRoutesOffMesh(t *testing.T) {
	m := topology.NewMesh(4)
	for src := 0; src < m.N(); src++ {
		for dst := 0; dst < m.N(); dst++ {
			if src == dst {
				continue
			}
			p := XY(m, topology.NodeID(src), topology.NodeID(dst))
			if !m.HasLink(topology.NodeID(src), p) {
				t.Fatalf("XY(%d, %d) = %s which has no link", src, dst, p)
			}
		}
	}
}
