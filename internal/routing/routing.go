// Package routing implements the routing algorithms used by the simulator.
// The paper uses deterministic dimension-ordered (X-then-Y) routing on a 2-D
// mesh; the Algorithm interface lets experiments substitute other
// deterministic routes — including per-node lookup tables recomputed over a
// damaged topology — without touching the routers.
package routing

import "frfc/internal/topology"

// Algorithm maps (current node, destination node) to the output port a packet
// must take next. The boolean reports whether dst is reachable from cur at
// all; algorithms over a healthy mesh always return true, while table-based
// algorithms over a damaged topology return false for severed pairs so
// routers and NIs can fail those packets fast instead of looping.
// Implementations must return topology.Local when cur == dst and must be
// deterministic: the paper's flow-control comparison isolates flow control by
// fixing routing.
type Algorithm interface {
	NextPort(m topology.Mesh, cur, dst topology.NodeID) (topology.Port, bool)
}

// Function adapts a plain routing function to the Algorithm interface. A
// Function assumes a healthy mesh: every destination is reachable.
type Function func(m topology.Mesh, cur, dst topology.NodeID) topology.Port

// NextPort implements Algorithm.
func (f Function) NextPort(m topology.Mesh, cur, dst topology.NodeID) (topology.Port, bool) {
	return f(m, cur, dst), true
}

// XY is dimension-ordered routing: correct the X offset first, then the Y
// offset, then eject. On a mesh this is minimal and deadlock-free.
var XY Function = func(m topology.Mesh, cur, dst topology.NodeID) topology.Port {
	cc, cd := m.Coord(cur), m.Coord(dst)
	switch {
	case cd.X > cc.X:
		return topology.East
	case cd.X < cc.X:
		return topology.West
	case cd.Y > cc.Y:
		return topology.South
	case cd.Y < cc.Y:
		return topology.North
	default:
		return topology.Local
	}
}

// YX is dimension-ordered routing with the dimensions corrected in the
// opposite order. It is provided for routing-sensitivity experiments; like
// XY it is minimal and deadlock-free on a mesh.
var YX Function = func(m topology.Mesh, cur, dst topology.NodeID) topology.Port {
	cc, cd := m.Coord(cur), m.Coord(dst)
	switch {
	case cd.Y > cc.Y:
		return topology.South
	case cd.Y < cc.Y:
		return topology.North
	case cd.X > cc.X:
		return topology.East
	case cd.X < cc.X:
		return topology.West
	default:
		return topology.Local
	}
}

// PathLength returns the number of routers a packet visits from src to dst
// (inclusive of both) under a. It is used by tests to validate minimality
// and by analytic base-latency estimates. It panics if a reports dst
// unreachable from any node on the walk.
func PathLength(m topology.Mesh, a Algorithm, src, dst topology.NodeID) int {
	cur := src
	n := 1
	for cur != dst {
		p, ok := a.NextPort(m, cur, dst)
		if !ok {
			panic("routing: destination unreachable")
		}
		next, ok := m.Neighbor(cur, p)
		if !ok {
			panic("routing: function routed off the mesh edge")
		}
		cur = next
		n++
		if n > 4*m.N() {
			panic("routing: function does not converge to destination")
		}
	}
	return n
}
