// Package routing implements the routing functions used by the simulator.
// The paper uses deterministic dimension-ordered (X-then-Y) routing on a 2-D
// mesh; the Function type lets experiments substitute other deterministic
// routes without touching the routers.
package routing

import "frfc/internal/topology"

// Function maps (current node, destination node) to the output port a packet
// must take next. Implementations must return topology.Local when cur == dst
// and must be deterministic: the paper's flow-control comparison isolates
// flow control by fixing routing.
type Function func(m topology.Mesh, cur, dst topology.NodeID) topology.Port

// XY is dimension-ordered routing: correct the X offset first, then the Y
// offset, then eject. On a mesh this is minimal and deadlock-free.
func XY(m topology.Mesh, cur, dst topology.NodeID) topology.Port {
	cc, cd := m.Coord(cur), m.Coord(dst)
	switch {
	case cd.X > cc.X:
		return topology.East
	case cd.X < cc.X:
		return topology.West
	case cd.Y > cc.Y:
		return topology.South
	case cd.Y < cc.Y:
		return topology.North
	default:
		return topology.Local
	}
}

// YX is dimension-ordered routing with the dimensions corrected in the
// opposite order. It is provided for routing-sensitivity experiments; like
// XY it is minimal and deadlock-free on a mesh.
func YX(m topology.Mesh, cur, dst topology.NodeID) topology.Port {
	cc, cd := m.Coord(cur), m.Coord(dst)
	switch {
	case cd.Y > cc.Y:
		return topology.South
	case cd.Y < cc.Y:
		return topology.North
	case cd.X > cc.X:
		return topology.East
	case cd.X < cc.X:
		return topology.West
	default:
		return topology.Local
	}
}

// PathLength returns the number of routers a packet visits from src to dst
// (inclusive of both) under fn. It is used by tests to validate minimality
// and by analytic base-latency estimates.
func PathLength(m topology.Mesh, fn Function, src, dst topology.NodeID) int {
	cur := src
	n := 1
	for cur != dst {
		p := fn(m, cur, dst)
		next, ok := m.Neighbor(cur, p)
		if !ok {
			panic("routing: function routed off the mesh edge")
		}
		cur = next
		n++
		if n > 4*m.N() {
			panic("routing: function does not converge to destination")
		}
	}
	return n
}
