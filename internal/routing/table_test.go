package routing

import (
	"reflect"
	"testing"

	"frfc/internal/topology"
)

// walk returns the sequence of ports a packet takes from src to dst under a,
// failing the test if the route does not converge.
func walk(t *testing.T, m topology.Mesh, a Algorithm, src, dst topology.NodeID) []topology.Port {
	t.Helper()
	var ports []topology.Port
	cur := src
	for cur != dst {
		p, ok := a.NextPort(m, cur, dst)
		if !ok {
			t.Fatalf("route %d->%d: unreachable at %d", src, dst, cur)
		}
		next, ok := m.Neighbor(cur, p)
		if !ok {
			t.Fatalf("route %d->%d: routed off mesh at %d via %s", src, dst, cur, p)
		}
		ports = append(ports, p)
		cur = next
		if len(ports) > 4*m.N() {
			t.Fatalf("route %d->%d does not converge", src, dst)
		}
	}
	return ports
}

func TestTableHealthyMeshDeliversAllPairs(t *testing.T) {
	for _, k := range []int{2, 4, 5} {
		m := topology.NewMesh(k)
		tab := NewTable(m)
		for src := 0; src < m.N(); src++ {
			for dst := 0; dst < m.N(); dst++ {
				if !tab.Reachable(topology.NodeID(src), topology.NodeID(dst)) {
					t.Fatalf("%dx%d healthy mesh: %d->%d unreachable", k, k, src, dst)
				}
				walk(t, m, tab, topology.NodeID(src), topology.NodeID(dst))
			}
		}
	}
}

// TestTableUpDownLegality verifies the deadlock-freedom invariant: no route
// ever takes an up hop after a down hop, where up/down is defined by the
// BFS levels the table itself computes (level = hop distance from node 0 on
// the healthy mesh, ties by id).
func TestTableUpDownLegality(t *testing.T) {
	m := topology.NewMesh(4)
	tab := NewTable(m)
	level := func(n topology.NodeID) int { return m.Hops(0, n) }
	above := func(v, u topology.NodeID) bool {
		return level(v) < level(u) || (level(v) == level(u) && v < u)
	}
	for src := 0; src < m.N(); src++ {
		for dst := 0; dst < m.N(); dst++ {
			cur := topology.NodeID(src)
			wentDown := false
			for _, p := range walk(t, m, tab, cur, topology.NodeID(dst)) {
				next, _ := m.Neighbor(cur, p)
				up := above(next, cur)
				if up && wentDown {
					t.Fatalf("route %d->%d turns up at %d after going down", src, dst, cur)
				}
				if !up {
					wentDown = true
				}
				cur = next
			}
		}
	}
}

func TestTableRoutesAroundDeadLink(t *testing.T) {
	m := topology.NewMesh(4)
	tab := NewTable(m)
	// Kill the link 5—6 (middle of the mesh); everything stays connected.
	a, b := topology.NodeID(5), topology.NodeID(6)
	linkAlive := func(x, y topology.NodeID) bool {
		return !(x == a && y == b) && !(x == b && y == a)
	}
	tab.Rebuild(m, linkAlive, func(topology.NodeID) bool { return true })
	for src := 0; src < m.N(); src++ {
		for dst := 0; dst < m.N(); dst++ {
			if !tab.Reachable(topology.NodeID(src), topology.NodeID(dst)) {
				t.Fatalf("one dead link must not disconnect %d->%d", src, dst)
			}
			cur := topology.NodeID(src)
			for _, p := range walk(t, m, tab, cur, topology.NodeID(dst)) {
				next, _ := m.Neighbor(cur, p)
				if (cur == a && next == b) || (cur == b && next == a) {
					t.Fatalf("route %d->%d crosses the dead link", src, dst)
				}
				cur = next
			}
		}
	}
}

func TestTableDeadRouterIsUnreachable(t *testing.T) {
	m := topology.NewMesh(4)
	tab := NewTable(m)
	dead := topology.NodeID(9)
	tab.Rebuild(m,
		func(x, y topology.NodeID) bool { return true },
		func(n topology.NodeID) bool { return n != dead })
	for src := 0; src < m.N(); src++ {
		for dst := 0; dst < m.N(); dst++ {
			s, d := topology.NodeID(src), topology.NodeID(dst)
			want := s != dead && d != dead
			if got := tab.Reachable(s, d); got != want {
				t.Fatalf("Reachable(%d,%d) = %v, want %v with router %d dead", src, dst, got, want, dead)
			}
			if want {
				cur := s
				for _, p := range walk(t, m, tab, s, d) {
					next, _ := m.Neighbor(cur, p)
					if next == dead {
						t.Fatalf("route %d->%d passes through dead router", src, dst)
					}
					cur = next
				}
			}
		}
	}
}

func TestTablePartitionSeparatesHalves(t *testing.T) {
	k := 4
	m := topology.NewMesh(k)
	tab := NewTable(m)
	// Sever every link between columns x=1 and x=2: two 2x4 halves.
	linkAlive := func(x, y topology.NodeID) bool {
		cx, cy := m.Coord(x), m.Coord(y)
		return !(cx.X == 1 && cy.X == 2) && !(cx.X == 2 && cy.X == 1)
	}
	tab.Rebuild(m, linkAlive, func(topology.NodeID) bool { return true })
	for src := 0; src < m.N(); src++ {
		for dst := 0; dst < m.N(); dst++ {
			s, d := topology.NodeID(src), topology.NodeID(dst)
			sameHalf := (m.Coord(s).X <= 1) == (m.Coord(d).X <= 1)
			if got := tab.Reachable(s, d); got != sameHalf {
				t.Fatalf("Reachable(%d,%d) = %v, want %v across partition", src, dst, got, sameHalf)
			}
			if sameHalf {
				walk(t, m, tab, s, d)
			}
		}
	}
}

func TestTableRebuildDeterministic(t *testing.T) {
	m := topology.NewMesh(5)
	linkAlive := func(x, y topology.NodeID) bool {
		return !(x == 7 && y == 12) && !(x == 12 && y == 7)
	}
	nodeAlive := func(n topology.NodeID) bool { return n != 20 }
	t1, t2 := NewTable(m), NewTable(m)
	t1.Rebuild(m, linkAlive, nodeAlive)
	t2.Rebuild(m, linkAlive, nodeAlive)
	if !reflect.DeepEqual(t1.next, t2.next) || !reflect.DeepEqual(t1.ok, t2.ok) {
		t.Fatal("identical rebuilds produced different tables")
	}
	if t1.Version() != t2.Version() || t1.Version() == 0 {
		t.Fatalf("version mismatch: %d vs %d", t1.Version(), t2.Version())
	}
}

// TestXYandYXDifferOnTranspose pins the satellite requirement: on transpose
// traffic XY and YX take different paths, yet each respects its own
// dimension order (which is what makes both deadlock-free: neither ever
// turns from its second dimension back into its first).
func TestXYandYXDifferOnTranspose(t *testing.T) {
	m := topology.NewMesh(8)
	differed := false
	for src := 0; src < m.N(); src++ {
		s := topology.NodeID(src)
		c := m.Coord(s)
		dst := m.ID(topology.Coord{X: c.Y, Y: c.X})
		px := walk(t, m, XY, s, dst)
		py := walk(t, m, YX, s, dst)
		if len(px) != len(py) {
			t.Fatalf("transpose %d->%d: XY %d hops vs YX %d hops (both must be minimal)",
				src, dst, len(px), len(py))
		}
		if c.X != c.Y && !reflect.DeepEqual(px, py) {
			differed = true
		}
		// XY: once it moves in Y it never moves in X again.
		moved := false
		for _, p := range px {
			vertical := p == topology.North || p == topology.South
			if moved && !vertical {
				t.Fatalf("XY %d->%d turned back into X after Y", src, dst)
			}
			moved = moved || vertical
		}
		// YX: once it moves in X it never moves in Y again.
		moved = false
		for _, p := range py {
			horizontal := p == topology.East || p == topology.West
			if moved && !horizontal {
				t.Fatalf("YX %d->%d turned back into Y after X", src, dst)
			}
			moved = moved || horizontal
		}
	}
	if !differed {
		t.Fatal("XY and YX never differed on transpose traffic")
	}
}
