package routing

import "frfc/internal/topology"

// Table is a per-node next-hop lookup table computed over the surviving
// topology. Routes follow up*/down* turn restrictions on a deterministic
// BFS spanning structure, so they stay deadlock-free on an arbitrarily
// damaged mesh; pairs left in different connected components are reported
// unreachable instead of routed.
//
// A Table is shared by pointer between every router and NI of a network and
// mutated in place by Rebuild, which the network calls between cycles when a
// fault event changes the topology. Lookups between rebuilds are read-only.
type Table struct {
	n    int
	next []topology.Port // indexed cur*n + dst
	ok   []bool          // indexed cur*n + dst; false = unreachable
	// version counts rebuilds; NIs compare it to detect topology epochs.
	version uint64
}

const unreachableDist = int(^uint(0) >> 1) // max int

// NewTable builds a table over the healthy mesh: every link and node alive.
func NewTable(m topology.Mesh) *Table {
	t := &Table{
		n:    m.N(),
		next: make([]topology.Port, m.N()*m.N()),
		ok:   make([]bool, m.N()*m.N()),
	}
	all := func(topology.NodeID, topology.NodeID) bool { return true }
	up := func(topology.NodeID) bool { return true }
	t.rebuild(m, all, up)
	return t
}

// Rebuild recomputes every route over the surviving topology described by the
// two predicates: linkAlive reports whether the undirected link a—b is
// usable, nodeAlive whether a router still forwards traffic. It bumps the
// table version so NIs can notice the topology epoch changed. Rebuild is
// deterministic: node and port iteration order is fixed, so identical fault
// histories yield identical tables.
func (t *Table) Rebuild(m topology.Mesh, linkAlive func(a, b topology.NodeID) bool, nodeAlive func(topology.NodeID) bool) {
	t.rebuild(m, linkAlive, nodeAlive)
	t.version++
}

// Version identifies the topology epoch; it changes on every Rebuild.
func (t *Table) Version() uint64 { return t.version }

// NextPort implements Algorithm by table lookup. The boolean is false when
// dst is unreachable from cur over the surviving topology.
func (t *Table) NextPort(m topology.Mesh, cur, dst topology.NodeID) (topology.Port, bool) {
	i := int(cur)*t.n + int(dst)
	return t.next[i], t.ok[i]
}

// Reachable reports whether the table holds a route from src to dst.
func (t *Table) Reachable(src, dst topology.NodeID) bool {
	return t.ok[int(src)*t.n+int(dst)]
}

func (t *Table) rebuild(m topology.Mesh, linkAlive func(a, b topology.NodeID) bool, nodeAlive func(topology.NodeID) bool) {
	n := m.N()
	if t.n != n {
		panic("routing: table rebuilt over a different mesh size")
	}

	// usable(u, p) = the directed hop u→neighbor(u,p) survives.
	usable := func(u topology.NodeID, p topology.Port) (topology.NodeID, bool) {
		v, ok := m.Neighbor(u, p)
		if !ok || !nodeAlive(v) || !linkAlive(u, v) {
			return 0, false
		}
		return v, true
	}

	// Pass 1: connected components and BFS levels. Iterating roots in id
	// order makes each component's root its lowest live id; neighbor
	// iteration in port order fixes the level assignment.
	comp := make([]int, n)
	level := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]topology.NodeID, 0, n)
	for root := 0; root < n; root++ {
		r := topology.NodeID(root)
		if comp[root] != -1 || !nodeAlive(r) {
			continue
		}
		comp[root] = root
		level[root] = 0
		queue = append(queue[:0], r)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for p := topology.Port(0); p < topology.Port(topology.DirectionPorts); p++ {
				v, ok := usable(u, p)
				if !ok || comp[v] != -1 {
					continue
				}
				comp[v] = root
				level[v] = level[u] + 1
				queue = append(queue, v)
			}
		}
	}

	// above(v, u) = the edge u→v is an "up" move: toward the root in BFS
	// level, ties broken by id. The up-subgraph and down-subgraph are both
	// acyclic, which is what makes up*/down* trajectories deadlock-free.
	above := func(v, u topology.NodeID) bool {
		return level[v] < level[u] || (level[v] == level[u] && v < u)
	}

	// Node processing order for the up-phase relaxation: every up-neighbor
	// of u precedes u when nodes are sorted by (level, id) ascending.
	order := make([]topology.NodeID, 0, n)
	maxLevel := 0
	for i := 0; i < n; i++ {
		if comp[i] != -1 && level[i] > maxLevel {
			maxLevel = level[i]
		}
	}
	for l := 0; l <= maxLevel; l++ {
		for i := 0; i < n; i++ {
			if comp[i] != -1 && level[i] == l {
				order = append(order, topology.NodeID(i))
			}
		}
	}

	dist1 := make([]int, n) // shortest down-only distance to dst
	g := make([]int, n)     // greedy up*-then-down* distance to dst

	for d := 0; d < n; d++ {
		dst := topology.NodeID(d)
		base := 0 // recomputed per cur below
		if comp[d] == -1 {
			// Dead or nonexistent destination: nothing reaches it.
			for cur := 0; cur < n; cur++ {
				t.ok[cur*n+d] = false
			}
			continue
		}

		// Backward BFS from dst over the reversed down-graph: dist1[u] is
		// the length of the shortest all-down path u→dst, or unreachable.
		for i := range dist1 {
			dist1[i] = unreachableDist
		}
		dist1[d] = 0
		queue = append(queue[:0], dst)
		for len(queue) > 0 {
			w := queue[0]
			queue = queue[1:]
			for p := topology.Port(0); p < topology.Port(topology.DirectionPorts); p++ {
				u, ok := usable(w, p)
				if !ok || !above(u, w) || dist1[u] != unreachableDist {
					continue
				}
				dist1[u] = dist1[w] + 1
				queue = append(queue, u)
			}
		}

		// Greedy distance: commit to the down-only path as soon as one
		// exists; otherwise climb. Forcing g = dist1 whenever dist1 is
		// finite is what keeps per-node lookups trajectory-consistent —
		// once a packet takes a down hop, every subsequent node also has a
		// finite dist1 and keeps descending, so no route ever turns up
		// after going down.
		for _, u := range order {
			if dist1[u] != unreachableDist {
				g[u] = dist1[u]
				continue
			}
			best := unreachableDist
			for p := topology.Port(0); p < topology.Port(topology.DirectionPorts); p++ {
				v, ok := usable(u, p)
				if !ok || !above(v, u) || comp[v] != comp[d] {
					continue
				}
				if g[v] != unreachableDist && g[v]+1 < best {
					best = g[v] + 1
				}
			}
			g[u] = best
		}

		// Emit next hops.
		for cur := 0; cur < n; cur++ {
			base = cur*n + d
			u := topology.NodeID(cur)
			switch {
			case comp[cur] == -1 || comp[cur] != comp[d]:
				t.ok[base] = false
				continue
			case cur == d:
				t.next[base] = topology.Local
				t.ok[base] = true
				continue
			case g[u] == unreachableDist:
				t.ok[base] = false
				continue
			}
			found := false
			if dist1[u] != unreachableDist {
				for p := topology.Port(0); p < topology.Port(topology.DirectionPorts); p++ {
					w, ok := usable(u, p)
					if ok && !above(w, u) && dist1[w] == dist1[u]-1 {
						t.next[base] = p
						found = true
						break
					}
				}
			} else {
				for p := topology.Port(0); p < topology.Port(topology.DirectionPorts); p++ {
					v, ok := usable(u, p)
					if ok && above(v, u) && g[v] == g[u]-1 {
						t.next[base] = p
						found = true
						break
					}
				}
			}
			if !found {
				panic("routing: finite distance with no matching next hop")
			}
			t.ok[base] = true
		}
	}
}
